// Package repro is a from-scratch Go reproduction of "U-Filter: A
// Lightweight XML View Update Checker" (Wang, Rundensteiner, Mani;
// WPI-CS-TR-05-11 / ICDE 2006): a three-step framework that decides,
// before any translation is attempted, whether an update against a
// virtual XML view of a relational database has a correct relational
// translation.
//
// The facade re-exports the library's primary entry points; the
// subsystems live under internal/:
//
//   - internal/relational — in-memory relational engine (constraints,
//     indexes, FK delete policies, WAL, transactions)
//   - internal/sqlexec    — SQL AST + executor, materialized probe
//     results, updatable left-join views
//   - internal/xmltree    — XML document model
//   - internal/xqparse    — view-query and update-language parsers
//   - internal/viewengine — XML view materialization
//   - internal/asg        — Annotated Schema Graphs and closures
//   - internal/ufilter    — the U-Filter pipeline (the paper's core)
//   - internal/tpch, internal/bookdb, internal/psd,
//     internal/w3cusecases — datasets and workloads
//   - internal/shard      — intra-view sharding: hash-partitioned row
//     storage across N engine shards with scatter-gather probes
//   - internal/experiments — the harness regenerating every table and
//     figure of the paper's evaluation
//
// Quick start:
//
//	db, _ := bookdb.NewDatabase(relational.DeleteCascade)
//	f, _ := repro.NewFilter(bookdb.ViewQuery, db)
//	res, _ := f.Check(bookdb.U9)   // schema-level steps 1+2
//	res, _ = f.Apply(bookdb.U13)   // full pipeline + execution
//
// A Filter is safe for concurrent Check calls and routes everything
// through an internal plan cache (internal/plan): each update template
// is compiled once into an immutable UpdatePlan — resolution, Steps
// 1+2, parameterized probe SQL — and every structurally-equal update
// afterwards binds its literal tuple into the plan (the verdict of
// Steps 1+2 depends only on the view and schema, never on base data).
// CheckBatch fans a slice of updates across a worker pool; Prepare/
// Execute expose the compile-once/execute-many fast path; ApplyBatch
// and ExecuteBatch group-commit N updates under one transaction and
// one redo flush:
//
// Write-concurrency contract. Applies run in parallel: every
// Apply/Execute/ApplyBatch opens its own transaction against the MVCC
// engine, independent updates commit concurrently with their
// write-ahead-log flushes coalesced by a group-commit scheduler (and
// pipelined — one group stamps while the previous group's fsync is in
// flight), and
// two updates that write the same rows resolve by first-updater-wins
// — the loser retries automatically with capped backoff and surfaces
// relational.ErrWriteConflict only when retries are exhausted (the
// ufilterd gateway maps that to 409 Conflict). Each update is atomic:
// all of its translated statements commit together or none do.
//
// Read-consistency contract. Checking never waits on executing: the
// relational engine is multi-versioned (internal/relational) and
// every check runs lock-free.
// Check/CheckBatch are schema-only. CheckData and CheckBatchData add
// Step 3's read-only probes (update-context existence, shared-part
// consistency) evaluated against a database snapshot pinned for the
// call — CheckBatchData pins ONE snapshot for the whole batch — so a
// check sees a single point-in-time view: all of a concurrent apply's
// effects or none of them, never a torn intermediate state. Snapshots
// are O(1) to take (f.Snapshot(), close when done); old row versions
// are retained until the oldest live snapshot releases them and are
// then freed by the reclaimer (inline on commits, or in the background
// via relational.Database.StartReclaimer).
//
//	results := f.CheckBatch(updates, runtime.GOMAXPROCS(0))
//	p, _ := f.Prepare(updateText)       // compile once
//	res, _ := f.Execute(p, args)        // bind + run, no parsing
//	batch := f.ApplyBatch(updateTexts)  // group commit
//	stats := f.CacheStats() // hit/miss/plan counters, HitRate()
//	snap := f.Stats()       // cache + executor + database counters
//
// Sharding contract. A view may hash-partition its base-table rows
// across N independent engine shards (internal/shard; ufilterd
// -shards, per-view "shards" in the server config; N=1 is bit-for-bit
// the unsharded path). Root rows route by primary-key hash and child
// rows co-locate with their FK parents, so FK checks and delete
// cascades stay shard-local; uniqueness the partitioning cannot
// localize is enforced by scatter probes. Reads see a consistent
// vector of shard snapshots pinned atomically, applies confined to one
// shard commit through that shard's own group-commit+WAL pipeline
// (fsyncs of different shards overlap), and applies spanning shards
// commit via an ordered two-phase claim/publish through a coordinator
// log whose single fsync is the decide point — crash recovery replays
// a cross-shard transaction on every shard or on none.
//
// Durability contract. With a WAL directory open
// (relational.Database.OpenWAL; ufilterd -data-dir), an acknowledged
// commit is a durable commit: its record has been fsynced before any
// reader can see its versions. The commit path is pipelined — a group
// encodes its record off-latch, stamps sequences under the commit
// latch, and hands the record to a WAL writer stage so the next group
// stamps while the previous fsync runs; publication happens strictly
// in stamp order after the covering fsync, and a failed flush rolls
// back exactly its group (every member gets relational.ErrWALFailed,
// nothing half-durable). Checkpoints write through a paged store
// (internal/pagestore): only rows dirtied since the last checkpoint
// are serialized, as fresh copy-on-write 4KiB slotted pages plus one
// page-directory record (pause O(dirty-pages), not O(database)), with
// the directory log folded into a fresh base past
// WALOptions.CheckpointDeltaLimit; recovery maps the directory into
// value-less row stubs and replays the WAL tail, then pages fault in
// on first read through a buffer pool bounded by
// WALOptions.PageCacheBytes (ufilterd -page-cache-bytes) — so restart
// latency tracks the directory, not the dataset, and committed cold
// rows demote back to stubs, letting the data exceed RAM under a hard
// memory budget. Retired segments are recycled as preallocated future
// segments. internal/walcrash proves the contract with a kill -9
// fault-injection matrix over every registered failpoint, page-store
// write/directory/fold faults included.
//
// The filter is also served over the wire: internal/server and
// cmd/ufilterd host a registry of named views behind an HTTP/JSON
// gateway with a bounded concurrency limiter in front of the parallel
// apply pipeline, live per-view statistics and Prometheus-style
// metrics. Result and every verdict enum marshal to stable JSON (the
// enum spellings are exactly their String forms), so the CLI's -json
// output and the daemon's responses are one format.
//
// Observability contract. Instrumentation (internal/obs) costs nothing
// when absent: stage spans record only when a trace rides the
// context.Context — CheckContext/ApplyContext with a context carrying
// obs.WithTrace — and a nil trace is never consulted, so the plain
// Check/Apply paths skip even the clock reads. The daemon records
// latency histograms for every request but samples span traces
// (1-in-64 checks, 1-in-8 applies; batches and the X-UFilter-Trace
// header always), keeping the measured overhead on a mixed workload
// within a few percent of uninstrumented throughput (the obs benchmark
// in internal/experiments gates this in CI).
package repro

import (
	"repro/internal/relational"
	"repro/internal/ufilter"
)

// Filter is the compiled U-Filter pipeline for one view over one
// database. See internal/ufilter for the full API.
type Filter = ufilter.Filter

// Result reports a checked or applied update's outcome.
type Result = ufilter.Result

// BatchResult pairs one update of a Filter.CheckBatch call with its
// verdict or per-update error.
type BatchResult = ufilter.BatchResult

// CacheStats snapshots the decision cache's hit/miss counters; see
// Filter.CacheStats.
type CacheStats = ufilter.CacheStats

// Strategy selects the data-driven update-point checking approach.
type Strategy = ufilter.Strategy

// Update-point strategies (Section 6.2 of the paper).
const (
	StrategyHybrid   = ufilter.StrategyHybrid
	StrategyOutside  = ufilter.StrategyOutside
	StrategyInternal = ufilter.StrategyInternal
)

// Outcome is the STAR classification of Fig. 6.
type Outcome = ufilter.Outcome

// STAR classification outcomes.
const (
	OutcomeInvalid        = ufilter.OutcomeInvalid
	OutcomeUntranslatable = ufilter.OutcomeUntranslatable
	OutcomeConditional    = ufilter.OutcomeConditional
	OutcomeUnconditional  = ufilter.OutcomeUnconditional
)

// Step identifies the U-Filter step that produced a rejection.
type Step = ufilter.Step

// Pipeline steps.
const (
	StepNone       = ufilter.StepNone
	StepValidation = ufilter.StepValidation
	StepSTAR       = ufilter.StepSTAR
	StepData       = ufilter.StepData
)

// Condition is the side condition attached to a conditionally
// translatable update.
type Condition = ufilter.Condition

// StarVerdict is the STAR checking procedure's answer for one
// operation.
type StarVerdict = ufilter.StarVerdict

// Stats is a read-only snapshot of a filter's cache, executor and
// database counters; see Filter.Stats.
type Stats = ufilter.Stats

// UpdatePlan is the compile-once artifact of the internal/plan layer:
// an update template's resolved operations, STAR verdicts, shared-check
// list and parameterized probe statements. Obtain one with
// Filter.Prepare and execute it with Filter.Execute/ExecuteBatch.
type UpdatePlan = ufilter.UpdatePlan

// ParseStrategy maps a strategy name ("hybrid", "outside", "internal")
// to its value; the empty string selects StrategyHybrid.
func ParseStrategy(name string) (Strategy, error) {
	return ufilter.ParseStrategy(name)
}

// NewFilter parses a view query, builds and STAR-marks its Annotated
// Schema Graphs over the database, and returns a ready filter.
func NewFilter(viewQuery string, db relational.Engine) (*Filter, error) {
	return ufilter.New(viewQuery, db)
}
