// PSD curation: the Section 7.3 practicality scenario — a protein
// database whose curation view is NOT well-nested (organisms, the FK
// targets, are published inside the proteins that reference them) and
// whose foreign keys use the SET NULL delete policy. Well-nested-only
// approaches cannot handle this view; U-Filter classifies its updates
// per element.
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/psd"
	"repro/internal/viewengine"
)

func main() {
	db, err := psd.NewDatabase(8)
	if err != nil {
		log.Fatal(err)
	}
	engine := viewengine.New(db)
	view, err := engine.MaterializeQuery(psd.ViewQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ProteinView materialized: %d proteins published\n\n", len(view.ChildrenNamed("protein")))

	f, err := repro.NewFilter(psd.ViewQuery, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("STAR marks for the non-well-nested view (SET NULL policy):")
	fmt.Println(f.Marks.MarkString())

	// Curators add and prune citations freely.
	res, err := f.Apply(psd.InsertCitation("P00001", "C7", "Crystal structure at 2.1 A"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("insert citation:        accepted=%v rows=%d\n", res.Accepted, res.RowsAffected)

	res, err = f.Apply(psd.DeleteCitations("P00002"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delete citations:       accepted=%v rows=%d\n", res.Accepted, res.RowsAffected)

	// Deleting a protein element is minimized: the shared organism
	// stays, matching the SET NULL curation policy.
	res, err = f.Apply(psd.DeleteProtein("P00003"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delete protein:         accepted=%v rows=%d organisms=%d (unchanged)\n",
		res.Accepted, res.RowsAffected, db.RowCount("organism"))

	// Deleting the organism nested inside a protein would make every
	// other protein of that organism change — untranslatable.
	res, err = f.Check(psd.DeleteOrganismInProtein("P00004"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delete nested organism: accepted=%v outcome=%s\n  %s\n",
		res.Accepted, res.Outcome, res.Reason)
}
