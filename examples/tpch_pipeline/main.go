// TPC-H pipeline: build the five-relation TPC-H-like database, compile
// the Section 7.2 experiment views, and compare the three data-driven
// update-point strategies on the same updates.
package main

import (
	"fmt"
	"log"
	"time"

	repro "repro"
	"repro/internal/tpch"
)

func main() {
	const mb = 5
	fmt.Printf("Building TPC-H-like database (~%d MB nominal)...\n", mb)
	rows := tpch.RowsForMB(mb)
	fmt.Printf("  region=%d nation=%d customer=%d orders=%d lineitem=%d\n\n",
		rows.Regions, rows.Nations, rows.Customers, rows.Orders, rows.Lineitems)

	// Vsuccess: nesting follows the FK chain; every internal node is
	// unconditionally updatable.
	db, err := tpch.NewDatabaseMB(mb)
	if err != nil {
		log.Fatal(err)
	}
	f, err := repro.NewFilter(tpch.VsuccessQuery, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Vsuccess STAR marks:")
	fmt.Println(f.Marks.MarkString())

	for _, rel := range tpch.Relations {
		res, err := f.Check(tpch.DeleteElementUpdate(rel, 1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  delete one <%s>: %s\n", tpch.ElementName(rel), res.Outcome)
	}

	// Vfail: region republished under the root poisons region deletes.
	fdb, err := tpch.NewDatabaseMB(mb)
	if err != nil {
		log.Fatal(err)
	}
	ffail, err := repro.NewFilter(tpch.VfailQuery("region"), fdb)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ffail.Check(tpch.DeleteElementUpdate("region", 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nVfail(region): delete one <region>: %s\n  %s\n", res.Outcome, res.Reason)

	start := time.Now()
	blind, err := ffail.BlindApply(tpch.DeleteElementUpdate("region", 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  blind baseline: touched %d rows, side effect=%v, rolled back=%v in %v\n",
		blind.RowsTouched, blind.SideEffect, blind.RolledBack, time.Since(start))

	// Strategy comparison on the Fig. 15 insert.
	fmt.Println("\nInsert lineitem into Vlinear under each strategy:")
	for _, strat := range []repro.Strategy{repro.StrategyHybrid, repro.StrategyOutside, repro.StrategyInternal} {
		sdb, err := tpch.NewDatabaseMB(mb)
		if err != nil {
			log.Fatal(err)
		}
		sf, err := repro.NewFilter(tpch.VlinearQuery, sdb)
		if err != nil {
			log.Fatal(err)
		}
		sf.Strategy = strat
		start := time.Now()
		res, err := sf.Apply(tpch.InsertLineitemUpdate(10, 99))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s accepted=%v rows=%d probes=%d in %v\n",
			strat, res.Accepted, res.RowsAffected, len(res.Probes), time.Since(start))
		if len(res.Probes) > 0 {
			fmt.Printf("            first probe: %s\n", res.Probes[0])
		}
	}

	// A data conflict: inserting an existing (orderkey, linenumber).
	cdb, err := tpch.NewDatabaseMB(mb)
	if err != nil {
		log.Fatal(err)
	}
	cf, err := repro.NewFilter(tpch.VlinearQuery, cdb)
	if err != nil {
		log.Fatal(err)
	}
	res, err = cf.Apply(tpch.InsertLineitemUpdate(10, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDuplicate lineitem insert: accepted=%v\n  %s\n", res.Accepted, res.Reason)
}
