// Bookstore: run all thirteen updates of the paper's Figs. 4 and 10
// through the full pipeline and print a classification table matching
// the paper's discussion.
package main

import (
	"fmt"
	"log"
	"strings"

	repro "repro"
	"repro/internal/bookdb"
	"repro/internal/relational"
)

func main() {
	fmt.Println("U-Filter classification of the paper's updates u1-u13")
	fmt.Println(strings.Repeat("-", 100))
	fmt.Printf("%-5s %-9s %-6s %-28s %s\n", "upd", "accepted", "step", "outcome", "detail")
	fmt.Println(strings.Repeat("-", 100))

	for _, u := range bookdb.AllUpdates() {
		// Fresh database per update so earlier deletes do not mask
		// later classifications.
		db, err := bookdb.NewDatabase(relational.DeleteCascade)
		if err != nil {
			log.Fatal(err)
		}
		f, err := repro.NewFilter(bookdb.ViewQuery, db)
		if err != nil {
			log.Fatal(err)
		}
		res, err := f.Apply(u.Text)
		if err != nil {
			log.Fatalf("%s: %v", u.Name, err)
		}
		step := "-"
		if res.RejectedAt != 0 {
			step = fmt.Sprintf("%d", res.RejectedAt)
		}
		detail := res.Reason
		if res.Accepted {
			detail = fmt.Sprintf("%d rows affected", res.RowsAffected)
			if len(res.Warnings) > 0 {
				detail += "; " + res.Warnings[0]
			}
		}
		if len(detail) > 76 {
			detail = detail[:73] + "..."
		}
		fmt.Printf("%-5s %-9v %-6s %-28s %s\n", u.Name, res.Accepted, step, res.Outcome, detail)
	}

	fmt.Println(strings.Repeat("-", 100))
	fmt.Println(`Paper ground truth: u1,u5,u6,u7 invalid (step 1); u2,u10 untranslatable
(step 2); u3,u11 rejected by the data-driven context check and u4 by the
update-point check (step 3); u8,u13 translate unconditionally; u9
conditionally (translation minimization); u12 succeeds with the engine's
"zero tuples deleted" warning.`)
}
