// Quickstart: build the paper's running-example book database, compile
// the BookView filter, and push one update through each path of the
// U-Filter pipeline.
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/bookdb"
	"repro/internal/relational"
	"repro/internal/viewengine"
)

func main() {
	// The Fig. 1 relational database: publisher / book / review with
	// keys, NOT NULL, CHECK and foreign-key constraints.
	db, err := bookdb.NewDatabase(relational.DeleteCascade)
	if err != nil {
		log.Fatal(err)
	}

	// Materialize the Fig. 3(b) view so we can look at it.
	engine := viewengine.New(db)
	view, err := engine.MaterializeQuery(bookdb.ViewQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BookView (materialized):")
	fmt.Println(view)

	// Compile the U-Filter: parse the view query, build the annotated
	// schema graphs, run the STAR marking once.
	f, err := repro.NewFilter(bookdb.ViewQuery, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("STAR marks (Fig. 8's (UPoint|UContext) pairs):")
	fmt.Println(f.Marks.MarkString())

	// Step 1 rejection: u1 inserts an empty title and price 0.00.
	res, err := f.Check(bookdb.U1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("u1: accepted=%v step=%d outcome=%s\n    %s\n\n",
		res.Accepted, res.RejectedAt, res.Outcome, res.Reason)

	// Step 2 rejection: u2 deletes the publisher inside a book.
	res, err = f.Check(bookdb.U2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("u2: accepted=%v step=%d outcome=%s\n    %s\n\n",
		res.Accepted, res.RejectedAt, res.Outcome, res.Reason)

	// Full pipeline: u13 inserts a review into "Data on the Web"; the
	// probe query's bookid feeds the translated INSERT.
	res, err = f.Apply(bookdb.U13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("u13: accepted=%v rows=%d\n", res.Accepted, res.RowsAffected)
	for _, p := range res.Probes {
		fmt.Println("  probe:", p)
	}
	for _, s := range res.SQL {
		fmt.Println("  sql:  ", s)
	}
}
