package repro_test

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/bookdb"
	"repro/internal/relational"
)

// ExampleNewFilter compiles the U-Filter for the paper's running
// example (the BookView of Fig. 3 over the Fig. 1 database) and prints
// the STAR marks — the (UPoint|UContext) pairs of Fig. 8 that all
// schema-level verdicts derive from.
func ExampleNewFilter() {
	db, err := bookdb.NewDatabase(relational.DeleteCascade)
	if err != nil {
		log.Fatal(err)
	}
	f, err := repro.NewFilter(bookdb.ViewQuery, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(f.Marks.MarkString())
	// Output:
	// vC1 <book>: (dirty | s-d^u-i) anchor=book
	// vC2 <publisher>: (dirty | u-d^u-i)
	// vC3 <review>: (clean | s-d^s-i) anchor=review
	// vC4 <publisher>: (dirty | u-d^s-i)
}

// ExampleFilter_Check runs the schema-level steps (1: validation,
// 2: STAR reasoning) on two of the paper's updates: u9 (delete books
// over $40) is conditionally translatable, u2 (delete a book's
// publisher) is statically untranslatable — no base data was read for
// either verdict.
func ExampleFilter_Check() {
	db, err := bookdb.NewDatabase(relational.DeleteCascade)
	if err != nil {
		log.Fatal(err)
	}
	f, err := repro.NewFilter(bookdb.ViewQuery, db)
	if err != nil {
		log.Fatal(err)
	}

	res, err := f.Check(bookdb.U9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("u9: accepted=%v outcome=%s\n", res.Accepted, res.Outcome)
	for _, c := range res.Conditions {
		fmt.Printf("u9: condition: %s\n", c)
	}

	res, err = f.Check(bookdb.U2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("u2: accepted=%v outcome=%s\n", res.Accepted, res.Outcome)
	// Output:
	// u9: accepted=true outcome=conditionally translatable
	// u9: condition: translation minimization
	// u2: accepted=false outcome=untranslatable
}

// ExampleFilter_Apply pushes u13 (insert a review into "Data on the
// Web") through the full pipeline: Steps 1+2, then Step 3's probe
// against the base data, and finally the translated single-table SQL.
func ExampleFilter_Apply() {
	db, err := bookdb.NewDatabase(relational.DeleteCascade)
	if err != nil {
		log.Fatal(err)
	}
	f, err := repro.NewFilter(bookdb.ViewQuery, db)
	if err != nil {
		log.Fatal(err)
	}
	res, err := f.Apply(bookdb.U13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accepted=%v rows=%d\n", res.Accepted, res.RowsAffected)
	for _, s := range res.SQL {
		fmt.Println("sql:", s)
	}
	// Output:
	// accepted=true rows=1
	// sql: INSERT INTO review (bookid, comment, reviewid) VALUES ('98003', 'Easy read and useful.', '001')
}

// ExampleFilter_CheckBatch checks a slice of updates through the worker
// pool; repeated templates are served from the decision cache, which
// the stats report. One worker keeps this example's counters exact —
// production callers pass 0 for GOMAXPROCS.
func ExampleFilter_CheckBatch() {
	db, err := bookdb.NewDatabase(relational.DeleteCascade)
	if err != nil {
		log.Fatal(err)
	}
	f, err := repro.NewFilter(bookdb.ViewQuery, db)
	if err != nil {
		log.Fatal(err)
	}
	results := f.CheckBatch([]string{bookdb.U9, bookdb.U9, bookdb.U9}, 1)
	for _, br := range results {
		fmt.Printf("[%d] accepted=%v\n", br.Index, br.Result.Accepted)
	}
	st := f.CacheStats()
	fmt.Printf("cache: hits=%d misses=%d\n", st.Hits, st.Misses)
	// Output:
	// [0] accepted=true
	// [1] accepted=true
	// [2] accepted=true
	// cache: hits=2 misses=1
}
