// Package xmltree provides the XML document model used for materialized
// views and update fragments: a minimal ordered tree of element and text
// nodes with serialization, parsing and path navigation. It intentionally
// omits attributes, namespaces and processing instructions — the views
// the paper handles (SilkRoute-style publishing) are element-only.
package xmltree

import (
	"encoding/xml"
	"fmt"
	"strings"
)

// Node is an XML node: an element (Name set, Text empty) or a text node
// (Name empty).
type Node struct {
	Name     string
	Text     string
	Children []*Node
}

// Elem constructs an element node.
func Elem(name string, children ...*Node) *Node {
	return &Node{Name: name, Children: children}
}

// Text constructs a text node.
func Text(s string) *Node { return &Node{Text: s} }

// ElemText constructs the common leaf shape <name>text</name>.
func ElemText(name, text string) *Node {
	return Elem(name, Text(text))
}

// IsElement reports whether the node is an element.
func (n *Node) IsElement() bool { return n.Name != "" }

// Append adds children and returns n for chaining.
func (n *Node) Append(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// Child returns the first child element with the given name.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ChildrenNamed returns all child elements with the given name.
func (n *Node) ChildrenNamed(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// ElementChildren returns all child elements (skipping text nodes).
func (n *Node) ElementChildren() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.IsElement() {
			out = append(out, c)
		}
	}
	return out
}

// TextContent concatenates all descendant text, trimmed.
func (n *Node) TextContent() string {
	var b strings.Builder
	var walk func(*Node)
	walk = func(m *Node) {
		if !m.IsElement() {
			b.WriteString(m.Text)
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return strings.TrimSpace(b.String())
}

// ChildText returns the text content of the first child element with the
// given name, or "" when absent.
func (n *Node) ChildText(name string) string {
	c := n.Child(name)
	if c == nil {
		return ""
	}
	return c.TextContent()
}

// Find walks a path of element names from n and returns the first match.
func (n *Node) Find(path ...string) *Node {
	cur := n
	for _, p := range path {
		cur = cur.Child(p)
		if cur == nil {
			return nil
		}
	}
	return cur
}

// FindAll returns every node reachable by the path (cartesian over
// repeated elements).
func (n *Node) FindAll(path ...string) []*Node {
	frontier := []*Node{n}
	for _, p := range path {
		var next []*Node
		for _, f := range frontier {
			next = append(next, f.ChildrenNamed(p)...)
		}
		frontier = next
	}
	return frontier
}

// Count returns the total number of nodes in the subtree (elements and
// text nodes, including n).
func (n *Node) Count() int {
	total := 1
	for _, c := range n.Children {
		total += c.Count()
	}
	return total
}

// Clone deep-copies the subtree.
func (n *Node) Clone() *Node {
	out := &Node{Name: n.Name, Text: n.Text}
	for _, c := range n.Children {
		out.Children = append(out.Children, c.Clone())
	}
	return out
}

// Equal reports deep structural equality, ignoring whitespace-only text
// node differences.
func (n *Node) Equal(o *Node) bool {
	if n.Name != o.Name {
		return false
	}
	if !n.IsElement() && !o.IsElement() {
		return strings.TrimSpace(n.Text) == strings.TrimSpace(o.Text)
	}
	nc, oc := significantChildren(n), significantChildren(o)
	if len(nc) != len(oc) {
		return false
	}
	for i := range nc {
		if !nc[i].Equal(oc[i]) {
			return false
		}
	}
	return true
}

func significantChildren(n *Node) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if !c.IsElement() && strings.TrimSpace(c.Text) == "" {
			continue
		}
		out = append(out, c)
	}
	return out
}

// String serializes the subtree with two-space indentation.
func (n *Node) String() string {
	var b strings.Builder
	n.serialize(&b, 0, true)
	return b.String()
}

// StringCompact serializes without indentation or newlines.
func (n *Node) StringCompact() string {
	var b strings.Builder
	n.serialize(&b, 0, false)
	return b.String()
}

func (n *Node) serialize(b *strings.Builder, depth int, indent bool) {
	pad := ""
	if indent {
		pad = strings.Repeat("  ", depth)
	}
	if !n.IsElement() {
		if s := strings.TrimSpace(n.Text); s != "" {
			b.WriteString(pad)
			xml.EscapeText(b, []byte(s))
			if indent {
				b.WriteByte('\n')
			}
		}
		return
	}
	b.WriteString(pad)
	b.WriteByte('<')
	b.WriteString(n.Name)
	if len(n.Children) == 0 {
		b.WriteString("/>")
		if indent {
			b.WriteByte('\n')
		}
		return
	}
	b.WriteByte('>')
	// Single text child renders inline.
	if len(n.Children) == 1 && !n.Children[0].IsElement() {
		xml.EscapeText(b, []byte(n.Children[0].Text))
		b.WriteString("</")
		b.WriteString(n.Name)
		b.WriteByte('>')
		if indent {
			b.WriteByte('\n')
		}
		return
	}
	if indent {
		b.WriteByte('\n')
	}
	for _, c := range n.Children {
		c.serialize(b, depth+1, indent)
	}
	b.WriteString(pad)
	b.WriteString("</")
	b.WriteString(n.Name)
	b.WriteByte('>')
	if indent {
		b.WriteByte('\n')
	}
}

// Parse builds a Node tree from serialized XML with a single root
// element.
func Parse(s string) (*Node, error) {
	dec := xml.NewDecoder(strings.NewReader(s))
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := Elem(t.Name.Local)
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				top.Children = append(top.Children, n)
			} else if root == nil {
				root = n
			} else {
				return nil, fmt.Errorf("xmltree: multiple root elements")
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end tag %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				if s := string(t); strings.TrimSpace(s) != "" {
					top := stack[len(stack)-1]
					top.Children = append(top.Children, Text(strings.TrimSpace(s)))
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: unclosed element %s", stack[len(stack)-1].Name)
	}
	return root, nil
}

// RemoveChild deletes the first occurrence of the given child pointer
// and reports whether it was found.
func (n *Node) RemoveChild(child *Node) bool {
	for i, c := range n.Children {
		if c == child {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			return true
		}
	}
	return false
}
