package xmltree

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleTree() *Node {
	return Elem("book",
		ElemText("bookid", "98001"),
		ElemText("title", "TCP/IP Illustrated"),
		Elem("publisher",
			ElemText("pubid", "A01"),
			ElemText("pubname", "McGraw-Hill Inc."),
		),
		Elem("review", ElemText("reviewid", "001"), ElemText("comment", "A good book on network.")),
		Elem("review", ElemText("reviewid", "002"), ElemText("comment", "Useful for advanced user.")),
	)
}

func TestNavigation(t *testing.T) {
	b := sampleTree()
	if got := b.ChildText("bookid"); got != "98001" {
		t.Errorf("bookid = %q", got)
	}
	if got := b.Find("publisher", "pubname"); got == nil || got.TextContent() != "McGraw-Hill Inc." {
		t.Errorf("find publisher/pubname = %v", got)
	}
	if got := len(b.ChildrenNamed("review")); got != 2 {
		t.Errorf("reviews = %d", got)
	}
	if got := len(b.ElementChildren()); got != 5 {
		t.Errorf("element children = %d", got)
	}
	if b.Find("missing") != nil {
		t.Error("Find on missing path should be nil")
	}
}

func TestFindAll(t *testing.T) {
	root := Elem("root", sampleTree(), sampleTree())
	ids := root.FindAll("book", "review", "reviewid")
	if len(ids) != 4 {
		t.Fatalf("FindAll = %d nodes, want 4", len(ids))
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	orig := sampleTree()
	parsed, err := Parse(orig.String())
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(orig) {
		t.Fatalf("round trip mismatch:\norig:\n%s\nparsed:\n%s", orig, parsed)
	}
}

func TestSerializeEscaping(t *testing.T) {
	n := ElemText("pubname", "Simon & Schuster <Inc>")
	s := n.String()
	if !strings.Contains(s, "&amp;") || !strings.Contains(s, "&lt;Inc&gt;") {
		t.Errorf("escaping missing: %s", s)
	}
	parsed, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := parsed.TextContent(); got != "Simon & Schuster <Inc>" {
		t.Errorf("unescaped content = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "<a><b></a>", "<a></a><b></b>"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestEqualIgnoresWhitespace(t *testing.T) {
	a, err := Parse("<a><b>x</b></a>")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("<a>\n  <b>\n    x\n  </b>\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("whitespace-differing trees should be Equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := sampleTree()
	cl := orig.Clone()
	cl.Child("bookid").Children[0].Text = "mutated"
	if orig.ChildText("bookid") != "98001" {
		t.Error("clone mutation leaked into original")
	}
	if !orig.Clone().Equal(orig) {
		t.Error("clone not equal to original")
	}
}

func TestRemoveChild(t *testing.T) {
	b := sampleTree()
	pub := b.Child("publisher")
	if !b.RemoveChild(pub) {
		t.Fatal("RemoveChild failed")
	}
	if b.Child("publisher") != nil {
		t.Error("publisher still present")
	}
	if b.RemoveChild(pub) {
		t.Error("second removal should fail")
	}
}

func TestCount(t *testing.T) {
	// book + 2 leaf elems*2 + publisher(1+2*2) + 2 reviews(1+2*2)*2 = 1+4+5+10 = 20
	if got := sampleTree().Count(); got != 20 {
		t.Errorf("Count = %d, want 20", got)
	}
}

func TestEmptyElementSerialization(t *testing.T) {
	n := Elem("title")
	if got := n.StringCompact(); got != "<title/>" {
		t.Errorf("empty element = %q", got)
	}
}

// Property: Clone is always Equal, and serialization round-trips for
// generated leaf text.
func TestQuickRoundTrip(t *testing.T) {
	f := func(text string) bool {
		// xml.EscapeText rejects invalid runes; restrict to printable subset.
		clean := strings.Map(func(r rune) rune {
			if r < 0x20 && r != '\t' && r != '\n' {
				return -1
			}
			if r == 0xFFFD || !strings.ContainsRune("", r) && r > 0xD7FF && r < 0xE000 {
				return -1
			}
			return r
		}, text)
		n := Elem("root", ElemText("leaf", clean))
		parsed, err := Parse(n.String())
		if err != nil {
			return false
		}
		return parsed.Equal(n) || strings.TrimSpace(clean) == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
