// Package shard hash-partitions one view's base-table rows across N
// independent relational databases so that the per-shard commit
// latches, redo pipelines and WAL fsyncs run in parallel while the
// executor stack above keeps seeing a single relational.Engine.
//
// The partitioning is row-level and FK-closure-aware:
//
//   - A root table (no foreign keys) routes each row by an FNV-64a hash
//     of its primary-key values, so all rows with the same key land on
//     the same shard and the engine's local PRIMARY KEY check remains
//     authoritative for hash-routed keys.
//   - A child table routes each row to the shard holding its referenced
//     parent (looked up through the inserting transaction, so a parent
//     inserted earlier in the same transaction is found). Children
//     therefore co-locate transitively with their root ancestor, which
//     keeps FOREIGN KEY existence checks and CASCADE/SET NULL fan-out
//     shard-local for single-FK chains — the shape of every dataset this
//     repo ships (publisher←book←review, region←nation←…←lineitem,
//     organism←protein←citation). A table with several foreign keys
//     co-locates along its first FK only; rows whose other parents live
//     elsewhere still verify correctly because uniqueness is probed
//     cross-shard, but their FK checks rely on the first-FK shard.
//   - A child whose FK values are NULL (or whose parent is missing)
//     falls back to the primary-key hash; the shard-local FK check then
//     accepts the NULL per SQL semantics or rejects the dangling
//     reference with the canonical error.
//
// Constraints that a single shard cannot see — a duplicate key whose
// twin lives on another shard — are closed by scatter probes at
// Insert/UpdateRow time (see Txn). Reads scatter-gather: point lookups
// by row id route to exactly one shard (ids are striped id ≡ shard+1
// (mod N) via SetRowIDAlloc), scans and key lookups merge per-shard
// results in ascending row-id order.
//
// Consistency across shards comes from one latch, DB.xmu: transactions
// and snapshots begin under the read side, cross-shard commits publish
// under the write side, so a reader pins a vector of per-shard views in
// which every cross-shard transaction is visible on all its shards or
// none. Durability for cross-shard commits is an ordered two-phase
// protocol over the per-shard WALs plus a tiny coordinator log; see
// commit.go.
package shard

import (
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/relational"
)

// Options configures a shard group.
type Options struct {
	// Dir is the group's root directory: shard i logs under
	// Dir/shard-<i> and the cross-shard coordinator log is Dir/xlog.
	// Empty runs the whole group in memory (no WALs, no recovery).
	Dir string
	// WAL configures each shard's write-ahead log. The XidCommitted
	// field is owned by the group (it points at the coordinator log's
	// committed-xid set) and must be left nil by callers.
	WAL relational.WALOptions
}

// DB is a shard group: N relational databases behind one Engine.
type DB struct {
	schema *relational.Schema
	shards []*relational.Database
	rds    []relational.Reader // shards, pre-typed for the merge helpers
	n      int
	dir    string
	routes map[string]*tableRoute

	// pkMoved flips (permanently) when an UpdateRow changes a root
	// table's primary key: the moved row no longer lives on its hash
	// shard, so the insert-time shortcut that skips cross-shard PK
	// probes for hash-routed roots is disabled from then on.
	pkMoved atomic.Bool

	// xmu orders cross-shard commits against vector pins: BeginTxn and
	// OpenSnapshot hold the read side while pinning all N shards,
	// commitCross holds the write side from prepare through publish, so
	// no reader ever observes a cross-shard transaction on a strict
	// subset of its shards.
	xmu sync.RWMutex

	nextXid      atomic.Uint64
	xlog         *xlog
	crossCommits atomic.Int64
	crossAborts  atomic.Int64
}

// Recovery aggregates what opening the group's logs found.
type Recovery struct {
	// Shards holds each shard's WAL recovery report, indexed by shard.
	Shards []relational.RecoveryInfo `json:"shards"`
	// CommittedXids counts cross-shard transaction ids the coordinator
	// log held (prepared records missing from it were filtered).
	CommittedXids int `json:"committed_xids"`
	// FilteredTxns sums the per-shard prepared-but-uncommitted records
	// recovery discarded.
	FilteredTxns int64 `json:"filtered_txns"`
}

// tableRoute is the per-table routing metadata derived from the schema.
type tableRoute struct {
	td *relational.TableDef
	pk []string
	// fk is the co-location edge: the table's first foreign key, nil
	// for root tables.
	fk *relational.ForeignKey
	// uniques are the column sets whose uniqueness spans shards and so
	// must be scatter-probed: the primary key (when present, always
	// first) and each UNIQUE column.
	uniques [][]string
}

// New builds a shard group over the seed database's schema and rows.
// Rows are copied shard-by-shard in ascending row-id order (parents
// precede children, since the engine's FK check forces parent ids below
// child ids), then the per-shard WALs and the coordinator log are
// opened: an empty Dir checkpoints the seeded contents, a non-empty one
// discards the seed copy and recovers the logged state instead, exactly
// like relational.OpenWAL does for a single database. n < 1 is clamped
// to 1; a group of 1 delegates everything to its only shard and is
// byte-for-byte equivalent to an unsharded database.
func New(seed *relational.Database, n int, opts Options) (*DB, *Recovery, error) {
	if n < 1 {
		n = 1
	}
	if opts.WAL.XidCommitted != nil {
		return nil, nil, fmt.Errorf("shard: Options.WAL.XidCommitted is owned by the group")
	}
	schema := seed.Schema()
	db := &DB{
		schema: schema,
		shards: make([]*relational.Database, n),
		rds:    make([]relational.Reader, n),
		n:      n,
		dir:    opts.Dir,
		routes: buildRoutes(schema),
	}
	for i := range db.shards {
		s := relational.NewDatabase(schema)
		s.SetRowIDAlloc(relational.RowID(i+1), relational.RowID(n))
		db.shards[i] = s
		db.rds[i] = s
	}
	if err := db.seedFrom(seed); err != nil {
		return nil, nil, err
	}
	rec := &Recovery{Shards: make([]relational.RecoveryInfo, n)}
	var maxXid uint64
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("shard: %w", err)
		}
		x, committed, xmax, err := openXlog(xlogPath(opts.Dir))
		if err != nil {
			return nil, nil, fmt.Errorf("shard: coordinator log: %w", err)
		}
		db.xlog = x
		rec.CommittedXids = len(committed)
		maxXid = xmax
		walOpts := opts.WAL
		walOpts.XidCommitted = func(xid uint64) bool { return committed[xid] }
		if walOpts.PageCacheBytes > 0 && n > 1 {
			// The configured budget bounds the GROUP's page cache: each
			// shard's pool gets an equal slice (rounded up) so the sum
			// stays within one slice of the configured total.
			walOpts.PageCacheBytes = (walOpts.PageCacheBytes + int64(n) - 1) / int64(n)
		}
		// Shards recover in parallel: each shard owns its directory, WAL
		// segments and page store outright, so replay is embarrassingly
		// parallel and the group's recovery wall time is the slowest
		// shard's, not the sum (rec.Shards[i].RecoveryNanos keeps the
		// per-shard times). On failure the lowest-index error wins and
		// every shard that did open is closed again.
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i, s := range db.shards {
			wg.Add(1)
			go func(i int, s *relational.Database) {
				defer wg.Done()
				info, err := s.OpenWAL(shardDir(opts.Dir, i), walOpts)
				if err != nil {
					errs[i] = fmt.Errorf("shard %d: %w", i, err)
					return
				}
				rec.Shards[i] = *info
				// Recovery replays whatever ids the log held; realign the
				// allocator so fresh ids resume on this shard's stripe.
				s.SetRowIDAlloc(relational.RowID(i+1), relational.RowID(n))
			}(i, s)
		}
		wg.Wait()
		for _, err := range errs {
			if err == nil {
				continue
			}
			for j, s := range db.shards {
				if errs[j] == nil {
					_ = s.CloseWAL()
				}
			}
			_ = db.xlog.close()
			return nil, nil, err
		}
		for i := range db.shards {
			info := &rec.Shards[i]
			rec.FilteredTxns += info.FilteredTxns
			if info.MaxXid > maxXid {
				maxXid = info.MaxXid
			}
		}
	}
	db.nextXid.Store(maxXid)
	return db, rec, nil
}

func shardDir(dir string, i int) string { return dir + "/shard-" + itoa(i) }
func xlogPath(dir string) string        { return dir + "/xlog" }
func itoa(i int) string                 { return fmt.Sprintf("%d", i) }

// seedFrom copies the seed's rows into the group, routing each row and
// inserting in ascending global row-id order so parents are present
// before the children that reference them.
func (db *DB) seedFrom(seed *relational.Database) error {
	type seedRow struct {
		id     relational.RowID
		table  string
		values map[string]relational.Value
	}
	var rows []seedRow
	for _, name := range db.schema.TableNames() {
		td, _ := db.schema.Table(name)
		err := seed.Scan(name, func(r *relational.Row) bool {
			vals := make(map[string]relational.Value, len(td.Columns))
			for i, c := range td.Columns {
				if i < len(r.Values) {
					vals[c.Name] = r.Values[i]
				}
			}
			rows = append(rows, seedRow{id: r.ID, table: name, values: vals})
			return true
		})
		if err != nil {
			return err
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	for _, r := range rows {
		s := db.routeInsert(func() []relational.Reader { return db.rds }, r.table, r.values)
		if _, err := db.shards[s].Insert(r.table, r.values); err != nil {
			return fmt.Errorf("shard %d: seeding %s row %d: %w", s, r.table, r.id, err)
		}
	}
	return nil
}

// buildRoutes derives each table's routing metadata from the schema.
func buildRoutes(schema *relational.Schema) map[string]*tableRoute {
	routes := make(map[string]*tableRoute)
	for _, td := range schema.Tables() {
		rt := &tableRoute{td: td, pk: td.PrimaryKey}
		if len(td.ForeignKeys) > 0 {
			rt.fk = &td.ForeignKeys[0]
		}
		if len(td.PrimaryKey) > 0 {
			rt.uniques = append(rt.uniques, td.PrimaryKey)
		}
		for _, c := range td.Columns {
			if c.Unique {
				rt.uniques = append(rt.uniques, []string{c.Name})
			}
		}
		routes[td.Name] = rt
	}
	return routes
}

// shardOf routes a point operation: ids are striped id ≡ shard+1 (mod
// n) by SetRowIDAlloc, so the residue identifies the owning shard.
func (db *DB) shardOf(id relational.RowID) int {
	if db.n == 1 || id < 1 {
		return 0
	}
	return int((int64(id) - 1) % int64(db.n))
}

// routeInsert picks the home shard for a new row: the referenced
// parent's shard for child tables (probed through rds, which are the
// inserting transaction's sub-views so in-transaction parents are
// seen), the primary-key hash otherwise. Unroutable rows (unknown
// table, NULL or missing key components, missing parent) fall back
// deterministically — the target shard's own constraint checks then
// produce the canonical error.
func (db *DB) routeInsert(rds func() []relational.Reader, table string, values map[string]relational.Value) int {
	if db.n == 1 {
		return 0
	}
	rt := db.routes[table]
	if rt == nil {
		return 0
	}
	if rt.fk != nil {
		if vals, ok := keyVals(rt.td, rt.fk.Columns, values); ok {
			for j, rd := range rds() {
				if ids, err := rd.LookupEqual(rt.fk.RefTable, rt.fk.RefColumns, vals); err == nil && len(ids) > 0 {
					return j
				}
			}
		}
	}
	if len(rt.pk) > 0 {
		if vals, ok := keyVals(rt.td, rt.pk, values); ok {
			return int(hashVals(vals) % uint64(db.n))
		}
	}
	return 0
}

// keyVals extracts and type-coerces the named columns from a value map.
// ok is false when any component is missing or NULL — such keys do not
// participate in routing or cross-shard probes (NULLs never collide,
// and missing components fail locally anyway).
func keyVals(td *relational.TableDef, cols []string, values map[string]relational.Value) ([]relational.Value, bool) {
	out := make([]relational.Value, len(cols))
	for i, c := range cols {
		v, ok := values[c]
		if !ok || v.IsNull() {
			return nil, false
		}
		if ci, ok := td.ColumnIndex(c); ok {
			if cv, err := v.CoerceTo(td.Columns[ci].Type); err == nil {
				v = cv
			}
		}
		out[i] = v
	}
	return out, true
}

// hashVals is FNV-64a over the key's EncodeKey forms, NUL-separated.
func hashVals(vals []relational.Value) uint64 {
	h := fnv.New64a()
	for _, v := range vals {
		h.Write([]byte(v.EncodeKey()))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// checkCrossUnique closes the uniqueness gap partitioning opens: the
// home shard's own checks only see its rows, so every unique column set
// is probed on the other shards through rds (the transaction's
// sub-views, so uncommitted duplicates in the same transaction are
// caught too). exclude skips the row being updated; changed, when
// non-nil, restricts probing to sets an update actually touched. The
// primary key of a root table is skipped while the hash co-location
// invariant holds (see DB.pkMoved). Two transactions concurrently
// inserting the same key onto different shards can both pass the probe
// — the same write-skew window the engine's snapshot-isolation FK
// checks already document — and is accepted as this layer's isolation
// level.
func (db *DB) checkCrossUnique(rds func() []relational.Reader, home int, table string, values map[string]relational.Value, exclude relational.RowID, changed map[string]bool) error {
	if db.n == 1 {
		return nil
	}
	rt := db.routes[table]
	if rt == nil {
		return nil
	}
	for si, set := range rt.uniques {
		if changed != nil && !intersects(set, changed) {
			continue
		}
		isPK := si == 0 && len(rt.pk) > 0 // PK is always uniques[0] when present
		if isPK && rt.fk == nil && !db.pkMoved.Load() {
			continue // hash routing already co-locates duplicates
		}
		vals, ok := keyVals(rt.td, set, values)
		if !ok {
			continue
		}
		for j, rd := range rds() {
			if j == home {
				continue
			}
			ids, err := rd.LookupEqual(table, set, vals)
			if err != nil {
				continue
			}
			for _, id := range ids {
				if id == exclude {
					continue
				}
				kind := relational.ErrUnique
				if isPK {
					kind = relational.ErrPrimaryKey
				}
				return fmt.Errorf("%w: %s(%s) duplicates row %d on shard %d",
					kind, table, joinCols(set), id, j)
			}
		}
	}
	return nil
}

func intersects(cols []string, changed map[string]bool) bool {
	for _, c := range cols {
		if changed[c] {
			return true
		}
	}
	return false
}

func joinCols(cols []string) string {
	s := ""
	for i, c := range cols {
		if i > 0 {
			s += ", "
		}
		s += c
	}
	return s
}

// ---- Reader: scatter-gather over the committed shards. Latest reads
// are per-shard read-committed (no vector pin), matching the documented
// degradation of reading the live database instead of a snapshot.

func (db *DB) Schema() *relational.Schema { return db.schema }

func (db *DB) Get(table string, id relational.RowID) (*relational.Row, error) {
	return db.shards[db.shardOf(id)].Get(table, id)
}

func (db *DB) ValuesByName(table string, id relational.RowID) (map[string]relational.Value, error) {
	return db.shards[db.shardOf(id)].ValuesByName(table, id)
}

func (db *DB) Scan(table string, fn func(*relational.Row) bool) error {
	return scanMerged(db.rds, table, fn)
}

func (db *DB) LookupEqual(table string, columns []string, values []relational.Value) ([]relational.RowID, error) {
	return lookupMerged(db.rds, table, columns, values)
}

func (db *DB) HasIndexOn(table string, columns []string) bool {
	return db.shards[0].HasIndexOn(table, columns)
}

func (db *DB) RowCount(table string) int {
	if db.n == 1 {
		return db.shards[0].RowCount(table)
	}
	counts := make([]int, db.n)
	fanOut(db.n, func(i int) { counts[i] = db.shards[i].RowCount(table) })
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

func (db *DB) TotalRows() int {
	n := 0
	for _, s := range db.shards {
		n += s.TotalRows()
	}
	return n
}

// scanMerged visits every shard's rows merged in ascending row-id
// order (each shard scans in insertion order, which is ascending id).
// Retaining the *Row pointers across the sub-scans is safe: version
// payloads are immutable once published.
func scanMerged(rds []relational.Reader, table string, fn func(*relational.Row) bool) error {
	if len(rds) == 1 {
		return rds[0].Scan(table, fn)
	}
	rows := make([][]*relational.Row, len(rds))
	for i, rd := range rds {
		err := rd.Scan(table, func(r *relational.Row) bool {
			rows[i] = append(rows[i], r)
			return true
		})
		if err != nil {
			return err
		}
	}
	idx := make([]int, len(rds))
	for {
		best := -1
		for i := range rows {
			if idx[i] >= len(rows[i]) {
				continue
			}
			if best < 0 || rows[i][idx[i]].ID < rows[best][idx[best]].ID {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		if !fn(rows[best][idx[best]]) {
			return nil
		}
		idx[best]++
	}
}

// lookupMerged concatenates per-shard index lookups, sorted by id for a
// deterministic order. Shards probe in parallel (each reader is a
// distinct per-shard view, so the probes share nothing); the
// lowest-index error wins.
func lookupMerged(rds []relational.Reader, table string, columns []string, values []relational.Value) ([]relational.RowID, error) {
	if len(rds) == 1 {
		return rds[0].LookupEqual(table, columns, values)
	}
	perShard := make([][]relational.RowID, len(rds))
	errs := make([]error, len(rds))
	fanOut(len(rds), func(i int) {
		perShard[i], errs[i] = rds[i].LookupEqual(table, columns, values)
	})
	var out []relational.RowID
	for i := range rds {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, perShard[i]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// fanOut runs fn(i) for i in [0, n) on up to GOMAXPROCS goroutines and
// waits for all of them. Each index is handed to exactly one goroutine,
// so fn may write to index-i slots of shared slices without locking.
func fanOut(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ---- Engine: autocommit DML, lifecycle, statistics and maintenance.

func (db *DB) Insert(table string, values map[string]relational.Value) (relational.RowID, error) {
	t := db.BeginTxn()
	id, err := t.Insert(table, values)
	if err != nil {
		_ = t.Rollback()
		return 0, err
	}
	if err := t.Commit(); err != nil {
		return 0, err
	}
	return id, nil
}

func (db *DB) Delete(table string, id relational.RowID) (int, error) {
	t := db.BeginTxn()
	n, err := t.Delete(table, id)
	if err != nil {
		_ = t.Rollback()
		return 0, err
	}
	if err := t.Commit(); err != nil {
		return 0, err
	}
	return n, nil
}

func (db *DB) UpdateRow(table string, id relational.RowID, changes map[string]relational.Value) error {
	t := db.BeginTxn()
	if err := t.UpdateRow(table, id, changes); err != nil {
		_ = t.Rollback()
		return err
	}
	return t.Commit()
}

// BeginTxn starts a cross-shard write transaction. Sub-transactions
// are acquired lazily as shards are first touched (each under the
// vector latch's read side), so a transaction confined to one shard —
// the common case once writers partition — begins exactly one engine
// transaction; see Txn for the resulting read-view contract.
func (db *DB) BeginTxn() relational.WriteTxn {
	if db.n == 1 {
		return db.shards[0].BeginTxn()
	}
	return &Txn{db: db, subs: make([]*relational.Txn, db.n), rds: make([]relational.Reader, db.n)}
}

// OpenSnapshot pins one snapshot per shard under the vector latch: a
// cross-shard transaction is visible on all its shards or on none.
func (db *DB) OpenSnapshot() relational.Snap {
	if db.n == 1 {
		return db.shards[0].OpenSnapshot()
	}
	db.xmu.RLock()
	defer db.xmu.RUnlock()
	v := &SnapVec{subs: make([]*relational.Snapshot, db.n), rds: make([]relational.Reader, db.n)}
	for i, s := range db.shards {
		sn := s.Snapshot()
		v.subs[i] = sn
		v.rds[i] = sn
	}
	return v
}

// LogStatement routes statement-level redo to shard 0 (statements are
// group-level annotations, not row state; one copy suffices).
func (db *DB) LogStatement(sql string) { db.shards[0].LogStatement(sql) }

// Stats aggregates the per-shard rollups: counters sum; CommitSeq is
// the sum of per-shard sequences — the same monotone logical clock
// SnapVec.Seq reports.
func (db *DB) Stats() relational.DBStats {
	var agg relational.DBStats
	for _, s := range db.shards {
		st := s.Stats()
		agg.StatementsExecuted += st.StatementsExecuted
		agg.RedoRecords += st.RedoRecords
		agg.RedoBytes += st.RedoBytes
		agg.RedoFlushes += st.RedoFlushes
		agg.SnapshotsActive += st.SnapshotsActive
		agg.SnapshotsOpened += st.SnapshotsOpened
		agg.VersionsReclaimed += st.VersionsReclaimed
		agg.Reclaims += st.Reclaims
		agg.CommitSeq += st.CommitSeq
		agg.TxnsActive += st.TxnsActive
		agg.TxnsStarted += st.TxnsStarted
		agg.Conflicts += st.Conflicts
		agg.GroupCommits += st.GroupCommits
		agg.GroupedTxns += st.GroupedTxns
		agg.WALSegments += st.WALSegments
		agg.WALBytes += st.WALBytes
		agg.Fsyncs += st.Fsyncs
		agg.Checkpoints += st.Checkpoints
		agg.RecoveryReplayedTxns += st.RecoveryReplayedTxns
		agg.WALRecycledSegments += st.WALRecycledSegments
		agg.WALPipelineDepth += st.WALPipelineDepth
		agg.PagecacheHits += st.PagecacheHits
		agg.PagecacheMisses += st.PagecacheMisses
		agg.PagecacheEvictions += st.PagecacheEvictions
		agg.PagesTotal += st.PagesTotal
		agg.CompactionPagesWritten += st.CompactionPagesWritten
		// Chain length and pause are per-shard maxima, not sums: the
		// worst shard bounds recovery time and the observable pause.
		if st.CheckpointDeltaChainLen > agg.CheckpointDeltaChainLen {
			agg.CheckpointDeltaChainLen = st.CheckpointDeltaChainLen
		}
		if st.CheckpointLastPauseNs > agg.CheckpointLastPauseNs {
			agg.CheckpointLastPauseNs = st.CheckpointLastPauseNs
		}
	}
	return agg
}

func (db *DB) VersionStats() relational.VersionStats {
	var agg relational.VersionStats
	for _, s := range db.shards {
		vs := s.VersionStats()
		agg.LiveRows += vs.LiveRows
		agg.VisibleRows += vs.VisibleRows
		agg.Versions += vs.Versions
		if vs.MaxChainDepth > agg.MaxChainDepth {
			agg.MaxChainDepth = vs.MaxChainDepth
		}
		agg.SnapshotsActive += vs.SnapshotsActive
		agg.SnapshotsOpened += vs.SnapshotsOpened
		agg.VersionsReclaimed += vs.VersionsReclaimed
		agg.Reclaims += vs.Reclaims
		agg.CommitSeq += vs.CommitSeq
	}
	return agg
}

func (db *DB) StatementsExecutedTotal() int64 {
	var n int64
	for _, s := range db.shards {
		n += s.StatementsExecutedTotal()
	}
	return n
}

func (db *DB) RedoRecords() int64 {
	var n int64
	for _, s := range db.shards {
		n += s.RedoRecords()
	}
	return n
}

func (db *DB) RedoBytes() int64 {
	var n int64
	for _, s := range db.shards {
		n += s.RedoBytes()
	}
	return n
}

func (db *DB) RedoFlushes() int64 {
	var n int64
	for _, s := range db.shards {
		n += s.RedoFlushes()
	}
	return n
}

// LastFsyncNanos reports the slowest of the shards' last fsyncs: for a
// batch fanned out across shards, the max is the flush latency the
// group's committers actually waited on.
func (db *DB) LastFsyncNanos() int64 {
	var max int64
	for _, s := range db.shards {
		if v := s.LastFsyncNanos(); v > max {
			max = v
		}
	}
	return max
}

// FsyncHistogram merges the per-shard fsync distributions bucket-wise
// (all shards share one histogram geometry).
func (db *DB) FsyncHistogram() obs.Snapshot {
	var agg obs.Snapshot
	for _, s := range db.shards {
		sn := s.FsyncHistogram()
		if len(sn.Counts) == 0 {
			continue
		}
		if len(agg.Counts) == 0 {
			counts := make([]uint64, len(sn.Counts))
			copy(counts, sn.Counts)
			agg = obs.Snapshot{MinExp: sn.MinExp, Unit: sn.Unit, Counts: counts, Sum: sn.Sum, Count: sn.Count}
			continue
		}
		for i := range sn.Counts {
			if i < len(agg.Counts) {
				agg.Counts[i] += sn.Counts[i]
			}
		}
		agg.Sum += sn.Sum
		agg.Count += sn.Count
	}
	return agg
}

// CheckpointPauseHistogram merges the per-shard checkpoint-pause
// distributions bucket-wise (all shards share one histogram geometry).
func (db *DB) CheckpointPauseHistogram() obs.Snapshot {
	var agg obs.Snapshot
	for _, s := range db.shards {
		sn := s.CheckpointPauseHistogram()
		if len(sn.Counts) == 0 {
			continue
		}
		if len(agg.Counts) == 0 {
			counts := make([]uint64, len(sn.Counts))
			copy(counts, sn.Counts)
			agg = obs.Snapshot{MinExp: sn.MinExp, Unit: sn.Unit, Counts: counts, Sum: sn.Sum, Count: sn.Count}
			continue
		}
		for i := range sn.Counts {
			if i < len(agg.Counts) {
				agg.Counts[i] += sn.Counts[i]
			}
		}
		agg.Sum += sn.Sum
		agg.Count += sn.Count
	}
	return agg
}

func (db *DB) Reclaim() int {
	n := 0
	for _, s := range db.shards {
		n += s.Reclaim()
	}
	return n
}

func (db *DB) StartReclaimer(interval time.Duration) (stop func()) {
	return db.startAll(interval, (*relational.Database).StartReclaimer)
}

func (db *DB) StartCheckpointer(interval time.Duration) (stop func()) {
	return db.startAll(interval, (*relational.Database).StartCheckpointer)
}

func (db *DB) startAll(interval time.Duration, start func(*relational.Database, time.Duration) func()) func() {
	stops := make([]func(), len(db.shards))
	for i, s := range db.shards {
		stops[i] = start(s, interval)
	}
	return func() {
		for _, stop := range stops {
			stop()
		}
	}
}

// CloseWAL closes every shard's WAL and the coordinator log.
func (db *DB) CloseWAL() error {
	var first error
	for _, s := range db.shards {
		if err := s.CloseWAL(); err != nil && first == nil {
			first = err
		}
	}
	if db.xlog != nil {
		if err := db.xlog.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WALDir returns the group's root directory (empty in memory).
func (db *DB) WALDir() string { return db.dir }

// ShardCount reports the group's width.
func (db *DB) ShardCount() int { return db.n }

// ShardStats returns one statistics rollup per shard.
func (db *DB) ShardStats() []relational.ShardStat {
	out := make([]relational.ShardStat, db.n)
	for i, s := range db.shards {
		out[i] = relational.ShardStat{Shard: i, DBStats: s.Stats(), Rows: s.TotalRows()}
	}
	return out
}

// CrossCommits counts published cross-shard transactions.
func (db *DB) CrossCommits() int64 { return db.crossCommits.Load() }

// CrossAborts counts cross-shard transactions aborted during 2PC.
func (db *DB) CrossAborts() int64 { return db.crossAborts.Load() }

// XlogAppends counts xids made durable in the coordinator log;
// XlogFsyncs counts the Sync calls that covered them. Fsyncs < appends
// means decide points batched through the log's group commit.
func (db *DB) XlogAppends() int64 {
	if db.xlog == nil {
		return 0
	}
	return db.xlog.appends.Load()
}

func (db *DB) XlogFsyncs() int64 {
	if db.xlog == nil {
		return 0
	}
	return db.xlog.fsyncs.Load()
}

var _ relational.Engine = (*DB)(nil)
