package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/relational"
)

// CommitShared publishes a batch of transactions that arrived at a
// group-commit scheduler together. Members are partitioned by the set
// of shards they dirtied:
//
//   - Single-shard members are bucketed per shard and each bucket
//     commits through its shard's ordinary CommitGroup — one commit
//     latch, one WAL flush — with the per-shard groups running in
//     parallel goroutines, so the fsyncs of independent shards overlap.
//     This is the tentpole's throughput path: disjoint writers pay one
//     N-way-parallel flush instead of queueing on a global latch.
//   - Cross-shard members commit one at a time through the ordered
//     two-phase protocol below.
//
// The error slice has one slot per member; members on different shards
// succeed and fail independently.
func (db *DB) CommitShared(txns []relational.WriteTxn) []error {
	if db.n == 1 {
		return db.shards[0].CommitShared(txns)
	}
	errs := make([]error, len(txns))
	perShard := make([][]int, db.n)
	var cross []int
	for i, wt := range txns {
		if wt == nil {
			continue
		}
		t, ok := wt.(*Txn)
		if !ok {
			errs[i] = fmt.Errorf("shard: CommitShared: foreign transaction type %T", wt)
			continue
		}
		switch ds := t.dirtyShards(); len(ds) {
		case 0:
			// Read-only: commit the (empty) shard-0 sub for the normal
			// lifecycle accounting, roll back the rest.
			perShard[0] = append(perShard[0], i)
		case 1:
			perShard[ds[0]] = append(perShard[ds[0]], i)
		default:
			cross = append(cross, i)
		}
	}
	commitBucket := func(s int, members []int) {
		subs := make([]relational.WriteTxn, len(members))
		for k, i := range members {
			subs[k] = txns[i].(*Txn).subs[s]
		}
		subErrs := db.shards[s].CommitShared(subs)
		for k, i := range members {
			errs[i] = subErrs[k]
			txns[i].(*Txn).finishExceptShard(s)
		}
	}
	// Run the last non-empty bucket on the caller's goroutine: the
	// overwhelmingly common shape — one transaction dirtying one shard
	// — then commits with zero spawns and no handoff latency, and
	// multi-bucket batches still overlap all but one flush.
	var wg sync.WaitGroup
	last := -1
	for s := 0; s < db.n; s++ {
		if len(perShard[s]) > 0 {
			last = s
		}
	}
	for s := 0; s < db.n; s++ {
		members := perShard[s]
		if len(members) == 0 || s == last {
			continue
		}
		wg.Add(1)
		go func(s int, members []int) {
			defer wg.Done()
			commitBucket(s, members)
		}(s, members)
	}
	if last >= 0 {
		commitBucket(last, perShard[last])
	}
	wg.Wait()
	// Cross-shard members run concurrently: prepares take shard latches
	// in ascending order (deadlock-free), and their decide-point fsyncs
	// batch through the coordinator log's group commit.
	if n := len(cross); n > 0 {
		var cwg sync.WaitGroup
		for _, i := range cross[:n-1] {
			cwg.Add(1)
			go func(i int) {
				defer cwg.Done()
				errs[i] = db.commitCross(txns[i].(*Txn))
			}(i)
		}
		errs[cross[n-1]] = db.commitCross(txns[cross[n-1]].(*Txn))
		cwg.Wait()
	}
	return errs
}

// commitOne is Txn.Commit's synchronous path: CommitShared's
// partitioning specialized to a single member, with no slice, map or
// goroutine between the caller and the shard's commit latch — on one
// core the per-commit CPU this saves comes straight out of the gap
// between consecutive fsyncs, which is what bounds how deep the
// per-shard flush streams actually overlap.
func (db *DB) commitOne(t *Txn) error {
	dirty, count := -1, 0
	for i, sub := range t.subs {
		if sub != nil && sub.OpCount() > 0 {
			dirty = i
			count++
		}
	}
	switch count {
	case 0:
		// Read-only: commit one acquired sub for the normal lifecycle
		// accounting (matching the bucket path), roll back the rest.
		for i, sub := range t.subs {
			if sub != nil {
				err := db.shards[i].CommitGroup(sub)
				t.finishExceptShard(i)
				return err
			}
		}
		return nil
	case 1:
		err := db.shards[dirty].CommitGroup(t.subs[dirty])
		t.finishExceptShard(dirty)
		return err
	default:
		return db.commitCross(t)
	}
}

// commitCross publishes one transaction across its dirty shards with an
// ordered two-phase claim/publish:
//
//	prepare: each dirty shard, in ascending order, force-flushes the
//	         transaction's redo tagged with a fresh cross-shard id
//	         (xid) and holds its commit latch (PrepareGroup);
//	decide:  the coordinator log appends the xid and fsyncs — this
//	         single write is the commit point;
//	publish: every shard stamps its versions visible and releases its
//	         latch (Publish).
//
// Only the publish phase runs under the write side of the vector latch
// — the shortest window that keeps readers from pinning a vector
// between two shards' publishes. Prepares run WITHOUT the vector latch:
// concurrent cross-shard commits acquire shard latches in ascending
// shard order, which is deadlock-free (and deadlock-free against the
// single-shard path, which only ever holds one latch), and prepared
// stamps stay invisible until the publish advances each shard's commit
// sequence. Freeing the prepare and decide phases from the vector latch
// is what lets concurrent decide-point fsyncs batch in the coordinator
// log's group commit below.
//
// Recovery replays a shard's xid-tagged record only if the coordinator
// log holds the xid (WALOptions.XidCommitted): a crash before the
// decide point aborts the transaction on every shard, a crash after it
// commits it on every shard — never a torn prefix. An in-memory group
// (no coordinator log) skips the decide write; prepare/publish still
// give atomic visibility.
//
// Conflict handling needs nothing new: write-write conflicts surface at
// claim time inside the sub-transactions (relational.ErrWriteConflict),
// before commit is ever attempted, and the plan layer's existing retry
// loop re-runs the whole cross-shard apply.
func (db *DB) commitCross(t *Txn) error {
	ds := t.dirtyShards()
	xid := db.nextXid.Add(1)
	consumed := make(map[int]bool, len(ds))
	pgs := make([]*relational.PreparedGroup, 0, len(ds))
	var err error
	for _, s := range ds {
		pg, perr := db.shards[s].PrepareGroup(xid, []*relational.Txn{t.subs[s]})
		if perr != nil {
			// PrepareGroup undid and forgot the sub-transaction itself.
			consumed[s] = true
			err = fmt.Errorf("shard %d: %w", s, perr)
			break
		}
		pgs = append(pgs, pg)
		consumed[s] = true
	}
	if err == nil && db.xlog != nil {
		if werr := db.xlog.append(xid); werr != nil {
			err = fmt.Errorf("%w: coordinator log: %v", relational.ErrWALFailed, werr)
		}
	}
	if err != nil {
		// Aborts need no vector latch: the prepared stamps were never
		// published, so undoing them is invisible to every reader.
		for _, pg := range pgs {
			_ = pg.Abort()
		}
		t.finishExcept(consumed)
		db.crossAborts.Add(1)
		return err
	}
	db.xmu.Lock()
	var pubErr error
	for _, pg := range pgs {
		if perr := pg.Publish(); perr != nil && pubErr == nil {
			pubErr = perr
		}
	}
	db.xmu.Unlock()
	t.finishExcept(consumed)
	db.crossCommits.Add(1)
	// Maintenance (reclaim, threshold checkpoints) runs after every
	// latch is released: Publish itself must stay latch-short, and a
	// checkpoint inside the vector latch would stall every reader.
	for _, s := range ds {
		db.shards[s].MaybeMaintain()
	}
	return pubErr
}

// xlog is the cross-shard coordinator log: an append-only file of
// committed xids, one CRC-framed uvarint per cross-shard commit. The
// append+fsync is the 2PC decide point. The log is never compacted — at
// ~12 bytes per cross-shard commit it grows slower than any shard's
// WAL, and recovery reads it once into a set; a future checkpoint could
// fold xids below every shard's checkpoint sequence away.
//
// Appends group-commit: concurrent callers enqueue their xids and one
// leader writes every pending frame with a single fsync, so N
// simultaneous cross-shard commits pay one decide-point flush, not N.
type xlog struct {
	mu       sync.Mutex
	f        *os.File
	pending  []xlogWaiter // xids enqueued for the next flush
	flushing bool         // a leader is draining pending
	appends  atomic.Int64 // xids made durable
	fsyncs   atomic.Int64 // Sync calls that covered them
}

// xlogWaiter is one enqueued decide-point append; done (buffered 1)
// receives the flush outcome.
type xlogWaiter struct {
	xid  uint64
	done chan error
}

// openXlog reads the committed-xid set (truncating any torn tail, as a
// crash mid-append leaves one) and opens the file for appending.
func openXlog(path string) (*xlog, map[uint64]bool, uint64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	committed := make(map[uint64]bool)
	var maxXid uint64
	var off int64
	buf, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	for {
		if len(buf)-int(off) < 8 {
			break
		}
		frame := buf[off:]
		n := binary.LittleEndian.Uint32(frame[0:4])
		crc := binary.LittleEndian.Uint32(frame[4:8])
		if n == 0 || n > 16 || len(frame) < 8+int(n) {
			break
		}
		payload := frame[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		xid, k := binary.Uvarint(payload)
		if k <= 0 {
			break
		}
		committed[xid] = true
		if xid > maxXid {
			maxXid = xid
		}
		off += int64(8 + n)
	}
	if off < int64(len(buf)) {
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	return &xlog{f: f}, committed, maxXid, nil
}

// append durably records a committed xid; returning nil means the
// decision is on disk. Concurrent appends batch: whoever finds no flush
// in progress becomes the leader and drains the pending queue —
// including xids enqueued while it was flushing — writing each batch
// with one Sync; everyone else parks on its done channel.
func (x *xlog) append(xid uint64) error {
	x.mu.Lock()
	if x.f == nil {
		x.mu.Unlock()
		return fmt.Errorf("shard: coordinator log is closed")
	}
	done := make(chan error, 1)
	x.pending = append(x.pending, xlogWaiter{xid: xid, done: done})
	if x.flushing {
		x.mu.Unlock()
		return <-done
	}
	x.flushing = true
	for len(x.pending) > 0 {
		batch := x.pending
		x.pending = nil
		f := x.f
		x.mu.Unlock()
		err := flushXids(f, batch)
		if err == nil {
			x.appends.Add(int64(len(batch)))
			x.fsyncs.Add(1)
		}
		for _, wtr := range batch {
			wtr.done <- err
		}
		x.mu.Lock()
	}
	x.flushing = false
	x.mu.Unlock()
	return <-done
}

// flushXids writes every waiter's frame and makes them durable with a
// single fsync. f is captured under x.mu by the leader; a concurrent
// close surfaces here as a write/sync error distributed to the batch.
func flushXids(f *os.File, batch []xlogWaiter) error {
	if f == nil {
		return fmt.Errorf("shard: coordinator log is closed")
	}
	var frames []byte
	for _, wtr := range batch {
		payload := binary.AppendUvarint(nil, wtr.xid)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		frames = append(frames, hdr[:]...)
		frames = append(frames, payload...)
	}
	off, _ := f.Seek(0, io.SeekCurrent)
	if _, err := f.Write(frames); err != nil {
		// Best-effort: cut any partial frame back off so a later append
		// cannot land behind garbage that recovery's scan would stop at.
		_ = f.Truncate(off)
		_, _ = f.Seek(off, io.SeekStart)
		return err
	}
	return f.Sync()
}

func (x *xlog) close() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.f == nil {
		return nil
	}
	err := x.f.Close()
	x.f = nil
	return err
}
