package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/relational"
)

// CommitShared publishes a batch of transactions that arrived at a
// group-commit scheduler together. Members are partitioned by the set
// of shards they dirtied:
//
//   - Single-shard members are bucketed per shard and each bucket
//     commits through its shard's ordinary CommitGroup — one commit
//     latch, one WAL flush — with the per-shard groups running in
//     parallel goroutines, so the fsyncs of independent shards overlap.
//     This is the tentpole's throughput path: disjoint writers pay one
//     N-way-parallel flush instead of queueing on a global latch.
//   - Cross-shard members commit one at a time through the ordered
//     two-phase protocol below.
//
// The error slice has one slot per member; members on different shards
// succeed and fail independently.
func (db *DB) CommitShared(txns []relational.WriteTxn) []error {
	if db.n == 1 {
		return db.shards[0].CommitShared(txns)
	}
	errs := make([]error, len(txns))
	perShard := make([][]int, db.n)
	var cross []int
	for i, wt := range txns {
		if wt == nil {
			continue
		}
		t, ok := wt.(*Txn)
		if !ok {
			errs[i] = fmt.Errorf("shard: CommitShared: foreign transaction type %T", wt)
			continue
		}
		switch ds := t.dirtyShards(); len(ds) {
		case 0:
			// Read-only: commit the (empty) shard-0 sub for the normal
			// lifecycle accounting, roll back the rest.
			perShard[0] = append(perShard[0], i)
		case 1:
			perShard[ds[0]] = append(perShard[ds[0]], i)
		default:
			cross = append(cross, i)
		}
	}
	commitBucket := func(s int, members []int) {
		subs := make([]relational.WriteTxn, len(members))
		for k, i := range members {
			subs[k] = txns[i].(*Txn).subs[s]
		}
		subErrs := db.shards[s].CommitShared(subs)
		for k, i := range members {
			errs[i] = subErrs[k]
			txns[i].(*Txn).finishExceptShard(s)
		}
	}
	// Run the last non-empty bucket on the caller's goroutine: the
	// overwhelmingly common shape — one transaction dirtying one shard
	// — then commits with zero spawns and no handoff latency, and
	// multi-bucket batches still overlap all but one flush.
	var wg sync.WaitGroup
	last := -1
	for s := 0; s < db.n; s++ {
		if len(perShard[s]) > 0 {
			last = s
		}
	}
	for s := 0; s < db.n; s++ {
		members := perShard[s]
		if len(members) == 0 || s == last {
			continue
		}
		wg.Add(1)
		go func(s int, members []int) {
			defer wg.Done()
			commitBucket(s, members)
		}(s, members)
	}
	if last >= 0 {
		commitBucket(last, perShard[last])
	}
	wg.Wait()
	for _, i := range cross {
		errs[i] = db.commitCross(txns[i].(*Txn))
	}
	return errs
}

// commitOne is Txn.Commit's synchronous path: CommitShared's
// partitioning specialized to a single member, with no slice, map or
// goroutine between the caller and the shard's commit latch — on one
// core the per-commit CPU this saves comes straight out of the gap
// between consecutive fsyncs, which is what bounds how deep the
// per-shard flush streams actually overlap.
func (db *DB) commitOne(t *Txn) error {
	dirty, count := -1, 0
	for i, sub := range t.subs {
		if sub != nil && sub.OpCount() > 0 {
			dirty = i
			count++
		}
	}
	switch count {
	case 0:
		// Read-only: commit one acquired sub for the normal lifecycle
		// accounting (matching the bucket path), roll back the rest.
		for i, sub := range t.subs {
			if sub != nil {
				err := db.shards[i].CommitGroup(sub)
				t.finishExceptShard(i)
				return err
			}
		}
		return nil
	case 1:
		err := db.shards[dirty].CommitGroup(t.subs[dirty])
		t.finishExceptShard(dirty)
		return err
	default:
		return db.commitCross(t)
	}
}

// commitCross publishes one transaction across its dirty shards with an
// ordered two-phase claim/publish:
//
//	prepare: each dirty shard, in ascending order, force-flushes the
//	         transaction's redo tagged with a fresh cross-shard id
//	         (xid) and holds its commit latch (PrepareGroup);
//	decide:  the coordinator log appends the xid and fsyncs — this
//	         single write is the commit point;
//	publish: every shard stamps its versions visible and releases its
//	         latch (Publish).
//
// The whole protocol runs under the write side of the vector latch, so
// no reader pins a vector between two shards' publishes and no two
// cross-shard commits interleave their prepares (which also makes the
// ascending latch order deadlock-free against the single-shard path,
// which only ever holds one latch).
//
// Recovery replays a shard's xid-tagged record only if the coordinator
// log holds the xid (WALOptions.XidCommitted): a crash before the
// decide point aborts the transaction on every shard, a crash after it
// commits it on every shard — never a torn prefix. An in-memory group
// (no coordinator log) skips the decide write; prepare/publish still
// give atomic visibility.
//
// Conflict handling needs nothing new: write-write conflicts surface at
// claim time inside the sub-transactions (relational.ErrWriteConflict),
// before commit is ever attempted, and the plan layer's existing retry
// loop re-runs the whole cross-shard apply.
func (db *DB) commitCross(t *Txn) error {
	ds := t.dirtyShards()
	xid := db.nextXid.Add(1)
	consumed := make(map[int]bool, len(ds))
	db.xmu.Lock()
	pgs := make([]*relational.PreparedGroup, 0, len(ds))
	var err error
	for _, s := range ds {
		pg, perr := db.shards[s].PrepareGroup(xid, []*relational.Txn{t.subs[s]})
		if perr != nil {
			// PrepareGroup undid and forgot the sub-transaction itself.
			consumed[s] = true
			err = fmt.Errorf("shard %d: %w", s, perr)
			break
		}
		pgs = append(pgs, pg)
		consumed[s] = true
	}
	if err == nil && db.xlog != nil {
		if werr := db.xlog.append(xid); werr != nil {
			err = fmt.Errorf("%w: coordinator log: %v", relational.ErrWALFailed, werr)
		}
	}
	if err != nil {
		for _, pg := range pgs {
			_ = pg.Abort()
		}
		db.xmu.Unlock()
		t.finishExcept(consumed)
		db.crossAborts.Add(1)
		return err
	}
	var pubErr error
	for _, pg := range pgs {
		if perr := pg.Publish(); perr != nil && pubErr == nil {
			pubErr = perr
		}
	}
	db.xmu.Unlock()
	t.finishExcept(consumed)
	db.crossCommits.Add(1)
	return pubErr
}

// xlog is the cross-shard coordinator log: an append-only file of
// committed xids, one CRC-framed uvarint per cross-shard commit. The
// append+fsync is the 2PC decide point. The log is never compacted — at
// ~12 bytes per cross-shard commit it grows slower than any shard's
// WAL, and recovery reads it once into a set; a future checkpoint could
// fold xids below every shard's checkpoint sequence away.
type xlog struct {
	mu sync.Mutex
	f  *os.File
}

// openXlog reads the committed-xid set (truncating any torn tail, as a
// crash mid-append leaves one) and opens the file for appending.
func openXlog(path string) (*xlog, map[uint64]bool, uint64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	committed := make(map[uint64]bool)
	var maxXid uint64
	var off int64
	buf, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	for {
		if len(buf)-int(off) < 8 {
			break
		}
		frame := buf[off:]
		n := binary.LittleEndian.Uint32(frame[0:4])
		crc := binary.LittleEndian.Uint32(frame[4:8])
		if n == 0 || n > 16 || len(frame) < 8+int(n) {
			break
		}
		payload := frame[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		xid, k := binary.Uvarint(payload)
		if k <= 0 {
			break
		}
		committed[xid] = true
		if xid > maxXid {
			maxXid = xid
		}
		off += int64(8 + n)
	}
	if off < int64(len(buf)) {
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	return &xlog{f: f}, committed, maxXid, nil
}

// append durably records a committed xid; returning nil means the
// decision is on disk.
func (x *xlog) append(xid uint64) error {
	payload := binary.AppendUvarint(nil, xid)
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.f == nil {
		return fmt.Errorf("shard: coordinator log is closed")
	}
	if _, err := x.f.Write(frame); err != nil {
		return err
	}
	return x.f.Sync()
}

func (x *xlog) close() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.f == nil {
		return nil
	}
	err := x.f.Close()
	x.f = nil
	return err
}
