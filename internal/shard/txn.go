package shard

import (
	"fmt"

	"repro/internal/relational"
)

// Txn is a cross-shard write transaction: a vector of per-shard
// sub-transactions acquired lazily on first touch, so a transaction
// confined to one shard (the common case once writers partition) costs
// exactly one engine transaction — no begin/rollback churn on the
// other N-1 shards' latches. Writes route exactly like autocommit DML
// (parent-shard co-location for children, PK hash for roots, id
// residue for point updates/deletes) and carry the cross-shard
// uniqueness probes a single shard cannot perform.
//
// Each sub-transaction reads a consistent snapshot of its shard, but
// the vector is cut shard-by-shard as shards are first touched, under
// the vector latch's read side — so a sub acquired later may see a
// cross-shard commit an earlier sub predates. Readers that need the
// all-or-nothing view of cross-shard transactions use DB.OpenSnapshot,
// which still pins every shard at one instant; inside a write
// transaction that window is the same write-skew exposure the
// scatter probes already document.
//
// Savepoints are vectors too: Savepoint marks every acquired
// sub-transaction and RollbackTo unwinds each to its mark, so the plan
// layer's per-item rollback in batched applies keeps working
// unchanged. A sub acquired after a savepoint had no operations at
// mark time, so its implied mark is zero (the engine's marks are
// operation counts).
//
// Commit routes through DB.CommitShared: a transaction that dirtied one
// shard commits through that shard's ordinary group-commit path (one
// latch, one fsync, parallel with other shards); one that dirtied
// several commits through the ordered two-phase protocol in commit.go.
type Txn struct {
	db   *DB
	subs []*relational.Txn   // nil until the shard is first touched
	rds  []relational.Reader // acquired subs, pre-typed for the merge helpers
	// saves holds the savepoint vectors handed out so far; the mark
	// returned by Savepoint is an index into it.
	saves [][]int
}

// sub returns the shard's sub-transaction, beginning it on first
// touch. Acquisition happens under the vector latch's read side so it
// never observes a cross-shard commit mid-publish.
func (t *Txn) sub(s int) *relational.Txn {
	if t.subs[s] == nil {
		t.db.xmu.RLock()
		t.subs[s] = t.db.shards[s].Begin()
		t.db.xmu.RUnlock()
		t.rds[s] = t.subs[s]
	}
	return t.subs[s]
}

// readers acquires every shard's sub-transaction — scatter reads must
// see the transaction's own writes on every shard.
func (t *Txn) readers() []relational.Reader {
	for s := range t.subs {
		if t.subs[s] == nil {
			t.sub(s)
		}
	}
	return t.rds
}

// ---- Reader over the transaction's own view (own writes visible).

func (t *Txn) Schema() *relational.Schema { return t.db.schema }

func (t *Txn) Get(table string, id relational.RowID) (*relational.Row, error) {
	return t.sub(t.db.shardOf(id)).Get(table, id)
}

func (t *Txn) ValuesByName(table string, id relational.RowID) (map[string]relational.Value, error) {
	return t.sub(t.db.shardOf(id)).ValuesByName(table, id)
}

func (t *Txn) Scan(table string, fn func(*relational.Row) bool) error {
	return scanMerged(t.readers(), table, fn)
}

func (t *Txn) LookupEqual(table string, columns []string, values []relational.Value) ([]relational.RowID, error) {
	return lookupMerged(t.readers(), table, columns, values)
}

func (t *Txn) HasIndexOn(table string, columns []string) bool {
	// Index presence is schema-static: answer from the shard itself
	// rather than acquiring a sub-transaction.
	return t.db.rds[0].HasIndexOn(table, columns)
}

func (t *Txn) RowCount(table string) int {
	n := 0
	for _, s := range t.readers() {
		n += s.RowCount(table)
	}
	return n
}

func (t *Txn) TotalRows() int {
	n := 0
	for _, s := range t.readers() {
		n += s.TotalRows()
	}
	return n
}

// ---- Writes.

// Insert routes the row to its home shard, scatter-probes uniqueness on
// the others, then inserts through the home sub-transaction (whose
// local checks cover co-located constraints: same-shard keys, FK
// existence, NOT NULL, CHECK).
func (t *Txn) Insert(table string, values map[string]relational.Value) (relational.RowID, error) {
	s := t.db.routeInsert(t.readers, table, values)
	if err := t.db.checkCrossUnique(t.readers, s, table, values, 0, nil); err != nil {
		return 0, err
	}
	return t.sub(s).Insert(table, values)
}

// Delete routes by id residue; referential actions (CASCADE, SET NULL)
// stay shard-local because children co-locate with their parents.
func (t *Txn) Delete(table string, id relational.RowID) (int, error) {
	return t.sub(t.db.shardOf(id)).Delete(table, id)
}

// UpdateRow routes by id residue and probes the other shards for any
// unique column set the change touches. A primary-key change on a
// hash-routed root table permanently disables the group's PK-probe
// shortcut (the row no longer lives on its hash shard).
func (t *Txn) UpdateRow(table string, id relational.RowID, changes map[string]relational.Value) error {
	s := t.db.shardOf(id)
	if t.db.n > 1 {
		if rt := t.db.routes[table]; rt != nil {
			if old, err := t.sub(s).ValuesByName(table, id); err == nil {
				changed := make(map[string]bool, len(changes))
				eff := old
				for c, v := range changes {
					changed[c] = true
					eff[c] = v
				}
				if rt.fk == nil && intersects(rt.pk, changed) {
					t.db.pkMoved.Store(true)
				}
				if err := t.db.checkCrossUnique(t.readers, s, table, eff, id, changed); err != nil {
					return err
				}
			}
			// A lookup error (e.g. no such row) falls through so the
			// sub-transaction reports the canonical error.
		}
	}
	return t.sub(s).UpdateRow(table, id, changes)
}

// Savepoint marks every acquired sub-transaction and returns a vector
// mark. Unacquired shards carry an implicit mark of zero: the engine's
// marks are operation counts, and a sub begun after the savepoint had
// none at mark time.
func (t *Txn) Savepoint() int {
	v := make([]int, len(t.subs))
	for i, s := range t.subs {
		if s != nil {
			v[i] = s.Savepoint()
		}
	}
	t.saves = append(t.saves, v)
	return len(t.saves) - 1
}

// RollbackTo unwinds every acquired sub-transaction to the vector mark.
func (t *Txn) RollbackTo(mark int) error {
	if mark < 0 || mark >= len(t.saves) {
		return fmt.Errorf("shard: invalid savepoint %d (have %d)", mark, len(t.saves))
	}
	v := t.saves[mark]
	for i, s := range t.subs {
		if s == nil {
			continue
		}
		if err := s.RollbackTo(v[i]); err != nil {
			return err
		}
	}
	t.saves = t.saves[:mark]
	return nil
}

// Rollback undoes every acquired sub-transaction.
func (t *Txn) Rollback() error {
	var first error
	for _, s := range t.subs {
		if s == nil {
			continue
		}
		if err := s.Rollback(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Commit publishes through the group's shared-commit path (single-shard
// fast path or cross-shard 2PC, chosen by which shards are dirty).
func (t *Txn) Commit() error {
	return t.db.commitOne(t)
}

// OpCount sums the acquired sub-transactions' logged operations.
func (t *Txn) OpCount() int {
	n := 0
	for _, s := range t.subs {
		if s != nil {
			n += s.OpCount()
		}
	}
	return n
}

// dirtyShards lists the shards this transaction has written.
func (t *Txn) dirtyShards() []int {
	var ds []int
	for i, s := range t.subs {
		if s != nil && s.OpCount() > 0 {
			ds = append(ds, i)
		}
	}
	return ds
}

// finishExcept rolls back every acquired sub-transaction not in
// consumed (the ones a commit path already finished via commit, abort
// or prepare failure), releasing their version pins.
func (t *Txn) finishExcept(consumed map[int]bool) {
	for i, s := range t.subs {
		if s != nil && !consumed[i] {
			_ = s.Rollback()
		}
	}
}

// finishExceptShard is finishExcept for the single-consumed-shard case,
// allocation-free for the synchronous commit hot path.
func (t *Txn) finishExceptShard(s int) {
	for i, sub := range t.subs {
		if sub != nil && i != s {
			_ = sub.Rollback()
		}
	}
}

var _ relational.WriteTxn = (*Txn)(nil)
