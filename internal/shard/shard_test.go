package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/bookdb"
	"repro/internal/relational"
)

func newGroup(t *testing.T, n int, opts Options) (*DB, *Recovery) {
	t.Helper()
	seed, err := bookdb.NewDatabase(relational.DeleteCascade)
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	db, rec, err := New(seed, n, opts)
	if err != nil {
		t.Fatalf("New(n=%d): %v", n, err)
	}
	return db, rec
}

// dump renders every visible row of every table as "table|id|v1,v2,..".
func dump(t *testing.T, rd relational.Reader) []string {
	t.Helper()
	var out []string
	for _, name := range rd.Schema().TableNames() {
		err := rd.Scan(name, func(r *relational.Row) bool {
			line := fmt.Sprintf("%s|%d|", name, r.ID)
			for _, v := range r.Values {
				line += v.EncodeKey() + ","
			}
			out = append(out, line)
			return true
		})
		if err != nil {
			t.Fatalf("scan %s: %v", name, err)
		}
	}
	return out
}

// pubOnShard finds a publisher id (with the given prefix) whose PK hash
// routes to the wanted shard.
func pubOnShard(db *DB, want int, prefix string) string {
	for i := 0; ; i++ {
		id := fmt.Sprintf("%s%04d", prefix, i)
		if int(hashVals([]relational.Value{relational.String_(id)})%uint64(db.n)) == want {
			return id
		}
	}
}

func insertPub(t *testing.T, w relational.WriteTxn, pubid, pubname string) {
	t.Helper()
	if _, err := w.Insert("publisher", map[string]relational.Value{
		"pubid": relational.String_(pubid), "pubname": relational.String_(pubname),
	}); err != nil {
		t.Fatalf("insert publisher %s: %v", pubid, err)
	}
}

func insertBook(w relational.WriteTxn, bookid, pubid string) error {
	_, err := w.Insert("book", map[string]relational.Value{
		"bookid": relational.String_(bookid), "title": relational.String_("t-" + bookid),
		"pubid": relational.String_(pubid), "price": relational.Float_(10),
		"year": relational.Int_(2000),
	})
	return err
}

// TestShardsOneParity drives the same write sequence through a
// 1-shard group and a plain database and requires byte-for-byte equal
// dumps, row ids included: shards=1 must be indistinguishable from the
// unsharded path.
func TestShardsOneParity(t *testing.T) {
	plain, err := bookdb.NewDatabase(relational.DeleteCascade)
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	group, _ := newGroup(t, 1, Options{})
	run := func(eng relational.Engine) {
		t.Helper()
		if _, err := eng.Insert("publisher", map[string]relational.Value{
			"pubid": relational.String_("Z01"), "pubname": relational.String_("Parity Press"),
		}); err != nil {
			t.Fatalf("insert: %v", err)
		}
		txn := eng.BeginTxn()
		if err := insertBook(txn, "99001", "Z01"); err != nil {
			t.Fatalf("book: %v", err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
		ids, err := eng.LookupEqual("book", []string{"bookid"}, []relational.Value{relational.String_("98001")})
		if err != nil || len(ids) != 1 {
			t.Fatalf("lookup: %v %v", ids, err)
		}
		if err := eng.UpdateRow("book", ids[0], map[string]relational.Value{
			"price": relational.Float_(39.99),
		}); err != nil {
			t.Fatalf("update: %v", err)
		}
		if _, err := eng.Delete("book", ids[0]); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
	run(plain)
	run(group)
	got, want := dump(t, group), dump(t, plain)
	if len(got) != len(want) {
		t.Fatalf("row counts differ: sharded %d vs plain %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dump line %d differs:\nsharded: %s\nplain:   %s", i, got[i], want[i])
		}
	}
}

// TestRoutingCoLocatesAndStripes checks the two routing invariants: a
// child row lives on its parent's shard (transitively), and every row
// id's residue identifies its shard.
func TestRoutingCoLocatesAndStripes(t *testing.T) {
	db, _ := newGroup(t, 4, Options{})
	// Grow the dataset so every shard sees traffic.
	for i := 0; i < 8; i++ {
		pub := fmt.Sprintf("P%02d", i)
		if _, err := db.Insert("publisher", map[string]relational.Value{
			"pubid": relational.String_(pub), "pubname": relational.String_("House " + pub),
		}); err != nil {
			t.Fatalf("publisher: %v", err)
		}
		txn := db.BeginTxn()
		if err := insertBook(txn, fmt.Sprintf("90%03d", i), pub); err != nil {
			t.Fatalf("book: %v", err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	shardOfKey := func(table, col, key string) int {
		ids, err := db.LookupEqual(table, []string{col}, []relational.Value{relational.String_(key)})
		if err != nil || len(ids) != 1 {
			t.Fatalf("lookup %s=%s: ids=%v err=%v", table, key, ids, err)
		}
		return db.shardOf(ids[0])
	}
	// Each shard must own its rows id-residue-wise.
	for i, s := range db.shards {
		for _, table := range db.schema.TableNames() {
			s.Scan(table, func(r *relational.Row) bool {
				if db.shardOf(r.ID) != i {
					t.Errorf("%s row %d stored on shard %d but residue says %d", table, r.ID, i, db.shardOf(r.ID))
				}
				return true
			})
		}
	}
	// Children co-locate with parents.
	db.Scan("book", func(r *relational.Row) bool {
		vals, _ := db.ValuesByName("book", r.ID)
		if pub := vals["pubid"]; !pub.IsNull() {
			if ps := shardOfKey("publisher", "pubid", pub.Str); ps != db.shardOf(r.ID) {
				t.Errorf("book %d on shard %d, its publisher on shard %d", r.ID, db.shardOf(r.ID), ps)
			}
		}
		return true
	})
	db.Scan("review", func(r *relational.Row) bool {
		vals, _ := db.ValuesByName("review", r.ID)
		if bs := shardOfKey("book", "bookid", vals["bookid"].Str); bs != db.shardOf(r.ID) {
			t.Errorf("review %d on shard %d, its book on shard %d", r.ID, db.shardOf(r.ID), bs)
		}
		return true
	})
}

// TestCrossShardUniqueness inserts duplicate keys whose twins live on
// other shards: the scatter probe must reject them with the canonical
// constraint errors even though the home shard's local check passes.
func TestCrossShardUniqueness(t *testing.T) {
	db, _ := newGroup(t, 4, Options{})
	// Two publishers pinned to different shards.
	p0, p1 := pubOnShard(db, 0, "U"), pubOnShard(db, 1, "U")
	txn := db.BeginTxn()
	insertPub(t, txn, p0, "Unique House A")
	insertPub(t, txn, p1, "Unique House B")
	if err := insertBook(txn, "70001", p0); err != nil {
		t.Fatalf("first book: %v", err)
	}
	// Same bookid under a parent on another shard: local PK check
	// cannot see the twin, the cross-shard probe must.
	if err := insertBook(txn, "70001", p1); !errors.Is(err, relational.ErrPrimaryKey) {
		t.Fatalf("duplicate bookid across shards: got %v, want ErrPrimaryKey", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	// UNIQUE column duplicated across shards (publisher is hash-routed,
	// so equal pubnames under different pubids land on different shards).
	q0, q1 := pubOnShard(db, 2, "Q"), pubOnShard(db, 3, "Q")
	insertPub(t, db.BeginTxnT(t), q0, "Same Name Press")
	w := db.BeginTxn()
	if _, err := w.Insert("publisher", map[string]relational.Value{
		"pubid": relational.String_(q1), "pubname": relational.String_("Same Name Press"),
	}); !errors.Is(err, relational.ErrUnique) {
		t.Fatalf("duplicate pubname across shards: got %v, want ErrUnique", err)
	}
	w.Rollback()
}

// BeginTxnT begins and auto-commits via t.Cleanup-free helper: commit
// immediately after the caller's single insert (test convenience).
func (db *DB) BeginTxnT(t *testing.T) relational.WriteTxn {
	t.Helper()
	return &autoCommitTxn{t: t, WriteTxn: db.BeginTxn()}
}

type autoCommitTxn struct {
	t *testing.T
	relational.WriteTxn
}

func (a *autoCommitTxn) Insert(table string, values map[string]relational.Value) (relational.RowID, error) {
	id, err := a.WriteTxn.Insert(table, values)
	if err != nil {
		return id, err
	}
	return id, a.WriteTxn.Commit()
}

// TestCrossShardFKAndCascade: a dangling child is rejected wherever it
// lands, and deleting a parent cascades through co-located children.
func TestCrossShardFKAndCascade(t *testing.T) {
	db, _ := newGroup(t, 4, Options{})
	txn := db.BeginTxn()
	if err := insertBook(txn, "60001", "NOPE"); !errors.Is(err, relational.ErrForeignKey) {
		t.Fatalf("dangling FK: got %v, want ErrForeignKey", err)
	}
	txn.Rollback()
	// Cascade: delete publisher A01 → its books and their reviews go.
	ids, err := db.LookupEqual("publisher", []string{"pubid"}, []relational.Value{relational.String_("A01")})
	if err != nil || len(ids) != 1 {
		t.Fatalf("find A01: %v %v", ids, err)
	}
	before := db.RowCount("book") + db.RowCount("review")
	n, err := db.Delete("publisher", ids[0])
	if err != nil {
		t.Fatalf("cascade delete: %v", err)
	}
	if n < 3 { // publisher + 2 books + 2 reviews under A01
		t.Fatalf("cascade removed %d rows, want >= 3", n)
	}
	after := db.RowCount("book") + db.RowCount("review")
	if after >= before {
		t.Fatalf("cascade did not shrink book+review rows: %d -> %d", before, after)
	}
	books, _ := db.LookupEqual("book", []string{"pubid"}, []relational.Value{relational.String_("A01")})
	if len(books) != 0 {
		t.Fatalf("books of A01 survived cascade: %v", books)
	}
}

// TestSnapshotVectorConsistency runs cross-shard pair inserts against
// concurrent snapshot readers: every snapshot must see both halves of
// a pair or neither — a half-visible cross-shard commit is a torn
// vector. Run with -race.
func TestSnapshotVectorConsistency(t *testing.T) {
	db, _ := newGroup(t, 2, Options{})
	const pairs = 40
	a := make([]string, pairs)
	b := make([]string, pairs)
	for i := range a {
		a[i] = pubOnShard(db, 0, fmt.Sprintf("A%d-", i))
		b[i] = pubOnShard(db, 1, fmt.Sprintf("B%d-", i))
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := db.OpenSnapshot()
				for i := range a {
					ia, _ := snap.LookupEqual("publisher", []string{"pubid"}, []relational.Value{relational.String_(a[i])})
					ib, _ := snap.LookupEqual("publisher", []string{"pubid"}, []relational.Value{relational.String_(b[i])})
					if (len(ia) == 1) != (len(ib) == 1) {
						t.Errorf("torn vector: pair %d half-visible (a=%d b=%d)", i, len(ia), len(ib))
					}
				}
				snap.Close()
			}
		}()
	}
	for i := range a {
		txn := db.BeginTxn()
		insertPub(t, txn, a[i], "PairA "+a[i])
		insertPub(t, txn, b[i], "PairB "+b[i])
		if err := txn.Commit(); err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
	}
	close(stop)
	readers.Wait()
	if got := db.CrossCommits(); got != pairs {
		t.Fatalf("cross-shard commits: got %d, want %d", got, pairs)
	}
}

// TestTwoPhaseRecovery exercises the decide point: a cross-shard commit
// whose xid reached the coordinator log recovers on every shard; one
// whose xid is missing (the log is truncated, as after a crash between
// prepare and decide) is filtered on every shard — never a torn prefix.
func TestTwoPhaseRecovery(t *testing.T) {
	dir := t.TempDir()
	open := func() (*DB, *Recovery) {
		return newGroupDir(t, 2, dir)
	}
	db, _ := open()
	p0, p1 := pubOnShard(db, 0, "R"), pubOnShard(db, 1, "R")
	txn := db.BeginTxn()
	insertPub(t, txn, p0, "Recovered A")
	insertPub(t, txn, p1, "Recovered B")
	if err := txn.Commit(); err != nil {
		t.Fatalf("cross commit: %v", err)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Committed xid present in the coordinator log: both halves recover.
	db2, rec := open()
	for _, pub := range []string{p0, p1} {
		ids, err := db2.LookupEqual("publisher", []string{"pubid"}, []relational.Value{relational.String_(pub)})
		if err != nil || len(ids) != 1 {
			t.Fatalf("committed pair lost after recovery: %s ids=%v err=%v", pub, ids, err)
		}
	}
	if rec.CommittedXids != 1 {
		t.Fatalf("coordinator log xids: got %d, want 1", rec.CommittedXids)
	}
	if err := db2.CloseWAL(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Crash between prepare and decide: the shards hold xid-tagged
	// records but the coordinator log lost the xid. Truncating the log
	// simulates exactly that state; recovery must filter both halves.
	if err := os.Truncate(filepath.Join(dir, "xlog"), 0); err != nil {
		t.Fatalf("truncate xlog: %v", err)
	}
	db3, rec3 := open()
	defer db3.CloseWAL()
	for _, pub := range []string{p0, p1} {
		ids, err := db3.LookupEqual("publisher", []string{"pubid"}, []relational.Value{relational.String_(pub)})
		if err != nil || len(ids) != 0 {
			t.Fatalf("undecided pair half-recovered: %s ids=%v err=%v", pub, ids, err)
		}
	}
	if rec3.FilteredTxns != 2 {
		t.Fatalf("filtered prepared records: got %d, want 2 (one per shard)", rec3.FilteredTxns)
	}
	// The filtered xid must not be reissued: MaxXid from the shard WALs
	// keeps the allocator above it.
	if got := db3.nextXid.Load(); got < 1 {
		t.Fatalf("xid allocator fell back below filtered xid: %d", got)
	}
	// And the group still accepts new cross-shard commits afterwards.
	txn = db3.BeginTxn()
	insertPub(t, txn, pubOnShard(db3, 0, "S"), "Post A")
	insertPub(t, txn, pubOnShard(db3, 1, "S"), "Post B")
	if err := txn.Commit(); err != nil {
		t.Fatalf("post-recovery cross commit: %v", err)
	}
}

func newGroupDir(t *testing.T, n int, dir string) (*DB, *Recovery) {
	t.Helper()
	seed, err := bookdb.NewDatabase(relational.DeleteCascade)
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	db, rec, err := New(seed, n, Options{Dir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return db, rec
}

// TestCrashRestartParity commits a mix of single- and cross-shard
// transactions, reopens the group from disk, and requires the recovered
// contents to equal the pre-crash contents exactly.
func TestCrashRestartParity(t *testing.T) {
	dir := t.TempDir()
	db, _ := newGroupDir(t, 4, dir)
	for i := 0; i < 6; i++ {
		pub := fmt.Sprintf("C%02d", i)
		if _, err := db.Insert("publisher", map[string]relational.Value{
			"pubid": relational.String_(pub), "pubname": relational.String_("Crash " + pub),
		}); err != nil {
			t.Fatalf("publisher: %v", err)
		}
	}
	txn := db.BeginTxn()
	insertPub(t, txn, pubOnShard(db, 1, "X"), "Cross A")
	insertPub(t, txn, pubOnShard(db, 2, "X"), "Cross B")
	if err := txn.Commit(); err != nil {
		t.Fatalf("cross: %v", err)
	}
	want := dump(t, db)
	if err := db.CloseWAL(); err != nil {
		t.Fatalf("close: %v", err)
	}
	db2, _ := newGroupDir(t, 4, dir)
	defer db2.CloseWAL()
	got := dump(t, db2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered line %d differs:\ngot:  %s\nwant: %s", i, got[i], want[i])
		}
	}
}

// TestConcurrentCrossShardCommits drives many cross-shard transactions
// from parallel goroutines through the latch-free prepare path, with
// snapshot readers checking vector atomicity throughout, and verifies
// the coordinator log group-committed: every xid durable, strictly
// fewer fsyncs than appends is likely (not asserted — timing), never
// more. Run with -race.
func TestConcurrentCrossShardCommits(t *testing.T) {
	dir := t.TempDir()
	db, _ := newGroupDir(t, 4, dir)
	const n = 24
	a := make([]string, n)
	b := make([]string, n)
	for i := range a {
		a[i] = pubOnShard(db, i%4, fmt.Sprintf("GA%d-", i))
		b[i] = pubOnShard(db, (i+1)%4, fmt.Sprintf("GB%d-", i))
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := db.OpenSnapshot()
			for i := range a {
				ia, _ := snap.LookupEqual("publisher", []string{"pubid"}, []relational.Value{relational.String_(a[i])})
				ib, _ := snap.LookupEqual("publisher", []string{"pubid"}, []relational.Value{relational.String_(b[i])})
				if (len(ia) == 1) != (len(ib) == 1) {
					t.Errorf("torn vector: pair %d half-visible (a=%d b=%d)", i, len(ia), len(ib))
				}
			}
			snap.Close()
		}
	}()
	var writers sync.WaitGroup
	for i := 0; i < n; i++ {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			txn := db.BeginTxn()
			insertPub(t, txn, a[i], "ConcA "+a[i])
			insertPub(t, txn, b[i], "ConcB "+b[i])
			if err := txn.Commit(); err != nil {
				t.Errorf("pair %d: %v", i, err)
			}
		}(i)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := db.CrossCommits(); got != n {
		t.Fatalf("cross-shard commits: got %d, want %d", got, n)
	}
	if ap, fs := db.XlogAppends(), db.XlogFsyncs(); ap != n || fs < 1 || fs > ap {
		t.Fatalf("xlog group commit: appends=%d (want %d), fsyncs=%d (want 1..appends)", ap, n, fs)
	}
	want := dump(t, db)
	if err := db.CloseWAL(); err != nil {
		t.Fatalf("close: %v", err)
	}
	db2, rec := newGroupDir(t, 4, dir)
	defer db2.CloseWAL()
	if rec.CommittedXids != n {
		t.Fatalf("coordinator log xids: got %d, want %d", rec.CommittedXids, n)
	}
	// Concurrent commits make scan order (not content) legitimately
	// differ between the live run and replay: compare as sorted sets.
	got := dump(t, db2)
	sort.Strings(got)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered rows differ:\ngot:  %v\nwant: %v", got, want)
	}
}

// TestParallelRecoveryAndPagedRollups reopens a 4-shard group and
// checks the new paged-storage plumbing at the group level: every
// shard reports its own recovery wall time (the group recovers shards
// concurrently, so these are the inputs to the max that bounds restart
// latency), the page-cache budget splits across shards without losing
// rows, and Stats rolls the per-shard pager counters up.
func TestParallelRecoveryAndPagedRollups(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, WAL: relational.WALOptions{PageCacheBytes: 256 << 10}}
	db, _ := newGroup(t, 4, opts)
	for i := 0; i < 40; i++ {
		if _, err := db.Insert("publisher", map[string]relational.Value{
			"pubid": relational.String_(fmt.Sprintf("R%03d", i)), "pubname": relational.String_(fmt.Sprintf("Rollup %03d", i)),
		}); err != nil {
			t.Fatalf("publisher: %v", err)
		}
	}
	want := dump(t, db)
	wantRows := db.RowCount("publisher")
	if err := db.CloseWAL(); err != nil {
		t.Fatalf("close: %v", err)
	}

	seed, err := bookdb.NewDatabase(relational.DeleteCascade)
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	db2, rec, err := New(seed, 4, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.CloseWAL()
	for i, info := range rec.Shards {
		if info.RecoveryNanos <= 0 {
			t.Errorf("shard %d reported no recovery wall time: %+v", i, info)
		}
	}
	if st := db2.Stats(); st.PagesTotal == 0 {
		t.Fatalf("group stats roll up no checkpoint pages: %+v", st)
	}
	if got := dump(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered group state diverged:\n got %d rows\nwant %d rows", len(got), len(want))
	}
	if got := db2.RowCount("publisher"); got != wantRows {
		t.Fatalf("parallel RowCount = %d, want %d", got, wantRows)
	}
	st := db2.Stats()
	if st.PagecacheHits+st.PagecacheMisses == 0 {
		t.Fatalf("scans faulted no pages through the shard pools: %+v", st)
	}
	// The group gauges are sums of the per-shard stores and pools.
	var sumPages, sumMisses int64
	for _, ss := range db2.ShardStats() {
		sumPages += ss.PagesTotal
		sumMisses += ss.PagecacheMisses
	}
	if sumPages != st.PagesTotal || sumMisses != st.PagecacheMisses {
		t.Fatalf("rollup mismatch: shards sum pages=%d misses=%d, group %d/%d",
			sumPages, sumMisses, st.PagesTotal, st.PagecacheMisses)
	}
}
