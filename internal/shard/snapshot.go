package shard

import (
	"repro/internal/relational"
)

// SnapVec is a consistent snapshot vector: one pinned snapshot per
// shard, all taken under the group's vector latch so any cross-shard
// transaction is visible on every shard it touched or on none. The
// plan layer's CheckData/CheckBatchData therefore keep their
// snapshot-isolation contract over a shard group.
type SnapVec struct {
	subs []*relational.Snapshot
	rds  []relational.Reader
}

// Close releases every shard's pin so its reclaimer can advance.
func (v *SnapVec) Close() {
	for _, s := range v.subs {
		s.Close()
	}
}

// Seq is the sum of the per-shard pinned sequences: not a global
// ordering of individual commits, but a monotone logical clock (every
// commit raises exactly one shard's sequence, cross-shard commits are
// atomic under the vector latch), which is all callers use it for.
func (v *SnapVec) Seq() uint64 {
	var n uint64
	for _, s := range v.subs {
		n += s.Seq()
	}
	return n
}

// VersionStats aggregates the per-shard version-store shapes at the
// pinned sequences.
func (v *SnapVec) VersionStats() relational.VersionStats {
	var agg relational.VersionStats
	for _, s := range v.subs {
		vs := s.VersionStats()
		agg.LiveRows += vs.LiveRows
		agg.VisibleRows += vs.VisibleRows
		agg.Versions += vs.Versions
		if vs.MaxChainDepth > agg.MaxChainDepth {
			agg.MaxChainDepth = vs.MaxChainDepth
		}
		agg.SnapshotsActive += vs.SnapshotsActive
		agg.SnapshotsOpened += vs.SnapshotsOpened
		agg.VersionsReclaimed += vs.VersionsReclaimed
		agg.Reclaims += vs.Reclaims
		agg.CommitSeq += vs.CommitSeq
	}
	return agg
}

// ---- Reader at the pinned vector. Point reads route by id residue;
// scans and lookups merge in ascending row-id order.

func (v *SnapVec) Schema() *relational.Schema { return v.subs[0].Schema() }

func (v *SnapVec) shardOf(id relational.RowID) int {
	if id < 1 {
		return 0
	}
	return int((int64(id) - 1) % int64(len(v.subs)))
}

func (v *SnapVec) Get(table string, id relational.RowID) (*relational.Row, error) {
	return v.subs[v.shardOf(id)].Get(table, id)
}

func (v *SnapVec) ValuesByName(table string, id relational.RowID) (map[string]relational.Value, error) {
	return v.subs[v.shardOf(id)].ValuesByName(table, id)
}

func (v *SnapVec) Scan(table string, fn func(*relational.Row) bool) error {
	return scanMerged(v.rds, table, fn)
}

func (v *SnapVec) LookupEqual(table string, columns []string, values []relational.Value) ([]relational.RowID, error) {
	return lookupMerged(v.rds, table, columns, values)
}

func (v *SnapVec) HasIndexOn(table string, columns []string) bool {
	return v.subs[0].HasIndexOn(table, columns)
}

func (v *SnapVec) RowCount(table string) int {
	n := 0
	for _, s := range v.subs {
		n += s.RowCount(table)
	}
	return n
}

func (v *SnapVec) TotalRows() int {
	n := 0
	for _, s := range v.subs {
		n += s.TotalRows()
	}
	return n
}

var _ relational.Snap = (*SnapVec)(nil)
