// Package viewengine materializes virtual XML views over the relational
// engine, playing the role of the XPERANTO/SilkRoute publishing
// middleware in the U-Filter paper's architecture (Section 2, Fig. 5's
// "view generation" box): it evaluates the default XML view — each
// relation published as <table><row>...</row></table>, Fig. 2 — and
// user view queries (the FLWR definitions of Fig. 3(a)) by compiling
// each FLWR block to a select-project-join over the base tables and
// nesting the results into an xmltree document.
//
// U-Filter itself never needs a materialized view to reach a verdict —
// that independence is the point of the paper. The engine exists for
// everything around the checker: the quickstart and examples show the
// view being edited, tests compare an update's effect against the
// expected document, and the Fig. 14 "blind" baseline
// (ufilter.Filter.BlindApply) materializes the view before and after an
// uninformed translation to detect side effects the hard way — the
// expensive diff-and-rollback U-Filter's schema-level steps avoid.
package viewengine

import (
	"fmt"
	"strings"

	"repro/internal/relational"
	"repro/internal/sqlexec"
	"repro/internal/xmltree"
	"repro/internal/xqparse"
)

// Engine materializes views over a database.
type Engine struct {
	Exec *sqlexec.Executor
	// Rd, when non-nil, routes every row read through the given Reader —
	// a pinned snapshot for point-in-time materialization, or an open
	// transaction so the materialized view reflects that transaction's
	// uncommitted writes (the Fig. 14 blind baseline diffs the view
	// inside its transaction before deciding to commit). Nil reads the
	// latest committed state.
	Rd sqlexec.Reader
}

// New wraps a database in a view engine.
func New(db relational.Engine) *Engine {
	return &Engine{Exec: sqlexec.NewExecutor(db)}
}

// reader resolves the engine's data source.
func (e *Engine) reader() sqlexec.Reader {
	if e.Rd != nil {
		return e.Rd
	}
	return e.Exec.DB
}

// DefaultView produces the one-to-one relational-to-XML mapping of
// Fig. 2: <DB> wrapping one element per table, one <row> per tuple, one
// element per column. NULL columns are omitted.
func (e *Engine) DefaultView() *xmltree.Node {
	root := xmltree.Elem("DB")
	for _, def := range e.Exec.DB.Schema().Tables() {
		tElem := xmltree.Elem(def.Name)
		e.reader().Scan(def.Name, func(r *relational.Row) bool {
			row := xmltree.Elem("row")
			for i, c := range def.Columns {
				if r.Values[i].IsNull() {
					continue
				}
				row.Append(xmltree.ElemText(c.Name, r.Values[i].String()))
			}
			tElem.Append(row)
			return true
		})
		root.Append(tElem)
	}
	return root
}

// varBinding is one variable's current tuple during FLWR evaluation.
type varBinding struct {
	table string
	vals  map[string]relational.Value
}

type env map[string]varBinding

// Materialize evaluates a parsed view query into an XML document.
func (e *Engine) Materialize(v *xqparse.ViewQuery) (*xmltree.Node, error) {
	root := xmltree.Elem(v.RootTag)
	if err := e.evalItems(v.Items, env{}, root); err != nil {
		return nil, err
	}
	return root, nil
}

// MaterializeQuery parses and evaluates a view query source text.
func (e *Engine) MaterializeQuery(query string) (*xmltree.Node, error) {
	v, err := xqparse.ParseViewQuery(query)
	if err != nil {
		return nil, err
	}
	return e.Materialize(v)
}

func (e *Engine) evalItems(items []xqparse.BodyItem, en env, parent *xmltree.Node) error {
	for _, it := range items {
		switch n := it.(type) {
		case *xqparse.FLWR:
			if err := e.evalFLWR(n, en, parent); err != nil {
				return err
			}
		case *xqparse.Constructor:
			elem := xmltree.Elem(n.Tag)
			if err := e.evalItems(n.Items, en, elem); err != nil {
				return err
			}
			parent.Append(elem)
		case *xqparse.Projection:
			b, ok := en[n.Var]
			if !ok {
				return fmt.Errorf("viewengine: unbound variable $%s", n.Var)
			}
			val, ok := b.vals[strings.ToLower(n.Field)]
			if !ok {
				return fmt.Errorf("viewengine: $%s has no field %s (table %s)", n.Var, n.Field, b.table)
			}
			elem := xmltree.Elem(n.Field)
			if !val.IsNull() {
				elem.Append(xmltree.Text(val.String()))
			}
			parent.Append(elem)
		case *xqparse.TextLiteral:
			parent.Append(xmltree.Text(n.Value))
		default:
			return fmt.Errorf("viewengine: unsupported body item %T", it)
		}
	}
	return nil
}

// evalFLWR compiles the FLWR's bindings and predicates into a
// select-project-join, evaluates it, and emits the RETURN body once per
// result tuple.
func (e *Engine) evalFLWR(f *xqparse.FLWR, outer env, parent *xmltree.Node) error {
	// Bind each FOR variable to its relation.
	varTable := make(map[string]string, len(f.Bindings))
	var from []string
	for _, b := range f.Bindings {
		t := b.Source.Table()
		if t == "" {
			return fmt.Errorf("viewengine: binding $%s is not over the default view (source %s)", b.Var, b.Source)
		}
		if _, ok := e.Exec.DB.Schema().Table(t); !ok {
			return fmt.Errorf("%w: %s", relational.ErrNoSuchTable, t)
		}
		varTable[b.Var] = t
		from = append(from, t)
	}

	// Compile predicates. Operands over this FLWR's variables become
	// column references; operands over outer variables become literals
	// (correlated evaluation); literal operands pass through.
	compile := func(o xqparse.PredOperand) (sqlexec.Operand, error) {
		if o.IsLiteral {
			return sqlexec.LitOperand(o.Lit), nil
		}
		if t, ok := varTable[o.Var]; ok {
			return sqlexec.ColOperand(t, o.Field), nil
		}
		if b, ok := outer[o.Var]; ok {
			val, ok := b.vals[strings.ToLower(o.Field)]
			if !ok {
				return sqlexec.Operand{}, fmt.Errorf("viewengine: $%s has no field %s", o.Var, o.Field)
			}
			return sqlexec.LitOperand(val), nil
		}
		return sqlexec.Operand{}, fmt.Errorf("viewengine: unbound variable $%s in predicate", o.Var)
	}
	var where []sqlexec.Predicate
	for _, p := range f.Preds {
		left, err := compile(p.Left)
		if err != nil {
			return err
		}
		right, err := compile(p.Right)
		if err != nil {
			return err
		}
		where = append(where, sqlexec.Predicate{Left: left, Op: p.Op, Right: right})
	}

	rs, err := e.Exec.ExecSelectOn(e.reader(), &sqlexec.SelectStmt{From: from, Where: where})
	if err != nil {
		return err
	}

	// Column offsets per variable for fast binding construction.
	type colSlot struct {
		v    string
		name string
	}
	slots := make([]colSlot, len(rs.Columns))
	for i, c := range rs.Columns {
		for v, t := range varTable {
			if strings.EqualFold(t, c.Table) {
				slots[i] = colSlot{v: v, name: strings.ToLower(c.Column)}
			}
		}
	}

	for _, row := range rs.Rows {
		inner := make(env, len(outer)+len(f.Bindings))
		for k, v := range outer {
			inner[k] = v
		}
		for _, b := range f.Bindings {
			inner[b.Var] = varBinding{table: varTable[b.Var], vals: make(map[string]relational.Value)}
		}
		for i, sl := range slots {
			if sl.v == "" {
				continue
			}
			inner[sl.v].vals[sl.name] = row[i]
		}
		if err := e.evalItems(f.Return, inner, parent); err != nil {
			return err
		}
	}
	return nil
}
