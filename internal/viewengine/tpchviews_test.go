package viewengine

import (
	"testing"

	"repro/internal/tpch"
)

// TestMaterializeVsuccess: the FK-nested view reproduces the relational
// hierarchy exactly — every row appears once at its level.
func TestMaterializeVsuccess(t *testing.T) {
	db, err := tpch.NewDatabaseMB(1)
	if err != nil {
		t.Fatal(err)
	}
	e := New(db)
	view, err := e.MaterializeQuery(tpch.VsuccessQuery)
	if err != nil {
		t.Fatal(err)
	}
	rows := tpch.RowsForMB(1)
	if got := len(view.ChildrenNamed("region")); got != rows.Regions {
		t.Errorf("regions = %d, want %d", got, rows.Regions)
	}
	if got := len(view.FindAll("region", "nation")); got != rows.Nations {
		t.Errorf("nations = %d, want %d", got, rows.Nations)
	}
	if got := len(view.FindAll("region", "nation", "customer")); got != rows.Customers {
		t.Errorf("customers = %d, want %d", got, rows.Customers)
	}
	if got := len(view.FindAll("region", "nation", "customer", "order")); got != rows.Orders {
		t.Errorf("orders = %d, want %d", got, rows.Orders)
	}
	if got := len(view.FindAll("region", "nation", "customer", "order", "lineitem")); got != db.RowCount("lineitem") {
		t.Errorf("lineitems = %d, want %d", got, db.RowCount("lineitem"))
	}
}

// TestMaterializeVfail: the republished relation appears under the root
// in addition to its nested occurrences.
func TestMaterializeVfail(t *testing.T) {
	db, err := tpch.NewDatabaseMB(1)
	if err != nil {
		t.Fatal(err)
	}
	e := New(db)
	view, err := e.MaterializeQuery(tpch.VfailQuery("region"))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(view.ChildrenNamed("regioninfo")); got != 5 {
		t.Errorf("republished regions = %d, want 5", got)
	}
	if got := len(view.ChildrenNamed("region")); got != 5 {
		t.Errorf("nested regions = %d, want 5", got)
	}
}

// TestMaterializeVbush: the bushy join publishes one customer element
// per (region, nation, customer) tuple — i.e. per customer, since the
// joins follow keys — with orderlines per (order, lineitem) pair.
func TestMaterializeVbush(t *testing.T) {
	db, err := tpch.NewDatabaseMB(1)
	if err != nil {
		t.Fatal(err)
	}
	e := New(db)
	view, err := e.MaterializeQuery(tpch.VbushQuery)
	if err != nil {
		t.Fatal(err)
	}
	rows := tpch.RowsForMB(1)
	custs := view.ChildrenNamed("customer")
	if len(custs) != rows.Customers {
		t.Fatalf("customers = %d, want %d", len(custs), rows.Customers)
	}
	total := 0
	for _, c := range custs {
		total += len(c.ChildrenNamed("orderline"))
	}
	if total != db.RowCount("lineitem") {
		t.Errorf("orderlines = %d, want %d", total, db.RowCount("lineitem"))
	}
}
