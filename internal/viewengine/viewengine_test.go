package viewengine

import (
	"strings"
	"testing"

	"repro/internal/bookdb"
	"repro/internal/relational"
	"repro/internal/xqparse"
)

func newEngine(t testing.TB) *Engine {
	t.Helper()
	db, err := bookdb.NewDatabase(relational.DeleteCascade)
	if err != nil {
		t.Fatal(err)
	}
	return New(db)
}

func TestDefaultView(t *testing.T) {
	e := newEngine(t)
	dv := e.DefaultView()
	if dv.Name != "DB" {
		t.Fatalf("root = %s", dv.Name)
	}
	rows := dv.FindAll("book", "row")
	if len(rows) != 3 {
		t.Fatalf("book rows = %d, want 3", len(rows))
	}
	if got := rows[0].ChildText("title"); got != "TCP/IP Illustrated" {
		t.Errorf("first book title = %q", got)
	}
	if got := len(dv.FindAll("review", "row")); got != 2 {
		t.Errorf("review rows = %d", got)
	}
}

// TestMaterializeBookView checks the materialized view against the
// paper's Fig. 3(b) content.
func TestMaterializeBookView(t *testing.T) {
	e := newEngine(t)
	view, err := e.MaterializeQuery(bookdb.ViewQuery)
	if err != nil {
		t.Fatal(err)
	}
	if view.Name != "BookView" {
		t.Fatalf("root = %s", view.Name)
	}
	books := view.ChildrenNamed("book")
	if len(books) != 2 {
		t.Fatalf("books = %d, want 2 (98001, 98003; 98002 fails year>1990)", len(books))
	}
	b1 := books[0]
	if got := b1.ChildText("bookid"); got != "98001" {
		t.Errorf("book 1 id = %q", got)
	}
	if got := b1.ChildText("price"); got != "37" {
		t.Errorf("book 1 price = %q", got)
	}
	if got := b1.Find("publisher", "pubname"); got == nil || got.TextContent() != "McGraw-Hill Inc." {
		t.Errorf("book 1 publisher = %v", got)
	}
	reviews := b1.ChildrenNamed("review")
	if len(reviews) != 2 {
		t.Fatalf("book 1 reviews = %d, want 2", len(reviews))
	}
	if got := reviews[0].ChildText("reviewid"); got != "001" {
		t.Errorf("review 1 = %q", got)
	}
	b2 := books[1]
	if got := b2.ChildText("bookid"); got != "98003" {
		t.Errorf("book 2 id = %q", got)
	}
	if got := len(b2.ChildrenNamed("review")); got != 0 {
		t.Errorf("book 2 reviews = %d, want 0", got)
	}
	// The second FLWR republishes all three publishers under the root.
	pubs := view.ChildrenNamed("publisher")
	if len(pubs) != 3 {
		t.Fatalf("root publishers = %d, want 3", len(pubs))
	}
}

func TestMaterializeCorrelatedPredicates(t *testing.T) {
	// The nested review FLWR must only see reviews of the outer book.
	e := newEngine(t)
	view, err := e.MaterializeQuery(bookdb.ViewQuery)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range view.ChildrenNamed("book") {
		id := b.ChildText("bookid")
		for range b.ChildrenNamed("review") {
			if id != "98001" {
				t.Errorf("book %s should have no reviews", id)
			}
		}
	}
}

func TestMaterializeEmptyWhere(t *testing.T) {
	e := newEngine(t)
	view, err := e.MaterializeQuery(`
<All>
FOR $p IN document("default.xml")/publisher/row
RETURN { <pub> $p/pubid </pub> }
</All>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(view.ChildrenNamed("pub")); got != 3 {
		t.Errorf("pubs = %d", got)
	}
}

func TestMaterializeNullProjection(t *testing.T) {
	e := newEngine(t)
	// Insert a book with a NULL price via a NULL-allowed path: price is
	// nullable in the schema (only CHECK'd when present).
	if _, err := e.Exec.DB.Insert("book", map[string]relational.Value{
		"bookid": relational.String_("99999"), "title": relational.String_("No Price"),
		"pubid": relational.String_("A01"), "year": relational.Int_(2000),
	}); err != nil {
		t.Fatal(err)
	}
	view, err := e.MaterializeQuery(`
<V>
FOR $b IN document("default.xml")/book/row
WHERE $b/bookid = "99999"
RETURN { <book> $b/bookid, $b/price </book> }
</V>`)
	if err != nil {
		t.Fatal(err)
	}
	b := view.Child("book")
	if b == nil {
		t.Fatal("book missing")
	}
	price := b.Child("price")
	if price == nil || price.TextContent() != "" {
		t.Errorf("NULL price should render as empty element, got %v", price)
	}
}

func TestMaterializeErrors(t *testing.T) {
	e := newEngine(t)
	cases := []string{
		// Unknown table.
		`<V>FOR $x IN document("default.xml")/nosuch/row RETURN { $x/a }</V>`,
		// Unknown column.
		`<V>FOR $b IN document("default.xml")/book/row RETURN { $b/nosuchcol }</V>`,
		// Unbound variable in predicate.
		`<V>FOR $b IN document("default.xml")/book/row WHERE $ghost/x = 1 RETURN { $b/bookid }</V>`,
		// Non-default-view source.
		`<V>FOR $b IN document("other.xml")/deep/path/row/extra RETURN { $b/bookid }</V>`,
	}
	for i, q := range cases {
		if _, err := e.MaterializeQuery(q); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMaterializeTextLiteral(t *testing.T) {
	e := newEngine(t)
	view, err := e.MaterializeQuery(`
<V>
FOR $p IN document("default.xml")/publisher/row
WHERE $p/pubid = "A01"
RETURN { <entry> "label", $p/pubid </entry> }
</V>`)
	if err != nil {
		t.Fatal(err)
	}
	s := view.String()
	if !strings.Contains(s, "label") {
		t.Errorf("text literal missing: %s", s)
	}
}

func TestViewDeterminism(t *testing.T) {
	e := newEngine(t)
	v, err := xqparse.ParseViewQuery(bookdb.ViewQuery)
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.Materialize(v)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Materialize(v)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("materialization is not deterministic")
	}
}
