package bookdb

import (
	"testing"

	"repro/internal/relational"
	"repro/internal/xqparse"
)

func TestSchemaShape(t *testing.T) {
	s, err := Schema(relational.DeleteCascade)
	if err != nil {
		t.Fatal(err)
	}
	book, ok := s.Table("book")
	if !ok {
		t.Fatal("book table missing")
	}
	if !book.IsNotNullColumn("title") || !book.IsNotNullColumn("bookid") {
		t.Error("NOT NULL columns wrong")
	}
	price, _ := book.ColumnNamed("price")
	if len(price.Checks) != 1 || price.Checks[0].Holds(relational.Float_(0)) {
		t.Errorf("price check = %v", price.Checks)
	}
	pub, _ := s.Table("publisher")
	name, _ := pub.ColumnNamed("pubname")
	if !name.Unique || !name.NotNull {
		t.Error("pubname must be UNIQUE NOT NULL (Fig. 1)")
	}
	review, _ := s.Table("review")
	if len(review.PrimaryKey) != 2 {
		t.Errorf("review PK = %v, want composite", review.PrimaryKey)
	}
}

func TestSampleData(t *testing.T) {
	db, err := NewDatabase(relational.DeleteCascade)
	if err != nil {
		t.Fatal(err)
	}
	if db.RowCount("publisher") != 3 || db.RowCount("book") != 3 || db.RowCount("review") != 2 {
		t.Fatalf("row counts: pub=%d book=%d review=%d",
			db.RowCount("publisher"), db.RowCount("book"), db.RowCount("review"))
	}
	ids, _ := db.LookupEqual("book", []string{"bookid"}, []relational.Value{relational.String_("98002")})
	vals, _ := db.ValuesByName("book", ids[0])
	if vals["year"].Int != 1985 || vals["price"].Float != 45.00 {
		t.Errorf("book 98002 = %v", vals)
	}
}

func TestViewQueryParses(t *testing.T) {
	v, err := xqparse.ParseViewQuery(ViewQuery)
	if err != nil {
		t.Fatal(err)
	}
	if v.RootTag != "BookView" || len(v.Relations()) != 3 {
		t.Errorf("root=%s rels=%v", v.RootTag, v.Relations())
	}
}

func TestAllUpdatesParse(t *testing.T) {
	updates := AllUpdates()
	if len(updates) != 13 {
		t.Fatalf("updates = %d, want 13", len(updates))
	}
	for _, u := range updates {
		if _, err := xqparse.ParseUpdate(u.Text); err != nil {
			t.Errorf("%s: %v", u.Name, err)
		}
	}
}

func TestEveryPolicyBuilds(t *testing.T) {
	for _, p := range []relational.DeletePolicy{
		relational.DeleteCascade, relational.DeleteSetNull, relational.DeleteRestrict,
	} {
		if _, err := NewDatabase(p); err != nil {
			t.Errorf("policy %s: %v", p, err)
		}
	}
}
