// Package bookdb provides the paper's running example as a reusable
// fixture: the book/publisher/review relational schema of Fig. 1, its
// sample data, the BookView definition of Fig. 3(a), and the thirteen
// view updates u1–u13 of Figs. 4 and 10.
package bookdb

import (
	"fmt"

	"repro/internal/relational"
)

// Schema builds the Fig. 1 schema. The delete policy of the two foreign
// keys is configurable; the paper's default analysis assumes CASCADE.
func Schema(policy relational.DeletePolicy) (*relational.Schema, error) {
	publisher, err := relational.NewTableDef("publisher", []relational.Column{
		{Name: "pubid", Type: relational.TypeString},
		{Name: "pubname", Type: relational.TypeString, NotNull: true, Unique: true},
	}, []string{"pubid"}, nil)
	if err != nil {
		return nil, err
	}
	book, err := relational.NewTableDef("book", []relational.Column{
		{Name: "bookid", Type: relational.TypeString},
		{Name: "title", Type: relational.TypeString, NotNull: true},
		{Name: "pubid", Type: relational.TypeString},
		{Name: "price", Type: relational.TypeFloat,
			Checks: []relational.CheckPredicate{{Op: relational.OpGT, Operand: relational.Float_(0.00)}}},
		{Name: "year", Type: relational.TypeInt},
	}, []string{"bookid"}, []relational.ForeignKey{{
		Name: "book_pub_fk", Columns: []string{"pubid"},
		RefTable: "publisher", RefColumns: []string{"pubid"}, OnDelete: policy,
	}})
	if err != nil {
		return nil, err
	}
	review, err := relational.NewTableDef("review", []relational.Column{
		{Name: "bookid", Type: relational.TypeString},
		{Name: "reviewid", Type: relational.TypeString},
		{Name: "comment", Type: relational.TypeString},
		{Name: "reviewer", Type: relational.TypeString},
	}, []string{"bookid", "reviewid"}, []relational.ForeignKey{{
		Name: "review_book_fk", Columns: []string{"bookid"},
		RefTable: "book", RefColumns: []string{"bookid"}, OnDelete: policy,
	}})
	if err != nil {
		return nil, err
	}
	return relational.NewSchema(publisher, book, review)
}

// NewDatabase builds the schema and loads the Fig. 1 sample rows.
func NewDatabase(policy relational.DeletePolicy) (*relational.Database, error) {
	schema, err := Schema(policy)
	if err != nil {
		return nil, err
	}
	db := relational.NewDatabase(schema)
	for _, p := range [][2]string{
		{"A01", "McGraw-Hill Inc."},
		{"B01", "Prentice-Hall Inc."},
		{"A02", "Simon & Schuster Inc."},
	} {
		if _, err := db.Insert("publisher", map[string]relational.Value{
			"pubid": relational.String_(p[0]), "pubname": relational.String_(p[1]),
		}); err != nil {
			return nil, fmt.Errorf("bookdb: load publisher: %w", err)
		}
	}
	books := []struct {
		id, title, pub string
		price          float64
		year           int64
	}{
		{"98001", "TCP/IP Illustrated", "A01", 37.00, 1997},
		{"98002", "Programming in Unix", "A02", 45.00, 1985},
		{"98003", "Data on the Web", "A01", 48.00, 2004},
	}
	for _, b := range books {
		if _, err := db.Insert("book", map[string]relational.Value{
			"bookid": relational.String_(b.id), "title": relational.String_(b.title),
			"pubid": relational.String_(b.pub), "price": relational.Float_(b.price),
			"year": relational.Int_(b.year),
		}); err != nil {
			return nil, fmt.Errorf("bookdb: load book: %w", err)
		}
	}
	for _, r := range [][4]string{
		{"98001", "001", "A good book on network.", "William"},
		{"98001", "002", "Useful for advanced user.", "John"},
	} {
		if _, err := db.Insert("review", map[string]relational.Value{
			"bookid": relational.String_(r[0]), "reviewid": relational.String_(r[1]),
			"comment": relational.String_(r[2]), "reviewer": relational.String_(r[3]),
		}); err != nil {
			return nil, fmt.Errorf("bookdb: load review: %w", err)
		}
	}
	return db, nil
}

// ViewQuery is the BookView definition of Fig. 3(a).
const ViewQuery = `
<BookView>
FOR $book IN document("default.xml")/book/row,
    $publisher IN document("default.xml")/publisher/row
WHERE ($book/pubid = $publisher/pubid)
  AND ($book/price < 50.00) AND ($book/year > 1990)
RETURN {
  <book>
    $book/bookid, $book/title, $book/price,
    <publisher>
      $publisher/pubid, $publisher/pubname
    </publisher>,
    FOR $review IN document("default.xml")/review/row
    WHERE ($book/bookid = $review/bookid)
    RETURN {
      <review>
        $review/reviewid, $review/comment
      </review>
    }
  </book>
},
FOR $publisher IN document("default.xml")/publisher/row
RETURN {
  <publisher>
    $publisher/pubid, $publisher/pubname
  </publisher>
}
</BookView>`

// The paper's updates. U1–U4 are Fig. 4; U5–U13 are Fig. 10, with the
// paper's typos normalized to well-formed syntax.
const (
	// U1 inserts a book with an empty title and price 0.00 — invalid
	// (NOT NULL and CHECK conflicts; Example 1).
	U1 = `
FOR $root IN document("BookView.xml")
UPDATE $root {
  INSERT
    <book>
      <bookid>"98004"</bookid>
      <title> </title>
      <price> 0.00 </price>
      <publisher>
        <pubid>A01</pubid>
        <pubname>McGraw-Hill Inc.</pubname>
      </publisher>
    </book>
}`

	// U2 deletes the publisher of book 98001 — untranslatable (view
	// side effect: the book would vanish; Example 2).
	U2 = `
FOR $root IN document("BookView.xml"),
    $book IN $root/book
WHERE $book/bookid/text() = "98001"
UPDATE $root { DELETE $book/publisher }`

	// U3 inserts a review into a book absent from the view —
	// untranslatable at the data level (Example 3).
	U3 = `
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "DB2 Universal Database"
UPDATE $book {
  INSERT
    <review>
      <reviewid>001</reviewid>
      <comment> Easy read and useful. </comment>
    </review>
}`

	// U4 inserts a book whose key already exists — data conflict at the
	// update point (Example 3).
	U4 = `
FOR $root IN document("BookView.xml")
UPDATE $root {
  INSERT
    <book>
      <bookid>"98001"</bookid>
      <title>"Operating Systems"</title>
      <price> 20.00 </price>
      <publisher>
        <pubid>A01</pubid>
        <pubname>McGraw-Hill Inc.</pubname>
      </publisher>
    </book>
}`

	// U5 deletes reviews of books costing more than $50 — invalid: the
	// view only contains books under $50 (Section 4, delete check (i)).
	U5 = `
FOR $book IN document("BookView.xml")/book
WHERE $book/price/text() > 50.00
UPDATE $book { DELETE $book/review }`

	// U6 deletes a bookid text node — invalid: the leaf is NOT NULL and
	// its incoming edge has cardinality 1 (Section 4, delete check (ii)).
	U6 = `
FOR $book IN document("BookView.xml")/book
UPDATE $book { DELETE $book/bookid/text() }`

	// U7 inserts a book without a publisher — invalid: edge (book,
	// publisher) has cardinality 1 (Section 4, insert check).
	U7 = `
FOR $root IN document("BookView.xml")
UPDATE $root {
  INSERT
    <book>
      <bookid>"98004"</bookid>
      <title>"Operating Systems"</title>
      <price> 20.00 </price>
    </book>
}`

	// U8 deletes reviews of books under $40 — unconditionally
	// translatable (review is a clean | safe-delete node).
	U8 = `
FOR $book IN document("BookView.xml")/book
WHERE $book/price < 40.00
UPDATE $book { DELETE $book/review }`

	// U9 deletes books over $40 — conditionally translatable (dirty |
	// safe-delete; condition: translation minimization).
	U9 = `
FOR $root IN document("BookView.xml"),
    $book = $root/book
WHERE $book/price > 40.00
UPDATE $root { DELETE $book }`

	// U10 deletes the publisher inside books over $40 — untranslatable
	// (publisher inside book is unsafe-delete).
	U10 = `
FOR $book IN document("BookView.xml")/book
WHERE $book/price > 40.00
UPDATE $book { DELETE $book/publisher }`

	// U11 deletes reviews of "Programming in Unix", which is not in the
	// view — rejected by the data-driven context check.
	U11 = `
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Programming in Unix"
UPDATE $book { DELETE $book/review }`

	// U12 deletes reviews of "Data on the Web" — in the view, but it
	// has no reviews: the hybrid strategy reports "zero tuples deleted".
	U12 = `
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Data on the Web"
UPDATE $book { DELETE $book/review }`

	// U13 inserts a review into "Data on the Web" — translatable; the
	// probe result supplies the bookid for the translated INSERT.
	U13 = `
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Data on the Web"
UPDATE $book {
  INSERT
    <review>
      <reviewid>001</reviewid>
      <comment> Easy read and useful. </comment>
    </review>
}`
)

// AllUpdates maps update names to their source text, in paper order.
func AllUpdates() []struct{ Name, Text string } {
	return []struct{ Name, Text string }{
		{"u1", U1}, {"u2", U2}, {"u3", U3}, {"u4", U4}, {"u5", U5},
		{"u6", U6}, {"u7", U7}, {"u8", U8}, {"u9", U9}, {"u10", U10},
		{"u11", U11}, {"u12", U12}, {"u13", U13},
	}
}
