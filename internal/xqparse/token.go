// Package xqparse parses the two XQuery dialects the U-Filter paper
// uses, producing the ASTs every downstream stage consumes:
//
//   - View definitions (Fig. 3(a)): SilkRoute/XPERANTO-style FLWR
//     queries over the default XML view — nested FOR ... WHERE ...
//     RETURN blocks with element constructors and projections.
//     [ParseViewQuery] returns a [ViewQuery], which internal/asg
//     compiles into the view's Annotated Schema Graph and
//     internal/viewengine evaluates to materialize the view.
//
//   - View updates (Figs. 4 and 10): the "XQuery-like" update language
//     of Tatarinov et al. — FOR ... WHERE ... UPDATE $var {
//     INSERT <frag/> | DELETE $v/path | REPLACE $v/path WITH <frag/> }.
//     [ParseUpdate] returns an [UpdateQuery], the input to U-Filter's
//     Step 1 (internal/ufilter.Resolve binds it against the view ASG).
//
// The grammar covers the paper's corpus, not full XQuery: conjunctive
// WHERE clauses comparing paths to literals or paths to paths
// (correlation predicates, Pred.IsCorrelation), document() roots,
// child-axis paths with an optional trailing /text(), and literal
// element fragments. The update AST is deliberately cheap to
// re-traverse: internal/ufilter fingerprints it (operation kinds,
// paths, predicate shapes with literals stripped) to key the
// schema-level decision cache.
package xqparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokVariable // $name
	tokString   // "..." or '...' or “...” (the paper uses curly quotes)
	tokNumber
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokSlash
	tokLT
	tokLTSlash // </
	tokGT
	tokLE
	tokGE
	tokEQ
	tokNE
	tokAssign // bare = in binding context is also tokEQ; kept as EQ
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVariable:
		return "variable"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLParen:
		return "("
	case tokRParen:
		return ")"
	case tokLBrace:
		return "{"
	case tokRBrace:
		return "}"
	case tokComma:
		return ","
	case tokSlash:
		return "/"
	case tokLT:
		return "<"
	case tokLTSlash:
		return "</"
	case tokGT:
		return ">"
	case tokLE:
		return "<="
	case tokGE:
		return ">="
	case tokEQ:
		return "="
	case tokNE:
		return "!="
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexical unit with its source offset (for error messages
// and for fragment re-scanning).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer is a hand-rolled scanner with single-token lookahead. The update
// parser additionally re-scans raw balanced XML fragments directly from
// the input (see rawXMLFragment), which requires tracking token start
// offsets.
type lexer struct {
	input  string
	pos    int
	peeked *token
}

func newLexer(input string) *lexer { return &lexer{input: input} }

// errorf produces a parse error annotated with line/column.
func (lx *lexer) errorf(pos int, format string, args ...interface{}) error {
	line, col := 1, 1
	for i := 0; i < pos && i < len(lx.input); i++ {
		if lx.input[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("xqparse: line %d col %d: %s", line, col, fmt.Sprintf(format, args...))
}

func (lx *lexer) skipSpace() {
	for lx.pos < len(lx.input) {
		r := lx.input[lx.pos]
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
			lx.pos++
			continue
		}
		break
	}
}

// peek returns the next token without consuming it.
func (lx *lexer) peek() (token, error) {
	if lx.peeked != nil {
		return *lx.peeked, nil
	}
	t, err := lx.scan()
	if err != nil {
		return token{}, err
	}
	lx.peeked = &t
	return t, nil
}

// next consumes and returns the next token.
func (lx *lexer) next() (token, error) {
	if lx.peeked != nil {
		t := *lx.peeked
		lx.peeked = nil
		return t, nil
	}
	return lx.scan()
}

// expect consumes the next token and fails unless it has the given kind.
func (lx *lexer) expect(kind tokenKind) (token, error) {
	t, err := lx.next()
	if err != nil {
		return token{}, err
	}
	if t.kind != kind {
		return token{}, lx.errorf(t.pos, "expected %s, found %s %q", kind, t.kind, t.text)
	}
	return t, nil
}

// expectKeyword consumes an identifier token and fails unless it matches
// the keyword case-insensitively.
func (lx *lexer) expectKeyword(kw string) error {
	t, err := lx.next()
	if err != nil {
		return err
	}
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return lx.errorf(t.pos, "expected keyword %s, found %q", kw, t.text)
	}
	return nil
}

// peekKeyword reports whether the next token is the given keyword.
func (lx *lexer) peekKeyword(kw string) bool {
	t, err := lx.peek()
	if err != nil {
		return false
	}
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// resetTo rewinds the scanner to an absolute offset, discarding
// lookahead. Used to hand raw fragment text to the XML parser.
func (lx *lexer) resetTo(pos int) {
	lx.pos = pos
	lx.peeked = nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.'
}

// scan produces the next token from the input.
func (lx *lexer) scan() (token, error) {
	lx.skipSpace()
	if lx.pos >= len(lx.input) {
		return token{kind: tokEOF, pos: lx.pos}, nil
	}
	start := lx.pos
	c := lx.input[lx.pos]
	switch {
	case c == '(':
		lx.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		lx.pos++
		return token{tokRParen, ")", start}, nil
	case c == '{':
		lx.pos++
		return token{tokLBrace, "{", start}, nil
	case c == '}':
		lx.pos++
		return token{tokRBrace, "}", start}, nil
	case c == ',':
		lx.pos++
		return token{tokComma, ",", start}, nil
	case c == '/':
		lx.pos++
		return token{tokSlash, "/", start}, nil
	case c == '=':
		lx.pos++
		return token{tokEQ, "=", start}, nil
	case c == '!':
		if lx.pos+1 < len(lx.input) && lx.input[lx.pos+1] == '=' {
			lx.pos += 2
			return token{tokNE, "!=", start}, nil
		}
		return token{}, lx.errorf(start, "unexpected '!'")
	case c == '<':
		if lx.pos+1 < len(lx.input) {
			switch lx.input[lx.pos+1] {
			case '/':
				lx.pos += 2
				return token{tokLTSlash, "</", start}, nil
			case '=':
				lx.pos += 2
				return token{tokLE, "<=", start}, nil
			case '>':
				lx.pos += 2
				return token{tokNE, "<>", start}, nil
			}
		}
		lx.pos++
		return token{tokLT, "<", start}, nil
	case c == '>':
		if lx.pos+1 < len(lx.input) && lx.input[lx.pos+1] == '=' {
			lx.pos += 2
			return token{tokGE, ">=", start}, nil
		}
		lx.pos++
		return token{tokGT, ">", start}, nil
	case c == '$':
		lx.pos++
		j := lx.pos
		for j < len(lx.input) && isIdentPart(rune(lx.input[j])) {
			j++
		}
		if j == lx.pos {
			return token{}, lx.errorf(start, "empty variable name after '$'")
		}
		name := lx.input[lx.pos:j]
		lx.pos = j
		return token{tokVariable, name, start}, nil
	case c == '"' || c == '\'':
		quote := c
		j := lx.pos + 1
		for j < len(lx.input) && lx.input[j] != quote {
			j++
		}
		if j >= len(lx.input) {
			return token{}, lx.errorf(start, "unterminated string literal")
		}
		text := lx.input[lx.pos+1 : j]
		lx.pos = j + 1
		return token{tokString, text, start}, nil
	case strings.HasPrefix(lx.input[lx.pos:], "“"): // left curly quote
		j := lx.pos + len("“")
		end := strings.Index(lx.input[j:], "”")
		if end < 0 {
			return token{}, lx.errorf(start, "unterminated curly-quoted string")
		}
		text := lx.input[j : j+end]
		lx.pos = j + end + len("”")
		return token{tokString, text, start}, nil
	case c >= '0' && c <= '9' || (c == '-' && lx.pos+1 < len(lx.input) && lx.input[lx.pos+1] >= '0' && lx.input[lx.pos+1] <= '9'):
		j := lx.pos + 1
		seenDot := false
		for j < len(lx.input) {
			d := lx.input[j]
			if d >= '0' && d <= '9' {
				j++
				continue
			}
			if d == '.' && !seenDot && j+1 < len(lx.input) && lx.input[j+1] >= '0' && lx.input[j+1] <= '9' {
				seenDot = true
				j++
				continue
			}
			break
		}
		text := lx.input[lx.pos:j]
		lx.pos = j
		return token{tokNumber, text, start}, nil
	case isIdentStart(rune(c)):
		j := lx.pos + 1
		for j < len(lx.input) && isIdentPart(rune(lx.input[j])) {
			j++
		}
		text := lx.input[lx.pos:j]
		lx.pos = j
		return token{tokIdent, text, start}, nil
	default:
		return token{}, lx.errorf(start, "unexpected character %q", string(rune(c)))
	}
}

// rawXMLFragment extracts one balanced XML element starting at the next
// non-space position (which must be '<'). It returns the raw fragment
// text and advances the scanner past it. Quoted values inside element
// content (the paper writes <bookid>"98004"</bookid>) are preserved;
// callers strip them after parsing.
func (lx *lexer) rawXMLFragment() (string, error) {
	if lx.peeked != nil {
		lx.resetTo(lx.peeked.pos)
	}
	lx.skipSpace()
	if lx.pos >= len(lx.input) || lx.input[lx.pos] != '<' {
		return "", lx.errorf(lx.pos, "expected XML fragment")
	}
	start := lx.pos
	depth := 0
	i := lx.pos
	for i < len(lx.input) {
		if lx.input[i] != '<' {
			i++
			continue
		}
		if i+1 < len(lx.input) && lx.input[i+1] == '/' {
			// Closing tag.
			end := strings.IndexByte(lx.input[i:], '>')
			if end < 0 {
				return "", lx.errorf(i, "unterminated closing tag")
			}
			depth--
			i += end + 1
			if depth == 0 {
				lx.pos = i
				return lx.input[start:i], nil
			}
			continue
		}
		// Opening tag (or self-closing).
		end := strings.IndexByte(lx.input[i:], '>')
		if end < 0 {
			return "", lx.errorf(i, "unterminated tag")
		}
		selfClosing := end >= 1 && lx.input[i+end-1] == '/'
		if !selfClosing {
			depth++
		} else if depth == 0 {
			lx.pos = i + end + 1
			return lx.input[start : i+end+1], nil
		}
		i += end + 1
	}
	return "", lx.errorf(start, "unbalanced XML fragment")
}
