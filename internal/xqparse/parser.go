package xqparse

import (
	"strconv"
	"strings"

	"repro/internal/relational"
	"repro/internal/xmltree"
)

// ParseViewQuery parses a view definition of the Fig. 3(a) shape: a root
// element tag wrapping a comma-separated sequence of FLWR expressions,
// element constructors and projections.
func ParseViewQuery(input string) (*ViewQuery, error) {
	lx := newLexer(input)
	if _, err := lx.expect(tokLT); err != nil {
		return nil, err
	}
	rootTok, err := lx.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := lx.expect(tokGT); err != nil {
		return nil, err
	}
	p := &parser{lx: lx}
	items, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	if _, err := lx.expect(tokLTSlash); err != nil {
		return nil, err
	}
	closeTok, err := lx.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(closeTok.text, rootTok.text) {
		return nil, lx.errorf(closeTok.pos, "mismatched root tag: <%s> closed by </%s>", rootTok.text, closeTok.text)
	}
	if _, err := lx.expect(tokGT); err != nil {
		return nil, err
	}
	if t, err := lx.peek(); err != nil {
		return nil, err
	} else if t.kind != tokEOF {
		return nil, lx.errorf(t.pos, "trailing input after view query: %q", t.text)
	}
	return &ViewQuery{RootTag: rootTok.text, Items: items}, nil
}

type parser struct {
	lx *lexer
}

// parseBody parses a comma-separated item sequence, stopping before '</'
// or '}' or EOF.
func (p *parser) parseBody() ([]BodyItem, error) {
	var items []BodyItem
	for {
		t, err := p.lx.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == tokLTSlash || t.kind == tokRBrace || t.kind == tokEOF {
			return items, nil
		}
		item, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		t, err = p.lx.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == tokComma {
			p.lx.next()
			continue
		}
		// Item sequences may also be juxtaposed without commas.
	}
}

// parseItem dispatches on the lookahead token.
func (p *parser) parseItem() (BodyItem, error) {
	t, err := p.lx.peek()
	if err != nil {
		return nil, err
	}
	switch {
	case t.kind == tokIdent && strings.EqualFold(t.text, "FOR"):
		return p.parseFLWR()
	case t.kind == tokLT:
		return p.parseConstructor()
	case t.kind == tokVariable:
		return p.parseProjection()
	case t.kind == tokString:
		p.lx.next()
		return &TextLiteral{Value: t.text}, nil
	default:
		return nil, p.lx.errorf(t.pos, "unexpected %s %q in view body", t.kind, t.text)
	}
}

// parseFLWR parses FOR bindings (WHERE conds)? RETURN { body }.
func (p *parser) parseFLWR() (*FLWR, error) {
	if err := p.lx.expectKeyword("FOR"); err != nil {
		return nil, err
	}
	bindings, err := p.parseBindings()
	if err != nil {
		return nil, err
	}
	var preds []Pred
	if p.lx.peekKeyword("WHERE") {
		p.lx.next()
		preds, err = p.parsePreds()
		if err != nil {
			return nil, err
		}
	}
	if err := p.lx.expectKeyword("RETURN"); err != nil {
		return nil, err
	}
	if _, err := p.lx.expect(tokLBrace); err != nil {
		return nil, err
	}
	body, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	if _, err := p.lx.expect(tokRBrace); err != nil {
		return nil, err
	}
	return &FLWR{Bindings: bindings, Preds: preds, Return: body}, nil
}

// parseBindings parses $v IN source (, $v IN source)*. The let-style
// "=" form (u9's "$book = $root/book") is accepted alongside IN.
func (p *parser) parseBindings() ([]Binding, error) {
	var out []Binding
	for {
		v, err := p.lx.expect(tokVariable)
		if err != nil {
			return nil, err
		}
		t, err := p.lx.next()
		if err != nil {
			return nil, err
		}
		if !(t.kind == tokEQ || (t.kind == tokIdent && strings.EqualFold(t.text, "IN"))) {
			return nil, p.lx.errorf(t.pos, "expected IN or = in binding of $%s, found %q", v.text, t.text)
		}
		src, err := p.parseSource()
		if err != nil {
			return nil, err
		}
		out = append(out, Binding{Var: v.text, Source: src})
		t, err = p.lx.peek()
		if err != nil {
			return nil, err
		}
		if t.kind != tokComma {
			return out, nil
		}
		p.lx.next()
	}
}

// parseSource parses document("name")/steps or $var/steps.
func (p *parser) parseSource() (Source, error) {
	t, err := p.lx.next()
	if err != nil {
		return Source{}, err
	}
	var src Source
	switch {
	case t.kind == tokIdent && strings.EqualFold(t.text, "document"):
		if _, err := p.lx.expect(tokLParen); err != nil {
			return Source{}, err
		}
		doc, err := p.lx.expect(tokString)
		if err != nil {
			return Source{}, err
		}
		if _, err := p.lx.expect(tokRParen); err != nil {
			return Source{}, err
		}
		src.Doc = doc.text
	case t.kind == tokVariable:
		src.Var = t.text
	default:
		return Source{}, p.lx.errorf(t.pos, "expected document(...) or variable in binding source, found %q", t.text)
	}
	for {
		t, err := p.lx.peek()
		if err != nil {
			return Source{}, err
		}
		if t.kind != tokSlash {
			return src, nil
		}
		p.lx.next()
		step, err := p.lx.expect(tokIdent)
		if err != nil {
			return Source{}, err
		}
		src.Steps = append(src.Steps, step.text)
	}
}

// parsePreds parses cond (AND cond)*.
func (p *parser) parsePreds() ([]Pred, error) {
	var out []Pred
	for {
		pred, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		out = append(out, pred)
		if !p.lx.peekKeyword("AND") {
			return out, nil
		}
		p.lx.next()
	}
}

// parsePred parses (operand op operand), parentheses optional.
func (p *parser) parsePred() (Pred, error) {
	t, err := p.lx.peek()
	if err != nil {
		return Pred{}, err
	}
	paren := false
	if t.kind == tokLParen {
		p.lx.next()
		paren = true
	}
	left, err := p.parseOperand()
	if err != nil {
		return Pred{}, err
	}
	opTok, err := p.lx.next()
	if err != nil {
		return Pred{}, err
	}
	var op relational.CompareOp
	switch opTok.kind {
	case tokEQ:
		op = relational.OpEQ
	case tokNE:
		op = relational.OpNE
	case tokLT:
		op = relational.OpLT
	case tokLE:
		op = relational.OpLE
	case tokGT:
		op = relational.OpGT
	case tokGE:
		op = relational.OpGE
	default:
		return Pred{}, p.lx.errorf(opTok.pos, "expected comparison operator, found %q", opTok.text)
	}
	right, err := p.parseOperand()
	if err != nil {
		return Pred{}, err
	}
	if paren {
		if _, err := p.lx.expect(tokRParen); err != nil {
			return Pred{}, err
		}
	}
	return Pred{Left: left, Op: op, Right: right}, nil
}

// parseOperand parses $var(/field)*(/text())? or a literal.
func (p *parser) parseOperand() (PredOperand, error) {
	t, err := p.lx.next()
	if err != nil {
		return PredOperand{}, err
	}
	switch t.kind {
	case tokVariable:
		o := PredOperand{Var: t.text}
		for {
			nt, err := p.lx.peek()
			if err != nil {
				return PredOperand{}, err
			}
			if nt.kind != tokSlash {
				return o, nil
			}
			p.lx.next()
			step, err := p.lx.expect(tokIdent)
			if err != nil {
				return PredOperand{}, err
			}
			if strings.EqualFold(step.text, "text") {
				if _, err := p.lx.expect(tokLParen); err != nil {
					return PredOperand{}, err
				}
				if _, err := p.lx.expect(tokRParen); err != nil {
					return PredOperand{}, err
				}
				return o, nil
			}
			if o.Field != "" {
				o.Field += "/" + step.text
			} else {
				o.Field = step.text
			}
		}
	case tokString:
		return PredOperand{IsLiteral: true, Lit: relational.String_(t.text)}, nil
	case tokNumber:
		return PredOperand{IsLiteral: true, Lit: parseNumber(t.text)}, nil
	default:
		return PredOperand{}, p.lx.errorf(t.pos, "expected operand, found %q", t.text)
	}
}

func parseNumber(s string) relational.Value {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return relational.Int_(i)
	}
	f, _ := strconv.ParseFloat(s, 64)
	return relational.Float_(f)
}

// parseConstructor parses <tag> items </tag>.
func (p *parser) parseConstructor() (*Constructor, error) {
	if _, err := p.lx.expect(tokLT); err != nil {
		return nil, err
	}
	tag, err := p.lx.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.lx.expect(tokGT); err != nil {
		return nil, err
	}
	items, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	if _, err := p.lx.expect(tokLTSlash); err != nil {
		return nil, err
	}
	closeTok, err := p.lx.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(closeTok.text, tag.text) {
		return nil, p.lx.errorf(closeTok.pos, "mismatched tag: <%s> closed by </%s>", tag.text, closeTok.text)
	}
	if _, err := p.lx.expect(tokGT); err != nil {
		return nil, err
	}
	return &Constructor{Tag: tag.text, Items: items}, nil
}

// parseProjection parses $var/field(/text())?.
func (p *parser) parseProjection() (*Projection, error) {
	o, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if o.IsLiteral || o.Field == "" {
		return nil, p.lx.errorf(0, "expected projection of the form $var/field")
	}
	return &Projection{Var: o.Var, Field: o.Field}, nil
}

// ParseUpdate parses a view update in the Fig. 4 / Fig. 10 syntax:
//
//	FOR $v IN source (, $v IN source)*
//	(WHERE cond (AND cond)*)?
//	UPDATE $target { op (, op)* }
//
// where op is DELETE $v/path(/text())?, INSERT <fragment>, or
// REPLACE $v/path WITH <fragment>.
func ParseUpdate(input string) (*UpdateQuery, error) {
	lx := newLexer(input)
	p := &parser{lx: lx}
	if err := lx.expectKeyword("FOR"); err != nil {
		return nil, err
	}
	bindings, err := p.parseBindings()
	if err != nil {
		return nil, err
	}
	var preds []Pred
	if lx.peekKeyword("WHERE") {
		lx.next()
		preds, err = p.parsePreds()
		if err != nil {
			return nil, err
		}
	}
	if err := lx.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	target, err := lx.expect(tokVariable)
	if err != nil {
		return nil, err
	}
	if _, err := lx.expect(tokLBrace); err != nil {
		return nil, err
	}
	var ops []UpdateOp
	for {
		t, err := lx.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == tokRBrace {
			lx.next()
			break
		}
		if t.kind == tokComma {
			lx.next()
			continue
		}
		op, err := p.parseUpdateOp()
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	if t, err := lx.peek(); err != nil {
		return nil, err
	} else if t.kind != tokEOF {
		return nil, lx.errorf(t.pos, "trailing input after update: %q", t.text)
	}
	if len(ops) == 0 {
		return nil, lx.errorf(0, "update contains no operations")
	}
	return &UpdateQuery{Bindings: bindings, Preds: preds, TargetVar: target.text, Ops: ops}, nil
}

func (p *parser) parseUpdateOp() (UpdateOp, error) {
	t, err := p.lx.next()
	if err != nil {
		return UpdateOp{}, err
	}
	if t.kind != tokIdent {
		return UpdateOp{}, p.lx.errorf(t.pos, "expected DELETE, INSERT or REPLACE, found %q", t.text)
	}
	switch {
	case strings.EqualFold(t.text, "DELETE"):
		v, path, textOnly, err := p.parseUpdatePath()
		if err != nil {
			return UpdateOp{}, err
		}
		return UpdateOp{Kind: OpDelete, PathVar: v, Path: path, TextOnly: textOnly}, nil
	case strings.EqualFold(t.text, "INSERT"):
		frag, err := p.parseFragment()
		if err != nil {
			return UpdateOp{}, err
		}
		return UpdateOp{Kind: OpInsert, Content: frag}, nil
	case strings.EqualFold(t.text, "REPLACE"):
		v, path, textOnly, err := p.parseUpdatePath()
		if err != nil {
			return UpdateOp{}, err
		}
		if err := p.lx.expectKeyword("WITH"); err != nil {
			return UpdateOp{}, err
		}
		frag, err := p.parseFragment()
		if err != nil {
			return UpdateOp{}, err
		}
		return UpdateOp{Kind: OpReplace, PathVar: v, Path: path, TextOnly: textOnly, Content: frag}, nil
	default:
		return UpdateOp{}, p.lx.errorf(t.pos, "expected DELETE, INSERT or REPLACE, found %q", t.text)
	}
}

// parseUpdatePath parses $var(/step)*(/text())?.
func (p *parser) parseUpdatePath() (string, []string, bool, error) {
	v, err := p.lx.expect(tokVariable)
	if err != nil {
		return "", nil, false, err
	}
	var path []string
	textOnly := false
	for {
		t, err := p.lx.peek()
		if err != nil {
			return "", nil, false, err
		}
		if t.kind != tokSlash {
			return v.text, path, textOnly, nil
		}
		p.lx.next()
		step, err := p.lx.expect(tokIdent)
		if err != nil {
			return "", nil, false, err
		}
		if strings.EqualFold(step.text, "text") {
			if _, err := p.lx.expect(tokLParen); err != nil {
				return "", nil, false, err
			}
			if _, err := p.lx.expect(tokRParen); err != nil {
				return "", nil, false, err
			}
			textOnly = true
			return v.text, path, textOnly, nil
		}
		path = append(path, step.text)
	}
}

// parseFragment extracts a balanced XML element from the raw input and
// parses it, stripping quote characters that the paper's syntax places
// around leaf values (<bookid>"98004"</bookid>).
func (p *parser) parseFragment() (*xmltree.Node, error) {
	raw, err := p.lx.rawXMLFragment()
	if err != nil {
		return nil, err
	}
	node, err := xmltree.Parse(raw)
	if err != nil {
		return nil, err
	}
	stripQuotes(node)
	return node, nil
}

func stripQuotes(n *xmltree.Node) {
	if !n.IsElement() {
		s := strings.TrimSpace(n.Text)
		for _, pair := range [][2]string{{`"`, `"`}, {`'`, `'`}, {"“", "”"}} {
			if strings.HasPrefix(s, pair[0]) && strings.HasSuffix(s, pair[1]) && len(s) >= len(pair[0])+len(pair[1]) {
				s = strings.TrimSpace(s[len(pair[0]) : len(s)-len(pair[1])])
				break
			}
		}
		n.Text = s
		return
	}
	for _, c := range n.Children {
		stripQuotes(c)
	}
}
