package xqparse

import (
	"fmt"
	"strings"

	"repro/internal/relational"
	"repro/internal/xmltree"
)

// Source is the right-hand side of a FOR/LET binding: either a document
// path (document("default.xml")/book/row) or a variable-rooted path
// ($root/book).
type Source struct {
	Doc   string   // document name; empty for variable-rooted sources
	Var   string   // root variable; empty for document sources
	Steps []string // path steps after the root
}

// Table interprets a default-XML-view document source as a relation
// name: document("default.xml")/<table>/row. It returns "" when the
// source does not have that shape.
func (s Source) Table() string {
	if s.Doc == "" || len(s.Steps) != 2 || !strings.EqualFold(s.Steps[1], "row") {
		return ""
	}
	return s.Steps[0]
}

// String renders the source in XQuery syntax.
func (s Source) String() string {
	var b strings.Builder
	if s.Doc != "" {
		fmt.Fprintf(&b, "document(%q)", s.Doc)
	} else {
		b.WriteString("$" + s.Var)
	}
	for _, st := range s.Steps {
		b.WriteString("/" + st)
	}
	return b.String()
}

// Binding is one FOR (or "=" let-style) clause: $Var IN Source.
type Binding struct {
	Var    string
	Source Source
}

// PredOperand is one side of a WHERE comparison: a literal or a path
// $Var/Field(/text()).
type PredOperand struct {
	IsLiteral bool
	Lit       relational.Value
	Var       string
	Field     string
}

// String renders the operand in XQuery syntax.
func (o PredOperand) String() string {
	if o.IsLiteral {
		if o.Lit.Kind == relational.KindString {
			return fmt.Sprintf("%q", o.Lit.Str)
		}
		return o.Lit.String()
	}
	if o.Field == "" {
		return "$" + o.Var
	}
	return "$" + o.Var + "/" + o.Field
}

// Pred is a WHERE conjunct: left op right.
type Pred struct {
	Left  PredOperand
	Op    relational.CompareOp
	Right PredOperand
}

// String renders the predicate in XQuery syntax.
func (p Pred) String() string {
	op := p.Op.String()
	if p.Op == relational.OpNE {
		op = "!="
	}
	return fmt.Sprintf("%s %s %s", p.Left, op, p.Right)
}

// IsCorrelation reports whether both sides are path expressions — the
// paper's correlation predicates (join conditions). Predicates with a
// literal side are non-correlation (local) predicates.
func (p Pred) IsCorrelation() bool {
	return !p.Left.IsLiteral && !p.Right.IsLiteral
}

// BodyItem is any item in a view-query body or RETURN clause:
// *FLWR, *Constructor, *Projection or *TextLiteral.
type BodyItem interface{ isBodyItem() }

// FLWR is a FOR-WHERE-RETURN expression.
type FLWR struct {
	Bindings []Binding
	Preds    []Pred
	Return   []BodyItem
}

func (*FLWR) isBodyItem() {}

// Constructor is a literal element constructor <Tag> items </Tag>.
type Constructor struct {
	Tag   string
	Items []BodyItem
}

func (*Constructor) isBodyItem() {}

// Projection is $Var/Field — it publishes <Field>value</Field> from the
// bound relation's column Field.
type Projection struct {
	Var   string
	Field string
}

func (*Projection) isBodyItem() {}

// TextLiteral is constant text content inside a constructor.
type TextLiteral struct {
	Value string
}

func (*TextLiteral) isBodyItem() {}

// ViewQuery is a parsed view definition: a root tag wrapping a sequence
// of body items (Fig. 3(a)).
type ViewQuery struct {
	RootTag string
	Items   []BodyItem
}

// Relations lists the distinct relation names referenced by the view's
// FOR bindings — the paper's rel(DEF_V).
func (v *ViewQuery) Relations() []string {
	seen := map[string]bool{}
	var out []string
	var walkItems func(items []BodyItem)
	walkItems = func(items []BodyItem) {
		for _, it := range items {
			switch n := it.(type) {
			case *FLWR:
				for _, b := range n.Bindings {
					t := strings.ToLower(b.Source.Table())
					if t != "" && !seen[t] {
						seen[t] = true
						out = append(out, b.Source.Table())
					}
				}
				walkItems(n.Return)
			case *Constructor:
				walkItems(n.Items)
			}
		}
	}
	walkItems(v.Items)
	return out
}

// UpdateOpKind enumerates the update operation types of the update
// grammar (replace is treated as delete-then-insert downstream, per the
// paper's footnote 4).
type UpdateOpKind int

const (
	// OpInsert adds a new element under the update target.
	OpInsert UpdateOpKind = iota
	// OpDelete removes elements matched by a path under the target.
	OpDelete
	// OpReplace substitutes matched elements with new content.
	OpReplace
)

// String names the operation.
func (k UpdateOpKind) String() string {
	switch k {
	case OpInsert:
		return "INSERT"
	case OpDelete:
		return "DELETE"
	case OpReplace:
		return "REPLACE"
	default:
		return fmt.Sprintf("UpdateOpKind(%d)", int(k))
	}
}

// UpdateOp is one operation inside UPDATE $var { ... }.
type UpdateOp struct {
	Kind UpdateOpKind
	// PathVar/Path locate the operand for DELETE and REPLACE:
	// $PathVar/Path[0]/Path[1]...; TextOnly marks a trailing /text().
	PathVar  string
	Path     []string
	TextOnly bool
	// Content is the new element for INSERT and REPLACE.
	Content *xmltree.Node
}

// UpdateQuery is a parsed view update (Fig. 4 / Fig. 10 syntax).
type UpdateQuery struct {
	Bindings  []Binding
	Preds     []Pred
	TargetVar string
	Ops       []UpdateOp
}

// BindingFor returns the binding for a variable name.
func (u *UpdateQuery) BindingFor(v string) (Binding, bool) {
	for _, b := range u.Bindings {
		if b.Var == v {
			return b, true
		}
	}
	return Binding{}, false
}

// String renders a summary of the update for error messages.
func (u *UpdateQuery) String() string {
	var b strings.Builder
	for i, bd := range u.Bindings {
		if i == 0 {
			b.WriteString("FOR ")
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "$%s IN %s", bd.Var, bd.Source)
	}
	if len(u.Preds) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range u.Preds {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	fmt.Fprintf(&b, " UPDATE $%s {", u.TargetVar)
	for i, op := range u.Ops {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(op.Kind.String())
		if op.Kind != OpInsert {
			fmt.Fprintf(&b, " $%s", op.PathVar)
			for _, p := range op.Path {
				b.WriteString("/" + p)
			}
			if op.TextOnly {
				b.WriteString("/text()")
			}
		}
		if op.Content != nil {
			b.WriteString(" <" + op.Content.Name + ">...")
		}
	}
	b.WriteString("}")
	return b.String()
}
