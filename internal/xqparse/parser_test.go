package xqparse

import (
	"strings"
	"testing"

	"repro/internal/relational"
)

// bookViewQuery is the paper's Fig. 3(a) view definition, verbatim
// modulo whitespace.
const bookViewQuery = `
<BookView>
FOR $book IN document("default.xml")/book/row,
    $publisher IN document("default.xml")/publisher/row
WHERE ($book/pubid = $publisher/pubid)
  AND ($book/price < 50.00) AND ($book/year > 1990)
RETURN {
  <book>
    $book/bookid, $book/title, $book/price,
    <publisher>
      $publisher/pubid, $publisher/pubname
    </publisher>,
    FOR $review IN document("default.xml")/review/row
    WHERE ($book/bookid = $review/bookid)
    RETURN {
      <review>
        $review/reviewid, $review/comment
      </review>
    }
  </book>
},
FOR $publisher IN document("default.xml")/publisher/row
RETURN {
  <publisher>
    $publisher/pubid, $publisher/pubname
  </publisher>
}
</BookView>`

func TestParseBookView(t *testing.T) {
	v, err := ParseViewQuery(bookViewQuery)
	if err != nil {
		t.Fatal(err)
	}
	if v.RootTag != "BookView" {
		t.Errorf("root = %s", v.RootTag)
	}
	if len(v.Items) != 2 {
		t.Fatalf("top-level items = %d, want 2", len(v.Items))
	}
	f1, ok := v.Items[0].(*FLWR)
	if !ok {
		t.Fatalf("item 0 is %T, want *FLWR", v.Items[0])
	}
	if len(f1.Bindings) != 2 || f1.Bindings[0].Var != "book" || f1.Bindings[1].Var != "publisher" {
		t.Fatalf("bindings = %+v", f1.Bindings)
	}
	if got := f1.Bindings[0].Source.Table(); got != "book" {
		t.Errorf("binding table = %s", got)
	}
	if len(f1.Preds) != 3 {
		t.Fatalf("preds = %d, want 3", len(f1.Preds))
	}
	if !f1.Preds[0].IsCorrelation() {
		t.Error("pred 0 should be a correlation predicate")
	}
	if f1.Preds[1].IsCorrelation() || f1.Preds[2].IsCorrelation() {
		t.Error("preds 1,2 should be non-correlation")
	}
	if f1.Preds[1].Op != relational.OpLT || f1.Preds[1].Right.Lit.Float != 50.0 {
		t.Errorf("pred 1 = %+v", f1.Preds[1])
	}
	book, ok := f1.Return[0].(*Constructor)
	if !ok || book.Tag != "book" {
		t.Fatalf("return item = %#v", f1.Return[0])
	}
	// book constructor: 3 projections + publisher constructor + nested FLWR.
	if len(book.Items) != 5 {
		t.Fatalf("book items = %d, want 5", len(book.Items))
	}
	if proj, ok := book.Items[0].(*Projection); !ok || proj.Var != "book" || proj.Field != "bookid" {
		t.Errorf("item 0 = %#v", book.Items[0])
	}
	pub, ok := book.Items[3].(*Constructor)
	if !ok || pub.Tag != "publisher" {
		t.Errorf("item 3 = %#v", book.Items[3])
	}
	nested, ok := book.Items[4].(*FLWR)
	if !ok {
		t.Fatalf("item 4 = %#v", book.Items[4])
	}
	if len(nested.Bindings) != 1 || nested.Bindings[0].Source.Table() != "review" {
		t.Errorf("nested bindings = %+v", nested.Bindings)
	}
	rels := v.Relations()
	if len(rels) != 3 {
		t.Errorf("relations = %v", rels)
	}
}

func TestParseUpdateU1Insert(t *testing.T) {
	// The paper's u1 (well-formed variant).
	u, err := ParseUpdate(`
FOR $root IN document("BookView.xml")
UPDATE $root {
  INSERT
    <book>
      <bookid>"98004"</bookid>
      <title> </title>
      <price> 0.00 </price>
      <publisher>
        <pubid>A01</pubid>
        <pubname>McGraw-Hill Inc.</pubname>
      </publisher>
    </book>
}`)
	if err != nil {
		t.Fatal(err)
	}
	if u.TargetVar != "root" {
		t.Errorf("target = %s", u.TargetVar)
	}
	if len(u.Ops) != 1 || u.Ops[0].Kind != OpInsert {
		t.Fatalf("ops = %+v", u.Ops)
	}
	frag := u.Ops[0].Content
	if frag.Name != "book" {
		t.Errorf("fragment root = %s", frag.Name)
	}
	if got := frag.ChildText("bookid"); got != "98004" {
		t.Errorf("bookid = %q (quotes should be stripped)", got)
	}
	if got := frag.ChildText("price"); got != "0.00" {
		t.Errorf("price = %q", got)
	}
	if frag.Find("publisher", "pubname") == nil {
		t.Error("nested publisher missing")
	}
}

func TestParseUpdateU2Delete(t *testing.T) {
	u, err := ParseUpdate(`
FOR $root IN document("BookView.xml"),
    $book IN $root/book
WHERE $book/bookid/text() = "98001"
UPDATE $root { DELETE $book/publisher }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Bindings) != 2 {
		t.Fatalf("bindings = %+v", u.Bindings)
	}
	if u.Bindings[1].Source.Var != "root" || u.Bindings[1].Source.Steps[0] != "book" {
		t.Errorf("binding 1 = %+v", u.Bindings[1])
	}
	if len(u.Preds) != 1 || u.Preds[0].Left.Var != "book" || u.Preds[0].Left.Field != "bookid" {
		t.Errorf("preds = %+v", u.Preds)
	}
	op := u.Ops[0]
	if op.Kind != OpDelete || op.PathVar != "book" || len(op.Path) != 1 || op.Path[0] != "publisher" {
		t.Errorf("op = %+v", op)
	}
}

func TestParseUpdateTextDelete(t *testing.T) {
	// The paper's u6: DELETE $book/bookid/text().
	u, err := ParseUpdate(`
FOR $book IN document("BookView.xml")/book
UPDATE $book { DELETE $book/bookid/text() }`)
	if err != nil {
		t.Fatal(err)
	}
	op := u.Ops[0]
	if !op.TextOnly || op.Path[0] != "bookid" {
		t.Errorf("op = %+v", op)
	}
	if u.Bindings[0].Source.Doc != "BookView.xml" || u.Bindings[0].Source.Steps[0] != "book" {
		t.Errorf("binding = %+v", u.Bindings[0])
	}
}

func TestParseUpdateLetBinding(t *testing.T) {
	// The paper's u9 uses "=" in the binding.
	u, err := ParseUpdate(`
FOR $root IN document("BookView.xml"),
    $book = $root/book
WHERE $book/price > 40.00
UPDATE $root { DELETE $book }`)
	if err != nil {
		t.Fatal(err)
	}
	if u.Bindings[1].Var != "book" || u.Bindings[1].Source.Var != "root" {
		t.Errorf("bindings = %+v", u.Bindings)
	}
	op := u.Ops[0]
	if op.Kind != OpDelete || op.PathVar != "book" || len(op.Path) != 0 {
		t.Errorf("op = %+v", op)
	}
}

func TestParseUpdateReplace(t *testing.T) {
	u, err := ParseUpdate(`
FOR $book IN document("BookView.xml")/book
WHERE $book/bookid/text() = "98001"
UPDATE $book { REPLACE $book/title WITH <title>New Title</title> }`)
	if err != nil {
		t.Fatal(err)
	}
	op := u.Ops[0]
	if op.Kind != OpReplace || op.Content.TextContent() != "New Title" {
		t.Errorf("op = %+v", op)
	}
}

func TestParseUpdateMultipleOps(t *testing.T) {
	u, err := ParseUpdate(`
FOR $book IN document("BookView.xml")/book
UPDATE $book {
  DELETE $book/review,
  INSERT <review><reviewid>009</reviewid><comment>new</comment></review>
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Ops) != 2 || u.Ops[0].Kind != OpDelete || u.Ops[1].Kind != OpInsert {
		t.Fatalf("ops = %+v", u.Ops)
	}
}

func TestParseCurlyQuotes(t *testing.T) {
	// The paper's examples use curly quotes around document names.
	u, err := ParseUpdate(`
FOR $book IN document(` + "“BookView.xml”" + `)/book
WHERE $book/title/text() = “Data on the Web”
UPDATE $book { DELETE $book/review }`)
	if err != nil {
		t.Fatal(err)
	}
	if u.Bindings[0].Source.Doc != "BookView.xml" {
		t.Errorf("doc = %q", u.Bindings[0].Source.Doc)
	}
	if u.Preds[0].Right.Lit.Str != "Data on the Web" {
		t.Errorf("literal = %+v", u.Preds[0].Right)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct {
		name, input string
		isView      bool
	}{
		{"mismatched root", `<A>FOR $x IN document("d")/t/row RETURN { $x/c }</B>`, true},
		{"missing return", `<A>FOR $x IN document("d")/t/row { $x/c }</A>`, true},
		{"unterminated string", `<A>FOR $x IN document("d/t/row RETURN { $x/c }</A>`, true},
		{"trailing garbage", `<A>FOR $x IN document("d")/t/row RETURN { $x/c }</A> extra`, true},
		{"empty update block", `FOR $b IN document("v")/book UPDATE $b { }`, false},
		{"bad op keyword", `FOR $b IN document("v")/book UPDATE $b { REMOVE $b/x }`, false},
		{"unbalanced fragment", `FOR $b IN document("v")/book UPDATE $b { INSERT <a><b></a> }`, false},
		{"missing with", `FOR $b IN document("v")/book UPDATE $b { REPLACE $b/t <title>x</title> }`, false},
	}
	for _, c := range bad {
		var err error
		if c.isView {
			_, err = ParseViewQuery(c.input)
		} else {
			_, err = ParseUpdate(c.input)
		}
		if err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := ParseViewQuery("<A>\nFOR $x IN docuXment(\"d\")/t/row RETURN { $x/c }</A>")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should carry position info, got %v", err)
	}
}

func TestUpdateQueryString(t *testing.T) {
	u, err := ParseUpdate(`
FOR $book IN document("BookView.xml")/book
WHERE $book/price > 40.00
UPDATE $book { DELETE $book/publisher }`)
	if err != nil {
		t.Fatal(err)
	}
	s := u.String()
	for _, want := range []string{"FOR $book", "WHERE", "$book/price > 40", "DELETE $book/publisher"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestSelfClosingFragment(t *testing.T) {
	u, err := ParseUpdate(`
FOR $b IN document("v")/book
UPDATE $b { INSERT <title/> }`)
	if err != nil {
		t.Fatal(err)
	}
	if u.Ops[0].Content.Name != "title" || len(u.Ops[0].Content.Children) != 0 {
		t.Errorf("fragment = %+v", u.Ops[0].Content)
	}
}
