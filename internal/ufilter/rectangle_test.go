package ufilter

import (
	"testing"

	"repro/internal/asg"
	"repro/internal/bookdb"
	"repro/internal/psd"
	"repro/internal/relational"
	"repro/internal/tpch"
	"repro/internal/viewengine"
	"repro/internal/xmltree"
	"repro/internal/xqparse"
)

// applyUpdateToXML edits a materialized view the way the update intends,
// producing the expected after-image u(DEF_V(D)) of Definition 1.
func applyUpdateToXML(t *testing.T, f *Filter, updateText string, doc *xmltree.Node) *xmltree.Node {
	t.Helper()
	u, err := xqparse.ParseUpdate(updateText)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Resolve(u, f.View)
	if err != nil {
		t.Fatal(err)
	}
	expected := doc.Clone()
	for i := range r.Ops {
		ro := &r.Ops[i]
		switch ro.Op.Kind {
		case xqparse.OpDelete:
			target := ro.Target
			if target.Kind == asg.KindLeaf {
				target = target.Parent
			}
			removeMatchingInstances(expected, target, r.UserPreds)
		case xqparse.OpInsert:
			for _, ctx := range instancesOf(expected, ro.Context) {
				if matchesPreds(ctx, ro.Context, r.UserPreds) {
					ctx.Append(normalizeFragment(ro.Op.Content))
				}
			}
		}
	}
	return expected
}

// normalizeFragment renders values the way the view engine would
// (numbers through the relational value formatter).
func normalizeFragment(n *xmltree.Node) *xmltree.Node {
	out := n.Clone()
	var walk func(*xmltree.Node)
	walk = func(m *xmltree.Node) {
		if !m.IsElement() {
			m.Text = relational.ParseLiteral(m.Text).String()
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(out)
	return out
}

// TestRectangleRuleBookDeletes verifies u(DEF_V(D)) == DEF_V(U(D)) for
// the accepted deletes of the running example: executing the translated
// SQL and re-materializing yields exactly the view with the intended
// elements removed — no side effects, nothing missed.
func TestRectangleRuleBookDeletes(t *testing.T) {
	for _, upd := range []struct{ name, text string }{
		{"u8", bookdb.U8},
		{"u9", bookdb.U9},
	} {
		db, err := bookdb.NewDatabase(relational.DeleteCascade)
		if err != nil {
			t.Fatal(err)
		}
		f, err := New(bookdb.ViewQuery, db)
		if err != nil {
			t.Fatal(err)
		}
		eng := &viewengine.Engine{Exec: f.Exec}
		before, err := eng.Materialize(f.View.Query)
		if err != nil {
			t.Fatal(err)
		}
		expected := applyUpdateToXML(t, f, upd.text, before)

		res, err := f.Apply(upd.text)
		if err != nil {
			t.Fatalf("%s: %v", upd.name, err)
		}
		if !res.Accepted {
			t.Fatalf("%s rejected: %s", upd.name, res.Reason)
		}
		after, err := eng.Materialize(f.View.Query)
		if err != nil {
			t.Fatal(err)
		}
		if !expected.Equal(after) {
			t.Errorf("%s: rectangle rule violated\nexpected:\n%s\nactual:\n%s",
				upd.name, expected, after)
		}
	}
}

// TestRectangleRuleReviewInsert: u13's insert appears exactly once in
// the right book and nowhere else.
func TestRectangleRuleReviewInsert(t *testing.T) {
	db, err := bookdb.NewDatabase(relational.DeleteCascade)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(bookdb.ViewQuery, db)
	if err != nil {
		t.Fatal(err)
	}
	eng := &viewengine.Engine{Exec: f.Exec}
	before, err := eng.Materialize(f.View.Query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Apply(bookdb.U13)
	if err != nil || !res.Accepted {
		t.Fatalf("u13: %v %+v", err, res)
	}
	after, err := eng.Materialize(f.View.Query)
	if err != nil {
		t.Fatal(err)
	}
	// The target book gains exactly one review; everything else equal.
	var target *xmltree.Node
	for _, b := range after.ChildrenNamed("book") {
		if b.ChildText("title") == "Data on the Web" {
			target = b
		}
	}
	if target == nil {
		t.Fatal("target book missing after update")
	}
	reviews := target.ChildrenNamed("review")
	if len(reviews) != 1 || reviews[0].ChildText("comment") != "Easy read and useful." {
		t.Fatalf("reviews = %+v", reviews)
	}
	// Remove the inserted review and the views must match.
	target.RemoveChild(reviews[0])
	if !before.Equal(after) {
		t.Errorf("side effects beyond the inserted review:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

// TestRectangleRuleTPCH: deleting one customer element from Vsuccess
// removes exactly that subtree.
func TestRectangleRuleTPCH(t *testing.T) {
	db, err := tpch.NewDatabaseMB(1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(tpch.VsuccessQuery, db)
	if err != nil {
		t.Fatal(err)
	}
	eng := &viewengine.Engine{Exec: f.Exec}
	before, err := eng.Materialize(f.View.Query)
	if err != nil {
		t.Fatal(err)
	}
	upd := tpch.DeleteElementUpdate("customer", 3)
	expected := applyUpdateToXML(t, f, upd, before)

	res, err := f.Apply(upd)
	if err != nil || !res.Accepted {
		t.Fatalf("%v %+v", err, res)
	}
	after, err := eng.Materialize(f.View.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !expected.Equal(after) {
		t.Error("rectangle rule violated for Vsuccess customer delete")
	}
}

// TestRectangleRulePSD: deleting a protein removes exactly its element;
// the shared organism list under the root is untouched.
func TestRectangleRulePSD(t *testing.T) {
	db, err := psd.NewDatabase(20)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(psd.ViewQuery, db)
	if err != nil {
		t.Fatal(err)
	}
	eng := &viewengine.Engine{Exec: f.Exec}
	before, err := eng.Materialize(f.View.Query)
	if err != nil {
		t.Fatal(err)
	}
	upd := psd.DeleteProtein("P00005")
	expected := applyUpdateToXML(t, f, upd, before)

	res, err := f.Apply(upd)
	if err != nil || !res.Accepted {
		t.Fatalf("%v %+v", err, res)
	}
	after, err := eng.Materialize(f.View.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !expected.Equal(after) {
		t.Error("rectangle rule violated for PSD protein delete")
	}
	if got := len(after.ChildrenNamed("organism")); got != 5 {
		t.Errorf("organisms at root = %d, want 5", got)
	}
}

// TestNoOpUpdateLeavesBaseUntouched: Definition 1's second criterion —
// an update that does not affect the view must not affect the base
// either (u12 matches a book with no reviews).
func TestNoOpUpdateLeavesBaseUntouched(t *testing.T) {
	db, err := bookdb.NewDatabase(relational.DeleteCascade)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(bookdb.ViewQuery, db)
	if err != nil {
		t.Fatal(err)
	}
	before := db.TotalRows()
	res, err := f.Apply(bookdb.U12)
	if err != nil || !res.Accepted {
		t.Fatalf("%v %+v", err, res)
	}
	if db.TotalRows() != before {
		t.Error("no-op view update modified the base database")
	}
}
