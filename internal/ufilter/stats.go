package ufilter

import (
	"repro/internal/relational"
	"repro/internal/sqlexec"
)

// Stats is a read-only snapshot of one filter's observable counters:
// the decision cache's effectiveness, the executor's scan/probe work,
// the underlying database's DML and write-ahead-log activity, and the
// parallel write path's conflict/retry/group-commit health. Every
// counter is read atomically, so a snapshot may be taken while other
// goroutines are checking or applying updates; the fields are
// individually consistent (each is exact at its own read instant).
type Stats struct {
	Cache    CacheStats         `json:"cache"`
	Executor sqlexec.ExecStats  `json:"executor"`
	Database relational.DBStats `json:"database"`
	Write    WriteStats         `json:"write"`
}

// Stats snapshots the filter's cache, executor, database and
// write-path counters. Safe for concurrent use with Check, CheckBatch
// and Apply.
func (f *Filter) Stats() Stats {
	return Stats{
		Cache:    f.CacheStats(),
		Executor: f.Exec.Stats(),
		Database: f.Exec.DB.Stats(),
		Write:    f.WriteStats(),
	}
}
