package ufilter

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/bookdb"
)

// TestEnumJSONRoundTrip: every verdict enum marshals to its String
// spelling and unmarshals back to the same value.
func TestEnumJSONRoundTrip(t *testing.T) {
	for _, s := range []Step{StepNone, StepValidation, StepSTAR, StepData} {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("%q", s.String()); string(data) != want {
			t.Errorf("step %d marshals to %s, want %s", s, data, want)
		}
		var back Step
		if err := json.Unmarshal(data, &back); err != nil || back != s {
			t.Errorf("step round trip: %v, %v != %v", err, back, s)
		}
	}
	for _, o := range []Outcome{OutcomeInvalid, OutcomeUntranslatable, OutcomeConditional, OutcomeUnconditional} {
		data, err := json.Marshal(o)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("%q", o.String()); string(data) != want {
			t.Errorf("outcome %d marshals to %s, want %s", o, data, want)
		}
		var back Outcome
		if err := json.Unmarshal(data, &back); err != nil || back != o {
			t.Errorf("outcome round trip: %v, %v != %v", err, back, o)
		}
	}
	for _, c := range []Condition{CondNone, CondMinimization, CondDupConsistency, CondSharedPartsExist} {
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		var back Condition
		if err := json.Unmarshal(data, &back); err != nil || back != c {
			t.Errorf("condition round trip: %v, %v != %v", err, back, c)
		}
	}
	for _, s := range []Strategy{StrategyHybrid, StrategyOutside, StrategyInternal} {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Strategy
		if err := json.Unmarshal(data, &back); err != nil || back != s {
			t.Errorf("strategy round trip: %v, %v != %v", err, back, s)
		}
	}
	var bad Outcome
	if err := json.Unmarshal([]byte(`"definitely not an outcome"`), &bad); err == nil {
		t.Error("unknown outcome should fail to unmarshal")
	}
}

// TestParseStrategy: names, case folding and the empty default.
func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]Strategy{
		"":         StrategyHybrid,
		"hybrid":   StrategyHybrid,
		"Outside":  StrategyOutside,
		"INTERNAL": StrategyInternal,
	} {
		got, err := ParseStrategy(name)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Error("unknown strategy should error")
	}
}

// TestResultJSON: a real rejection serializes with stable field names
// and enum spellings, and the parse tree stays off the wire.
func TestResultJSON(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	res, err := f.Check(bookdb.U2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		`"accepted":false`,
		`"rejected_at":"star"`,
		`"outcome":"untranslatable"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("result JSON missing %s: %s", want, text)
		}
	}
	if strings.Contains(text, "Update") || strings.Contains(text, "xqparse") {
		t.Errorf("parse tree leaked into JSON: %s", text)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Accepted != res.Accepted || back.Outcome != res.Outcome || back.RejectedAt != res.RejectedAt || back.Reason != res.Reason {
		t.Errorf("round trip mismatch: %+v vs %+v", back, res)
	}
}

// TestStarVerdictString: the shared rendering of verdicts.
func TestStarVerdictString(t *testing.T) {
	v := StarVerdict{
		Outcome:    OutcomeConditional,
		Conditions: []Condition{CondMinimization, CondDupConsistency},
		Reason:     "node is dirty",
	}
	want := "conditionally translatable (conditions: translation minimization, duplication consistency): node is dirty"
	if got := v.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var back StarVerdict
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Outcome != v.Outcome || len(back.Conditions) != 2 || back.Reason != v.Reason {
		t.Errorf("verdict round trip: %+v", back)
	}
}

// TestBatchResultJSON: errors travel as strings, results in order.
func TestBatchResultJSON(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	out := f.CheckBatch([]string{bookdb.U12, "garbage"}, 2)
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	var back []BatchResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("got %d results", len(back))
	}
	if back[0].Err != nil || back[0].Result == nil || !back[0].Result.Accepted {
		t.Errorf("u12: %+v", back[0])
	}
	if back[1].Err == nil || back[1].Result != nil {
		t.Errorf("garbage should round-trip its error: %+v", back[1])
	}
}
