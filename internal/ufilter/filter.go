package ufilter

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/asg"
	"repro/internal/relational"
	"repro/internal/sqlexec"
	"repro/internal/viewengine"
	"repro/internal/xmltree"
	"repro/internal/xqparse"
)

// Strategy selects the data-driven update-point checking approach of
// Section 6.2.
type Strategy int

const (
	// StrategyHybrid translates to single-table SQL and lets the
	// relational engine's constraint errors signal data conflicts
	// (Section 6.2.2, hybrid).
	StrategyHybrid Strategy = iota
	// StrategyOutside issues a probe per target relation before
	// translating, detecting conflicts and empty deletes early
	// (Section 6.2.2, outside).
	StrategyOutside
	// StrategyInternal maps the XML view to a relational left-join view
	// and updates that view (Section 6.2.1).
	StrategyInternal
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyHybrid:
		return "hybrid"
	case StrategyOutside:
		return "outside"
	case StrategyInternal:
		return "internal"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Step identifies the U-Filter step that produced a rejection.
type Step int

const (
	// StepNone means the update was not rejected.
	StepNone Step = 0
	// StepValidation is Step 1 (update validation).
	StepValidation Step = 1
	// StepSTAR is Step 2 (schema-driven translatability reasoning).
	StepSTAR Step = 2
	// StepData is Step 3 (data-driven translatability checking).
	StepData Step = 3
)

// Result reports the outcome of checking (and optionally applying) one
// view update through the U-Filter pipeline. The JSON encoding is
// stable: enum fields marshal to the same strings their String methods
// print, so the CLI, the ufilterd server and tests share one spelling
// of each verdict.
type Result struct {
	Update     *xqparse.UpdateQuery `json:"-"`
	Accepted   bool                 `json:"accepted"`
	RejectedAt Step                 `json:"rejected_at"`
	Outcome    Outcome              `json:"outcome"`
	Conditions []Condition          `json:"conditions,omitempty"`
	Reason     string               `json:"reason,omitempty"`
	// Probes lists the SQL text of the probe queries issued by Step 3.
	Probes []string `json:"probes,omitempty"`
	// SQL lists the translated statements (generated; executed when
	// Apply was used).
	SQL []string `json:"sql,omitempty"`
	// RowsAffected counts base rows touched by an applied update.
	RowsAffected int `json:"rows_affected"`
	// Warnings carries non-fatal signals such as the engine's "zero
	// tuples deleted" response.
	Warnings []string `json:"warnings,omitempty"`
}

// Filter is a compiled U-Filter instance for one view over one
// database: the ASGs are built and STAR-marked once at view definition
// time (the paper's "compiled once and reused thereafter"), then any
// number of updates can be checked against them.
//
// Concurrency: Check, CheckParsed and CheckBatch are safe for
// concurrent use — the schema-level steps read only the immutable ASGs
// and marks, and the decision cache is internally synchronized. Apply,
// ApplyParsed and BlindApply mutate the database and the executor's
// temporary-table namespace, so the filter serializes them internally;
// they may run concurrently with Check calls. The configuration fields
// (Strategy, SkipSchemaChecks, DisableCache) must be set before the
// filter is shared across goroutines.
type Filter struct {
	View     *asg.ViewASG
	Base     *asg.BaseASG
	Marks    *Marks
	Exec     *sqlexec.Executor
	Strategy Strategy

	// SkipSchemaChecks makes Apply execute the translation without
	// Steps 1 and 2. Benchmark use only (the Fig. 13 baseline).
	SkipSchemaChecks bool

	// DisableCache turns the schema-level decision cache off, forcing
	// every Check through the full parse/resolve/STAR pipeline.
	// Benchmark and debugging use only.
	DisableCache bool

	// applyMu serializes the mutating pipeline (Apply/BlindApply): the
	// translation shares tempSeq, pendingUserPreds, the executor's
	// temporary tables and the database's single-transaction engine.
	applyMu sync.Mutex

	// cache memoizes the Steps 1+2 verdict per update template; see
	// cache.go. Never nil for filters built by New.
	cache *decisionCache

	tempSeq int
	// pendingUserPreds carries the current update's predicates for the
	// internal strategy's wide probe.
	pendingUserPreds []UserPred
}

// New parses a view query, builds and marks its ASGs over the given
// database, and returns a ready filter using the hybrid strategy.
func New(viewQuery string, db *relational.Database) (*Filter, error) {
	q, err := xqparse.ParseViewQuery(viewQuery)
	if err != nil {
		return nil, err
	}
	view, err := asg.BuildViewASG(q, db.Schema())
	if err != nil {
		return nil, err
	}
	base := asg.BuildBaseASG(view, db.Schema())
	marks := MarkViewASG(view, base)
	return &Filter{
		View:  view,
		Base:  base,
		Marks: marks,
		Exec:  sqlexec.NewExecutor(db),
		cache: newDecisionCache(),
	}, nil
}

// CacheStats snapshots the decision cache's hit/miss counters. All
// zeros when the cache is disabled or the filter has not checked any
// update yet.
func (f *Filter) CacheStats() CacheStats {
	if f.cache == nil {
		return CacheStats{}
	}
	return f.cache.stats()
}

// Check runs the two schema-level steps only (no base-data access):
// Step 1 validation and Step 2 STAR reasoning. Updates that pass are
// reported Accepted with their STAR outcome; Step 3 still applies when
// the update is executed.
//
// The verdict is served from the decision cache when an identical or
// structurally-equal update was checked before: a byte-identical
// resubmission skips even parsing, and an update that differs only in
// predicate literal values skips resolution and STAR classification
// (when the template's verdict provably cannot depend on the literals).
func (f *Filter) Check(updateText string) (*Result, error) {
	if f.cache != nil && !f.DisableCache {
		if res, ok := f.cache.lookupText(updateText); ok {
			return res, nil
		}
	}
	u, err := xqparse.ParseUpdate(updateText)
	if err != nil {
		return nil, err
	}
	return f.checkCached(u, updateText)
}

// CheckParsed is Check over a pre-parsed update.
func (f *Filter) CheckParsed(u *xqparse.UpdateQuery) (*Result, error) {
	return f.checkCached(u, "")
}

// checkCached consults the template tier of the decision cache before
// running the schema-level pipeline, and stores fresh verdicts with
// their literal-sensitivity classification. text, when non-empty, also
// feeds the parse-skipping text tier.
func (f *Filter) checkCached(u *xqparse.UpdateQuery, text string) (*Result, error) {
	if f.cache == nil || f.DisableCache {
		res, _, err := f.checkUncached(u)
		return res, err
	}
	tkey := fingerprint(u)
	lkey := literalKey(u)
	if res, ok := f.cache.lookupTemplate(tkey, lkey, u); ok {
		if text != "" {
			f.cache.storeText(text, u, res)
		}
		return res, nil
	}
	res, sensitive, err := f.checkUncached(u)
	if err != nil {
		return nil, err
	}
	f.cache.store(text, tkey, lkey, u, res, sensitive)
	return res, nil
}

// checkUncached is the uncached schema-level pipeline: Step 1
// (resolution + validation) and Step 2 (STAR). It also classifies the
// verdict's literal sensitivity for the cache (see fingerprint.go).
func (f *Filter) checkUncached(u *xqparse.UpdateQuery) (*Result, bool, error) {
	res := &Result{Update: u}
	r, err := Resolve(u, f.View)
	if err != nil {
		var re *resolveError
		if errors.As(err, &re) {
			res.RejectedAt = StepValidation
			res.Outcome = OutcomeInvalid
			res.Reason = re.msg
			// Resolution failed before leaf types were known; classify
			// sensitivity from the literal kinds alone (conservative).
			return res, literalSensitiveSyntactic(u), nil
		}
		return nil, false, err
	}
	sensitive := literalSensitiveResolved(u, r)
	if err := Validate(r); err != nil {
		var ve *validationError
		if errors.As(err, &ve) {
			res.RejectedAt = StepValidation
			res.Outcome = OutcomeInvalid
			res.Reason = ve.msg
			return res, sensitive, nil
		}
		return nil, false, err
	}
	// Step 2: STAR checking per operation; the most pessimistic verdict
	// wins and the first untranslatable op rejects the update.
	res.Outcome = OutcomeUnconditional
	for i := range r.Ops {
		ro := &r.Ops[i]
		verdicts := f.starVerdicts(ro)
		for _, v := range verdicts {
			switch v.Outcome {
			case OutcomeUntranslatable:
				res.RejectedAt = StepSTAR
				res.Outcome = OutcomeUntranslatable
				res.Reason = v.Reason
				return res, sensitive, nil
			case OutcomeConditional:
				res.Outcome = OutcomeConditional
				res.Conditions = append(res.Conditions, v.Conditions...)
				if res.Reason == "" {
					res.Reason = v.Reason
				}
			case OutcomeUnconditional:
				if res.Reason == "" {
					res.Reason = v.Reason
				}
			}
		}
	}
	res.Accepted = true
	return res, sensitive, nil
}

// starVerdicts applies the STAR checking procedure to one resolved op.
// Replace is delete-then-insert (footnote 4), but leaf/tag replaces are
// value updates and always translatable once valid.
func (f *Filter) starVerdicts(ro *ResolvedOp) []StarVerdict {
	switch ro.Op.Kind {
	case xqparse.OpDelete:
		return []StarVerdict{f.Marks.CheckDelete(ro.Target)}
	case xqparse.OpInsert:
		return []StarVerdict{f.Marks.CheckInsert(ro.Target)}
	case xqparse.OpReplace:
		if ro.Target.Kind == asg.KindInternal {
			return []StarVerdict{f.Marks.CheckDelete(ro.Target), f.Marks.CheckInsert(ro.Target)}
		}
		return []StarVerdict{{Outcome: OutcomeUnconditional, Reason: "leaf replace translates to an UPDATE"}}
	}
	return nil
}

// BatchResult pairs one update of a CheckBatch call with its verdict.
// Exactly one of Result and Err is set.
type BatchResult struct {
	// Index is the update's position in the input slice.
	Index int
	// Result is the schema-level verdict, nil when Err is set.
	Result *Result
	// Err reports a parse or internal error for this update only.
	Err error
}

// CheckBatch fans a slice of updates across a worker pool and runs the
// schema-level Check on each, returning per-update results in input
// order. All workers share the filter's decision cache, so batches with
// repeated templates — the production shape the paper's "lightweight"
// claim targets — are answered mostly from memory. workers <= 0 selects
// GOMAXPROCS; a batch smaller than the pool uses one worker per update.
func (f *Filter) CheckBatch(updates []string, workers int) []BatchResult {
	out := make([]BatchResult, len(updates))
	if len(updates) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(updates) {
		workers = len(updates)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				res, err := f.Check(updates[i])
				out[i] = BatchResult{Index: i, Result: res, Err: err}
			}
		}()
	}
	for i := range updates {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// Apply runs the full pipeline: Steps 1 and 2, then Step 3's probe
// queries and update-point checking under the configured strategy, and
// finally executes the translated statements. A rejected update leaves
// the database untouched.
func (f *Filter) Apply(updateText string) (*Result, error) {
	u, err := xqparse.ParseUpdate(updateText)
	if err != nil {
		return nil, err
	}
	return f.ApplyParsed(u)
}

// ApplyParsed is Apply over a pre-parsed update. Applies are serialized
// with each other (and with BlindApply): Step 3 and the translation
// share the executor's temporary tables and the engine's
// single-transaction machinery.
func (f *Filter) ApplyParsed(u *xqparse.UpdateQuery) (*Result, error) {
	f.applyMu.Lock()
	defer f.applyMu.Unlock()
	var res *Result
	var err error
	if f.SkipSchemaChecks {
		// Benchmark mode (Fig. 13's "Update" bar): execute the
		// translation without the schema-level steps. Only safe for
		// updates known to be translatable.
		res = &Result{Update: u, Outcome: OutcomeUnconditional}
	} else {
		res, err = f.CheckParsed(u)
		if err != nil || !res.Accepted {
			return res, err
		}
	}
	r, err := Resolve(u, f.View)
	if err != nil {
		return nil, err // cannot happen: CheckParsed resolved already
	}
	res.Accepted = false
	f.pendingUserPreds = r.UserPreds
	defer func() { f.pendingUserPreds = nil }()

	txn := f.Exec.DB.Begin()
	committed := false
	defer func() {
		if !committed {
			txn.Rollback()
		}
	}()

	for i := range r.Ops {
		ro := &r.Ops[i]
		probe, tempName, reject, err := f.contextCheck(ro, r.UserPreds, res)
		if err != nil {
			return nil, err
		}
		if reject != "" {
			res.RejectedAt = StepData
			res.Reason = reject
			return res, nil
		}
		var tr *opTranslation
		switch ro.Op.Kind {
		case xqparse.OpDelete:
			tr, err = f.translateDelete(ro, probe, tempName, res)
		case xqparse.OpInsert:
			tr, err = f.translateInsert(ro, probe)
		case xqparse.OpReplace:
			tr, err = f.translateReplace(ro, probe)
		}
		if err != nil {
			var ve *validationError
			if errors.As(err, &ve) {
				res.RejectedAt = StepValidation
				res.Outcome = OutcomeInvalid
				res.Reason = ve.msg
				return res, nil
			}
			return nil, err
		}
		if reject, err := f.runSharedChecks(tr.SharedChecks, res); err != nil {
			return nil, err
		} else if reject != "" {
			res.RejectedAt = StepData
			res.Reason = reject
			return res, nil
		}
		reject, err = f.executeStatements(ro, tr.Statements, res)
		if err != nil {
			return nil, err
		}
		if reject != "" {
			res.RejectedAt = StepData
			res.Reason = reject
			return res, nil
		}
	}
	if err := txn.Commit(); err != nil {
		return nil, err
	}
	committed = true
	res.Accepted = true
	return res, nil
}

// contextCheck runs the data-driven update context check (Section 6.1):
// it probes whether the view element the update anchors at exists, and
// materializes the probe result for reuse by the translation.
func (f *Filter) contextCheck(ro *ResolvedOp, userPreds []UserPred, res *Result) (*sqlexec.ResultSet, string, string, error) {
	c := ro.Context
	sel := f.buildContextProbe(c, userPreds, relsNeededByOp(ro))
	if sel == nil {
		return nil, "", "", nil
	}
	rs, err := f.Exec.ExecSelect(sel)
	if err != nil {
		return nil, "", "", err
	}
	res.Probes = append(res.Probes, sel.String())
	if rs.Empty() {
		return nil, "", fmt.Sprintf("update context <%s> does not exist in the view (probe %q returned no rows)",
			c.Name, sel.String()), nil
	}
	f.tempSeq++
	tempName := fmt.Sprintf("TAB_%s_%d", strings.ToLower(c.Name), f.tempSeq)
	f.Exec.Materialize(tempName, rs)
	return rs, tempName, "", nil
}

// runSharedChecks verifies the CondSharedPartsExist probes: each shared
// relation's row must already exist (otherwise the insert would surface
// a new instance of another view node — a side effect) and must agree
// with the fragment's values (duplication consistency).
func (f *Filter) runSharedChecks(checks []sharedCheck, res *Result) (string, error) {
	for _, chk := range checks {
		sel := &sqlexec.SelectStmt{From: []string{chk.Rel}}
		for i, c := range chk.KeyCols {
			sel.Where = append(sel.Where, sqlexec.Eq(chk.Rel, c, chk.KeyVals[i]))
		}
		rs, err := f.Exec.ExecSelect(sel)
		if err != nil {
			return "", err
		}
		res.Probes = append(res.Probes, sel.String())
		if rs.Empty() {
			return fmt.Sprintf("inserting would create a new %s row, causing another view element to appear (shared part %v missing)",
				chk.Rel, chk.KeyVals), nil
		}
		for col, want := range chk.AllCols {
			ci, ok := rs.ColumnIndex(sqlexec.ColRef{Table: chk.Rel, Column: col})
			if !ok {
				continue
			}
			got := rs.Rows[0][ci]
			if !want.IsNull() && !got.Equal(want) {
				return fmt.Sprintf("duplication consistency violated: %s.%s is %s in the base but %s in the inserted element",
					chk.Rel, col, got, want), nil
			}
		}
	}
	return "", nil
}

// executeStatements runs the translated statements under the configured
// update-point strategy. It returns a non-empty rejection reason when a
// data conflict is detected.
func (f *Filter) executeStatements(ro *ResolvedOp, stmts []sqlexec.Statement, res *Result) (string, error) {
	switch f.Strategy {
	case StrategyInternal:
		return f.executeInternal(ro, stmts, res)
	case StrategyOutside:
		return f.executeOutside(stmts, res)
	default:
		return f.executeHybrid(stmts, res)
	}
}

// executeHybrid feeds the statements straight to the engine and
// interprets constraint errors as data conflicts and zero-row deletes
// as warnings (Section 6.2.2, hybrid strategy).
func (f *Filter) executeHybrid(stmts []sqlexec.Statement, res *Result) (string, error) {
	for _, st := range stmts {
		res.SQL = append(res.SQL, st.String())
		switch s := st.(type) {
		case *sqlexec.InsertStmt:
			if _, err := f.Exec.ExecInsert(s); err != nil {
				if relational.IsConstraintViolation(err) {
					return fmt.Sprintf("data conflict reported by the engine: %v", err), nil
				}
				return "", err
			}
			res.RowsAffected++
		case *sqlexec.DeleteStmt:
			n, err := f.Exec.ExecDelete(s)
			if err != nil {
				if relational.IsConstraintViolation(err) {
					return fmt.Sprintf("data conflict reported by the engine: %v", err), nil
				}
				return "", err
			}
			if n == 0 {
				res.Warnings = append(res.Warnings, fmt.Sprintf("zero tuples deleted by %q", s.String()))
			}
			res.RowsAffected += n
		case *sqlexec.UpdateStmt:
			n, err := f.Exec.ExecUpdate(s)
			if err != nil {
				if relational.IsConstraintViolation(err) {
					return fmt.Sprintf("data conflict reported by the engine: %v", err), nil
				}
				return "", err
			}
			res.RowsAffected += n
		}
	}
	return "", nil
}

// executeOutside probes for conflicts before issuing each statement
// (Section 6.2.2, outside strategy): inserts are preceded by a key
// probe, deletes by an existence probe that suppresses the statement
// when nothing matches (early failure detection).
func (f *Filter) executeOutside(stmts []sqlexec.Statement, res *Result) (string, error) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *sqlexec.InsertStmt:
			def, ok := f.Exec.DB.Schema().Table(s.Table)
			if ok && len(def.PrimaryKey) > 0 {
				probe := &sqlexec.SelectStmt{
					Project: []sqlexec.ColRef{{Table: s.Table, Column: "rowid"}},
					From:    []string{s.Table},
					NoIndex: true,
				}
				complete := true
				for _, pk := range def.PrimaryKey {
					v, present := s.Values[strings.ToLower(pk)]
					if !present {
						v, present = s.Values[pk]
					}
					if !present || v.IsNull() {
						complete = false
						break
					}
					probe.Where = append(probe.Where, sqlexec.Eq(s.Table, pk, v))
				}
				if complete {
					rs, err := f.Exec.ExecSelect(probe)
					if err != nil {
						return "", err
					}
					res.Probes = append(res.Probes, probe.String())
					if !rs.Empty() {
						return fmt.Sprintf("data conflict detected by probe: a %s row with the same key already exists", s.Table), nil
					}
				}
			}
			res.SQL = append(res.SQL, s.String())
			if _, err := f.Exec.ExecInsert(s); err != nil {
				if relational.IsConstraintViolation(err) {
					return fmt.Sprintf("data conflict reported by the engine: %v", err), nil
				}
				return "", err
			}
			res.RowsAffected++
		case *sqlexec.DeleteStmt:
			probe := &sqlexec.SelectStmt{
				Project: []sqlexec.ColRef{{Table: s.Table, Column: "rowid"}},
				From:    []string{s.Table},
				Where:   s.Where,
				NoIndex: true,
			}
			rs, err := f.Exec.ExecSelect(probe)
			if err != nil {
				return "", err
			}
			res.Probes = append(res.Probes, probe.String())
			if rs.Empty() {
				res.Warnings = append(res.Warnings,
					fmt.Sprintf("probe found no tuples to delete; %q not issued", s.String()))
				continue
			}
			// The probe confirmed matching rows exist; issue the
			// translated statement (the outside strategy probes, then
			// feeds the same update sequence to the engine).
			res.SQL = append(res.SQL, s.String())
			n, err := f.Exec.ExecDelete(s)
			if err != nil {
				if relational.IsConstraintViolation(err) {
					return fmt.Sprintf("data conflict reported by the engine: %v", err), nil
				}
				return "", err
			}
			res.RowsAffected += n
		case *sqlexec.UpdateStmt:
			res.SQL = append(res.SQL, s.String())
			n, err := f.Exec.ExecUpdate(s)
			if err != nil {
				if relational.IsConstraintViolation(err) {
					return fmt.Sprintf("data conflict reported by the engine: %v", err), nil
				}
				return "", err
			}
			res.RowsAffected += n
		}
	}
	return "", nil
}

// translateReplace translates a replace: for tag/leaf targets it is a
// single-column UPDATE; internal targets decompose into delete+insert.
func (f *Filter) translateReplace(ro *ResolvedOp, probe *sqlexec.ResultSet) (*opTranslation, error) {
	t := ro.Target
	switch t.Kind {
	case asg.KindLeaf, asg.KindTag:
		leaf := t
		if t.Kind == asg.KindTag {
			leaf = t.LeafUnder()
		}
		raw := strings.TrimSpace(ro.Op.Content.TextContent())
		var v relational.Value
		if raw == "" {
			v = relational.Null()
		} else {
			var err error
			v, err = relational.String_(raw).CoerceTo(leaf.Type)
			if err != nil {
				return nil, invalidf("replacement value %q is not in the domain of %s", raw, leaf.RelAttr())
			}
		}
		ids, err := probeRowIDs(probe, leaf.RelName)
		if err != nil {
			return nil, err
		}
		out := &opTranslation{}
		for _, id := range ids {
			out.Statements = append(out.Statements, &sqlexec.UpdateStmt{
				Table: leaf.RelName,
				Set:   map[string]relational.Value{leaf.ColName: v},
				Where: []sqlexec.Predicate{sqlexec.Eq(leaf.RelName, "rowid", relational.Int_(int64(id)))},
			})
		}
		return out, nil
	default:
		del, err := f.translateDelete(ro, probe, "", nil)
		if err != nil {
			return nil, err
		}
		insOp := &ResolvedOp{
			Op:      xqparse.UpdateOp{Kind: xqparse.OpInsert, Content: ro.Op.Content},
			Context: ro.Context,
			Target:  ro.Target,
		}
		ins, err := f.translateInsert(insOp, probe)
		if err != nil {
			return nil, err
		}
		return &opTranslation{
			Statements:   append(del.Statements, ins.Statements...),
			SharedChecks: ins.SharedChecks,
		}, nil
	}
}

// BlindResult reports the baseline "translate without checking"
// execution used by the Fig. 14 experiment.
type BlindResult struct {
	SideEffect  bool
	RowsTouched int
	RolledBack  bool
	ViewNodes   int // size of the materialized view (comparison cost)
}

// BlindApply is the paper's strawman: translate the update directly
// (no STAR check), execute it, detect view side effects by comparing
// the materialized view before and after (as SQL-Server does, per the
// paper), and roll back when a side effect is found. It is deliberately
// expensive — this is the baseline U-Filter avoids.
func (f *Filter) BlindApply(updateText string) (*BlindResult, error) {
	f.applyMu.Lock()
	defer f.applyMu.Unlock()
	u, err := xqparse.ParseUpdate(updateText)
	if err != nil {
		return nil, err
	}
	r, err := Resolve(u, f.View)
	if err != nil {
		return nil, err
	}
	eng := &viewengine.Engine{Exec: f.Exec}
	before, err := eng.Materialize(f.View.Query)
	if err != nil {
		return nil, err
	}
	res := &BlindResult{ViewNodes: before.Count()}

	txn := f.Exec.DB.Begin()
	dummy := &Result{}
	touched := 0
	for i := range r.Ops {
		ro := &r.Ops[i]
		probe, tempName, reject, err := f.contextCheck(ro, r.UserPreds, dummy)
		if err != nil {
			txn.Rollback()
			return nil, err
		}
		if reject != "" {
			continue
		}
		tr, err := f.blindTranslate(ro, probe, tempName)
		if err != nil {
			txn.Rollback()
			return nil, err
		}
		for _, st := range tr.Statements {
			switch s := st.(type) {
			case *sqlexec.InsertStmt:
				if _, err := f.Exec.ExecInsert(s); err == nil {
					touched++
				}
			case *sqlexec.DeleteStmt:
				n, _ := f.Exec.ExecDelete(s)
				touched += n
			case *sqlexec.UpdateStmt:
				n, _ := f.Exec.ExecUpdate(s)
				touched += n
			}
		}
	}
	res.RowsTouched = touched

	after, err := eng.Materialize(f.View.Query)
	if err != nil {
		txn.Rollback()
		return nil, err
	}
	// Side-effect detection: elements other than the update's own
	// targets must be unchanged. Comparing per-tag element populations
	// is the cheap-but-honest equivalent of the paper's view diff.
	res.SideEffect = f.detectSideEffect(r, before, after)
	if res.SideEffect {
		if err := txn.Rollback(); err != nil {
			return nil, err
		}
		res.RolledBack = true
	} else if err := txn.Commit(); err != nil {
		return nil, err
	}
	return res, nil
}

// blindTranslate mirrors translateDelete/translateInsert but without
// the safety net: unsafe deletes fall back to deleting the relation
// that owns the element's direct content — exactly the naive
// translation whose side effects the baseline then has to discover.
func (f *Filter) blindTranslate(ro *ResolvedOp, probe *sqlexec.ResultSet, tempName string) (*opTranslation, error) {
	if ro.Op.Kind == xqparse.OpDelete && ro.Target.Kind == asg.KindInternal && ro.Target.DeleteAnchor == "" {
		// Pick the relation owning most of the element's direct leaves.
		counts := map[string]int{}
		for _, c := range ro.Target.Children {
			if c.Kind == asg.KindTag && c.RelName != "" {
				counts[c.RelName]++
			}
		}
		best, bestN := "", -1
		for r, n := range counts {
			if n > bestN {
				best, bestN = r, n
			}
		}
		if best == "" {
			cr := ro.Target.CR().Names()
			if len(cr) > 0 {
				best = cr[0]
			} else {
				best = ro.Target.UPBinding.Names()[0]
			}
		}
		ro.Target.DeleteAnchor = best
		defer func() { ro.Target.DeleteAnchor = "" }()
		return f.translateDelete(ro, probe, tempName, nil)
	}
	switch ro.Op.Kind {
	case xqparse.OpDelete:
		return f.translateDelete(ro, probe, tempName, nil)
	case xqparse.OpInsert:
		return f.translateInsert(ro, probe)
	default:
		return f.translateReplace(ro, probe)
	}
}

// detectSideEffect builds the expected view — the before-image with
// exactly the update's own target instances removed — and compares it
// against the actual after-image, the paper's "compare the view before
// the update and after the update" baseline check. Any difference
// beyond the intended edit is a side effect.
func (f *Filter) detectSideEffect(r *ResolvedUpdate, before, after *xmltree.Node) bool {
	expected := before.Clone()
	for i := range r.Ops {
		ro := &r.Ops[i]
		switch ro.Op.Kind {
		case xqparse.OpDelete:
			target := ro.Target
			if target.Kind == asg.KindLeaf {
				target = target.Parent
			}
			removeMatchingInstances(expected, target, r.UserPreds)
		case xqparse.OpInsert:
			// The inserted instance should appear under each matching
			// context; append a copy so a correct insert diffs clean.
			for _, ctx := range instancesOf(expected, ro.Context) {
				if matchesPreds(ctx, ro.Context, r.UserPreds) {
					ctx.Append(ro.Op.Content.Clone())
				}
			}
		}
	}
	return !expected.Equal(after)
}

// pathFromRoot lists the tag names from the view root down to n.
func pathFromRoot(n *asg.Node) []string {
	var rev []string
	for cur := n; cur != nil && cur.Kind != asg.KindRoot; cur = cur.Parent {
		rev = append(rev, cur.Name)
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// instancesOf returns the XML instances of a view ASG node in a
// materialized document.
func instancesOf(doc *xmltree.Node, n *asg.Node) []*xmltree.Node {
	path := pathFromRoot(n)
	if len(path) == 0 {
		return []*xmltree.Node{doc}
	}
	return doc.FindAll(path...)
}

// predWithin reports whether the predicate's leaf lies in the subtree
// of the given node.
func predWithin(up UserPred, node *asg.Node) bool {
	for cur := up.Leaf.Parent; cur != nil; cur = cur.Parent {
		if cur == node {
			return true
		}
	}
	return false
}

// matchesPreds evaluates the user predicates that live inside the given
// node's subtree against one instance. Predicates anchored elsewhere
// are treated as matching (conservative).
func matchesPreds(inst *xmltree.Node, node *asg.Node, preds []UserPred) bool {
	for _, up := range preds {
		// Relative path from node down to the predicate's tag.
		var rev []string
		cur := up.Leaf.Parent
		for ; cur != nil && cur != node; cur = cur.Parent {
			rev = append(rev, cur.Name)
		}
		if cur != node {
			continue // predicate anchored outside this subtree
		}
		path := make([]string, len(rev))
		for i := range rev {
			path[i] = rev[len(rev)-1-i]
		}
		tag := inst
		if len(path) > 0 {
			tag = inst.Find(path...)
		}
		if tag == nil {
			return false
		}
		v, err := relational.String_(tag.TextContent()).CoerceTo(up.Leaf.Type)
		if err != nil {
			return false
		}
		if !up.Op.Apply(v, up.Lit) {
			return false
		}
	}
	return true
}

// removeMatchingInstances deletes from the document every instance of
// the target node whose subtree satisfies the user predicates.
func removeMatchingInstances(doc *xmltree.Node, target *asg.Node, preds []UserPred) {
	path := pathFromRoot(target)
	if len(path) == 0 {
		return
	}
	parents := []*xmltree.Node{doc}
	if len(path) > 1 {
		parents = doc.FindAll(path[:len(path)-1]...)
	}
	tag := path[len(path)-1]
	// Predicates anchored inside the target evaluate per instance;
	// those anchored higher filter the parent instances.
	var parentPreds []UserPred
	if target.Parent != nil {
		for _, up := range preds {
			if predWithin(up, target.Parent) && !predWithin(up, target) {
				parentPreds = append(parentPreds, up)
			}
		}
	}
	for _, p := range parents {
		if target.Parent != nil && !matchesPreds(p, target.Parent, parentPreds) {
			continue
		}
		for _, inst := range p.ChildrenNamed(tag) {
			if matchesPreds(inst, target, preds) {
				p.RemoveChild(inst)
			}
		}
	}
}
