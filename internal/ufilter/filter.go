// Package ufilter is the public facade over the paper's contribution:
// the three-step lightweight view update checking framework of Fig. 5
// — update validation (Section 4), schema-driven translatability
// reasoning / the STAR algorithm (Section 5), data-driven
// translatability checking (Section 6) — plus the update translation
// engine that emits the final single-table SQL statements.
//
// The pipeline itself lives in internal/plan, the
// compile-once/execute-many layer: plan.Compile turns an update
// template into an immutable UpdatePlan (resolved ops, STAR verdicts,
// shared-check list, parameterized probe statements) and the
// plan.Executor binds literal tuples and executes against the
// database. Filter wraps one Executor per view, keeps the historical
// Check/Apply/CheckBatch API, and routes everything through the
// executor's internal plan cache — so callers get
// compile-once/execute-many behavior without touching the plan API,
// while Prepare/Execute expose it directly for prepared workloads.
package ufilter

import (
	"repro/internal/asg"
	"repro/internal/plan"
	"repro/internal/relational"
	"repro/internal/xmltree"
	"repro/internal/xqparse"
)

// Re-exported pipeline types: the facade's API is the plan package's
// API under the names this package has always used, so existing
// callers (and the repro root facade) compile unchanged.
type (
	// Strategy selects the data-driven update-point checking approach
	// of Section 6.2.
	Strategy = plan.Strategy
	// Step identifies the U-Filter step that produced a rejection.
	Step = plan.Step
	// Outcome is the STAR classification of Fig. 6.
	Outcome = plan.Outcome
	// Condition is the side condition attached to a conditionally
	// translatable update.
	Condition = plan.Condition
	// StarVerdict is the STAR checking procedure's answer for one
	// operation.
	StarVerdict = plan.StarVerdict
	// Result reports the outcome of checking (and optionally applying)
	// one view update.
	Result = plan.Result
	// BatchResult pairs one update of a CheckBatch/ApplyBatch call with
	// its verdict.
	BatchResult = plan.BatchResult
	// BlindResult reports the Fig. 14 "translate then diff then
	// rollback" baseline execution.
	BlindResult = plan.BlindResult
	// CacheStats snapshots the plan cache's effectiveness counters.
	CacheStats = plan.CacheStats
	// WriteStats snapshots the parallel write path's conflict, retry
	// and group-commit counters.
	WriteStats = plan.WriteStats
	// Marks carries the STAR marking of one view.
	Marks = plan.Marks
	// UserPred is a user-update predicate compiled against the view
	// ASG.
	UserPred = plan.UserPred
	// ResolvedUpdate is a parsed update bound to the view's ASG.
	ResolvedUpdate = plan.ResolvedUpdate
	// ResolvedOp is one update operation bound to view ASG nodes.
	ResolvedOp = plan.ResolvedOp
	// UpdatePlan is the immutable compile-once artifact for one update
	// template; see Filter.Prepare.
	UpdatePlan = plan.UpdatePlan
	// ObsHists bundles the executor's engine-internal latency/size
	// histograms (compile time, retries, commit wait, group size).
	ObsHists = plan.ObsHists
)

// Update-point strategies (Section 6.2).
const (
	StrategyHybrid   = plan.StrategyHybrid
	StrategyOutside  = plan.StrategyOutside
	StrategyInternal = plan.StrategyInternal
)

// Pipeline steps.
const (
	StepNone       = plan.StepNone
	StepValidation = plan.StepValidation
	StepSTAR       = plan.StepSTAR
	StepData       = plan.StepData
)

// STAR classification outcomes.
const (
	OutcomeInvalid        = plan.OutcomeInvalid
	OutcomeUntranslatable = plan.OutcomeUntranslatable
	OutcomeConditional    = plan.OutcomeConditional
	OutcomeUnconditional  = plan.OutcomeUnconditional
)

// Side conditions of conditionally translatable updates.
const (
	CondNone             = plan.CondNone
	CondMinimization     = plan.CondMinimization
	CondDupConsistency   = plan.CondDupConsistency
	CondSharedPartsExist = plan.CondSharedPartsExist
)

// ParseStrategy maps a strategy name (as printed by Strategy.String) to
// its value, case-insensitively. An empty name selects StrategyHybrid.
func ParseStrategy(name string) (Strategy, error) { return plan.ParseStrategy(name) }

// MarkViewASG runs the STAR marking procedure (Algorithm 1) over a
// view's ASGs.
func MarkViewASG(view *asg.ViewASG, base *asg.BaseASG) *Marks {
	return plan.MarkViewASG(view, base)
}

// Resolve binds an update query's variables, predicates and operations
// to nodes of the view ASG (Step 1's first half).
func Resolve(u *xqparse.UpdateQuery, view *asg.ViewASG) (*ResolvedUpdate, error) {
	return plan.Resolve(u, view)
}

// Filter is a compiled U-Filter instance for one view over one
// database. It embeds the plan.Executor that holds the marked ASGs,
// the SQL executor and the plan cache; the historical API (Check,
// CheckParsed, CheckBatch, Apply, ApplyParsed, BlindApply, CacheStats)
// is the executor's, promoted — as are the snapshot-isolated data
// checks (Snapshot, CheckData, CheckDataAt, CheckBatchData). The
// concurrency contract is the executor's: checks fan out freely and
// never wait on an in-flight apply (data checks pin an MVCC snapshot,
// so each sees a single point-in-time view); mutating calls are
// serialized internally on the narrow writer lock.
type Filter struct {
	*plan.Executor
}

// New parses a view query, builds and marks its ASGs over the given
// database, and returns a ready filter using the hybrid strategy.
func New(viewQuery string, db relational.Engine) (*Filter, error) {
	q, err := xqparse.ParseViewQuery(viewQuery)
	if err != nil {
		return nil, err
	}
	view, err := asg.BuildViewASG(q, db.Schema())
	if err != nil {
		return nil, err
	}
	base := asg.BuildBaseASG(view, db.Schema())
	marks := plan.MarkViewASG(view, base)
	return &Filter{Executor: plan.NewExecutor(view, base, marks, db)}, nil
}

// Prepare compiles an update's template into an immutable UpdatePlan:
// resolution, Step 1 validation and Step 2 STAR verdicts run once, and
// the plan carries parameterized probe statements plus precompiled
// translation artifacts. Pair it with Execute/ExecuteBatch (promoted
// from plan.Executor) for the compile-once/execute-many fast path; the
// plain Check/Apply API reaches the same machinery through the
// internal plan cache.
func (f *Filter) Prepare(updateText string) (*UpdatePlan, error) {
	return f.Executor.CompileText(updateText)
}

// Test-support forwarders: package-internal tests exercise pieces of
// the pipeline that now live in internal/plan.
func checkConjunctionSatisfiable(preds []relational.CheckPredicate) bool {
	return plan.ConjunctionSatisfiable(preds)
}

func removeMatchingInstances(doc *xmltree.Node, target *asg.Node, preds []UserPred) {
	plan.RemoveMatchingInstances(doc, target, preds)
}

func matchesPreds(inst *xmltree.Node, node *asg.Node, preds []UserPred) bool {
	return plan.MatchesPreds(inst, node, preds)
}

func instancesOf(doc *xmltree.Node, n *asg.Node) []*xmltree.Node {
	return plan.InstancesOf(doc, n)
}
