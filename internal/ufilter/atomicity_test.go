package ufilter

import (
	"strings"
	"testing"

	"repro/internal/bookdb"
	"repro/internal/relational"
)

// TestMultiOpUpdate: one UPDATE block with a delete and an insert — both
// land, in order.
func TestMultiOpUpdate(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	res, err := f.Apply(`
FOR $book IN document("BookView.xml")/book
WHERE $book/bookid/text() = "98001"
UPDATE $book {
  DELETE $book/review,
  INSERT <review><reviewid>010</reviewid><comment>replacement review</comment></review>
}`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("rejected: %s", res.Reason)
	}
	ids, _ := f.Exec.DB.LookupEqual("review", []string{"bookid"}, []relational.Value{relational.String_("98001")})
	if len(ids) != 1 {
		t.Fatalf("reviews after replace-style update = %d, want 1", len(ids))
	}
	vals, _ := f.Exec.DB.ValuesByName("review", ids[0])
	if vals["reviewid"].Str != "010" {
		t.Errorf("surviving review = %v", vals)
	}
}

// TestMultiOpAtomicity: when the second op of a block hits a data
// conflict, the first op's effects must roll back — the whole update is
// rejected atomically.
func TestMultiOpAtomicity(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	before := f.Exec.DB.RowCount("review")
	res, err := f.Apply(`
FOR $book IN document("BookView.xml")/book
WHERE $book/bookid/text() = "98001"
UPDATE $book {
  DELETE $book/review,
  INSERT <review><reviewid></reviewid><comment>x</comment></review>
}`)
	if err != nil {
		t.Fatal(err)
	}
	// The empty reviewid violates NOT NULL — caught in validation, so
	// nothing executed at all.
	if res.Accepted {
		t.Fatal("update with NOT NULL violation accepted")
	}
	if got := f.Exec.DB.RowCount("review"); got != before {
		t.Fatalf("review count = %d, want %d (atomic rejection)", got, before)
	}

	// Now a conflict only detectable at the data level: inserting a
	// review whose key duplicates an existing one, after a delete of a
	// DIFFERENT book's reviews in the same block.
	res, err = f.Apply(`
FOR $root IN document("BookView.xml"),
    $book IN $root/book
WHERE $book/bookid/text() = "98003"
UPDATE $book {
  INSERT <review><reviewid>001</reviewid><comment>first</comment></review>,
  INSERT <review><reviewid>001</reviewid><comment>duplicate key</comment></review>
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("duplicate-key second insert accepted")
	}
	ids, _ := f.Exec.DB.LookupEqual("review", []string{"bookid"}, []relational.Value{relational.String_("98003")})
	if len(ids) != 0 {
		t.Fatalf("first insert leaked through a rejected block: %d rows", len(ids))
	}
}

// TestCheckDoesNotTouchData: Check must never read or write base data.
func TestCheckDoesNotTouchData(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	scanned, probes := f.Exec.RowsScanned, f.Exec.IndexProbes
	stmts := f.Exec.DB.StatementsExecutedTotal()
	for _, u := range bookdb.AllUpdates() {
		if _, err := f.Check(u.Text); err != nil {
			t.Fatal(err)
		}
	}
	if f.Exec.RowsScanned != scanned || f.Exec.IndexProbes != probes {
		t.Error("schema-level Check accessed base data")
	}
	if f.Exec.DB.StatementsExecutedTotal() != stmts {
		t.Error("schema-level Check executed statements")
	}
}

// TestEnumStrings exercises the display helpers.
func TestEnumStrings(t *testing.T) {
	if StrategyHybrid.String() != "hybrid" || StrategyOutside.String() != "outside" || StrategyInternal.String() != "internal" {
		t.Error("strategy names")
	}
	for o, want := range map[Outcome]string{
		OutcomeInvalid:        "invalid",
		OutcomeUntranslatable: "untranslatable",
		OutcomeConditional:    "conditionally translatable",
		OutcomeUnconditional:  "unconditionally translatable",
	} {
		if o.String() != want {
			t.Errorf("%d = %q, want %q", o, o.String(), want)
		}
	}
	for c, want := range map[Condition]string{
		CondNone:             "none",
		CondMinimization:     "translation minimization",
		CondDupConsistency:   "duplication consistency",
		CondSharedPartsExist: "shared parts must pre-exist",
	} {
		if c.String() != want {
			t.Errorf("condition %d = %q, want %q", c, c.String(), want)
		}
	}
}

// TestResolveErrors: malformed references reject as invalid with a
// helpful message rather than erroring out.
func TestResolveErrors(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	cases := []struct{ name, text, want string }{
		{"bad path", `FOR $x IN document("v.xml")/nosuch UPDATE $x { DELETE $x }`, "does not exist"},
		{"unbound delete var", `FOR $b IN document("v.xml")/book UPDATE $b { DELETE $ghost/review }`, "unbound"},
		{"bad predicate path", `FOR $b IN document("v.xml")/book WHERE $b/nosuch/text() = "x" UPDATE $b { DELETE $b/review }`, "not in the view schema"},
		{"unbound target", `FOR $b IN document("v.xml")/book UPDATE $ghost { DELETE $b/review }`, "not bound"},
	}
	for _, c := range cases {
		res, err := f.Check(c.text)
		if err != nil {
			t.Errorf("%s: hard error %v", c.name, err)
			continue
		}
		if res.Accepted || res.Outcome != OutcomeInvalid {
			t.Errorf("%s: accepted=%v outcome=%s", c.name, res.Accepted, res.Outcome)
		}
		if !strings.Contains(res.Reason, c.want) {
			t.Errorf("%s: reason %q missing %q", c.name, res.Reason, c.want)
		}
	}
}

// TestFilterReuse: one compiled filter serves many updates; temp tables
// from earlier applies do not leak into later ones.
func TestFilterReuse(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	for i := 0; i < 3; i++ {
		res, err := f.Apply(bookdb.U12)
		if err != nil || !res.Accepted {
			t.Fatalf("iteration %d: %v %+v", i, err, res)
		}
	}
	res, err := f.Apply(bookdb.U13)
	if err != nil || !res.Accepted {
		t.Fatalf("u13 after reuse: %v %+v", err, res)
	}
}

// TestRestrictPolicyDelete: a RESTRICT schema turns the anchor delete
// into an engine-level rejection the hybrid strategy surfaces.
func TestRestrictPolicyDelete(t *testing.T) {
	db, err := bookdb.NewDatabase(relational.DeleteRestrict)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(bookdb.ViewQuery, db)
	if err != nil {
		t.Fatal(err)
	}
	// Deleting book 98001 is restricted by its reviews.
	res, err := f.Apply(`
FOR $root IN document("BookView.xml"),
    $book = $root/book
WHERE $book/bookid/text() = "98001"
UPDATE $root { DELETE $book }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("restricted delete accepted")
	}
	if !strings.Contains(res.Reason, "conflict") && !strings.Contains(res.Reason, "restrict") {
		t.Errorf("reason = %q", res.Reason)
	}
	if got := db.RowCount("book"); got != 3 {
		t.Errorf("book count = %d", got)
	}
}
