package ufilter

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bookdb"
	"repro/internal/xqparse"
)

// deleteReviewsByTitle builds a U12-shaped update: a string literal on
// the title leaf, which carries no CHECK annotations — the verdict is
// literal-independent, so all titles share one template-tier entry.
func deleteReviewsByTitle(title string) string {
	return fmt.Sprintf(`
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = %q
UPDATE $book { DELETE $book/review }`, title)
}

// deleteBooksOverPrice builds a U9-shaped update: a float literal on
// the price leaf, which carries CHECK annotations (the view publishes
// books under $50 only) — the verdict depends on the literal, so the
// template is literal-sensitive.
func deleteBooksOverPrice(price string) string {
	return fmt.Sprintf(`
FOR $root IN document("BookView.xml"),
    $book = $root/book
WHERE $book/price > %s
UPDATE $root { DELETE $book }`, price)
}

// TestCacheTextTier: a byte-identical resubmission is a text-tier hit
// with the same verdict.
func TestCacheTextTier(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	r1, err := f.Check(deleteReviewsByTitle("Data on the Web"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.Check(deleteReviewsByTitle("Data on the Web"))
	if err != nil {
		t.Fatal(err)
	}
	st := f.CacheStats()
	if st.TextHits != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 text hit / 1 hit / 1 miss", st)
	}
	if r1.Accepted != r2.Accepted || r1.Outcome != r2.Outcome || r1.Reason != r2.Reason {
		t.Errorf("cached verdict differs: %+v vs %+v", r1, r2)
	}
}

// TestCacheTemplateTier: structurally-equal updates with different
// string literals on a check-free leaf hit the template tier (one miss,
// then hits), and a cached rejection replays identically.
func TestCacheTemplateTier(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	titles := []string{"Data on the Web", "Programming in Unix", "TCP/IP Illustrated"}
	var first *Result
	for i, title := range titles {
		res, err := f.Check(deleteReviewsByTitle(title))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
		} else if res.Accepted != first.Accepted || res.Outcome != first.Outcome {
			t.Errorf("title %q verdict diverged: %+v vs %+v", title, res, first)
		}
	}
	st := f.CacheStats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v, want 1 miss / 2 template hits", st)
	}
	if st.TemplateEntries != 1 {
		t.Errorf("TemplateEntries = %d, want 1", st.TemplateEntries)
	}
}

// TestCacheLiteralSensitive: the price template's verdict flips with
// the literal (overlap test against the view's CHECK), so the cache
// must key those verdicts by literal value — and still serve repeats.
func TestCacheLiteralSensitive(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	ok1, err := f.Check(deleteBooksOverPrice("40.00"))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := f.Check(deleteBooksOverPrice("50.00"))
	if err != nil {
		t.Fatal(err)
	}
	ok2, err := f.Check(deleteBooksOverPrice("40.00"))
	if err != nil {
		t.Fatal(err)
	}
	if !ok1.Accepted || ok1.Outcome != OutcomeConditional {
		t.Errorf("price>40 should be conditionally translatable, got %+v", ok1)
	}
	if bad.Accepted || bad.Outcome != OutcomeInvalid {
		t.Errorf("price>50 should be invalid (no overlap with the view), got %+v", bad)
	}
	if ok2.Accepted != ok1.Accepted || ok2.Outcome != ok1.Outcome || ok2.Reason != ok1.Reason {
		t.Errorf("cached literal-sensitive verdict diverged: %+v vs %+v", ok2, ok1)
	}
	st := f.CacheStats()
	if st.Misses != 2 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 2 misses (distinct literals) / 1 hit (repeat)", st)
	}
}

// TestCacheMatchesUncached replays the paper's full update corpus twice
// — cached against uncached — and requires identical verdicts.
func TestCacheMatchesUncached(t *testing.T) {
	cached := newFilter(t, StrategyHybrid)
	plain := newFilter(t, StrategyHybrid)
	plain.DisableCache = true
	corpus := append([]string{},
		deleteReviewsByTitle("Data on the Web"),
		deleteBooksOverPrice("45.00"),
		deleteBooksOverPrice("55.00"),
	)
	for _, u := range allBookUpdates() {
		corpus = append(corpus, u)
	}
	// Two passes: the second is served from cache.
	for pass := 0; pass < 2; pass++ {
		for i, text := range corpus {
			want, err1 := plain.Check(text)
			got, err2 := cached.Check(text)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("pass %d update %d: err %v vs %v", pass, i, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if got.Accepted != want.Accepted || got.Outcome != want.Outcome ||
				got.RejectedAt != want.RejectedAt || got.Reason != want.Reason ||
				!reflect.DeepEqual(got.Conditions, want.Conditions) {
				t.Errorf("pass %d update %d: cached %+v, uncached %+v", pass, i, got, want)
			}
		}
	}
	if st := cached.CacheStats(); st.Hits == 0 {
		t.Error("second pass produced no cache hits")
	}
	if st := plain.CacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("disabled cache recorded traffic: %+v", st)
	}
}

// TestCachedResultIsolated: mutating a returned Result (as Apply does)
// must not corrupt the cached copy.
func TestCachedResultIsolated(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	text := deleteBooksOverPrice("41.00")
	r1, err := f.Check(text)
	if err != nil {
		t.Fatal(err)
	}
	r1.Accepted = false
	r1.Reason = "mutated by caller"
	r1.Conditions = append(r1.Conditions, CondDupConsistency)
	r1.Probes = append(r1.Probes, "SELECT 1")
	r2, err := f.Check(text)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Accepted || r2.Reason == "mutated by caller" || len(r2.Probes) != 0 {
		t.Errorf("cached result was corrupted by caller mutation: %+v", r2)
	}
	if len(r2.Conditions) != 1 || r2.Conditions[0] != CondMinimization {
		t.Errorf("cached conditions corrupted: %v", r2.Conditions)
	}
}

// TestCheckParsedCached: CheckParsed shares the template tier with
// Check even though it never sees update text.
func TestCheckParsedCached(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	u1, err := xqparse.ParseUpdate(deleteReviewsByTitle("Data on the Web"))
	if err != nil {
		t.Fatal(err)
	}
	u2, err := xqparse.ParseUpdate(deleteReviewsByTitle("Some Other Title"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.CheckParsed(u1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CheckParsed(u2); err != nil {
		t.Fatal(err)
	}
	st := f.CacheStats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss / 1 hit", st)
	}
}

// TestCheckBatch: batch results arrive in input order, agree with
// sequential Check, and report per-update parse errors.
func TestCheckBatch(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	updates := []string{
		deleteReviewsByTitle("Data on the Web"),
		"NOT AN UPDATE AT ALL",
		deleteBooksOverPrice("55.00"),
		deleteReviewsByTitle("Data on the Web"),
	}
	seq := newFilter(t, StrategyHybrid)
	results := f.CheckBatch(updates, 4)
	if len(results) != len(updates) {
		t.Fatalf("got %d results, want %d", len(results), len(updates))
	}
	for i, br := range results {
		if br.Index != i {
			t.Errorf("result %d has Index %d", i, br.Index)
		}
		want, wantErr := seq.Check(updates[i])
		if (br.Err == nil) != (wantErr == nil) {
			t.Errorf("update %d: batch err %v, sequential err %v", i, br.Err, wantErr)
			continue
		}
		if br.Err != nil {
			continue
		}
		if br.Result.Accepted != want.Accepted || br.Result.Outcome != want.Outcome {
			t.Errorf("update %d: batch %+v, sequential %+v", i, br.Result, want)
		}
	}
	// Empty batch and zero workers are fine.
	if out := f.CheckBatch(nil, 0); len(out) != 0 {
		t.Errorf("empty batch returned %d results", len(out))
	}
}

// allBookUpdates lists the paper's u1..u13 corpus.
func allBookUpdates() []string {
	var out []string
	for _, u := range bookdb.AllUpdates() {
		out = append(out, u.Text)
	}
	return out
}
