package ufilter

import (
	"strings"
	"testing"

	"repro/internal/bookdb"
	"repro/internal/relational"
)

func newFilter(t testing.TB, strategy Strategy) *Filter {
	t.Helper()
	db, err := bookdb.NewDatabase(relational.DeleteCascade)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(bookdb.ViewQuery, db)
	if err != nil {
		t.Fatal(err)
	}
	f.Strategy = strategy
	return f
}

// TestSTARMarks verifies the (UPoint|UContext) pairs of Fig. 8.
func TestSTARMarks(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	in := f.View.InternalNodes()
	vC1, vC2, vC3, vC4 := in[0], in[1], in[2], in[3]

	cases := []struct {
		name                    string
		node                    int
		safeDel, safeIns, clean bool
	}{
		{"vC1 book: (dirty | s-d ^ u-i)", 0, true, false, false},
		{"vC2 publisher-in-book: (dirty | u-d ^ u-i)", 1, false, false, false},
		{"vC3 review: (clean | s-d ^ s-i)", 2, true, true, true},
		{"vC4 publisher-at-root: (dirty | u-d ^ s-i)", 3, false, true, false},
	}
	_ = vC1
	_ = vC2
	_ = vC3
	_ = vC4
	for _, c := range cases {
		n := in[c.node]
		if n.UCtx.SafeDelete != c.safeDel || n.UCtx.SafeInsert != c.safeIns || n.Clean != c.clean {
			t.Errorf("%s: got (clean=%v | %s)", c.name, n.Clean, n.UCtx)
		}
	}
	if vC1.DeleteAnchor != "book" {
		t.Errorf("vC1 anchor = %q, want book", vC1.DeleteAnchor)
	}
	if vC3.DeleteAnchor != "review" {
		t.Errorf("vC3 anchor = %q, want review", vC3.DeleteAnchor)
	}
	ms := f.Marks.MarkString()
	if !strings.Contains(ms, "vC3 <review>: (clean | s-d^s-i)") {
		t.Errorf("MarkString:\n%s", ms)
	}
}

// TestPaperClassifications runs all thirteen updates of Figs. 4 and 10
// through the schema-level pipeline and checks each lands in the
// paper's category.
func TestPaperClassifications(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	cases := []struct {
		name       string
		text       string
		accepted   bool
		rejectedAt Step
		outcome    Outcome
		reasonHas  string
	}{
		{"u1 invalid insert", bookdb.U1, false, StepValidation, OutcomeInvalid, "title"},
		{"u2 delete publisher untranslatable", bookdb.U2, false, StepSTAR, OutcomeUntranslatable, "unsafe-delete"},
		{"u3 insert review passes schema checks", bookdb.U3, true, StepNone, OutcomeUnconditional, ""},
		{"u4 insert book conditional", bookdb.U4, true, StepNone, OutcomeConditional, ""},
		{"u5 invalid overlap", bookdb.U5, false, StepValidation, OutcomeInvalid, "overlap"},
		{"u6 invalid text delete", bookdb.U6, false, StepValidation, OutcomeInvalid, "NOT NULL"},
		{"u7 invalid missing publisher", bookdb.U7, false, StepValidation, OutcomeInvalid, "publisher"},
		{"u8 delete reviews unconditional", bookdb.U8, true, StepNone, OutcomeUnconditional, "clean | safe-delete"},
		{"u9 delete book conditional", bookdb.U9, true, StepNone, OutcomeConditional, "dirty | safe-delete"},
		{"u10 delete publisher untranslatable", bookdb.U10, false, StepSTAR, OutcomeUntranslatable, "unsafe-delete"},
		{"u11 passes schema checks", bookdb.U11, true, StepNone, OutcomeUnconditional, ""},
		{"u12 passes schema checks", bookdb.U12, true, StepNone, OutcomeUnconditional, ""},
		{"u13 insert review unconditional", bookdb.U13, true, StepNone, OutcomeUnconditional, ""},
	}
	for _, c := range cases {
		res, err := f.Check(c.text)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if res.Accepted != c.accepted || res.RejectedAt != c.rejectedAt {
			t.Errorf("%s: accepted=%v rejectedAt=%d (reason %q), want accepted=%v at %d",
				c.name, res.Accepted, res.RejectedAt, res.Reason, c.accepted, c.rejectedAt)
			continue
		}
		if res.Outcome != c.outcome {
			t.Errorf("%s: outcome=%s, want %s (reason %q)", c.name, res.Outcome, c.outcome, res.Reason)
		}
		if c.reasonHas != "" && !strings.Contains(res.Reason, c.reasonHas) {
			t.Errorf("%s: reason %q missing %q", c.name, res.Reason, c.reasonHas)
		}
	}
}

// TestU9Conditions: the dirty | safe-delete book node requires
// translation minimization (Observation 1).
func TestU9Conditions(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	res, err := f.Check(bookdb.U9)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Conditions {
		if c == CondMinimization {
			found = true
		}
	}
	if !found {
		t.Errorf("u9 conditions = %v, want minimization", res.Conditions)
	}
}

// TestU4Conditions: the Rule-3-unsafe book insert requires the shared
// publisher to pre-exist plus duplication consistency.
func TestU4Conditions(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	res, err := f.Check(bookdb.U4)
	if err != nil {
		t.Fatal(err)
	}
	var hasShared, hasDup bool
	for _, c := range res.Conditions {
		if c == CondSharedPartsExist {
			hasShared = true
		}
		if c == CondDupConsistency {
			hasDup = true
		}
	}
	if !hasShared || !hasDup {
		t.Errorf("u4 conditions = %v", res.Conditions)
	}
}

// TestApplyU3RejectedByContextProbe: Example 3 — the book is not in the
// view, so the data-driven context check rejects.
func TestApplyU3RejectedByContextProbe(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	res, err := f.Apply(bookdb.U3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.RejectedAt != StepData {
		t.Fatalf("u3: accepted=%v at=%d reason=%q", res.Accepted, res.RejectedAt, res.Reason)
	}
	if len(res.Probes) == 0 || !strings.Contains(res.Probes[0], "book.title = 'DB2 Universal Database'") {
		t.Errorf("probes = %v", res.Probes)
	}
	if got := f.Exec.DB.RowCount("review"); got != 2 {
		t.Errorf("review count changed to %d", got)
	}
}

// TestApplyU4DataConflict: the duplicate-key insert is caught at the
// update point (Section 6.2) and the database is left unchanged.
func TestApplyU4DataConflict(t *testing.T) {
	for _, strat := range []Strategy{StrategyHybrid, StrategyOutside, StrategyInternal} {
		f := newFilter(t, strat)
		res, err := f.Apply(bookdb.U4)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if res.Accepted || res.RejectedAt != StepData {
			t.Errorf("%s: accepted=%v at=%d reason=%q", strat, res.Accepted, res.RejectedAt, res.Reason)
		}
		if !strings.Contains(res.Reason, "conflict") {
			t.Errorf("%s: reason = %q", strat, res.Reason)
		}
		if got := f.Exec.DB.RowCount("book"); got != 3 {
			t.Errorf("%s: book count = %d after rejected insert", strat, got)
		}
	}
}

// TestApplyU8DeletesReviews: the unconditional delete removes exactly
// the two reviews of the sub-$40 book.
func TestApplyU8DeletesReviews(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	res, err := f.Apply(bookdb.U8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("u8 rejected: %q", res.Reason)
	}
	if res.RowsAffected != 2 {
		t.Errorf("rows affected = %d, want 2", res.RowsAffected)
	}
	if got := f.Exec.DB.RowCount("review"); got != 0 {
		t.Errorf("review count = %d", got)
	}
	if got := f.Exec.DB.RowCount("book"); got != 3 {
		t.Errorf("book count = %d (books must survive)", got)
	}
	// The translated statement consumes the materialized probe (U3 shape).
	joined := strings.Join(res.SQL, "; ")
	if !strings.Contains(joined, "DELETE FROM review WHERE review.bookid IN (SELECT book.bookid FROM TAB_") {
		t.Errorf("SQL = %v", res.SQL)
	}
}

// TestApplyU9Minimized: deleting the $48 book removes the book row but
// NOT its publisher (translation minimization — the paper's example:
// publisher.t1 is still referenced by the first book).
func TestApplyU9Minimized(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	res, err := f.Apply(bookdb.U9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("u9 rejected: %q", res.Reason)
	}
	if got := f.Exec.DB.RowCount("book"); got != 2 {
		t.Errorf("book count = %d, want 2", got)
	}
	if got := f.Exec.DB.RowCount("publisher"); got != 3 {
		t.Errorf("publisher count = %d, want 3 (minimization keeps publishers)", got)
	}
	ids, _ := f.Exec.DB.LookupEqual("book", []string{"bookid"}, []relational.Value{relational.String_("98003")})
	if len(ids) != 0 {
		t.Error("book 98003 should be deleted")
	}
	// 98002 costs $45 (>40) but is not in the view (year 1985): the
	// probe's view predicates must protect it.
	ids, _ = f.Exec.DB.LookupEqual("book", []string{"bookid"}, []relational.Value{relational.String_("98002")})
	if len(ids) != 1 {
		t.Error("book 98002 must survive: it is not in the view")
	}
}

// TestApplyU11RejectedByContextProbe: the book exists in the base but
// not in the view (year 1985).
func TestApplyU11RejectedByContextProbe(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	res, err := f.Apply(bookdb.U11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.RejectedAt != StepData {
		t.Fatalf("u11: accepted=%v reason=%q", res.Accepted, res.Reason)
	}
}

// TestApplyU12ZeroTuples: hybrid reports the engine's warning; outside
// detects it early and suppresses the delete.
func TestApplyU12ZeroTuples(t *testing.T) {
	for _, strat := range []Strategy{StrategyHybrid, StrategyOutside} {
		f := newFilter(t, strat)
		res, err := f.Apply(bookdb.U12)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if !res.Accepted {
			t.Fatalf("%s: rejected: %q", strat, res.Reason)
		}
		if res.RowsAffected != 0 {
			t.Errorf("%s: rows = %d", strat, res.RowsAffected)
		}
		if len(res.Warnings) == 0 {
			t.Errorf("%s: expected a zero-tuples warning", strat)
		}
		if strat == StrategyOutside && len(res.SQL) != 0 {
			t.Errorf("outside: delete should be suppressed, SQL = %v", res.SQL)
		}
	}
}

// TestApplyU13InsertsReview: the probe's bookid feeds the translated
// INSERT (the paper's U1 statement).
func TestApplyU13InsertsReview(t *testing.T) {
	for _, strat := range []Strategy{StrategyHybrid, StrategyOutside, StrategyInternal} {
		f := newFilter(t, strat)
		res, err := f.Apply(bookdb.U13)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if !res.Accepted {
			t.Fatalf("%s: rejected: %q", strat, res.Reason)
		}
		ids, _ := f.Exec.DB.LookupEqual("review", []string{"bookid"}, []relational.Value{relational.String_("98003")})
		if len(ids) != 1 {
			t.Fatalf("%s: review not inserted", strat)
		}
		vals, _ := f.Exec.DB.ValuesByName("review", ids[0])
		if vals["reviewid"].Str != "001" || !strings.Contains(vals["comment"].Str, "Easy read") {
			t.Errorf("%s: inserted review = %v", strat, vals)
		}
	}
}

// TestApplyRejectionLeavesDatabaseUntouched is the transactional
// guarantee: every rejected update must leave zero trace.
func TestApplyRejectionLeavesDatabaseUntouched(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	before := f.Exec.DB.TotalRows()
	for _, u := range bookdb.AllUpdates() {
		res, err := f.Check(u.Text)
		if err != nil {
			t.Fatalf("%s: %v", u.Name, err)
		}
		if !res.Accepted {
			continue
		}
		res, err = f.Apply(u.Text)
		if err != nil {
			t.Fatalf("%s: %v", u.Name, err)
		}
		if !res.Accepted && f.Exec.DB.TotalRows() != before {
			t.Fatalf("%s: rejected update changed the database", u.Name)
		}
		before = f.Exec.DB.TotalRows()
	}
}

// TestBlindApplyDetectsSideEffect: the Fig. 14 baseline — blindly
// translating u10 (delete publisher of expensive books) cascades the
// book away; the view diff catches it and rolls back.
func TestBlindApplyDetectsSideEffect(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	before := f.Exec.DB.TotalRows()
	res, err := f.BlindApply(bookdb.U10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SideEffect || !res.RolledBack {
		t.Fatalf("blind u10: sideEffect=%v rolledBack=%v rows=%d", res.SideEffect, res.RolledBack, res.RowsTouched)
	}
	if f.Exec.DB.TotalRows() != before {
		t.Error("rollback did not restore the database")
	}
}

// TestBlindApplyCleanUpdateCommits: u8 has no side effect, so the blind
// path commits.
func TestBlindApplyCleanUpdateCommits(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	res, err := f.BlindApply(bookdb.U8)
	if err != nil {
		t.Fatal(err)
	}
	if res.SideEffect || res.RolledBack {
		t.Fatalf("blind u8: sideEffect=%v rolledBack=%v", res.SideEffect, res.RolledBack)
	}
	if got := f.Exec.DB.RowCount("review"); got != 0 {
		t.Errorf("review count = %d", got)
	}
}

// TestReplaceTitle: a leaf replace translates to an UPDATE.
func TestReplaceTitle(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	res, err := f.Apply(`
FOR $book IN document("BookView.xml")/book
WHERE $book/bookid/text() = "98001"
UPDATE $book { REPLACE $book/title WITH <title>TCP/IP Illustrated, 2nd ed.</title> }`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.RowsAffected != 1 {
		t.Fatalf("replace: accepted=%v rows=%d reason=%q", res.Accepted, res.RowsAffected, res.Reason)
	}
	ids, _ := f.Exec.DB.LookupEqual("book", []string{"bookid"}, []relational.Value{relational.String_("98001")})
	vals, _ := f.Exec.DB.ValuesByName("book", ids[0])
	if vals["title"].Str != "TCP/IP Illustrated, 2nd ed." {
		t.Errorf("title = %q", vals["title"].Str)
	}
}

// TestReplaceViolatingCheckRejected: replacing the price with a value
// outside the view's check range is invalid at Step 1.
func TestReplaceViolatingCheckRejected(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	res, err := f.Check(`
FOR $book IN document("BookView.xml")/book
WHERE $book/bookid/text() = "98001"
UPDATE $book { REPLACE $book/price WITH <price>99.00</price> }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.RejectedAt != StepValidation {
		t.Fatalf("replace price 99: accepted=%v reason=%q", res.Accepted, res.Reason)
	}
}

// TestDeleteNullableLeaf: deleting the price text is valid (nullable)
// and translates to SET NULL.
func TestDeleteNullableLeaf(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	res, err := f.Apply(`
FOR $book IN document("BookView.xml")/book
WHERE $book/bookid/text() = "98001"
UPDATE $book { DELETE $book/price/text() }`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("rejected: %q", res.Reason)
	}
	ids, _ := f.Exec.DB.LookupEqual("book", []string{"bookid"}, []relational.Value{relational.String_("98001")})
	vals, _ := f.Exec.DB.ValuesByName("book", ids[0])
	if !vals["price"].IsNull() {
		t.Errorf("price = %v, want NULL", vals["price"])
	}
}

// TestUnknownElementRejected: inserting an element the view schema
// does not know is invalid.
func TestUnknownElementRejected(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	res, err := f.Check(`
FOR $root IN document("BookView.xml")
UPDATE $root { INSERT <magazine><title>Wired</title></magazine> }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Outcome != OutcomeInvalid {
		t.Fatalf("magazine insert: accepted=%v outcome=%s", res.Accepted, res.Outcome)
	}
}

// TestSatisfiability covers the Step-1 overlap solver.
func TestSatisfiability(t *testing.T) {
	gt := func(v float64) relational.CheckPredicate {
		return relational.CheckPredicate{Op: relational.OpGT, Operand: relational.Float_(v)}
	}
	lt := func(v float64) relational.CheckPredicate {
		return relational.CheckPredicate{Op: relational.OpLT, Operand: relational.Float_(v)}
	}
	eq := func(v float64) relational.CheckPredicate {
		return relational.CheckPredicate{Op: relational.OpEQ, Operand: relational.Float_(v)}
	}
	ne := func(v float64) relational.CheckPredicate {
		return relational.CheckPredicate{Op: relational.OpNE, Operand: relational.Float_(v)}
	}
	ge := func(v float64) relational.CheckPredicate {
		return relational.CheckPredicate{Op: relational.OpGE, Operand: relational.Float_(v)}
	}
	le := func(v float64) relational.CheckPredicate {
		return relational.CheckPredicate{Op: relational.OpLE, Operand: relational.Float_(v)}
	}
	cases := []struct {
		preds []relational.CheckPredicate
		want  bool
	}{
		{[]relational.CheckPredicate{gt(50), lt(50)}, false},         // u5
		{[]relational.CheckPredicate{gt(40), lt(50), gt(0)}, true},   // u9-style
		{[]relational.CheckPredicate{ge(50), le(50)}, true},          // point
		{[]relational.CheckPredicate{ge(50), le(50), ne(50)}, false}, // excluded point
		{[]relational.CheckPredicate{eq(10), lt(5)}, false},          // pinned out of range
		{[]relational.CheckPredicate{eq(10), eq(20)}, false},         // conflicting eq
		{[]relational.CheckPredicate{eq(10), gt(5), lt(15)}, true},   // pinned in range
		{[]relational.CheckPredicate{ne(10)}, true},                  // open
		{[]relational.CheckPredicate{gt(50), le(50)}, false},         // strict crossing
	}
	for i, c := range cases {
		if got := checkConjunctionSatisfiable(c.preds); got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
	// String equality contradictions.
	sEq := relational.CheckPredicate{Op: relational.OpEQ, Operand: relational.String_("a")}
	sEq2 := relational.CheckPredicate{Op: relational.OpEQ, Operand: relational.String_("b")}
	if checkConjunctionSatisfiable([]relational.CheckPredicate{sEq, sEq2}) {
		t.Error("conflicting string equalities should be unsatisfiable")
	}
}
