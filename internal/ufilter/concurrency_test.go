package ufilter

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bookdb"
)

// TestConcurrentCheckRace is the race-detector regression test demanded
// by the concurrency contract: N goroutines hammer Check on one shared
// filter with a mix of cached and uncached updates (repeated texts,
// repeated templates with fresh literals, and never-seen templates),
// and every goroutine validates its verdicts against a precomputed
// single-threaded oracle. Run with -race.
func TestConcurrentCheckRace(t *testing.T) {
	f := newFilter(t, StrategyHybrid)

	// The workload: the paper corpus (high text-tier hit rate), title
	// templates with rotating literals (template-tier hits), and price
	// templates with rotating literals (literal-sensitive entries).
	var texts []string
	texts = append(texts, allBookUpdates()...)
	for i := 0; i < 8; i++ {
		texts = append(texts, deleteReviewsByTitle(fmt.Sprintf("Title %d", i)))
		texts = append(texts, deleteBooksOverPrice(fmt.Sprintf("%d.00", 41+i)))
	}

	// Single-threaded oracle on an identical, cache-free filter.
	oracle := newFilter(t, StrategyHybrid)
	oracle.DisableCache = true
	type verdict struct {
		accepted bool
		outcome  Outcome
		reason   string
	}
	want := make(map[string]verdict, len(texts))
	for _, text := range texts {
		res, err := oracle.Check(text)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		want[text] = verdict{res.Accepted, res.Outcome, res.Reason}
	}

	const goroutines = 16
	const iterations = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				text := texts[(g*7+i)%len(texts)]
				res, err := f.Check(text)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %v", g, err)
					return
				}
				w := want[text]
				if res.Accepted != w.accepted || res.Outcome != w.outcome || res.Reason != w.reason {
					errs <- fmt.Errorf("goroutine %d: %q got (%v,%s,%q), want (%v,%s,%q)",
						g, text, res.Accepted, res.Outcome, res.Reason, w.accepted, w.outcome, w.reason)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := f.CacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("workload should mix cached and uncached checks, stats %+v", st)
	}
	if total := st.Hits + st.Misses; total != goroutines*iterations {
		t.Errorf("hits+misses = %d, want %d", total, goroutines*iterations)
	}
}

// TestConcurrentCheckBatchRace drives CheckBatch itself from several
// goroutines at once (pools sharing one cache).
func TestConcurrentCheckBatchRace(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	batch := make([]string, 0, 32)
	for i := 0; i < 32; i++ {
		batch = append(batch, deleteReviewsByTitle(fmt.Sprintf("Book %d", i%5)))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, br := range f.CheckBatch(batch, 4) {
				if br.Err != nil {
					t.Errorf("batch error: %v", br.Err)
					return
				}
				if !br.Result.Accepted {
					t.Errorf("unexpected rejection: %s", br.Result.Reason)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentCheckWithApply exercises the documented contract that
// schema-level Checks may run concurrently with the (internally
// serialized) Apply pipeline: writers push review inserts and deletes
// through Apply while readers classify updates.
func TestConcurrentCheckWithApply(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})

	// Readers: schema-only checks, no base-data access.
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := f.Check(deleteBooksOverPrice(fmt.Sprintf("%d.00", 41+(g+i)%8))); err != nil {
					t.Errorf("check: %v", err)
					return
				}
			}
		}(g)
	}

	// Writers: full pipeline, serialized by the filter itself. The
	// same insert/delete pair restores the database each round.
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 10; i++ {
				ins := fmt.Sprintf(`
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Data on the Web"
UPDATE $book {
  INSERT
    <review>
      <reviewid>90%d%d</reviewid>
      <comment> concurrent </comment>
    </review>
}`, w, i)
				if _, err := f.Apply(ins); err != nil {
					t.Errorf("apply insert: %v", err)
					return
				}
				if _, err := f.Apply(bookdb.U12); err != nil {
					t.Errorf("apply delete: %v", err)
					return
				}
			}
		}(w)
	}

	// Readers run for the writers' whole lifetime, then drain.
	writers.Wait()
	close(stop)
	readers.Wait()
}

// TestStatsDuringApplyRace is the race-detector regression for the
// "statistics reads never race a writer" contract: Check traffic and
// Stats snapshots (which read the redo-log and executor counters) run
// while Apply is appending redo records. Before redoOps/redoBytes
// became atomics this raced on the write-ahead-log counters.
func TestStatsDuringApplyRace(t *testing.T) {
	f := newFilter(t, StrategyHybrid)
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := f.Check(deleteReviewsByTitle(fmt.Sprintf("Stats %d", (g+i)%6))); err != nil {
					t.Errorf("check: %v", err)
					return
				}
				st := f.Stats()
				if st.Database.RedoBytes < 0 || st.Database.RedoRecords < 0 {
					t.Errorf("implausible snapshot: %+v", st.Database)
					return
				}
			}
		}(g)
	}

	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < 20; i++ {
			ins := fmt.Sprintf(`
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Data on the Web"
UPDATE $book {
  INSERT
    <review>
      <reviewid>81%02d</reviewid>
      <comment> stats race </comment>
    </review>
}`, i)
			if _, err := f.Apply(ins); err != nil {
				t.Errorf("apply insert: %v", err)
				return
			}
			if _, err := f.Apply(bookdb.U12); err != nil {
				t.Errorf("apply delete: %v", err)
				return
			}
		}
	}()

	writers.Wait()
	close(stop)
	readers.Wait()

	st := f.Stats()
	if st.Database.RedoRecords == 0 || st.Database.RedoBytes == 0 {
		t.Errorf("applies should have appended redo records, got %+v", st.Database)
	}
	if st.Database.StatementsExecuted == 0 {
		t.Errorf("applies should have executed statements, got %+v", st.Database)
	}
}
