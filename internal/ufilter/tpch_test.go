package ufilter

import (
	"strings"
	"testing"

	"repro/internal/relational"
	"repro/internal/tpch"
)

func tpchFilter(t testing.TB, viewQuery string, mb int) *Filter {
	t.Helper()
	db, err := tpch.NewDatabaseMB(mb)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(viewQuery, db)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestVsuccessAllUnconditional reproduces the Section 7.2 claim:
// updates over any internal node of Vsuccess are unconditionally
// translatable.
func TestVsuccessAllUnconditional(t *testing.T) {
	f := tpchFilter(t, tpch.VsuccessQuery, 1)
	for _, n := range f.View.InternalNodes() {
		if !n.UCtx.SafeDelete || !n.UCtx.SafeInsert || !n.Clean {
			t.Errorf("%s <%s>: (clean=%v | %s), want (clean | s-d^s-i)", n.Label(), n.Name, n.Clean, n.UCtx)
		}
		v := f.Marks.CheckDelete(n)
		if v.Outcome != OutcomeUnconditional {
			t.Errorf("delete %s: %s (%s)", n.Name, v.Outcome, v.Reason)
		}
		v = f.Marks.CheckInsert(n)
		if v.Outcome != OutcomeUnconditional {
			t.Errorf("insert %s: %s (%s)", n.Name, v.Outcome, v.Reason)
		}
	}
	for _, rel := range tpch.Relations {
		res, err := f.Check(tpch.DeleteElementUpdate(rel, 0))
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		if !res.Accepted || res.Outcome != OutcomeUnconditional {
			t.Errorf("%s delete: accepted=%v outcome=%s (%s)", rel, res.Accepted, res.Outcome, res.Reason)
		}
	}
}

// TestVfailRepublishedRelationUntranslatable: deleting the relation
// republished under the root is untranslatable; the STAR check catches
// it statically.
func TestVfailRepublishedRelationUntranslatable(t *testing.T) {
	for _, rel := range tpch.Relations {
		f := tpchFilter(t, tpch.VfailQuery(rel), 1)
		res, err := f.Check(tpch.DeleteElementUpdate(rel, 0))
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		if res.Accepted || res.RejectedAt != StepSTAR || res.Outcome != OutcomeUntranslatable {
			t.Errorf("Vfail(%s): accepted=%v at=%d outcome=%s (%s)",
				rel, res.Accepted, res.RejectedAt, res.Outcome, res.Reason)
		}
	}
}

// TestVfailOtherRelationsStillSafe: in Vfail(region), deleting a
// nation is still fine — only the republished relation is poisoned.
func TestVfailOtherRelationsStillSafe(t *testing.T) {
	f := tpchFilter(t, tpch.VfailQuery("region"), 1)
	res, err := f.Check(tpch.DeleteElementUpdate("nation", 3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Errorf("nation delete under Vfail(region): %s (%s)", res.Outcome, res.Reason)
	}
}

// TestApplyDeleteCascades: deleting a customer element removes the
// customer and its orders/lineitems, nothing else.
func TestApplyDeleteCascades(t *testing.T) {
	f := tpchFilter(t, tpch.VsuccessQuery, 1)
	db := f.Exec.DB
	ordersBefore := db.RowCount("orders")
	res, err := f.Apply(tpch.DeleteElementUpdate("customer", 2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("rejected: %s", res.Reason)
	}
	ids, _ := db.LookupEqual("customer", []string{"c_custkey"}, []relational.Value{relational.Int_(2)})
	if len(ids) != 0 {
		t.Error("customer 2 still present")
	}
	if db.RowCount("orders") >= ordersBefore {
		t.Error("orders of customer 2 not cascaded")
	}
	if db.RowCount("nation") != 25 {
		t.Error("nations must be untouched")
	}
}

// TestApplyInsertLineitem: the Fig. 15 update inserts one lineitem
// wired to its order through the probe result, under all strategies.
func TestApplyInsertLineitem(t *testing.T) {
	for _, strat := range []Strategy{StrategyHybrid, StrategyOutside, StrategyInternal} {
		f := tpchFilter(t, tpch.VlinearQuery, 1)
		f.Strategy = strat
		before := f.Exec.DB.RowCount("lineitem")
		res, err := f.Apply(tpch.InsertLineitemUpdate(10, 99))
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if !res.Accepted {
			t.Fatalf("%s: rejected: %s", strat, res.Reason)
		}
		if got := f.Exec.DB.RowCount("lineitem"); got != before+1 {
			t.Errorf("%s: lineitem count %d -> %d", strat, before, got)
		}
		ids, _ := f.Exec.DB.LookupEqual("lineitem", []string{"l_orderkey", "l_linenumber"},
			[]relational.Value{relational.Int_(10), relational.Int_(99)})
		if len(ids) != 1 {
			t.Errorf("%s: inserted lineitem not found", strat)
		}
	}
}

// TestInsertLineitemDuplicateRejected: inserting an existing
// (orderkey, linenumber) is a data conflict under every strategy.
func TestInsertLineitemDuplicateRejected(t *testing.T) {
	for _, strat := range []Strategy{StrategyHybrid, StrategyOutside, StrategyInternal} {
		f := tpchFilter(t, tpch.VlinearQuery, 1)
		f.Strategy = strat
		res, err := f.Apply(tpch.InsertLineitemUpdate(10, 1))
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if res.Accepted || res.RejectedAt != StepData {
			t.Errorf("%s: accepted=%v reason=%q", strat, res.Accepted, res.Reason)
		}
	}
}

// TestInsertIntoMissingOrderRejected: the context probe catches an
// order that does not exist.
func TestInsertIntoMissingOrderRejected(t *testing.T) {
	f := tpchFilter(t, tpch.VlinearQuery, 1)
	res, err := f.Apply(tpch.InsertLineitemUpdate(99999999, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.RejectedAt != StepData {
		t.Errorf("accepted=%v reason=%q", res.Accepted, res.Reason)
	}
}

// TestProbePruning: the external-strategy probe for a lineitem insert
// touches only the orders relation (FK chain is NOT NULL), matching the
// paper's "only retrieves the L_ORDERKEY" observation, while the
// internal strategy's wide probe joins all four ancestors.
func TestProbePruning(t *testing.T) {
	f := tpchFilter(t, tpch.VlinearQuery, 1)
	res, err := f.Apply(tpch.InsertLineitemUpdate(11, 99))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || len(res.Probes) == 0 {
		t.Fatalf("accepted=%v probes=%v", res.Accepted, res.Probes)
	}
	probe := res.Probes[0]
	if !strings.Contains(probe, "FROM orders") {
		t.Errorf("probe = %q", probe)
	}
	for _, unwanted := range []string{"region", "nation", "customer"} {
		if strings.Contains(probe, unwanted) {
			t.Errorf("probe should prune %s: %q", unwanted, probe)
		}
	}

	fi := tpchFilter(t, tpch.VlinearQuery, 1)
	fi.Strategy = StrategyInternal
	res, err = fi.Apply(tpch.InsertLineitemUpdate(11, 99))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("internal rejected: %s", res.Reason)
	}
	wide := ""
	for _, p := range res.Probes {
		if strings.Contains(p, "customer") {
			wide = p
		}
	}
	if wide == "" || !strings.Contains(wide, "region") || !strings.Contains(wide, "nation") {
		t.Errorf("internal wide probe missing ancestors: %v", res.Probes)
	}
}

// TestVbushInsertAndDelete: the bushy view supports inserting an
// order+lineitem pair and deleting orderline instances.
func TestVbushInsertAndDelete(t *testing.T) {
	f := tpchFilter(t, tpch.VbushQuery, 1)
	db := f.Exec.DB
	ordersBefore := db.RowCount("orders")
	res, err := f.Apply(tpch.InsertOrderlineUpdateBush(1, 9999991, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("bush insert rejected: %s", res.Reason)
	}
	if db.RowCount("orders") != ordersBefore+1 {
		t.Errorf("order not inserted")
	}
	ids, _ := db.LookupEqual("lineitem", []string{"l_orderkey"}, []relational.Value{relational.Int_(9999991)})
	if len(ids) != 1 {
		t.Errorf("lineitem not inserted")
	}

	// Delete the orderlines of customer 1 (anchor = lineitem).
	liBefore := db.RowCount("lineitem")
	res, err = f.Apply(`
FOR $c IN document("view.xml")/customer
WHERE $c/c_custkey/text() = "1"
UPDATE $c { DELETE $c/orderline }`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("bush delete rejected: %s", res.Reason)
	}
	if db.RowCount("lineitem") >= liBefore {
		t.Error("orderlines not deleted")
	}
	if db.RowCount("orders") != ordersBefore+1 {
		t.Error("orders must survive an orderline delete (minimization)")
	}
}

// TestBlindApplyVfail: the Fig. 14 baseline on the failure view —
// blindly deleting a region cascades everything, the view diff detects
// the side effect, and rollback restores the database.
func TestBlindApplyVfail(t *testing.T) {
	f := tpchFilter(t, tpch.VfailQuery("region"), 1)
	before := f.Exec.DB.TotalRows()
	res, err := f.BlindApply(tpch.DeleteElementUpdate("region", 0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.SideEffect || !res.RolledBack {
		t.Fatalf("sideEffect=%v rolledBack=%v rowsTouched=%d", res.SideEffect, res.RolledBack, res.RowsTouched)
	}
	if res.RowsTouched < before/10 {
		t.Errorf("blind delete touched only %d rows", res.RowsTouched)
	}
	if f.Exec.DB.TotalRows() != before {
		t.Error("rollback incomplete")
	}
}

// TestFail2Shape: the Fig. 17 Fail2 scenario — an order exists but has
// no lineitems; outside suppresses the delete, hybrid executes it and
// gets the zero-tuples warning.
func TestFail2Shape(t *testing.T) {
	for _, strat := range []Strategy{StrategyHybrid, StrategyOutside} {
		f := tpchFilter(t, tpch.VlinearQuery, 1)
		f.Strategy = strat
		// Strip order 10's lineitems first.
		ids, _ := f.Exec.DB.LookupEqual("lineitem", []string{"l_orderkey"}, []relational.Value{relational.Int_(10)})
		for _, id := range ids {
			if _, err := f.Exec.DB.Delete("lineitem", id); err != nil {
				t.Fatal(err)
			}
		}
		res, err := f.Apply(tpch.DeleteLineitemsOfOrder(10))
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if !res.Accepted || res.RowsAffected != 0 {
			t.Fatalf("%s: accepted=%v rows=%d (%s)", strat, res.Accepted, res.RowsAffected, res.Reason)
		}
		if len(res.Warnings) == 0 {
			t.Errorf("%s: expected a warning", strat)
		}
		if strat == StrategyOutside && len(res.SQL) != 0 {
			t.Errorf("outside: DML should be suppressed, got %v", res.SQL)
		}
		if strat == StrategyHybrid && len(res.SQL) == 0 {
			t.Errorf("hybrid: DML should be issued")
		}
	}
}
