// Package psd provides a synthetic Protein Sequence Database mirroring
// the two properties Section 7.3 observed in the PIR PSD domain: (i)
// views are often NOT well-nested — the nesting does not follow the
// key/foreign-key direction (an organism, the FK target, is published
// inside each protein that references it), and (ii) foreign keys use
// the SET NULL delete policy rather than CASCADE.
//
// Substitution note (DESIGN.md §6): the real PIR dataset is not
// available offline; the synthetic schema reproduces the structural
// properties the paper's argument depends on, not the biology.
package psd

import (
	"fmt"
	"math/rand"

	"repro/internal/relational"
)

// Schema builds the protein database: organism(oid PK), protein(pid PK,
// oid FK SET NULL), citation((pid,cid) PK, pid FK SET NULL... citations
// reference proteins), feature((pid,fid) PK, pid FK SET NULL).
func Schema() (*relational.Schema, error) {
	organism, err := relational.NewTableDef("organism", []relational.Column{
		{Name: "oid", Type: relational.TypeString},
		{Name: "species", Type: relational.TypeString, NotNull: true, Unique: true},
		{Name: "lineage", Type: relational.TypeString},
	}, []string{"oid"}, nil)
	if err != nil {
		return nil, err
	}
	protein, err := relational.NewTableDef("protein", []relational.Column{
		{Name: "pid", Type: relational.TypeString},
		{Name: "name", Type: relational.TypeString, NotNull: true},
		{Name: "oid", Type: relational.TypeString},
		{Name: "length", Type: relational.TypeInt,
			Checks: []relational.CheckPredicate{{Op: relational.OpGT, Operand: relational.Int_(0)}}},
	}, []string{"pid"}, []relational.ForeignKey{{
		Name: "protein_organism_fk", Columns: []string{"oid"},
		RefTable: "organism", RefColumns: []string{"oid"}, OnDelete: relational.DeleteSetNull,
	}})
	if err != nil {
		return nil, err
	}
	citation, err := relational.NewTableDef("citation", []relational.Column{
		{Name: "pid", Type: relational.TypeString},
		{Name: "cid", Type: relational.TypeString},
		{Name: "title", Type: relational.TypeString, NotNull: true},
		{Name: "journal", Type: relational.TypeString},
	}, []string{"pid", "cid"}, []relational.ForeignKey{{
		Name: "citation_protein_fk", Columns: []string{"pid"},
		RefTable: "protein", RefColumns: []string{"pid"}, OnDelete: relational.DeleteCascade,
	}})
	if err != nil {
		return nil, err
	}
	return relational.NewSchema(organism, protein, citation)
}

// NewDatabase builds and populates the database deterministically.
func NewDatabase(proteins int) (*relational.Database, error) {
	schema, err := Schema()
	if err != nil {
		return nil, err
	}
	db := relational.NewDatabase(schema)
	rng := rand.New(rand.NewSource(int64(proteins) + 17))
	organisms := []struct{ oid, species string }{
		{"O1", "Homo sapiens"}, {"O2", "Mus musculus"}, {"O3", "Caenorhabditis elegans"},
		{"O4", "Saccharomyces cerevisiae"}, {"O5", "Drosophila melanogaster"},
	}
	for _, o := range organisms {
		if _, err := db.Insert("organism", map[string]relational.Value{
			"oid": relational.String_(o.oid), "species": relational.String_(o.species),
			"lineage": relational.String_("Eukaryota"),
		}); err != nil {
			return nil, fmt.Errorf("psd: organism: %w", err)
		}
	}
	for i := 0; i < proteins; i++ {
		pid := fmt.Sprintf("P%05d", i)
		if _, err := db.Insert("protein", map[string]relational.Value{
			"pid":    relational.String_(pid),
			"name":   relational.String_(fmt.Sprintf("protein kinase %d", i)),
			"oid":    relational.String_(organisms[i%len(organisms)].oid),
			"length": relational.Int_(int64(50 + rng.Intn(2000))),
		}); err != nil {
			return nil, fmt.Errorf("psd: protein: %w", err)
		}
		for c := 0; c < 1+i%3; c++ {
			if _, err := db.Insert("citation", map[string]relational.Value{
				"pid": relational.String_(pid), "cid": relational.String_(fmt.Sprintf("C%d", c)),
				"title":   relational.String_(fmt.Sprintf("Characterization of protein %d, part %d", i, c)),
				"journal": relational.String_("J. Mol. Biol."),
			}); err != nil {
				return nil, fmt.Errorf("psd: citation: %w", err)
			}
		}
	}
	return db, nil
}

// ViewQuery is the non-well-nested curation view: organisms (the FK
// *target*) are nested inside each protein that references them — the
// inverse of key/foreign-key nesting — and citations follow the FK.
// This is exactly the shape [7,8]'s well-nested assumption excludes and
// U-Filter handles (Section 7.3).
const ViewQuery = `
<ProteinView>
FOR $p IN document("default.xml")/protein/row,
    $o IN document("default.xml")/organism/row
WHERE ($p/oid = $o/oid) AND ($p/length > 100)
RETURN {
  <protein>
    $p/pid, $p/name, $p/length,
    <organism>
      $o/oid, $o/species
    </organism>,
    FOR $c IN document("default.xml")/citation/row
    WHERE ($p/pid = $c/pid)
    RETURN {
      <citation>
        $c/cid, $c/title
      </citation>
    }
  </protein>
},
FOR $o IN document("default.xml")/organism/row
RETURN {
  <organism>
    $o/oid, $o/species
  </organism>
}
</ProteinView>`

// Updates used by the example and tests.

// DeleteCitations removes the citations of one protein — translatable.
func DeleteCitations(pid string) string {
	return fmt.Sprintf(`
FOR $p IN document("ProteinView.xml")/protein
WHERE $p/pid/text() = "%s"
UPDATE $p { DELETE $p/citation }`, pid)
}

// InsertCitation adds a citation to one protein — translatable.
func InsertCitation(pid, cid, title string) string {
	return fmt.Sprintf(`
FOR $p IN document("ProteinView.xml")/protein
WHERE $p/pid/text() = "%s"
UPDATE $p {
  INSERT <citation><cid>%s</cid><title>%s</title></citation>
}`, pid, cid, title)
}

// DeleteProtein removes a protein element.
func DeleteProtein(pid string) string {
	return fmt.Sprintf(`
FOR $root IN document("ProteinView.xml"),
    $p IN $root/protein
WHERE $p/pid/text() = "%s"
UPDATE $root { DELETE $p }`, pid)
}

// DeleteOrganismInProtein tries to delete the organism nested inside a
// protein — the non-well-nested hotspot.
func DeleteOrganismInProtein(pid string) string {
	return fmt.Sprintf(`
FOR $p IN document("ProteinView.xml")/protein
WHERE $p/pid/text() = "%s"
UPDATE $p { DELETE $p/organism }`, pid)
}
