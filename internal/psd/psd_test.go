package psd

import (
	"testing"

	"repro/internal/relational"
	"repro/internal/ufilter"
)

func newPSDFilter(t testing.TB) *ufilter.Filter {
	t.Helper()
	db, err := NewDatabase(50)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ufilter.New(ViewQuery, db)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPSDLoad(t *testing.T) {
	db, err := NewDatabase(50)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.RowCount("protein"); got != 50 {
		t.Errorf("proteins = %d", got)
	}
	if got := db.RowCount("citation"); got == 0 {
		t.Error("no citations")
	}
}

// TestSetNullPolicy: deleting an organism nulls protein.oid instead of
// cascading — the §7.3 domain behavior.
func TestSetNullPolicy(t *testing.T) {
	db, err := NewDatabase(10)
	if err != nil {
		t.Fatal(err)
	}
	before := db.RowCount("protein")
	ids, _ := db.LookupEqual("organism", []string{"oid"}, []relational.Value{relational.String_("O1")})
	if _, err := db.Delete("organism", ids[0]); err != nil {
		t.Fatal(err)
	}
	if db.RowCount("protein") != before {
		t.Error("proteins must survive organism deletion under SET NULL")
	}
	pids, _ := db.LookupEqual("protein", []string{"pid"}, []relational.Value{relational.String_("P00000")})
	vals, _ := db.ValuesByName("protein", pids[0])
	if !vals["oid"].IsNull() {
		t.Errorf("protein.oid = %v, want NULL", vals["oid"])
	}
}

// TestNonWellNestedViewAccepted: U-Filter builds the ASG and STAR marks
// for the non-well-nested view without restriction — the paper's §7.3
// practicality claim.
func TestNonWellNestedViewAccepted(t *testing.T) {
	f := newPSDFilter(t)
	if got := len(f.View.InternalNodes()); got != 4 {
		t.Fatalf("internal nodes = %d", got)
	}
	// protein (dirty | s-d ^ u-i), organism-in-protein (u-d), citation
	// (clean | s-d ^ s-i), organism-at-root: under SET NULL the
	// organism's mapping closure has no cascaded subtree, so it is
	// CLEAN (contrast BookView's vC4 which is dirty under CASCADE).
	in := f.View.InternalNodes()
	protein, orgIn, citation, orgRoot := in[0], in[1], in[2], in[3]
	if !protein.UCtx.SafeDelete || protein.UCtx.SafeInsert {
		t.Errorf("protein = %s", protein.UCtx)
	}
	if orgIn.UCtx.SafeDelete {
		t.Errorf("organism-in-protein should be unsafe-delete, got %s", orgIn.UCtx)
	}
	if !citation.UCtx.SafeDelete || !citation.UCtx.SafeInsert || !citation.Clean {
		t.Errorf("citation = (clean=%v | %s)", citation.Clean, citation.UCtx)
	}
	if !orgRoot.Clean {
		t.Error("organism-at-root should be clean under SET NULL")
	}
	if !orgRoot.UCtx.SafeDelete {
		// Deleting a root organism SET-NULLs protein.oid, which removes
		// the protein element from the view (its join fails): organism
		// is still unsafe-delete, matching the paper's u2 note that SET
		// NULL does not rescue deletes that feed view joins.
		t.Log("organism-at-root marked safe-delete")
	}
}

// TestPSDUpdates: citation edits are translatable; deleting the nested
// organism is not.
func TestPSDUpdates(t *testing.T) {
	f := newPSDFilter(t)
	res, err := f.Apply(InsertCitation("P00001", "C9", "New structural study"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("insert citation rejected: %s", res.Reason)
	}
	ids, _ := f.Exec.DB.LookupEqual("citation", []string{"pid", "cid"},
		[]relational.Value{relational.String_("P00001"), relational.String_("C9")})
	if len(ids) != 1 {
		t.Error("citation not inserted")
	}

	res, err = f.Apply(DeleteCitations("P00001"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.RowsAffected == 0 {
		t.Fatalf("delete citations: accepted=%v rows=%d (%s)", res.Accepted, res.RowsAffected, res.Reason)
	}

	res, err = f.Check(DeleteOrganismInProtein("P00002"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Error("deleting the nested organism should be untranslatable")
	}

	res, err = f.Apply(DeleteProtein("P00003"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("delete protein rejected: %s", res.Reason)
	}
	pids, _ := f.Exec.DB.LookupEqual("protein", []string{"pid"}, []relational.Value{relational.String_("P00003")})
	if len(pids) != 0 {
		t.Error("protein not deleted")
	}
	// Organisms survive (minimized translation).
	if got := f.Exec.DB.RowCount("organism"); got != 5 {
		t.Errorf("organisms = %d", got)
	}
}

// TestShortProteinNotInView: the view filters length > 100; a protein
// below the bound must be rejected by the context probe.
func TestShortProteinNotInView(t *testing.T) {
	f := newPSDFilter(t)
	if _, err := f.Exec.DB.Insert("protein", map[string]relational.Value{
		"pid": relational.String_("P99999"), "name": relational.String_("tiny peptide"),
		"oid": relational.String_("O1"), "length": relational.Int_(12),
	}); err != nil {
		t.Fatal(err)
	}
	res, err := f.Apply(InsertCitation("P99999", "C1", "should fail"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Error("citation insert into out-of-view protein must be rejected")
	}
}
