package relational

import (
	"errors"
	"fmt"
)

// Sentinel constraint-violation errors. The data-driven checking step of
// U-Filter (hybrid strategy) distinguishes the engine's error classes the
// same way a driver distinguishes Oracle error codes.
var (
	// ErrNotNull signals a NOT NULL constraint violation.
	ErrNotNull = errors.New("NOT NULL constraint violated")
	// ErrCheck signals a CHECK constraint violation.
	ErrCheck = errors.New("CHECK constraint violated")
	// ErrPrimaryKey signals a duplicate primary key.
	ErrPrimaryKey = errors.New("PRIMARY KEY constraint violated")
	// ErrUnique signals a duplicate value in a UNIQUE column.
	ErrUnique = errors.New("UNIQUE constraint violated")
	// ErrForeignKey signals a dangling foreign key reference on insert
	// or update.
	ErrForeignKey = errors.New("FOREIGN KEY constraint violated")
	// ErrRestrict signals a delete rejected by a RESTRICT policy.
	ErrRestrict = errors.New("delete restricted by referencing rows")
	// ErrNoSuchTable signals a reference to an undeclared table.
	ErrNoSuchTable = errors.New("no such table")
	// ErrNoSuchColumn signals a reference to an undeclared column.
	ErrNoSuchColumn = errors.New("no such column")
	// ErrNoSuchRow signals an operation on a missing row id.
	ErrNoSuchRow = errors.New("no such row")
	// ErrTypeMismatch signals a value that cannot be coerced to the
	// column type.
	ErrTypeMismatch = errors.New("type mismatch")
	// ErrWriteConflict signals a write-write conflict under
	// first-updater-wins: the row a transaction tried to write was
	// modified by a transaction that committed after this one's read
	// sequence, or is claimed by another in-flight transaction. The
	// losing transaction should roll back and retry; the plan layer
	// does so with capped backoff.
	ErrWriteConflict = errors.New("write-write conflict")
	// ErrWALFailed signals that a commit group's write-ahead log append
	// or fsync failed: none of the group's transactions committed (they
	// are rolled back wholesale, so no acknowledged-but-not-durable state
	// can exist), and EVERY member of the group — leader and followers
	// alike — receives this error. It is not a conflict: retrying without
	// fixing the underlying I/O problem will fail again, so the plan
	// layer surfaces it instead of retrying.
	ErrWALFailed = errors.New("write-ahead log write failed")
)

// ConstraintError wraps one of the sentinel errors with table/column
// context, preserving errors.Is matching on the sentinel.
type ConstraintError struct {
	Kind   error
	Table  string
	Column string
	Detail string
}

// Error implements the error interface.
func (e *ConstraintError) Error() string {
	msg := fmt.Sprintf("%s: table %s", e.Kind.Error(), e.Table)
	if e.Column != "" {
		msg += ", column " + e.Column
	}
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return msg
}

// Unwrap exposes the sentinel for errors.Is.
func (e *ConstraintError) Unwrap() error { return e.Kind }

func constraintErr(kind error, table, column, detail string) error {
	return &ConstraintError{Kind: kind, Table: table, Column: column, Detail: detail}
}

// IsConstraintViolation reports whether err is any constraint violation
// (the class of errors the hybrid strategy interprets as a data conflict).
func IsConstraintViolation(err error) bool {
	return errors.Is(err, ErrNotNull) ||
		errors.Is(err, ErrCheck) ||
		errors.Is(err, ErrPrimaryKey) ||
		errors.Is(err, ErrUnique) ||
		errors.Is(err, ErrForeignKey) ||
		errors.Is(err, ErrRestrict)
}
