package relational

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// walSchema is a small parent/child pair exercising PK, UNIQUE, FK and
// CASCADE through the durable path.
func walSchema(t testing.TB) *Schema {
	t.Helper()
	parent, err := NewTableDef("parent", []Column{
		{Name: "id", Type: TypeInt},
		{Name: "name", Type: TypeString, NotNull: true, Unique: true},
	}, []string{"id"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	child, err := NewTableDef("child", []Column{
		{Name: "id", Type: TypeInt},
		{Name: "parent_id", Type: TypeInt},
		{Name: "val", Type: TypeString},
	}, []string{"id"}, []ForeignKey{{
		Name: "child_parent_fk", Columns: []string{"parent_id"},
		RefTable: "parent", RefColumns: []string{"id"}, OnDelete: DeleteCascade,
	}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSchema(parent, child)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func openWALDB(t testing.TB, dir string, opts WALOptions) (*Database, *RecoveryInfo) {
	t.Helper()
	db := NewDatabase(walSchema(t))
	info, err := db.OpenWAL(dir, opts)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	t.Cleanup(func() { _ = db.CloseWAL() })
	return db, info
}

// dumpDB flattens the committed state into table -> id -> rendered row,
// the order-insensitive form recovery comparisons use (replay may
// reconstruct the order slices differently than the original
// interleaving did).
func dumpDB(t testing.TB, db *Database) map[string]map[RowID]string {
	t.Helper()
	out := make(map[string]map[RowID]string)
	for _, name := range db.SortedTableNames() {
		rows := make(map[RowID]string)
		if err := db.Scan(name, func(r *Row) bool {
			parts := make([]string, len(r.Values))
			for i, v := range r.Values {
				parts[i] = v.EncodeKey()
			}
			rows[r.ID] = strings.Join(parts, "|")
			return true
		}); err != nil {
			t.Fatal(err)
		}
		out[name] = rows
	}
	return out
}

func mustInsertParent(t testing.TB, db *Database, id int64, name string) RowID {
	t.Helper()
	rid, err := db.Insert("parent", map[string]Value{"id": Int_(id), "name": String_(name)})
	if err != nil {
		t.Fatal(err)
	}
	return rid
}

func mustInsertChild(t testing.TB, db *Database, id, pid int64, val string) RowID {
	t.Helper()
	rid, err := db.Insert("child", map[string]Value{"id": Int_(id), "parent_id": Int_(pid), "val": String_(val)})
	if err != nil {
		t.Fatal(err)
	}
	return rid
}

func TestWALPersistAndRecover(t *testing.T) {
	dir := t.TempDir()
	db, info := openWALDB(t, dir, WALOptions{})
	if info.ReplayedTxns != 0 || info.CheckpointRows != 0 {
		t.Fatalf("fresh dir recovered something: %+v", info)
	}

	p1 := mustInsertParent(t, db, 1, "alpha")
	mustInsertParent(t, db, 2, "beta")
	c1 := mustInsertChild(t, db, 10, 1, "x")
	mustInsertChild(t, db, 11, 2, "y")
	if err := db.UpdateRow("child", c1, map[string]Value{"val": String_("x2")}); err != nil {
		t.Fatal(err)
	}
	// CASCADE delete of parent 1 removes child 10 in the same txn.
	if _, err := db.Delete("parent", p1); err != nil {
		t.Fatal(err)
	}
	want := dumpDB(t, db)
	wantSeq := db.commitSeq.Load()
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	db2, info2 := openWALDB(t, dir, WALOptions{})
	if info2.ReplayedTxns == 0 {
		t.Fatalf("expected replayed txns, got %+v", info2)
	}
	if info2.TornTail {
		t.Fatalf("clean shutdown reported a torn tail: %+v", info2)
	}
	if got := dumpDB(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state mismatch:\n got %v\nwant %v", got, want)
	}
	if got := db2.commitSeq.Load(); got != wantSeq {
		t.Fatalf("commitSeq after recovery = %d, want %d", got, wantSeq)
	}
	// The engine keeps working after recovery: constraints, new commits.
	if _, err := db2.Insert("parent", map[string]Value{"id": Int_(2), "name": String_("dup-id")}); !errors.Is(err, ErrPrimaryKey) {
		t.Fatalf("duplicate PK after recovery: %v", err)
	}
	if _, err := db2.Insert("parent", map[string]Value{"id": Int_(3), "name": String_("beta")}); !errors.Is(err, ErrUnique) {
		t.Fatalf("duplicate UNIQUE after recovery: %v", err)
	}
	mustInsertParent(t, db2, 3, "gamma")
	if st := db2.Stats(); st.RecoveryReplayedTxns != info2.ReplayedTxns {
		t.Fatalf("stats recovery_replayed_txns = %d, want %d", st.RecoveryReplayedTxns, info2.ReplayedTxns)
	}
}

func TestWALCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation so the checkpoint has work to do.
	db, _ := openWALDB(t, dir, WALOptions{SegmentBytes: 256})
	for i := int64(1); i <= 20; i++ {
		mustInsertParent(t, db, i, "p"+String_(Value{Kind: KindInt, Int: i}.String()).Str)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Checkpoints != 2 { // one at OpenWAL (fresh dir), one explicit
		t.Fatalf("checkpoints_total = %d, want 2", st.Checkpoints)
	}
	if st.WALSegments != 1 {
		t.Fatalf("wal_segments after checkpoint = %d, want 1 (active only)", st.WALSegments)
	}
	// Post-checkpoint commits land in the new segment chain.
	for i := int64(21); i <= 25; i++ {
		mustInsertParent(t, db, i, Value{Kind: KindInt, Int: i}.String())
	}
	want := dumpDB(t, db)
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	db2, info := openWALDB(t, dir, WALOptions{})
	if info.CheckpointRows != 20 {
		t.Fatalf("checkpoint rows = %d, want 20", info.CheckpointRows)
	}
	if info.ReplayedTxns != 5 {
		t.Fatalf("replayed txns = %d, want 5", info.ReplayedTxns)
	}
	if got := dumpDB(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state mismatch after checkpoint:\n got %v\nwant %v", got, want)
	}
}

func TestWALCheckpointEverySegments(t *testing.T) {
	dir := t.TempDir()
	db, _ := openWALDB(t, dir, WALOptions{SegmentBytes: 128, CheckpointEverySegments: 2})
	for i := int64(1); i <= 40; i++ {
		mustInsertParent(t, db, i, Value{Kind: KindInt, Int: i}.String())
	}
	st := db.Stats()
	if st.Checkpoints < 2 {
		t.Fatalf("expected automatic checkpoints, got %d", st.Checkpoints)
	}
	if st.WALSegments > 3 {
		t.Fatalf("segment chain not being truncated: %d live segments", st.WALSegments)
	}
}

// lastSegment returns the path of the highest-indexed segment file.
func lastSegment(t testing.TB, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseSegmentIndex(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatal("no segment files")
	}
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1])
}

// segmentWithData returns the highest-indexed segment that has bytes in
// it (the active segment is empty right after a rotation or open).
func segmentWithData(t testing.TB, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseSegmentIndex(e.Name()); ok {
			if fi, err := e.Info(); err == nil && fi.Size() > 0 {
				names = append(names, e.Name())
			}
		}
	}
	if len(names) == 0 {
		t.Fatal("no non-empty segment files")
	}
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1])
}

func TestWALTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	db, _ := openWALDB(t, dir, WALOptions{})
	for i := int64(1); i <= 5; i++ {
		mustInsertParent(t, db, i, Value{Kind: KindInt, Int: i}.String())
	}
	wantWithout5 := dumpDB(t, db)
	delete(wantWithout5["parent"], RowID(5))
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: keep all but its final 3 bytes.
	seg := segmentWithData(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	db2, info := openWALDB(t, dir, WALOptions{})
	if !info.TornTail || info.TruncatedBytes == 0 {
		t.Fatalf("torn tail not detected: %+v", info)
	}
	if info.ReplayedTxns != 4 {
		t.Fatalf("replayed %d txns, want 4 (torn 5th discarded)", info.ReplayedTxns)
	}
	got := dumpDB(t, db2)
	if !reflect.DeepEqual(got["parent"], wantWithout5["parent"]) {
		t.Fatalf("state after torn tail:\n got %v\nwant %v", got["parent"], wantWithout5["parent"])
	}
	// The log stays appendable: new commits and another clean recovery.
	mustInsertParent(t, db2, 6, "six")
	want := dumpDB(t, db2)
	if err := db2.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	db3, info3 := openWALDB(t, dir, WALOptions{})
	if info3.TornTail {
		t.Fatalf("second recovery still sees a torn tail: %+v", info3)
	}
	if got := dumpDB(t, db3); !reflect.DeepEqual(got, want) {
		t.Fatalf("state after reopen:\n got %v\nwant %v", got, want)
	}
}

func TestWALCorruptCRCStopsReplay(t *testing.T) {
	dir := t.TempDir()
	db, _ := openWALDB(t, dir, WALOptions{})
	for i := int64(1); i <= 5; i++ {
		mustInsertParent(t, db, i, Value{Kind: KindInt, Int: i}.String())
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the LAST record's payload so its CRC fails.
	seg := segmentWithData(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, info := openWALDB(t, dir, WALOptions{})
	if !info.TornTail {
		t.Fatalf("CRC corruption not detected: %+v", info)
	}
	if info.ReplayedTxns != 4 {
		t.Fatalf("replayed %d txns, want 4 (corrupt 5th dropped)", info.ReplayedTxns)
	}
	if n := db2.RowCount("parent"); n != 4 {
		t.Fatalf("parent rows = %d, want 4", n)
	}
}

func TestWALCorruptionMidChainStopsThere(t *testing.T) {
	dir := t.TempDir()
	db, _ := openWALDB(t, dir, WALOptions{})
	for i := int64(1); i <= 5; i++ {
		mustInsertParent(t, db, i, Value{Kind: KindInt, Int: i}.String())
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the THIRD record: recovery must stop before it, keeping
	// only the first two txns, and must not error or replay garbage.
	seg := segmentWithData(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Walk frames to find the third record's payload offset.
	off := int64(0)
	for i := 0; i < 2; i++ {
		n := int64(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += walFrameHeaderSize + n
	}
	data[off+walFrameHeaderSize] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, info := openWALDB(t, dir, WALOptions{})
	if info.ReplayedTxns != 2 {
		t.Fatalf("replayed %d txns, want 2 (stop at first bad record)", info.ReplayedTxns)
	}
	if n := db2.RowCount("parent"); n != 2 {
		t.Fatalf("parent rows = %d, want 2", n)
	}
}

func TestWALFsyncErrorFailsWholeGroup(t *testing.T) {
	dir := t.TempDir()
	db, _ := openWALDB(t, dir, WALOptions{})
	mustInsertParent(t, db, 1, "base")

	if err := EnableFailpoint(FpWALFsyncBefore, "error"); err != nil {
		t.Fatal(err)
	}
	defer DisableAllFailpoints()

	// Two transactions committed as one group: the leader's fsync
	// failure must fail BOTH (the regression this guards: the old
	// flushRedo path had no error to surface, so followers could be
	// acknowledged without durability).
	t1 := db.Begin()
	if _, err := t1.Insert("parent", map[string]Value{"id": Int_(2), "name": String_("g1")}); err != nil {
		t.Fatal(err)
	}
	t2 := db.Begin()
	if _, err := t2.Insert("parent", map[string]Value{"id": Int_(3), "name": String_("g2")}); err != nil {
		t.Fatal(err)
	}
	err := db.CommitGroup(t1, t2)
	if !errors.Is(err, ErrWALFailed) {
		t.Fatalf("CommitGroup error = %v, want ErrWALFailed", err)
	}
	// Neither transaction's effects are visible, both are finished.
	if n := db.RowCount("parent"); n != 1 {
		t.Fatalf("parent rows after failed group = %d, want 1", n)
	}
	if err := t1.Commit(); err == nil || errors.Is(err, ErrWALFailed) {
		t.Fatalf("re-commit of failed txn: %v, want finished error", err)
	}
	// After the fault clears, the database is fully usable and the ids
	// never became durable.
	DisableAllFailpoints()
	mustInsertParent(t, db, 4, "after")
	want := dumpDB(t, db)
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	db2, _ := openWALDB(t, dir, WALOptions{})
	if got := dumpDB(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state:\n got %v\nwant %v", got, want)
	}
}

func TestWALErrorFailpointsRollBackCleanly(t *testing.T) {
	// Every commit-path failpoint in error mode: commit fails with
	// ErrWALFailed, state is unchanged, the log stays valid for both
	// further commits and recovery.
	points := []string{FpWALAppendBefore, FpWALAppendPartial, FpWALFsyncBefore, FpWALFsyncAfter}
	for _, fp := range points {
		t.Run(fp, func(t *testing.T) {
			dir := t.TempDir()
			db, _ := openWALDB(t, dir, WALOptions{})
			mustInsertParent(t, db, 1, "base")
			if err := EnableFailpoint(fp, "error"); err != nil {
				t.Fatal(err)
			}
			defer DisableAllFailpoints()
			_, err := db.Insert("parent", map[string]Value{"id": Int_(2), "name": String_("doomed")})
			if !errors.Is(err, ErrWALFailed) {
				t.Fatalf("insert error = %v, want ErrWALFailed", err)
			}
			DisableAllFailpoints()
			mustInsertParent(t, db, 3, "survivor")
			want := dumpDB(t, db)
			if err := db.CloseWAL(); err != nil {
				t.Fatal(err)
			}
			db2, info := openWALDB(t, dir, WALOptions{})
			if got := dumpDB(t, db2); !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered state:\n got %v\nwant %v", got, want)
			}
			if info.TornTail && fp != FpWALAppendPartial {
				t.Fatalf("unexpected torn tail for %s: %+v", fp, info)
			}
		})
	}
}

func TestWALCloseRejectsFurtherCommits(t *testing.T) {
	dir := t.TempDir()
	db, _ := openWALDB(t, dir, WALOptions{})
	mustInsertParent(t, db, 1, "one")
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	_, err := db.Insert("parent", map[string]Value{"id": Int_(2), "name": String_("late")})
	if !errors.Is(err, ErrWALFailed) {
		t.Fatalf("insert after close = %v, want ErrWALFailed", err)
	}
	// Reads still serve.
	if n := db.RowCount("parent"); n != 1 {
		t.Fatalf("rows after close = %d, want 1", n)
	}
}

func TestWALStatsSurface(t *testing.T) {
	dir := t.TempDir()
	db, _ := openWALDB(t, dir, WALOptions{})
	mustInsertParent(t, db, 1, "one")
	st := db.Stats()
	if st.WALSegments == 0 || st.WALBytes == 0 || st.Fsyncs == 0 || st.Checkpoints == 0 {
		t.Fatalf("WAL stats not populated: %+v", st)
	}
	// In-memory databases keep all-zero WAL stats.
	mem := NewDatabase(walSchema(t))
	if st := mem.Stats(); st.WALSegments != 0 || st.Fsyncs != 0 {
		t.Fatalf("in-memory database reports WAL stats: %+v", st)
	}
}

func TestWALGroupPayloadRoundTrip(t *testing.T) {
	txns := []walTxn{
		{seq: 7, ops: []walOp{
			{kind: walOpInsert, table: "parent", id: 3, values: []Value{Int_(3), String_("x")}},
			{kind: walOpUpdate, table: "parent", id: 3, values: []Value{Int_(3), Null()}},
			{kind: walOpDelete, table: "child", id: 9},
		}},
		{seq: 8, ops: []walOp{
			{kind: walOpInsert, table: "t", id: 1, values: []Value{Float_(2.5), String_("")}},
		}},
		{seq: 9, ops: nil},
	}
	got, err := decodeGroupPayload(encodeGroupPayload(0, txns))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(txns) {
		t.Fatalf("round-trip txn count %d, want %d", len(got), len(txns))
	}
	for i := range txns {
		if got[i].seq != txns[i].seq || len(got[i].ops) != len(txns[i].ops) {
			t.Fatalf("txn %d mismatch: %+v vs %+v", i, got[i], txns[i])
		}
		for j := range txns[i].ops {
			w, g := txns[i].ops[j], got[i].ops[j]
			if g.kind != w.kind || g.table != w.table || g.id != w.id || len(g.values) != len(w.values) {
				t.Fatalf("op %d/%d mismatch: %+v vs %+v", i, j, g, w)
			}
			for k := range w.values {
				if g.values[k] != w.values[k] {
					t.Fatalf("value %d/%d/%d mismatch: %v vs %v", i, j, k, g.values[k], w.values[k])
				}
			}
		}
	}
}

// FuzzWALRecordDecode holds the record decoder to its contract: never
// panic on arbitrary bytes, and when a payload does decode, re-encoding
// the decoded form must reproduce an equivalent record (the corpus
// seeds it with real encodings).
func FuzzWALRecordDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{walTagGroup})
	f.Add([]byte{walTagXidGroup})
	f.Add(encodeGroupPayload(0, nil))
	f.Add(encodeGroupPayload(0, []walTxn{{seq: 1, ops: []walOp{
		{kind: walOpInsert, table: "parent", id: 1, values: []Value{Int_(1), String_("a")}},
		{kind: walOpDelete, table: "parent", id: 1},
	}}}))
	f.Add(encodeGroupPayload(0, []walTxn{{seq: 1 << 40, ops: []walOp{
		{kind: walOpUpdate, table: "x", id: 1 << 33, values: []Value{Float_(-1.5), Null()}},
	}}}))
	f.Add(encodeGroupPayload(42, []walTxn{{seq: 5, xid: 42, ops: []walOp{
		{kind: walOpInsert, table: "parent", id: 2, values: []Value{Int_(2), Null()}},
	}}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		txns, err := decodeGroupPayload(data)
		if err != nil {
			return
		}
		xid := uint64(0)
		if len(txns) > 0 {
			xid = txns[0].xid
		}
		re := encodeGroupPayload(xid, txns)
		again, err := decodeGroupPayload(re)
		if err != nil {
			t.Fatalf("re-encoded payload failed to decode: %v", err)
		}
		if !reflect.DeepEqual(txns, again) {
			t.Fatalf("round-trip drift:\nfirst  %+v\nsecond %+v", txns, again)
		}
	})
}
