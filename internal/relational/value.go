// Package relational implements the relational database engine that
// serves as the base data store underneath the XML views checked by
// U-Filter. It provides typed values, schemas with the full constraint
// vocabulary the paper relies on (primary keys, unique columns, NOT NULL,
// CHECK predicates and foreign keys with CASCADE / SET NULL / RESTRICT
// delete policies), hash indexes, MVCC snapshot isolation, and
// transactions with undo-log rollback.
//
// The engine runs in-memory by default. OpenWAL attaches a durable
// write-ahead log, and with it the engine makes this durability
// contract: a transaction whose Commit (or CommitGroup) returns nil has
// been appended to the log and fsynced BEFORE it became visible to any
// snapshot reader, so after a crash at any instant — process kill
// included — reopening the directory restores exactly the committed
// transactions: every acknowledged one, no torn one, all constraints
// intact. When the log cannot be made durable (append or fsync
// failure), the whole commit group rolls back unpublished and every
// member returns an error wrapping ErrWALFailed. Checkpoints bound log
// size and recovery time; recovery truncates torn tails and stops at
// the first corrupt frame. The failpoint seam (failpoint.go) and the
// internal/walcrash harness prove the contract by SIGKILLing a child
// process at every fault site and diffing recovered state against a
// shadow model.
//
// The engine substitutes for the Oracle 10g instance used in the paper's
// evaluation; see DESIGN.md §2 for the substitution argument.
package relational

import (
	"fmt"
	"strconv"
	"strings"
)

// Type enumerates the column types supported by the engine. The running
// example and TPC-H subset only require strings, integers, floats and
// dates; dates are stored as integers (days or years) for simplicity.
type Type int

const (
	// TypeString is a variable-length character column (VARCHAR2).
	TypeString Type = iota
	// TypeInt is a 64-bit integer column.
	TypeInt
	// TypeFloat is a 64-bit floating point column (DOUBLE).
	TypeFloat
	// TypeDate is a date column, stored as an integer year or epoch day.
	TypeDate
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeString:
		return "VARCHAR"
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "DOUBLE"
	case TypeDate:
		return "DATE"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ValueKind discriminates the runtime kind carried by a Value.
type ValueKind int

const (
	// KindNull marks the SQL NULL value.
	KindNull ValueKind = iota
	// KindString marks a string value.
	KindString
	// KindInt marks an integer value.
	KindInt
	// KindFloat marks a floating point value.
	KindFloat
)

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	Kind  ValueKind
	Str   string
	Int   int64
	Float float64
}

// Null returns the SQL NULL value.
func Null() Value { return Value{Kind: KindNull} }

// String_ constructs a string Value. The trailing underscore avoids
// clashing with the fmt.Stringer method.
func String_(s string) Value { return Value{Kind: KindString, Str: s} }

// Int_ constructs an integer Value.
func Int_(i int64) Value { return Value{Kind: KindInt, Int: i} }

// Float_ constructs a floating point Value.
func Float_(f float64) Value { return Value{Kind: KindFloat, Float: f} }

// IsNull reports whether v is the SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// String renders the value for display and for index keys. NULL renders
// as the literal "NULL"; strings render verbatim.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindString:
		return v.Str
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	default:
		return fmt.Sprintf("Value(kind=%d)", int(v.Kind))
	}
}

// EncodeKey renders the value into a form suitable for composite hash
// index keys. Unlike String, it is injective across kinds: numeric 1 and
// string "1" encode differently. Integral floats encode like ints so that
// cross-kind numeric equality (1 == 1.0) holds for index probes.
func (v Value) EncodeKey() string {
	switch v.Kind {
	case KindNull:
		return "\x00N"
	case KindString:
		return "\x00S" + v.Str
	case KindInt:
		return "\x00#" + strconv.FormatInt(v.Int, 10)
	case KindFloat:
		if v.Float == float64(int64(v.Float)) {
			return "\x00#" + strconv.FormatInt(int64(v.Float), 10)
		}
		return "\x00#" + strconv.FormatFloat(v.Float, 'g', -1, 64)
	default:
		return "\x00?"
	}
}

// EncodeCompositeKey renders a tuple of values into a single index key.
func EncodeCompositeKey(vals []Value) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteString(v.EncodeKey())
		b.WriteByte(0x01)
	}
	return b.String()
}

// numeric returns the value as float64 when it is numeric.
func (v Value) numeric() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.Int), true
	case KindFloat:
		return v.Float, true
	default:
		return 0, false
	}
}

// Equal reports SQL equality between two values. NULL is not equal to
// anything, including NULL (three-valued logic collapses to false here).
func (v Value) Equal(o Value) bool {
	if v.IsNull() || o.IsNull() {
		return false
	}
	if a, ok := v.numeric(); ok {
		if b, ok2 := o.numeric(); ok2 {
			return a == b
		}
		return false
	}
	if v.Kind == KindString && o.Kind == KindString {
		return v.Str == o.Str
	}
	return false
}

// Compare orders two non-NULL values. It returns -1, 0 or +1, and an
// error when the values are not comparable (NULL involved, or string vs
// numeric).
func (v Value) Compare(o Value) (int, error) {
	if v.IsNull() || o.IsNull() {
		return 0, fmt.Errorf("relational: cannot compare NULL values")
	}
	if a, aok := v.numeric(); aok {
		b, bok := o.numeric()
		if !bok {
			return 0, fmt.Errorf("relational: cannot compare %s with %s", v, o)
		}
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.Kind == KindString && o.Kind == KindString {
		return strings.Compare(v.Str, o.Str), nil
	}
	return 0, fmt.Errorf("relational: cannot compare %s with %s", v, o)
}

// CompareOp is a comparison operator usable in predicates and CHECK
// constraints.
type CompareOp int

const (
	// OpEQ is =.
	OpEQ CompareOp = iota
	// OpNE is <> (written != in XQuery).
	OpNE
	// OpLT is <.
	OpLT
	// OpLE is <=.
	OpLE
	// OpGT is >.
	OpGT
	// OpGE is >=.
	OpGE
)

// String renders the operator in SQL syntax.
func (op CompareOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	default:
		return fmt.Sprintf("CompareOp(%d)", int(op))
	}
}

// Negate returns the complementary operator (e.g. < becomes >=).
func (op CompareOp) Negate() CompareOp {
	switch op {
	case OpEQ:
		return OpNE
	case OpNE:
		return OpEQ
	case OpLT:
		return OpGE
	case OpLE:
		return OpGT
	case OpGT:
		return OpLE
	case OpGE:
		return OpLT
	default:
		return op
	}
}

// Flip returns the operator with its operands swapped (a < b == b > a).
func (op CompareOp) Flip() CompareOp {
	switch op {
	case OpLT:
		return OpGT
	case OpLE:
		return OpGE
	case OpGT:
		return OpLT
	case OpGE:
		return OpLE
	default:
		return op
	}
}

// Apply evaluates "a op b" under SQL semantics. Comparisons involving
// NULL evaluate to false.
func (op CompareOp) Apply(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	switch op {
	case OpEQ:
		return a.Equal(b)
	case OpNE:
		return !a.Equal(b)
	default:
		c, err := a.Compare(b)
		if err != nil {
			return false
		}
		switch op {
		case OpLT:
			return c < 0
		case OpLE:
			return c <= 0
		case OpGT:
			return c > 0
		case OpGE:
			return c >= 0
		}
	}
	return false
}

// CoerceTo attempts to convert v to the given column type, mirroring the
// implicit casts a relational engine performs when binding literals from
// an XML update (where everything arrives as text).
func (v Value) CoerceTo(t Type) (Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch t {
	case TypeString:
		if v.Kind == KindString {
			return v, nil
		}
		return String_(v.String()), nil
	case TypeInt, TypeDate:
		switch v.Kind {
		case KindInt:
			return v, nil
		case KindFloat:
			if v.Float == float64(int64(v.Float)) {
				return Int_(int64(v.Float)), nil
			}
			return Value{}, fmt.Errorf("relational: %s is not an integer", v)
		case KindString:
			s := strings.TrimSpace(v.Str)
			i, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("relational: %q is not a valid %s", v.Str, t)
			}
			return Int_(i), nil
		}
	case TypeFloat:
		switch v.Kind {
		case KindFloat:
			return v, nil
		case KindInt:
			return Float_(float64(v.Int)), nil
		case KindString:
			s := strings.TrimSpace(v.Str)
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return Value{}, fmt.Errorf("relational: %q is not a valid DOUBLE", v.Str)
			}
			return Float_(f), nil
		}
	}
	return Value{}, fmt.Errorf("relational: cannot coerce %s to %s", v, t)
}

// ParseLiteral converts raw text (e.g. XML text content) into a Value,
// preferring the numeric interpretation when the text parses as a number.
func ParseLiteral(s string) Value {
	trimmed := strings.TrimSpace(s)
	if trimmed == "" {
		return String_(s)
	}
	if i, err := strconv.ParseInt(trimmed, 10, 64); err == nil {
		return Int_(i)
	}
	if f, err := strconv.ParseFloat(trimmed, 64); err == nil {
		return Float_(f)
	}
	return String_(s)
}
