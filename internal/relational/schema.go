package relational

import (
	"fmt"
	"strings"
)

// CheckPredicate is a single-column CHECK constraint of the form
// "column op literal" (e.g. price > 0.00). A column may carry several,
// interpreted conjunctively.
type CheckPredicate struct {
	Op      CompareOp
	Operand Value
}

// String renders the predicate with a placeholder for the column value.
func (c CheckPredicate) String() string {
	return fmt.Sprintf("value %s %s", c.Op, c.Operand)
}

// Holds reports whether the given value satisfies the predicate. NULL
// values vacuously satisfy CHECK constraints, per SQL semantics.
func (c CheckPredicate) Holds(v Value) bool {
	if v.IsNull() {
		return true
	}
	return c.Op.Apply(v, c.Operand)
}

// Column describes one column of a relation.
type Column struct {
	Name    string
	Type    Type
	NotNull bool
	Unique  bool
	Checks  []CheckPredicate
}

// DeletePolicy is the referential action taken on a foreign key when the
// referenced row is deleted.
type DeletePolicy int

const (
	// DeleteRestrict rejects the delete while referencing rows exist.
	DeleteRestrict DeletePolicy = iota
	// DeleteCascade deletes referencing rows transitively.
	DeleteCascade
	// DeleteSetNull sets the referencing columns to NULL.
	DeleteSetNull
)

// String renders the policy in SQL syntax.
func (p DeletePolicy) String() string {
	switch p {
	case DeleteRestrict:
		return "RESTRICT"
	case DeleteCascade:
		return "CASCADE"
	case DeleteSetNull:
		return "SET NULL"
	default:
		return fmt.Sprintf("DeletePolicy(%d)", int(p))
	}
}

// ForeignKey is a referential constraint from one table to another.
type ForeignKey struct {
	Name       string
	Columns    []string // referencing columns, in this table
	RefTable   string
	RefColumns []string // referenced columns (must be a key of RefTable)
	OnDelete   DeletePolicy
}

// TableDef is the schema of a single relation.
type TableDef struct {
	Name        string
	Columns     []Column
	PrimaryKey  []string
	ForeignKeys []ForeignKey

	colIndex map[string]int
}

// NewTableDef constructs a TableDef and freezes its column lookup table.
func NewTableDef(name string, columns []Column, primaryKey []string, fks []ForeignKey) (*TableDef, error) {
	t := &TableDef{
		Name:        name,
		Columns:     columns,
		PrimaryKey:  primaryKey,
		ForeignKeys: fks,
		colIndex:    make(map[string]int, len(columns)),
	}
	for i, c := range columns {
		lower := strings.ToLower(c.Name)
		if _, dup := t.colIndex[lower]; dup {
			return nil, fmt.Errorf("relational: table %s: duplicate column %s", name, c.Name)
		}
		t.colIndex[lower] = i
	}
	for _, pk := range primaryKey {
		if _, ok := t.colIndex[strings.ToLower(pk)]; !ok {
			return nil, fmt.Errorf("relational: table %s: primary key column %s not found", name, pk)
		}
	}
	for _, fk := range fks {
		for _, c := range fk.Columns {
			if _, ok := t.colIndex[strings.ToLower(c)]; !ok {
				return nil, fmt.Errorf("relational: table %s: foreign key column %s not found", name, c)
			}
		}
		if len(fk.Columns) != len(fk.RefColumns) {
			return nil, fmt.Errorf("relational: table %s: foreign key %s arity mismatch", name, fk.Name)
		}
	}
	return t, nil
}

// ColumnIndex returns the positional index of a column (case-insensitive)
// and whether it exists.
func (t *TableDef) ColumnIndex(name string) (int, bool) {
	i, ok := t.colIndex[strings.ToLower(name)]
	return i, ok
}

// ColumnNamed returns the column definition for a name.
func (t *TableDef) ColumnNamed(name string) (*Column, bool) {
	i, ok := t.ColumnIndex(name)
	if !ok {
		return nil, false
	}
	return &t.Columns[i], true
}

// ColumnNames returns the ordered column names.
func (t *TableDef) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// IsKeyColumn reports whether the named column is, by itself, a unique
// identifier for rows of this table: either declared UNIQUE, or the sole
// primary key column.
func (t *TableDef) IsKeyColumn(name string) bool {
	if c, ok := t.ColumnNamed(name); ok && c.Unique {
		return true
	}
	return len(t.PrimaryKey) == 1 && strings.EqualFold(t.PrimaryKey[0], name)
}

// IsNotNullColumn reports whether the column is NOT NULL, either
// explicitly or by being part of the primary key.
func (t *TableDef) IsNotNullColumn(name string) bool {
	c, ok := t.ColumnNamed(name)
	if !ok {
		return false
	}
	if c.NotNull {
		return true
	}
	for _, pk := range t.PrimaryKey {
		if strings.EqualFold(pk, name) {
			return true
		}
	}
	return false
}

// Schema is the set of relations of a database plus their constraints.
type Schema struct {
	tables []*TableDef
	byName map[string]*TableDef
}

// NewSchema assembles a schema from table definitions and validates the
// cross-table constraints (foreign keys must reference keys of existing
// tables).
func NewSchema(tables ...*TableDef) (*Schema, error) {
	s := &Schema{byName: make(map[string]*TableDef, len(tables))}
	for _, t := range tables {
		lower := strings.ToLower(t.Name)
		if _, dup := s.byName[lower]; dup {
			return nil, fmt.Errorf("relational: duplicate table %s", t.Name)
		}
		s.byName[lower] = t
		s.tables = append(s.tables, t)
	}
	for _, t := range tables {
		for _, fk := range t.ForeignKeys {
			ref, ok := s.byName[strings.ToLower(fk.RefTable)]
			if !ok {
				return nil, fmt.Errorf("relational: table %s: foreign key references unknown table %s", t.Name, fk.RefTable)
			}
			if !ref.isKeyColumns(fk.RefColumns) {
				return nil, fmt.Errorf("relational: table %s: foreign key %s does not reference a key of %s", t.Name, fk.Name, fk.RefTable)
			}
		}
	}
	return s, nil
}

// isKeyColumns reports whether cols form a key of the table: the primary
// key, or a single UNIQUE column.
func (t *TableDef) isKeyColumns(cols []string) bool {
	if len(cols) == len(t.PrimaryKey) {
		match := true
		for i := range cols {
			if !strings.EqualFold(cols[i], t.PrimaryKey[i]) {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	if len(cols) == 1 {
		if c, ok := t.ColumnNamed(cols[0]); ok && c.Unique {
			return true
		}
	}
	return false
}

// Table returns the table definition by name (case-insensitive).
func (s *Schema) Table(name string) (*TableDef, bool) {
	t, ok := s.byName[strings.ToLower(name)]
	return t, ok
}

// Tables returns the table definitions in declaration order.
func (s *Schema) Tables() []*TableDef { return s.tables }

// TableNames returns the declared table names in order.
func (s *Schema) TableNames() []string {
	out := make([]string, len(s.tables))
	for i, t := range s.tables {
		out[i] = t.Name
	}
	return out
}

// ReferencingKeys returns every foreign key in the schema that references
// the given table.
func (s *Schema) ReferencingKeys(table string) []struct {
	Table *TableDef
	FK    ForeignKey
} {
	var out []struct {
		Table *TableDef
		FK    ForeignKey
	}
	for _, t := range s.tables {
		for _, fk := range t.ForeignKeys {
			if strings.EqualFold(fk.RefTable, table) {
				out = append(out, struct {
					Table *TableDef
					FK    ForeignKey
				}{t, fk})
			}
		}
	}
	return out
}

// Extend computes the paper's extend(R): the set of relation names that
// refer to R through one or more foreign key constraints, transitively,
// plus R itself. (Section 5.1.1, used by STAR Rule 2.)
func (s *Schema) Extend(table string) map[string]bool {
	out := map[string]bool{}
	var visit func(string)
	visit = func(name string) {
		lower := strings.ToLower(name)
		if out[lower] {
			return
		}
		out[lower] = true
		for _, ref := range s.ReferencingKeys(name) {
			visit(ref.Table.Name)
		}
	}
	visit(table)
	return out
}
