package relational

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Row is one stored tuple. Values are positional, aligned with the
// table's column order.
type Row struct {
	ID     RowID
	Values []Value
}

// clone returns a deep copy of the row (values are value types already).
func (r *Row) clone() *Row {
	vals := make([]Value, len(r.Values))
	copy(vals, r.Values)
	return &Row{ID: r.ID, Values: vals}
}

// tableData is the storage for a single relation: rows plus maintained
// hash indexes.
type tableData struct {
	def     *TableDef
	rows    map[RowID]*Row
	order   []RowID // insertion order, for deterministic scans
	indexes []*hashIndex
	pkIndex *hashIndex // nil when the table has no primary key
	dirty   bool       // order slice needs compaction
}

// Database is an in-memory relational database instance: a schema plus
// row storage, indexes and transaction support.
//
// Concurrency: the engine is single-writer — mutations (Insert, Delete,
// UpdateRow, Begin/Commit/Rollback) must be serialized by the caller,
// as ufilter.Filter does for its Apply pipeline. Readers may run
// concurrently with each other between mutations, and the
// StatementsExecuted counter is maintained atomically so statistics
// reads never race a writer.
type Database struct {
	schema    *Schema
	tables    map[string]*tableData
	nextRowID RowID

	// activeTxn, when non-nil, records undo entries for Rollback.
	activeTxn *Txn

	// StatementsExecuted counts DML statements since creation; the
	// benchmark harness reads it to report probe/update counts. Updated
	// atomically; read it with StatementsExecutedTotal when other
	// goroutines may be mutating the database.
	StatementsExecuted int64

	// redo is the write-ahead log buffer. Every DML statement appends a
	// statement record and every touched row appends a row image, as a
	// disk-backed engine would; reads never log. This asymmetry between
	// DML and probe queries is what the outside strategy exploits
	// (Fig. 17: a suppressed zero-row DELETE also skips its logging).
	// redoOps and redoBytes are the cumulative record/byte counters,
	// maintained atomically so statistics reads never race a writer
	// (the buffer itself is written only under the single-writer rule).
	redo        []byte
	redoOps     atomic.Int64
	redoBytes   atomic.Int64
	redoFlushes atomic.Int64
}

// StatementsExecutedTotal atomically reads the DML statement counter.
func (db *Database) StatementsExecutedTotal() int64 {
	return atomic.LoadInt64(&db.StatementsExecuted)
}

// RedoBytes atomically reads the cumulative number of bytes appended to
// the write-ahead log since creation (flush truncations do not reset
// it).
func (db *Database) RedoBytes() int64 { return db.redoBytes.Load() }

// RedoRecords atomically reads the number of log records appended.
func (db *Database) RedoRecords() int64 { return db.redoOps.Load() }

// RedoFlushes atomically reads the number of write-ahead-log flushes:
// one per transaction commit (the cost group commit amortizes over a
// batch) plus buffer-overflow flushes.
func (db *Database) RedoFlushes() int64 { return db.redoFlushes.Load() }

// flushRedo models a log flush: the buffer is forced out (truncated
// here) and the flush counter advances. Called on every transaction
// commit and when the buffer overflows.
func (db *Database) flushRedo() {
	db.redoFlushes.Add(1)
	db.redo = db.redo[:0]
}

// DBStats is a point-in-time snapshot of the database's statistics
// counters. Every field is read atomically, so a snapshot may be taken
// while another goroutine is mutating the database.
type DBStats struct {
	// StatementsExecuted counts DML statements since creation.
	StatementsExecuted int64 `json:"statements_executed"`
	// RedoRecords counts write-ahead log records appended.
	RedoRecords int64 `json:"redo_records"`
	// RedoBytes counts cumulative write-ahead log bytes appended.
	RedoBytes int64 `json:"redo_bytes"`
	// RedoFlushes counts write-ahead log flushes (one per commit).
	RedoFlushes int64 `json:"redo_flushes"`
}

// Stats snapshots the statistics counters atomically.
func (db *Database) Stats() DBStats {
	return DBStats{
		StatementsExecuted: db.StatementsExecutedTotal(),
		RedoRecords:        db.redoOps.Load(),
		RedoBytes:          db.redoBytes.Load(),
		RedoFlushes:        db.redoFlushes.Load(),
	}
}

// appendRedo logs one record. The buffer is truncated periodically so
// long benchmark runs do not grow memory without bound; the append cost
// (the part a real engine pays per statement) is preserved.
func (db *Database) appendRedo(kind byte, table string, id RowID, values []Value) {
	db.redoOps.Add(1)
	n := len(db.redo)
	db.redo = append(db.redo, kind)
	db.redo = append(db.redo, table...)
	var buf [8]byte
	v := uint64(id)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	db.redo = append(db.redo, buf[:]...)
	for _, val := range values {
		db.redo = append(db.redo, val.EncodeKey()...)
	}
	db.redoBytes.Add(int64(len(db.redo) - n))
	if len(db.redo) > 1<<20 {
		db.flushRedo() // buffer overflow forces a flush
	}
}

// LogStatement appends a statement-level WAL record, the bookkeeping a
// disk-backed engine pays for every DML statement it executes — even
// one that ends up matching zero rows. Probe queries never log; this is
// the cost the outside strategy saves by suppressing empty deletes.
func (db *Database) LogStatement(sql string) {
	db.redoOps.Add(1)
	db.redoBytes.Add(int64(1 + len(sql)))
	db.redo = append(db.redo, 'S')
	db.redo = append(db.redo, sql...)
	if len(db.redo) > 1<<20 {
		db.flushRedo()
	}
}

// NewDatabase creates an empty database for the schema, building hash
// indexes for every primary key, UNIQUE column and foreign key.
func NewDatabase(schema *Schema) *Database {
	db := &Database{
		schema:    schema,
		tables:    make(map[string]*tableData, len(schema.Tables())),
		nextRowID: 1,
	}
	for _, t := range schema.Tables() {
		td := &tableData{def: t, rows: make(map[RowID]*Row)}
		if len(t.PrimaryKey) > 0 {
			cols := mustColumnIndexes(t, t.PrimaryKey)
			td.pkIndex = newHashIndex(indexName(t.Name, t.PrimaryKey), cols, true)
			td.indexes = append(td.indexes, td.pkIndex)
		}
		for _, c := range t.Columns {
			if c.Unique {
				cols := mustColumnIndexes(t, []string{c.Name})
				td.indexes = append(td.indexes, newHashIndex(indexName(t.Name, []string{c.Name}), cols, true))
			}
		}
		for _, fk := range t.ForeignKeys {
			cols := mustColumnIndexes(t, fk.Columns)
			if !hasIndexOn(td, cols) {
				td.indexes = append(td.indexes, newHashIndex(indexName(t.Name, fk.Columns), cols, false))
			}
		}
		db.tables[strings.ToLower(t.Name)] = td
	}
	return db
}

func hasIndexOn(td *tableData, cols []int) bool {
	for _, ix := range td.indexes {
		if ix.matchesColumns(cols) {
			return true
		}
	}
	return false
}

func mustColumnIndexes(t *TableDef, names []string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		idx, ok := t.ColumnIndex(n)
		if !ok {
			panic(fmt.Sprintf("relational: table %s has no column %s", t.Name, n))
		}
		out[i] = idx
	}
	return out
}

// Schema returns the database schema.
func (db *Database) Schema() *Schema { return db.schema }

func (db *Database) tableData(name string) (*tableData, error) {
	td, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	return td, nil
}

// RowCount returns the number of rows currently stored in the table.
func (db *Database) RowCount(table string) int {
	td, err := db.tableData(table)
	if err != nil {
		return 0
	}
	return len(td.rows)
}

// TotalRows returns the number of rows across all tables, used by the
// benchmarks to report effective database size.
func (db *Database) TotalRows() int {
	n := 0
	for _, td := range db.tables {
		n += len(td.rows)
	}
	return n
}

// Get returns a copy of the row with the given id.
func (db *Database) Get(table string, id RowID) (*Row, error) {
	td, err := db.tableData(table)
	if err != nil {
		return nil, err
	}
	r, ok := td.rows[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s rowid %d", ErrNoSuchRow, table, id)
	}
	return r.clone(), nil
}

// ScanIDs returns the row ids of a table in insertion order.
func (db *Database) ScanIDs(table string) []RowID {
	td, err := db.tableData(table)
	if err != nil {
		return nil
	}
	td.compact()
	out := make([]RowID, len(td.order))
	copy(out, td.order)
	return out
}

func (td *tableData) compact() {
	if !td.dirty {
		return
	}
	live := td.order[:0]
	for _, id := range td.order {
		if _, ok := td.rows[id]; ok {
			live = append(live, id)
		}
	}
	td.order = live
	td.dirty = false
}

// Scan visits every row of a table in insertion order. The callback
// receives the stored row; it must not mutate it. Returning false stops
// the scan.
func (db *Database) Scan(table string, fn func(*Row) bool) error {
	td, err := db.tableData(table)
	if err != nil {
		return err
	}
	td.compact()
	for _, id := range td.order {
		r, ok := td.rows[id]
		if !ok {
			continue
		}
		if !fn(r) {
			return nil
		}
	}
	return nil
}

// LookupEqual returns the ids of rows whose named columns equal the
// given values, using a hash index when one covers the columns and
// falling back to a scan otherwise. The returned ids are deterministic.
func (db *Database) LookupEqual(table string, columns []string, values []Value) ([]RowID, error) {
	td, err := db.tableData(table)
	if err != nil {
		return nil, err
	}
	cols := make([]int, len(columns))
	for i, c := range columns {
		idx, ok := td.def.ColumnIndex(c)
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, table, c)
		}
		cols[i] = idx
	}
	if ix := td.findIndex(cols); ix != nil {
		ordered := reorderForIndex(ix, cols, values)
		return ix.lookup(ordered), nil
	}
	// Fallback scan.
	var out []RowID
	td.compact()
	for _, id := range td.order {
		r, ok := td.rows[id]
		if !ok {
			continue
		}
		match := true
		for i, c := range cols {
			if !r.Values[c].Equal(values[i]) {
				match = false
				break
			}
		}
		if match {
			out = append(out, id)
		}
	}
	return out, nil
}

// HasIndexOn reports whether an index covers exactly the named columns.
// The data-driven strategies consult this to mimic the paper's
// observation that Oracle indexes keys/foreign keys but not materialized
// probe results.
func (db *Database) HasIndexOn(table string, columns []string) bool {
	td, err := db.tableData(table)
	if err != nil {
		return false
	}
	cols := make([]int, len(columns))
	for i, c := range columns {
		idx, ok := td.def.ColumnIndex(c)
		if !ok {
			return false
		}
		cols[i] = idx
	}
	return td.findIndex(cols) != nil
}

func (td *tableData) findIndex(cols []int) *hashIndex {
	for _, ix := range td.indexes {
		if ix.matchesColumns(cols) {
			return ix
		}
	}
	return nil
}

func reorderForIndex(ix *hashIndex, cols []int, values []Value) []Value {
	ordered := make([]Value, len(ix.columns))
	for i, ic := range ix.columns {
		for j, qc := range cols {
			if qc == ic {
				ordered[i] = values[j]
				break
			}
		}
	}
	return ordered
}

// coerceRow converts a named-value map to positional values, applying
// type coercion and defaulting missing columns to NULL.
func (td *tableData) coerceRow(values map[string]Value) ([]Value, error) {
	out := make([]Value, len(td.def.Columns))
	for i := range out {
		out[i] = Null()
	}
	for name, v := range values {
		idx, ok := td.def.ColumnIndex(name)
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, td.def.Name, name)
		}
		coerced, err := v.CoerceTo(td.def.Columns[idx].Type)
		if err != nil {
			return nil, constraintErr(ErrTypeMismatch, td.def.Name, td.def.Columns[idx].Name, err.Error())
		}
		out[idx] = coerced
	}
	return out, nil
}

// checkLocalConstraints enforces NOT NULL and CHECK column constraints.
func (td *tableData) checkLocalConstraints(values []Value) error {
	for i, c := range td.def.Columns {
		v := values[i]
		if v.IsNull() && td.def.IsNotNullColumn(c.Name) {
			return constraintErr(ErrNotNull, td.def.Name, c.Name, "")
		}
		if c.NotNull && !v.IsNull() && v.Kind == KindString && strings.TrimSpace(v.Str) == "" {
			// Oracle treats empty strings as NULL; the paper's u1
			// (empty <title/>) violates NOT NULL through this rule.
			return constraintErr(ErrNotNull, td.def.Name, c.Name, "empty string treated as NULL")
		}
		for _, chk := range c.Checks {
			if !chk.Holds(v) {
				return constraintErr(ErrCheck, td.def.Name, c.Name, chk.String()+" failed for "+v.String())
			}
		}
	}
	return nil
}

// checkUniqueness enforces the primary key and UNIQUE columns.
func (db *Database) checkUniqueness(td *tableData, values []Value) error {
	for _, ix := range td.indexes {
		if !ix.unique {
			continue
		}
		key, ok := ix.keyFor(values)
		if !ok {
			continue
		}
		if len(ix.entries[key]) > 0 {
			kind := ErrUnique
			if ix == td.pkIndex {
				kind = ErrPrimaryKey
			}
			names := make([]string, len(ix.columns))
			for i, c := range ix.columns {
				names[i] = td.def.Columns[c].Name
			}
			return constraintErr(kind, td.def.Name, strings.Join(names, ","), "duplicate key")
		}
	}
	return nil
}

// checkForeignKeys enforces that every non-NULL FK value references an
// existing row.
func (db *Database) checkForeignKeys(td *tableData, values []Value) error {
	for _, fk := range td.def.ForeignKeys {
		cols := mustColumnIndexes(td.def, fk.Columns)
		vals := make([]Value, len(cols))
		anyNull := false
		for i, c := range cols {
			vals[i] = values[c]
			if vals[i].IsNull() {
				anyNull = true
			}
		}
		if anyNull {
			continue // SQL: NULL FK components opt out of the check
		}
		refIDs, err := db.LookupEqual(fk.RefTable, fk.RefColumns, vals)
		if err != nil {
			return err
		}
		if len(refIDs) == 0 {
			return constraintErr(ErrForeignKey, td.def.Name, strings.Join(fk.Columns, ","),
				fmt.Sprintf("no row in %s matches", fk.RefTable))
		}
	}
	return nil
}

// Insert adds a row. It enforces, in order: type coercion, NOT NULL,
// CHECK, primary key / UNIQUE, and foreign key existence. On success it
// returns the new row id.
func (db *Database) Insert(table string, values map[string]Value) (RowID, error) {
	td, err := db.tableData(table)
	if err != nil {
		return 0, err
	}
	atomic.AddInt64(&db.StatementsExecuted, 1)
	row, err := td.coerceRow(values)
	if err != nil {
		return 0, err
	}
	if err := td.checkLocalConstraints(row); err != nil {
		return 0, err
	}
	if err := db.checkUniqueness(td, row); err != nil {
		return 0, err
	}
	if err := db.checkForeignKeys(td, row); err != nil {
		return 0, err
	}
	id := db.nextRowID
	db.nextRowID++
	r := &Row{ID: id, Values: row}
	td.rows[id] = r
	td.order = append(td.order, id)
	for _, ix := range td.indexes {
		ix.insert(id, row)
	}
	db.appendRedo('I', table, id, row)
	if db.activeTxn != nil {
		db.activeTxn.recordInsert(table, id)
	}
	return id, nil
}

// Delete removes the row with the given id, applying the delete policy
// of every foreign key referencing this table: CASCADE deletes the
// referencing rows transitively, SET NULL nulls the referencing columns
// (rejecting if they are NOT NULL), RESTRICT rejects the delete.
// It returns the number of rows deleted (including cascades).
func (db *Database) Delete(table string, id RowID) (int, error) {
	atomic.AddInt64(&db.StatementsExecuted, 1)
	return db.deleteRow(table, id)
}

func (db *Database) deleteRow(table string, id RowID) (int, error) {
	td, err := db.tableData(table)
	if err != nil {
		return 0, err
	}
	r, ok := td.rows[id]
	if !ok {
		return 0, nil // DELETE of a missing row is a no-op warning, not an error
	}
	deleted := 0
	// Resolve referential actions before removing the row so RESTRICT
	// can reject atomically within this statement.
	for _, ref := range db.schema.ReferencingKeys(table) {
		refVals := make([]Value, len(ref.FK.RefColumns))
		skip := false
		for i, rc := range ref.FK.RefColumns {
			ci, ok := td.def.ColumnIndex(rc)
			if !ok {
				return deleted, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, table, rc)
			}
			refVals[i] = r.Values[ci]
			if refVals[i].IsNull() {
				skip = true
			}
		}
		if skip {
			continue
		}
		ids, err := db.LookupEqual(ref.Table.Name, ref.FK.Columns, refVals)
		if err != nil {
			return deleted, err
		}
		if len(ids) == 0 {
			continue
		}
		switch ref.FK.OnDelete {
		case DeleteRestrict:
			return deleted, constraintErr(ErrRestrict, table, "",
				fmt.Sprintf("%d referencing rows in %s", len(ids), ref.Table.Name))
		case DeleteCascade:
			for _, rid := range ids {
				n, err := db.deleteRow(ref.Table.Name, rid)
				deleted += n
				if err != nil {
					return deleted, err
				}
			}
		case DeleteSetNull:
			nulls := make(map[string]Value, len(ref.FK.Columns))
			for _, c := range ref.FK.Columns {
				nulls[c] = Null()
			}
			for _, rid := range ids {
				if err := db.UpdateRow(ref.Table.Name, rid, nulls); err != nil {
					return deleted, err
				}
			}
		}
	}
	// The row may have been cascade-deleted through a cycle; re-check.
	r, ok = td.rows[id]
	if !ok {
		return deleted, nil
	}
	for _, ix := range td.indexes {
		ix.remove(id, r.Values)
	}
	delete(td.rows, id)
	td.dirty = true
	deleted++
	db.appendRedo('D', table, id, r.Values)
	if db.activeTxn != nil {
		db.activeTxn.recordDelete(table, r.clone())
	}
	return deleted, nil
}

// UpdateRow modifies the named columns of a row in place, re-checking
// NOT NULL, CHECK, uniqueness and foreign keys for the new values.
func (db *Database) UpdateRow(table string, id RowID, changes map[string]Value) error {
	td, err := db.tableData(table)
	if err != nil {
		return err
	}
	atomic.AddInt64(&db.StatementsExecuted, 1)
	r, ok := td.rows[id]
	if !ok {
		return fmt.Errorf("%w: %s rowid %d", ErrNoSuchRow, table, id)
	}
	newVals := make([]Value, len(r.Values))
	copy(newVals, r.Values)
	for name, v := range changes {
		idx, ok := td.def.ColumnIndex(name)
		if !ok {
			return fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, table, name)
		}
		coerced, err := v.CoerceTo(td.def.Columns[idx].Type)
		if err != nil {
			return constraintErr(ErrTypeMismatch, table, name, err.Error())
		}
		newVals[idx] = coerced
	}
	if err := td.checkLocalConstraints(newVals); err != nil {
		return err
	}
	// Uniqueness: temporarily remove the row from unique indexes so the
	// row does not collide with itself.
	for _, ix := range td.indexes {
		ix.remove(id, r.Values)
	}
	if err := db.checkUniqueness(td, newVals); err != nil {
		for _, ix := range td.indexes {
			ix.insert(id, r.Values)
		}
		return err
	}
	if err := db.checkForeignKeys(td, newVals); err != nil {
		for _, ix := range td.indexes {
			ix.insert(id, r.Values)
		}
		return err
	}
	old := r.clone()
	r.Values = newVals
	for _, ix := range td.indexes {
		ix.insert(id, newVals)
	}
	db.appendRedo('U', table, id, newVals)
	if db.activeTxn != nil {
		db.activeTxn.recordUpdate(table, old)
	}
	return nil
}

// ValuesByName returns a row's values keyed by column name.
func (db *Database) ValuesByName(table string, id RowID) (map[string]Value, error) {
	td, err := db.tableData(table)
	if err != nil {
		return nil, err
	}
	r, ok := td.rows[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s rowid %d", ErrNoSuchRow, table, id)
	}
	out := make(map[string]Value, len(r.Values))
	for i, c := range td.def.Columns {
		out[c.Name] = r.Values[i]
	}
	return out, nil
}

// SortedTableNames returns the table names sorted alphabetically (used
// by deterministic dumps).
func (db *Database) SortedTableNames() []string {
	names := make([]string, 0, len(db.tables))
	for _, td := range db.tables {
		names = append(names, td.def.Name)
	}
	sort.Strings(names)
	return names
}
