package relational

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Row is one stored tuple. Values are positional, aligned with the
// table's column order.
type Row struct {
	ID     RowID
	Values []Value
}

// clone returns a deep copy of the row (values are value types already).
func (r *Row) clone() *Row {
	vals := make([]Value, len(r.Values))
	copy(vals, r.Values)
	return &Row{ID: r.ID, Values: vals}
}

// liveSeq is the end stamp of a version that has not been superseded or
// deleted: visible to the writer and to every snapshot taken after its
// begin stamp.
const liveSeq = ^uint64(0)

// rowVersion is one entry of a row's version chain, newest first. The
// row content and begin stamp are immutable after creation; end and
// prev are atomics because the single writer stamps/truncates them
// while snapshot readers traverse the chain lock-free.
//
// Visibility: a snapshot pinned at commit sequence S sees the version
// with begin <= S < end; the writer (and unpinned "latest" reads) see
// the head iff end == liveSeq. A version deleted or superseded by an
// in-flight transaction carries end = committed+1, which is invisible
// to the writer's own reads and stays invisible to snapshots at or
// below the pinned sequence — commit makes it all visible atomically
// by advancing the database's commit sequence.
type rowVersion struct {
	row   Row    // immutable after creation
	begin uint64 // commit seq at which this version becomes visible
	end   atomic.Uint64
	prev  atomic.Pointer[rowVersion]
}

// visibleAt walks the chain from v and returns the version a snapshot
// at seq sees, or nil. Chains are newest-first; once a version with
// begin <= seq is passed, every older version ended at or before that
// begin, so the walk can stop.
func (v *rowVersion) visibleAt(seq uint64) *rowVersion {
	for ; v != nil; v = v.prev.Load() {
		if v.begin <= seq {
			if seq < v.end.Load() {
				return v
			}
			return nil
		}
	}
	return nil
}

// tableData is the storage for a single relation: row version chains
// plus maintained hash indexes.
//
// Index entries are inserted when a version is created and removed only
// when the version is rolled back (uncommitted versions are invisible
// to everyone, so eager removal is safe) or reclaimed (no snapshot can
// see them anymore). Between a delete/update and the reclaim, an index
// bucket may therefore hold ids whose current values no longer match
// the key; every index consumer re-verifies the resolved version's
// values against the probe, which is also what makes index lookups
// correct for snapshot readers.
type tableData struct {
	def     *TableDef
	rows    map[RowID]*rowVersion // head = newest version
	order   []RowID               // insertion order, for deterministic scans
	indexes []*hashIndex
	pkIndex *hashIndex // nil when the table has no primary key
	live    int        // heads with end == liveSeq (the writer's row count)
	dirty   bool       // order slice needs compaction (rows were reclaimed)
}

// Database is an in-memory relational database instance: a schema plus
// a versioned row store, indexes and transaction support.
//
// # Concurrency
//
// The engine is single-writer, multi-reader with snapshot isolation.
// Mutations (Insert, Delete, UpdateRow, Begin/Commit/Rollback, Reclaim)
// must be serialized by the caller, as plan.Executor does for its apply
// pipeline. Readers never block behind a writer's transaction: the
// structural latch (mu) is held per row operation — the millisecond
// equivalent of a page latch — never across a statement or transaction,
// so a long batch apply interleaves with concurrent reads at row-op
// granularity.
//
// Consistency is layered on top by versioning. db.Snapshot() pins an
// immutable O(1) point-in-time view: every read through the snapshot
// resolves row version chains at the pinned commit sequence, so a
// snapshot reader observes either all or none of a transaction's
// effects regardless of interleaving. Reads directly on the Database
// are "latest" reads: individually safe, but read-uncommitted — they
// see the writer's in-flight state (uncommitted inserts and updates
// are visible, uncommitted deletes take effect immediately), which is
// exactly what the writer's own probes inside a transaction need.
// Concurrent observers that need committed-state isolation must pin a
// snapshot.
//
// Old versions are retained until no live snapshot can see them and are
// then freed by Reclaim (piggybacked on commits and optionally run by a
// background reclaimer, see StartReclaimer).
type Database struct {
	schema    *Schema
	tables    map[string]*tableData
	nextRowID RowID

	// mu is the structural latch protecting the row maps, order slices
	// and index buckets. Writers hold it for one row operation; readers
	// hold it while collecting structure references and never across
	// callbacks, so reader and writer critical sections are both short
	// and nested acquisition cannot occur.
	mu sync.RWMutex

	// commitSeq is the last committed sequence number; snapshots pin it.
	// The writer stamps new versions with commitSeq+1 and advances it at
	// commit (or at statement end outside a transaction).
	commitSeq atomic.Uint64

	// snapMu guards the live-snapshot registry. Reclaim computes the
	// oldest pinned sequence under it, so registering a snapshot and
	// truncating version chains cannot interleave.
	snapMu sync.Mutex
	snaps  map[*Snapshot]struct{}

	snapshotsOpened   atomic.Int64
	versionsReclaimed atomic.Int64
	reclaims          atomic.Int64

	// versionsSinceReclaim counts versions created or killed since the
	// last reclaim; commits piggyback a reclaim pass when it overflows.
	// Writer-owned (mutated under mu).
	versionsSinceReclaim int

	// activeTxn, when non-nil, records undo entries for Rollback.
	activeTxn *Txn

	// StatementsExecuted counts DML statements since creation; the
	// benchmark harness reads it to report probe/update counts. Updated
	// atomically; read it with StatementsExecutedTotal when other
	// goroutines may be mutating the database.
	StatementsExecuted int64

	// redo is the write-ahead log buffer. Every DML statement appends a
	// statement record and every touched row appends a row image, as a
	// disk-backed engine would; reads never log. This asymmetry between
	// DML and probe queries is what the outside strategy exploits
	// (Fig. 17: a suppressed zero-row DELETE also skips its logging).
	// redoOps and redoBytes are the cumulative record/byte counters,
	// maintained atomically so statistics reads never race a writer
	// (the buffer itself is written only under the single-writer rule).
	redo        []byte
	redoOps     atomic.Int64
	redoBytes   atomic.Int64
	redoFlushes atomic.Int64
}

// Reader is the read-only surface shared by a live *Database and a
// pinned *Snapshot. Layers that only consume data (the sqlexec SELECT
// machinery, the plan layer's data-driven check probes, the server's
// statistics handlers) take a Reader so the same code path runs
// against the latest state or against an immutable point-in-time view.
type Reader interface {
	// Schema returns the database schema.
	Schema() *Schema
	// Get returns a copy of the row with the given id.
	Get(table string, id RowID) (*Row, error)
	// Scan visits every visible row of a table in insertion order. The
	// callback must not mutate the row; returning false stops the scan.
	Scan(table string, fn func(*Row) bool) error
	// LookupEqual returns the ids of visible rows whose named columns
	// equal the given values.
	LookupEqual(table string, columns []string, values []Value) ([]RowID, error)
	// HasIndexOn reports whether an index covers exactly the named
	// columns.
	HasIndexOn(table string, columns []string) bool
	// RowCount returns the number of visible rows in the table.
	RowCount(table string) int
	// TotalRows returns the number of visible rows across all tables.
	TotalRows() int
}

var (
	_ Reader = (*Database)(nil)
	_ Reader = (*Snapshot)(nil)
)

// StatementsExecutedTotal atomically reads the DML statement counter.
func (db *Database) StatementsExecutedTotal() int64 {
	return atomic.LoadInt64(&db.StatementsExecuted)
}

// RedoBytes atomically reads the cumulative number of bytes appended to
// the write-ahead log since creation (flush truncations do not reset
// it).
func (db *Database) RedoBytes() int64 { return db.redoBytes.Load() }

// RedoRecords atomically reads the number of log records appended.
func (db *Database) RedoRecords() int64 { return db.redoOps.Load() }

// RedoFlushes atomically reads the number of write-ahead-log flushes:
// one per transaction commit (the cost group commit amortizes over a
// batch) plus buffer-overflow flushes.
func (db *Database) RedoFlushes() int64 { return db.redoFlushes.Load() }

// flushRedo models a log flush: the buffer is forced out (truncated
// here) and the flush counter advances. Called on every transaction
// commit and when the buffer overflows.
func (db *Database) flushRedo() {
	db.redoFlushes.Add(1)
	db.redo = db.redo[:0]
}

// DBStats is a point-in-time snapshot of the database's statistics
// counters. Every field is read atomically (or under its own short
// mutex), so a snapshot may be taken while another goroutine is
// mutating the database.
type DBStats struct {
	// StatementsExecuted counts DML statements since creation.
	StatementsExecuted int64 `json:"statements_executed"`
	// RedoRecords counts write-ahead log records appended.
	RedoRecords int64 `json:"redo_records"`
	// RedoBytes counts cumulative write-ahead log bytes appended.
	RedoBytes int64 `json:"redo_bytes"`
	// RedoFlushes counts write-ahead log flushes (one per commit).
	RedoFlushes int64 `json:"redo_flushes"`
	// SnapshotsActive is the number of currently pinned snapshots.
	SnapshotsActive int64 `json:"snapshots_active"`
	// SnapshotsOpened counts snapshots ever pinned.
	SnapshotsOpened int64 `json:"snapshots_opened"`
	// VersionsReclaimed counts row versions freed by the reclaimer.
	VersionsReclaimed int64 `json:"versions_reclaimed"`
	// Reclaims counts reclaim passes (inline and background).
	Reclaims int64 `json:"reclaims"`
	// CommitSeq is the last committed sequence number.
	CommitSeq uint64 `json:"commit_seq"`
}

// Stats snapshots the statistics counters atomically.
func (db *Database) Stats() DBStats {
	db.snapMu.Lock()
	active := int64(len(db.snaps))
	db.snapMu.Unlock()
	return DBStats{
		StatementsExecuted: db.StatementsExecutedTotal(),
		RedoRecords:        db.redoOps.Load(),
		RedoBytes:          db.redoBytes.Load(),
		RedoFlushes:        db.redoFlushes.Load(),
		SnapshotsActive:    active,
		SnapshotsOpened:    db.snapshotsOpened.Load(),
		VersionsReclaimed:  db.versionsReclaimed.Load(),
		Reclaims:           db.reclaims.Load(),
		CommitSeq:          db.commitSeq.Load(),
	}
}

// appendRedo logs one record. The buffer is truncated periodically so
// long benchmark runs do not grow memory without bound; the append cost
// (the part a real engine pays per statement) is preserved.
func (db *Database) appendRedo(kind byte, table string, id RowID, values []Value) {
	db.redoOps.Add(1)
	n := len(db.redo)
	db.redo = append(db.redo, kind)
	db.redo = append(db.redo, table...)
	var buf [8]byte
	v := uint64(id)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	db.redo = append(db.redo, buf[:]...)
	for _, val := range values {
		db.redo = append(db.redo, val.EncodeKey()...)
	}
	db.redoBytes.Add(int64(len(db.redo) - n))
	if len(db.redo) > 1<<20 {
		db.flushRedo() // buffer overflow forces a flush
	}
}

// LogStatement appends a statement-level WAL record, the bookkeeping a
// disk-backed engine pays for every DML statement it executes — even
// one that ends up matching zero rows. Probe queries never log; this is
// the cost the outside strategy saves by suppressing empty deletes.
func (db *Database) LogStatement(sql string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.redoOps.Add(1)
	db.redoBytes.Add(int64(1 + len(sql)))
	db.redo = append(db.redo, 'S')
	db.redo = append(db.redo, sql...)
	if len(db.redo) > 1<<20 {
		db.flushRedo()
	}
}

// NewDatabase creates an empty database for the schema, building hash
// indexes for every primary key, UNIQUE column and foreign key.
func NewDatabase(schema *Schema) *Database {
	db := &Database{
		schema:    schema,
		tables:    make(map[string]*tableData, len(schema.Tables())),
		nextRowID: 1,
		snaps:     make(map[*Snapshot]struct{}),
	}
	for _, t := range schema.Tables() {
		td := &tableData{def: t, rows: make(map[RowID]*rowVersion)}
		if len(t.PrimaryKey) > 0 {
			cols := mustColumnIndexes(t, t.PrimaryKey)
			td.pkIndex = newHashIndex(indexName(t.Name, t.PrimaryKey), cols, true)
			td.indexes = append(td.indexes, td.pkIndex)
		}
		for _, c := range t.Columns {
			if c.Unique {
				cols := mustColumnIndexes(t, []string{c.Name})
				td.indexes = append(td.indexes, newHashIndex(indexName(t.Name, []string{c.Name}), cols, true))
			}
		}
		for _, fk := range t.ForeignKeys {
			cols := mustColumnIndexes(t, fk.Columns)
			if !hasIndexOn(td, cols) {
				td.indexes = append(td.indexes, newHashIndex(indexName(t.Name, fk.Columns), cols, false))
			}
		}
		db.tables[strings.ToLower(t.Name)] = td
	}
	return db
}

func hasIndexOn(td *tableData, cols []int) bool {
	for _, ix := range td.indexes {
		if ix.matchesColumns(cols) {
			return true
		}
	}
	return false
}

func mustColumnIndexes(t *TableDef, names []string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		idx, ok := t.ColumnIndex(n)
		if !ok {
			panic(fmt.Sprintf("relational: table %s has no column %s", t.Name, n))
		}
		out[i] = idx
	}
	return out
}

// Schema returns the database schema.
func (db *Database) Schema() *Schema { return db.schema }

func (db *Database) tableData(name string) (*tableData, error) {
	td, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	return td, nil
}

// pendingSeq is the sequence the in-flight (or next auto-committed)
// statement stamps its versions with.
func (db *Database) pendingSeq() uint64 { return db.commitSeq.Load() + 1 }

// endStatementLocked finishes an auto-committed statement: outside a
// transaction every statement commits by itself, advancing the commit
// sequence so snapshots taken afterwards see it. Callers hold mu.
func (db *Database) endStatementLocked() {
	if db.activeTxn == nil {
		db.commitSeq.Add(1)
		db.maybeReclaimLocked()
	}
}

// RowCount returns the number of rows currently visible to a latest
// read of the table (the writer's view).
func (db *Database) RowCount(table string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, err := db.tableData(table)
	if err != nil {
		return 0
	}
	return td.live
}

// TotalRows returns the number of rows across all tables, used by the
// benchmarks to report effective database size.
func (db *Database) TotalRows() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, td := range db.tables {
		n += td.live
	}
	return n
}

// Get returns a copy of the row with the given id.
func (db *Database) Get(table string, id RowID) (*Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, err := db.tableData(table)
	if err != nil {
		return nil, err
	}
	v, ok := td.rows[id]
	if !ok || v.end.Load() != liveSeq {
		return nil, fmt.Errorf("%w: %s rowid %d", ErrNoSuchRow, table, id)
	}
	return v.row.clone(), nil
}

// ScanIDs returns the visible row ids of a table in insertion order.
func (db *Database) ScanIDs(table string) []RowID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, err := db.tableData(table)
	if err != nil {
		return nil
	}
	out := make([]RowID, 0, len(td.order))
	for _, id := range td.order {
		if v, ok := td.rows[id]; ok && v.end.Load() == liveSeq {
			out = append(out, id)
		}
	}
	return out
}

// compactLocked drops reclaimed ids from the order slice. Called by the
// reclaimer (a writer) only; readers filter invisible ids instead.
func (td *tableData) compactLocked() {
	if !td.dirty {
		return
	}
	live := td.order[:0]
	for _, id := range td.order {
		if _, ok := td.rows[id]; ok {
			live = append(live, id)
		}
	}
	td.order = live
	td.dirty = false
}

// collectHeads gathers the version-chain heads of a table in insertion
// order under the read latch. Row content is immutable and the chain
// links are atomics, so callers resolve visibility and run callbacks
// after the latch is released — scans never hold a lock across user
// code, which is what lets a reader interleave with a writer without
// nested-latch deadlocks.
func (db *Database) collectHeads(table string) ([]*rowVersion, *tableData, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, err := db.tableData(table)
	if err != nil {
		return nil, nil, err
	}
	out := make([]*rowVersion, 0, len(td.order))
	for _, id := range td.order {
		if v, ok := td.rows[id]; ok {
			out = append(out, v)
		}
	}
	return out, td, nil
}

// Scan visits every visible row of a table in insertion order. The
// callback receives the stored row; it must not mutate it. Returning
// false stops the scan. The latch is not held while the callback runs.
func (db *Database) Scan(table string, fn func(*Row) bool) error {
	heads, td, err := db.collectHeads(table)
	if err != nil {
		return err
	}
	for _, v := range heads {
		if v.end.Load() != liveSeq {
			// The head we collected was stamped dead. Either the row is
			// really gone (deleted — possibly by the in-flight writer,
			// whose state latest reads must honor) or a concurrent
			// writer superseded it after we collected; re-resolve the
			// current head so an updated row is visited with its new
			// values instead of silently vanishing from the scan.
			db.mu.RLock()
			v = td.rows[v.row.ID]
			db.mu.RUnlock()
			if v == nil || v.end.Load() != liveSeq {
				continue
			}
		}
		if !fn(&v.row) {
			return nil
		}
	}
	return nil
}

// LookupEqual returns the ids of visible rows whose named columns equal
// the given values, using a hash index when one covers the columns and
// falling back to a scan otherwise. The returned ids are deterministic.
func (db *Database) LookupEqual(table string, columns []string, values []Value) ([]RowID, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.lookupEqualLocked(table, columns, values)
}

// lookupEqualLocked is LookupEqual for callers already holding the
// latch (the writer's constraint checks).
func (db *Database) lookupEqualLocked(table string, columns []string, values []Value) ([]RowID, error) {
	td, err := db.tableData(table)
	if err != nil {
		return nil, err
	}
	cols := make([]int, len(columns))
	for i, c := range columns {
		idx, ok := td.def.ColumnIndex(c)
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, table, c)
		}
		cols[i] = idx
	}
	matchesLive := func(v *rowVersion) bool {
		if v == nil || v.end.Load() != liveSeq {
			return false
		}
		for i, c := range cols {
			if !v.row.Values[c].Equal(values[i]) {
				return false
			}
		}
		return true
	}
	if ix := td.findIndex(cols); ix != nil {
		ordered := reorderForIndex(ix, cols, values)
		// Index buckets may carry stale ids (versions awaiting reclaim);
		// re-verify the live version's values against the probe.
		var out []RowID
		for _, id := range ix.lookup(ordered) {
			if matchesLive(td.rows[id]) {
				out = append(out, id)
			}
		}
		return out, nil
	}
	// Fallback scan.
	var out []RowID
	for _, id := range td.order {
		if matchesLive(td.rows[id]) {
			out = append(out, id)
		}
	}
	return out, nil
}

// HasIndexOn reports whether an index covers exactly the named columns.
// The data-driven strategies consult this to mimic the paper's
// observation that Oracle indexes keys/foreign keys but not materialized
// probe results. Index structure is fixed at creation, so no latch is
// needed.
func (db *Database) HasIndexOn(table string, columns []string) bool {
	td, err := db.tableData(table)
	if err != nil {
		return false
	}
	cols := make([]int, len(columns))
	for i, c := range columns {
		idx, ok := td.def.ColumnIndex(c)
		if !ok {
			return false
		}
		cols[i] = idx
	}
	return td.findIndex(cols) != nil
}

func (td *tableData) findIndex(cols []int) *hashIndex {
	for _, ix := range td.indexes {
		if ix.matchesColumns(cols) {
			return ix
		}
	}
	return nil
}

func reorderForIndex(ix *hashIndex, cols []int, values []Value) []Value {
	ordered := make([]Value, len(ix.columns))
	for i, ic := range ix.columns {
		for j, qc := range cols {
			if qc == ic {
				ordered[i] = values[j]
				break
			}
		}
	}
	return ordered
}

// coerceRow converts a named-value map to positional values, applying
// type coercion and defaulting missing columns to NULL.
func (td *tableData) coerceRow(values map[string]Value) ([]Value, error) {
	out := make([]Value, len(td.def.Columns))
	for i := range out {
		out[i] = Null()
	}
	for name, v := range values {
		idx, ok := td.def.ColumnIndex(name)
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, td.def.Name, name)
		}
		coerced, err := v.CoerceTo(td.def.Columns[idx].Type)
		if err != nil {
			return nil, constraintErr(ErrTypeMismatch, td.def.Name, td.def.Columns[idx].Name, err.Error())
		}
		out[idx] = coerced
	}
	return out, nil
}

// checkLocalConstraints enforces NOT NULL and CHECK column constraints.
func (td *tableData) checkLocalConstraints(values []Value) error {
	for i, c := range td.def.Columns {
		v := values[i]
		if v.IsNull() && td.def.IsNotNullColumn(c.Name) {
			return constraintErr(ErrNotNull, td.def.Name, c.Name, "")
		}
		if c.NotNull && !v.IsNull() && v.Kind == KindString && strings.TrimSpace(v.Str) == "" {
			// Oracle treats empty strings as NULL; the paper's u1
			// (empty <title/>) violates NOT NULL through this rule.
			return constraintErr(ErrNotNull, td.def.Name, c.Name, "empty string treated as NULL")
		}
		for _, chk := range c.Checks {
			if !chk.Holds(v) {
				return constraintErr(ErrCheck, td.def.Name, c.Name, chk.String()+" failed for "+v.String())
			}
		}
	}
	return nil
}

// checkUniqueness enforces the primary key and UNIQUE columns against
// the writer's view. exclude skips one row id (the row being updated,
// so it does not collide with itself). Index buckets may hold ids of
// dead versions awaiting reclaim, so each candidate's live version is
// re-verified against the new values.
func (db *Database) checkUniqueness(td *tableData, values []Value, exclude RowID) error {
	for _, ix := range td.indexes {
		if !ix.unique {
			continue
		}
		key, ok := ix.keyFor(values)
		if !ok {
			continue
		}
		for id := range ix.entries[key] {
			if id == exclude {
				continue
			}
			v := td.rows[id]
			if v == nil || v.end.Load() != liveSeq {
				continue
			}
			match := true
			for _, c := range ix.columns {
				if !v.row.Values[c].Equal(values[c]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			kind := ErrUnique
			if ix == td.pkIndex {
				kind = ErrPrimaryKey
			}
			names := make([]string, len(ix.columns))
			for i, c := range ix.columns {
				names[i] = td.def.Columns[c].Name
			}
			return constraintErr(kind, td.def.Name, strings.Join(names, ","), "duplicate key")
		}
	}
	return nil
}

// checkForeignKeys enforces that every non-NULL FK value references an
// existing row.
func (db *Database) checkForeignKeys(td *tableData, values []Value) error {
	for _, fk := range td.def.ForeignKeys {
		cols := mustColumnIndexes(td.def, fk.Columns)
		vals := make([]Value, len(cols))
		anyNull := false
		for i, c := range cols {
			vals[i] = values[c]
			if vals[i].IsNull() {
				anyNull = true
			}
		}
		if anyNull {
			continue // SQL: NULL FK components opt out of the check
		}
		refIDs, err := db.lookupEqualLocked(fk.RefTable, fk.RefColumns, vals)
		if err != nil {
			return err
		}
		if len(refIDs) == 0 {
			return constraintErr(ErrForeignKey, td.def.Name, strings.Join(fk.Columns, ","),
				fmt.Sprintf("no row in %s matches", fk.RefTable))
		}
	}
	return nil
}

// Insert adds a row. It enforces, in order: type coercion, NOT NULL,
// CHECK, primary key / UNIQUE, and foreign key existence. On success it
// returns the new row id.
func (db *Database) Insert(table string, values map[string]Value) (RowID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	td, err := db.tableData(table)
	if err != nil {
		return 0, err
	}
	atomic.AddInt64(&db.StatementsExecuted, 1)
	row, err := td.coerceRow(values)
	if err != nil {
		return 0, err
	}
	if err := td.checkLocalConstraints(row); err != nil {
		return 0, err
	}
	if err := db.checkUniqueness(td, row, 0); err != nil {
		return 0, err
	}
	if err := db.checkForeignKeys(td, row); err != nil {
		return 0, err
	}
	id := db.nextRowID
	db.nextRowID++
	v := &rowVersion{row: Row{ID: id, Values: row}, begin: db.pendingSeq()}
	v.end.Store(liveSeq)
	td.rows[id] = v
	td.order = append(td.order, id)
	td.live++
	db.versionsSinceReclaim++
	for _, ix := range td.indexes {
		ix.insert(id, row)
	}
	db.appendRedo('I', table, id, row)
	if db.activeTxn != nil {
		db.activeTxn.recordInsert(table, id)
	}
	db.endStatementLocked()
	return id, nil
}

// Delete removes the row with the given id, applying the delete policy
// of every foreign key referencing this table: CASCADE deletes the
// referencing rows transitively, SET NULL nulls the referencing columns
// (rejecting if they are NOT NULL), RESTRICT rejects the delete.
// It returns the number of rows deleted (including cascades).
func (db *Database) Delete(table string, id RowID) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	atomic.AddInt64(&db.StatementsExecuted, 1)
	// Advance the commit sequence when the statement succeeded OR when
	// a partially-failed cascade already stamped versions (they are
	// live-visible, so they must become snapshot-visible too, not sit
	// pending until an unrelated later commit publishes them); a
	// rejected statement that changed nothing must not inflate the
	// committed sequence. Deleted-row counts miss SET NULL updates, so
	// "stamped anything" is detected via the version counter — reclaim
	// cannot reset it mid-statement (it only runs at statement end).
	before := db.versionsSinceReclaim
	n, err := db.deleteRowLocked(table, id)
	if err == nil || db.versionsSinceReclaim != before {
		db.endStatementLocked()
	}
	return n, err
}

func (db *Database) deleteRowLocked(table string, id RowID) (int, error) {
	td, err := db.tableData(table)
	if err != nil {
		return 0, err
	}
	v, ok := td.rows[id]
	if !ok || v.end.Load() != liveSeq {
		return 0, nil // DELETE of a missing row is a no-op warning, not an error
	}
	deleted := 0
	// Resolve referential actions before removing the row so RESTRICT
	// can reject atomically within this statement.
	for _, ref := range db.schema.ReferencingKeys(table) {
		refVals := make([]Value, len(ref.FK.RefColumns))
		skip := false
		for i, rc := range ref.FK.RefColumns {
			ci, ok := td.def.ColumnIndex(rc)
			if !ok {
				return deleted, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, table, rc)
			}
			refVals[i] = v.row.Values[ci]
			if refVals[i].IsNull() {
				skip = true
			}
		}
		if skip {
			continue
		}
		ids, err := db.lookupEqualLocked(ref.Table.Name, ref.FK.Columns, refVals)
		if err != nil {
			return deleted, err
		}
		if len(ids) == 0 {
			continue
		}
		switch ref.FK.OnDelete {
		case DeleteRestrict:
			return deleted, constraintErr(ErrRestrict, table, "",
				fmt.Sprintf("%d referencing rows in %s", len(ids), ref.Table.Name))
		case DeleteCascade:
			for _, rid := range ids {
				n, err := db.deleteRowLocked(ref.Table.Name, rid)
				deleted += n
				if err != nil {
					return deleted, err
				}
			}
		case DeleteSetNull:
			nulls := make(map[string]Value, len(ref.FK.Columns))
			for _, c := range ref.FK.Columns {
				nulls[c] = Null()
			}
			for _, rid := range ids {
				if err := db.updateRowLocked(ref.Table.Name, rid, nulls); err != nil {
					return deleted, err
				}
			}
		}
	}
	// The row may have been cascade-deleted through a cycle; re-check.
	v, ok = td.rows[id]
	if !ok || v.end.Load() != liveSeq {
		return deleted, nil
	}
	// MVCC delete: stamp the head dead at the pending sequence. Index
	// entries and the version itself stay until no snapshot can see
	// them; the reclaimer frees both.
	v.end.Store(db.pendingSeq())
	td.live--
	db.versionsSinceReclaim++
	deleted++
	db.appendRedo('D', table, id, v.row.Values)
	if db.activeTxn != nil {
		db.activeTxn.recordDelete(table, id)
	}
	return deleted, nil
}

// UpdateRow modifies the named columns of a row, re-checking NOT NULL,
// CHECK, uniqueness and foreign keys for the new values. The previous
// values survive as an older version in the row's chain until no
// snapshot can see them.
func (db *Database) UpdateRow(table string, id RowID, changes map[string]Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	err := db.updateRowLocked(table, id, changes)
	if err == nil {
		db.endStatementLocked()
	}
	return err
}

func (db *Database) updateRowLocked(table string, id RowID, changes map[string]Value) error {
	td, err := db.tableData(table)
	if err != nil {
		return err
	}
	atomic.AddInt64(&db.StatementsExecuted, 1)
	v, ok := td.rows[id]
	if !ok || v.end.Load() != liveSeq {
		return fmt.Errorf("%w: %s rowid %d", ErrNoSuchRow, table, id)
	}
	newVals := make([]Value, len(v.row.Values))
	copy(newVals, v.row.Values)
	for name, val := range changes {
		idx, ok := td.def.ColumnIndex(name)
		if !ok {
			return fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, table, name)
		}
		coerced, err := val.CoerceTo(td.def.Columns[idx].Type)
		if err != nil {
			return constraintErr(ErrTypeMismatch, table, name, err.Error())
		}
		newVals[idx] = coerced
	}
	if err := td.checkLocalConstraints(newVals); err != nil {
		return err
	}
	if err := db.checkUniqueness(td, newVals, id); err != nil {
		return err
	}
	if err := db.checkForeignKeys(td, newVals); err != nil {
		return err
	}
	nv := &rowVersion{row: Row{ID: id, Values: newVals}, begin: db.pendingSeq()}
	nv.end.Store(liveSeq)
	nv.prev.Store(v)
	v.end.Store(nv.begin)
	td.rows[id] = nv
	db.versionsSinceReclaim++
	for _, ix := range td.indexes {
		ix.insert(id, newVals) // buckets are id-sets: unchanged keys dedupe
	}
	db.appendRedo('U', table, id, newVals)
	if db.activeTxn != nil {
		db.activeTxn.recordUpdate(table, id)
	}
	return nil
}

// removeVersionEntries drops a discarded version's index entries,
// keeping any entry whose key is still produced by a version remaining
// in the chain (kept, walked towards older). Used when rolling back an
// uncommitted version (invisible to everyone, so eager removal is
// safe) and by the reclaimer.
func removeVersionEntries(td *tableData, id RowID, dropped *rowVersion, kept *rowVersion) {
	for _, ix := range td.indexes {
		key, ok := ix.keyFor(dropped.row.Values)
		if !ok {
			continue
		}
		shared := false
		for k := kept; k != nil; k = k.prev.Load() {
			if kk, ok2 := ix.keyFor(k.row.Values); ok2 && kk == key {
				shared = true
				break
			}
		}
		if !shared {
			ix.removeKey(key, id)
		}
	}
}

// ValuesByName returns a visible row's values keyed by column name.
func (db *Database) ValuesByName(table string, id RowID) (map[string]Value, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, err := db.tableData(table)
	if err != nil {
		return nil, err
	}
	v, ok := td.rows[id]
	if !ok || v.end.Load() != liveSeq {
		return nil, fmt.Errorf("%w: %s rowid %d", ErrNoSuchRow, table, id)
	}
	out := make(map[string]Value, len(v.row.Values))
	for i, c := range td.def.Columns {
		out[c.Name] = v.row.Values[i]
	}
	return out, nil
}

// SortedTableNames returns the table names sorted alphabetically (used
// by deterministic dumps).
func (db *Database) SortedTableNames() []string {
	names := make([]string, 0, len(db.tables))
	for _, td := range db.tables {
		names = append(names, td.def.Name)
	}
	sort.Strings(names)
	return names
}
