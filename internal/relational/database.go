package relational

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Row is one stored tuple. Values are positional, aligned with the
// table's column order.
type Row struct {
	ID     RowID
	Values []Value
}

// clone returns a deep copy of the row (values are value types already).
func (r *Row) clone() *Row {
	vals := make([]Value, len(r.Values))
	copy(vals, r.Values)
	return &Row{ID: r.ID, Values: vals}
}

// liveSeq is the end stamp of a version that has not been superseded or
// deleted: visible to every snapshot taken after its begin stamp.
const liveSeq = ^uint64(0)

// txnBit distinguishes a transaction claim from a committed sequence in
// a version's begin/end stamp: while a transaction is in flight, the
// versions it creates carry begin = txnMark(id) and the versions it
// supersedes or deletes carry end = txnMark(id). Commit's publish phase
// replaces the marks with the real commit sequence; rollback restores
// liveSeq or pops the version. liveSeq (all ones) is not a claim —
// isTxnMark excludes it — and claims compare greater than every real
// sequence, which is what keeps claimed-away versions visible to other
// readers and claimed-new versions invisible, with no extra branches in
// the visibility comparisons.
const txnBit = uint64(1) << 63

func txnMark(id uint64) uint64  { return id | txnBit }
func isTxnMark(s uint64) bool   { return s != liveSeq && s&txnBit != 0 }
func markOwner(s uint64) uint64 { return s &^ txnBit }

// rowVersion is one entry of a row's version chain, newest first. The
// row content is immutable after creation; begin, end and prev are
// atomics because writers stamp them (claims at write time, sequences
// at publish) while readers traverse the chain lock-free.
//
// Visibility: a snapshot pinned at commit sequence S sees the version
// with begin <= S < end. A version created by an in-flight transaction
// carries a begin claim (invisible to everyone but its owner); a
// version superseded or deleted by an in-flight transaction carries an
// end claim (still visible to everyone but its owner, because claims
// compare greater than any pinned sequence). Commit makes a
// transaction's versions visible atomically by replacing its claims
// with the next commit sequence and then advancing the database's
// commit sequence.
type rowVersion struct {
	row   Row // immutable after creation
	begin atomic.Uint64
	end   atomic.Uint64
	prev  atomic.Pointer[rowVersion]

	// pageSlot is 1 + the heap slot of the page holding this version's
	// checkpointed image, 0 when none. A version with row.Values == nil
	// is a demoted STUB: only its stamps live in memory and its values
	// fault in from the page store (see pager.go for the rules on who
	// may fault where). Stubs are always single-version chains (prev ==
	// nil, end == liveSeq); write paths materialize them before any
	// mutation so undo logs never meet a value-less version.
	pageSlot atomic.Uint32
}

// newVersion builds a live version with the given begin stamp.
func newVersion(row Row, begin uint64) *rowVersion {
	v := &rowVersion{row: row}
	v.begin.Store(begin)
	v.end.Store(liveSeq)
	return v
}

// visibleAt walks the chain from v and returns the version a
// committed-state reader at seq sees, or nil. Chains are newest-first;
// once a committed version with begin <= seq is passed, every older
// version ended at or before that begin, so the walk can stop.
// Uncommitted begin claims are skipped (invisible to everyone but
// their owner); uncommitted end claims compare greater than seq, so a
// claimed-away version stays visible until its claimant commits.
func (v *rowVersion) visibleAt(seq uint64) *rowVersion {
	for ; v != nil; v = v.prev.Load() {
		b := v.begin.Load()
		if isTxnMark(b) {
			continue
		}
		if b <= seq {
			if seq < v.end.Load() {
				return v
			}
			return nil
		}
	}
	return nil
}

// tableData is the storage for a single relation: row version chains
// plus maintained hash indexes.
//
// Index entries are inserted when a version is created and removed only
// when the version is rolled back (uncommitted versions are invisible
// to everyone, so eager removal is safe) or reclaimed (no snapshot can
// see them anymore). Between a delete/update and the reclaim, an index
// bucket may therefore hold ids whose current values no longer match
// the key; every index consumer re-verifies the resolved version's
// values against the probe, which is also what makes index lookups
// correct for snapshot readers.
type tableData struct {
	def     *TableDef
	rows    map[RowID]*rowVersion // head = newest version
	order   []RowID               // insertion order, for deterministic scans
	indexes []*hashIndex
	pkIndex *hashIndex // nil when the table has no primary key
	live    int        // heads a latest writer-side count sees (approximate under concurrency)
	dirty   bool       // order slice needs compaction (rows were reclaimed)

	// dirtyRows accumulates the ids of rows written since the last
	// checkpoint — the working set an incremental checkpoint serializes.
	// Marked at commit-stamp time and swapped out by Checkpoint, both
	// under commitMu (NOT the structural latch), so marking never races
	// the swap and open transactions at swap time mark into the fresh
	// set when they eventually commit.
	dirtyRows map[RowID]struct{}
}

// markDirtyRow records one row id into the dirty set (commitMu held,
// or single-goroutine recovery).
func (td *tableData) markDirtyRow(id RowID) {
	if td.dirtyRows == nil {
		td.dirtyRows = make(map[RowID]struct{})
	}
	td.dirtyRows[id] = struct{}{}
}

// Database is an in-memory relational database instance: a schema plus
// a versioned row store, indexes and transaction support.
//
// # Concurrency
//
// The engine is multi-writer, multi-reader with snapshot isolation and
// first-updater-wins write-write conflict detection. Any number of
// transactions may be open at once (Begin/Txn); each write claims its
// row under the structural latch, conflicting claims fail fast with
// ErrWriteConflict (no waiting, hence no deadlocks), and commits
// publish under a separate short commit latch — so independent
// transactions execute their probes, checks and row operations in
// parallel and serialize only for the microseconds of stamping and the
// shared write-ahead-log flush (which CommitGroup amortizes over
// concurrently committing transactions).
//
// The structural latch (mu) protects the row maps, order slices and
// index buckets. Writers hold it for one row operation; readers hold
// it while collecting structure references and never across callbacks,
// so reader and writer critical sections are both short and nested
// acquisition cannot occur.
//
// Consistency is layered on top by versioning. db.Snapshot() pins an
// immutable O(1) point-in-time view. Reads directly on the Database
// are "latest committed" reads: they resolve version chains at the
// current commit sequence, so uncommitted transaction state is never
// visible through them. A transaction's own probes read through the
// Txn (also a Reader), which overlays the transaction's writes on the
// snapshot pinned at its Begin.
//
// Old versions are retained until no live snapshot or transaction can
// see them and are then freed by Reclaim (piggybacked on commits and
// optionally run by a background reclaimer, see StartReclaimer).
type Database struct {
	schema    *Schema
	tables    map[string]*tableData
	nextRowID RowID
	// rowIDStride spaces allocated row ids (default 1). A shard group
	// gives shard i the progression i+1, i+1+N, i+1+2N, ... so ids are
	// globally unique and a row's shard is recoverable from its id
	// (see SetRowIDAlloc).
	rowIDStride RowID

	// mu is the structural latch protecting the row maps, order slices
	// and index buckets. Held per row operation, never across a
	// statement or transaction.
	mu sync.RWMutex

	// commitMu serializes the publish phase of commits: assigning
	// commit sequences, replacing claim stamps and flushing the
	// write-ahead log. It is never held during a transaction's reads,
	// probes or row operations — only for the stamping walk itself.
	commitMu sync.Mutex

	// commitSeq is the last committed sequence number; snapshots and
	// transactions pin it. Commits advance it after all their version
	// stamps are placed, which is what makes each commit atomic to
	// concurrent snapshot readers.
	commitSeq atomic.Uint64

	// stampSeq is the last commit sequence ASSIGNED, always >= commitSeq.
	// Under the pipelined commit path a group's sequences are assigned
	// and its claim stamps replaced under commitMu (advancing stampSeq),
	// while commitSeq — the visibility gate — advances only after the
	// group's WAL record is fsynced, in strict group order. Between the
	// two, the group's versions exist but are invisible (their begins
	// exceed every reader's pinned sequence). Sequences of groups that
	// fail or abort after stamping are never reissued; recovery's replay
	// filter makes the gaps harmless.
	stampSeq atomic.Uint64

	// nextTxnID allocates transaction ids (claims embed them).
	nextTxnID atomic.Uint64

	// txnMu guards the active-transaction registry. The reclaim horizon
	// is the minimum over registered read sequences, so registering a
	// transaction and truncating version chains cannot interleave.
	txnMu sync.Mutex
	txns  map[*Txn]struct{}

	// snapMu guards the live-snapshot registry. Reclaim computes the
	// oldest pinned sequence under it, so registering a snapshot and
	// truncating version chains cannot interleave.
	snapMu sync.Mutex
	snaps  map[*Snapshot]struct{}

	snapshotsOpened   atomic.Int64
	versionsReclaimed atomic.Int64
	reclaims          atomic.Int64
	txnsActive        atomic.Int64
	txnsStarted       atomic.Int64
	conflicts         atomic.Int64
	groupCommits      atomic.Int64
	groupedTxns       atomic.Int64

	// versionsSinceReclaim counts versions created or killed since the
	// last reclaim; commits piggyback a reclaim pass when it overflows.
	versionsSinceReclaim atomic.Int64

	// StatementsExecuted counts DML statements since creation; the
	// benchmark harness reads it to report probe/update counts. Updated
	// atomically; read it with StatementsExecutedTotal when other
	// goroutines may be mutating the database.
	StatementsExecuted int64

	// redo is the write-ahead log buffer. Every DML statement appends a
	// statement record and every touched row appends a row image, as a
	// disk-backed engine would; reads never log. This asymmetry between
	// DML and probe queries is what the outside strategy exploits
	// (Fig. 17: a suppressed zero-row DELETE also skips its logging).
	// The buffer has its own latch (redoMu) because appenders hold the
	// structural latch while committers flush under the commit latch —
	// without its own guard the two would race. redoOps and redoBytes
	// are the cumulative record/byte counters, maintained atomically so
	// statistics reads never block.
	redoMu      sync.Mutex
	redo        []byte
	redoOps     atomic.Int64
	redoBytes   atomic.Int64
	redoFlushes atomic.Int64

	// wal is the durable write-ahead log, attached by OpenWAL; nil keeps
	// the engine fully in-memory (the redo buffer above then only models
	// flush cost). When set, CommitGroup appends one fsynced record per
	// group before publishing, and walRecoveredTxns remembers how many
	// committed transactions the attach-time recovery replayed.
	wal              *WAL
	walRecoveredTxns atomic.Int64
}

// Reader is the read-only surface shared by a live *Database, a pinned
// *Snapshot and an open *Txn. Layers that only consume data (the
// sqlexec SELECT machinery, the plan layer's probes, the server's
// statistics handlers) take a Reader so the same code path runs
// against the latest committed state, an immutable point-in-time view,
// or a transaction's own overlay.
type Reader interface {
	// Schema returns the database schema.
	Schema() *Schema
	// Get returns a copy of the row with the given id.
	Get(table string, id RowID) (*Row, error)
	// Scan visits every visible row of a table in insertion order. The
	// callback must not mutate the row; returning false stops the scan.
	Scan(table string, fn func(*Row) bool) error
	// LookupEqual returns the ids of visible rows whose named columns
	// equal the given values.
	LookupEqual(table string, columns []string, values []Value) ([]RowID, error)
	// ValuesByName returns a visible row's values keyed by column name.
	ValuesByName(table string, id RowID) (map[string]Value, error)
	// HasIndexOn reports whether an index covers exactly the named
	// columns.
	HasIndexOn(table string, columns []string) bool
	// RowCount returns the number of visible rows in the table.
	RowCount(table string) int
	// TotalRows returns the number of visible rows across all tables.
	TotalRows() int
}

var (
	_ Reader = (*Database)(nil)
	_ Reader = (*Snapshot)(nil)
)

// StatementsExecutedTotal atomically reads the DML statement counter.
func (db *Database) StatementsExecutedTotal() int64 {
	return atomic.LoadInt64(&db.StatementsExecuted)
}

// RedoBytes atomically reads the cumulative number of bytes appended to
// the write-ahead log since creation (flush truncations do not reset
// it).
func (db *Database) RedoBytes() int64 { return db.redoBytes.Load() }

// RedoRecords atomically reads the number of log records appended.
func (db *Database) RedoRecords() int64 { return db.redoOps.Load() }

// RedoFlushes atomically reads the number of write-ahead-log flushes:
// one per commit group (the cost group commit amortizes over
// concurrently committing transactions) plus buffer-overflow flushes.
func (db *Database) RedoFlushes() int64 { return db.redoFlushes.Load() }

// flushRedo models a log flush: the buffer is forced out (truncated
// here) and the flush counter advances. Called once per commit group
// and when the buffer overflows.
func (db *Database) flushRedo() {
	db.redoMu.Lock()
	db.flushRedoLocked()
	db.redoMu.Unlock()
}

// flushRedoLocked is flushRedo for callers already holding redoMu.
func (db *Database) flushRedoLocked() {
	db.redoFlushes.Add(1)
	db.redo = db.redo[:0]
}

// flushWAL makes a commit group durable: the model redo buffer flushes
// (preserving the cost accounting the benchmarks read) and, when a
// durable WAL is attached, the group's record is appended and fsynced.
// Called under commitMu before any of the group's stamps publish; an
// error here means NONE of the group's transactions may commit.
func (db *Database) flushWAL(xid uint64, live []*Txn) error {
	db.flushRedo()
	if db.wal == nil {
		return nil
	}
	return db.wal.appendGroup(xid, live)
}

// DBStats is a point-in-time snapshot of the database's statistics
// counters. Every field is read atomically (or under its own short
// mutex), so a snapshot may be taken while other goroutines are
// mutating the database.
type DBStats struct {
	// StatementsExecuted counts DML statements since creation.
	StatementsExecuted int64 `json:"statements_executed"`
	// RedoRecords counts write-ahead log records appended.
	RedoRecords int64 `json:"redo_records"`
	// RedoBytes counts cumulative write-ahead log bytes appended.
	RedoBytes int64 `json:"redo_bytes"`
	// RedoFlushes counts write-ahead log flushes (one per commit group).
	RedoFlushes int64 `json:"redo_flushes"`
	// SnapshotsActive is the number of currently pinned snapshots.
	SnapshotsActive int64 `json:"snapshots_active"`
	// SnapshotsOpened counts snapshots ever pinned.
	SnapshotsOpened int64 `json:"snapshots_opened"`
	// VersionsReclaimed counts row versions freed by the reclaimer.
	VersionsReclaimed int64 `json:"versions_reclaimed"`
	// Reclaims counts reclaim passes (inline and background).
	Reclaims int64 `json:"reclaims"`
	// CommitSeq is the last committed sequence number.
	CommitSeq uint64 `json:"commit_seq"`
	// TxnsActive is the number of transactions currently open.
	TxnsActive int64 `json:"txns_active"`
	// TxnsStarted counts transactions ever begun (including the
	// implicit single-statement transactions of autocommit DML).
	TxnsStarted int64 `json:"txns_started"`
	// Conflicts counts write-write conflicts detected
	// (first-updater-wins losers).
	Conflicts int64 `json:"conflicts"`
	// GroupCommits counts commit groups published (each paying one
	// write-ahead-log flush).
	GroupCommits int64 `json:"group_commits"`
	// GroupedTxns counts transactions committed through those groups;
	// GroupedTxns/GroupCommits is the mean commit-coalescing factor.
	GroupedTxns int64 `json:"grouped_txns"`
	// WALSegments is the number of live write-ahead log segment files
	// (sealed-but-not-checkpointed plus the active one); zero without a
	// durable WAL attached.
	WALSegments int64 `json:"wal_segments"`
	// WALBytes counts bytes appended to WAL segment files.
	WALBytes int64 `json:"wal_bytes"`
	// Fsyncs counts fsync calls the WAL issued (commit-group record
	// syncs, segment seals and checkpoint installs). Fsyncs per
	// GroupCommits under load shows group commit's coalescing.
	Fsyncs int64 `json:"fsyncs_total"`
	// Checkpoints counts durable checkpoints installed.
	Checkpoints int64 `json:"checkpoints_total"`
	// RecoveryReplayedTxns is how many committed transactions the last
	// OpenWAL recovery replayed from segments (excluding checkpoint rows).
	RecoveryReplayedTxns int64 `json:"recovery_replayed_txns"`
	// WALRecycledSegments counts active-segment opens served from the
	// recycle free list instead of fresh file creation.
	WALRecycledSegments int64 `json:"wal_recycled_segments"`
	// WALPipelineDepth is the number of commit groups currently queued or
	// in flight in the WAL writer stage (always 0 when the pipeline is
	// disabled or no WAL is attached).
	WALPipelineDepth int64 `json:"wal_pipeline_depth"`
	// CheckpointDeltaChainLen is the number of incremental checkpoint
	// (delta) files currently layered on the base image.
	CheckpointDeltaChainLen int64 `json:"checkpoint_delta_chain_len"`
	// CheckpointLastPauseNs is the duration of the most recent checkpoint
	// pass in nanoseconds (the stall its triggering caller observed).
	CheckpointLastPauseNs int64 `json:"checkpoint_last_pause_ns"`
	// PagecacheHits counts buffer-pool page reads served from memory.
	PagecacheHits int64 `json:"pagecache_hits"`
	// PagecacheMisses counts buffer-pool page reads that loaded from disk.
	PagecacheMisses int64 `json:"pagecache_misses"`
	// PagecacheEvictions counts frames evicted to stay within the budget.
	PagecacheEvictions int64 `json:"pagecache_evictions"`
	// PagesTotal is the number of live pages in the checkpoint page store.
	PagesTotal int64 `json:"pages_total"`
	// CompactionPagesWritten counts pages written by checkpoint passes
	// (dirty rows plus survivors) — the O(dirty-pages) compaction work.
	CompactionPagesWritten int64 `json:"compaction_pages_written"`
}

// Stats snapshots the statistics counters atomically.
func (db *Database) Stats() DBStats {
	db.snapMu.Lock()
	active := int64(len(db.snaps))
	db.snapMu.Unlock()
	st := DBStats{
		StatementsExecuted: db.StatementsExecutedTotal(),
		RedoRecords:        db.redoOps.Load(),
		RedoBytes:          db.redoBytes.Load(),
		RedoFlushes:        db.redoFlushes.Load(),
		SnapshotsActive:    active,
		SnapshotsOpened:    db.snapshotsOpened.Load(),
		VersionsReclaimed:  db.versionsReclaimed.Load(),
		Reclaims:           db.reclaims.Load(),
		CommitSeq:          db.commitSeq.Load(),
		TxnsActive:         db.txnsActive.Load(),
		TxnsStarted:        db.txnsStarted.Load(),
		Conflicts:          db.conflicts.Load(),
		GroupCommits:       db.groupCommits.Load(),
		GroupedTxns:        db.groupedTxns.Load(),
	}
	if w := db.wal; w != nil {
		st.WALSegments = w.Segments()
		st.WALBytes = w.bytes.Load()
		st.Fsyncs = w.fsyncs.Load()
		st.Checkpoints = w.checkpoints.Load()
		st.RecoveryReplayedTxns = db.walRecoveredTxns.Load()
		st.WALRecycledSegments = w.recycled.Load()
		st.WALPipelineDepth = w.pipeDepth.Load()
		st.CheckpointDeltaChainLen = w.chainLen.Load()
		st.CheckpointLastPauseNs = w.lastCkptPauseNs.Load()
		if p := w.pager; p != nil {
			ps := p.pool.Stats()
			st.PagecacheHits = int64(ps.Hits)
			st.PagecacheMisses = int64(ps.Misses)
			st.PagecacheEvictions = int64(ps.Evictions)
			ss := p.store.Stats()
			st.PagesTotal = int64(ss.PagesTotal)
			st.CompactionPagesWritten = int64(ss.PagesWritten)
		}
	}
	return st
}

// appendRedo logs one record. The buffer is truncated periodically so
// long benchmark runs do not grow memory without bound; the append cost
// (the part a real engine pays per statement) is preserved.
func (db *Database) appendRedo(kind byte, table string, id RowID, values []Value) {
	db.redoOps.Add(1)
	db.redoMu.Lock()
	n := len(db.redo)
	db.redo = append(db.redo, kind)
	db.redo = append(db.redo, table...)
	var buf [8]byte
	v := uint64(id)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	db.redo = append(db.redo, buf[:]...)
	for _, val := range values {
		db.redo = append(db.redo, val.EncodeKey()...)
	}
	db.redoBytes.Add(int64(len(db.redo) - n))
	if len(db.redo) > 1<<20 {
		db.flushRedoLocked() // buffer overflow forces a flush
	}
	db.redoMu.Unlock()
}

// LogStatement appends a statement-level WAL record, the bookkeeping a
// disk-backed engine pays for every DML statement it executes — even
// one that ends up matching zero rows. Probe queries never log; this is
// the cost the outside strategy saves by suppressing empty deletes.
func (db *Database) LogStatement(sql string) {
	db.redoOps.Add(1)
	db.redoBytes.Add(int64(1 + len(sql)))
	db.redoMu.Lock()
	db.redo = append(db.redo, 'S')
	db.redo = append(db.redo, sql...)
	if len(db.redo) > 1<<20 {
		db.flushRedoLocked()
	}
	db.redoMu.Unlock()
}

// NewDatabase creates an empty database for the schema, building hash
// indexes for every primary key, UNIQUE column and foreign key.
func NewDatabase(schema *Schema) *Database {
	return &Database{
		schema:      schema,
		tables:      buildTableStorage(schema),
		nextRowID:   1,
		rowIDStride: 1,
		snaps:       make(map[*Snapshot]struct{}),
		txns:        make(map[*Txn]struct{}),
	}
}

// SetRowIDAlloc partitions row-id allocation: subsequent inserts draw
// ids from the arithmetic progression first, first+stride, first+2N, …
// A shard group calls it with (i+1, N) on shard i so ids are globally
// unique across shards and (id-1) mod N recovers a row's shard — the
// point-lookup fast path. Safe to call again after WAL recovery (which
// resets the id counter from replayed rows): the counter advances to
// the smallest progression member not below its current value, so ids
// are never reused.
func (db *Database) SetRowIDAlloc(first, stride RowID) {
	if stride < 1 {
		stride = 1
	}
	if first < 1 {
		first = 1
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.rowIDStride = stride
	next := db.nextRowID
	if next < first {
		next = first
	}
	if rem := (next - first) % stride; rem != 0 {
		next += stride - rem
	}
	db.nextRowID = next
}

// buildTableStorage constructs empty per-table storage with hash
// indexes for every primary key, UNIQUE column and foreign key. Shared
// by NewDatabase and WAL recovery (which rebuilds storage from scratch
// before replaying the checkpoint and log).
func buildTableStorage(schema *Schema) map[string]*tableData {
	tables := make(map[string]*tableData, len(schema.Tables()))
	for _, t := range schema.Tables() {
		td := &tableData{def: t, rows: make(map[RowID]*rowVersion)}
		if len(t.PrimaryKey) > 0 {
			cols := mustColumnIndexes(t, t.PrimaryKey)
			td.pkIndex = newHashIndex(indexName(t.Name, t.PrimaryKey), cols, true)
			td.indexes = append(td.indexes, td.pkIndex)
		}
		for _, c := range t.Columns {
			if c.Unique {
				cols := mustColumnIndexes(t, []string{c.Name})
				td.indexes = append(td.indexes, newHashIndex(indexName(t.Name, []string{c.Name}), cols, true))
			}
		}
		for _, fk := range t.ForeignKeys {
			cols := mustColumnIndexes(t, fk.Columns)
			if !hasIndexOn(td, cols) {
				td.indexes = append(td.indexes, newHashIndex(indexName(t.Name, fk.Columns), cols, false))
			}
		}
		tables[strings.ToLower(t.Name)] = td
	}
	return tables
}

func hasIndexOn(td *tableData, cols []int) bool {
	for _, ix := range td.indexes {
		if ix.matchesColumns(cols) {
			return true
		}
	}
	return false
}

func mustColumnIndexes(t *TableDef, names []string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		idx, ok := t.ColumnIndex(n)
		if !ok {
			panic(fmt.Sprintf("relational: table %s has no column %s", t.Name, n))
		}
		out[i] = idx
	}
	return out
}

// Schema returns the database schema.
func (db *Database) Schema() *Schema { return db.schema }

func (db *Database) tableData(name string) (*tableData, error) {
	td, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	return td, nil
}

// RowCount returns the number of rows a latest writer-side count sees
// (an O(1) approximation that includes uncommitted writes; precise
// counts go through a Snapshot or Txn).
func (db *Database) RowCount(table string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, err := db.tableData(table)
	if err != nil {
		return 0
	}
	return td.live
}

// TotalRows returns the number of rows across all tables, used by the
// benchmarks to report effective database size.
func (db *Database) TotalRows() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, td := range db.tables {
		n += td.live
	}
	return n
}

// Get returns a copy of the row with the given id, as of the latest
// committed state. Visibility is resolved under the read latch: an
// unregistered committed-state reader must not race the reclaimer
// (an exclusive-latch writer), which may otherwise truncate the very
// chain tail the resolution is about to walk.
func (db *Database) Get(table string, id RowID) (*Row, error) {
	db.mu.RLock()
	td, err := db.tableData(table)
	if err != nil {
		db.mu.RUnlock()
		return nil, err
	}
	v := td.rows[id].visibleAt(db.commitSeq.Load())
	if v != nil {
		// Resolve values before dropping the latch: an unregistered
		// reader's page fault must run under db.mu so it cannot race a
		// quarantined slot release (pager.go contract).
		r := Row{ID: v.row.ID, Values: db.versionValues(td, v)}
		db.mu.RUnlock()
		return r.clone(), nil
	}
	db.mu.RUnlock()
	return nil, fmt.Errorf("%w: %s rowid %d", ErrNoSuchRow, table, id)
}

// ScanIDs returns the committed-visible row ids of a table in insertion
// order.
func (db *Database) ScanIDs(table string) []RowID {
	vs, err := db.collectVisible(table)
	if err != nil {
		return nil
	}
	out := make([]RowID, 0, len(vs))
	for _, r := range vs {
		out = append(out, r.ID)
	}
	return out
}

// compactLocked drops reclaimed ids from the order slice. Called by the
// reclaimer (a writer) only; readers filter invisible ids instead.
func (td *tableData) compactLocked() {
	if !td.dirty {
		return
	}
	live := td.order[:0]
	for _, id := range td.order {
		if _, ok := td.rows[id]; ok {
			live = append(live, id)
		}
	}
	td.order = live
	td.dirty = false
}

// collectHeads gathers the version-chain heads of a table in insertion
// order under the read latch. Row content is immutable and the chain
// links are atomics, so callers resolve visibility and run callbacks
// after the latch is released — scans never hold a lock across user
// code, which is what lets a reader interleave with writers without
// nested-latch deadlocks.
func (db *Database) collectHeads(table string) ([]*rowVersion, *tableData, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, err := db.tableData(table)
	if err != nil {
		return nil, nil, err
	}
	out := make([]*rowVersion, 0, len(td.order))
	for _, id := range td.order {
		if v, ok := td.rows[id]; ok {
			out = append(out, v)
		}
	}
	return out, td, nil
}

// collectVisible gathers, under the read latch, the rows of a table
// visible at the current commit sequence, in insertion order.
// Resolving while the latch is held is what makes unregistered
// committed-state reads safe against the reclaimer: Reclaim is an
// exclusive-latch writer, so it cannot truncate a chain tail between
// the head fetch and the visibility walk. Demoted stubs fault their
// values in here for the same reason — unregistered page faults must
// not race a quarantined slot release. The returned rows are immutable,
// so callers run callbacks after release.
func (db *Database) collectVisible(table string) ([]*Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, err := db.tableData(table)
	if err != nil {
		return nil, err
	}
	seq := db.commitSeq.Load()
	out := make([]*Row, 0, len(td.order))
	for _, id := range td.order {
		if v := td.rows[id].visibleAt(seq); v != nil {
			if v.row.Values == nil {
				out = append(out, &Row{ID: v.row.ID, Values: db.versionValues(td, v)})
			} else {
				out = append(out, &v.row)
			}
		}
	}
	return out, nil
}

// Scan visits every committed-visible row of a table in insertion
// order. The callback receives the stored row; it must not mutate it.
// Returning false stops the scan. The latch is not held while the
// callback runs.
func (db *Database) Scan(table string, fn func(*Row) bool) error {
	vs, err := db.collectVisible(table)
	if err != nil {
		return err
	}
	for _, r := range vs {
		if !fn(r) {
			return nil
		}
	}
	return nil
}

// LookupEqual returns the ids of committed-visible rows whose named
// columns equal the given values, using a hash index when one covers
// the columns and falling back to a scan otherwise. The returned ids
// are deterministic.
func (db *Database) LookupEqual(table string, columns []string, values []Value) ([]RowID, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	seq := db.commitSeq.Load() // under the latch: reclaim cannot outrun it
	return db.lookupEqualVisLocked(table, columns, values, func(head *rowVersion) *rowVersion {
		return head.visibleAt(seq)
	})
}

// lookupEqualVisLocked is the shared lookup core: candidates come from
// a covering index (or the order slice), each candidate's head is
// resolved through the caller's visibility function, and the resolved
// version's values are re-verified against the probe (index buckets may
// hold entries for versions the caller cannot see). Callers hold at
// least the read latch.
func (db *Database) lookupEqualVisLocked(table string, columns []string, values []Value, resolve func(*rowVersion) *rowVersion) ([]RowID, error) {
	td, err := db.tableData(table)
	if err != nil {
		return nil, err
	}
	cols := make([]int, len(columns))
	for i, c := range columns {
		idx, ok := td.def.ColumnIndex(c)
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, table, c)
		}
		cols[i] = idx
	}
	matches := func(head *rowVersion) bool {
		v := resolve(head)
		if v == nil {
			return false
		}
		vals := db.versionValues(td, v) // may fault; caller holds db.mu
		for i, c := range cols {
			if !vals[c].Equal(values[i]) {
				return false
			}
		}
		return true
	}
	if ix := td.findIndex(cols); ix != nil {
		ordered := reorderForIndex(ix, cols, values)
		var out []RowID
		for _, id := range ix.lookup(ordered) {
			if head, ok := td.rows[id]; ok && matches(head) {
				out = append(out, id)
			}
		}
		return out, nil
	}
	// Fallback scan.
	var out []RowID
	for _, id := range td.order {
		if head, ok := td.rows[id]; ok && matches(head) {
			out = append(out, id)
		}
	}
	return out, nil
}

// HasIndexOn reports whether an index covers exactly the named columns.
// The data-driven strategies consult this to mimic the paper's
// observation that Oracle indexes keys/foreign keys but not materialized
// probe results. Index structure is fixed at creation, so no latch is
// needed.
func (db *Database) HasIndexOn(table string, columns []string) bool {
	td, err := db.tableData(table)
	if err != nil {
		return false
	}
	cols := make([]int, len(columns))
	for i, c := range columns {
		idx, ok := td.def.ColumnIndex(c)
		if !ok {
			return false
		}
		cols[i] = idx
	}
	return td.findIndex(cols) != nil
}

func (td *tableData) findIndex(cols []int) *hashIndex {
	for _, ix := range td.indexes {
		if ix.matchesColumns(cols) {
			return ix
		}
	}
	return nil
}

func reorderForIndex(ix *hashIndex, cols []int, values []Value) []Value {
	ordered := make([]Value, len(ix.columns))
	for i, ic := range ix.columns {
		for j, qc := range cols {
			if qc == ic {
				ordered[i] = values[j]
				break
			}
		}
	}
	return ordered
}

// coerceRow converts a named-value map to positional values, applying
// type coercion and defaulting missing columns to NULL.
func (td *tableData) coerceRow(values map[string]Value) ([]Value, error) {
	out := make([]Value, len(td.def.Columns))
	for i := range out {
		out[i] = Null()
	}
	for name, v := range values {
		idx, ok := td.def.ColumnIndex(name)
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, td.def.Name, name)
		}
		coerced, err := v.CoerceTo(td.def.Columns[idx].Type)
		if err != nil {
			return nil, constraintErr(ErrTypeMismatch, td.def.Name, td.def.Columns[idx].Name, err.Error())
		}
		out[idx] = coerced
	}
	return out, nil
}

// checkLocalConstraints enforces NOT NULL and CHECK column constraints.
func (td *tableData) checkLocalConstraints(values []Value) error {
	for i, c := range td.def.Columns {
		v := values[i]
		if v.IsNull() && td.def.IsNotNullColumn(c.Name) {
			return constraintErr(ErrNotNull, td.def.Name, c.Name, "")
		}
		if c.NotNull && !v.IsNull() && v.Kind == KindString && strings.TrimSpace(v.Str) == "" {
			// Oracle treats empty strings as NULL; the paper's u1
			// (empty <title/>) violates NOT NULL through this rule.
			return constraintErr(ErrNotNull, td.def.Name, c.Name, "empty string treated as NULL")
		}
		for _, chk := range c.Checks {
			if !chk.Holds(v) {
				return constraintErr(ErrCheck, td.def.Name, c.Name, chk.String()+" failed for "+v.String())
			}
		}
	}
	return nil
}

// writeConflict counts and wraps a first-updater-wins loss.
func (db *Database) writeConflict(table string, detail string) error {
	db.conflicts.Add(1)
	return fmt.Errorf("%w: table %s: %s", ErrWriteConflict, table, detail)
}

// writeTarget resolves the version a write by t addresses: the row's
// current head when it is writable by t. It returns ErrWriteConflict
// when the head is claimed by another in-flight transaction or was
// written by a transaction that committed after t's read sequence
// (first-updater-wins), and (nil, nil) when the row is simply not a
// live row from t's perspective (deleted before its snapshot, or
// deleted by t itself). Callers hold the write latch.
func (db *Database) writeTarget(t *Txn, table string, id RowID, head *rowVersion) (*rowVersion, error) {
	if head == nil {
		return nil, nil
	}
	b := head.begin.Load()
	if isTxnMark(b) {
		if markOwner(b) != t.id {
			return nil, db.writeConflict(table, fmt.Sprintf("rowid %d is claimed by an in-flight transaction", id))
		}
		if isTxnMark(head.end.Load()) {
			return nil, nil // t already deleted its own version
		}
		return head, nil
	}
	e := head.end.Load()
	if isTxnMark(e) {
		if markOwner(e) == t.id {
			return nil, nil // t delete-stamped the committed version
		}
		return nil, db.writeConflict(table, fmt.Sprintf("rowid %d is claimed by an in-flight transaction", id))
	}
	if e != liveSeq {
		if e > t.readSeq {
			// Deleted by a transaction that committed after t began:
			// conflict, so a retry re-probes against the new state
			// instead of silently acting on a vanished row.
			return nil, db.writeConflict(table, fmt.Sprintf("rowid %d was deleted by a newer committed transaction", id))
		}
		return nil, nil // committed-dead before t's snapshot
	}
	if b > t.readSeq {
		return nil, db.writeConflict(table, fmt.Sprintf("rowid %d was modified by a newer committed transaction", id))
	}
	return head, nil
}

// checkUniqueness enforces the primary key and UNIQUE columns for a
// write by t. exclude skips one row id (the row being updated, so it
// does not collide with itself). A duplicate held by the committed
// state or by t itself is a constraint violation; a duplicate held (or
// being released) by another in-flight transaction is a write-write
// conflict — the retry resolves against that transaction's outcome.
// Callers hold the write latch.
func (db *Database) checkUniqueness(t *Txn, td *tableData, values []Value, exclude RowID) error {
	for _, ix := range td.indexes {
		if !ix.unique {
			continue
		}
		key, ok := ix.keyFor(values)
		if !ok {
			continue
		}
		dupErr := func() error {
			kind := ErrUnique
			if ix == td.pkIndex {
				kind = ErrPrimaryKey
			}
			names := make([]string, len(ix.columns))
			for i, c := range ix.columns {
				names[i] = td.def.Columns[c].Name
			}
			return constraintErr(kind, td.def.Name, strings.Join(names, ","), "duplicate key")
		}
		match := func(v *rowVersion) bool {
			vals := db.versionValues(td, v) // may fault; write latch held
			for _, c := range ix.columns {
				if !vals[c].Equal(values[c]) {
					return false
				}
			}
			return true
		}
		for id := range ix.entries[key] {
			if id == exclude {
				continue
			}
			head := td.rows[id]
			// Walk from the head to the newest committed version: the
			// in-flight layer decides conflicts, the committed layer
			// decides duplicates, and older history is irrelevant.
			for v := head; v != nil; v = v.prev.Load() {
				b := v.begin.Load()
				e := v.end.Load()
				if isTxnMark(b) {
					if markOwner(b) == t.id {
						if e == liveSeq && match(v) {
							return dupErr() // t's own uncommitted duplicate
						}
						continue // superseded/deleted own version
					}
					if match(v) {
						return db.writeConflict(td.def.Name,
							fmt.Sprintf("duplicate key inserted by an in-flight transaction (rowid %d)", id))
					}
					continue
				}
				// Newest committed version: judge and stop walking.
				if e == liveSeq {
					if match(v) {
						if b > t.readSeq {
							// Stamped after t's snapshot — under the pipelined
							// commit path possibly not even published yet (and
							// still able to roll back on an fsync failure), so
							// never a hard duplicate: first-updater-wins, the
							// retry resolves against the final outcome.
							return db.writeConflict(td.def.Name,
								fmt.Sprintf("duplicate key committed by a newer transaction (rowid %d)", id))
						}
						return dupErr()
					}
				} else if isTxnMark(e) && markOwner(e) != t.id && match(v) {
					// Committed-live but claimed by another in-flight
					// transaction (delete or key change): first-updater-wins.
					return db.writeConflict(td.def.Name,
						fmt.Sprintf("key held by rowid %d is being released by an in-flight transaction", id))
				}
				break
			}
		}
	}
	return nil
}

// checkForeignKeys enforces that every non-NULL FK value references a
// row the writing transaction can see. (Like classic snapshot
// isolation without FK locks, a concurrently committed delete of the
// parent can produce write skew; ROADMAP records the deferral.)
func (db *Database) checkForeignKeys(t *Txn, td *tableData, values []Value) error {
	for _, fk := range td.def.ForeignKeys {
		cols := mustColumnIndexes(td.def, fk.Columns)
		vals := make([]Value, len(cols))
		anyNull := false
		for i, c := range cols {
			vals[i] = values[c]
			if vals[i].IsNull() {
				anyNull = true
			}
		}
		if anyNull {
			continue // SQL: NULL FK components opt out of the check
		}
		refIDs, err := db.lookupEqualVisLocked(fk.RefTable, fk.RefColumns, vals, t.resolve)
		if err != nil {
			return err
		}
		if len(refIDs) == 0 {
			return constraintErr(ErrForeignKey, td.def.Name, strings.Join(fk.Columns, ","),
				fmt.Sprintf("no row in %s matches", fk.RefTable))
		}
	}
	return nil
}

// Insert adds a row in an implicit single-statement transaction
// (autocommit). See Txn.Insert for the transactional form.
func (db *Database) Insert(table string, values map[string]Value) (RowID, error) {
	t := db.Begin()
	id, err := db.txnInsert(t, table, values)
	if err != nil {
		_ = t.Rollback()
		return 0, err
	}
	return id, t.Commit()
}

// txnInsert is the insert core, writing through transaction t.
func (db *Database) txnInsert(t *Txn, table string, values map[string]Value) (RowID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	td, err := db.tableData(table)
	if err != nil {
		return 0, err
	}
	atomic.AddInt64(&db.StatementsExecuted, 1)
	row, err := td.coerceRow(values)
	if err != nil {
		return 0, err
	}
	if err := td.checkLocalConstraints(row); err != nil {
		return 0, err
	}
	if err := db.checkUniqueness(t, td, row, 0); err != nil {
		return 0, err
	}
	if err := db.checkForeignKeys(t, td, row); err != nil {
		return 0, err
	}
	id := db.nextRowID
	db.nextRowID += db.rowIDStride
	v := newVersion(Row{ID: id, Values: row}, txnMark(t.id))
	td.rows[id] = v
	td.order = append(td.order, id)
	td.live++
	db.versionsSinceReclaim.Add(1)
	for _, ix := range td.indexes {
		ix.insert(id, row)
	}
	db.appendRedo('I', table, id, row)
	t.recordInsert(table, id, v)
	return id, nil
}

// Delete removes the row with the given id in an implicit
// single-statement transaction (autocommit), applying the delete policy
// of every foreign key referencing this table: CASCADE deletes the
// referencing rows transitively, SET NULL nulls the referencing columns
// (rejecting if they are NOT NULL), RESTRICT rejects the delete. The
// statement is atomic: a rejected cascade leaves nothing deleted. It
// returns the number of rows deleted (including cascades). See
// Txn.Delete for the transactional form.
func (db *Database) Delete(table string, id RowID) (int, error) {
	t := db.Begin()
	n, err := db.txnDelete(t, table, id)
	if err != nil {
		_ = t.Rollback()
		return 0, err
	}
	return n, t.Commit()
}

// txnDelete is the delete core, writing through transaction t.
func (db *Database) txnDelete(t *Txn, table string, id RowID) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	atomic.AddInt64(&db.StatementsExecuted, 1)
	return db.deleteRowLocked(t, table, id)
}

func (db *Database) deleteRowLocked(t *Txn, table string, id RowID) (int, error) {
	td, err := db.tableData(table)
	if err != nil {
		return 0, err
	}
	// Materialize a demoted head before taking its pointer: the claim
	// stamps and undo log must land on the version that stays installed.
	db.materializeLocked(td, id)
	v, err := db.writeTarget(t, table, id, td.rows[id])
	if err != nil {
		return 0, err
	}
	if v == nil {
		return 0, nil // DELETE of a missing row is a no-op warning, not an error
	}
	deleted := 0
	// Resolve referential actions before removing the row so RESTRICT
	// can reject atomically within this statement.
	for _, ref := range db.schema.ReferencingKeys(table) {
		refVals := make([]Value, len(ref.FK.RefColumns))
		skip := false
		for i, rc := range ref.FK.RefColumns {
			ci, ok := td.def.ColumnIndex(rc)
			if !ok {
				return deleted, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, table, rc)
			}
			refVals[i] = v.row.Values[ci]
			if refVals[i].IsNull() {
				skip = true
			}
		}
		if skip {
			continue
		}
		ids, err := db.lookupEqualVisLocked(ref.Table.Name, ref.FK.Columns, refVals, t.resolve)
		if err != nil {
			return deleted, err
		}
		if len(ids) == 0 {
			continue
		}
		switch ref.FK.OnDelete {
		case DeleteRestrict:
			return deleted, constraintErr(ErrRestrict, table, "",
				fmt.Sprintf("%d referencing rows in %s", len(ids), ref.Table.Name))
		case DeleteCascade:
			for _, rid := range ids {
				n, err := db.deleteRowLocked(t, ref.Table.Name, rid)
				deleted += n
				if err != nil {
					return deleted, err
				}
			}
		case DeleteSetNull:
			nulls := make(map[string]Value, len(ref.FK.Columns))
			for _, c := range ref.FK.Columns {
				nulls[c] = Null()
			}
			for _, rid := range ids {
				if err := db.updateRowLocked(t, ref.Table.Name, rid, nulls); err != nil {
					return deleted, err
				}
			}
		}
	}
	// The row may have been cascade-deleted through a cycle; re-check.
	v, err = db.writeTarget(t, table, id, td.rows[id])
	if err != nil {
		return deleted, err
	}
	if v == nil {
		return deleted, nil
	}
	// MVCC delete: claim the head with the transaction's end mark.
	// Index entries and the version itself stay until no reader can see
	// them; commit publishes the real sequence, the reclaimer frees
	// both.
	v.end.Store(txnMark(t.id))
	td.live--
	db.versionsSinceReclaim.Add(1)
	deleted++
	db.appendRedo('D', table, id, v.row.Values)
	t.recordDelete(table, id, v)
	return deleted, nil
}

// UpdateRow modifies the named columns of a row in an implicit
// single-statement transaction (autocommit), re-checking NOT NULL,
// CHECK, uniqueness and foreign keys for the new values. The previous
// values survive as an older version in the row's chain until no
// reader can see them. See Txn.UpdateRow for the transactional form.
func (db *Database) UpdateRow(table string, id RowID, changes map[string]Value) error {
	t := db.Begin()
	if err := db.txnUpdate(t, table, id, changes); err != nil {
		_ = t.Rollback()
		return err
	}
	return t.Commit()
}

// txnUpdate is the update core, writing through transaction t.
func (db *Database) txnUpdate(t *Txn, table string, id RowID, changes map[string]Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.updateRowLocked(t, table, id, changes)
}

func (db *Database) updateRowLocked(t *Txn, table string, id RowID, changes map[string]Value) error {
	td, err := db.tableData(table)
	if err != nil {
		return err
	}
	atomic.AddInt64(&db.StatementsExecuted, 1)
	db.materializeLocked(td, id) // see deleteRowLocked
	v, err := db.writeTarget(t, table, id, td.rows[id])
	if err != nil {
		return err
	}
	if v == nil {
		return fmt.Errorf("%w: %s rowid %d", ErrNoSuchRow, table, id)
	}
	newVals := make([]Value, len(v.row.Values))
	copy(newVals, v.row.Values)
	for name, val := range changes {
		idx, ok := td.def.ColumnIndex(name)
		if !ok {
			return fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, table, name)
		}
		coerced, err := val.CoerceTo(td.def.Columns[idx].Type)
		if err != nil {
			return constraintErr(ErrTypeMismatch, table, name, err.Error())
		}
		newVals[idx] = coerced
	}
	if err := td.checkLocalConstraints(newVals); err != nil {
		return err
	}
	if err := db.checkUniqueness(t, td, newVals, id); err != nil {
		return err
	}
	if err := db.checkForeignKeys(t, td, newVals); err != nil {
		return err
	}
	nv := newVersion(Row{ID: id, Values: newVals}, txnMark(t.id))
	nv.prev.Store(v)
	v.end.Store(txnMark(t.id))
	td.rows[id] = nv
	db.versionsSinceReclaim.Add(1)
	for _, ix := range td.indexes {
		ix.insert(id, newVals) // buckets are id-sets: unchanged keys dedupe
	}
	db.appendRedo('U', table, id, newVals)
	t.recordUpdate(table, id, nv)
	return nil
}

// removeVersionEntries drops a discarded version's index entries,
// keeping any entry whose key is still produced by a version remaining
// in the chain (kept, walked towards older). Used when rolling back an
// uncommitted version (invisible to everyone, so eager removal is
// safe) and by the reclaimer.
func removeVersionEntries(td *tableData, id RowID, dropped *rowVersion, kept *rowVersion) {
	for _, ix := range td.indexes {
		key, ok := ix.keyFor(dropped.row.Values)
		if !ok {
			continue
		}
		shared := false
		for k := kept; k != nil; k = k.prev.Load() {
			if kk, ok2 := ix.keyFor(k.row.Values); ok2 && kk == key {
				shared = true
				break
			}
		}
		if !shared {
			ix.removeKey(key, id)
		}
	}
}

// rowValues keys a fetched row's values by the table's column names;
// the shared tail of every reader's ValuesByName.
func (db *Database) rowValues(table string, r *Row) (map[string]Value, error) {
	td, err := db.tableData(table)
	if err != nil {
		return nil, err
	}
	out := make(map[string]Value, len(r.Values))
	for i, c := range td.def.Columns {
		out[c.Name] = r.Values[i]
	}
	return out, nil
}

// ValuesByName returns a committed-visible row's values keyed by column
// name.
func (db *Database) ValuesByName(table string, id RowID) (map[string]Value, error) {
	r, err := db.Get(table, id)
	if err != nil {
		return nil, err
	}
	return db.rowValues(table, r)
}

// SortedTableNames returns the table names sorted alphabetically (used
// by deterministic dumps).
func (db *Database) SortedTableNames() []string {
	names := make([]string, 0, len(db.tables))
	for _, td := range db.tables {
		names = append(names, td.def.Name)
	}
	sort.Strings(names)
	return names
}
