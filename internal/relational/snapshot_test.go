package relational

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// acctSchema is a minimal two-column table for MVCC-focused tests:
// acct(id INT PK, val INT).
func acctSchema(t testing.TB) *Schema {
	t.Helper()
	acct, err := NewTableDef("acct", []Column{
		{Name: "id", Type: TypeInt},
		{Name: "val", Type: TypeInt},
	}, []string{"id"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSchema(acct)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newAcctDB(t testing.TB, rows int) (*Database, []RowID) {
	t.Helper()
	db := NewDatabase(acctSchema(t))
	ids := make([]RowID, rows)
	for i := 0; i < rows; i++ {
		id, err := db.Insert("acct", map[string]Value{"id": Int_(int64(i)), "val": Int_(10)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return db, ids
}

func sumVals(t testing.TB, rd Reader) int64 {
	t.Helper()
	var sum int64
	if err := rd.Scan("acct", func(r *Row) bool {
		sum += r.Values[1].Int
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return sum
}

func TestSnapshotSeesPointInTimeState(t *testing.T) {
	db, ids := newAcctDB(t, 3)
	snap := db.Snapshot()
	defer snap.Close()

	// Mutate after pinning: update, delete, insert.
	if err := db.UpdateRow("acct", ids[0], map[string]Value{"val": Int_(99)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete("acct", ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("acct", map[string]Value{"id": Int_(7), "val": Int_(70)}); err != nil {
		t.Fatal(err)
	}

	// The live view reflects everything.
	if got := db.RowCount("acct"); got != 3 {
		t.Fatalf("live RowCount = %d, want 3", got)
	}
	if got := sumVals(t, db); got != 99+10+70 {
		t.Fatalf("live sum = %d, want %d", got, 99+10+70)
	}

	// The snapshot still sees the pre-mutation state, through every
	// read path.
	if got := snap.RowCount("acct"); got != 3 {
		t.Fatalf("snapshot RowCount = %d, want 3", got)
	}
	if got := sumVals(t, snap); got != 30 {
		t.Fatalf("snapshot sum = %d, want 30", got)
	}
	r, err := snap.Get("acct", ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.Values[1].Int != 10 {
		t.Fatalf("snapshot Get saw updated value %d, want 10", r.Values[1].Int)
	}
	if _, err := snap.Get("acct", ids[1]); err != nil {
		t.Fatalf("snapshot Get of deleted row: %v, want pre-delete row", err)
	}
	// Index lookup resolves at the snapshot: the old value of ids[0] is
	// found, the new one is not, and the deleted row is still found.
	got, err := snap.LookupEqual("acct", []string{"id"}, []Value{Int_(0)})
	if err != nil || len(got) != 1 || got[0] != ids[0] {
		t.Fatalf("snapshot LookupEqual(id=0) = %v, %v", got, err)
	}
	got, err = snap.LookupEqual("acct", []string{"id"}, []Value{Int_(7)})
	if err != nil || len(got) != 0 {
		t.Fatalf("snapshot LookupEqual(id=7) = %v, %v; want empty (inserted after pin)", got, err)
	}
	if got := snap.ScanIDs("acct"); len(got) != 3 {
		t.Fatalf("snapshot ScanIDs = %v, want 3 ids", got)
	}
}

func TestSnapshotTransactionAtomicity(t *testing.T) {
	db, ids := newAcctDB(t, 2)

	pre := db.Snapshot()
	defer pre.Close()

	txn := db.Begin()
	if err := txn.UpdateRow("acct", ids[0], map[string]Value{"val": Int_(0)}); err != nil {
		t.Fatal(err)
	}
	// A snapshot pinned mid-transaction must not see the uncommitted
	// half of the transfer.
	mid := db.Snapshot()
	defer mid.Close()
	if got := sumVals(t, mid); got != 20 {
		t.Fatalf("mid-txn snapshot sum = %d, want 20 (uncommitted writes visible)", got)
	}
	// The transaction's own reads see its uncommitted half, overlaid on
	// the snapshot it pinned at Begin.
	if got := sumVals(t, txn); got != 10 {
		t.Fatalf("txn's own sum = %d, want 10 (own writes invisible to the writer)", got)
	}
	if err := txn.UpdateRow("acct", ids[1], map[string]Value{"val": Int_(20)}); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	// Pre- and mid-pinned snapshots keep the old state forever; a fresh
	// snapshot sees the whole transaction.
	if got := sumVals(t, pre); got != 20 {
		t.Fatalf("pre snapshot sum = %d, want 20", got)
	}
	if got := sumVals(t, mid); got != 20 {
		t.Fatalf("mid snapshot sum = %d, want 20", got)
	}
	post := db.Snapshot()
	defer post.Close()
	if got := sumVals(t, post); got != 20 {
		t.Fatalf("post snapshot sum = %d, want 20", got)
	}
	r, err := post.Get("acct", ids[0])
	if err != nil || r.Values[1].Int != 0 {
		t.Fatalf("post snapshot Get = %v, %v; want val 0", r, err)
	}
}

func TestRollbackRestoresVersionsAndIndexes(t *testing.T) {
	db, ids := newAcctDB(t, 2)

	txn := db.Begin()
	if err := txn.UpdateRow("acct", ids[0], map[string]Value{"id": Int_(100)}); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Delete("acct", ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Insert("acct", map[string]Value{"id": Int_(5), "val": Int_(50)}); err != nil {
		t.Fatal(err)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}

	if got := db.RowCount("acct"); got != 2 {
		t.Fatalf("RowCount after rollback = %d, want 2", got)
	}
	// The PK index must serve the restored key and reject the rolled-
	// back one.
	got, err := db.LookupEqual("acct", []string{"id"}, []Value{Int_(0)})
	if err != nil || len(got) != 1 {
		t.Fatalf("LookupEqual(id=0) after rollback = %v, %v", got, err)
	}
	got, err = db.LookupEqual("acct", []string{"id"}, []Value{Int_(100)})
	if err != nil || len(got) != 0 {
		t.Fatalf("LookupEqual(id=100) after rollback = %v, %v; want empty", got, err)
	}
	// Re-inserting the rolled-back insert's key must not collide.
	if _, err := db.Insert("acct", map[string]Value{"id": Int_(5), "val": Int_(1)}); err != nil {
		t.Fatalf("insert of rolled-back key: %v", err)
	}
	// And the restored PK still enforces uniqueness.
	if _, err := db.Insert("acct", map[string]Value{"id": Int_(0), "val": Int_(1)}); !errors.Is(err, ErrPrimaryKey) {
		t.Fatalf("duplicate PK after rollback: err = %v, want ErrPrimaryKey", err)
	}
}

func TestUniquenessIgnoresDeadVersions(t *testing.T) {
	db, ids := newAcctDB(t, 1)
	if _, err := db.Delete("acct", ids[0]); err != nil {
		t.Fatal(err)
	}
	// The dead version (id=0) still sits in the PK index awaiting
	// reclaim; a fresh insert of the same key must succeed.
	if _, err := db.Insert("acct", map[string]Value{"id": Int_(0), "val": Int_(1)}); err != nil {
		t.Fatalf("re-insert of deleted key: %v", err)
	}
	if _, err := db.Insert("acct", map[string]Value{"id": Int_(0), "val": Int_(2)}); !errors.Is(err, ErrPrimaryKey) {
		t.Fatalf("duplicate PK: err = %v, want ErrPrimaryKey", err)
	}
}

func TestReclaimHonorsOldestSnapshot(t *testing.T) {
	db, ids := newAcctDB(t, 1)
	snap := db.Snapshot()

	for i := 0; i < 10; i++ {
		if err := db.UpdateRow("acct", ids[0], map[string]Value{"val": Int_(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	vs := db.VersionStats()
	if vs.MaxChainDepth != 11 {
		t.Fatalf("chain depth = %d, want 11", vs.MaxChainDepth)
	}

	// With the snapshot pinned at the oldest state, the horizon-based
	// reclaimer must keep every version whose end stamp lies above the
	// snapshot's sequence — here, all of them.
	if freed := db.Reclaim(); freed != 0 {
		t.Fatalf("reclaim freed %d versions past a pinned snapshot", freed)
	}
	if got := db.VersionStats().MaxChainDepth; got != 11 {
		t.Fatalf("chain depth with pinned snapshot = %d, want 11", got)
	}
	r, err := snap.Get("acct", ids[0])
	if err != nil || r.Values[1].Int != 10 {
		t.Fatalf("snapshot read after reclaim = %v, %v; want original val 10", r, err)
	}

	// Closing the snapshot releases the pin entirely.
	snap.Close()
	freed := db.Reclaim()
	if freed == 0 {
		t.Fatal("reclaim after snapshot close freed nothing")
	}
	if got := db.VersionStats().MaxChainDepth; got != 1 {
		t.Fatalf("chain depth after close+reclaim = %d, want 1", got)
	}

	// A fully deleted row disappears from the store once unpinned.
	if _, err := db.Delete("acct", ids[0]); err != nil {
		t.Fatal(err)
	}
	db.Reclaim()
	vs = db.VersionStats()
	if vs.Versions != 0 || vs.LiveRows != 0 {
		t.Fatalf("after delete+reclaim: %+v, want empty store", vs)
	}
	if got, _ := db.LookupEqual("acct", []string{"id"}, []Value{Int_(0)}); len(got) != 0 {
		t.Fatalf("index still serves reclaimed row: %v", got)
	}
}

// TestFailedCascadeIsStatementAtomic: a Delete whose referential
// actions partially ran before failing (SET NULL applied on one child,
// then rejected by another child's NOT NULL) must leave no trace: the
// autocommit statement runs in an implicit transaction that rolls the
// partial cascade back, so latest reads and fresh snapshots agree on
// the pre-statement state.
func TestFailedCascadeIsStatementAtomic(t *testing.T) {
	parent, err := NewTableDef("parent", []Column{
		{Name: "id", Type: TypeInt},
	}, []string{"id"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	childA, err := NewTableDef("childa", []Column{
		{Name: "id", Type: TypeInt},
		{Name: "pid", Type: TypeInt},
	}, []string{"id"}, []ForeignKey{{
		Name: "ca_fk", Columns: []string{"pid"},
		RefTable: "parent", RefColumns: []string{"id"}, OnDelete: DeleteSetNull,
	}})
	if err != nil {
		t.Fatal(err)
	}
	childB, err := NewTableDef("childb", []Column{
		{Name: "id", Type: TypeInt},
		{Name: "pid", Type: TypeInt, NotNull: true},
	}, []string{"id"}, []ForeignKey{{
		Name: "cb_fk", Columns: []string{"pid"},
		RefTable: "parent", RefColumns: []string{"id"}, OnDelete: DeleteSetNull,
	}})
	if err != nil {
		t.Fatal(err)
	}
	schema, err := NewSchema(parent, childA, childB)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(schema)
	if _, err := db.Insert("parent", map[string]Value{"id": Int_(1)}); err != nil {
		t.Fatal(err)
	}
	caID, err := db.Insert("childa", map[string]Value{"id": Int_(10), "pid": Int_(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("childb", map[string]Value{"id": Int_(20), "pid": Int_(1)}); err != nil {
		t.Fatal(err)
	}
	pid, err := db.LookupEqual("parent", []string{"id"}, []Value{Int_(1)})
	if err != nil || len(pid) != 1 {
		t.Fatalf("lookup parent: %v %v", pid, err)
	}
	// childa's FK nulls first (SET NULL succeeds), childb's NOT NULL
	// then rejects the statement mid-cascade. (Referential actions
	// resolve in schema order, childa before childb.)
	if _, err := db.Delete("parent", pid[0]); !errors.Is(err, ErrNotNull) {
		t.Fatalf("delete err = %v, want ErrNotNull", err)
	}
	live, err := db.ValuesByName("childa", caID)
	if err != nil {
		t.Fatal(err)
	}
	if live["pid"].IsNull() {
		t.Fatal("partial SET NULL survived a rejected delete statement")
	}
	snap := db.Snapshot()
	defer snap.Close()
	pinned, err := snap.ValuesByName("childa", caID)
	if err != nil {
		t.Fatal(err)
	}
	if live["pid"].IsNull() != pinned["pid"].IsNull() {
		t.Fatalf("latest sees pid=%v but a fresh snapshot sees pid=%v — partial cascade left uncommitted live-visible versions",
			live["pid"], pinned["pid"])
	}
	if got := db.RowCount("parent"); got != 1 {
		t.Fatalf("parent rows after rejected delete = %d, want 1", got)
	}
}

// TestReclaimerVsReaderStress races a transactional writer, snapshot
// readers verifying an invariant (the sum over acct.val is constant in
// every committed state) and an aggressive reclaimer. Run with -race.
func TestReclaimerVsReaderStress(t *testing.T) {
	const rows = 16
	db, ids := newAcctDB(t, rows)
	const wantSum = int64(rows * 10)

	stopReclaim := db.StartReclaimer(time.Millisecond)
	defer stopReclaim()

	done := make(chan struct{})
	var writerErr atomic.Value
	var wg sync.WaitGroup

	// Writer: transfer 1 between two rows per transaction, occasionally
	// rolling back; the committed sum never changes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			from, to := ids[i%rows], ids[(i+3)%rows]
			if from == to {
				continue
			}
			txn := db.Begin()
			fv, err := txn.ValuesByName("acct", from)
			if err == nil {
				err = txn.UpdateRow("acct", from, map[string]Value{"val": Int_(fv["val"].Int - 1)})
			}
			var tv map[string]Value
			if err == nil {
				tv, err = txn.ValuesByName("acct", to)
			}
			if err == nil {
				err = txn.UpdateRow("acct", to, map[string]Value{"val": Int_(tv["val"].Int + 1)})
			}
			if err != nil {
				txn.Rollback()
				writerErr.Store(err)
				return
			}
			if i%7 == 0 {
				err = txn.Rollback()
			} else {
				err = txn.Commit()
			}
			if err != nil {
				writerErr.Store(err)
				return
			}
		}
	}()

	// A bare-Database reader (no snapshot pin, no txn): Scan resolves
	// visibility under the read latch at one commit sequence, so even
	// an unregistered reader must see a consistent committed state and
	// can never lose a row to a concurrent reclaim truncating chains.
	bareErrs := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			var sum int64
			n := 0
			db.Scan("acct", func(r *Row) bool {
				sum += r.Values[1].Int
				n++
				return true
			})
			if sum != wantSum || n != rows {
				bareErrs <- fmt.Errorf("bare Scan saw sum=%d rows=%d, want sum=%d rows=%d", sum, n, wantSum, rows)
				return
			}
		}
	}()

	// Readers: pin a snapshot, verify the invariant through scans and
	// index lookups, release, repeat.
	readErrs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := db.Snapshot()
				var sum int64
				n := 0
				snap.Scan("acct", func(r *Row) bool {
					sum += r.Values[1].Int
					n++
					return true
				})
				if sum != wantSum || n != rows {
					readErrs <- fmt.Errorf("snapshot saw sum=%d rows=%d, want sum=%d rows=%d", sum, n, wantSum, rows)
					snap.Close()
					return
				}
				// Index path: every id must resolve to exactly one row.
				if got, err := snap.LookupEqual("acct", []string{"id"}, []Value{Int_(1)}); err != nil || len(got) != 1 {
					readErrs <- fmt.Errorf("snapshot lookup = %v, %v", got, err)
					snap.Close()
					return
				}
				snap.Close()
			}
		}()
	}

	time.Sleep(200 * time.Millisecond)
	close(done)
	wg.Wait()
	if err, _ := writerErr.Load().(error); err != nil {
		t.Fatalf("writer: %v", err)
	}
	select {
	case err := <-readErrs:
		t.Fatalf("reader: %v", err)
	default:
	}
	select {
	case err := <-bareErrs:
		t.Fatalf("bare reader: %v", err)
	default:
	}

	// Once quiesced and unpinned, reclaim collapses every chain.
	db.Reclaim()
	vs := db.VersionStats()
	if vs.MaxChainDepth != 1 {
		t.Fatalf("chain depth after quiesce = %d, want 1 (%+v)", vs.MaxChainDepth, vs)
	}
	if got := sumVals(t, db); got != wantSum {
		t.Fatalf("final sum = %d, want %d", got, wantSum)
	}
}
