package relational

import "testing"

// TestGroupFrameEncodeAllocs pins the commit path's framing cost: with
// the pooled buffer warmed, encoding a framed group record allocates
// nothing per append — the payload is built in place over the reserved
// header instead of being encoded and then copied into a fresh frame.
func TestGroupFrameEncodeAllocs(t *testing.T) {
	txns := []walTxn{{seq: 42, ops: []walOp{
		{kind: walOpInsert, table: "parent", id: 7, values: []Value{Int_(7), String_("alloc-check")}},
		{kind: walOpUpdate, table: "parent", id: 7, values: []Value{Int_(7), String_("alloc-check-2")}},
		{kind: walOpDelete, table: "child", id: 9},
	}}}
	encode := func() {
		bufp := walFramePool.Get().(*[]byte)
		b := appendGroupFrame((*bufp)[:0], 0, txns)
		*bufp = b[:0]
		walFramePool.Put(bufp)
	}
	encode() // warm the pooled buffer past its initial growth
	// Allow a fraction for a GC emptying the pool mid-run.
	if avg := testing.AllocsPerRun(200, encode); avg > 0.5 {
		t.Fatalf("framed group encode allocates %.2f times per append, want ~0", avg)
	}
}

// TestGroupFrameMatchesFrameRecord proves the in-place framing is
// byte-identical to the original two-step encode+frame path that the
// recovery scanner was built against.
func TestGroupFrameMatchesFrameRecord(t *testing.T) {
	txns := []walTxn{{seq: 3, ops: []walOp{
		{kind: walOpInsert, table: "ledger", id: 1, values: []Value{Int_(10)}},
	}}}
	want := string(frameRecord(encodeGroupPayload(7, txns)))
	got := string(appendGroupFrame(nil, 7, txns))
	if got != want {
		t.Fatalf("in-place frame diverges from frameRecord:\n got %q\nwant %q", got, want)
	}
}
