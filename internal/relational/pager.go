package relational

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/pagestore"
)

// The pager glues the MVCC engine to the paged checkpoint store. The
// page store holds the durable base image as slotted 4KiB heap pages;
// the buffer pool bounds how much of that image is resident. In-memory
// version chains are a write-back cache over it: a committed, clean row
// may be DEMOTED to a value-less stub version (Values == nil) that
// carries only its MVCC stamps and the heap slot of its page, and is
// re-materialized through the pool on first read. That is what lets the
// dataset exceed RAM under a hard PageCacheBytes budget.
//
// Concurrency contract (load-bearing — see faultRow):
//
//   - rowSlot is written only by checkpoint apply (db.mu write latch,
//     passes serialized by ckptMu) and recovery (single-threaded).
//     Checkpoint planning reads it without a latch: ckptMu serializes
//     planners against appliers. Readers never touch it — a stub
//     carries its own slot in the version's pageSlot stamp.
//   - Unregistered readers (Database.Get, Scan, index matching, write
//     paths) may fault ONLY while holding db.mu (either mode), because
//     quarantined slots are released only under the db.mu write latch.
//   - Registered readers (Snapshot, Txn) may fault after dropping the
//     latch: they pin oldestVisibleSeq, and a freed slot's quarantine
//     batch is not released until every reader registered at or before
//     the freeing apply has closed.
type pager struct {
	store *pagestore.Store
	pool  *pagestore.Pool

	// rowSlot maps table -> row id -> heap slot of the page holding the
	// row's checkpointed image.
	rowSlot map[string]map[RowID]uint32

	// quar holds slots logically freed by a checkpoint install but not
	// yet reusable: a reader registered before the freeing apply may
	// still fault their old content. Appended and drained only under
	// the db.mu write latch.
	quar []quarBatch
}

type quarBatch struct {
	seq    uint64 // commitSeq at apply time
	slots  []uint32
	counts []uint32 // extent lengths, parallel to slots
}

func newPager(store *pagestore.Store, cacheBytes int64) *pager {
	return &pager{
		store:   store,
		pool:    pagestore.NewPool(cacheBytes),
		rowSlot: make(map[string]map[RowID]uint32),
	}
}

// decodedPage is one heap page decoded into per-row values, cached in
// the buffer pool. Immutable after construction; the value slices are
// handed out to readers and must never be mutated in place.
type decodedPage struct {
	table string
	rows  map[RowID][]Value
}

func (p *pager) loadPage(slot uint32) (any, int64, error) {
	table, _, rows, err := p.store.ReadPage(slot)
	if err != nil {
		return nil, 0, err
	}
	m := make(map[RowID][]Value, len(rows))
	size := int64(96)
	for _, r := range rows {
		vals, err := decodeRowPayload(r.Payload)
		if err != nil {
			return nil, 0, fmt.Errorf("page slot %d row %d: %w", slot, r.ID, err)
		}
		m[RowID(r.ID)] = vals
		size += int64(len(r.Payload)) + 48
	}
	return &decodedPage{table: table, rows: m}, size, nil
}

// faultRow returns one row's committed values from its page, loading
// the page through the buffer pool. slotPlus1 is the version's pageSlot
// stamp (slot+1; 0 means "no page", which is an invariant violation for
// a stub). Panics on I/O error, corruption, or a missing row: the slot
// came from the page directory and the quarantine keeps referenced
// slots from being rewritten, so these are unrecoverable invariant
// breaks, not ordinary errors. The returned slice is shared with the
// pool frame — callers must clone before exposing it to mutation.
func (p *pager) faultRow(table string, slotPlus1 uint32, id RowID) []Value {
	if slotPlus1 == 0 {
		panic(fmt.Sprintf("relational: paged row %s/%d has no page slot", table, id))
	}
	slot := slotPlus1 - 1
	v, release, err := p.pool.Get(slot, func() (any, int64, error) { return p.loadPage(slot) })
	if err != nil {
		panic(fmt.Sprintf("relational: fault page %d for row %s/%d: %v", slot, table, id, err))
	}
	defer release()
	dp := v.(*decodedPage)
	if dp.table != table {
		panic(fmt.Sprintf("relational: page %d holds table %q, want %q (row %d)", slot, dp.table, table, id))
	}
	vals, ok := dp.rows[id]
	if !ok {
		panic(fmt.Sprintf("relational: row %s/%d missing from page %d", table, id, slot))
	}
	return vals
}

// versionValues resolves a version's values, faulting its page in when
// the version is a demoted stub. The caller must satisfy the pager's
// concurrency contract (hold db.mu, or be a registered reader). The
// returned slice must not be mutated.
func (db *Database) versionValues(td *tableData, v *rowVersion) []Value {
	if vals := v.row.Values; vals != nil {
		return vals
	}
	return db.wal.pager.faultRow(strings.ToLower(td.def.Name), v.pageSlot.Load(), v.row.ID)
}

// materializeLocked replaces a demoted stub head with a materialized
// copy carrying the same stamps, so write paths and undo logs never
// handle value-less versions. No-op when the head already has values.
// Caller holds the db.mu write latch.
func (db *Database) materializeLocked(td *tableData, id RowID) {
	v := td.rows[id]
	if v == nil || v.row.Values != nil {
		return
	}
	vals := db.versionValues(td, v)
	nv := &rowVersion{row: Row{ID: id, Values: append(make([]Value, 0, len(vals)), vals...)}}
	nv.begin.Store(v.begin.Load())
	nv.end.Store(v.end.Load())
	nv.pageSlot.Store(v.pageSlot.Load())
	td.rows[id] = nv
}

// encodeRowPayload is the page-payload encoding of one row's values:
// a column count followed by each value in the WAL value encoding.
func encodeRowPayload(b []byte, vals []Value) []byte {
	b = binary.AppendUvarint(b, uint64(len(vals)))
	for _, v := range vals {
		b = appendWALValue(b, v)
	}
	return b
}

func decodeRowPayload(b []byte) ([]Value, error) {
	ncols, sz := binary.Uvarint(b)
	if sz <= 0 || ncols > uint64(len(b)) {
		return nil, errWALCorrupt
	}
	b = b[sz:]
	vals := make([]Value, 0, ncols)
	for range ncols {
		var v Value
		var err error
		v, b, err = decodeWALValue(b)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	if len(b) != 0 {
		return nil, errWALCorrupt
	}
	return vals, nil
}

// pageRowMeta encodes the row's index keys positionally per td.indexes,
// persisted in the page directory so recovery can rebuild index entries
// without reading pages. "" marks a NULL-absent row; otherwise the key
// is prefixed with \x01 to distinguish an empty key from absence.
func pageRowMeta(td *tableData, vals []Value) []string {
	if len(td.indexes) == 0 {
		return nil
	}
	meta := make([]string, len(td.indexes))
	for i, ix := range td.indexes {
		if key, ok := ix.keyFor(vals); ok {
			meta[i] = "\x01" + key
		}
	}
	return meta
}

// pagePlan is the outcome of checkpoint planning: the installs to hand
// to the store plus the bookkeeping the in-memory apply needs.
type pagePlan struct {
	installs    []pagestore.Install
	freedSlots  []uint32
	freedCounts []uint32
	gone        map[string][]RowID // dirty rows deleted as of the snapshot
}

// buildPageInstalls plans one checkpoint pass: every dirty row's
// committed image at the snapshot is packed into fresh copy-on-write
// pages, clean SURVIVOR rows sharing the superseded pages ride along so
// those slots can be freed whole, and rows deleted at the snapshot
// become directory-only tombstones. A full pass treats every row as
// dirty. Runs outside the latches: the snapshot pins visibility, ckptMu
// serializes rowSlot access, and only a brief shared latch is taken to
// list the dirty ids.
func (db *Database) buildPageInstalls(snap *Snapshot, dirty map[string]map[RowID]struct{}, full bool) (*pagePlan, error) {
	p := db.wal.pager

	// Phase A (shared latch): per-table dirty id sets.
	dirtyIDs := make(map[string]map[RowID]struct{})
	db.mu.RLock()
	if full {
		for name, td := range db.tables {
			set := make(map[RowID]struct{}, len(td.rows)+len(p.rowSlot[name]))
			for id := range td.rows {
				set[id] = struct{}{}
			}
			for id := range p.rowSlot[name] {
				set[id] = struct{}{}
			}
			if len(set) > 0 {
				dirtyIDs[name] = set
			}
		}
	} else {
		for name, ids := range dirty {
			set := make(map[RowID]struct{}, len(ids))
			for id := range ids {
				set[id] = struct{}{}
			}
			dirtyIDs[name] = set
		}
	}
	db.mu.RUnlock()

	names := make([]string, 0, len(dirtyIDs))
	for name := range dirtyIDs {
		names = append(names, name)
	}
	sort.Strings(names)

	// Phase B (no latch): resolve images at the snapshot and collect the
	// superseded slots.
	plan := &pagePlan{gone: make(map[string][]RowID)}
	affectedTable := make(map[uint32]string)
	for _, name := range names {
		td, err := db.tableData(name)
		if err != nil {
			return nil, err
		}
		set := dirtyIDs[name]
		ids := make([]RowID, 0, len(set))
		for id := range set {
			ids = append(ids, id)
			if s, ok := p.rowSlot[name][id]; ok {
				affectedTable[s] = name
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

		var rows []pagestore.InstallRow
		for _, id := range ids {
			r, err := snap.Get(name, id)
			switch {
			case err == nil:
				rows = append(rows, pagestore.InstallRow{
					ID:      int64(id),
					Payload: encodeRowPayload(nil, r.Values),
					Meta:    pageRowMeta(td, r.Values),
				})
			case errors.Is(err, ErrNoSuchRow):
				plan.gone[name] = append(plan.gone[name], id)
			default:
				return nil, err
			}
		}
		if len(rows) > 0 {
			plan.installs = append(plan.installs, pagestore.Install{Table: name, Rows: rows})
		}
	}

	// Survivors: clean rows mapped to an affected page move to a fresh
	// one. Their committed image cannot have changed since the page was
	// written (any write would have marked them dirty), so the snapshot
	// resolves exactly the bytes being carried forward.
	affected := make([]uint32, 0, len(affectedTable))
	for s := range affectedTable {
		affected = append(affected, s)
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })

	surv := make(map[string][]pagestore.InstallRow)
	for _, slot := range affected {
		name := affectedTable[slot]
		td, err := db.tableData(name)
		if err != nil {
			return nil, err
		}
		refs, ok := p.store.PageRows(slot)
		if !ok {
			continue
		}
		for _, ref := range refs {
			id := RowID(ref.ID)
			if p.rowSlot[name][id] != slot {
				continue // row since moved to a newer page
			}
			if _, isDirty := dirtyIDs[name][id]; isDirty {
				continue
			}
			r, err := snap.Get(name, id)
			if errors.Is(err, ErrNoSuchRow) {
				// Unreachable in the protocol (a deletion marks the row
				// dirty), but drop the mapping rather than resurrecting.
				plan.gone[name] = append(plan.gone[name], id)
				continue
			}
			if err != nil {
				return nil, err
			}
			surv[name] = append(surv[name], pagestore.InstallRow{
				ID:      int64(id),
				Payload: encodeRowPayload(nil, r.Values),
				Meta:    pageRowMeta(td, r.Values),
			})
		}
	}
	for _, name := range names {
		if rows := surv[name]; len(rows) > 0 {
			plan.installs = append(plan.installs, pagestore.Install{Table: name, Rows: rows})
			delete(surv, name)
		}
	}
	for name, rows := range surv { // survivors of tables with no dirty rows this pass
		plan.installs = append(plan.installs, pagestore.Install{Table: name, Rows: rows})
	}

	plan.freedSlots = affected
	plan.freedCounts = make([]uint32, len(affected))
	for i, s := range affected {
		plan.freedCounts[i] = p.store.PageSlots(s)
	}
	return plan, nil
}

// applyPagePlacements publishes a durable install into the in-memory
// state: row->slot mappings move to the fresh pages, freshly
// checkpointed clean heads are stamped with their page slot and — when
// their whole chain is a single committed version — demoted to stubs,
// vanished rows drop their mapping, and the superseded slots enter
// quarantine until no reader can still fault their old content.
func (db *Database) applyPagePlacements(snapSeq uint64, placements []pagestore.Placement, plan *pagePlan) {
	p := db.wal.pager
	db.mu.Lock()
	defer db.mu.Unlock()

	// Evict every slot this pass touched: freed slots hold stale images,
	// and a fresh placement may reuse a slot whose old content a stale
	// reader re-cached after an earlier invalidation.
	inval := make([]uint32, 0, len(plan.freedSlots)+len(placements))
	inval = append(inval, plan.freedSlots...)
	for _, pl := range placements {
		inval = append(inval, pl.Slot)
	}
	p.pool.Invalidate(inval)

	for _, pl := range placements {
		slots := p.rowSlot[pl.Table]
		if slots == nil {
			slots = make(map[RowID]uint32)
			p.rowSlot[pl.Table] = slots
		}
		td := db.tables[pl.Table]
		for _, id64 := range pl.IDs {
			id := RowID(id64)
			slots[id] = pl.Slot
			if td == nil {
				continue
			}
			v := td.rows[id]
			if v == nil {
				continue
			}
			begin := v.begin.Load()
			if isTxnMark(begin) || begin > snapSeq || v.end.Load() != liveSeq {
				continue // the installed image is not this head's value
			}
			v.pageSlot.Store(pl.Slot + 1)
			if v.row.Values != nil && v.prev.Load() == nil {
				stub := &rowVersion{row: Row{ID: id}}
				stub.begin.Store(begin)
				stub.end.Store(liveSeq)
				stub.pageSlot.Store(pl.Slot + 1)
				td.rows[id] = stub
			}
		}
	}
	for name, ids := range plan.gone {
		slots := p.rowSlot[name]
		for _, id := range ids {
			delete(slots, id)
		}
	}
	if len(plan.freedSlots) > 0 {
		p.quar = append(p.quar, quarBatch{
			seq:    db.commitSeq.Load(),
			slots:  plan.freedSlots,
			counts: plan.freedCounts,
		})
	}
	db.drainPageQuarantineLocked()
}

// drainPageQuarantineLocked releases quarantined slot batches once the
// visibility horizon has passed their freeing epoch: strictly greater,
// so a reader pinned exactly at the epoch still blocks the release.
// Caller holds the db.mu write latch — the same latch all unregistered
// page faults run under, so a released slot can never be concurrently
// faulted through a stale mapping.
func (db *Database) drainPageQuarantineLocked() {
	w := db.wal
	if w == nil || w.pager == nil || len(w.pager.quar) == 0 {
		return
	}
	p := w.pager
	oldest := db.oldestVisibleSeq()
	keep := p.quar[:0]
	for _, b := range p.quar {
		if oldest > b.seq {
			p.store.Release(b.slots, b.counts)
		} else {
			keep = append(keep, b)
		}
	}
	tail := p.quar[len(keep):]
	for i := range tail {
		tail[i] = quarBatch{}
	}
	p.quar = keep
}

// demoteCleanLocked drops the in-memory values of a cold head version
// whose checkpointed page image is current: single committed version,
// not deleted, page slot stamped by the checkpoint that wrote it. The
// reclaimer calls it after truncating chains, which is what lets a
// dataset larger than RAM converge to stubs + the bounded buffer pool.
// Caller holds the db.mu write latch.
func demoteCleanLocked(td *tableData, id RowID, v *rowVersion) bool {
	if v.row.Values == nil || v.prev.Load() != nil || v.end.Load() != liveSeq {
		return false
	}
	begin := v.begin.Load()
	slot := v.pageSlot.Load()
	if isTxnMark(begin) || slot == 0 {
		return false
	}
	stub := &rowVersion{row: Row{ID: id}}
	stub.begin.Store(begin)
	stub.end.Store(liveSeq)
	stub.pageSlot.Store(slot)
	td.rows[id] = stub
	return true
}

// restoreFromPages rebuilds the paged row mappings and value-less stub
// versions from the recovered page directory: restart cost is the
// directory map, not the data — pages fault in lazily on first touch.
// Scan order is restored as ascending row id, which equals insertion
// order because ids are allocated monotonically. Single-threaded
// (recovery), before the database serves traffic.
func (db *Database) restoreFromPages(w *WAL, rec *pagestore.Recovered) (rows int, err error) {
	p := w.pager
	for i := range rec.Pages {
		pi := &rec.Pages[i]
		td, terr := db.tableData(pi.Table)
		if terr != nil {
			return 0, fmt.Errorf("page directory: %w", terr)
		}
		slots := p.rowSlot[pi.Table]
		if slots == nil {
			slots = make(map[RowID]uint32, len(pi.Rows))
			p.rowSlot[pi.Table] = slots
		}
		for _, r := range pi.Rows {
			id := RowID(r.ID)
			if _, dup := td.rows[id]; dup {
				return 0, fmt.Errorf("page directory: row %s/%d appears on two live pages", pi.Table, id)
			}
			stub := &rowVersion{row: Row{ID: id}}
			stub.begin.Store(pi.Seq)
			stub.end.Store(liveSeq)
			stub.pageSlot.Store(pi.Slot + 1)
			td.rows[id] = stub
			td.order = append(td.order, id)
			td.live++
			slots[id] = pi.Slot
			for ixi, ix := range td.indexes {
				if ixi < len(r.Meta) && len(r.Meta[ixi]) > 0 {
					ix.insertKey(r.Meta[ixi][1:], id)
				}
			}
			if id >= db.nextRowID {
				db.nextRowID = id + 1
			}
			rows++
		}
	}
	for _, td := range db.tables {
		sort.Slice(td.order, func(i, j int) bool { return td.order[i] < td.order[j] })
	}
	return rows, nil
}
