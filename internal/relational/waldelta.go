package relational

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strings"
)

// Incremental checkpoints make the checkpoint pause O(dirty) instead of
// O(database). Tables accumulate the ids of rows written since the last
// checkpoint (marked at commit-stamp time, under commitMu); a
// checkpoint pass swaps the dirty sets out and serializes ONLY those
// rows — each as its current committed image (an upsert) or a tombstone
// if it no longer exists — into a delta file layered on the base image.
// Recovery loads the base, applies the delta chain in order, then
// replays the WAL tail as before. Once the chain reaches
// CheckpointDeltaLimit the next pass compacts: a fresh full base image
// is written and the delta files are deleted.

// deltaFileName names the incremental checkpoint with the given index.
// Indexes are monotonic and never reused — compaction deletes the files
// but the counter keeps climbing, and recovery resumes above the
// largest index it saw on disk (applied or stale).
func deltaFileName(index uint64) string {
	return fmt.Sprintf("%s%010d%s", walDeltaPrefix, index, walDeltaSuffix)
}

func parseDeltaIndex(name string) (uint64, bool) {
	if !strings.HasPrefix(name, walDeltaPrefix) || !strings.HasSuffix(name, walDeltaSuffix) {
		return 0, false
	}
	mid := name[len(walDeltaPrefix) : len(name)-len(walDeltaSuffix)]
	var idx uint64
	for _, r := range mid {
		if r < '0' || r > '9' {
			return 0, false
		}
		idx = idx*10 + uint64(r-'0')
	}
	return idx, len(mid) > 0
}

// markDirtyGroupLocked records every row the group's transactions wrote
// into their tables' dirty sets. Called under commitMu at stamp time —
// after this group's sequences are assigned, before any checkpoint can
// swap the sets — so a row written by ANY transaction that commits
// after checkpoint C is guaranteed to be in the set checkpoint C+1
// swaps out. Marks from a group that subsequently rolls back are
// harmless: the delta serializes the committed image (or tombstone) the
// snapshot resolves, not the undone write.
func (db *Database) markDirtyGroupLocked(live []*Txn) {
	w := db.wal
	if w == nil || w.opts.CheckpointDeltaLimit < 0 {
		return
	}
	for _, t := range live {
		for i := range t.log {
			en := &t.log[i]
			if td, err := db.tableData(en.table); err == nil {
				td.markDirtyRow(en.id)
			}
		}
	}
}

// swapDirtyRowsLocked detaches every table's dirty set, leaving empty
// sets behind. Caller holds commitMu — the latch all marking happens
// under — so no mark can race the swap or land in the detached sets.
func (db *Database) swapDirtyRowsLocked() map[string]map[RowID]struct{} {
	var out map[string]map[RowID]struct{}
	for name, td := range db.tables {
		if len(td.dirtyRows) == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]map[RowID]struct{}, len(db.tables))
		}
		out[name] = td.dirtyRows
		td.dirtyRows = nil
	}
	return out
}

// mergeDirtyRows folds a swapped-out dirty set back into the tables
// after a failed checkpoint, so the rows stay covered by the next pass.
func (db *Database) mergeDirtyRows(dirty map[string]map[RowID]struct{}) {
	if len(dirty) == 0 {
		return
	}
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	for name, ids := range dirty {
		td, ok := db.tables[name]
		if !ok {
			continue
		}
		for id := range ids {
			td.markDirtyRow(id)
		}
	}
}

// encodeDeltaPayload serializes the dirty rows as the snapshot resolves
// them: an upsert carrying the committed image, or a tombstone when the
// row no longer exists at the snapshot. Ids are sorted so the output is
// deterministic and new rows append to scan order in id order.
func (db *Database) encodeDeltaPayload(snap *Snapshot, seq uint64, dirty map[string]map[RowID]struct{}) ([]byte, error) {
	names := make([]string, 0, len(dirty))
	for name := range dirty {
		names = append(names, name)
	}
	sort.Strings(names)

	b := make([]byte, 0, 1<<12)
	b = append(b, walTagDelta)
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		ids := make([]RowID, 0, len(dirty[name]))
		for id := range dirty[name] {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

		type upsert struct {
			id   RowID
			vals []Value
		}
		var ups []upsert
		var dels []RowID
		for _, id := range ids {
			r, err := snap.Get(name, id)
			switch {
			case err == nil:
				ups = append(ups, upsert{id: id, vals: r.Values})
			case errors.Is(err, ErrNoSuchRow):
				dels = append(dels, id)
			default:
				return nil, err
			}
		}
		b = binary.AppendUvarint(b, uint64(len(name)))
		b = append(b, name...)
		b = binary.AppendUvarint(b, uint64(len(ups)))
		for _, u := range ups {
			b = binary.AppendUvarint(b, uint64(u.id))
			b = binary.AppendUvarint(b, uint64(len(u.vals)))
			for _, v := range u.vals {
				b = appendWALValue(b, v)
			}
		}
		b = binary.AppendUvarint(b, uint64(len(dels)))
		for _, id := range dels {
			b = binary.AppendUvarint(b, uint64(id))
		}
	}
	return b, nil
}

// loadDelta reads one delta file and applies it on top of the state
// recovery has built so far. Returns the delta's pinned sequence and
// how many row upserts it applied.
func (db *Database) loadDelta(path string) (seq uint64, upserts int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(data) < walFrameHeaderSize {
		return 0, 0, errWALCorrupt
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	crc := binary.LittleEndian.Uint32(data[4:8])
	if n > walMaxRecordSize || int64(n) != int64(len(data)-walFrameHeaderSize) {
		return 0, 0, errWALCorrupt
	}
	payload := data[walFrameHeaderSize:]
	if crc32.ChecksumIEEE(payload) != crc {
		return 0, 0, errWALCorrupt
	}
	return db.decodeDeltaPayload(payload)
}

func (db *Database) decodeDeltaPayload(b []byte) (seq uint64, upserts int, err error) {
	if len(b) < 1 || b[0] != walTagDelta {
		return 0, 0, errWALCorrupt
	}
	b = b[1:]
	seq, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, 0, errWALCorrupt
	}
	b = b[sz:]
	ntables, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, 0, errWALCorrupt
	}
	b = b[sz:]
	for range ntables {
		nlen, sz := binary.Uvarint(b)
		if sz <= 0 || nlen > uint64(len(b)-sz) {
			return 0, 0, errWALCorrupt
		}
		b = b[sz:]
		name := string(b[:nlen])
		b = b[nlen:]
		td, terr := db.tableData(name)
		if terr != nil {
			return 0, 0, terr
		}
		nups, sz := binary.Uvarint(b)
		if sz <= 0 || nups > uint64(len(b)) {
			return 0, 0, errWALCorrupt
		}
		b = b[sz:]
		for range nups {
			id, sz := binary.Uvarint(b)
			if sz <= 0 {
				return 0, 0, errWALCorrupt
			}
			b = b[sz:]
			ncols, sz := binary.Uvarint(b)
			if sz <= 0 || ncols > uint64(len(b)) {
				return 0, 0, errWALCorrupt
			}
			b = b[sz:]
			vals := make([]Value, 0, ncols)
			for range ncols {
				var v Value
				v, b, err = decodeWALValue(b)
				if err != nil {
					return 0, 0, err
				}
				vals = append(vals, v)
			}
			rid := RowID(id)
			nv := newVersion(Row{ID: rid, Values: vals}, seq)
			if old, ok := td.rows[rid]; ok {
				removeVersionEntries(td, rid, old, nv)
			} else {
				td.order = append(td.order, rid)
				td.live++
			}
			td.rows[rid] = nv
			for _, ix := range td.indexes {
				ix.insert(rid, vals)
			}
			if rid >= db.nextRowID {
				db.nextRowID = rid + 1
			}
			upserts++
		}
		ndels, sz := binary.Uvarint(b)
		if sz <= 0 || ndels > uint64(len(b)) {
			return 0, 0, errWALCorrupt
		}
		b = b[sz:]
		for range ndels {
			id, sz := binary.Uvarint(b)
			if sz <= 0 {
				return 0, 0, errWALCorrupt
			}
			b = b[sz:]
			rid := RowID(id)
			if old, ok := td.rows[rid]; ok {
				removeVersionEntries(td, rid, old, nil)
				delete(td.rows, rid)
				td.dirty = true
				td.live--
			}
			if rid >= db.nextRowID {
				db.nextRowID = rid + 1
			}
		}
	}
	if len(b) != 0 {
		return 0, 0, errWALCorrupt
	}
	return seq, upserts, nil
}
