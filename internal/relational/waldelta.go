package relational

// Dirty-row tracking makes the checkpoint pause O(dirty-pages) instead
// of O(database). Tables accumulate the ids of rows written since the
// last checkpoint (marked at commit-stamp time, under commitMu); a
// checkpoint pass swaps the dirty sets out and packs ONLY those rows —
// each as its current committed image, or a directory tombstone if it
// no longer exists — into fresh heap pages (see buildPageInstalls).
// Recovery maps the page directory, then replays the WAL tail as
// before.

// markDirtyGroupLocked records every row the group's transactions wrote
// into their tables' dirty sets. Called under commitMu at stamp time —
// after this group's sequences are assigned, before any checkpoint can
// swap the sets — so a row written by ANY transaction that commits
// after checkpoint C is guaranteed to be in the set checkpoint C+1
// swaps out. Marks from a group that subsequently rolls back are
// harmless: the checkpoint packs the committed image (or tombstone) the
// snapshot resolves, not the undone write.
func (db *Database) markDirtyGroupLocked(live []*Txn) {
	if db.wal == nil {
		return
	}
	for _, t := range live {
		for i := range t.log {
			en := &t.log[i]
			if td, err := db.tableData(en.table); err == nil {
				td.markDirtyRow(en.id)
			}
		}
	}
}

// swapDirtyRowsLocked detaches every table's dirty set, leaving empty
// sets behind. Caller holds commitMu — the latch all marking happens
// under — so no mark can race the swap or land in the detached sets.
func (db *Database) swapDirtyRowsLocked() map[string]map[RowID]struct{} {
	var out map[string]map[RowID]struct{}
	for name, td := range db.tables {
		if len(td.dirtyRows) == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]map[RowID]struct{}, len(db.tables))
		}
		out[name] = td.dirtyRows
		td.dirtyRows = nil
	}
	return out
}

// mergeDirtyRows folds a swapped-out dirty set back into the tables
// after a failed checkpoint, so the rows stay covered by the next pass.
func (db *Database) mergeDirtyRows(dirty map[string]map[RowID]struct{}) {
	if len(dirty) == 0 {
		return
	}
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	for name, ids := range dirty {
		td, ok := db.tables[name]
		if !ok {
			continue
		}
		for id := range ids {
			td.markDirtyRow(id)
		}
	}
}
