package relational

import (
	"fmt"
	"os"
	"time"
)

// The WAL writer stage decouples commit durability from the commit
// latch. The committing goroutine encodes its group's record off-latch,
// then under commitMu only validates, assigns sequences and replaces
// claim stamps before handing the record to this stage and releasing
// the latch — so group N+1 validates and stamps while group N's fsync
// is in flight. The stage is a single goroutine draining a channel
// whose enqueue order IS sequence order (enqueues happen under
// commitMu), which makes it a sequence barrier for free: it writes and
// fsyncs each drained batch with ONE fsync, then publishes the batch's
// groups strictly in order — advancing commitSeq only after the group's
// record is durable — so no snapshot can ever observe group N+1 without
// group N, and an fsync failure rolls back exactly the affected groups
// with every follower notified.

// walReq is one unit of work for the writer stage: a commit group to
// make durable and publish, a 2PC prepare (durable, NOT published — the
// preparer publishes or aborts under the latch it still holds), a
// checkpoint barrier, or a stop request.
type walReq struct {
	xid    uint64
	live   []*Txn
	bodies [][]byte // pre-encoded per-txn op bodies, parallel to live
	seq    uint64   // last sequence stamped into the group

	prepare bool  // durable-only: ack without publishing
	err     error // set by the write phase; routes to rollback

	// Where the record landed, for truncating failed batch tails.
	segIndex uint64
	off      int64
	wrote    int64

	barrier *walBarrier
	stop    bool
	done    chan error // buffered(1); receives the group's commit outcome
}

// walBarrier quiesces the writer for a checkpoint: when ready closes,
// every earlier group is durable and published and the writer parks
// until resume closes — so the checkpoint can rotate the active segment
// (the writer's file handle) under commitMu without racing it.
type walBarrier struct {
	ready  chan struct{}
	resume chan struct{}
}

// writerLoop is the writer stage: drain whatever has queued, process it
// as one batch (one fsync), repeat. Runs until a stop request.
func (w *WAL) writerLoop(db *Database) {
	defer close(w.writerDone)
	for {
		req, ok := <-w.pipe
		if !ok {
			return
		}
		batch := []*walReq{req}
	drain:
		for {
			select {
			case r := <-w.pipe:
				batch = append(batch, r)
			default:
				break drain
			}
		}
		if w.runBatch(db, batch) {
			return
		}
	}
}

// runBatch writes every group record in the batch, fsyncs once, then
// publishes (or rolls back) each group in order. Returns true on a stop
// request. The writer NEVER takes commitMu: stamping already happened,
// publishing is a single atomic store, and rollback needs only db.mu.
func (w *WAL) runBatch(db *Database, batch []*walReq) (stopped bool) {
	// Phase A: write all records, fsyncing at rotation boundaries and
	// once at the end. unsynced tracks written-but-not-yet-durable reqs
	// (always within the active segment: a sync precedes every rotate);
	// durable is the active segment's durable length, the truncation
	// point if the sync fails.
	var unsynced []*walReq
	durable := w.segBytes
	for _, req := range batch {
		if req.barrier != nil || req.stop {
			continue // barrier/stop are enqueued under commitMu, hence last
		}
		if w.segBytes >= w.opts.SegmentBytes {
			if len(unsynced) > 0 {
				if err := w.syncActive(); err != nil {
					w.truncateTo(durable)
					for _, r := range unsynced {
						r.err = err
					}
				} else {
					durable = w.segBytes
				}
				unsynced = unsynced[:0]
			}
			if err := w.rotate(); err != nil {
				req.err = err
				continue
			}
			durable = 0
		}
		if err := w.writeFrame(req); err != nil {
			req.err = err
			continue
		}
		unsynced = append(unsynced, req)
	}
	if len(unsynced) > 0 {
		if err := w.syncActive(); err != nil {
			w.truncateTo(durable)
			for _, r := range unsynced {
				r.err = err
			}
		}
	}

	// Phase B: resolve each request strictly in sequence order.
	for i, req := range batch {
		switch {
		case req.stop:
			req.done <- nil
			return true
		case req.barrier != nil:
			close(req.barrier.ready)
			<-req.barrier.resume
		case req.prepare:
			// Durable (or failed) — but publishing is the preparer's call;
			// it still holds commitMu and rolls back on error itself.
			w.pipeDepth.Add(-1)
			req.done <- req.err
		case req.err != nil:
			w.failGroup(db, req)
		default:
			if err := evalFailpoint(FpPipelinePublishBefore); err != nil {
				// The record IS durable; failing the group means it must
				// not survive on disk either, or recovery would replay a
				// rolled-back group. Truncate this record and everything
				// after it (all of which is failing too).
				w.truncateBatchTail(batch, i, err)
				w.failGroup(db, req)
				continue
			}
			db.commitSeq.Store(req.seq)
			db.groupCommits.Add(1)
			db.groupedTxns.Add(int64(len(req.live)))
			for _, t := range req.live {
				t.log = nil
			}
			for _, t := range req.live {
				db.forget(t)
			}
			w.pipeDepth.Add(-1)
			req.done <- nil
		}
	}
	return false
}

// writeFrame appends one group's framed record to the active segment
// without syncing. On error the partial bytes are truncated away and
// segBytes stays put, so the failure cannot corrupt later records.
func (w *WAL) writeFrame(req *walReq) error {
	if err := evalFailpoint(FpWALAppendBefore); err != nil {
		return err
	}
	bufp := walFramePool.Get().(*[]byte)
	frame := assembleGroupPayload(beginFrame((*bufp)[:0]), req.xid, req.live, req.bodies)
	finishFrame(frame)
	defer func() {
		*bufp = frame[:0]
		walFramePool.Put(bufp)
	}()
	req.segIndex = w.segIndex
	req.off = w.segBytes
	rest := frame
	wrote := 0
	if failpointFires(FpWALAppendPartial) {
		// A torn write: half the frame reaches the file, then the fault
		// fires (crash mode dies here, leaving the torn tail on disk for
		// recovery to discard; error mode falls through to the truncate).
		n, werr := w.f.Write(rest[:len(rest)/2])
		wrote += n
		if err := fireFailpoint(FpWALAppendPartial); err != nil {
			w.truncateActive(wrote)
			return err
		}
		if werr != nil {
			w.truncateActive(wrote)
			return werr
		}
		rest = rest[len(rest)/2:]
	}
	n, err := w.f.Write(rest)
	wrote += n
	if err != nil {
		w.truncateActive(wrote)
		return err
	}
	w.segBytes += int64(wrote)
	req.wrote = int64(wrote)
	w.appends.Add(1)
	w.bytes.Add(int64(wrote))
	return nil
}

// syncActive fsyncs the active segment, recording the fsync duration.
// An error (including the injected post-fsync fault, which fails the
// commit even though the bytes are durable) tells the caller to
// truncate back to the durable length and fail the unsynced groups.
func (w *WAL) syncActive() error {
	if err := evalFailpoint(FpWALFsyncBefore); err != nil {
		return err
	}
	syncStart := time.Now()
	if err := w.f.Sync(); err != nil {
		return err
	}
	fsyncNs := time.Since(syncStart).Nanoseconds()
	w.fsyncHist.Record(fsyncNs)
	w.lastFsyncNs.Store(fsyncNs)
	w.fsyncs.Add(1)
	return evalFailpoint(FpWALFsyncAfter)
}

// truncateTo cuts the active segment back to off (best-effort, like
// truncateActive: a failed truncate still stops recovery's CRC scan at
// the same point).
func (w *WAL) truncateTo(off int64) {
	_ = w.f.Truncate(off)
	_, _ = w.f.Seek(off, 0)
	w.segBytes = off
}

// truncateBatchTail fails every request from index from onward and
// removes their already-durable records from disk, so a recovery cannot
// replay groups whose commits were rolled back. Requests may span a
// rotation: sealed segments are truncated by path, the active one
// through the writer's handle.
func (w *WAL) truncateBatchTail(batch []*walReq, from int, cause error) {
	mins := make(map[uint64]int64)
	for _, r := range batch[from:] {
		if r.barrier != nil || r.stop {
			continue
		}
		if r.err == nil {
			r.err = cause
		}
		if r.wrote > 0 {
			if off, ok := mins[r.segIndex]; !ok || r.off < off {
				mins[r.segIndex] = r.off
			}
		}
	}
	for seg, off := range mins {
		if seg == w.segIndex {
			w.truncateTo(off)
		} else {
			_ = os.Truncate(segmentPath(w.dir, seg), off)
		}
	}
}

// failGroup rolls back one stamped group whose record never became (or
// was not allowed to remain) durable. Its stamps never published —
// commitSeq never reached them — so popping the versions under db.mu is
// invisible to every reader, exactly like a rollback.
func (w *WAL) failGroup(db *Database, req *walReq) {
	db.mu.Lock()
	for _, t := range req.live {
		_ = t.undoFromLocked(0)
		t.log = nil
	}
	db.mu.Unlock()
	for _, t := range req.live {
		db.forget(t)
	}
	w.pipeDepth.Add(-1)
	req.done <- fmt.Errorf("%w: %v", ErrWALFailed, req.err)
}
