package relational

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestWriteWriteConflictFirstUpdaterWins: two open transactions write
// the same row; the second write fails immediately with
// ErrWriteConflict while the first commits untouched.
func TestWriteWriteConflictFirstUpdaterWins(t *testing.T) {
	db, ids := newAcctDB(t, 2)

	t1 := db.Begin()
	t2 := db.Begin()
	if err := t1.UpdateRow("acct", ids[0], map[string]Value{"val": Int_(1)}); err != nil {
		t.Fatal(err)
	}
	// t2 loses the claim race on ids[0] but writes ids[1] freely.
	if err := t2.UpdateRow("acct", ids[0], map[string]Value{"val": Int_(2)}); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("second updater err = %v, want ErrWriteConflict", err)
	}
	if err := t2.UpdateRow("acct", ids[1], map[string]Value{"val": Int_(2)}); err != nil {
		t.Fatalf("disjoint row write conflicted: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	v0, _ := db.ValuesByName("acct", ids[0])
	v1, _ := db.ValuesByName("acct", ids[1])
	if v0["val"].Int != 1 || v1["val"].Int != 2 {
		t.Fatalf("vals = %v/%v, want 1/2", v0["val"], v1["val"])
	}
	if got := db.Stats().Conflicts; got < 1 {
		t.Fatalf("Stats().Conflicts = %d, want >= 1", got)
	}
}

// TestConflictAgainstCommittedNewerVersion: a transaction that began
// before another committed a write to the row must also lose
// (first-updater-wins is against commits after the read sequence, not
// just in-flight claims).
func TestConflictAgainstCommittedNewerVersion(t *testing.T) {
	db, ids := newAcctDB(t, 1)

	stale := db.Begin()
	if err := db.UpdateRow("acct", ids[0], map[string]Value{"val": Int_(5)}); err != nil {
		t.Fatal(err) // autocommit: commits immediately
	}
	if err := stale.UpdateRow("acct", ids[0], map[string]Value{"val": Int_(6)}); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("stale writer err = %v, want ErrWriteConflict", err)
	}
	if _, err := stale.Delete("acct", ids[0]); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("stale delete err = %v, want ErrWriteConflict", err)
	}
	stale.Rollback()

	// A fresh transaction (read sequence past the commit) succeeds.
	fresh := db.Begin()
	if err := fresh.UpdateRow("acct", ids[0], map[string]Value{"val": Int_(7)}); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestRollbackReleasesClaim: the loser of a claim race succeeds after
// the winner rolls back.
func TestRollbackReleasesClaim(t *testing.T) {
	db, ids := newAcctDB(t, 1)

	winner := db.Begin()
	if err := winner.UpdateRow("acct", ids[0], map[string]Value{"val": Int_(1)}); err != nil {
		t.Fatal(err)
	}
	loser := db.Begin()
	if err := loser.UpdateRow("acct", ids[0], map[string]Value{"val": Int_(2)}); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("err = %v, want ErrWriteConflict", err)
	}
	if err := winner.Rollback(); err != nil {
		t.Fatal(err)
	}
	// The loser's snapshot predates nothing committed: its retry (same
	// transaction — the claim is gone and no newer commit exists) works.
	if err := loser.UpdateRow("acct", ids[0], map[string]Value{"val": Int_(2)}); err != nil {
		t.Fatalf("retry after winner rollback: %v", err)
	}
	if err := loser.Commit(); err != nil {
		t.Fatal(err)
	}
	v, _ := db.ValuesByName("acct", ids[0])
	if v["val"].Int != 2 {
		t.Fatalf("val = %v, want 2", v["val"])
	}
}

// TestInsertDuplicateKeyAcrossTxns: a duplicate key held by another
// in-flight transaction is a conflict (retry resolves it); one held by
// committed state is a constraint violation.
func TestInsertDuplicateKeyAcrossTxns(t *testing.T) {
	db, _ := newAcctDB(t, 1)

	t1 := db.Begin()
	if _, err := t1.Insert("acct", map[string]Value{"id": Int_(50), "val": Int_(1)}); err != nil {
		t.Fatal(err)
	}
	t2 := db.Begin()
	if _, err := t2.Insert("acct", map[string]Value{"id": Int_(50), "val": Int_(2)}); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("concurrent duplicate insert err = %v, want ErrWriteConflict", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2.Rollback()
	// After the winner committed, the duplicate is a plain constraint
	// violation.
	t3 := db.Begin()
	if _, err := t3.Insert("acct", map[string]Value{"id": Int_(50), "val": Int_(3)}); !errors.Is(err, ErrPrimaryKey) {
		t.Fatalf("post-commit duplicate err = %v, want ErrPrimaryKey", err)
	}
	t3.Rollback()
	// Committed-state duplicate against the pre-existing row too.
	if _, err := db.Insert("acct", map[string]Value{"id": Int_(0), "val": Int_(9)}); !errors.Is(err, ErrPrimaryKey) {
		t.Fatalf("autocommit duplicate err = %v, want ErrPrimaryKey", err)
	}
}

// TestConcurrentDisjointTxnsCommitInParallel runs many goroutines,
// each transferring within its own private pair of rows — no two
// transactions share a row, so none may conflict, and every commit
// must land. Run with -race.
func TestConcurrentDisjointTxnsCommitInParallel(t *testing.T) {
	const writers = 8
	const txnsPerWriter = 200
	db, ids := newAcctDB(t, writers*2)

	var wg sync.WaitGroup
	var firstErr atomic.Value
	for w := 0; w < writers; w++ {
		a, b := ids[2*w], ids[2*w+1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < txnsPerWriter; i++ {
				txn := db.Begin()
				av, err := txn.ValuesByName("acct", a)
				if err == nil {
					err = txn.UpdateRow("acct", a, map[string]Value{"val": Int_(av["val"].Int - 1)})
				}
				var bv map[string]Value
				if err == nil {
					bv, err = txn.ValuesByName("acct", b)
				}
				if err == nil {
					err = txn.UpdateRow("acct", b, map[string]Value{"val": Int_(bv["val"].Int + 1)})
				}
				if err == nil {
					err = txn.Commit()
				} else {
					txn.Rollback()
				}
				if err != nil {
					firstErr.Store(fmt.Errorf("writer %d txn %d: %w", 2*w, i, err))
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().Conflicts; got != 0 {
		t.Fatalf("disjoint writers conflicted %d times", got)
	}
	var sum int64
	db.Scan("acct", func(r *Row) bool { sum += r.Values[1].Int; return true })
	if sum != int64(writers*2*10) {
		t.Fatalf("sum = %d, want %d", sum, writers*2*10)
	}
}

// TestConcurrentContendedTxnsPreserveInvariant hammers one shared pair
// of rows from many goroutines with retry-on-conflict loops; the
// committed sum must be invariant at every snapshot and at quiesce,
// and conflicts must actually have occurred. Every round starts behind
// a barrier with all transactions already open, so the overlap that
// produces conflicts is guaranteed even on GOMAXPROCS=1, where free
// scheduling would serialize the tiny transactions. Run with -race.
func TestConcurrentContendedTxnsPreserveInvariant(t *testing.T) {
	const writers = 8
	const rounds = 50
	db, ids := newAcctDB(t, 2)
	a, b := ids[0], ids[1]

	var wg sync.WaitGroup
	var firstErr atomic.Value
	// barrier releases all writers at once with their transactions open.
	barrier := make(chan struct{}, writers)
	var ready sync.WaitGroup
	ready.Add(writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				txn := db.Begin()
				ready.Done()
				<-barrier
				av, err := txn.ValuesByName("acct", a)
				if err == nil {
					err = txn.UpdateRow("acct", a, map[string]Value{"val": Int_(av["val"].Int - 1)})
				}
				var bv map[string]Value
				if err == nil {
					bv, err = txn.ValuesByName("acct", b)
				}
				if err == nil {
					err = txn.UpdateRow("acct", b, map[string]Value{"val": Int_(bv["val"].Int + 1)})
				}
				if err == nil {
					if err = txn.Commit(); err != nil {
						firstErr.Store(err)
						return
					}
					continue
				}
				txn.Rollback()
				if !errors.Is(err, ErrWriteConflict) {
					firstErr.Store(err)
					return
				}
			}
		}()
	}
	go func() {
		for round := 0; round < rounds; round++ {
			ready.Wait() // every writer has its transaction open
			if round < rounds-1 {
				ready.Add(writers) // arm the next round before releasing
			}
			for i := 0; i < writers; i++ {
				barrier <- struct{}{}
			}
		}
	}()

	// A reader verifies the invariant while the fight is on.
	stop := make(chan struct{})
	var readErr atomic.Value
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := db.Snapshot()
			var sum int64
			snap.Scan("acct", func(r *Row) bool { sum += r.Values[1].Int; return true })
			snap.Close()
			if sum != 20 {
				readErr.Store(fmt.Errorf("snapshot sum = %d, want 20", sum))
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	if err, _ := firstErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if err, _ := readErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Conflicts == 0 {
		t.Fatal("contended workload produced zero conflicts")
	}
	if st.TxnsActive != 0 {
		t.Fatalf("TxnsActive = %d after quiesce, want 0", st.TxnsActive)
	}
	var sum int64
	db.Scan("acct", func(r *Row) bool { sum += r.Values[1].Int; return true })
	if sum != 20 {
		t.Fatalf("final sum = %d, want 20", sum)
	}
}

// TestGroupCommitSharedFlush: CommitGroup publishes each transaction
// atomically — a snapshot pinned mid-group sees none of it, one pinned
// after sees all of it — and the group pays one flush.
func TestGroupCommitSharedFlush(t *testing.T) {
	db, ids := newAcctDB(t, 3)

	txns := make([]*Txn, 3)
	for i := range txns {
		txns[i] = db.Begin()
		if err := txns[i].UpdateRow("acct", ids[i], map[string]Value{"val": Int_(int64(100 + i))}); err != nil {
			t.Fatal(err)
		}
	}
	pre := db.Snapshot()
	defer pre.Close()
	flushesBefore := db.RedoFlushes()
	if err := db.CommitGroup(txns...); err != nil {
		t.Fatal(err)
	}
	if got := db.RedoFlushes() - flushesBefore; got != 1 {
		t.Fatalf("group of 3 paid %d flushes, want 1", got)
	}
	if got := sumVals(t, pre); got != 30 {
		t.Fatalf("pre-group snapshot sum = %d, want 30", got)
	}
	post := db.Snapshot()
	defer post.Close()
	if got := sumVals(t, post); got != 100+101+102 {
		t.Fatalf("post-group snapshot sum = %d, want 303", got)
	}
	st := db.Stats()
	if st.GroupCommits < 1 || st.GroupedTxns < 3 {
		t.Fatalf("group stats = %d commits / %d txns, want >=1 / >=3", st.GroupCommits, st.GroupedTxns)
	}
	// Double commit of a grouped transaction errors without side effects.
	if err := txns[0].Commit(); err == nil {
		t.Fatal("double commit through a group should fail")
	}
}

// TestRedoAppendRaceUnderConcurrentCommitters drives writers (redo
// appends under the structural latch) against committers and statement
// loggers (flushes under the commit latch) to exercise the redo
// buffer's own latch. Run with -race: before redoMu, the []byte buffer
// was mutated from both sides with no guard.
func TestRedoAppendRaceUnderConcurrentCommitters(t *testing.T) {
	const writers = 4
	db, ids := newAcctDB(t, writers)

	var wg sync.WaitGroup
	var firstErr atomic.Value
	for w := 0; w < writers; w++ {
		id := ids[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				txn := db.Begin()
				if err := txn.UpdateRow("acct", id, map[string]Value{"val": Int_(int64(i))}); err != nil {
					txn.Rollback()
					firstErr.Store(err)
					return
				}
				db.LogStatement("UPDATE acct SET val = ? WHERE rowid = ?")
				if err := txn.Commit(); err != nil {
					firstErr.Store(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if db.RedoRecords() == 0 || db.RedoFlushes() == 0 {
		t.Fatalf("redo accounting empty: records=%d flushes=%d", db.RedoRecords(), db.RedoFlushes())
	}
}
