package relational

import (
	"time"

	"repro/internal/obs"
)

// WriteTxn is the transactional write surface the upper layers (sqlexec
// DML, the plan layer's apply pipeline) drive. *Txn implements it for a
// single database; internal/shard implements it as a vector of per-shard
// sub-transactions so the same apply code commits across shards.
type WriteTxn interface {
	Reader
	// Insert adds a row through the transaction.
	Insert(table string, values map[string]Value) (RowID, error)
	// Delete removes a row (with referential actions) through the
	// transaction, returning the number of rows deleted.
	Delete(table string, id RowID) (int, error)
	// UpdateRow modifies the named columns of a row.
	UpdateRow(table string, id RowID, changes map[string]Value) error
	// Savepoint marks the current position in the undo log; RollbackTo
	// undoes everything logged after the mark, keeping the transaction
	// open.
	Savepoint() int
	RollbackTo(mark int) error
	// Rollback undoes everything; Commit publishes atomically.
	Rollback() error
	Commit() error
	// OpCount returns the number of logged row operations.
	OpCount() int
}

// Snap is a pinned point-in-time read view. *Snapshot implements it for
// a single database; internal/shard pins one snapshot per shard under a
// latch that excludes cross-shard commits, so the vector is consistent.
type Snap interface {
	Reader
	// Close releases the snapshot's pin on old row versions.
	Close()
	// Seq identifies the pinned commit sequence (for a sharded snapshot,
	// the sum of the per-shard sequences — a monotone logical clock).
	Seq() uint64
	// VersionStats reports version-chain statistics at the snapshot.
	VersionStats() VersionStats
}

// ShardStat is one shard's statistics rollup. An unsharded Database
// reports itself as shard 0 of 1.
type ShardStat struct {
	// Shard is the shard index (0-based).
	Shard int `json:"shard"`
	DBStats
	// Rows counts the shard's visible rows across all tables.
	Rows int `json:"rows_total"`
}

// Engine is the storage surface the executor stack is written against:
// everything a *Database offers that the sqlexec/plan/server layers
// consume, so a hash-partitioned shard group (internal/shard) can stand
// in for a single database. Methods whose concrete receivers return
// concrete types (Begin, Snapshot) appear here under distinct names
// (BeginTxn, OpenSnapshot) returning the interface forms.
type Engine interface {
	Reader
	// Autocommit DML (implicit single-statement transactions).
	Insert(table string, values map[string]Value) (RowID, error)
	Delete(table string, id RowID) (int, error)
	UpdateRow(table string, id RowID, changes map[string]Value) error
	// BeginTxn starts a write transaction.
	BeginTxn() WriteTxn
	// OpenSnapshot pins a consistent point-in-time read view.
	OpenSnapshot() Snap
	// CommitShared publishes a batch of transactions that arrived at the
	// group-commit scheduler together, coalescing log flushes where the
	// engine can. It returns one error slot per member (nil = committed);
	// members may succeed and fail independently when they land on
	// different shards.
	CommitShared(txns []WriteTxn) []error
	// LogStatement appends a statement-level redo record.
	LogStatement(sql string)
	// Statistics and maintenance.
	Stats() DBStats
	VersionStats() VersionStats
	StatementsExecutedTotal() int64
	RedoRecords() int64
	RedoBytes() int64
	RedoFlushes() int64
	LastFsyncNanos() int64
	FsyncHistogram() obs.Snapshot
	CheckpointPauseHistogram() obs.Snapshot
	Reclaim() int
	StartReclaimer(interval time.Duration) (stop func())
	StartCheckpointer(interval time.Duration) (stop func())
	CloseWAL() error
	WALDir() string
	// ShardCount reports the number of independent storage shards (1 for
	// a plain Database); ShardStats returns one rollup per shard.
	ShardCount() int
	ShardStats() []ShardStat
}

// BeginTxn starts a transaction, typed as the WriteTxn interface.
func (db *Database) BeginTxn() WriteTxn { return db.Begin() }

// OpenSnapshot pins a snapshot, typed as the Snap interface.
func (db *Database) OpenSnapshot() Snap { return db.Snapshot() }

// CommitShared publishes the batch under one commit latch acquisition
// and one WAL flush (CommitGroup); every member shares the group's
// fate, so the single error is broadcast to all slots.
func (db *Database) CommitShared(txns []WriteTxn) []error {
	live := make([]*Txn, len(txns))
	for i, t := range txns {
		if t != nil {
			live[i] = t.(*Txn)
		}
	}
	err := db.CommitGroup(live...)
	out := make([]error, len(txns))
	for i := range out {
		out[i] = err
	}
	return out
}

// ShardCount reports 1: a plain Database is its own single shard.
func (db *Database) ShardCount() int { return 1 }

// ShardStats reports the database as shard 0 of 1.
func (db *Database) ShardStats() []ShardStat {
	return []ShardStat{{Shard: 0, DBStats: db.Stats(), Rows: db.TotalRows()}}
}

var (
	_ Engine   = (*Database)(nil)
	_ WriteTxn = (*Txn)(nil)
	_ Snap     = (*Snapshot)(nil)
)
