package relational

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Snapshot is an immutable point-in-time view of a Database, pinned at
// the commit sequence current when Snapshot() was called. Taking one is
// O(1): nothing is copied — reads resolve row version chains at the
// pinned sequence, so a snapshot observes either all or none of any
// transaction's effects, forever, regardless of concurrent writers.
//
// A pinned snapshot retains the row versions it can see: Close it when
// done so the reclaimer may free them. Reads after Close still return
// data but lose the retention guarantee (a concurrent reclaim may have
// freed versions the snapshot would have seen); treat Close as the end
// of the snapshot's life. Snapshots are safe for concurrent use by
// multiple goroutines and never block behind a writer's transaction —
// only behind individual row-operation latches.
type Snapshot struct {
	db     *Database
	seq    uint64
	closed atomic.Bool
}

// Snapshot pins the current committed state and returns its handle.
func (db *Database) Snapshot() *Snapshot {
	db.snapMu.Lock()
	s := &Snapshot{db: db, seq: db.commitSeq.Load()}
	db.snaps[s] = struct{}{}
	db.snapMu.Unlock()
	db.snapshotsOpened.Add(1)
	return s
}

// Close releases the snapshot's pin on old row versions. Idempotent.
func (s *Snapshot) Close() {
	if s.closed.CompareAndSwap(false, true) {
		s.db.snapMu.Lock()
		delete(s.db.snaps, s)
		s.db.snapMu.Unlock()
	}
}

// Seq returns the commit sequence the snapshot is pinned at.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Schema returns the database schema (schemas are immutable).
func (s *Snapshot) Schema() *Schema { return s.db.schema }

// HasIndexOn reports whether an index covers exactly the named columns.
func (s *Snapshot) HasIndexOn(table string, columns []string) bool {
	return s.db.HasIndexOn(table, columns)
}

// Get returns a copy of the row as of the snapshot.
func (s *Snapshot) Get(table string, id RowID) (*Row, error) {
	s.db.mu.RLock()
	td, err := s.db.tableData(table)
	if err != nil {
		s.db.mu.RUnlock()
		return nil, err
	}
	head := td.rows[id]
	s.db.mu.RUnlock()
	if v := head.visibleAt(s.seq); v != nil {
		if v.row.Values == nil {
			// Demoted stub: fault the page in. Safe without the latch —
			// the snapshot's registration keeps the slot quarantined.
			r := Row{ID: v.row.ID, Values: s.db.versionValues(td, v)}
			return r.clone(), nil
		}
		return v.row.clone(), nil
	}
	return nil, fmt.Errorf("%w: %s rowid %d", ErrNoSuchRow, table, id)
}

// RowCount returns the number of rows visible at the snapshot. Unlike
// the live Database's O(1) counter this walks the table's chains.
func (s *Snapshot) RowCount(table string) int {
	heads, _, err := s.db.collectHeads(table)
	if err != nil {
		return 0
	}
	n := 0
	for _, head := range heads {
		if head.visibleAt(s.seq) != nil {
			n++
		}
	}
	return n
}

// TotalRows returns the number of rows across all tables visible at the
// snapshot.
func (s *Snapshot) TotalRows() int {
	n := 0
	for _, t := range s.db.SortedTableNames() {
		n += s.RowCount(t)
	}
	return n
}

// Scan visits every row visible at the snapshot in insertion order. The
// callback receives the stored version; it must not mutate it.
// Returning false stops the scan. No latch is held while the callback
// runs.
func (s *Snapshot) Scan(table string, fn func(*Row) bool) error {
	heads, td, err := s.db.collectHeads(table)
	if err != nil {
		return err
	}
	for _, head := range heads {
		v := head.visibleAt(s.seq)
		if v == nil {
			continue
		}
		r := &v.row
		if r.Values == nil {
			r = &Row{ID: v.row.ID, Values: s.db.versionValues(td, v)}
		}
		if !fn(r) {
			return nil
		}
	}
	return nil
}

// ScanIDs returns the row ids visible at the snapshot in insertion
// order.
func (s *Snapshot) ScanIDs(table string) []RowID {
	heads, _, err := s.db.collectHeads(table)
	if err != nil {
		return nil
	}
	out := make([]RowID, 0, len(heads))
	for _, head := range heads {
		if v := head.visibleAt(s.seq); v != nil {
			out = append(out, v.row.ID)
		}
	}
	return out
}

// ValuesByName returns a visible row's values keyed by column name, as
// of the snapshot.
func (s *Snapshot) ValuesByName(table string, id RowID) (map[string]Value, error) {
	r, err := s.Get(table, id)
	if err != nil {
		return nil, err
	}
	return s.db.rowValues(table, r)
}

// LookupEqual returns the ids of rows visible at the snapshot whose
// named columns equal the given values. Index buckets retain entries
// for superseded versions until reclaim, which is exactly what makes
// an index lookup complete for a pinned snapshot; each candidate's
// resolved version is re-verified against the probe values.
func (s *Snapshot) LookupEqual(table string, columns []string, values []Value) ([]RowID, error) {
	s.db.mu.RLock()
	td, err := s.db.tableData(table)
	if err != nil {
		s.db.mu.RUnlock()
		return nil, err
	}
	cols := make([]int, len(columns))
	for i, c := range columns {
		idx, ok := td.def.ColumnIndex(c)
		if !ok {
			s.db.mu.RUnlock()
			return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, table, c)
		}
		cols[i] = idx
	}
	var candidates []*rowVersion
	if ix := td.findIndex(cols); ix != nil {
		ordered := reorderForIndex(ix, cols, values)
		for _, id := range ix.lookup(ordered) {
			if head, ok := td.rows[id]; ok {
				candidates = append(candidates, head)
			}
		}
	} else {
		candidates = make([]*rowVersion, 0, len(td.order))
		for _, id := range td.order {
			if head, ok := td.rows[id]; ok {
				candidates = append(candidates, head)
			}
		}
	}
	s.db.mu.RUnlock()

	var out []RowID
	for _, head := range candidates {
		v := head.visibleAt(s.seq)
		if v == nil {
			continue
		}
		vals := s.db.versionValues(td, v) // may fault; registration pins the slot
		match := true
		for i, c := range cols {
			if !vals[c].Equal(values[i]) {
				match = false
				break
			}
		}
		if match {
			out = append(out, v.row.ID)
		}
	}
	return out, nil
}

// oldestVisibleSeq is the reclaim horizon: the minimum over every
// pinned snapshot's sequence, every active transaction's read
// sequence and the current commit sequence. Versions whose end stamp
// is at or below it are invisible to every present and future reader.
// (Claim stamps compare greater than any sequence, so versions touched
// by in-flight transactions are never reclaimed regardless of the
// horizon.)
func (db *Database) oldestVisibleSeq() uint64 {
	min := db.commitSeq.Load()
	db.snapMu.Lock()
	for s := range db.snaps {
		if s.seq < min {
			min = s.seq
		}
	}
	db.snapMu.Unlock()
	db.txnMu.Lock()
	for t := range db.txns {
		if t.readSeq < min {
			min = t.readSeq
		}
	}
	db.txnMu.Unlock()
	return min
}

// reclaimThreshold is how many versions may accumulate before a commit
// piggybacks an inline reclaim pass (see CommitGroup).
const reclaimThreshold = 4096

// Reclaim frees row versions that no pinned snapshot (and no future
// reader) can see: dead version-chain tails are truncated, fully-dead
// rows leave the row map, the order slice and their index buckets. It
// returns the number of versions freed. Reclaim is a writer and must
// be serialized with mutations like any other write; it runs
// automatically on commits (every reclaimThreshold versions) and from
// the optional background reclaimer.
func (db *Database) Reclaim() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.reclaimLocked()
}

func (db *Database) reclaimLocked() int {
	minSeq := db.oldestVisibleSeq()
	freed := 0
	var pg *pager
	if w := db.wal; w != nil {
		pg = w.pager
	}
	for _, td := range db.tables {
		removed := false
		for id, head := range td.rows {
			if head.end.Load() <= minSeq {
				// Entire chain is invisible to every reader: drop the row.
				for v := head; v != nil; {
					next := v.prev.Load()
					for _, ix := range td.indexes {
						ix.remove(id, v.row.Values)
					}
					v.prev.Store(nil)
					freed++
					v = next
				}
				delete(td.rows, id)
				removed = true
				continue
			}
			// Truncate the dead tail: versions with end <= minSeq are
			// invisible to every snapshot at or above the horizon.
			for v := head; ; {
				p := v.prev.Load()
				if p == nil {
					break
				}
				if p.end.Load() > minSeq {
					v = p
					continue
				}
				v.prev.Store(nil)
				for q := p; q != nil; q = q.prev.Load() {
					removeVersionEntries(td, id, q, head)
					freed++
				}
				break
			}
			// A cold head whose checkpointed page image is current can
			// drop its in-memory values and fault back through the
			// buffer pool — the release valve that keeps resident state
			// bounded when the dataset exceeds RAM.
			if pg != nil {
				demoteCleanLocked(td, id, head)
			}
		}
		if removed {
			td.dirty = true
		}
		// Compact also when rollbacks flagged the order slice (dirty is
		// set by undoInsert too, not only by removals above).
		td.compactLocked()
	}
	db.drainPageQuarantineLocked()
	db.versionsSinceReclaim.Store(0)
	db.versionsReclaimed.Add(int64(freed))
	db.reclaims.Add(1)
	return freed
}

// StartReclaimer runs Reclaim on the given interval in a background
// goroutine until the returned stop function is called (idempotent).
// Long-running hosts (the ufilterd daemon) use it so version chains
// stay shallow even when traffic never commits enough to trip the
// inline threshold; short-lived uses can rely on commit piggybacking
// alone.
func (db *Database) StartReclaimer(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				db.Reclaim()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// VersionStats describes the version store's shape: how much history
// the chains hold and how retention/reclaim are behaving. Computing it
// walks every chain under the read latch — debugging/metrics cost, not
// a hot-path one.
type VersionStats struct {
	// LiveRows counts rows visible to a latest read.
	LiveRows int `json:"live_rows"`
	// VisibleRows counts rows visible at the sequence the stats were
	// taken at: the pinned sequence for Snapshot.VersionStats, the
	// commit sequence for Database.VersionStats (so uncommitted
	// writer state is excluded, unlike LiveRows).
	VisibleRows int `json:"visible_rows"`
	// Versions counts stored row versions, including history.
	Versions int `json:"versions"`
	// MaxChainDepth is the longest version chain (1 = no history).
	MaxChainDepth int `json:"max_chain_depth"`
	// SnapshotsActive is the number of currently pinned snapshots.
	SnapshotsActive int64 `json:"snapshots_active"`
	// SnapshotsOpened counts snapshots ever pinned.
	SnapshotsOpened int64 `json:"snapshots_opened"`
	// VersionsReclaimed counts versions freed by the reclaimer.
	VersionsReclaimed int64 `json:"versions_reclaimed"`
	// Reclaims counts reclaim passes.
	Reclaims int64 `json:"reclaims"`
	// CommitSeq is the last committed sequence number.
	CommitSeq uint64 `json:"commit_seq"`
}

// VersionStats walks the version store and reports its shape;
// VisibleRows is counted at the current commit sequence.
func (db *Database) VersionStats() VersionStats {
	return db.versionStatsAt(db.commitSeq.Load())
}

// VersionStats reports the store's shape with VisibleRows counted at
// the snapshot's pinned sequence — the coherent point-in-time row
// count statistics handlers serve, sharing the single chain walk with
// the depth/version counters instead of walking the store twice.
func (s *Snapshot) VersionStats() VersionStats {
	return s.db.versionStatsAt(s.seq)
}

func (db *Database) versionStatsAt(seq uint64) VersionStats {
	// Collect under the latch, walk chains lock-free (ends and prev
	// links are atomics, content immutable) — an O(total versions)
	// walk must not hold the read latch, or a stats scrape would queue
	// a writer and, through RWMutex writer preference, stall the very
	// checks this engine promises never wait.
	vs := VersionStats{}
	db.mu.RLock()
	heads := make([]*rowVersion, 0, 256)
	for _, td := range db.tables {
		vs.LiveRows += td.live
		for _, head := range td.rows {
			heads = append(heads, head)
		}
	}
	db.mu.RUnlock()
	for _, head := range heads {
		depth := 0
		for v := head; v != nil; v = v.prev.Load() {
			depth++
		}
		vs.Versions += depth
		if depth > vs.MaxChainDepth {
			vs.MaxChainDepth = depth
		}
		if head.visibleAt(seq) != nil {
			vs.VisibleRows++
		}
	}
	db.snapMu.Lock()
	vs.SnapshotsActive = int64(len(db.snaps))
	db.snapMu.Unlock()
	vs.SnapshotsOpened = db.snapshotsOpened.Load()
	vs.VersionsReclaimed = db.versionsReclaimed.Load()
	vs.Reclaims = db.reclaims.Load()
	vs.CommitSeq = db.commitSeq.Load()
	return vs
}
