package relational

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
)

// Failpoints are named crash/error-injection points in the durability
// paths (WAL append, fsync, rotation, checkpoint). They exist for the
// crash-recovery test harness: a child process enables a failpoint in
// crash mode, runs a workload, and dies with SIGKILL exactly at the
// chosen point; the parent then reopens the directory and asserts that
// precisely the committed prefix survived. In error mode the failpoint
// returns ErrInjectedFault instead of killing the process, which is how
// the fsync/write error propagation to group-commit followers is
// tested without leaving the process.
//
// Disabled failpoints cost one atomic load on the WAL path and nothing
// anywhere else. They are never enabled in production; activation is
// explicit (EnableFailpoint) or via the RELATIONAL_FAILPOINTS
// environment variable read by EnableFailpointsFromEnv, which the
// harness sets for its child processes.
const (
	// FpWALAppendBefore fires before a commit group's record is written
	// to the active segment: nothing of the group reaches disk.
	FpWALAppendBefore = "wal.append.before"
	// FpWALAppendPartial fires mid-write: only a prefix of the framed
	// record reaches the file (a torn write). In crash mode the process
	// dies with the frame half-written; in error mode the partial frame
	// is truncated away and the append fails cleanly.
	FpWALAppendPartial = "wal.append.partial"
	// FpWALFsyncBefore fires after the record is written but before it
	// is fsynced: the bytes may or may not survive a crash — recovery
	// must treat them as uncommitted either way until the fsync returns.
	FpWALFsyncBefore = "wal.fsync.before"
	// FpWALFsyncAfter fires after the fsync but before the commit
	// group's stamps are published: the group is durable but the crash
	// happens before any reader saw it. Recovery must replay it.
	FpWALFsyncAfter = "wal.fsync.after"
	// FpWALRotateSeal fires during segment rotation, before the sealed
	// segment's final fsync+close.
	FpWALRotateSeal = "wal.rotate.seal"
	// FpWALRotateOpen fires during segment rotation, after the new
	// active segment has been created.
	FpWALRotateOpen = "wal.rotate.open"
	// FpCheckpointWrite fires when a checkpoint is about to install its
	// rewritten pages into the page store, before anything of the pass is
	// durable: recovery must fall back to the previous page directory
	// plus the full segment chain.
	FpCheckpointWrite = "checkpoint.write"
	// FpCheckpointRename fires in the page store's directory compaction
	// after the replacement base is durable but before the atomic rename
	// installs it: recovery must still see the old base + log chain.
	FpCheckpointRename = "checkpoint.rename"
	// FpCheckpointTruncate fires after the checkpoint's directory record
	// is durable but before the sealed WAL segments it supersedes are
	// deleted: recovery must load the new page directory and skip the
	// already-checkpointed records it will re-encounter in the old
	// segments.
	FpCheckpointTruncate = "checkpoint.truncate"
	// FpPipelineStampAfter fires in the pipelined commit path after a
	// group's sequences are assigned and its claim stamps are replaced,
	// but before the group's record is handed to the WAL writer stage:
	// the group is stamped in memory yet nothing reached disk, so
	// recovery must not contain it and error mode must undo the stamps.
	FpPipelineStampAfter = "pipeline.stamp.after"
	// FpPipelinePublishBefore fires in the WAL writer stage after a
	// group's record is durable (fsynced) but before its commitSeq
	// publish: the crash-mode window where recovery must replay a
	// durable-but-never-visible group, and the error-mode window where
	// the writer must roll the group (and any later groups in its batch)
	// back and truncate their records.
	FpPipelinePublishBefore = "pipeline.publish.before"
	// FpCheckpointCompact fires when the page store decides to fold its
	// directory log chain into a new base, before the replacement base is
	// written: recovery must still see the old base + log chain intact.
	FpCheckpointCompact = "checkpoint.compact"
	// FpPagestoreWrite fires before each checkpoint page is written to
	// the heap file, before anything is durable: recovery must fall back
	// to the previous page directory (fresh heap slots are orphaned and
	// reclaimed as free).
	FpPagestoreWrite = "pagestore.write"
	// FpPagestoreDirectory fires after a checkpoint's pages are durable
	// in the heap but before the directory record installing them is
	// appended: recovery must not see the new pages at all.
	FpPagestoreDirectory = "pagestore.directory"
	// FpCompactPage fires at the start of the page store's asynchronous
	// directory base compaction, before the temp base is written.
	FpCompactPage = "compact.page"
)

// ErrInjectedFault is the error an error-mode failpoint returns. The
// WAL paths wrap it in ErrWALFailed like any real I/O failure.
var ErrInjectedFault = fmt.Errorf("relational: injected fault")

const (
	fpOff int32 = iota
	fpError
	fpCrash
)

type failpointState struct {
	mode  atomic.Int32
	hitAt atomic.Int64 // fire on the Nth evaluation; 0 = every evaluation
	hits  atomic.Int64
}

// fpArmed counts enabled failpoints so the disabled fast path is one
// atomic load. The registry map itself is immutable after package init,
// which is what makes lock-free reads of it safe.
var fpArmed atomic.Int32

var failpoints = map[string]*failpointState{
	FpWALAppendBefore:    {},
	FpWALAppendPartial:   {},
	FpWALFsyncBefore:     {},
	FpWALFsyncAfter:      {},
	FpWALRotateSeal:      {},
	FpWALRotateOpen:      {},
	FpCheckpointWrite:       {},
	FpCheckpointRename:      {},
	FpCheckpointTruncate:    {},
	FpPipelineStampAfter:    {},
	FpPipelinePublishBefore: {},
	FpCheckpointCompact:     {},
	FpPagestoreWrite:        {},
	FpPagestoreDirectory:    {},
	FpCompactPage:           {},
}

// FailpointNames returns every registered failpoint name, sorted. The
// crash harness iterates this list so new durability failpoints are
// covered automatically.
func FailpointNames() []string {
	out := make([]string, 0, len(failpoints))
	for n := range failpoints {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EnableFailpoint arms one failpoint. The spec is "crash" or "error",
// optionally suffixed with "@N" (1-based) to fire on the Nth
// evaluation instead of every one: "wal.fsync.before=crash@3" kills
// the process at the third fsync attempt.
func EnableFailpoint(name, spec string) error {
	fp, ok := failpoints[name]
	if !ok {
		return fmt.Errorf("relational: unknown failpoint %q", name)
	}
	modeStr, at := spec, int64(0)
	if i := strings.IndexByte(spec, '@'); i >= 0 {
		modeStr = spec[:i]
		n, err := strconv.ParseInt(spec[i+1:], 10, 64)
		if err != nil || n < 1 {
			return fmt.Errorf("relational: failpoint %s: bad hit count in %q", name, spec)
		}
		at = n
	}
	var mode int32
	switch modeStr {
	case "crash":
		mode = fpCrash
	case "error":
		mode = fpError
	default:
		return fmt.Errorf("relational: failpoint %s: unknown mode %q (want crash or error)", name, modeStr)
	}
	fp.hits.Store(0)
	fp.hitAt.Store(at)
	if fp.mode.Swap(mode) == fpOff {
		fpArmed.Add(1)
	}
	return nil
}

// DisableFailpoint disarms one failpoint (idempotent).
func DisableFailpoint(name string) {
	if fp, ok := failpoints[name]; ok {
		if fp.mode.Swap(fpOff) != fpOff {
			fpArmed.Add(-1)
		}
	}
}

// DisableAllFailpoints disarms every failpoint.
func DisableAllFailpoints() {
	for n := range failpoints {
		DisableFailpoint(n)
	}
}

// EnableFailpointsFromEnv arms failpoints from the RELATIONAL_FAILPOINTS
// environment variable: a semicolon-separated list of name=spec pairs,
// e.g. "wal.fsync.before=crash@2;checkpoint.rename=crash". The crash
// harness sets it for the child processes it intends to kill.
func EnableFailpointsFromEnv() error {
	env := os.Getenv("RELATIONAL_FAILPOINTS")
	if env == "" {
		return nil
	}
	for _, pair := range strings.Split(env, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, spec, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("relational: RELATIONAL_FAILPOINTS entry %q is not name=spec", pair)
		}
		if err := EnableFailpoint(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

// evalFailpoint is the hook the WAL paths call. It returns nil when the
// failpoint is disabled or its hit count has not been reached,
// ErrInjectedFault in error mode, and does not return at all in crash
// mode: the process kills itself with SIGKILL, exactly like an external
// kill -9 (no deferred functions, no flushes, no exit handlers).
func evalFailpoint(name string) error {
	if failpointFires(name) {
		return fireFailpoint(name)
	}
	return nil
}

// failpointFires consumes one evaluation of the failpoint and reports
// whether it fires now (armed, and its @N hit count — if any — is
// reached on this evaluation). The torn-write point calls it before
// writing the partial frame and fireFailpoint after, so the fault lands
// with the frame half-written.
func failpointFires(name string) bool {
	if fpArmed.Load() == 0 {
		return false
	}
	fp := failpoints[name]
	if fp.mode.Load() == fpOff {
		return false
	}
	n := fp.hits.Add(1)
	at := fp.hitAt.Load()
	return at == 0 || n == at
}

// fireFailpoint fires an armed failpoint: SIGKILL-self in crash mode,
// ErrInjectedFault in error mode. Callers have already established that
// the failpoint is due via failpointFires.
func fireFailpoint(name string) error {
	if failpoints[name].mode.Load() == fpCrash {
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // unreachable: SIGKILL cannot be caught
	}
	return ErrInjectedFault
}
