package relational

import "testing"

// savepointTestDB builds a one-table database with three rows.
func savepointTestDB(t *testing.T) *Database {
	t.Helper()
	item, err := NewTableDef("item", []Column{
		{Name: "id", Type: TypeInt, NotNull: true},
		{Name: "name", Type: TypeString},
	}, []string{"id"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := NewSchema(item)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(schema)
	for i, n := range []string{"ant", "bee", "cat"} {
		if _, err := db.Insert("item", map[string]Value{"id": Int_(int64(i + 1)), "name": String_(n)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestSavepointRollbackTo: rolling back to a savepoint undoes only the
// work logged after it and keeps the transaction open — the per-update
// isolation the group-commit batch path builds on.
func TestSavepointRollbackTo(t *testing.T) {
	db := savepointTestDB(t)
	txn := db.Begin()

	if _, err := txn.Insert("item", map[string]Value{"id": Int_(10), "name": String_("dog")}); err != nil {
		t.Fatal(err)
	}
	mark := txn.Savepoint()
	if _, err := txn.Insert("item", map[string]Value{"id": Int_(11), "name": String_("eel")}); err != nil {
		t.Fatal(err)
	}
	ids, _ := txn.LookupEqual("item", []string{"id"}, []Value{Int_(1)})
	if err := txn.UpdateRow("item", ids[0], map[string]Value{"name": String_("mutated")}); err != nil {
		t.Fatal(err)
	}
	if err := txn.RollbackTo(mark); err != nil {
		t.Fatal(err)
	}
	// Post-savepoint work gone, pre-savepoint work intact, txn open.
	// The transaction's own reads see its surviving uncommitted work.
	if got, _ := txn.LookupEqual("item", []string{"id"}, []Value{Int_(11)}); len(got) != 0 {
		t.Error("row 11 survived RollbackTo")
	}
	vals, _ := txn.ValuesByName("item", ids[0])
	if vals["name"].Str != "ant" {
		t.Errorf("update survived RollbackTo: %v", vals["name"])
	}
	if got, _ := txn.LookupEqual("item", []string{"id"}, []Value{Int_(10)}); len(got) != 1 {
		t.Error("pre-savepoint insert lost")
	}
	// Committed readers see none of it until Commit.
	if got, _ := db.LookupEqual("item", []string{"id"}, []Value{Int_(10)}); len(got) != 0 {
		t.Error("uncommitted insert visible to committed-state readers")
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, _ := db.LookupEqual("item", []string{"id"}, []Value{Int_(10)}); len(got) != 1 {
		t.Error("committed insert lost")
	}
	if db.RowCount("item") != 4 {
		t.Errorf("rows = %d, want 4", db.RowCount("item"))
	}
}

// TestRedoFlushPerCommit: every commit flushes the write-ahead log
// exactly once, so one transaction covering N statements pays one
// flush — the group-commit accounting Stats exposes.
func TestRedoFlushPerCommit(t *testing.T) {
	db := savepointTestDB(t)
	base := db.RedoFlushes()

	txn := db.Begin()
	for i := 20; i < 25; i++ {
		if _, err := txn.Insert("item", map[string]Value{"id": Int_(int64(i)), "name": String_("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := db.RedoFlushes() - base; got != 1 {
		t.Errorf("flushes after one commit = %d, want 1", got)
	}
	// Five single-statement transactions: five flushes.
	for i := 30; i < 35; i++ {
		txn := db.Begin()
		if _, err := txn.Insert("item", map[string]Value{"id": Int_(int64(i)), "name": String_("y")}); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.RedoFlushes() - base; got != 6 {
		t.Errorf("flushes = %d, want 6", got)
	}
	if db.Stats().RedoFlushes != db.RedoFlushes() {
		t.Error("Stats().RedoFlushes disagrees with RedoFlushes()")
	}
	// A commit group publishing N transactions still flushes once.
	t1, t2, t3 := db.Begin(), db.Begin(), db.Begin()
	for i, tx := range []*Txn{t1, t2, t3} {
		if _, err := tx.Insert("item", map[string]Value{"id": Int_(int64(40 + i)), "name": String_("g")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CommitGroup(t1, t2, t3); err != nil {
		t.Fatal(err)
	}
	if got := db.RedoFlushes() - base; got != 7 {
		t.Errorf("flushes after a 3-txn commit group = %d, want 7", got)
	}
	// Rollback does not flush.
	txn = db.Begin()
	if _, err := txn.Insert("item", map[string]Value{"id": Int_(99), "name": String_("z")}); err != nil {
		t.Fatal(err)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := db.RedoFlushes() - base; got != 7 {
		t.Errorf("rollback flushed: %d, want 7", got)
	}
}
