package relational

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestPagedDemotionAndFault is the paged-storage round trip: checkpoint
// demotes committed cold rows to value-less stubs, reads fault their
// pages back in through the buffer pool, and writes against demoted
// rows materialize first and stay correct across recovery.
func TestPagedDemotionAndFault(t *testing.T) {
	dir := t.TempDir()
	db, _ := openWALDB(t, dir, WALOptions{PageCacheBytes: 64 << 10})
	ids := make([]RowID, 0, 50)
	for i := int64(1); i <= 50; i++ {
		ids = append(ids, mustInsertParent(t, db, i, fmt.Sprintf("name-%d", i)))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.PagesTotal == 0 {
		t.Fatalf("no pages after checkpoint: %+v", st)
	}
	// Every insert was a lone committed version at the pin, so the
	// checkpoint demoted it; the reads below must fault.
	for i, id := range ids {
		r, err := db.Get("parent", id)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("name-%d", i+1); r.Values[1].Str != want {
			t.Fatalf("row %d faulted %q, want %q", id, r.Values[1].Str, want)
		}
	}
	if st = db.Stats(); st.PagecacheMisses == 0 {
		t.Fatalf("reads after demotion faulted no pages: %+v", st)
	}

	// Write paths against demoted rows: update materializes first.
	if err := db.UpdateRow("parent", ids[0], map[string]Value{"name": String_("updated")}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete("parent", ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := dumpDB(t, db)
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	db2, info := openWALDB(t, dir, WALOptions{PageCacheBytes: 64 << 10})
	if info.CheckpointRows != 49 {
		t.Fatalf("recovered %d checkpoint rows, want 49", info.CheckpointRows)
	}
	if got := dumpDB(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered paged state:\n got %v\nwant %v", got, want)
	}
	// Unique index rebuilt from directory metadata, without page reads.
	if rows, err := db2.LookupEqual("parent", []string{"name"}, []Value{String_("updated")}); err != nil || len(rows) != 1 {
		t.Fatalf("index lookup after lazy recovery: rows=%v err=%v", rows, err)
	}
}

// TestDataBeyondPoolBudget runs a dataset far larger than the buffer
// pool: the workload must evict, every row must still read back
// correctly, and a restart must recover lazily (no faults until the
// first read) into the same bounded pool.
func TestDataBeyondPoolBudget(t *testing.T) {
	dir := t.TempDir()
	// ~2000 rows x ~120B payload is ~60 pages; budget two frames' worth.
	opts := WALOptions{PageCacheBytes: 8 << 10}
	db, _ := openWALDB(t, dir, opts)
	for i := int64(1); i <= 2000; i++ {
		mustInsertParent(t, db, i, fmt.Sprintf("padpadpadpadpadpadpadpadpadpadpadpadpadpadpad-%d", i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		n := 0
		if err := db.Scan("parent", func(r *Row) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		if n != 2000 {
			t.Fatalf("scan pass %d saw %d rows, want 2000", pass, n)
		}
	}
	st := db.Stats()
	if st.PagecacheEvictions == 0 {
		t.Fatalf("dataset beyond budget evicted nothing: %+v", st)
	}
	want := dumpDB(t, db)
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	db2, info := openWALDB(t, dir, opts)
	if info.CheckpointRows != 2000 {
		t.Fatalf("recovered %d checkpoint rows, want 2000", info.CheckpointRows)
	}
	if st := db2.Stats(); st.PagecacheMisses != 0 {
		t.Fatalf("recovery faulted %d pages before any read — not lazy", st.PagecacheMisses)
	}
	if got := dumpDB(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered beyond-budget state diverged")
	}
}

// TestPagedReadsVsCheckpointStress races faulting readers against
// writers and checkpoints under a tiny pool, the -race proof of the
// pager's latch/quarantine contract: snapshots fault after dropping the
// latch while checkpoint apply demotes, invalidates and frees slots.
func TestPagedReadsVsCheckpointStress(t *testing.T) {
	dir := t.TempDir()
	db, _ := openWALDB(t, dir, WALOptions{PageCacheBytes: 4 << 10})
	const rows = 200
	ids := make([]RowID, 0, rows)
	for i := int64(1); i <= rows; i++ {
		ids = append(ids, mustInsertParent(t, db, i, fmt.Sprintf("stress-%d", i)))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if g%2 == 0 {
					if _, err := db.Get("parent", ids[i%rows]); err != nil {
						t.Error(err)
						return
					}
				} else {
					snap := db.Snapshot()
					n := 0
					if err := snap.Scan("parent", func(*Row) bool { n++; return n < 50 }); err != nil {
						t.Error(err)
						snap.Close()
						return
					}
					snap.Close()
				}
			}
		}(g)
	}
	for round := 0; round < 20; round++ {
		for j := 0; j < 10; j++ {
			id := ids[(round*10+j)%rows]
			if err := db.UpdateRow("parent", id, map[string]Value{
				"name": String_(fmt.Sprintf("stress-%d-%d", round, j)),
			}); err != nil {
				t.Error(err)
			}
		}
		if err := db.Checkpoint(); err != nil {
			t.Error(err)
		}
		db.Reclaim()
	}
	close(stop)
	wg.Wait()
}
