package relational

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestPipelinePublishOrderInvariant hammers the pipelined commit path
// with concurrent writers while a reader snapshots continuously: every
// snapshot must see each writer's commits as a prefix of that writer's
// own sequence — the sequence-barrier publish means a later commit can
// never become visible before an earlier one. Run under -race this also
// checks the writer stage's synchronization.
func TestPipelinePublishOrderInvariant(t *testing.T) {
	const writers, perWriter = 4, 40
	db, _ := openWALDB(t, t.TempDir(), WALOptions{})

	var wg sync.WaitGroup
	stopRead := make(chan struct{})
	readErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			snap := db.Snapshot()
			maxSeen := make([]int64, writers)
			seen := make(map[int64]bool)
			err := snap.Scan("parent", func(r *Row) bool {
				id := r.Values[0].Int
				w, k := id/1000, id%1000
				seen[id] = true
				if k > maxSeen[w] {
					maxSeen[w] = k
				}
				return true
			})
			snap.Close()
			if err != nil {
				select {
				case readErr <- err:
				default:
				}
				return
			}
			for w := 0; w < writers; w++ {
				for k := int64(1); k <= maxSeen[w]; k++ {
					if !seen[int64(w)*1000+k] {
						select {
						case readErr <- fmt.Errorf("writer %d: commit %d visible but %d missing", w, maxSeen[w], k):
						default:
						}
						return
					}
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := int64(1); k <= perWriter; k++ {
				id := int64(w)*1000 + k
				if _, err := db.Insert("parent", map[string]Value{
					"id": Int_(id), "name": String_(fmt.Sprintf("w%d-%d", w, k)),
				}); err != nil {
					t.Errorf("writer %d commit %d: %v", w, k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopRead)
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}
	if n := db.RowCount("parent"); n != writers*perWriter {
		t.Fatalf("rows = %d, want %d", n, writers*perWriter)
	}
}

// TestPipelineFsyncErrorUnderConcurrency injects a one-shot fsync
// failure while concurrent commits stream through the pipeline: the
// groups sharing the failed flush roll back with ErrWALFailed, every
// other commit survives, and recovery reproduces exactly the surviving
// set — a failed group never resurfaces, a successful one never
// disappears.
func TestPipelineFsyncErrorUnderConcurrency(t *testing.T) {
	const writers, perWriter = 4, 25
	dir := t.TempDir()
	db, _ := openWALDB(t, dir, WALOptions{})
	if err := EnableFailpoint(FpWALFsyncBefore, "error@10"); err != nil {
		t.Fatal(err)
	}
	defer DisableAllFailpoints()

	var mu sync.Mutex
	committed := make(map[int64]bool)
	var failures int
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := int64(1); k <= perWriter; k++ {
				id := int64(w)*1000 + k
				_, err := db.Insert("parent", map[string]Value{
					"id": Int_(id), "name": String_(fmt.Sprintf("w%d-%d", w, k)),
				})
				mu.Lock()
				switch {
				case err == nil:
					committed[id] = true
				case errors.Is(err, ErrWALFailed):
					failures++
				default:
					t.Errorf("commit %d: unexpected error %v", id, err)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	DisableAllFailpoints()
	if failures == 0 {
		t.Fatal("fsync failpoint never failed a commit")
	}
	if n := db.RowCount("parent"); n != len(committed) {
		t.Fatalf("visible rows = %d, want %d committed", n, len(committed))
	}
	want := dumpDB(t, db)
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	db2, _ := openWALDB(t, dir, WALOptions{})
	if got := dumpDB(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state != surviving state:\n got %v\nwant %v", got, want)
	}
}

// TestPipelineFailpointsRollBackCleanly covers the two pipeline-boundary
// failpoints in error mode: stamp.after fails the group before its
// record is handed to the writer stage, publish.before fails it after
// the record is durable — which must also remove the record from disk,
// or recovery would replay a commit whose caller saw ErrWALFailed.
func TestPipelineFailpointsRollBackCleanly(t *testing.T) {
	for _, fp := range []string{FpPipelineStampAfter, FpPipelinePublishBefore} {
		t.Run(fp, func(t *testing.T) {
			dir := t.TempDir()
			db, _ := openWALDB(t, dir, WALOptions{})
			mustInsertParent(t, db, 1, "base")
			if err := EnableFailpoint(fp, "error"); err != nil {
				t.Fatal(err)
			}
			defer DisableAllFailpoints()
			_, err := db.Insert("parent", map[string]Value{"id": Int_(2), "name": String_("doomed")})
			if !errors.Is(err, ErrWALFailed) {
				t.Fatalf("insert error = %v, want ErrWALFailed", err)
			}
			DisableAllFailpoints()
			if n := db.RowCount("parent"); n != 1 {
				t.Fatalf("rows after failed commit = %d, want 1", n)
			}
			mustInsertParent(t, db, 3, "survivor")
			want := dumpDB(t, db)
			if err := db.CloseWAL(); err != nil {
				t.Fatal(err)
			}
			db2, _ := openWALDB(t, dir, WALOptions{})
			if got := dumpDB(t, db2); !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered state:\n got %v\nwant %v", got, want)
			}
		})
	}
}

// TestDisablePipelineParity runs the same workload through the
// synchronous fallback path and requires identical results — the A/B
// switch the commit benchmark relies on.
func TestDisablePipelineParity(t *testing.T) {
	dir := t.TempDir()
	db, _ := openWALDB(t, dir, WALOptions{DisablePipeline: true})
	for i := int64(1); i <= 10; i++ {
		mustInsertParent(t, db, i, Value{Kind: KindInt, Int: i}.String())
	}
	want := dumpDB(t, db)
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	db2, info := openWALDB(t, dir, WALOptions{})
	if info.ReplayedTxns != 10 {
		t.Fatalf("replayed %d txns, want 10", info.ReplayedTxns)
	}
	if got := dumpDB(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state:\n got %v\nwant %v", got, want)
	}
}

// countFiles returns how many directory entries carry the given suffix.
func countFiles(t testing.TB, dir, suffix string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), suffix) {
			n++
		}
	}
	return n
}

// TestCheckpointDirectoryChainAndCompaction walks the page-directory
// lifecycle: each checkpoint appends one install record and grows the
// chain gauge; crossing CheckpointDeltaLimit folds the log into a fresh
// base (asynchronously, resetting the gauge); and recovery through a
// live chain reproduces the exact state.
func TestCheckpointDirectoryChainAndCompaction(t *testing.T) {
	dir := t.TempDir()
	db, _ := openWALDB(t, dir, WALOptions{CheckpointDeltaLimit: 2})
	for i := int64(1); i <= 10; i++ {
		mustInsertParent(t, db, i, Value{Kind: KindInt, Int: i}.String())
	}
	// OpenWAL's initial checkpoint wrote record 1; the next pass is 2,
	// and the one after crosses the limit and resets the gauge as the
	// fold kicks off.
	mustInsertParent(t, db, 101, "a")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().CheckpointDeltaChainLen; got != 2 {
		t.Fatalf("chain length after second install = %d, want 2", got)
	}
	mustInsertParent(t, db, 102, "b")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().CheckpointDeltaChainLen; got != 0 {
		t.Fatalf("chain length after fold trigger = %d, want 0", got)
	}

	// Recovery through the page directory + WAL tail.
	mustInsertParent(t, db, 200, "tail")
	want := dumpDB(t, db)
	if err := db.CloseWAL(); err != nil { // waits out the async fold
		t.Fatal(err)
	}
	db2, info := openWALDB(t, dir, WALOptions{CheckpointDeltaLimit: 2})
	if info.CheckpointRows != 12 {
		t.Fatalf("recovery restored %d checkpoint rows, want 12", info.CheckpointRows)
	}
	if got := dumpDB(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state through directory chain:\n got %v\nwant %v", got, want)
	}

	mustInsertParent(t, db2, 300, "post")
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want2 := dumpDB(t, db2)
	if err := db2.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	db3, _ := openWALDB(t, dir, WALOptions{})
	if got := dumpDB(t, db3); !reflect.DeepEqual(got, want2) {
		t.Fatalf("recovered state after compaction:\n got %v\nwant %v", got, want2)
	}
}

// TestCheckpointIsODirtyPages is the O(dirty-pages) proxy: a checkpoint
// that saw 5 writes against a 400-row database must write far fewer
// heap pages than the one that covered all 400 — the pause's work
// scales with the dirty set, not database size.
func TestCheckpointIsODirtyPages(t *testing.T) {
	dir := t.TempDir()
	db, _ := openWALDB(t, dir, WALOptions{CheckpointDeltaLimit: 8})
	pad := strings.Repeat("x", 100) // spread 400 rows over many pages
	for i := int64(1); i <= 400; i++ {
		mustInsertParent(t, db, i, fmt.Sprintf("%s-%d", pad, i))
	}
	before := db.Stats().CompactionPagesWritten
	if err := db.Checkpoint(); err != nil { // all 400 rows dirty
		t.Fatal(err)
	}
	allPages := db.Stats().CompactionPagesWritten - before
	for i := int64(1); i <= 5; i++ {
		mustInsertParent(t, db, 1000+i, fmt.Sprintf("%s+%d", pad, i))
	}
	before = db.Stats().CompactionPagesWritten
	if err := db.Checkpoint(); err != nil { // exactly 5 rows dirty
		t.Fatal(err)
	}
	dirtyPages := db.Stats().CompactionPagesWritten - before
	if dirtyPages*5 > allPages {
		t.Fatalf("checkpoint of 5 dirty rows wrote %d pages vs %d for 400 — not O(dirty-pages)", dirtyPages, allPages)
	}
}

// TestWALSegmentRecycling drives enough rotations and checkpoints that
// retired segments enter the free list and later rotations reuse them:
// the recycled counter climbs, at most walRecycleKeep recycle files sit
// on disk, and recovery is untouched by their presence.
func TestWALSegmentRecycling(t *testing.T) {
	dir := t.TempDir()
	db, _ := openWALDB(t, dir, WALOptions{SegmentBytes: 256, CheckpointEverySegments: 2})
	for i := int64(1); i <= 80; i++ {
		mustInsertParent(t, db, i, Value{Kind: KindInt, Int: i}.String())
	}
	st := db.Stats()
	if st.WALRecycledSegments == 0 {
		t.Fatalf("no segments recycled: %+v", st)
	}
	if n := countFiles(t, dir, walRecycleSuffix); n > walRecycleKeep {
		t.Fatalf("%d recycle files on disk, cap is %d", n, walRecycleKeep)
	}
	want := dumpDB(t, db)
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	db2, info := openWALDB(t, dir, WALOptions{SegmentBytes: 256})
	if info.TornTail {
		t.Fatalf("recycle files confused recovery: %+v", info)
	}
	if got := dumpDB(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state with recycle files present:\n got %v\nwant %v", got, want)
	}
}

// TestPreallocatedSegmentRecovery: with preallocation the active
// segment carries zeroed slack after the live frames; recovery must
// trim it silently — the same on-disk shape a recycled segment's reuse
// produces — without reporting a torn tail.
func TestPreallocatedSegmentRecovery(t *testing.T) {
	dir := t.TempDir()
	db, _ := openWALDB(t, dir, WALOptions{SegmentBytes: 4096, PreallocateSegments: true})
	for i := int64(1); i <= 5; i++ {
		mustInsertParent(t, db, i, Value{Kind: KindInt, Int: i}.String())
	}
	want := dumpDB(t, db)
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(lastSegment(t, dir)); err != nil || fi.Size() != 4096 {
		t.Fatalf("expected preallocated 4096-byte segment, got %v (err %v)", fi, err)
	}
	db2, info := openWALDB(t, dir, WALOptions{SegmentBytes: 4096, PreallocateSegments: true})
	if info.TornTail {
		t.Fatalf("zeroed preallocation slack reported as torn tail: %+v", info)
	}
	if info.ReplayedTxns != 5 {
		t.Fatalf("replayed %d txns, want 5", info.ReplayedTxns)
	}
	if got := dumpDB(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state:\n got %v\nwant %v", got, want)
	}
}
