package relational

import "fmt"

// undoKind discriminates undo-log entries.
type undoKind int

const (
	undoInsert undoKind = iota // compensate by popping the inserted version
	undoDelete                 // compensate by reviving the delete-stamped head
	undoUpdate                 // compensate by popping the new version off the chain
)

// undoEntry records one compensating action. Under MVCC the pre-images
// live in the row's version chain, so undo only needs to know which
// chain to pop or revive — no saved row copies. The version pointer is
// carried so commit's publish phase can replace the transaction's claim
// stamps with the real commit sequence without any map lookups or
// latches: the undo log doubles as the transaction's write-set.
type undoEntry struct {
	kind  undoKind
	table string
	id    RowID
	v     *rowVersion // created (insert/update) or delete-stamped version
}

// Txn is an explicit transaction over a Database. Any number of
// transactions may be open against one Database at a time; each claims
// the rows it writes by stamping versions with its transaction mark,
// and a write that meets another transaction's claim — or a version
// committed after this transaction's read sequence — fails immediately
// with ErrWriteConflict (first-updater-wins, so conflicts never
// deadlock and never wait).
//
// A transaction is also a Reader: its reads resolve row version chains
// at its read sequence overlaid with its own uncommitted writes, so
// probes inside the transaction observe a stable snapshot plus their
// own effects. A Txn must not be shared by concurrent goroutines
// (hand-off between goroutines — as the group-commit scheduler does —
// is fine when synchronized).
//
// Commit is two-phase: the validation happened eagerly at every write
// (the claim checks), so commit only publishes — under the database's
// commit latch it replaces every claim stamp with the next commit
// sequence, flushes the write-ahead log, and advances the commit
// sequence, making the transaction's effects visible to snapshot
// readers atomically, or never (Rollback pops the uncommitted versions
// off their chains). CommitGroup publishes many transactions under one
// latch acquisition and ONE log flush — the group-commit primitive the
// plan layer's scheduler drives.
type Txn struct {
	db      *Database
	id      uint64 // stamps claims; txnMark(id) in begin/end fields
	readSeq uint64 // commit sequence pinned at Begin
	seq     uint64 // commit sequence assigned by CommitGroup, pre-publish
	log     []undoEntry
	done    bool
}

// Begin starts a transaction pinned at the current commit sequence.
func (db *Database) Begin() *Txn {
	t := &Txn{db: db, id: db.nextTxnID.Add(1)}
	db.txnMu.Lock()
	t.readSeq = db.commitSeq.Load()
	db.txns[t] = struct{}{}
	db.txnMu.Unlock()
	db.txnsActive.Add(1)
	db.txnsStarted.Add(1)
	return t
}

// forget removes the transaction from the active registry, releasing
// its pin on the reclaim horizon.
func (db *Database) forget(t *Txn) {
	db.txnMu.Lock()
	delete(db.txns, t)
	db.txnMu.Unlock()
	db.txnsActive.Add(-1)
}

// ReadSeq returns the commit sequence the transaction reads at.
func (t *Txn) ReadSeq() uint64 { return t.readSeq }

func (t *Txn) recordInsert(table string, id RowID, v *rowVersion) {
	t.log = append(t.log, undoEntry{kind: undoInsert, table: table, id: id, v: v})
}

func (t *Txn) recordDelete(table string, id RowID, v *rowVersion) {
	t.log = append(t.log, undoEntry{kind: undoDelete, table: table, id: id, v: v})
}

func (t *Txn) recordUpdate(table string, id RowID, v *rowVersion) {
	t.log = append(t.log, undoEntry{kind: undoUpdate, table: table, id: id, v: v})
}

// OpCount returns the number of logged operations (touched tuples).
func (t *Txn) OpCount() int { return len(t.log) }

// Insert adds a row through the transaction. It enforces, in order:
// type coercion, NOT NULL, CHECK, primary key / UNIQUE, and foreign key
// existence. A duplicate key held by another in-flight transaction
// surfaces as ErrWriteConflict rather than a constraint violation: the
// retry resolves against the winner's outcome.
func (t *Txn) Insert(table string, values map[string]Value) (RowID, error) {
	if t.done {
		return 0, errTxnFinished()
	}
	return t.db.txnInsert(t, table, values)
}

// Delete removes the row with the given id through the transaction,
// applying referential delete policies (CASCADE/SET NULL/RESTRICT)
// transitively. Deleting a row claimed by another in-flight
// transaction, or modified by a transaction that committed after this
// one's read sequence, fails with ErrWriteConflict.
func (t *Txn) Delete(table string, id RowID) (int, error) {
	if t.done {
		return 0, errTxnFinished()
	}
	return t.db.txnDelete(t, table, id)
}

// UpdateRow modifies the named columns of a row through the
// transaction, re-checking NOT NULL, CHECK, uniqueness and foreign
// keys for the new values. Like Delete, a contended row fails with
// ErrWriteConflict.
func (t *Txn) UpdateRow(table string, id RowID, changes map[string]Value) error {
	if t.done {
		return errTxnFinished()
	}
	return t.db.txnUpdate(t, table, id, changes)
}

func errTxnFinished() error {
	return fmt.Errorf("relational: transaction already finished")
}

// Commit finishes the transaction: the undo log becomes the publish
// list, the write-ahead log flushes once, and the commit sequence
// advances, making every version the transaction created visible to
// subsequent snapshots atomically. Equivalent to
// db.CommitGroup(t) — use CommitGroup directly to share the flush
// across concurrently committing transactions.
func (t *Txn) Commit() error {
	return t.db.CommitGroup(t)
}

// CommitGroup publishes any number of transactions under one commit
// latch acquisition and ONE write-ahead log flush — the group-commit
// primitive: N concurrently arriving committers pay one flush, not N.
// Each transaction's effects still become visible atomically (the
// commit sequence advances once per transaction, after all stamps of
// the group are placed), and each transaction is all-or-nothing.
// A transaction that already finished contributes an error without
// disturbing its group siblings.
//
// With a durable WAL attached the group's record is appended and
// fsynced BEFORE any stamp publishes — write-ahead discipline: nothing
// becomes visible (let alone acknowledged) until it would survive a
// crash. If the append or fsync fails, the entire group rolls back and
// every member receives an error wrapping ErrWALFailed: a follower's
// fate is the leader's flush, so the leader's I/O failure must reach
// every follower rather than being swallowed.
//
// When the WAL's pipelined writer stage is running (the default), the
// commit latch covers only sequence assignment and stamping: the
// encoded record is handed to the writer stage and the latch releases,
// so the next group validates and stamps while this group's fsync is in
// flight. Visibility still waits for the fsync — the writer advances
// commitSeq strictly in group order, only after each group's record is
// durable — so every contract above holds unchanged.
func (db *Database) CommitGroup(txns ...*Txn) error {
	if w := db.wal; w != nil && w.pipe != nil {
		return db.commitPipelined(w, txns)
	}
	pg, err := db.PrepareGroup(0, txns)
	if err != nil {
		return err
	}
	n := len(pg.live)
	err = pg.Publish()
	if n > 0 {
		db.commitMaintenance()
	}
	return err
}

// commitPipelined is CommitGroup through the WAL writer stage: encode
// off-latch, stamp under the latch, enqueue, release the latch, then
// wait for the writer's in-order durable publish (or rollback).
func (db *Database) commitPipelined(w *WAL, txns []*Txn) error {
	var firstErr error
	live := make([]*Txn, 0, len(txns))
	for _, t := range txns {
		if t == nil {
			continue
		}
		if t.done {
			// Only the owning goroutine finishes a Txn, so this check
			// needs no latch (the same reason Commit/Rollback don't).
			if firstErr == nil {
				firstErr = errTxnFinished()
			}
			continue
		}
		live = append(live, t)
	}
	if len(live) == 0 {
		return firstErr
	}
	// The expensive part of the record — every row image — is encoded
	// before the latch; only the stamped sequences are spliced in later.
	bodies := make([][]byte, len(live))
	for i, t := range live {
		bodies[i] = appendTxnOpsBody(nil, t)
	}
	req := &walReq{live: live, bodies: bodies, done: make(chan error, 1)}

	db.commitMu.Lock()
	if w.closed {
		for _, t := range live {
			t.done = true
		}
		return db.failPreparedLocked(live, ErrWALClosed)
	}
	seq := db.stampSeq.Load()
	for _, t := range live {
		t.done = true
		seq++
		t.seq = seq
		t.publish(t.seq)
	}
	db.stampSeq.Store(seq)
	db.markDirtyGroupLocked(live)
	if err := evalFailpoint(FpPipelineStampAfter); err != nil {
		return db.failPreparedLocked(live, err)
	}
	db.flushRedo()
	req.seq = seq
	w.pipeDepth.Add(1)
	w.pipe <- req
	db.commitMu.Unlock()

	if err := <-req.done; err != nil {
		return err // already wraps ErrWALFailed; the writer rolled us back
	}
	db.commitMaintenance()
	return firstErr
}

// failPreparedLocked undoes a stamped-but-not-durable group under the
// held commit latch, releases the latch, and returns the wrapped cause.
// The stamps never published (commitSeq never reached their sequences),
// so the undo is invisible to every reader; the consumed sequences are
// simply never reissued.
func (db *Database) failPreparedLocked(live []*Txn, cause error) error {
	db.mu.Lock()
	for _, t := range live {
		_ = t.undoFromLocked(0)
		t.log = nil
	}
	db.mu.Unlock()
	db.commitMu.Unlock()
	for _, t := range live {
		db.forget(t)
	}
	return fmt.Errorf("%w: %v", ErrWALFailed, cause)
}

// commitMaintenance runs the work commits piggyback after publishing,
// outside every latch: version reclamation past the threshold and
// segment-count-triggered checkpoints.
func (db *Database) commitMaintenance() {
	if db.versionsSinceReclaim.Load() >= reclaimThreshold {
		db.Reclaim()
	}
	db.maybeCheckpoint()
}

// MaybeMaintain exposes the post-commit maintenance pass for callers
// that publish prepared groups directly (the cross-shard coordinator):
// Publish itself cannot run it, because such callers still hold latches
// a checkpoint must acquire.
func (db *Database) MaybeMaintain() { db.commitMaintenance() }

// PreparedGroup is a commit group whose write-ahead-log record is
// durable but whose stamps have not published: the database's commit
// latch is HELD between PrepareGroup and Publish/Abort, so nothing else
// can commit (or observe a half-committed sequence) in between. It is
// the per-shard half of a cross-shard two-phase commit: the coordinator
// prepares every touched shard, records the transaction id durably,
// then publishes everywhere (see internal/shard).
type PreparedGroup struct {
	db       *Database
	live     []*Txn
	seq      uint64 // last sequence assigned to the group
	xid      uint64
	firstErr error // already-finished members, surfaced at Publish
	done     bool
}

// PrepareGroup assigns commit sequences to the group and makes its WAL
// record durable under the commit latch, WITHOUT publishing: on success
// the latch stays held until Publish or Abort. The xid tags the record
// for cross-shard atomicity — recovery replays an xid-tagged group only
// when the coordinator's log marks the xid committed; xid 0 means a
// plain single-shard group, always replayed (CommitGroup's path).
//
// A WAL append or fsync failure undoes the whole group, releases the
// latch and returns an error wrapping ErrWALFailed, exactly like a
// CommitGroup flush failure.
func (db *Database) PrepareGroup(xid uint64, txns []*Txn) (*PreparedGroup, error) {
	var firstErr error
	live := make([]*Txn, 0, len(txns))
	for _, t := range txns {
		if t == nil {
			continue
		}
		if t.done {
			if firstErr == nil {
				firstErr = errTxnFinished()
			}
			continue
		}
		live = append(live, t)
	}
	w := db.wal
	pipelined := w != nil && w.pipe != nil && len(live) > 0
	var bodies [][]byte
	if pipelined {
		bodies = make([][]byte, len(live))
		for i, t := range live {
			bodies[i] = appendTxnOpsBody(nil, t)
		}
	}
	db.commitMu.Lock()
	seq := db.stampSeq.Load()
	for _, t := range live {
		t.done = true
		seq++
		t.seq = seq
		// Stamps are placed at prepare: they stay invisible until Publish
		// advances commitSeq past them, and Abort (or a flush failure)
		// undoes them before anything could observe the sequences.
		t.publish(t.seq)
	}
	if len(live) > 0 {
		db.stampSeq.Store(seq)
		db.markDirtyGroupLocked(live)
		if pipelined {
			if err := evalFailpoint(FpPipelineStampAfter); err != nil {
				return nil, db.failPreparedLocked(live, err)
			}
			if w.closed {
				return nil, db.failPreparedLocked(live, ErrWALClosed)
			}
			db.flushRedo()
			req := &walReq{xid: xid, live: live, bodies: bodies, seq: seq, prepare: true, done: make(chan error, 1)}
			w.pipeDepth.Add(1)
			w.pipe <- req
			// Wait with the latch HELD: the ack means this group's record
			// is durable and every earlier group has published, so
			// Publish/Abort runs against a caught-up commit sequence and
			// nothing else can stamp in between.
			if err := <-req.done; err != nil {
				return nil, db.failPreparedLocked(live, err)
			}
		} else {
			if err := db.flushWAL(xid, live); err != nil {
				// Nothing published yet: every version still carries only
				// its pre-publish stamp, so the whole group can be undone
				// exactly like a rollback. commitMu is held throughout,
				// which keeps the failed group atomic against concurrent
				// committers; taking db.mu inside commitMu is safe because
				// no path acquires them in the opposite order.
				return nil, db.failPreparedLocked(live, err)
			}
		}
	}
	return &PreparedGroup{db: db, live: live, seq: seq, xid: xid, firstErr: firstErr}, nil
}

// Publish advances the commit sequence past the prepared group's
// stamps — placed at prepare, invisible until this single store — making
// the group visible atomically, then releases the commit latch.
//
// Publish runs no piggybacked maintenance: cross-shard callers invoke
// it while holding coordination latches a checkpoint would need; they
// call MaybeMaintain after releasing them (CommitGroup does the same on
// the single-shard path).
func (pg *PreparedGroup) Publish() error {
	if pg.done {
		return errTxnFinished()
	}
	pg.done = true
	db := pg.db
	if len(pg.live) > 0 {
		// All stamps were placed BEFORE this single sequence advance,
		// which is what makes each transaction atomic to snapshot
		// readers: a snapshot pinned before the store sees none of the
		// group's versions (their begins exceed its sequence), one pinned
		// after sees every committed transaction whole.
		db.commitSeq.Store(pg.seq)
		db.groupCommits.Add(1)
		db.groupedTxns.Add(int64(len(pg.live)))
	}
	db.commitMu.Unlock()
	for _, t := range pg.live {
		t.log = nil
		db.forget(t)
	}
	return pg.firstErr
}

// Abort undoes a prepared group — its stamps were placed at prepare but
// never published, so popping the versions is invisible to every
// reader — and releases the commit latch. The group's WAL record stays
// on disk, but its xid never reaches the coordinator's log, so recovery
// discards it — which is why Abort is only valid for xid-tagged groups
// (a plain xid-0 record would be replayed). The commit sequence never
// reaches the aborted stamps' sequences and they are not reissued
// (stampSeq has moved past them): the gap is permanent and harmless,
// recovery's replay filter keeps the aborted record from claiming it.
func (pg *PreparedGroup) Abort() error {
	if pg.done {
		return errTxnFinished()
	}
	if pg.xid == 0 {
		return fmt.Errorf("relational: cannot abort a prepared group without a transaction id (its record would replay)")
	}
	pg.done = true
	db := pg.db
	db.mu.Lock()
	for _, t := range pg.live {
		_ = t.undoFromLocked(0)
		t.log = nil
	}
	db.mu.Unlock()
	db.commitMu.Unlock()
	for _, t := range pg.live {
		db.forget(t)
	}
	return nil
}

// publish replaces every claim stamp the transaction placed with the
// assigned commit sequence. It touches only atomics on versions the
// transaction owns (no latches): concurrent readers observe either the
// claim (invisible / still-visible-predecessor) or the final sequence,
// both correct at their pinned sequence. Callers hold commitMu.
func (t *Txn) publish(seq uint64) {
	mark := txnMark(t.id)
	for i := range t.log {
		en := &t.log[i]
		switch en.kind {
		case undoInsert:
			en.v.begin.CompareAndSwap(mark, seq)
		case undoUpdate:
			en.v.begin.CompareAndSwap(mark, seq)
			if p := en.v.prev.Load(); p != nil {
				p.end.CompareAndSwap(mark, seq)
			}
		case undoDelete:
			en.v.end.CompareAndSwap(mark, seq)
		}
	}
}

// Savepoint marks the current position in the undo log. RollbackTo
// with the returned mark undoes everything logged after it, which is
// how a batch apply rejects one update without aborting its siblings.
func (t *Txn) Savepoint() int { return len(t.log) }

// RollbackTo replays the undo log in reverse down to the given
// savepoint, keeping the transaction open.
func (t *Txn) RollbackTo(mark int) error {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	if t.done {
		return errTxnFinished()
	}
	if mark < 0 || mark > len(t.log) {
		return fmt.Errorf("relational: savepoint %d out of range (log has %d entries)", mark, len(t.log))
	}
	if err := t.undoFromLocked(mark); err != nil {
		return err
	}
	t.log = t.log[:mark]
	return nil
}

// Rollback replays the undo log in reverse, releasing every row claim
// and restoring the database to its state at Begin. The popped
// versions were never visible to any other reader (their stamps never
// committed), so neither readers nor competing writers can observe the
// rollback in progress — a competitor that lost a claim race to this
// transaction simply succeeds on retry.
func (t *Txn) Rollback() error {
	t.db.mu.Lock()
	if t.done {
		t.db.mu.Unlock()
		return errTxnFinished()
	}
	t.done = true
	err := t.undoFromLocked(0)
	t.log = nil
	t.db.mu.Unlock()
	t.db.forget(t)
	return err
}

// undoFromLocked compensates log entries [from, len) in reverse order.
// Every touched version carries this transaction's claim stamp, so the
// compensation cannot collide with other transactions' work. Callers
// hold the database latch.
func (t *Txn) undoFromLocked(from int) error {
	for i := len(t.log) - 1; i >= from; i-- {
		e := t.log[i]
		td, err := t.db.tableData(e.table)
		if err != nil {
			return err
		}
		switch e.kind {
		case undoInsert:
			// Pop the inserted version. It was uncommitted, hence
			// invisible to every other reader, so its index entries go
			// too. An insert's version never has a predecessor (row ids
			// are never reused, and an in-txn update of the row is undone
			// by its own later-logged entry before this one replays).
			if v, ok := td.rows[e.id]; ok && v == e.v {
				removeVersionEntries(td, e.id, v, nil)
				delete(td.rows, e.id)
				td.dirty = true
				td.live--
			}
		case undoDelete:
			// Revive the delete-stamped version: the claim never
			// committed.
			e.v.end.Store(liveSeq)
			td.live++
		case undoUpdate:
			// Pop the uncommitted new version and revive its predecessor.
			p := e.v.prev.Load()
			if p == nil {
				return fmt.Errorf("relational: undo update of %s rowid %d: no prior version", e.table, e.id)
			}
			removeVersionEntries(td, e.id, e.v, p)
			p.end.Store(liveSeq)
			td.rows[e.id] = p
		}
	}
	return nil
}

// resolve walks a version chain and returns the version this
// transaction sees: its own uncommitted writes first, then the version
// visible at its read sequence. Chains are newest-first.
func (t *Txn) resolve(v *rowVersion) *rowVersion {
	for ; v != nil; v = v.prev.Load() {
		b := v.begin.Load()
		if isTxnMark(b) {
			if markOwner(b) != t.id {
				continue // another transaction's uncommitted version
			}
			if e := v.end.Load(); isTxnMark(e) {
				return nil // we deleted our own version
			}
			return v
		}
		if b > t.readSeq {
			continue // committed after our snapshot; older may be visible
		}
		e := v.end.Load()
		if isTxnMark(e) {
			if markOwner(e) == t.id {
				return nil // we delete-stamped the committed version
			}
			return v // another txn's uncommitted claim: still visible to us
		}
		if e > t.readSeq { // includes liveSeq
			return v
		}
		return nil
	}
	return nil
}

// The Reader implementation: a transaction's reads see its own writes
// overlaid on the snapshot pinned at Begin.
var _ Reader = (*Txn)(nil)

// Schema returns the database schema.
func (t *Txn) Schema() *Schema { return t.db.schema }

// HasIndexOn reports whether an index covers exactly the named columns.
func (t *Txn) HasIndexOn(table string, columns []string) bool {
	return t.db.HasIndexOn(table, columns)
}

// Get returns a copy of the row as this transaction sees it.
func (t *Txn) Get(table string, id RowID) (*Row, error) {
	t.db.mu.RLock()
	td, err := t.db.tableData(table)
	if err != nil {
		t.db.mu.RUnlock()
		return nil, err
	}
	head := td.rows[id]
	t.db.mu.RUnlock()
	if v := t.resolve(head); v != nil {
		if v.row.Values == nil {
			// Demoted stub: fault the page in. Safe without the latch —
			// the open transaction's readSeq keeps the slot quarantined.
			r := Row{ID: v.row.ID, Values: t.db.versionValues(td, v)}
			return r.clone(), nil
		}
		return v.row.clone(), nil
	}
	return nil, fmt.Errorf("%w: %s rowid %d", ErrNoSuchRow, table, id)
}

// Scan visits every row the transaction sees in insertion order. The
// callback must not mutate the row; returning false stops the scan. No
// latch is held while the callback runs.
func (t *Txn) Scan(table string, fn func(*Row) bool) error {
	heads, td, err := t.db.collectHeads(table)
	if err != nil {
		return err
	}
	for _, head := range heads {
		v := t.resolve(head)
		if v == nil {
			continue
		}
		r := &v.row
		if r.Values == nil {
			r = &Row{ID: v.row.ID, Values: t.db.versionValues(td, v)}
		}
		if !fn(r) {
			return nil
		}
	}
	return nil
}

// ScanIDs returns the row ids the transaction sees in insertion order.
func (t *Txn) ScanIDs(table string) []RowID {
	heads, _, err := t.db.collectHeads(table)
	if err != nil {
		return nil
	}
	out := make([]RowID, 0, len(heads))
	for _, head := range heads {
		if v := t.resolve(head); v != nil {
			out = append(out, v.row.ID)
		}
	}
	return out
}

// LookupEqual returns the ids of rows the transaction sees whose named
// columns equal the given values. Index buckets may hold entries for
// versions other readers cannot see; each candidate's resolved version
// is re-verified against the probe values.
func (t *Txn) LookupEqual(table string, columns []string, values []Value) ([]RowID, error) {
	t.db.mu.RLock()
	out, err := t.db.lookupEqualVisLocked(table, columns, values, t.resolve)
	t.db.mu.RUnlock()
	return out, err
}

// ValuesByName returns a visible row's values keyed by column name, as
// the transaction sees them.
func (t *Txn) ValuesByName(table string, id RowID) (map[string]Value, error) {
	r, err := t.Get(table, id)
	if err != nil {
		return nil, err
	}
	return t.db.rowValues(table, r)
}

// RowCount returns the number of rows the transaction sees in the
// table. Unlike the live Database's O(1) counter this walks chains.
func (t *Txn) RowCount(table string) int {
	heads, _, err := t.db.collectHeads(table)
	if err != nil {
		return 0
	}
	n := 0
	for _, head := range heads {
		if t.resolve(head) != nil {
			n++
		}
	}
	return n
}

// TotalRows returns the number of rows across all tables the
// transaction sees.
func (t *Txn) TotalRows() int {
	n := 0
	for _, name := range t.db.SortedTableNames() {
		n += t.RowCount(name)
	}
	return n
}
