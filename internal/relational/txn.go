package relational

import "fmt"

// undoKind discriminates undo-log entries.
type undoKind int

const (
	undoInsert undoKind = iota // compensate by popping the inserted version
	undoDelete                 // compensate by reviving the delete-stamped head
	undoUpdate                 // compensate by popping the new version off the chain
)

// undoEntry records one compensating action. Under MVCC the pre-images
// live in the row's version chain, so undo only needs to know which
// chain to pop or revive — no saved row copies.
type undoEntry struct {
	kind  undoKind
	table string
	id    RowID
}

// Txn is an explicit transaction over a Database. The paper's Fig. 14
// experiment depends on rollback being a real, cost-proportional undo of
// every touched tuple (the "blind translation then rollback" baseline);
// the undo log provides exactly that.
//
// Every version the transaction creates (or delete-stamps) carries the
// pending commit sequence, which is invisible to snapshots until Commit
// advances the database's commit sequence — a transaction's effects
// become visible to snapshot readers atomically, or never (Rollback
// pops the uncommitted versions off their chains).
type Txn struct {
	db   *Database
	log  []undoEntry
	done bool
}

// Begin starts a transaction. Only one transaction may be active at a
// time; nested Begin panics (the engine is single-writer by design).
func (db *Database) Begin() *Txn {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.activeTxn != nil {
		panic("relational: nested transactions are not supported")
	}
	t := &Txn{db: db}
	db.activeTxn = t
	return t
}

func (t *Txn) recordInsert(table string, id RowID) {
	t.log = append(t.log, undoEntry{kind: undoInsert, table: table, id: id})
}

func (t *Txn) recordDelete(table string, id RowID) {
	t.log = append(t.log, undoEntry{kind: undoDelete, table: table, id: id})
}

func (t *Txn) recordUpdate(table string, id RowID) {
	t.log = append(t.log, undoEntry{kind: undoUpdate, table: table, id: id})
}

// OpCount returns the number of logged operations (touched tuples).
func (t *Txn) OpCount() int { return len(t.log) }

// Commit finishes the transaction: the undo log is discarded, the
// write-ahead log flushes once — the group-commit property: N updates
// applied inside one transaction pay one flush, not N — and the commit
// sequence advances, making every version the transaction created
// visible to subsequent snapshots atomically.
func (t *Txn) Commit() error {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	if t.done {
		return fmt.Errorf("relational: transaction already finished")
	}
	t.done = true
	t.db.activeTxn = nil
	t.log = nil
	t.db.flushRedo()
	t.db.commitSeq.Add(1)
	t.db.maybeReclaimLocked()
	return nil
}

// Savepoint marks the current position in the undo log. RollbackTo
// with the returned mark undoes everything logged after it, which is
// how a batch apply rejects one update without aborting its siblings.
func (t *Txn) Savepoint() int { return len(t.log) }

// RollbackTo replays the undo log in reverse down to the given
// savepoint, keeping the transaction open.
func (t *Txn) RollbackTo(mark int) error {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	if t.done {
		return fmt.Errorf("relational: transaction already finished")
	}
	if mark < 0 || mark > len(t.log) {
		return fmt.Errorf("relational: savepoint %d out of range (log has %d entries)", mark, len(t.log))
	}
	if err := t.undoFromLocked(mark); err != nil {
		return err
	}
	t.log = t.log[:mark]
	return nil
}

// Rollback replays the undo log in reverse, restoring the database to
// its state at Begin. The popped versions were never visible to any
// snapshot (their stamps never committed), so readers cannot observe
// the rollback in progress.
func (t *Txn) Rollback() error {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	if t.done {
		return fmt.Errorf("relational: transaction already finished")
	}
	t.done = true
	t.db.activeTxn = nil
	if err := t.undoFromLocked(0); err != nil {
		return err
	}
	t.log = nil
	return nil
}

// undoFromLocked compensates log entries [from, len) in reverse order.
// Callers hold the database latch.
func (t *Txn) undoFromLocked(from int) error {
	for i := len(t.log) - 1; i >= from; i-- {
		e := t.log[i]
		td, err := t.db.tableData(e.table)
		if err != nil {
			return err
		}
		switch e.kind {
		case undoInsert:
			// Pop the inserted version. It was uncommitted, hence
			// invisible to every snapshot, so its index entries go too.
			// An insert's version never has a predecessor (row ids are
			// never reused, and an in-txn update of the row is undone
			// by its own later-logged entry before this one replays).
			if v, ok := td.rows[e.id]; ok {
				removeVersionEntries(td, e.id, v, nil)
				delete(td.rows, e.id)
				td.dirty = true
				td.live--
			}
		case undoDelete:
			// Revive the delete-stamped head: the stamp never committed.
			if v, ok := td.rows[e.id]; ok {
				v.end.Store(liveSeq)
				td.live++
			}
		case undoUpdate:
			// Pop the uncommitted new version and revive its predecessor.
			if v, ok := td.rows[e.id]; ok {
				p := v.prev.Load()
				if p == nil {
					return fmt.Errorf("relational: undo update of %s rowid %d: no prior version", e.table, e.id)
				}
				removeVersionEntries(td, e.id, v, p)
				p.end.Store(liveSeq)
				td.rows[e.id] = p
			}
		}
	}
	return nil
}
