package relational

import "fmt"

// undoKind discriminates undo-log entries.
type undoKind int

const (
	undoInsert undoKind = iota // compensate by deleting the row
	undoDelete                 // compensate by re-inserting the saved row
	undoUpdate                 // compensate by restoring the saved values
)

type undoEntry struct {
	kind  undoKind
	table string
	id    RowID
	saved *Row // pre-image for delete/update
}

// Txn is an explicit transaction over a Database. The paper's Fig. 14
// experiment depends on rollback being a real, cost-proportional undo of
// every touched tuple (the "blind translation then rollback" baseline);
// the undo log provides exactly that.
type Txn struct {
	db   *Database
	log  []undoEntry
	done bool
}

// Begin starts a transaction. Only one transaction may be active at a
// time; nested Begin panics (the engine is single-writer by design).
func (db *Database) Begin() *Txn {
	if db.activeTxn != nil {
		panic("relational: nested transactions are not supported")
	}
	t := &Txn{db: db}
	db.activeTxn = t
	return t
}

func (t *Txn) recordInsert(table string, id RowID) {
	t.log = append(t.log, undoEntry{kind: undoInsert, table: table, id: id})
}

func (t *Txn) recordDelete(table string, saved *Row) {
	t.log = append(t.log, undoEntry{kind: undoDelete, table: table, id: saved.ID, saved: saved})
}

func (t *Txn) recordUpdate(table string, old *Row) {
	t.log = append(t.log, undoEntry{kind: undoUpdate, table: table, id: old.ID, saved: old})
}

// OpCount returns the number of logged operations (touched tuples).
func (t *Txn) OpCount() int { return len(t.log) }

// Commit finishes the transaction, discarding the undo log and
// flushing the write-ahead log once — the group-commit property: N
// updates applied inside one transaction pay one flush, not N.
func (t *Txn) Commit() error {
	if t.done {
		return fmt.Errorf("relational: transaction already finished")
	}
	t.done = true
	t.db.activeTxn = nil
	t.log = nil
	t.db.flushRedo()
	return nil
}

// Savepoint marks the current position in the undo log. RollbackTo
// with the returned mark undoes everything logged after it, which is
// how a batch apply rejects one update without aborting its siblings.
func (t *Txn) Savepoint() int { return len(t.log) }

// RollbackTo replays the undo log in reverse down to the given
// savepoint, keeping the transaction open.
func (t *Txn) RollbackTo(mark int) error {
	if t.done {
		return fmt.Errorf("relational: transaction already finished")
	}
	if mark < 0 || mark > len(t.log) {
		return fmt.Errorf("relational: savepoint %d out of range (log has %d entries)", mark, len(t.log))
	}
	if err := t.undoFrom(mark); err != nil {
		return err
	}
	t.log = t.log[:mark]
	return nil
}

// Rollback replays the undo log in reverse, restoring the database to
// its state at Begin. Restores bypass constraint checking (the
// pre-images were valid by construction).
func (t *Txn) Rollback() error {
	if t.done {
		return fmt.Errorf("relational: transaction already finished")
	}
	t.done = true
	t.db.activeTxn = nil
	if err := t.undoFrom(0); err != nil {
		return err
	}
	t.log = nil
	return nil
}

// undoFrom compensates log entries [from, len) in reverse order.
func (t *Txn) undoFrom(from int) error {
	for i := len(t.log) - 1; i >= from; i-- {
		e := t.log[i]
		td, err := t.db.tableData(e.table)
		if err != nil {
			return err
		}
		switch e.kind {
		case undoInsert:
			if r, ok := td.rows[e.id]; ok {
				for _, ix := range td.indexes {
					ix.remove(e.id, r.Values)
				}
				delete(td.rows, e.id)
				td.dirty = true
			}
		case undoDelete:
			td.rows[e.id] = e.saved
			td.order = append(td.order, e.id)
			for _, ix := range td.indexes {
				ix.insert(e.id, e.saved.Values)
			}
		case undoUpdate:
			if r, ok := td.rows[e.id]; ok {
				for _, ix := range td.indexes {
					ix.remove(e.id, r.Values)
				}
			}
			td.rows[e.id] = e.saved
			for _, ix := range td.indexes {
				ix.insert(e.id, e.saved.Values)
			}
		}
	}
	return nil
}
