package relational

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pagestore"
)

// The write-ahead log turns the engine's in-memory redo model into real
// durability: commit groups are encoded into length+CRC32-framed
// records, appended to an append-only segment file and fsynced ONCE per
// group (the cost group commit exists to amortize) before any of the
// group's version stamps become visible. A process that dies at any
// instant — mid-write, between write and fsync, during rotation or
// checkpointing — recovers at Open to exactly the set of transactions
// whose commit record was durable: no lost acknowledged commits, no
// torn partial applies, torn tails discarded.
//
// On-disk layout of a WAL directory:
//
//	wal-0000000001.seg        sealed segment (immutable once rotated away)
//	wal-0000000002.seg        active segment (append-only)
//	pages.heap                slotted 4KiB pages: the checkpoint base image
//	pagedir-0000000001.log    page-directory log (installs, frees, chain)
//	recycle-0000000001.rseg   retired segment awaiting reuse as a future
//	                          active segment (pre-sized, contents ignored)
//
// Every record is framed as [len uint32][crc32 uint32][payload]; the
// CRC covers the payload. Recovery reads segments in index order and
// stops at the first frame that is short, oversized or fails its CRC —
// everything before it is the committed prefix, everything at and after
// it never had a durable commit acknowledged (an all-zero tail left by
// segment preallocation is trimmed without being reported as torn).
//
// The checkpoint base image lives in internal/pagestore: a heap file of
// slotted copy-on-write pages plus a directory log. A checkpoint pass
// packs only the rows dirtied since the previous pass (plus the clean
// survivors sharing their pages) into fresh pages and appends one
// directory record, keeping the pause O(dirty-pages), not O(database);
// the directory log folds into a compact base asynchronously inside the
// store. Segments whose records all precede the last checkpoint are
// recycled or deleted, and recovery maps the page directory (pages
// fault in lazily through the buffer pool on first read) and then
// replays only records with newer sequences.

// walSegmentPrefix/walSegmentSuffix name segment files; the embedded
// index is monotonic and never reused.
const (
	walSegmentPrefix   = "wal-"
	walSegmentSuffix   = ".seg"
	walRecyclePrefix   = "recycle-"
	walRecycleSuffix   = ".rseg"
	walFrameHeaderSize = 8
	// walRecycleKeep caps the recycled-segment free list; surplus sealed
	// segments are deleted as before.
	walRecycleKeep = 4
	// walMaxRecordSize bounds a single record frame; anything larger in
	// a file is treated as corruption (stops recovery at that point).
	walMaxRecordSize = 1 << 28
)

// Record payload type tags.
const (
	walTagGroup    = 'G' // one commit group: N transactions' redo
	walTagXidGroup = 'X' // commit group tagged with a cross-shard xid
)

// Row-operation tags inside a group record, matching the redo model's.
const (
	walOpInsert = 'I'
	walOpUpdate = 'U'
	walOpDelete = 'D'
)

// WALOptions tunes the write-ahead log. The zero value is production
// defaults; tests shrink SegmentBytes to force rotation and set
// CheckpointEverySegments to exercise checkpoint truncation under load.
type WALOptions struct {
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes (default 4 MiB). Records are never split across segments.
	SegmentBytes int64
	// CheckpointEverySegments, when > 0, piggybacks a checkpoint on the
	// first commit after that many segments have been sealed since the
	// last checkpoint. Zero leaves checkpointing to explicit Checkpoint
	// calls and the StartCheckpointer ticker.
	CheckpointEverySegments int
	// XidCommitted, when set, filters xid-tagged group records during
	// recovery: a record prepared under a cross-shard transaction id is
	// replayed only if this reports the xid committed (i.e. the
	// coordinator's log holds it). Records with xid 0 — every
	// single-shard commit — always replay. When nil, xid-tagged records
	// replay unconditionally.
	XidCommitted func(xid uint64) bool
	// DisablePipeline forces the synchronous commit path: the committing
	// goroutine holds the commit latch across write+fsync, exactly the
	// pre-pipeline behavior. The default (false) runs a dedicated WAL
	// writer stage so group N+1 validates and stamps while group N's
	// fsync is in flight; the pre/post comparison in BENCH_commit.json
	// flips this bit.
	DisablePipeline bool
	// CheckpointDeltaLimit bounds the page-directory log chain: each
	// incremental checkpoint appends one directory record (dirty pages
	// only) until this many accumulate, then the store folds the chain
	// into a fresh compact base asynchronously. Zero means the default
	// (8); negative disables incremental passes entirely (every
	// checkpoint rewrites all rows, for tests and benchmarks that need
	// the full-pass baseline).
	CheckpointDeltaLimit int
	// PageCacheBytes caps the buffer pool holding decoded checkpoint
	// pages: cold committed rows drop their in-memory values and fault
	// back in through this pool, so the dataset may exceed RAM. Zero
	// means the default (256 MiB).
	PageCacheBytes int64
	// PreallocateSegments extends each new active segment to
	// SegmentBytes at creation, so appends never grow the file and the
	// per-append metadata fsync cost disappears. Recovery treats a
	// trailing run of zero bytes as preallocation slack, not a torn
	// record.
	PreallocateSegments bool
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.CheckpointDeltaLimit == 0 {
		o.CheckpointDeltaLimit = 8
	}
	if o.PageCacheBytes <= 0 {
		o.PageCacheBytes = 256 << 20
	}
	return o
}

// RecoveryInfo reports what Open's replay found and restored.
type RecoveryInfo struct {
	// CheckpointSeq is the commit sequence of the recovered page
	// directory (zero when the directory had no checkpoint state).
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// CheckpointRows counts rows restored from the page directory as
	// lazy stubs; their pages fault in on first read, not at recovery.
	CheckpointRows int `json:"checkpoint_rows"`
	// CheckpointDeltas counts page-directory records applied to rebuild
	// the checkpoint state.
	CheckpointDeltas int `json:"checkpoint_deltas,omitempty"`
	// ReplayedTxns counts committed transactions replayed from segment
	// records with sequences past the checkpoint.
	ReplayedTxns int64 `json:"replayed_txns"`
	// ReplayedOps counts row operations those transactions reapplied.
	ReplayedOps int64 `json:"replayed_ops"`
	// Segments counts segment files scanned.
	Segments int `json:"segments"`
	// TornTail is true when the last segment ended in an incomplete or
	// corrupt frame that recovery discarded.
	TornTail bool `json:"torn_tail"`
	// TruncatedBytes is how many trailing bytes the torn tail held.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// CommitSeq is the commit sequence after recovery.
	CommitSeq uint64 `json:"commit_seq"`
	// MaxXid is the largest cross-shard transaction id seen in any
	// scanned group record, replayed or filtered; a shard-group
	// coordinator resumes xid allocation above it.
	MaxXid uint64 `json:"max_xid,omitempty"`
	// FilteredTxns counts xid-tagged transactions the XidCommitted
	// filter discarded (prepared but never committed cross-shard).
	FilteredTxns int64 `json:"filtered_txns,omitempty"`
	// RecoveryNanos is the wall time OpenWAL spent recovering (directory
	// mapping plus segment replay, or the initial checkpoint when the
	// directory was fresh). Shard groups open WALs in parallel, so the
	// group's recovery time is the max of these, not the sum.
	RecoveryNanos int64 `json:"recovery_nanos,omitempty"`
}

// ErrWALClosed reports an append against a closed WAL (post-shutdown).
var ErrWALClosed = errors.New("relational: write-ahead log is closed")

// sealedSegment is a rotated-away segment awaiting checkpoint deletion.
type sealedSegment struct {
	index uint64
	path  string
}

// WAL is the durable log attached to a Database by OpenWAL. Appends are
// serialized by the database's commit latch (one group record per
// CommitGroup); the small internal mutex only guards the sealed-segment
// list, which checkpoints mutate outside that latch.
type WAL struct {
	dir  string
	opts WALOptions

	f        *os.File // active segment; owned by the writer stage when the pipeline runs
	segIndex uint64   // active segment's index
	segBytes int64    // bytes appended to the active segment
	closed   bool     // set by Close; guarded by commitMu like f

	mu     sync.Mutex
	sealed []sealedSegment
	free   []string // recycled segment files awaiting reuse (guarded by mu)

	// pipe is the WAL writer stage's queue: commit groups are enqueued
	// under commitMu (so queue order IS sequence order) and the writer
	// goroutine writes, fsyncs and publishes them strictly in that
	// order. nil when the pipeline is disabled (or no pipeline: the
	// committing goroutine then appends synchronously under commitMu).
	pipe       chan *walReq
	writerDone chan struct{}
	pipeDepth  atomic.Int64

	ckptMu        sync.Mutex // serializes Checkpoint runs
	checkpointSeq atomic.Uint64

	// haveBase (guarded by ckptMu) records that the page store holds an
	// installed base image; the first pass on a fresh store is full.
	haveBase bool

	// pager owns the paged checkpoint store and its buffer pool; set
	// once by OpenWAL before the database serves traffic.
	pager *pager

	appends      atomic.Int64
	bytes        atomic.Int64
	fsyncs       atomic.Int64
	rotations    atomic.Int64
	checkpoints  atomic.Int64
	sealedSinceC atomic.Int64 // sealed segments since the last checkpoint
	recycled     atomic.Int64 // segments reused from the free list
	chainLen     atomic.Int64 // published delta-chain length gauge

	// fsyncHist records each commit-path fsync's duration; lastFsyncNs
	// holds the most recent one so the group-commit leader can split a
	// waiter's commit wait into publish time vs fsync time. ckptPauseHist
	// records each checkpoint pass's full duration — the stall the
	// caller that triggered it (usually a commit piggybacking
	// maybeCheckpoint) observes.
	fsyncHist       *obs.Histogram
	lastFsyncNs     atomic.Int64
	ckptPauseHist   *obs.Histogram
	lastCkptPauseNs atomic.Int64
}

func segmentPath(dir string, index uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%010d%s", walSegmentPrefix, index, walSegmentSuffix))
}

func parseSegmentIndex(name string) (uint64, bool) {
	if !strings.HasPrefix(name, walSegmentPrefix) || !strings.HasSuffix(name, walSegmentSuffix) {
		return 0, false
	}
	mid := name[len(walSegmentPrefix) : len(name)-len(walSegmentSuffix)]
	var idx uint64
	for _, r := range mid {
		if r < '0' || r > '9' {
			return 0, false
		}
		idx = idx*10 + uint64(r-'0')
	}
	return idx, len(mid) > 0
}

// syncDir fsyncs a directory so entry creations/renames/removals are
// durable, the half of crash safety rename alone does not give.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---- value / record encoding ----------------------------------------

// Value wire kinds. Unlike EncodeKey this encoding is lossless and
// self-delimiting: floats keep their bits, strings their length.
const (
	walValNull  = 0
	walValStr   = 1
	walValInt   = 2
	walValFloat = 3
)

func appendWALValue(b []byte, v Value) []byte {
	switch v.Kind {
	case KindNull:
		return append(b, walValNull)
	case KindString:
		b = append(b, walValStr)
		b = binary.AppendUvarint(b, uint64(len(v.Str)))
		return append(b, v.Str...)
	case KindInt:
		b = append(b, walValInt)
		return binary.AppendVarint(b, v.Int)
	case KindFloat:
		b = append(b, walValFloat)
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Float))
	default:
		return append(b, walValNull)
	}
}

var errWALCorrupt = errors.New("relational: corrupt WAL record")

func decodeWALValue(b []byte) (Value, []byte, error) {
	if len(b) < 1 {
		return Value{}, nil, errWALCorrupt
	}
	kind, b := b[0], b[1:]
	switch kind {
	case walValNull:
		return Null(), b, nil
	case walValStr:
		n, sz := binary.Uvarint(b)
		if sz <= 0 || n > uint64(len(b)-sz) {
			return Value{}, nil, errWALCorrupt
		}
		b = b[sz:]
		return String_(string(b[:n])), b[n:], nil
	case walValInt:
		i, sz := binary.Varint(b)
		if sz <= 0 {
			return Value{}, nil, errWALCorrupt
		}
		return Int_(i), b[sz:], nil
	case walValFloat:
		if len(b) < 8 {
			return Value{}, nil, errWALCorrupt
		}
		return Float_(math.Float64frombits(binary.LittleEndian.Uint64(b))), b[8:], nil
	default:
		return Value{}, nil, errWALCorrupt
	}
}

// walOp is one decoded row operation of a replayed transaction.
type walOp struct {
	kind   byte
	table  string
	id     RowID
	values []Value // nil for deletes
}

// walTxn is one decoded committed transaction. xid is non-zero only for
// groups prepared under a cross-shard two-phase commit.
type walTxn struct {
	seq uint64
	xid uint64
	ops []walOp
}

// walTxnsOf views a commit group's live transactions as walTxns. Each
// transaction contributes its undo log — which doubles as its write
// set: the created version (insert/update) carries the after-image, a
// delete needs only the row address — in execution order, so replay
// reproduces intra-transaction sequencing (insert→update→delete of the
// same row) exactly. The value slices alias the versions' rows (no
// copies); encoding happens before anything can mutate them.
func walTxnsOf(live []*Txn) []walTxn {
	out := make([]walTxn, 0, len(live))
	for _, t := range live {
		wt := walTxn{seq: t.seq, ops: make([]walOp, 0, len(t.log))}
		for i := range t.log {
			en := &t.log[i]
			op := walOp{table: en.table, id: en.id}
			switch en.kind {
			case undoInsert:
				op.kind = walOpInsert
			case undoUpdate:
				op.kind = walOpUpdate
			case undoDelete:
				op.kind = walOpDelete
			}
			if en.kind != undoDelete {
				op.values = en.v.row.Values
			}
			wt.ops = append(wt.ops, op)
		}
		out = append(out, wt)
	}
	return out
}

// encodeGroupPayload serializes one commit group record. xid 0 keeps
// the original 'G' format byte-for-byte; a cross-shard xid switches the
// tag to 'X' and prefixes the xid, so logs written before sharding
// existed still decode.
func encodeGroupPayload(xid uint64, txns []walTxn) []byte {
	return appendGroupPayload(make([]byte, 0, 256), xid, txns)
}

// appendGroupPayload is encodeGroupPayload into a caller-owned buffer —
// the commit path hands it a pooled one so steady-state appends stop
// allocating.
func appendGroupPayload(b []byte, xid uint64, txns []walTxn) []byte {
	if xid == 0 {
		b = append(b, walTagGroup)
	} else {
		b = append(b, walTagXidGroup)
		b = binary.AppendUvarint(b, xid)
	}
	b = binary.AppendUvarint(b, uint64(len(txns)))
	for _, t := range txns {
		b = binary.AppendUvarint(b, t.seq)
		b = binary.AppendUvarint(b, uint64(len(t.ops)))
		for _, op := range t.ops {
			b = append(b, op.kind)
			b = binary.AppendUvarint(b, uint64(len(op.table)))
			b = append(b, op.table...)
			b = binary.AppendUvarint(b, uint64(op.id))
			if op.kind == walOpDelete {
				continue
			}
			b = binary.AppendUvarint(b, uint64(len(op.values)))
			for _, v := range op.values {
				b = appendWALValue(b, v)
			}
		}
	}
	return b
}

// appendTxnOpsBody encodes one transaction's operations — everything in
// the per-txn wire format EXCEPT the leading commit sequence, which is
// not assigned yet. The pipelined commit path calls this BEFORE taking
// the commit latch so the latch covers only validation and stamping;
// assembleGroupPayload splices the sequences in afterwards.
func appendTxnOpsBody(b []byte, t *Txn) []byte {
	b = binary.AppendUvarint(b, uint64(len(t.log)))
	for i := range t.log {
		en := &t.log[i]
		switch en.kind {
		case undoInsert:
			b = append(b, walOpInsert)
		case undoUpdate:
			b = append(b, walOpUpdate)
		case undoDelete:
			b = append(b, walOpDelete)
		}
		b = binary.AppendUvarint(b, uint64(len(en.table)))
		b = append(b, en.table...)
		b = binary.AppendUvarint(b, uint64(en.id))
		if en.kind == undoDelete {
			continue
		}
		b = binary.AppendUvarint(b, uint64(len(en.v.row.Values)))
		for _, v := range en.v.row.Values {
			b = appendWALValue(b, v)
		}
	}
	return b
}

// assembleGroupPayload builds a commit-group record from pre-encoded
// per-txn bodies plus the sequences stamped under the latch, appended
// into a caller-owned (pooled) buffer. The output is byte-identical to
// encodeGroupPayload on the same group.
func assembleGroupPayload(out []byte, xid uint64, live []*Txn, bodies [][]byte) []byte {
	if xid == 0 {
		out = append(out, walTagGroup)
	} else {
		out = append(out, walTagXidGroup)
		out = binary.AppendUvarint(out, xid)
	}
	out = binary.AppendUvarint(out, uint64(len(live)))
	for i, t := range live {
		out = binary.AppendUvarint(out, t.seq)
		out = append(out, bodies[i]...)
	}
	return out
}

// decodeGroupPayload parses one group record payload. It is total:
// arbitrary byte soup returns errWALCorrupt, never panics — the fuzzer
// holds it to that.
func decodeGroupPayload(b []byte) ([]walTxn, error) {
	if len(b) < 1 || (b[0] != walTagGroup && b[0] != walTagXidGroup) {
		return nil, errWALCorrupt
	}
	tag := b[0]
	b = b[1:]
	xid := uint64(0)
	if tag == walTagXidGroup {
		var sz int
		xid, sz = binary.Uvarint(b)
		if sz <= 0 || xid == 0 {
			return nil, errWALCorrupt
		}
		b = b[sz:]
	}
	ntxns, sz := binary.Uvarint(b)
	if sz <= 0 || ntxns > uint64(len(b)) {
		return nil, errWALCorrupt
	}
	b = b[sz:]
	txns := make([]walTxn, 0, ntxns)
	for range ntxns {
		seq, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, errWALCorrupt
		}
		b = b[sz:]
		nops, sz := binary.Uvarint(b)
		if sz <= 0 || nops > uint64(len(b)) {
			return nil, errWALCorrupt
		}
		b = b[sz:]
		t := walTxn{seq: seq, xid: xid, ops: make([]walOp, 0, nops)}
		for range nops {
			if len(b) < 1 {
				return nil, errWALCorrupt
			}
			kind := b[0]
			if kind != walOpInsert && kind != walOpUpdate && kind != walOpDelete {
				return nil, errWALCorrupt
			}
			b = b[1:]
			tlen, sz := binary.Uvarint(b)
			if sz <= 0 || tlen > uint64(len(b)-sz) {
				return nil, errWALCorrupt
			}
			b = b[sz:]
			table := string(b[:tlen])
			b = b[tlen:]
			id, sz := binary.Uvarint(b)
			if sz <= 0 {
				return nil, errWALCorrupt
			}
			b = b[sz:]
			op := walOp{kind: kind, table: table, id: RowID(id)}
			if kind != walOpDelete {
				ncols, sz := binary.Uvarint(b)
				if sz <= 0 || ncols > uint64(len(b)) {
					return nil, errWALCorrupt
				}
				b = b[sz:]
				op.values = make([]Value, 0, ncols)
				for range ncols {
					var v Value
					var err error
					v, b, err = decodeWALValue(b)
					if err != nil {
						return nil, err
					}
					op.values = append(op.values, v)
				}
			}
			t.ops = append(t.ops, op)
		}
		txns = append(txns, t)
	}
	if len(b) != 0 {
		return nil, errWALCorrupt
	}
	return txns, nil
}

// frameRecord wraps a payload in the [len][crc][payload] frame.
func frameRecord(payload []byte) []byte {
	out := make([]byte, walFrameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[walFrameHeaderSize:], payload)
	return out
}

// walFramePool recycles the commit path's frame-encode buffers: one
// Get/Put per group append instead of two fresh allocations (payload +
// frame copy) per fsynced group. Buffers grow to the largest group seen
// and stay that size.
var walFramePool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// beginFrame reserves the frame header at the start of an empty buffer;
// finishFrame backfills it once the payload has been appended in place.
func beginFrame(buf []byte) []byte {
	var hdr [walFrameHeaderSize]byte
	return append(buf, hdr[:]...)
}

func finishFrame(frame []byte) {
	payload := frame[walFrameHeaderSize:]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
}

// appendGroupFrame encodes one framed group record into buf (which must
// be empty): reserved header, payload appended in place, header
// backfilled — one buffer, no copies.
func appendGroupFrame(buf []byte, xid uint64, txns []walTxn) []byte {
	buf = appendGroupPayload(beginFrame(buf), xid, txns)
	finishFrame(buf)
	return buf
}

// scanFrames walks a segment's bytes and returns the decoded group
// records of every intact frame plus the offset where the valid prefix
// ends. Any malformed frame — short header, oversized length, short
// payload, CRC mismatch, undecodable payload — ends the scan there:
// write-ahead discipline means nothing after the first bad frame was
// ever acknowledged as committed.
func scanFrames(data []byte) (txns []walTxn, validOffset int64) {
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < walFrameHeaderSize {
			return txns, off
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if n > walMaxRecordSize || int64(n) > int64(len(rest)-walFrameHeaderSize) {
			return txns, off
		}
		payload := rest[walFrameHeaderSize : walFrameHeaderSize+int64(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			return txns, off
		}
		decoded, err := decodeGroupPayload(payload)
		if err != nil {
			return txns, off
		}
		txns = append(txns, decoded...)
		off += walFrameHeaderSize + int64(n)
	}
}

// ---- append path ------------------------------------------------------

// appendGroup makes one commit group durable: rotate if the active
// segment is full, write the framed record, fsync. Called with the
// database's commit latch held; any error leaves the active segment
// truncated back to its pre-append length so a failed group cannot
// leave bytes a later recovery would misread as committed.
func (w *WAL) appendGroup(xid uint64, live []*Txn) error {
	if w.closed {
		return ErrWALClosed
	}
	if w.segBytes >= w.opts.SegmentBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	if err := evalFailpoint(FpWALAppendBefore); err != nil {
		return err
	}
	bufp := walFramePool.Get().(*[]byte)
	frame := appendGroupFrame((*bufp)[:0], xid, walTxnsOf(live))
	defer func() {
		*bufp = frame[:0]
		walFramePool.Put(bufp)
	}()
	rest := frame
	wrote := 0
	if failpointFires(FpWALAppendPartial) {
		// A torn write: half the frame reaches the file, then the fault
		// fires (crash mode dies here, leaving the torn tail on disk for
		// recovery to discard; error mode falls through to the truncate
		// below).
		n, werr := w.f.Write(rest[:len(rest)/2])
		wrote += n
		if err := fireFailpoint(FpWALAppendPartial); err != nil {
			w.truncateActive(wrote)
			return err
		}
		if werr != nil {
			w.truncateActive(wrote)
			return werr
		}
		rest = rest[len(rest)/2:]
	}
	n, err := w.f.Write(rest)
	wrote += n
	if err != nil {
		w.truncateActive(wrote)
		return err
	}
	if ferr := evalFailpoint(FpWALFsyncBefore); ferr != nil {
		w.truncateActive(wrote)
		return ferr
	}
	syncStart := time.Now()
	if err := w.f.Sync(); err != nil {
		w.truncateActive(wrote)
		return err
	}
	fsyncNs := time.Since(syncStart).Nanoseconds()
	w.fsyncHist.Record(fsyncNs)
	w.lastFsyncNs.Store(fsyncNs)
	w.fsyncs.Add(1)
	if err := evalFailpoint(FpWALFsyncAfter); err != nil {
		// The group IS durable at this point; error mode still fails the
		// commit, so the harness can prove recovery replays a durable-
		// but-unacknowledged group without the in-memory state ever
		// having published it. Crash mode never returns.
		w.truncateActive(wrote)
		return err
	}
	w.segBytes += int64(wrote)
	w.appends.Add(1)
	w.bytes.Add(int64(wrote))
	return nil
}

// truncateActive drops the bytes a failed append wrote. Best-effort: if
// the truncate itself fails the next recovery's CRC scan still stops at
// the torn frame.
func (w *WAL) truncateActive(wrote int) {
	if wrote == 0 {
		return
	}
	_ = w.f.Truncate(w.segBytes)
	_, _ = w.f.Seek(w.segBytes, 0)
}

// rotate seals the active segment and opens the next. Called with the
// commit latch held (from appendGroup or Checkpoint).
func (w *WAL) rotate() error {
	if err := evalFailpoint(FpWALRotateSeal); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	if err := w.f.Close(); err != nil {
		return err
	}
	w.mu.Lock()
	w.sealed = append(w.sealed, sealedSegment{index: w.segIndex, path: segmentPath(w.dir, w.segIndex)})
	w.mu.Unlock()
	w.sealedSinceC.Add(1)
	if err := w.openSegment(w.segIndex + 1); err != nil {
		return err
	}
	w.rotations.Add(1)
	return evalFailpoint(FpWALRotateOpen)
}

// openSegment makes the segment file with the given index the active
// one: reuse a recycled file when the free list has one, otherwise
// create fresh (preallocated to SegmentBytes when the option is on) and
// make the directory entry durable.
func (w *WAL) openSegment(index uint64) error {
	path := segmentPath(w.dir, index)
	if f, ok, err := w.takeRecycled(path); err != nil {
		return err
	} else if ok {
		w.recycled.Add(1)
		w.f = f
		w.segIndex = index
		w.segBytes = 0
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if w.opts.PreallocateSegments {
		if err := f.Truncate(w.opts.SegmentBytes); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		w.fsyncs.Add(1)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.fsyncs.Add(1)
	w.f = f
	w.segIndex = index
	w.segBytes = 0
	return nil
}

// takeRecycled reuses a free-list file as the new active segment. The
// old contents are truncated away and the truncate fsynced BEFORE the
// rename, so a crash can never leave stale committed-looking frames
// under a live segment name. Pre-rename failures fall back to a fresh
// create (the reserved file is simply dropped from the list); failures
// after the rename propagate, since the segment name now exists.
func (w *WAL) takeRecycled(path string) (*os.File, bool, error) {
	w.mu.Lock()
	if len(w.free) == 0 {
		w.mu.Unlock()
		return nil, false, nil
	}
	rpath := w.free[0]
	w.free = w.free[1:]
	w.mu.Unlock()
	f, err := os.OpenFile(rpath, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, false, nil
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, false, nil
	}
	if w.opts.PreallocateSegments {
		if err := f.Truncate(w.opts.SegmentBytes); err != nil {
			f.Close()
			return nil, false, nil
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, false, nil
	}
	w.fsyncs.Add(1)
	if err := os.Rename(rpath, path); err != nil {
		f.Close()
		return nil, false, err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return nil, false, err
	}
	w.fsyncs.Add(1)
	return f, true, nil
}

// retireSegment disposes of a checkpoint-superseded sealed segment:
// onto the bounded recycle free list when there is room (a rename, no
// data fsync — takeRecycled scrubs it before reuse), deleted otherwise.
func (w *WAL) retireSegment(s sealedSegment) error {
	w.mu.Lock()
	room := len(w.free) < walRecycleKeep
	w.mu.Unlock()
	if room {
		rpath := filepath.Join(w.dir, fmt.Sprintf("%s%010d%s", walRecyclePrefix, s.index, walRecycleSuffix))
		if err := os.Rename(s.path, rpath); err == nil {
			w.mu.Lock()
			w.free = append(w.free, rpath)
			w.mu.Unlock()
			return nil
		} else if os.IsNotExist(err) {
			return nil
		}
	}
	if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Segments returns the number of segment files currently live (sealed
// but not yet checkpoint-truncated, plus the active one).
func (w *WAL) Segments() int64 {
	w.mu.Lock()
	n := int64(len(w.sealed))
	w.mu.Unlock()
	if !w.closed {
		n++
	}
	return n
}

// ---- Database integration --------------------------------------------

// OpenWAL attaches a durable write-ahead log under dir to the database,
// first recovering whatever a previous process left there. It must be
// called before the database serves traffic.
//
// If dir holds an earlier checkpoint or segments, the database's
// in-memory contents are REPLACED by the recovered state: checkpoint
// rows load first, then committed transactions replay from the
// segments in order, and a torn tail (incomplete or CRC-failing final
// record) is discarded. Otherwise the database's current contents
// (e.g. a freshly seeded dataset) are checkpointed as the initial
// durable image. Either way, every subsequent CommitGroup appends one
// fsynced record before its transactions become visible.
func (db *Database) OpenWAL(dir string, opts WALOptions) (*RecoveryInfo, error) {
	if db.wal != nil {
		return nil, fmt.Errorf("relational: database already has a WAL (dir %s)", db.wal.dir)
	}
	openStart := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{
		dir:           dir,
		opts:          opts.withDefaults(),
		fsyncHist:     obs.NewDurationHistogram(),
		ckptPauseHist: obs.NewDurationHistogram(),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	var recycleFiles []string
	for _, e := range entries {
		name := e.Name()
		if idx, ok := parseSegmentIndex(name); ok {
			segs = append(segs, idx)
		}
		if strings.HasPrefix(name, walRecyclePrefix) && strings.HasSuffix(name, walRecycleSuffix) {
			recycleFiles = append(recycleFiles, filepath.Join(dir, name))
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Strings(recycleFiles)
	// Recycled files left by a previous process are reusable as-is:
	// takeRecycled scrubs them before they re-enter service, and
	// recovery never scans them.
	w.free = recycleFiles

	// The page store recovers its directory unconditionally; a fresh
	// directory just yields an empty Recovered.
	dirLimit := w.opts.CheckpointDeltaLimit
	if dirLimit < 0 {
		dirLimit = 8 // full row passes, but let the store fold its log normally
	}
	store, rec, err := pagestore.Open(dir, pagestore.Options{
		DirLogLimit: dirLimit,
		Failpoint:   evalFailpoint,
	})
	if err != nil {
		return nil, fmt.Errorf("relational: page store: %w", err)
	}
	w.pager = newPager(store, w.opts.PageCacheBytes)
	// Attach before recovery: segment replay materializes paged stubs
	// through db.wal.pager. Detached again on every error path below.
	db.wal = w

	info := &RecoveryInfo{Segments: len(segs)}
	nextIndex := uint64(1)
	if len(segs) > 0 {
		nextIndex = segs[len(segs)-1] + 1
	}
	fresh := len(segs) == 0 && rec.Seq == 0 && rec.Records == 0
	if !fresh {
		if err := db.recoverFrom(w, dir, segs, &rec, info); err != nil {
			db.wal = nil
			store.Close()
			return nil, err
		}
		// Recovered segments stay on disk until the next checkpoint
		// supersedes them; register them for that truncation.
		for _, idx := range segs {
			w.sealed = append(w.sealed, sealedSegment{index: idx, path: segmentPath(dir, idx)})
		}
		w.sealedSinceC.Store(int64(len(segs)))
	}
	if err := w.openSegment(nextIndex); err != nil {
		db.wal = nil
		store.Close()
		return nil, err
	}
	db.walRecoveredTxns.Store(info.ReplayedTxns)
	if !w.opts.DisablePipeline {
		w.pipe = make(chan *walReq, 128)
		w.writerDone = make(chan struct{})
		go w.writerLoop(db)
	}
	if fresh {
		// Fresh directory: the current (possibly pre-seeded) contents
		// become the initial checkpoint, so recovery never needs to
		// re-run dataset seeding.
		if err := db.Checkpoint(); err != nil {
			if w.pipe != nil {
				req := &walReq{stop: true, done: make(chan error, 1)}
				w.pipe <- req
				<-req.done
				<-w.writerDone
			}
			db.wal = nil
			w.f.Close()
			store.Close()
			return nil, err
		}
	}
	info.CommitSeq = db.commitSeq.Load()
	info.RecoveryNanos = time.Since(openStart).Nanoseconds()
	return info, nil
}

// recoverFrom rebuilds the database from the recovered page directory
// and the segment chain: wipe, map the directory into lazy row stubs
// (no page reads), replay newer committed transactions, discard the
// torn tail.
func (db *Database) recoverFrom(w *WAL, dir string, segs []uint64, rec *pagestore.Recovered, info *RecoveryInfo) error {
	db.resetStorage()
	if rec.Seq > 0 || rec.Records > 0 {
		rows, err := db.restoreFromPages(w, rec)
		if err != nil {
			return fmt.Errorf("relational: checkpoint: %w", err)
		}
		w.checkpointSeq.Store(rec.Seq)
		w.haveBase = true
		info.CheckpointSeq = rec.Seq
		info.CheckpointRows = rows
		info.CheckpointDeltas = rec.Records
		db.commitSeq.Store(rec.Seq)
	}
	w.chainLen.Store(int64(w.pager.store.Stats().DirChainLen))

	ckptSeq := info.CheckpointSeq
	stopped := false
	trimmed := false
	for i, idx := range segs {
		path := segmentPath(dir, idx)
		if stopped {
			// Past the first bad record nothing was ever acknowledged;
			// remove later segments so a future recovery cannot replay
			// beyond the same stopping point.
			if err := os.Remove(path); err != nil {
				return err
			}
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		txns, valid := scanFrames(data)
		for _, t := range txns {
			if t.xid > info.MaxXid {
				info.MaxXid = t.xid
			}
			if t.seq <= ckptSeq {
				continue // already inside the checkpoint image
			}
			if t.xid != 0 && w.opts.XidCommitted != nil && !w.opts.XidCommitted(t.xid) {
				// Prepared under a cross-shard transaction the coordinator
				// never recorded as committed: every shard discards it, so
				// no shard exposes a torn half of the transaction.
				info.FilteredTxns++
				continue
			}
			if err := db.replayTxn(t); err != nil {
				return fmt.Errorf("relational: replay segment %d: %w", idx, err)
			}
			info.ReplayedTxns++
			info.ReplayedOps += int64(len(t.ops))
			if t.seq > db.commitSeq.Load() {
				db.commitSeq.Store(t.seq)
			}
		}
		if valid < int64(len(data)) {
			if allZero(data[valid:]) {
				// Preallocation slack: the segment was extended at creation
				// and the zeros were never overwritten by records. Trim the
				// slack quietly and keep scanning — nothing was torn.
				if err := os.Truncate(path, valid); err != nil {
					return err
				}
				trimmed = true
				continue
			}
			info.TornTail = true
			info.TruncatedBytes += int64(len(data)) - valid
			if err := os.Truncate(path, valid); err != nil {
				return err
			}
			stopped = true
		} else if i < len(segs)-1 {
			continue
		}
	}
	if info.TornTail || trimmed {
		if err := syncDir(dir); err != nil {
			return err
		}
	}
	db.stampSeq.Store(db.commitSeq.Load())
	return nil
}

// allZero reports whether every byte is zero — the signature of
// preallocated-segment slack past the last record.
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// resetStorage drops every row and index entry, leaving schema-shaped
// empty tables for recovery to fill. Only called before the database
// serves traffic.
func (db *Database) resetStorage() {
	db.tables = buildTableStorage(db.schema)
	db.nextRowID = 1
	db.commitSeq.Store(0)
	db.stampSeq.Store(0)
	if w := db.wal; w != nil && w.pager != nil {
		w.pager.rowSlot = make(map[string]map[RowID]uint32)
	}
}

// replayTxn reapplies one committed transaction's row operations. The
// data was fully constraint-checked when it first committed, so replay
// maintains storage and indexes directly without re-validation.
func (db *Database) replayTxn(t walTxn) error {
	for _, op := range t.ops {
		td, err := db.tableData(op.table)
		if err != nil {
			return err
		}
		// Replayed rows are newer than the loaded checkpoint state, so
		// they are dirty relative to it: the next delta must cover them.
		td.markDirtyRow(op.id)
		switch op.kind {
		case walOpInsert:
			if _, exists := td.rows[op.id]; exists {
				return fmt.Errorf("%w: duplicate insert of %s rowid %d", errWALCorrupt, op.table, op.id)
			}
			v := newVersion(Row{ID: op.id, Values: op.values}, t.seq)
			td.rows[op.id] = v
			td.order = append(td.order, op.id)
			td.live++
			for _, ix := range td.indexes {
				ix.insert(op.id, op.values)
			}
			if op.id >= db.nextRowID {
				db.nextRowID = op.id + 1
			}
		case walOpUpdate:
			if _, ok := td.rows[op.id]; !ok {
				return fmt.Errorf("%w: update of missing %s rowid %d", errWALCorrupt, op.table, op.id)
			}
			// A checkpoint-restored stub must fault its values in before
			// the old version's index entries can be re-derived.
			db.materializeLocked(td, op.id)
			old := td.rows[op.id]
			nv := newVersion(Row{ID: op.id, Values: op.values}, t.seq)
			removeVersionEntries(td, op.id, old, nv)
			td.rows[op.id] = nv
			for _, ix := range td.indexes {
				ix.insert(op.id, op.values)
			}
		case walOpDelete:
			if _, ok := td.rows[op.id]; !ok {
				return fmt.Errorf("%w: delete of missing %s rowid %d", errWALCorrupt, op.table, op.id)
			}
			db.materializeLocked(td, op.id) // see walOpUpdate
			old := td.rows[op.id]
			removeVersionEntries(td, op.id, old, nil)
			delete(td.rows, op.id)
			td.dirty = true
			td.live--
		}
	}
	return nil
}

// Checkpoint persists the committed state durably and truncates the
// segments it supersedes. Most passes are INCREMENTAL: only the rows
// dirtied since the previous checkpoint (plus the clean survivors
// sharing their superseded pages) are packed into fresh copy-on-write
// heap pages and installed with one page-directory record, so the
// pause costs O(dirty-pages), not O(database); the store folds its
// directory log into a compact base asynchronously, off the pause
// path. Commits are blocked only for the writer-stage drain, sequence
// pin, dirty-set swap and segment rotation; page packing runs against
// the pinned MVCC snapshot while traffic proceeds. Crash-safe at every
// step: fresh pages are written and fsynced strictly before the
// directory record that references them, and only after that record is
// durable are superseded segments retired — recovery handles a death
// between any two of those steps (orphaned pages freed, prior
// directory+segments replayed, or new state mapped with
// already-covered records skipped by sequence).
//
// After the install is durable, freshly checkpointed clean rows are
// stamped with their page slot and — when eligible — demoted to
// value-less stubs, which is what lets the reclaimer shed cold rows
// from memory.
func (db *Database) Checkpoint() error {
	w := db.wal
	if w == nil {
		return nil
	}
	w.ckptMu.Lock()
	defer w.ckptMu.Unlock()

	start := time.Now()
	defer func() {
		ns := time.Since(start).Nanoseconds()
		w.ckptPauseHist.Record(ns)
		w.lastCkptPauseNs.Store(ns)
	}()

	db.commitMu.Lock()
	if w.closed {
		db.commitMu.Unlock()
		return ErrWALClosed
	}
	var resume chan struct{}
	if w.pipe != nil {
		// Drain the writer stage: once the barrier reports ready, every
		// enqueued group is durable and published (commitSeq has caught
		// up to stampSeq) and the writer is parked until resume closes,
		// so rotating the active segment cannot race its file handle.
		b := &walBarrier{ready: make(chan struct{}), resume: make(chan struct{})}
		w.pipe <- &walReq{barrier: b}
		<-b.ready
		resume = b.resume
	}
	seq := db.commitSeq.Load()
	snap := db.Snapshot()
	dirty := db.swapDirtyRowsLocked()
	err := w.rotate() // sealed segments now all precede seq
	if resume != nil {
		close(resume)
	}
	db.commitMu.Unlock()

	fail := func(e error) error {
		snap.Close()
		db.mergeDirtyRows(dirty)
		return e
	}
	if err != nil {
		return fail(fmt.Errorf("relational: checkpoint rotate: %w", err))
	}
	w.mu.Lock()
	supersede := make([]sealedSegment, len(w.sealed))
	copy(supersede, w.sealed)
	w.mu.Unlock()

	// A full pass rewrites every row (first pass on a fresh store, or
	// incremental passes disabled); otherwise only the dirty set and its
	// page-mates move. The store folds its own directory chain.
	full := w.opts.CheckpointDeltaLimit < 0 || !w.haveBase
	plan, err := db.buildPageInstalls(snap, dirty, full)
	if err != nil {
		return fail(err)
	}
	if err := evalFailpoint(FpCheckpointWrite); err != nil {
		return fail(err)
	}
	// Install even when the plan is empty: the directory record durably
	// advances the checkpoint sequence, which is what lets the segments
	// rotated away above be retired.
	placements, err := w.pager.store.Install(seq, plan.installs, plan.freedSlots)
	if err != nil {
		return fail(err)
	}
	// Publish with the snapshot still open: its registration blocks the
	// reclaimer from dropping rows deleted after the pin before their
	// page mappings are cleared.
	db.applyPagePlacements(seq, placements, plan)
	snap.Close()
	w.haveBase = true
	w.chainLen.Store(int64(w.pager.store.Stats().DirChainLen))
	return w.finishCheckpoint(seq, supersede)
}

// finishCheckpoint publishes the new checkpoint sequence and retires
// what it supersedes: sealed segments go to the recycle list (or are
// deleted past its cap).
func (w *WAL) finishCheckpoint(seq uint64, supersede []sealedSegment) error {
	w.checkpointSeq.Store(seq)
	w.checkpoints.Add(1)
	w.sealedSinceC.Store(0)
	if err := evalFailpoint(FpCheckpointTruncate); err != nil {
		return err
	}
	for _, s := range supersede {
		if err := w.retireSegment(s); err != nil {
			return err
		}
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}
	w.mu.Lock()
	remaining := w.sealed[:0]
	superseded := make(map[uint64]bool, len(supersede))
	for _, s := range supersede {
		superseded[s.index] = true
	}
	for _, s := range w.sealed {
		if !superseded[s.index] {
			remaining = append(remaining, s)
		}
	}
	w.sealed = remaining
	w.mu.Unlock()
	return nil
}

// maybeCheckpoint runs a checkpoint when enough segments have sealed
// since the last one (CommitGroup piggybacks it, like Reclaim).
func (db *Database) maybeCheckpoint() {
	w := db.wal
	if w == nil || w.opts.CheckpointEverySegments <= 0 {
		return
	}
	if w.sealedSinceC.Load() >= int64(w.opts.CheckpointEverySegments) {
		_ = db.Checkpoint()
	}
}

// StartCheckpointer checkpoints on the given interval in a background
// goroutine until the returned stop function is called (idempotent).
// Intervals with no commits skip the pass, so an idle database costs
// nothing. Long-running hosts (the ufilterd daemon) use it to bound
// recovery replay time; CheckpointEverySegments bounds it by volume
// instead.
func (db *Database) StartCheckpointer(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		var lastAppends int64
		for {
			select {
			case <-done:
				return
			case <-t.C:
				w := db.wal
				if w == nil {
					continue
				}
				if n := w.appends.Load(); n != lastAppends {
					lastAppends = n
					_ = db.Checkpoint()
				}
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// CloseWAL seals the write-ahead log for shutdown: final fsync, close.
// Further commits fail with ErrWALFailed (wrapping ErrWALClosed); reads
// keep working. Idempotent.
func (db *Database) CloseWAL() error {
	w := db.wal
	if w == nil {
		return nil
	}
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.pipe != nil {
		// Drain and stop the writer stage: every already-enqueued group
		// is written, fsynced and published (or rolled back) before the
		// stop request — necessarily last in the queue, since enqueues
		// happen under the commitMu this function holds — acknowledges.
		req := &walReq{stop: true, done: make(chan error, 1)}
		w.pipe <- req
		<-req.done
		<-w.writerDone
	}
	err := w.f.Sync()
	if err == nil {
		w.fsyncs.Add(1)
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	// Closing the page store waits out any in-flight base compaction.
	// Rows still materialized in memory stay readable; a read that
	// would fault a page from the closed store panics, so callers stop
	// traffic before shutdown (the server does).
	if p := w.pager; p != nil {
		if serr := p.store.Close(); err == nil {
			err = serr
		}
	}
	return err
}

// WALDir returns the attached log's directory ("" without a WAL).
func (db *Database) WALDir() string {
	if db.wal == nil {
		return ""
	}
	return db.wal.dir
}

// FsyncHistogram snapshots the WAL fsync duration distribution (empty
// when no WAL is attached).
func (db *Database) FsyncHistogram() obs.Snapshot {
	if db.wal == nil {
		return obs.Snapshot{}
	}
	return db.wal.fsyncHist.Snapshot()
}

// LastFsyncNanos returns the duration of the most recent commit-path
// WAL fsync, or 0 without a WAL. The group-commit leader reads it right
// after CommitGroup returns to attribute fsync time within the commit
// wait it observed.
func (db *Database) LastFsyncNanos() int64 {
	if db.wal == nil {
		return 0
	}
	return db.wal.lastFsyncNs.Load()
}

// CheckpointPauseHistogram snapshots the distribution of checkpoint
// pass durations — the stall observed by whichever caller triggered the
// pass (empty when no WAL is attached).
func (db *Database) CheckpointPauseHistogram() obs.Snapshot {
	if db.wal == nil {
		return obs.Snapshot{}
	}
	return db.wal.ckptPauseHist.Snapshot()
}
