package relational

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// The write-ahead log turns the engine's in-memory redo model into real
// durability: commit groups are encoded into length+CRC32-framed
// records, appended to an append-only segment file and fsynced ONCE per
// group (the cost group commit exists to amortize) before any of the
// group's version stamps become visible. A process that dies at any
// instant — mid-write, between write and fsync, during rotation or
// checkpointing — recovers at Open to exactly the set of transactions
// whose commit record was durable: no lost acknowledged commits, no
// torn partial applies, torn tails discarded.
//
// On-disk layout of a WAL directory:
//
//	wal-0000000001.seg        sealed segment (immutable once rotated away)
//	wal-0000000002.seg        active segment (append-only)
//	checkpoint.ck             latest full (base) checkpoint (atomic rename)
//	checkpoint-0000000042.ckd incremental checkpoint delta layered on the base
//	recycle-0000000001.rseg   retired segment awaiting reuse as a future
//	                          active segment (pre-sized, contents ignored)
//
// Every record is framed as [len uint32][crc32 uint32][payload]; the
// CRC covers the payload. Recovery reads segments in index order and
// stops at the first frame that is short, oversized or fails its CRC —
// everything before it is the committed prefix, everything at and after
// it never had a durable commit acknowledged (an all-zero tail left by
// segment preallocation is trimmed without being reported as torn). A
// base checkpoint is a full row-image snapshot at a pinned commit
// sequence; an incremental checkpoint serializes only the rows dirtied
// since the previous one as a delta, keeping the pause O(dirty), and
// the chain compacts back into a fresh base once it reaches
// WALOptions.CheckpointDeltaLimit. Segments whose records all precede
// the last checkpoint are recycled or deleted, and recovery loads the
// base, applies the delta chain in order, then replays only records
// with newer sequences.

// walSegmentPrefix/walSegmentSuffix name segment files; the embedded
// index is monotonic and never reused.
const (
	walSegmentPrefix   = "wal-"
	walSegmentSuffix   = ".seg"
	walCheckpointName  = "checkpoint.ck"
	walCheckpointTemp  = "checkpoint.tmp"
	walDeltaPrefix     = "checkpoint-"
	walDeltaSuffix     = ".ckd"
	walRecyclePrefix   = "recycle-"
	walRecycleSuffix   = ".rseg"
	walFrameHeaderSize = 8
	// walRecycleKeep caps the recycled-segment free list; surplus sealed
	// segments are deleted as before.
	walRecycleKeep = 4
	// walMaxRecordSize bounds a single record frame; anything larger in
	// a file is treated as corruption (stops recovery at that point).
	walMaxRecordSize = 1 << 28
)

// Record payload type tags.
const (
	walTagGroup      = 'G' // one commit group: N transactions' redo
	walTagXidGroup   = 'X' // commit group tagged with a cross-shard xid
	walTagCheckpoint = 'K' // full row-image snapshot (checkpoint file)
	walTagDelta      = 'k' // incremental checkpoint: dirty-row upserts + tombstones
)

// Row-operation tags inside a group record, matching the redo model's.
const (
	walOpInsert = 'I'
	walOpUpdate = 'U'
	walOpDelete = 'D'
)

// WALOptions tunes the write-ahead log. The zero value is production
// defaults; tests shrink SegmentBytes to force rotation and set
// CheckpointEverySegments to exercise checkpoint truncation under load.
type WALOptions struct {
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes (default 4 MiB). Records are never split across segments.
	SegmentBytes int64
	// CheckpointEverySegments, when > 0, piggybacks a checkpoint on the
	// first commit after that many segments have been sealed since the
	// last checkpoint. Zero leaves checkpointing to explicit Checkpoint
	// calls and the StartCheckpointer ticker.
	CheckpointEverySegments int
	// XidCommitted, when set, filters xid-tagged group records during
	// recovery: a record prepared under a cross-shard transaction id is
	// replayed only if this reports the xid committed (i.e. the
	// coordinator's log holds it). Records with xid 0 — every
	// single-shard commit — always replay. When nil, xid-tagged records
	// replay unconditionally.
	XidCommitted func(xid uint64) bool
	// DisablePipeline forces the synchronous commit path: the committing
	// goroutine holds the commit latch across write+fsync, exactly the
	// pre-pipeline behavior. The default (false) runs a dedicated WAL
	// writer stage so group N+1 validates and stamps while group N's
	// fsync is in flight; the pre/post comparison in BENCH_commit.json
	// flips this bit.
	DisablePipeline bool
	// CheckpointDeltaLimit bounds the incremental-checkpoint chain: a
	// checkpoint writes a delta file (dirty rows only) until this many
	// deltas accumulate, then compacts them into a fresh full base
	// image. Zero means the default (8); negative disables incremental
	// checkpoints entirely (every checkpoint is a full image).
	CheckpointDeltaLimit int
	// PreallocateSegments extends each new active segment to
	// SegmentBytes at creation, so appends never grow the file and the
	// per-append metadata fsync cost disappears. Recovery treats a
	// trailing run of zero bytes as preallocation slack, not a torn
	// record.
	PreallocateSegments bool
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.CheckpointDeltaLimit == 0 {
		o.CheckpointDeltaLimit = 8
	}
	return o
}

// RecoveryInfo reports what Open's replay found and restored.
type RecoveryInfo struct {
	// CheckpointSeq is the commit sequence of the loaded checkpoint
	// state: the base image's sequence advanced by every applied delta
	// (zero when the directory had none).
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// CheckpointRows counts rows restored from the checkpoint state:
	// base-image rows plus delta upserts applied on top.
	CheckpointRows int `json:"checkpoint_rows"`
	// CheckpointDeltas counts incremental checkpoint files applied on
	// top of the base image.
	CheckpointDeltas int `json:"checkpoint_deltas,omitempty"`
	// ReplayedTxns counts committed transactions replayed from segment
	// records with sequences past the checkpoint.
	ReplayedTxns int64 `json:"replayed_txns"`
	// ReplayedOps counts row operations those transactions reapplied.
	ReplayedOps int64 `json:"replayed_ops"`
	// Segments counts segment files scanned.
	Segments int `json:"segments"`
	// TornTail is true when the last segment ended in an incomplete or
	// corrupt frame that recovery discarded.
	TornTail bool `json:"torn_tail"`
	// TruncatedBytes is how many trailing bytes the torn tail held.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// CommitSeq is the commit sequence after recovery.
	CommitSeq uint64 `json:"commit_seq"`
	// MaxXid is the largest cross-shard transaction id seen in any
	// scanned group record, replayed or filtered; a shard-group
	// coordinator resumes xid allocation above it.
	MaxXid uint64 `json:"max_xid,omitempty"`
	// FilteredTxns counts xid-tagged transactions the XidCommitted
	// filter discarded (prepared but never committed cross-shard).
	FilteredTxns int64 `json:"filtered_txns,omitempty"`
}

// ErrWALClosed reports an append against a closed WAL (post-shutdown).
var ErrWALClosed = errors.New("relational: write-ahead log is closed")

// sealedSegment is a rotated-away segment awaiting checkpoint deletion.
type sealedSegment struct {
	index uint64
	path  string
}

// WAL is the durable log attached to a Database by OpenWAL. Appends are
// serialized by the database's commit latch (one group record per
// CommitGroup); the small internal mutex only guards the sealed-segment
// list, which checkpoints mutate outside that latch.
type WAL struct {
	dir  string
	opts WALOptions

	f        *os.File // active segment; owned by the writer stage when the pipeline runs
	segIndex uint64   // active segment's index
	segBytes int64    // bytes appended to the active segment
	closed   bool     // set by Close; guarded by commitMu like f

	mu     sync.Mutex
	sealed []sealedSegment
	free   []string // recycled segment files awaiting reuse (guarded by mu)

	// pipe is the WAL writer stage's queue: commit groups are enqueued
	// under commitMu (so queue order IS sequence order) and the writer
	// goroutine writes, fsyncs and publishes them strictly in that
	// order. nil when the pipeline is disabled (or no pipeline: the
	// committing goroutine then appends synchronously under commitMu).
	pipe       chan *walReq
	writerDone chan struct{}
	pipeDepth  atomic.Int64

	ckptMu        sync.Mutex // serializes Checkpoint runs
	checkpointSeq atomic.Uint64

	// Incremental-checkpoint chain state, guarded by ckptMu.
	haveBase   bool           // a full base image exists on disk
	deltaIndex uint64         // index of the newest delta file
	deltas     []walDeltaFile // chain of delta files since the base

	appends      atomic.Int64
	bytes        atomic.Int64
	fsyncs       atomic.Int64
	rotations    atomic.Int64
	checkpoints  atomic.Int64
	sealedSinceC atomic.Int64 // sealed segments since the last checkpoint
	recycled     atomic.Int64 // segments reused from the free list
	chainLen     atomic.Int64 // published delta-chain length gauge

	// fsyncHist records each commit-path fsync's duration; lastFsyncNs
	// holds the most recent one so the group-commit leader can split a
	// waiter's commit wait into publish time vs fsync time. ckptPauseHist
	// records each checkpoint pass's full duration — the stall the
	// caller that triggered it (usually a commit piggybacking
	// maybeCheckpoint) observes.
	fsyncHist       *obs.Histogram
	lastFsyncNs     atomic.Int64
	ckptPauseHist   *obs.Histogram
	lastCkptPauseNs atomic.Int64
}

// walDeltaFile is one installed incremental checkpoint.
type walDeltaFile struct {
	index uint64
	seq   uint64
	path  string
}

func segmentPath(dir string, index uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%010d%s", walSegmentPrefix, index, walSegmentSuffix))
}

func parseSegmentIndex(name string) (uint64, bool) {
	if !strings.HasPrefix(name, walSegmentPrefix) || !strings.HasSuffix(name, walSegmentSuffix) {
		return 0, false
	}
	mid := name[len(walSegmentPrefix) : len(name)-len(walSegmentSuffix)]
	var idx uint64
	for _, r := range mid {
		if r < '0' || r > '9' {
			return 0, false
		}
		idx = idx*10 + uint64(r-'0')
	}
	return idx, len(mid) > 0
}

// syncDir fsyncs a directory so entry creations/renames/removals are
// durable, the half of crash safety rename alone does not give.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---- value / record encoding ----------------------------------------

// Value wire kinds. Unlike EncodeKey this encoding is lossless and
// self-delimiting: floats keep their bits, strings their length.
const (
	walValNull  = 0
	walValStr   = 1
	walValInt   = 2
	walValFloat = 3
)

func appendWALValue(b []byte, v Value) []byte {
	switch v.Kind {
	case KindNull:
		return append(b, walValNull)
	case KindString:
		b = append(b, walValStr)
		b = binary.AppendUvarint(b, uint64(len(v.Str)))
		return append(b, v.Str...)
	case KindInt:
		b = append(b, walValInt)
		return binary.AppendVarint(b, v.Int)
	case KindFloat:
		b = append(b, walValFloat)
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Float))
	default:
		return append(b, walValNull)
	}
}

var errWALCorrupt = errors.New("relational: corrupt WAL record")

func decodeWALValue(b []byte) (Value, []byte, error) {
	if len(b) < 1 {
		return Value{}, nil, errWALCorrupt
	}
	kind, b := b[0], b[1:]
	switch kind {
	case walValNull:
		return Null(), b, nil
	case walValStr:
		n, sz := binary.Uvarint(b)
		if sz <= 0 || n > uint64(len(b)-sz) {
			return Value{}, nil, errWALCorrupt
		}
		b = b[sz:]
		return String_(string(b[:n])), b[n:], nil
	case walValInt:
		i, sz := binary.Varint(b)
		if sz <= 0 {
			return Value{}, nil, errWALCorrupt
		}
		return Int_(i), b[sz:], nil
	case walValFloat:
		if len(b) < 8 {
			return Value{}, nil, errWALCorrupt
		}
		return Float_(math.Float64frombits(binary.LittleEndian.Uint64(b))), b[8:], nil
	default:
		return Value{}, nil, errWALCorrupt
	}
}

// walOp is one decoded row operation of a replayed transaction.
type walOp struct {
	kind   byte
	table  string
	id     RowID
	values []Value // nil for deletes
}

// walTxn is one decoded committed transaction. xid is non-zero only for
// groups prepared under a cross-shard two-phase commit.
type walTxn struct {
	seq uint64
	xid uint64
	ops []walOp
}

// walTxnsOf views a commit group's live transactions as walTxns. Each
// transaction contributes its undo log — which doubles as its write
// set: the created version (insert/update) carries the after-image, a
// delete needs only the row address — in execution order, so replay
// reproduces intra-transaction sequencing (insert→update→delete of the
// same row) exactly. The value slices alias the versions' rows (no
// copies); encoding happens before anything can mutate them.
func walTxnsOf(live []*Txn) []walTxn {
	out := make([]walTxn, 0, len(live))
	for _, t := range live {
		wt := walTxn{seq: t.seq, ops: make([]walOp, 0, len(t.log))}
		for i := range t.log {
			en := &t.log[i]
			op := walOp{table: en.table, id: en.id}
			switch en.kind {
			case undoInsert:
				op.kind = walOpInsert
			case undoUpdate:
				op.kind = walOpUpdate
			case undoDelete:
				op.kind = walOpDelete
			}
			if en.kind != undoDelete {
				op.values = en.v.row.Values
			}
			wt.ops = append(wt.ops, op)
		}
		out = append(out, wt)
	}
	return out
}

// encodeGroupPayload serializes one commit group record. xid 0 keeps
// the original 'G' format byte-for-byte; a cross-shard xid switches the
// tag to 'X' and prefixes the xid, so logs written before sharding
// existed still decode.
func encodeGroupPayload(xid uint64, txns []walTxn) []byte {
	b := make([]byte, 0, 256)
	if xid == 0 {
		b = append(b, walTagGroup)
	} else {
		b = append(b, walTagXidGroup)
		b = binary.AppendUvarint(b, xid)
	}
	b = binary.AppendUvarint(b, uint64(len(txns)))
	for _, t := range txns {
		b = binary.AppendUvarint(b, t.seq)
		b = binary.AppendUvarint(b, uint64(len(t.ops)))
		for _, op := range t.ops {
			b = append(b, op.kind)
			b = binary.AppendUvarint(b, uint64(len(op.table)))
			b = append(b, op.table...)
			b = binary.AppendUvarint(b, uint64(op.id))
			if op.kind == walOpDelete {
				continue
			}
			b = binary.AppendUvarint(b, uint64(len(op.values)))
			for _, v := range op.values {
				b = appendWALValue(b, v)
			}
		}
	}
	return b
}

// appendTxnOpsBody encodes one transaction's operations — everything in
// the per-txn wire format EXCEPT the leading commit sequence, which is
// not assigned yet. The pipelined commit path calls this BEFORE taking
// the commit latch so the latch covers only validation and stamping;
// assembleGroupPayload splices the sequences in afterwards.
func appendTxnOpsBody(b []byte, t *Txn) []byte {
	b = binary.AppendUvarint(b, uint64(len(t.log)))
	for i := range t.log {
		en := &t.log[i]
		switch en.kind {
		case undoInsert:
			b = append(b, walOpInsert)
		case undoUpdate:
			b = append(b, walOpUpdate)
		case undoDelete:
			b = append(b, walOpDelete)
		}
		b = binary.AppendUvarint(b, uint64(len(en.table)))
		b = append(b, en.table...)
		b = binary.AppendUvarint(b, uint64(en.id))
		if en.kind == undoDelete {
			continue
		}
		b = binary.AppendUvarint(b, uint64(len(en.v.row.Values)))
		for _, v := range en.v.row.Values {
			b = appendWALValue(b, v)
		}
	}
	return b
}

// assembleGroupPayload builds a commit-group record from pre-encoded
// per-txn bodies plus the sequences stamped under the latch. The output
// is byte-identical to encodeGroupPayload on the same group.
func assembleGroupPayload(xid uint64, live []*Txn, bodies [][]byte) []byte {
	size := 16
	for _, body := range bodies {
		size += len(body) + binary.MaxVarintLen64
	}
	out := make([]byte, 0, size)
	if xid == 0 {
		out = append(out, walTagGroup)
	} else {
		out = append(out, walTagXidGroup)
		out = binary.AppendUvarint(out, xid)
	}
	out = binary.AppendUvarint(out, uint64(len(live)))
	for i, t := range live {
		out = binary.AppendUvarint(out, t.seq)
		out = append(out, bodies[i]...)
	}
	return out
}

// decodeGroupPayload parses one group record payload. It is total:
// arbitrary byte soup returns errWALCorrupt, never panics — the fuzzer
// holds it to that.
func decodeGroupPayload(b []byte) ([]walTxn, error) {
	if len(b) < 1 || (b[0] != walTagGroup && b[0] != walTagXidGroup) {
		return nil, errWALCorrupt
	}
	tag := b[0]
	b = b[1:]
	xid := uint64(0)
	if tag == walTagXidGroup {
		var sz int
		xid, sz = binary.Uvarint(b)
		if sz <= 0 || xid == 0 {
			return nil, errWALCorrupt
		}
		b = b[sz:]
	}
	ntxns, sz := binary.Uvarint(b)
	if sz <= 0 || ntxns > uint64(len(b)) {
		return nil, errWALCorrupt
	}
	b = b[sz:]
	txns := make([]walTxn, 0, ntxns)
	for range ntxns {
		seq, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, errWALCorrupt
		}
		b = b[sz:]
		nops, sz := binary.Uvarint(b)
		if sz <= 0 || nops > uint64(len(b)) {
			return nil, errWALCorrupt
		}
		b = b[sz:]
		t := walTxn{seq: seq, xid: xid, ops: make([]walOp, 0, nops)}
		for range nops {
			if len(b) < 1 {
				return nil, errWALCorrupt
			}
			kind := b[0]
			if kind != walOpInsert && kind != walOpUpdate && kind != walOpDelete {
				return nil, errWALCorrupt
			}
			b = b[1:]
			tlen, sz := binary.Uvarint(b)
			if sz <= 0 || tlen > uint64(len(b)-sz) {
				return nil, errWALCorrupt
			}
			b = b[sz:]
			table := string(b[:tlen])
			b = b[tlen:]
			id, sz := binary.Uvarint(b)
			if sz <= 0 {
				return nil, errWALCorrupt
			}
			b = b[sz:]
			op := walOp{kind: kind, table: table, id: RowID(id)}
			if kind != walOpDelete {
				ncols, sz := binary.Uvarint(b)
				if sz <= 0 || ncols > uint64(len(b)) {
					return nil, errWALCorrupt
				}
				b = b[sz:]
				op.values = make([]Value, 0, ncols)
				for range ncols {
					var v Value
					var err error
					v, b, err = decodeWALValue(b)
					if err != nil {
						return nil, err
					}
					op.values = append(op.values, v)
				}
			}
			t.ops = append(t.ops, op)
		}
		txns = append(txns, t)
	}
	if len(b) != 0 {
		return nil, errWALCorrupt
	}
	return txns, nil
}

// frameRecord wraps a payload in the [len][crc][payload] frame.
func frameRecord(payload []byte) []byte {
	out := make([]byte, walFrameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[walFrameHeaderSize:], payload)
	return out
}

// scanFrames walks a segment's bytes and returns the decoded group
// records of every intact frame plus the offset where the valid prefix
// ends. Any malformed frame — short header, oversized length, short
// payload, CRC mismatch, undecodable payload — ends the scan there:
// write-ahead discipline means nothing after the first bad frame was
// ever acknowledged as committed.
func scanFrames(data []byte) (txns []walTxn, validOffset int64) {
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < walFrameHeaderSize {
			return txns, off
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if n > walMaxRecordSize || int64(n) > int64(len(rest)-walFrameHeaderSize) {
			return txns, off
		}
		payload := rest[walFrameHeaderSize : walFrameHeaderSize+int64(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			return txns, off
		}
		decoded, err := decodeGroupPayload(payload)
		if err != nil {
			return txns, off
		}
		txns = append(txns, decoded...)
		off += walFrameHeaderSize + int64(n)
	}
}

// ---- append path ------------------------------------------------------

// appendGroup makes one commit group durable: rotate if the active
// segment is full, write the framed record, fsync. Called with the
// database's commit latch held; any error leaves the active segment
// truncated back to its pre-append length so a failed group cannot
// leave bytes a later recovery would misread as committed.
func (w *WAL) appendGroup(xid uint64, live []*Txn) error {
	if w.closed {
		return ErrWALClosed
	}
	if w.segBytes >= w.opts.SegmentBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	if err := evalFailpoint(FpWALAppendBefore); err != nil {
		return err
	}
	frame := frameRecord(encodeGroupPayload(xid, walTxnsOf(live)))
	wrote := 0
	if failpointFires(FpWALAppendPartial) {
		// A torn write: half the frame reaches the file, then the fault
		// fires (crash mode dies here, leaving the torn tail on disk for
		// recovery to discard; error mode falls through to the truncate
		// below).
		n, werr := w.f.Write(frame[:len(frame)/2])
		wrote += n
		if err := fireFailpoint(FpWALAppendPartial); err != nil {
			w.truncateActive(wrote)
			return err
		}
		if werr != nil {
			w.truncateActive(wrote)
			return werr
		}
		frame = frame[len(frame)/2:]
	}
	n, err := w.f.Write(frame)
	wrote += n
	if err != nil {
		w.truncateActive(wrote)
		return err
	}
	if ferr := evalFailpoint(FpWALFsyncBefore); ferr != nil {
		w.truncateActive(wrote)
		return ferr
	}
	syncStart := time.Now()
	if err := w.f.Sync(); err != nil {
		w.truncateActive(wrote)
		return err
	}
	fsyncNs := time.Since(syncStart).Nanoseconds()
	w.fsyncHist.Record(fsyncNs)
	w.lastFsyncNs.Store(fsyncNs)
	w.fsyncs.Add(1)
	if err := evalFailpoint(FpWALFsyncAfter); err != nil {
		// The group IS durable at this point; error mode still fails the
		// commit, so the harness can prove recovery replays a durable-
		// but-unacknowledged group without the in-memory state ever
		// having published it. Crash mode never returns.
		w.truncateActive(wrote)
		return err
	}
	w.segBytes += int64(wrote)
	w.appends.Add(1)
	w.bytes.Add(int64(wrote))
	return nil
}

// truncateActive drops the bytes a failed append wrote. Best-effort: if
// the truncate itself fails the next recovery's CRC scan still stops at
// the torn frame.
func (w *WAL) truncateActive(wrote int) {
	if wrote == 0 {
		return
	}
	_ = w.f.Truncate(w.segBytes)
	_, _ = w.f.Seek(w.segBytes, 0)
}

// rotate seals the active segment and opens the next. Called with the
// commit latch held (from appendGroup or Checkpoint).
func (w *WAL) rotate() error {
	if err := evalFailpoint(FpWALRotateSeal); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	if err := w.f.Close(); err != nil {
		return err
	}
	w.mu.Lock()
	w.sealed = append(w.sealed, sealedSegment{index: w.segIndex, path: segmentPath(w.dir, w.segIndex)})
	w.mu.Unlock()
	w.sealedSinceC.Add(1)
	if err := w.openSegment(w.segIndex + 1); err != nil {
		return err
	}
	w.rotations.Add(1)
	return evalFailpoint(FpWALRotateOpen)
}

// openSegment makes the segment file with the given index the active
// one: reuse a recycled file when the free list has one, otherwise
// create fresh (preallocated to SegmentBytes when the option is on) and
// make the directory entry durable.
func (w *WAL) openSegment(index uint64) error {
	path := segmentPath(w.dir, index)
	if f, ok, err := w.takeRecycled(path); err != nil {
		return err
	} else if ok {
		w.recycled.Add(1)
		w.f = f
		w.segIndex = index
		w.segBytes = 0
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if w.opts.PreallocateSegments {
		if err := f.Truncate(w.opts.SegmentBytes); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		w.fsyncs.Add(1)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.fsyncs.Add(1)
	w.f = f
	w.segIndex = index
	w.segBytes = 0
	return nil
}

// takeRecycled reuses a free-list file as the new active segment. The
// old contents are truncated away and the truncate fsynced BEFORE the
// rename, so a crash can never leave stale committed-looking frames
// under a live segment name. Pre-rename failures fall back to a fresh
// create (the reserved file is simply dropped from the list); failures
// after the rename propagate, since the segment name now exists.
func (w *WAL) takeRecycled(path string) (*os.File, bool, error) {
	w.mu.Lock()
	if len(w.free) == 0 {
		w.mu.Unlock()
		return nil, false, nil
	}
	rpath := w.free[0]
	w.free = w.free[1:]
	w.mu.Unlock()
	f, err := os.OpenFile(rpath, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, false, nil
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, false, nil
	}
	if w.opts.PreallocateSegments {
		if err := f.Truncate(w.opts.SegmentBytes); err != nil {
			f.Close()
			return nil, false, nil
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, false, nil
	}
	w.fsyncs.Add(1)
	if err := os.Rename(rpath, path); err != nil {
		f.Close()
		return nil, false, err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return nil, false, err
	}
	w.fsyncs.Add(1)
	return f, true, nil
}

// retireSegment disposes of a checkpoint-superseded sealed segment:
// onto the bounded recycle free list when there is room (a rename, no
// data fsync — takeRecycled scrubs it before reuse), deleted otherwise.
func (w *WAL) retireSegment(s sealedSegment) error {
	w.mu.Lock()
	room := len(w.free) < walRecycleKeep
	w.mu.Unlock()
	if room {
		rpath := filepath.Join(w.dir, fmt.Sprintf("%s%010d%s", walRecyclePrefix, s.index, walRecycleSuffix))
		if err := os.Rename(s.path, rpath); err == nil {
			w.mu.Lock()
			w.free = append(w.free, rpath)
			w.mu.Unlock()
			return nil
		} else if os.IsNotExist(err) {
			return nil
		}
	}
	if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Segments returns the number of segment files currently live (sealed
// but not yet checkpoint-truncated, plus the active one).
func (w *WAL) Segments() int64 {
	w.mu.Lock()
	n := int64(len(w.sealed))
	w.mu.Unlock()
	if !w.closed {
		n++
	}
	return n
}

// ---- Database integration --------------------------------------------

// OpenWAL attaches a durable write-ahead log under dir to the database,
// first recovering whatever a previous process left there. It must be
// called before the database serves traffic.
//
// If dir holds an earlier checkpoint or segments, the database's
// in-memory contents are REPLACED by the recovered state: checkpoint
// rows load first, then committed transactions replay from the
// segments in order, and a torn tail (incomplete or CRC-failing final
// record) is discarded. Otherwise the database's current contents
// (e.g. a freshly seeded dataset) are checkpointed as the initial
// durable image. Either way, every subsequent CommitGroup appends one
// fsynced record before its transactions become visible.
func (db *Database) OpenWAL(dir string, opts WALOptions) (*RecoveryInfo, error) {
	if db.wal != nil {
		return nil, fmt.Errorf("relational: database already has a WAL (dir %s)", db.wal.dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{
		dir:           dir,
		opts:          opts.withDefaults(),
		fsyncHist:     obs.NewDurationHistogram(),
		ckptPauseHist: obs.NewDurationHistogram(),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs, deltas []uint64
	var recycleFiles []string
	haveCheckpoint := false
	for _, e := range entries {
		name := e.Name()
		if name == walCheckpointName {
			haveCheckpoint = true
		}
		if idx, ok := parseSegmentIndex(name); ok {
			segs = append(segs, idx)
		}
		if idx, ok := parseDeltaIndex(name); ok {
			deltas = append(deltas, idx)
		}
		if strings.HasPrefix(name, walRecyclePrefix) && strings.HasSuffix(name, walRecycleSuffix) {
			recycleFiles = append(recycleFiles, filepath.Join(dir, name))
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(deltas, func(i, j int) bool { return deltas[i] < deltas[j] })
	sort.Strings(recycleFiles)
	// Recycled files left by a previous process are reusable as-is:
	// takeRecycled scrubs them before they re-enter service, and
	// recovery never scans them.
	w.free = recycleFiles

	info := &RecoveryInfo{Segments: len(segs)}
	nextIndex := uint64(1)
	if len(segs) > 0 {
		nextIndex = segs[len(segs)-1] + 1
	}
	if haveCheckpoint || len(segs) > 0 {
		if err := db.recoverFrom(w, dir, segs, deltas, haveCheckpoint, info); err != nil {
			return nil, err
		}
		// Recovered segments stay on disk until the next checkpoint
		// supersedes them; register them for that truncation.
		for _, idx := range segs {
			w.sealed = append(w.sealed, sealedSegment{index: idx, path: segmentPath(dir, idx)})
		}
		w.sealedSinceC.Store(int64(len(segs)))
	}
	if err := w.openSegment(nextIndex); err != nil {
		return nil, err
	}
	db.wal = w
	db.walRecoveredTxns.Store(info.ReplayedTxns)
	if !w.opts.DisablePipeline {
		w.pipe = make(chan *walReq, 128)
		w.writerDone = make(chan struct{})
		go w.writerLoop(db)
	}
	if !haveCheckpoint && len(segs) == 0 {
		// Fresh directory: the current (possibly pre-seeded) contents
		// become the initial checkpoint, so recovery never needs to
		// re-run dataset seeding. Delta files without a base image are
		// unusable garbage (the protocol never produces them); drop any.
		for _, idx := range deltas {
			_ = os.Remove(filepath.Join(dir, deltaFileName(idx)))
		}
		if err := db.Checkpoint(); err != nil {
			if w.pipe != nil {
				req := &walReq{stop: true, done: make(chan error, 1)}
				w.pipe <- req
				<-req.done
				<-w.writerDone
			}
			db.wal = nil
			w.f.Close()
			return nil, err
		}
	}
	info.CommitSeq = db.commitSeq.Load()
	return info, nil
}

// recoverFrom rebuilds the database from checkpoint state and the
// segment chain: wipe, load the base image, apply the delta chain in
// order, replay newer committed transactions, discard the torn tail.
func (db *Database) recoverFrom(w *WAL, dir string, segs, deltas []uint64, haveCheckpoint bool, info *RecoveryInfo) error {
	db.resetStorage()
	if haveCheckpoint {
		seq, rows, err := db.loadCheckpoint(filepath.Join(dir, walCheckpointName))
		if err != nil {
			return fmt.Errorf("relational: checkpoint: %w", err)
		}
		w.checkpointSeq.Store(seq)
		w.haveBase = true
		info.CheckpointSeq = seq
		info.CheckpointRows = rows
		db.commitSeq.Store(seq)
	}
	for _, didx := range deltas {
		path := filepath.Join(dir, deltaFileName(didx))
		if !haveCheckpoint {
			// A delta without a base image cannot be applied; the install
			// protocol never leaves this state, so just discard it.
			_ = os.Remove(path)
			continue
		}
		seq, ups, err := db.loadDelta(path)
		if err != nil {
			return fmt.Errorf("relational: checkpoint delta %d: %w", didx, err)
		}
		if seq <= w.checkpointSeq.Load() {
			// Superseded by a compaction whose cleanup was interrupted:
			// the base image already contains this delta's rows.
			_ = os.Remove(path)
			continue
		}
		w.checkpointSeq.Store(seq)
		w.deltas = append(w.deltas, walDeltaFile{index: didx, seq: seq, path: path})
		if didx > w.deltaIndex {
			w.deltaIndex = didx
		}
		info.CheckpointSeq = seq
		info.CheckpointRows += ups
		info.CheckpointDeltas++
		db.commitSeq.Store(seq)
	}
	w.chainLen.Store(int64(len(w.deltas)))
	if len(deltas) > 0 {
		w.deltaIndex = deltas[len(deltas)-1]
	}
	// Stale temp from a checkpoint interrupted before rename: discard.
	_ = os.Remove(filepath.Join(dir, walCheckpointTemp))

	ckptSeq := info.CheckpointSeq
	stopped := false
	trimmed := false
	for i, idx := range segs {
		path := segmentPath(dir, idx)
		if stopped {
			// Past the first bad record nothing was ever acknowledged;
			// remove later segments so a future recovery cannot replay
			// beyond the same stopping point.
			if err := os.Remove(path); err != nil {
				return err
			}
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		txns, valid := scanFrames(data)
		for _, t := range txns {
			if t.xid > info.MaxXid {
				info.MaxXid = t.xid
			}
			if t.seq <= ckptSeq {
				continue // already inside the checkpoint image
			}
			if t.xid != 0 && w.opts.XidCommitted != nil && !w.opts.XidCommitted(t.xid) {
				// Prepared under a cross-shard transaction the coordinator
				// never recorded as committed: every shard discards it, so
				// no shard exposes a torn half of the transaction.
				info.FilteredTxns++
				continue
			}
			if err := db.replayTxn(t); err != nil {
				return fmt.Errorf("relational: replay segment %d: %w", idx, err)
			}
			info.ReplayedTxns++
			info.ReplayedOps += int64(len(t.ops))
			if t.seq > db.commitSeq.Load() {
				db.commitSeq.Store(t.seq)
			}
		}
		if valid < int64(len(data)) {
			if allZero(data[valid:]) {
				// Preallocation slack: the segment was extended at creation
				// and the zeros were never overwritten by records. Trim the
				// slack quietly and keep scanning — nothing was torn.
				if err := os.Truncate(path, valid); err != nil {
					return err
				}
				trimmed = true
				continue
			}
			info.TornTail = true
			info.TruncatedBytes += int64(len(data)) - valid
			if err := os.Truncate(path, valid); err != nil {
				return err
			}
			stopped = true
		} else if i < len(segs)-1 {
			continue
		}
	}
	if info.TornTail || trimmed {
		if err := syncDir(dir); err != nil {
			return err
		}
	}
	db.stampSeq.Store(db.commitSeq.Load())
	return nil
}

// allZero reports whether every byte is zero — the signature of
// preallocated-segment slack past the last record.
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// resetStorage drops every row and index entry, leaving schema-shaped
// empty tables for recovery to fill. Only called before the database
// serves traffic.
func (db *Database) resetStorage() {
	db.tables = buildTableStorage(db.schema)
	db.nextRowID = 1
	db.commitSeq.Store(0)
	db.stampSeq.Store(0)
}

// replayTxn reapplies one committed transaction's row operations. The
// data was fully constraint-checked when it first committed, so replay
// maintains storage and indexes directly without re-validation.
func (db *Database) replayTxn(t walTxn) error {
	for _, op := range t.ops {
		td, err := db.tableData(op.table)
		if err != nil {
			return err
		}
		// Replayed rows are newer than the loaded checkpoint state, so
		// they are dirty relative to it: the next delta must cover them.
		td.markDirtyRow(op.id)
		switch op.kind {
		case walOpInsert:
			if _, exists := td.rows[op.id]; exists {
				return fmt.Errorf("%w: duplicate insert of %s rowid %d", errWALCorrupt, op.table, op.id)
			}
			v := newVersion(Row{ID: op.id, Values: op.values}, t.seq)
			td.rows[op.id] = v
			td.order = append(td.order, op.id)
			td.live++
			for _, ix := range td.indexes {
				ix.insert(op.id, op.values)
			}
			if op.id >= db.nextRowID {
				db.nextRowID = op.id + 1
			}
		case walOpUpdate:
			old, ok := td.rows[op.id]
			if !ok {
				return fmt.Errorf("%w: update of missing %s rowid %d", errWALCorrupt, op.table, op.id)
			}
			nv := newVersion(Row{ID: op.id, Values: op.values}, t.seq)
			removeVersionEntries(td, op.id, old, nv)
			td.rows[op.id] = nv
			for _, ix := range td.indexes {
				ix.insert(op.id, op.values)
			}
		case walOpDelete:
			old, ok := td.rows[op.id]
			if !ok {
				return fmt.Errorf("%w: delete of missing %s rowid %d", errWALCorrupt, op.table, op.id)
			}
			removeVersionEntries(td, op.id, old, nil)
			delete(td.rows, op.id)
			td.dirty = true
			td.live--
		}
	}
	return nil
}

// loadCheckpoint reads a checkpoint file and installs its row images.
func (db *Database) loadCheckpoint(path string) (seq uint64, rows int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(data) < walFrameHeaderSize {
		return 0, 0, errWALCorrupt
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	crc := binary.LittleEndian.Uint32(data[4:8])
	if n > walMaxRecordSize || int64(n) != int64(len(data)-walFrameHeaderSize) {
		return 0, 0, errWALCorrupt
	}
	payload := data[walFrameHeaderSize:]
	if crc32.ChecksumIEEE(payload) != crc {
		return 0, 0, errWALCorrupt
	}
	return db.decodeCheckpointPayload(payload)
}

func (db *Database) decodeCheckpointPayload(b []byte) (seq uint64, rows int, err error) {
	if len(b) < 1 || b[0] != walTagCheckpoint {
		return 0, 0, errWALCorrupt
	}
	b = b[1:]
	seq, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, 0, errWALCorrupt
	}
	b = b[sz:]
	ntables, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, 0, errWALCorrupt
	}
	b = b[sz:]
	for range ntables {
		nlen, sz := binary.Uvarint(b)
		if sz <= 0 || nlen > uint64(len(b)-sz) {
			return 0, 0, errWALCorrupt
		}
		b = b[sz:]
		name := string(b[:nlen])
		b = b[nlen:]
		td, terr := db.tableData(name)
		if terr != nil {
			return 0, 0, terr
		}
		nrows, sz := binary.Uvarint(b)
		if sz <= 0 {
			return 0, 0, errWALCorrupt
		}
		b = b[sz:]
		for range nrows {
			id, sz := binary.Uvarint(b)
			if sz <= 0 {
				return 0, 0, errWALCorrupt
			}
			b = b[sz:]
			ncols, sz := binary.Uvarint(b)
			if sz <= 0 || ncols > uint64(len(b)) {
				return 0, 0, errWALCorrupt
			}
			b = b[sz:]
			vals := make([]Value, 0, ncols)
			for range ncols {
				var v Value
				v, b, err = decodeWALValue(b)
				if err != nil {
					return 0, 0, err
				}
				vals = append(vals, v)
			}
			rid := RowID(id)
			v := newVersion(Row{ID: rid, Values: vals}, seq)
			td.rows[rid] = v
			td.order = append(td.order, rid)
			td.live++
			for _, ix := range td.indexes {
				ix.insert(rid, vals)
			}
			if rid >= db.nextRowID {
				db.nextRowID = rid + 1
			}
			rows++
		}
	}
	if len(b) != 0 {
		return 0, 0, errWALCorrupt
	}
	return seq, rows, nil
}

// Checkpoint persists the committed state durably and truncates the
// segments it supersedes. Most passes are INCREMENTAL: only the rows
// dirtied since the previous checkpoint are serialized into a delta
// file layered on the base image, so the pass costs O(dirty), not
// O(database); once CheckpointDeltaLimit deltas accumulate (or when
// incremental checkpoints are disabled) the pass compacts the chain
// into a fresh full base image. Commits are blocked only for the
// writer-stage drain, sequence pin, dirty-set swap and segment rotation;
// serialization runs against the pinned MVCC snapshot while traffic
// proceeds. Crash-safe at every step: images are written to a temp
// file, fsynced, atomically renamed, and only then are superseded
// segments (and, after a compaction, old delta files) retired —
// recovery handles a death between any two of those steps (stale temp
// discarded, prior base+deltas+segments replayed, or new state loaded
// with already-covered records skipped by sequence).
func (db *Database) Checkpoint() error {
	w := db.wal
	if w == nil {
		return nil
	}
	w.ckptMu.Lock()
	defer w.ckptMu.Unlock()

	start := time.Now()
	defer func() {
		ns := time.Since(start).Nanoseconds()
		w.ckptPauseHist.Record(ns)
		w.lastCkptPauseNs.Store(ns)
	}()

	db.commitMu.Lock()
	if w.closed {
		db.commitMu.Unlock()
		return ErrWALClosed
	}
	var resume chan struct{}
	if w.pipe != nil {
		// Drain the writer stage: once the barrier reports ready, every
		// enqueued group is durable and published (commitSeq has caught
		// up to stampSeq) and the writer is parked until resume closes,
		// so rotating the active segment cannot race its file handle.
		b := &walBarrier{ready: make(chan struct{}), resume: make(chan struct{})}
		w.pipe <- &walReq{barrier: b}
		<-b.ready
		resume = b.resume
	}
	seq := db.commitSeq.Load()
	snap := db.Snapshot()
	dirty := db.swapDirtyRowsLocked()
	err := w.rotate() // sealed segments now all precede seq
	if resume != nil {
		close(resume)
	}
	db.commitMu.Unlock()

	fail := func(e error) error {
		snap.Close()
		db.mergeDirtyRows(dirty)
		return e
	}
	if err != nil {
		return fail(fmt.Errorf("relational: checkpoint rotate: %w", err))
	}
	w.mu.Lock()
	supersede := make([]sealedSegment, len(w.sealed))
	copy(supersede, w.sealed)
	w.mu.Unlock()

	full := w.opts.CheckpointDeltaLimit < 0 || !w.haveBase || len(w.deltas) >= w.opts.CheckpointDeltaLimit
	if full && w.haveBase && len(w.deltas) > 0 {
		// Compacting: the delta chain folds into the fresh base image.
		if err := evalFailpoint(FpCheckpointCompact); err != nil {
			return fail(err)
		}
	}
	var payload []byte
	if full {
		payload, err = db.encodeCheckpointPayload(snap, seq)
	} else {
		payload, err = db.encodeDeltaPayload(snap, seq, dirty)
	}
	snap.Close()
	if err != nil {
		db.mergeDirtyRows(dirty)
		return err
	}
	if full {
		err = w.installFull(payload, seq, supersede)
	} else {
		err = w.installDelta(payload, seq, supersede)
	}
	if err != nil {
		db.mergeDirtyRows(dirty)
		return err
	}
	return nil
}

// encodeCheckpointPayload serializes every row visible at the snapshot.
func (db *Database) encodeCheckpointPayload(snap *Snapshot, seq uint64) ([]byte, error) {
	b := make([]byte, 0, 1<<16)
	b = append(b, walTagCheckpoint)
	b = binary.AppendUvarint(b, seq)
	names := db.SortedTableNames()
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		b = binary.AppendUvarint(b, uint64(len(name)))
		b = append(b, name...)
		// Count first so the row count prefixes the rows.
		count := uint64(0)
		if err := snap.Scan(name, func(*Row) bool { count++; return true }); err != nil {
			return nil, err
		}
		b = binary.AppendUvarint(b, count)
		var scanErr error
		if err := snap.Scan(name, func(r *Row) bool {
			b = binary.AppendUvarint(b, uint64(r.ID))
			b = binary.AppendUvarint(b, uint64(len(r.Values)))
			for _, v := range r.Values {
				b = appendWALValue(b, v)
			}
			return true
		}); err != nil {
			scanErr = err
		}
		if scanErr != nil {
			return nil, scanErr
		}
	}
	return b, nil
}

// installImage writes one checkpoint image (full base or delta)
// durably: temp file, fsync, atomic rename to finalPath, dir-fsync.
// fpMidWrite is the failpoint evaluated with the image half-written.
func (w *WAL) installImage(payload []byte, finalPath, fpMidWrite string) error {
	tmpPath := filepath.Join(w.dir, walCheckpointTemp)
	f, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	cleanup := func(e error) error {
		f.Close()
		_ = os.Remove(tmpPath)
		return e
	}
	frame := frameRecord(payload)
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		return cleanup(err)
	}
	if err := evalFailpoint(fpMidWrite); err != nil {
		return cleanup(err)
	}
	if _, err := f.Write(frame[len(frame)/2:]); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	w.fsyncs.Add(1)
	if err := f.Close(); err != nil {
		return cleanup(err)
	}
	if err := evalFailpoint(FpCheckpointRename); err != nil {
		_ = os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, finalPath); err != nil {
		_ = os.Remove(tmpPath)
		return err
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	return nil
}

// installFull installs a full base image, resetting the delta chain;
// the chain's old files are removed once the new base is durable.
func (w *WAL) installFull(payload []byte, seq uint64, supersede []sealedSegment) error {
	if err := w.installImage(payload, filepath.Join(w.dir, walCheckpointName), FpCheckpointWrite); err != nil {
		return err
	}
	oldDeltas := w.deltas
	w.haveBase = true
	w.deltas = nil
	w.chainLen.Store(0)
	return w.finishCheckpoint(seq, supersede, oldDeltas)
}

// installDelta installs one incremental checkpoint on top of the chain.
func (w *WAL) installDelta(payload []byte, seq uint64, supersede []sealedSegment) error {
	idx := w.deltaIndex + 1
	path := filepath.Join(w.dir, deltaFileName(idx))
	if err := w.installImage(payload, path, FpCheckpointDeltaWrite); err != nil {
		return err
	}
	w.deltaIndex = idx
	w.deltas = append(w.deltas, walDeltaFile{index: idx, seq: seq, path: path})
	w.chainLen.Store(int64(len(w.deltas)))
	return w.finishCheckpoint(seq, supersede, nil)
}

// finishCheckpoint publishes the new checkpoint sequence and retires
// what it supersedes: compacted-away delta files are deleted, sealed
// segments go to the recycle list (or are deleted past its cap).
func (w *WAL) finishCheckpoint(seq uint64, supersede []sealedSegment, oldDeltas []walDeltaFile) error {
	w.checkpointSeq.Store(seq)
	w.checkpoints.Add(1)
	w.sealedSinceC.Store(0)
	if err := evalFailpoint(FpCheckpointTruncate); err != nil {
		return err
	}
	for _, d := range oldDeltas {
		if err := os.Remove(d.path); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	for _, s := range supersede {
		if err := w.retireSegment(s); err != nil {
			return err
		}
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}
	w.mu.Lock()
	remaining := w.sealed[:0]
	superseded := make(map[uint64]bool, len(supersede))
	for _, s := range supersede {
		superseded[s.index] = true
	}
	for _, s := range w.sealed {
		if !superseded[s.index] {
			remaining = append(remaining, s)
		}
	}
	w.sealed = remaining
	w.mu.Unlock()
	return nil
}

// maybeCheckpoint runs a checkpoint when enough segments have sealed
// since the last one (CommitGroup piggybacks it, like Reclaim).
func (db *Database) maybeCheckpoint() {
	w := db.wal
	if w == nil || w.opts.CheckpointEverySegments <= 0 {
		return
	}
	if w.sealedSinceC.Load() >= int64(w.opts.CheckpointEverySegments) {
		_ = db.Checkpoint()
	}
}

// StartCheckpointer checkpoints on the given interval in a background
// goroutine until the returned stop function is called (idempotent).
// Intervals with no commits skip the pass, so an idle database costs
// nothing. Long-running hosts (the ufilterd daemon) use it to bound
// recovery replay time; CheckpointEverySegments bounds it by volume
// instead.
func (db *Database) StartCheckpointer(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		var lastAppends int64
		for {
			select {
			case <-done:
				return
			case <-t.C:
				w := db.wal
				if w == nil {
					continue
				}
				if n := w.appends.Load(); n != lastAppends {
					lastAppends = n
					_ = db.Checkpoint()
				}
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// CloseWAL seals the write-ahead log for shutdown: final fsync, close.
// Further commits fail with ErrWALFailed (wrapping ErrWALClosed); reads
// keep working. Idempotent.
func (db *Database) CloseWAL() error {
	w := db.wal
	if w == nil {
		return nil
	}
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.pipe != nil {
		// Drain and stop the writer stage: every already-enqueued group
		// is written, fsynced and published (or rolled back) before the
		// stop request — necessarily last in the queue, since enqueues
		// happen under the commitMu this function holds — acknowledges.
		req := &walReq{stop: true, done: make(chan error, 1)}
		w.pipe <- req
		<-req.done
		<-w.writerDone
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	w.fsyncs.Add(1)
	return w.f.Close()
}

// WALDir returns the attached log's directory ("" without a WAL).
func (db *Database) WALDir() string {
	if db.wal == nil {
		return ""
	}
	return db.wal.dir
}

// FsyncHistogram snapshots the WAL fsync duration distribution (empty
// when no WAL is attached).
func (db *Database) FsyncHistogram() obs.Snapshot {
	if db.wal == nil {
		return obs.Snapshot{}
	}
	return db.wal.fsyncHist.Snapshot()
}

// LastFsyncNanos returns the duration of the most recent commit-path
// WAL fsync, or 0 without a WAL. The group-commit leader reads it right
// after CommitGroup returns to attribute fsync time within the commit
// wait it observed.
func (db *Database) LastFsyncNanos() int64 {
	if db.wal == nil {
		return 0
	}
	return db.wal.lastFsyncNs.Load()
}

// CheckpointPauseHistogram snapshots the distribution of checkpoint
// pass durations — the stall observed by whichever caller triggered the
// pass (empty when no WAL is attached).
func (db *Database) CheckpointPauseHistogram() obs.Snapshot {
	if db.wal == nil {
		return obs.Snapshot{}
	}
	return db.wal.ckptPauseHist.Snapshot()
}
