package relational

import (
	"sort"
	"strings"
)

// RowID identifies a stored row, mirroring Oracle's ROWID pseudo-column
// that the paper's translated SQL (e.g. "delete from book where rowid =
// t3") addresses rows by.
type RowID int64

// hashIndex is an equality index over one or more columns. Keys are the
// composite encoding of the indexed column values; each key maps to the
// set of row ids carrying those values.
type hashIndex struct {
	name    string
	columns []int // positional column indexes
	entries map[string]map[RowID]struct{}
	unique  bool
}

func newHashIndex(name string, columns []int, unique bool) *hashIndex {
	return &hashIndex{
		name:    name,
		columns: columns,
		entries: make(map[string]map[RowID]struct{}),
		unique:  unique,
	}
}

// keyFor extracts the index key for a row's values. The boolean is false
// when any indexed column is NULL (NULLs are not indexed, matching SQL
// unique-constraint semantics).
func (ix *hashIndex) keyFor(values []Value) (string, bool) {
	parts := make([]Value, len(ix.columns))
	for i, c := range ix.columns {
		if values[c].IsNull() {
			return "", false
		}
		parts[i] = values[c]
	}
	return EncodeCompositeKey(parts), true
}

func (ix *hashIndex) insert(id RowID, values []Value) {
	key, ok := ix.keyFor(values)
	if !ok {
		return
	}
	set := ix.entries[key]
	if set == nil {
		set = make(map[RowID]struct{})
		ix.entries[key] = set
	}
	set[id] = struct{}{}
}

// insertKey adds one id under a precomputed key. Recovery uses it to
// rebuild entries from the page directory's persisted row metadata
// without reading any page.
func (ix *hashIndex) insertKey(key string, id RowID) {
	set := ix.entries[key]
	if set == nil {
		set = make(map[RowID]struct{})
		ix.entries[key] = set
	}
	set[id] = struct{}{}
}

func (ix *hashIndex) remove(id RowID, values []Value) {
	key, ok := ix.keyFor(values)
	if !ok {
		return
	}
	ix.removeKey(key, id)
}

// removeKey drops one id from a bucket addressed by its encoded key;
// the MVCC reclaimer uses it to clear entries of versions whose values
// it has already re-encoded.
func (ix *hashIndex) removeKey(key string, id RowID) {
	if set := ix.entries[key]; set != nil {
		delete(set, id)
		if len(set) == 0 {
			delete(ix.entries, key)
		}
	}
}

// lookup returns the row ids matching the given key values, sorted for
// determinism.
func (ix *hashIndex) lookup(vals []Value) []RowID {
	for _, v := range vals {
		if v.IsNull() {
			return nil
		}
	}
	key := EncodeCompositeKey(vals)
	set := ix.entries[key]
	if len(set) == 0 {
		return nil
	}
	out := make([]RowID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// matchesColumns reports whether the index covers exactly the given
// positional columns (order-insensitive).
func (ix *hashIndex) matchesColumns(cols []int) bool {
	if len(cols) != len(ix.columns) {
		return false
	}
	want := make(map[int]bool, len(cols))
	for _, c := range cols {
		want[c] = true
	}
	for _, c := range ix.columns {
		if !want[c] {
			return false
		}
	}
	return true
}

func indexName(table string, cols []string) string {
	return "ix_" + strings.ToLower(table) + "_" + strings.ToLower(strings.Join(cols, "_"))
}
