package relational

import (
	"errors"
	"testing"
	"testing/quick"
)

// bookSchema builds the running-example schema of the paper's Fig. 1:
// publisher(pubid PK, pubname UNIQUE NOT NULL), book(bookid PK, title
// NOT NULL, pubid FK, price CHECK(>0), year), review((bookid,reviewid)
// PK, bookid FK, comment, reviewer).
func bookSchema(t testing.TB, bookPolicy, reviewPolicy DeletePolicy) *Schema {
	t.Helper()
	publisher, err := NewTableDef("publisher", []Column{
		{Name: "pubid", Type: TypeString},
		{Name: "pubname", Type: TypeString, NotNull: true, Unique: true},
	}, []string{"pubid"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	book, err := NewTableDef("book", []Column{
		{Name: "bookid", Type: TypeString},
		{Name: "title", Type: TypeString, NotNull: true},
		{Name: "pubid", Type: TypeString},
		{Name: "price", Type: TypeFloat, Checks: []CheckPredicate{{Op: OpGT, Operand: Float_(0)}}},
		{Name: "year", Type: TypeInt},
	}, []string{"bookid"}, []ForeignKey{{
		Name: "book_pub_fk", Columns: []string{"pubid"},
		RefTable: "publisher", RefColumns: []string{"pubid"}, OnDelete: bookPolicy,
	}})
	if err != nil {
		t.Fatal(err)
	}
	review, err := NewTableDef("review", []Column{
		{Name: "bookid", Type: TypeString},
		{Name: "reviewid", Type: TypeString},
		{Name: "comment", Type: TypeString},
		{Name: "reviewer", Type: TypeString},
	}, []string{"bookid", "reviewid"}, []ForeignKey{{
		Name: "review_book_fk", Columns: []string{"bookid"},
		RefTable: "book", RefColumns: []string{"bookid"}, OnDelete: reviewPolicy,
	}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSchema(publisher, book, review)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func loadBookData(t testing.TB, db *Database) {
	t.Helper()
	pubs := [][2]string{{"A01", "McGraw-Hill Inc."}, {"B01", "Prentice-Hall Inc."}, {"A02", "Simon & Schuster Inc."}}
	for _, p := range pubs {
		if _, err := db.Insert("publisher", map[string]Value{"pubid": String_(p[0]), "pubname": String_(p[1])}); err != nil {
			t.Fatal(err)
		}
	}
	books := []struct {
		id, title, pub string
		price          float64
		year           int64
	}{
		{"98001", "TCP/IP Illustrated", "A01", 37.00, 1997},
		{"98002", "Programming in Unix", "A02", 45.00, 1985},
		{"98003", "Data on the Web", "A01", 48.00, 2004},
	}
	for _, b := range books {
		if _, err := db.Insert("book", map[string]Value{
			"bookid": String_(b.id), "title": String_(b.title), "pubid": String_(b.pub),
			"price": Float_(b.price), "year": Int_(b.year),
		}); err != nil {
			t.Fatal(err)
		}
	}
	reviews := [][4]string{
		{"98001", "001", "A good book on network.", "William"},
		{"98001", "002", "Useful for advanced user.", "John"},
	}
	for _, r := range reviews {
		if _, err := db.Insert("review", map[string]Value{
			"bookid": String_(r[0]), "reviewid": String_(r[1]), "comment": String_(r[2]), "reviewer": String_(r[3]),
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func newBookDB(t testing.TB) *Database {
	db := NewDatabase(bookSchema(t, DeleteCascade, DeleteCascade))
	loadBookData(t, db)
	return db
}

func TestInsertAndLookup(t *testing.T) {
	db := newBookDB(t)
	if got := db.RowCount("book"); got != 3 {
		t.Fatalf("book count = %d, want 3", got)
	}
	ids, err := db.LookupEqual("book", []string{"bookid"}, []Value{String_("98001")})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("lookup 98001: got %d rows, want 1", len(ids))
	}
	vals, err := db.ValuesByName("book", ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if vals["title"].Str != "TCP/IP Illustrated" {
		t.Errorf("title = %q", vals["title"].Str)
	}
	if vals["price"].Float != 37.00 {
		t.Errorf("price = %v", vals["price"])
	}
}

func TestNotNullViolation(t *testing.T) {
	db := newBookDB(t)
	_, err := db.Insert("book", map[string]Value{
		"bookid": String_("98009"), "pubid": String_("A01"), "price": Float_(10),
	})
	if !errors.Is(err, ErrNotNull) {
		t.Fatalf("err = %v, want ErrNotNull", err)
	}
}

func TestEmptyStringTreatedAsNull(t *testing.T) {
	// Paper Example 1 / update u1: empty <title/> violates NOT NULL.
	db := newBookDB(t)
	_, err := db.Insert("book", map[string]Value{
		"bookid": String_("98004"), "title": String_(" "), "pubid": String_("A01"), "price": Float_(10),
	})
	if !errors.Is(err, ErrNotNull) {
		t.Fatalf("err = %v, want ErrNotNull for empty title", err)
	}
}

func TestCheckViolation(t *testing.T) {
	// Paper Example 1 / update u1: price 0.00 violates CHECK(price > 0).
	db := newBookDB(t)
	_, err := db.Insert("book", map[string]Value{
		"bookid": String_("98004"), "title": String_("X"), "pubid": String_("A01"), "price": Float_(0),
	})
	if !errors.Is(err, ErrCheck) {
		t.Fatalf("err = %v, want ErrCheck", err)
	}
}

func TestPrimaryKeyViolation(t *testing.T) {
	// Paper update u4: inserting bookid 98001 again conflicts with the key.
	db := newBookDB(t)
	_, err := db.Insert("book", map[string]Value{
		"bookid": String_("98001"), "title": String_("Operating Systems"), "pubid": String_("A01"), "price": Float_(20),
	})
	if !errors.Is(err, ErrPrimaryKey) {
		t.Fatalf("err = %v, want ErrPrimaryKey", err)
	}
}

func TestCompositePrimaryKey(t *testing.T) {
	db := newBookDB(t)
	if _, err := db.Insert("review", map[string]Value{
		"bookid": String_("98002"), "reviewid": String_("001"), "comment": String_("ok"),
	}); err != nil {
		t.Fatalf("distinct composite key rejected: %v", err)
	}
	_, err := db.Insert("review", map[string]Value{
		"bookid": String_("98001"), "reviewid": String_("001"), "comment": String_("dup"),
	})
	if !errors.Is(err, ErrPrimaryKey) {
		t.Fatalf("err = %v, want ErrPrimaryKey on composite key", err)
	}
}

func TestUniqueViolation(t *testing.T) {
	db := newBookDB(t)
	_, err := db.Insert("publisher", map[string]Value{
		"pubid": String_("C01"), "pubname": String_("McGraw-Hill Inc."),
	})
	if !errors.Is(err, ErrUnique) {
		t.Fatalf("err = %v, want ErrUnique", err)
	}
}

func TestForeignKeyViolation(t *testing.T) {
	db := newBookDB(t)
	_, err := db.Insert("book", map[string]Value{
		"bookid": String_("98005"), "title": String_("Ghost"), "pubid": String_("ZZZ"), "price": Float_(5),
	})
	if !errors.Is(err, ErrForeignKey) {
		t.Fatalf("err = %v, want ErrForeignKey", err)
	}
}

func TestNullForeignKeyAllowed(t *testing.T) {
	db := newBookDB(t)
	if _, err := db.Insert("book", map[string]Value{
		"bookid": String_("98005"), "title": String_("Orphan"), "price": Float_(5),
	}); err != nil {
		t.Fatalf("NULL FK should be allowed: %v", err)
	}
}

func TestDeleteCascade(t *testing.T) {
	// Deleting publisher A01 cascades through books 98001, 98003 and
	// both reviews of 98001: 1 + 2 + 2 = 5 rows.
	db := newBookDB(t)
	ids, _ := db.LookupEqual("publisher", []string{"pubid"}, []Value{String_("A01")})
	n, err := db.Delete("publisher", ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("cascade deleted %d rows, want 5", n)
	}
	if got := db.RowCount("book"); got != 1 {
		t.Errorf("book count = %d, want 1", got)
	}
	if got := db.RowCount("review"); got != 0 {
		t.Errorf("review count = %d, want 0", got)
	}
}

func TestDeleteRestrict(t *testing.T) {
	db := NewDatabase(bookSchema(t, DeleteRestrict, DeleteRestrict))
	loadBookData(t, db)
	ids, _ := db.LookupEqual("publisher", []string{"pubid"}, []Value{String_("A01")})
	_, err := db.Delete("publisher", ids[0])
	if !errors.Is(err, ErrRestrict) {
		t.Fatalf("err = %v, want ErrRestrict", err)
	}
	if got := db.RowCount("publisher"); got != 3 {
		t.Errorf("publisher count = %d, want 3 after restricted delete", got)
	}
}

func TestDeleteSetNull(t *testing.T) {
	// SET NULL is the policy §7.3 observes in the PSD domain.
	db := NewDatabase(bookSchema(t, DeleteSetNull, DeleteCascade))
	loadBookData(t, db)
	ids, _ := db.LookupEqual("publisher", []string{"pubid"}, []Value{String_("A01")})
	n, err := db.Delete("publisher", ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("deleted %d rows, want 1 (books survive with NULL pubid)", n)
	}
	bids, _ := db.LookupEqual("book", []string{"bookid"}, []Value{String_("98001")})
	vals, _ := db.ValuesByName("book", bids[0])
	if !vals["pubid"].IsNull() {
		t.Errorf("book.pubid = %v, want NULL", vals["pubid"])
	}
}

func TestDeleteMissingRowIsNoOp(t *testing.T) {
	db := newBookDB(t)
	n, err := db.Delete("book", 99999)
	if err != nil || n != 0 {
		t.Fatalf("delete missing: n=%d err=%v, want 0,nil", n, err)
	}
}

func TestUpdateRow(t *testing.T) {
	db := newBookDB(t)
	ids, _ := db.LookupEqual("book", []string{"bookid"}, []Value{String_("98001")})
	if err := db.UpdateRow("book", ids[0], map[string]Value{"price": Float_(39.99)}); err != nil {
		t.Fatal(err)
	}
	vals, _ := db.ValuesByName("book", ids[0])
	if vals["price"].Float != 39.99 {
		t.Errorf("price = %v", vals["price"])
	}
	// Index must follow the update.
	if err := db.UpdateRow("book", ids[0], map[string]Value{"bookid": String_("98001X")}); err != nil {
		t.Fatal(err)
	}
	if got, _ := db.LookupEqual("book", []string{"bookid"}, []Value{String_("98001")}); len(got) != 0 {
		t.Errorf("old key still indexed")
	}
	if got, _ := db.LookupEqual("book", []string{"bookid"}, []Value{String_("98001X")}); len(got) != 1 {
		t.Errorf("new key not indexed")
	}
}

func TestUpdateRowConstraintRollback(t *testing.T) {
	db := newBookDB(t)
	ids, _ := db.LookupEqual("book", []string{"bookid"}, []Value{String_("98001")})
	err := db.UpdateRow("book", ids[0], map[string]Value{"bookid": String_("98002")})
	if !errors.Is(err, ErrPrimaryKey) {
		t.Fatalf("err = %v, want ErrPrimaryKey", err)
	}
	// The failed update must leave indexes intact.
	if got, _ := db.LookupEqual("book", []string{"bookid"}, []Value{String_("98001")}); len(got) != 1 {
		t.Errorf("row lost from index after failed update")
	}
}

func TestTransactionRollbackRestoresEverything(t *testing.T) {
	db := newBookDB(t)
	before := db.TotalRows()
	txn := db.Begin()
	if _, err := txn.Insert("publisher", map[string]Value{"pubid": String_("D01"), "pubname": String_("New Pub")}); err != nil {
		t.Fatal(err)
	}
	ids, _ := txn.LookupEqual("publisher", []string{"pubid"}, []Value{String_("A01")})
	if _, err := txn.Delete("publisher", ids[0]); err != nil {
		t.Fatal(err)
	}
	bids, _ := txn.LookupEqual("book", []string{"bookid"}, []Value{String_("98002")})
	if err := txn.UpdateRow("book", bids[0], map[string]Value{"price": Float_(1)}); err != nil {
		t.Fatal(err)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := db.TotalRows(); got != before {
		t.Fatalf("TotalRows = %d, want %d after rollback", got, before)
	}
	// Cascade-deleted reviews restored and indexed.
	rids, _ := db.LookupEqual("review", []string{"bookid"}, []Value{String_("98001")})
	if len(rids) != 2 {
		t.Errorf("reviews of 98001 = %d, want 2", len(rids))
	}
	bids, _ = db.LookupEqual("book", []string{"bookid"}, []Value{String_("98002")})
	vals, _ := db.ValuesByName("book", bids[0])
	if vals["price"].Float != 45.00 {
		t.Errorf("price = %v, want 45 restored", vals["price"])
	}
}

func TestTransactionCommit(t *testing.T) {
	db := newBookDB(t)
	txn := db.Begin()
	if _, err := txn.Insert("publisher", map[string]Value{"pubid": String_("D01"), "pubname": String_("New Pub")}); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := db.RowCount("publisher"); got != 4 {
		t.Fatalf("publisher count = %d, want 4 after commit", got)
	}
	if err := txn.Commit(); err == nil {
		t.Error("double commit should fail")
	}
}

func TestValueCompareAndCoerce(t *testing.T) {
	cases := []struct {
		a, b Value
		op   CompareOp
		want bool
	}{
		{Int_(1), Float_(1.0), OpEQ, true},
		{Int_(2), Float_(1.5), OpGT, true},
		{String_("abc"), String_("abd"), OpLT, true},
		{Null(), Int_(1), OpEQ, false},
		{Int_(1), Null(), OpNE, false},
		{String_("a"), Int_(1), OpEQ, false},
		{Float_(49.99), Float_(50), OpLT, true},
	}
	for i, c := range cases {
		if got := c.op.Apply(c.a, c.b); got != c.want {
			t.Errorf("case %d: %v %v %v = %v, want %v", i, c.a, c.op, c.b, got, c.want)
		}
	}
	if v, err := String_("42").CoerceTo(TypeInt); err != nil || v.Int != 42 {
		t.Errorf("coerce: %v %v", v, err)
	}
	if _, err := String_("abc").CoerceTo(TypeFloat); err == nil {
		t.Error("coercing 'abc' to DOUBLE should fail")
	}
	if v, err := Null().CoerceTo(TypeInt); err != nil || !v.IsNull() {
		t.Errorf("NULL coercion: %v %v", v, err)
	}
}

func TestParseLiteral(t *testing.T) {
	if v := ParseLiteral("37.00"); v.Kind != KindFloat || v.Float != 37 {
		t.Errorf("37.00 -> %v", v)
	}
	if v := ParseLiteral("1997"); v.Kind != KindInt || v.Int != 1997 {
		t.Errorf("1997 -> %v", v)
	}
	if v := ParseLiteral("hello"); v.Kind != KindString {
		t.Errorf("hello -> %v", v)
	}
}

func TestCompareOpAlgebra(t *testing.T) {
	ops := []CompareOp{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}
	for _, op := range ops {
		if got := op.Negate().Negate(); got != op {
			t.Errorf("double negate of %v = %v", op, got)
		}
		if got := op.Flip().Flip(); got != op {
			t.Errorf("double flip of %v = %v", op, got)
		}
	}
}

func TestExtend(t *testing.T) {
	s := bookSchema(t, DeleteCascade, DeleteCascade)
	ext := s.Extend("publisher")
	for _, want := range []string{"publisher", "book", "review"} {
		if !ext[want] {
			t.Errorf("extend(publisher) missing %s", want)
		}
	}
	ext = s.Extend("review")
	if len(ext) != 1 || !ext["review"] {
		t.Errorf("extend(review) = %v, want {review}", ext)
	}
}

// Property: compare is antisymmetric and Negate complements Apply for
// non-NULL comparable values.
func TestQuickCompareProperties(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int_(a), Int_(b)
		c1, err1 := va.Compare(vb)
		c2, err2 := vb.Compare(va)
		if err1 != nil || err2 != nil {
			return false
		}
		if c1 != -c2 {
			return false
		}
		for _, op := range []CompareOp{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE} {
			if op.Apply(va, vb) == op.Negate().Apply(va, vb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EncodeKey is injective across string/number kinds for
// representative values.
func TestQuickEncodeKeyInjective(t *testing.T) {
	f := func(i int64, s string) bool {
		vi, vs := Int_(i), String_(s)
		return vi.EncodeKey() != vs.EncodeKey()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: insert then delete leaves the table at its prior cardinality
// and the index finds nothing.
func TestQuickInsertDeleteRoundTrip(t *testing.T) {
	db := newBookDB(t)
	f := func(suffix uint16, price float64) bool {
		if price <= 0 || price != price { // respect CHECK, skip NaN
			price = 1.5
		}
		id := "Q" + Int_(int64(suffix)).String()
		before := db.RowCount("book")
		rid, err := db.Insert("book", map[string]Value{
			"bookid": String_(id), "title": String_("quick"), "pubid": String_("A01"), "price": Float_(price),
		})
		if err != nil {
			// Duplicate suffix collisions are fine; anything else is not.
			return errors.Is(err, ErrPrimaryKey)
		}
		if _, err := db.Delete("book", rid); err != nil {
			return false
		}
		got, _ := db.LookupEqual("book", []string{"bookid"}, []Value{String_(id)})
		return db.RowCount("book") == before && len(got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: rollback after a random batch of inserts restores cardinality.
func TestQuickRollbackRestoresCardinality(t *testing.T) {
	db := newBookDB(t)
	f := func(n uint8) bool {
		before := db.TotalRows()
		txn := db.Begin()
		for i := 0; i < int(n%16); i++ {
			txn.Insert("publisher", map[string]Value{
				"pubid":   String_("QP" + Int_(int64(i)).String()),
				"pubname": String_("Quick Pub " + Int_(int64(i)).String()),
			})
		}
		if err := txn.Rollback(); err != nil {
			return false
		}
		return db.TotalRows() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
