package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/ufilter"
)

func batchInsertReview(id int) string {
	return fmt.Sprintf(`
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Data on the Web"
UPDATE $book { INSERT <review><reviewid>%d</reviewid><comment>batch</comment></review> }`, id)
}

// TestApplyBatchEndpoint: POST /views/{name}/apply-batch runs the
// group-commit path, returns per-update verdicts in order, and the
// view's stats report the batch plus one redo flush for its accepted
// updates.
func TestApplyBatchEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	v, _ := s.Registry.Get("book")
	flushesBefore := v.Filter.Stats().Database.RedoFlushes

	resp, body := postJSON(t, ts.URL+"/views/book/apply-batch", map[string]any{
		"updates": []string{
			batchInsertReview(601),
			batchInsertReview(602),
			batchInsertReview(601), // duplicate key: data conflict
			"NOT AN UPDATE",
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Results  []ufilter.BatchResult `json:"results"`
		Accepted int                   `json:"accepted"`
		Rejected int                   `json:"rejected"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad body %s: %v", body, err)
	}
	if len(out.Results) != 4 || out.Accepted != 2 || out.Rejected != 2 {
		t.Fatalf("results=%d accepted=%d rejected=%d", len(out.Results), out.Accepted, out.Rejected)
	}
	if !out.Results[0].Result.Accepted || !out.Results[1].Result.Accepted {
		t.Errorf("first two updates should be accepted: %+v", out.Results[:2])
	}
	if out.Results[2].Result == nil || out.Results[2].Result.Accepted {
		t.Errorf("duplicate insert should be rejected: %+v", out.Results[2])
	}
	if out.Results[3].Err == nil {
		t.Errorf("parse failure should surface as a per-update error: %+v", out.Results[3])
	}

	st := v.Stats()
	if st.Applies.Batches != 1 {
		t.Errorf("batches = %d, want 1", st.Applies.Batches)
	}
	if st.Applies.Total != 4 || st.Applies.Accepted != 2 {
		t.Errorf("applies = %+v", st.Applies)
	}
	if got := st.Filter.Database.RedoFlushes - flushesBefore; got != 1 {
		t.Errorf("redo flushes = %d, want 1 (group commit)", got)
	}

	// The stats JSON carries the live queue depth field.
	var raw map[string]any
	r := getJSON(t, ts.URL+"/views/book/stats", &raw)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", r.StatusCode)
	}
	if _, ok := raw["queue_depth"]; !ok {
		t.Errorf("stats JSON missing queue_depth: %v", raw)
	}

	// Metrics expose the batch and flush counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody := new(strings.Builder)
	if _, err := io.Copy(mbody, mresp.Body); err != nil {
		t.Fatal(err)
	}
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", mresp.StatusCode)
	}
	for _, want := range []string{
		`ufilterd_apply_batches_total{view="book"} 1`,
		`ufilterd_redo_flushes_total{view="book"}`,
		`ufilterd_plan_cache_plans{view="book"}`,
	} {
		if !strings.Contains(mbody.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestApplyBatchValidation: an empty batch is a 400.
func TestApplyBatchValidation(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/views/book/apply-batch", map[string]any{"updates": []string{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
}
