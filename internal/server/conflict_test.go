package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/relational"
)

const applyReplacePrice = `{"update":"FOR $book IN document(\"BookView.xml\")/book WHERE $book/title/text() = \"Data on the Web\" UPDATE $book { REPLACE $book/price WITH <price>41.00</price> }"}`

// TestApplyWriteConflictAnswers409: an apply that exhausts its
// first-updater-wins retries against a held row claim is answered 409
// Conflict (never 5xx), the per-view stats expose the conflict
// counters, and the row claim released, the same apply succeeds.
func TestApplyWriteConflictAnswers409(t *testing.T) {
	reg := NewRegistry()
	v, err := reg.Add(ViewConfig{Name: "book", Dataset: "book"})
	if err != nil {
		t.Fatal(err)
	}
	v.Filter.MaxWriteRetries = 2 // fail fast against the held claim
	srv := httptest.NewServer(New(reg).Handler())
	defer srv.Close()

	// Claim the probed book's row with a raw transaction.
	db := v.Filter.Exec.DB
	claim := db.BeginTxn()
	ids, err := claim.LookupEqual("book", []string{"bookid"}, []relational.Value{relational.String_("98003")})
	if err != nil || len(ids) != 1 {
		t.Fatalf("lookup: %v %v", ids, err)
	}
	if err := claim.UpdateRow("book", ids[0], map[string]relational.Value{"price": relational.Float_(1)}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(srv.URL+"/views/book/apply", "application/json", strings.NewReader(applyReplacePrice))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409", resp.StatusCode)
	}

	// Stats surface the write path's counters.
	st := v.Stats()
	if st.TxnConflictsTotal == 0 {
		t.Fatalf("txn_conflicts_total = 0 after a 409, stats = %+v", st)
	}
	if st.TxnRetriesTotal == 0 {
		t.Fatal("txn_retries_total = 0 after a 409")
	}
	if st.Applies.Conflicted != 1 {
		t.Fatalf("applies.conflicted = %d, want 1", st.Applies.Conflicted)
	}
	if st.TxnsActive == 0 {
		t.Fatal("txns_active = 0 while the claim transaction is open")
	}

	// Release the claim: the same apply now commits.
	if err := claim.Rollback(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/views/book/apply", "application/json", strings.NewReader(applyReplacePrice))
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Accepted bool `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !body.Accepted {
		t.Fatalf("post-release apply: status %d accepted %v", resp.StatusCode, body.Accepted)
	}

	// The metrics endpoint renders the new series.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	metrics := string(raw)
	for _, want := range []string{
		"ufilterd_txn_conflicts_total{view=\"book\"}",
		"ufilterd_txn_retries_total{view=\"book\"}",
		"ufilterd_txns_active{view=\"book\"}",
		"ufilterd_apply_conflict_409_total{view=\"book\"} 1",
		"ufilterd_group_commits_total{view=\"book\"}",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

// TestConcurrentConflictingAppliesNo5xx fires concurrent applies that
// all rewrite the same row: every response must be 200 (accepted after
// retries) or 409 (retries exhausted) — never a 5xx — and the engine
// must have recorded the conflicts.
func TestConcurrentConflictingAppliesNo5xx(t *testing.T) {
	reg := NewRegistry()
	v, err := reg.Add(ViewConfig{Name: "book", Dataset: "book", QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(reg).Handler())
	defer srv.Close()

	// Hold a claim just long enough to guarantee at least one conflict
	// even when GOMAXPROCS=1 serializes the HTTP handlers.
	db := v.Filter.Exec.DB
	claim := db.BeginTxn()
	ids, _ := claim.LookupEqual("book", []string{"bookid"}, []relational.Value{relational.String_("98003")})
	if err := claim.UpdateRow("book", ids[0], map[string]relational.Value{"price": relational.Float_(1)}); err != nil {
		t.Fatal(err)
	}
	released := make(chan struct{})
	go func() {
		// Release once the retry machinery has engaged.
		for v.Filter.WriteStats().Retries == 0 {
			time.Sleep(50 * time.Microsecond)
		}
		claim.Rollback()
		close(released)
	}()

	const clients = 8
	var wg sync.WaitGroup
	var bad atomic.Value
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := fmt.Sprintf(`{"update":"FOR $book IN document(\"BookView.xml\")/book WHERE $book/title/text() = \"Data on the Web\" UPDATE $book { REPLACE $book/price WITH <price>4%d.00</price> }"}`, c%9)
			resp, err := http.Post(srv.URL+"/views/book/apply", "application/json", strings.NewReader(body))
			if err != nil {
				bad.Store(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				bad.Store(fmt.Errorf("got %d", resp.StatusCode))
				return
			}
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusTooManyRequests {
				bad.Store(fmt.Errorf("unexpected status %d", resp.StatusCode))
			}
		}()
	}
	wg.Wait()
	<-released
	if err, _ := bad.Load().(error); err != nil {
		t.Fatal(err)
	}
	if v.Stats().TxnConflictsTotal == 0 {
		t.Fatal("no conflicts recorded by the contended workload")
	}
}
