package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/relational"
	"repro/internal/ufilter"
)

// handleMetrics renders every view's counters as Prometheus-style
// text (gauge/counter lines with a view label), hand-rolled so the
// daemon stays dependency-free.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	type metric struct {
		name, help, kind string
		values           map[string]float64 // label value -> sample
	}
	metrics := []metric{
		{"ufilterd_checks_total", "Schema-level checks served.", "counter", map[string]float64{}},
		{"ufilterd_check_errors_total", "Checks that failed to parse or errored.", "counter", map[string]float64{}},
		{"ufilterd_applies_total", "Full-pipeline applies executed.", "counter", map[string]float64{}},
		{"ufilterd_applies_accepted_total", "Applies accepted and committed.", "counter", map[string]float64{}},
		{"ufilterd_applies_rejected_total", "Applies rejected by the pipeline.", "counter", map[string]float64{}},
		{"ufilterd_apply_batches_total", "Group-commit apply-batch calls.", "counter", map[string]float64{}},
		{"ufilterd_apply_queue_shed_total", "Applies shed with 429 by the concurrency limiter.", "counter", map[string]float64{}},
		{"ufilterd_apply_queue_depth", "Apply concurrency limiter capacity.", "gauge", map[string]float64{}},
		{"ufilterd_apply_queue_in_flight", "Apply slots currently held.", "gauge", map[string]float64{}},
		{"ufilterd_apply_conflict_409_total", "Applies answered 409 after exhausting conflict retries.", "counter", map[string]float64{}},
		{"ufilterd_txn_conflicts_total", "Write-write conflicts detected by the engine (first-updater-wins losers).", "counter", map[string]float64{}},
		{"ufilterd_txn_retries_total", "Apply attempts re-run after a write-write conflict.", "counter", map[string]float64{}},
		{"ufilterd_txns_active", "Transactions currently open.", "gauge", map[string]float64{}},
		{"ufilterd_txns_started_total", "Transactions ever begun (including autocommit statements).", "counter", map[string]float64{}},
		{"ufilterd_group_commits_total", "Commit groups published (one WAL flush each).", "counter", map[string]float64{}},
		{"ufilterd_grouped_txns_total", "Transactions committed through commit groups.", "counter", map[string]float64{}},
		{"ufilterd_cache_hits_total", "Plan cache verdict hits.", "counter", map[string]float64{}},
		{"ufilterd_cache_misses_total", "Plan cache verdict misses.", "counter", map[string]float64{}},
		{"ufilterd_cache_hit_rate", "Plan cache verdict hit rate.", "gauge", map[string]float64{}},
		{"ufilterd_plan_cache_plans", "Compiled update plans currently cached.", "gauge", map[string]float64{}},
		{"ufilterd_plan_applies_total", "Applies executed off a cached compiled plan.", "counter", map[string]float64{}},
		{"ufilterd_rows_scanned_total", "Rows visited by table scans.", "counter", map[string]float64{}},
		{"ufilterd_index_probes_total", "Index lookups issued.", "counter", map[string]float64{}},
		{"ufilterd_statements_executed_total", "DML statements executed.", "counter", map[string]float64{}},
		{"ufilterd_redo_records_total", "Write-ahead log records appended.", "counter", map[string]float64{}},
		{"ufilterd_redo_bytes_total", "Write-ahead log bytes appended.", "counter", map[string]float64{}},
		{"ufilterd_redo_flushes_total", "Write-ahead log flushes (group commit amortizes these).", "counter", map[string]float64{}},
		{"ufilterd_wal_segments", "Durable WAL segment files currently live (0 without -data-dir).", "gauge", map[string]float64{}},
		{"ufilterd_wal_bytes_total", "Bytes appended to durable WAL segments.", "counter", map[string]float64{}},
		{"ufilterd_wal_fsyncs_total", "fsync calls issued by the durable WAL (one per commit group).", "counter", map[string]float64{}},
		{"ufilterd_wal_checkpoints_total", "Durable WAL checkpoints installed.", "counter", map[string]float64{}},
		{"ufilterd_wal_recovery_replayed_txns", "Committed transactions replayed from the WAL at startup.", "gauge", map[string]float64{}},
		{"ufilterd_wal_recycled_segments_total", "Active-segment opens served from the preallocated recycle pool.", "counter", map[string]float64{}},
		{"ufilterd_wal_pipeline_depth", "Commit groups queued or in flight in the WAL writer stage.", "gauge", map[string]float64{}},
		{"ufilterd_checkpoint_delta_chain_len", "Incremental checkpoint deltas layered on the base image (worst shard).", "gauge", map[string]float64{}},
		{"ufilterd_checkpoint_last_pause_seconds", "Duration of the most recent checkpoint pass (worst shard).", "gauge", map[string]float64{}},
		{"ufilterd_pagecache_hits_total", "Buffer-pool page reads served from memory.", "counter", map[string]float64{}},
		{"ufilterd_pagecache_misses_total", "Buffer-pool page reads that faulted from disk.", "counter", map[string]float64{}},
		{"ufilterd_pagecache_evictions_total", "Buffer-pool frames evicted to stay within the budget.", "counter", map[string]float64{}},
		{"ufilterd_pages_total", "Live pages in the checkpoint page store.", "gauge", map[string]float64{}},
		{"ufilterd_compaction_pages_written_total", "Pages written by checkpoint passes and directory folds.", "counter", map[string]float64{}},
		{"ufilterd_snapshots_active", "MVCC snapshots currently pinned.", "gauge", map[string]float64{}},
		{"ufilterd_snapshots_opened_total", "MVCC snapshots ever pinned.", "counter", map[string]float64{}},
		{"ufilterd_versions_reclaimed_total", "Row versions freed by the MVCC reclaimer.", "counter", map[string]float64{}},
		{"ufilterd_version_reclaims_total", "MVCC reclaim passes (inline and background).", "counter", map[string]float64{}},
		{"ufilterd_row_versions", "Row versions currently stored, including history.", "gauge", map[string]float64{}},
		{"ufilterd_version_chain_depth_max", "Longest row version chain (1 = no history).", "gauge", map[string]float64{}},
		{"ufilterd_rows_total", "Rows visible through a snapshot pinned for this scrape.", "gauge", map[string]float64{}},
		{"ufilterd_commit_seq", "Last committed MVCC sequence number.", "gauge", map[string]float64{}},
		{"ufilterd_shards", "Storage shards backing the view (1 = unsharded).", "gauge", map[string]float64{}},
	}
	var shardStats []struct {
		view  string
		stats []relational.ShardStat
	}
	for _, v := range s.Registry.Views() {
		st := v.Stats()
		samples := []float64{
			float64(st.Checks),
			float64(st.CheckErrors),
			float64(st.Applies.Total),
			float64(st.Applies.Accepted),
			float64(st.Applies.Rejected),
			float64(st.Applies.Batches),
			float64(st.Queue.Shed),
			float64(st.Queue.Depth),
			float64(st.Queue.InFlight),
			float64(st.Applies.Conflicted),
			float64(st.TxnConflictsTotal),
			float64(st.TxnRetriesTotal),
			float64(st.TxnsActive),
			float64(st.Filter.Database.TxnsStarted),
			float64(st.Filter.Write.GroupCommits),
			float64(st.Filter.Write.GroupedTxns),
			float64(st.Filter.Cache.Hits),
			float64(st.Filter.Cache.Misses),
			st.CacheHitRate,
			float64(st.Filter.Cache.Plans),
			float64(st.Filter.Cache.PlanApplies),
			float64(st.Filter.Executor.RowsScanned),
			float64(st.Filter.Executor.IndexProbes),
			float64(st.Filter.Database.StatementsExecuted),
			float64(st.Filter.Database.RedoRecords),
			float64(st.Filter.Database.RedoBytes),
			float64(st.Filter.Database.RedoFlushes),
			float64(st.Filter.Database.WALSegments),
			float64(st.Filter.Database.WALBytes),
			float64(st.Filter.Database.Fsyncs),
			float64(st.Filter.Database.Checkpoints),
			float64(st.Filter.Database.RecoveryReplayedTxns),
			float64(st.Filter.Database.WALRecycledSegments),
			float64(st.Filter.Database.WALPipelineDepth),
			float64(st.Filter.Database.CheckpointDeltaChainLen),
			float64(st.Filter.Database.CheckpointLastPauseNs) / 1e9,
			float64(st.Filter.Database.PagecacheHits),
			float64(st.Filter.Database.PagecacheMisses),
			float64(st.Filter.Database.PagecacheEvictions),
			float64(st.Filter.Database.PagesTotal),
			float64(st.Filter.Database.CompactionPagesWritten),
			float64(st.Versions.SnapshotsActive),
			float64(st.Versions.SnapshotsOpened),
			float64(st.Versions.VersionsReclaimed),
			float64(st.Versions.Reclaims),
			float64(st.Versions.Versions),
			float64(st.Versions.MaxChainDepth),
			float64(st.RowsTotal),
			float64(st.Versions.CommitSeq),
			float64(st.Shards),
		}
		for i := range metrics {
			metrics[i].values[v.Name] = samples[i]
		}
		if len(st.ShardStats) > 0 {
			shardStats = append(shardStats, struct {
				view  string
				stats []relational.ShardStat
			}{v.Name, st.ShardStats})
		}
	}
	for _, m := range metrics {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind)
		labels := make([]string, 0, len(m.values))
		for l := range m.values {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			fmt.Fprintf(&b, "%s{view=%q} %g\n", m.name, l, m.values[l])
		}
	}
	writeShardMetrics(&b, shardStats)
	s.writeHistograms(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}

// writeShardMetrics renders the per-shard series for sharded views as
// its own block ({view,shard}-labelled), decoupled from the
// order-sensitive samples array of the main table.
func writeShardMetrics(b *strings.Builder, perView []struct {
	view  string
	stats []relational.ShardStat
}) {
	if len(perView) == 0 {
		return
	}
	families := []struct {
		name, help, kind string
		sample           func(relational.ShardStat) float64
	}{
		{"ufilterd_shard_rows_total", "Visible rows stored on the shard.", "gauge",
			func(s relational.ShardStat) float64 { return float64(s.Rows) }},
		{"ufilterd_shard_txn_conflicts_total", "Write-write conflicts detected on the shard.", "counter",
			func(s relational.ShardStat) float64 { return float64(s.Conflicts) }},
		{"ufilterd_shard_wal_fsyncs_total", "WAL fsyncs issued by the shard (parallel across shards).", "counter",
			func(s relational.ShardStat) float64 { return float64(s.Fsyncs) }},
		{"ufilterd_shard_group_commits_total", "Commit groups published on the shard.", "counter",
			func(s relational.ShardStat) float64 { return float64(s.GroupCommits) }},
		{"ufilterd_shard_commit_seq", "Shard-local committed sequence number.", "gauge",
			func(s relational.ShardStat) float64 { return float64(s.CommitSeq) }},
		{"ufilterd_shard_wal_recycled_segments_total", "Active-segment opens served from the shard's recycle pool.", "counter",
			func(s relational.ShardStat) float64 { return float64(s.WALRecycledSegments) }},
		{"ufilterd_shard_wal_pipeline_depth", "Commit groups queued or in flight in the shard's WAL writer stage.", "gauge",
			func(s relational.ShardStat) float64 { return float64(s.WALPipelineDepth) }},
		{"ufilterd_shard_checkpoint_delta_chain_len", "Incremental checkpoint deltas layered on the shard's base image.", "gauge",
			func(s relational.ShardStat) float64 { return float64(s.CheckpointDeltaChainLen) }},
		{"ufilterd_shard_checkpoint_last_pause_seconds", "Duration of the shard's most recent checkpoint pass.", "gauge",
			func(s relational.ShardStat) float64 { return float64(s.CheckpointLastPauseNs) / 1e9 }},
		{"ufilterd_shard_pagecache_hits_total", "Buffer-pool page reads served from the shard's pool.", "counter",
			func(s relational.ShardStat) float64 { return float64(s.PagecacheHits) }},
		{"ufilterd_shard_pagecache_misses_total", "Buffer-pool page reads the shard faulted from disk.", "counter",
			func(s relational.ShardStat) float64 { return float64(s.PagecacheMisses) }},
		{"ufilterd_shard_pagecache_evictions_total", "Frames evicted from the shard's buffer pool.", "counter",
			func(s relational.ShardStat) float64 { return float64(s.PagecacheEvictions) }},
		{"ufilterd_shard_pages_total", "Live pages in the shard's checkpoint page store.", "gauge",
			func(s relational.ShardStat) float64 { return float64(s.PagesTotal) }},
	}
	for _, f := range families {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for _, pv := range perView {
			for _, ss := range pv.stats {
				fmt.Fprintf(b, "%s{view=%q,shard=\"%d\"} %g\n", f.name, pv.view, ss.Shard, f.sample(ss))
			}
		}
	}
}

// writeHistograms renders the latency/size histogram families in the
// Prometheus histogram exposition format (cumulative _bucket lines,
// _sum, _count). Request latency carries a per-endpoint label; the
// engine-internal families are per view only.
func (s *Server) writeHistograms(b *strings.Builder) {
	views := s.Registry.Views()

	obs.WritePromHeader(b, "ufilterd_request_duration_seconds", "End-to-end request latency per endpoint.")
	for _, v := range views {
		endpoints := []struct {
			name string
			h    *obs.Histogram
		}{
			{"check", v.checkHist},
			{"check-batch", v.checkBatchHist},
			{"apply", v.applyHist},
			{"apply-batch", v.applyBatchHist},
		}
		for _, ep := range endpoints {
			labels := fmt.Sprintf("view=%q,endpoint=%q", v.Name, ep.name)
			obs.WriteProm(b, "ufilterd_request_duration_seconds", labels, ep.h.Snapshot())
		}
	}

	engine := []struct {
		name, help string
		snap       func(v *View) obs.Snapshot
	}{
		{"ufilterd_apply_latency_seconds", "End-to-end single-apply latency (the Retry-After p90 source).",
			func(v *View) obs.Snapshot { return v.applyHist.Snapshot() }},
		{"ufilterd_plan_compile_seconds", "Full plan compilation time (cache misses: resolve + STAR + artifacts).",
			func(v *View) obs.Snapshot { return planHist(v).Compile.Snapshot() }},
		{"ufilterd_txn_retries_per_apply", "Conflict-retry attempts per finished apply (bucket 0 = conflict-free).",
			func(v *View) obs.Snapshot { return planHist(v).Retries.Snapshot() }},
		{"ufilterd_commit_wait_seconds", "Wait from group-commit enqueue to published acknowledgment, fsync included.",
			func(v *View) obs.Snapshot { return planHist(v).CommitWait.Snapshot() }},
		{"ufilterd_group_commit_txns", "Transactions coalesced per published commit group.",
			func(v *View) obs.Snapshot { return planHist(v).GroupSize.Snapshot() }},
		{"ufilterd_wal_fsync_seconds", "Durable WAL fsync duration per commit group (empty without -data-dir).",
			func(v *View) obs.Snapshot { return v.Filter.Exec.DB.FsyncHistogram() }},
		{"ufilterd_checkpoint_pause_seconds", "Checkpoint pass duration — O(dirty) under incremental checkpoints (empty without -data-dir).",
			func(v *View) obs.Snapshot { return v.Filter.Exec.DB.CheckpointPauseHistogram() }},
	}
	for _, h := range engine {
		obs.WritePromHeader(b, h.name, h.help)
		for _, v := range views {
			obs.WriteProm(b, h.name, fmt.Sprintf("view=%q", v.Name), h.snap(v))
		}
	}
}

// planHist fetches the view executor's engine-internal histogram set,
// substituting an empty one if observability was detached (the nil
// histograms inside snapshot to valid empty snapshots).
func planHist(v *View) *ufilter.ObsHists {
	if h := v.Filter.Obs; h != nil {
		return h
	}
	return &ufilter.ObsHists{}
}
