package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bookdb"
	"repro/internal/obs"
)

// TestTracedApply: an apply carrying X-UFilter-Trace: 1 gets back a
// stage breakdown whose spans all fit inside (and sum to no more than)
// the measured end-to-end latency — the acceptance criterion.
func TestTracedApply(t *testing.T) {
	_, ts := newTestServer(t)
	data, _ := json.Marshal(map[string]string{"update": bookdb.U12})
	req, err := http.NewRequest("POST", ts.URL+"/views/book/apply", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-UFilter-Trace", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Result struct {
			Accepted bool `json:"accepted"`
		} `json:"result"`
		Trace obs.TraceSummary `json:"trace"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
	if !out.Result.Accepted {
		t.Fatalf("apply rejected: %s", body)
	}
	if out.Trace.TotalNs <= 0 {
		t.Fatal("trace has no end-to-end total")
	}
	if len(out.Trace.Spans) == 0 {
		t.Fatal("trace has no spans")
	}
	stages := map[string]bool{}
	var sum int64
	for _, s := range out.Trace.Spans {
		stages[s.Stage] = true
		sum += s.DurNs
		if s.StartNs < 0 || s.StartNs > out.Trace.TotalNs {
			t.Errorf("span %q starts outside the trace: %+v", s.Stage, s)
		}
	}
	if sum > out.Trace.TotalNs {
		t.Errorf("span sum %d exceeds end-to-end %d", sum, out.Trace.TotalNs)
	}
	for _, want := range []string{"admission", "context_check", "translate", "execute", "commit_publish"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (got %v)", want, stages)
		}
	}
}

// TestUntracedApplyShapeUnchanged: without the header the apply
// response is the bare Result, exactly as before this layer existed.
func TestUntracedApplyShapeUnchanged(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/views/book/apply", map[string]string{"update": bookdb.U12})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	if _, hasTrace := raw["trace"]; hasTrace {
		t.Fatalf("untraced response leaked a trace: %s", body)
	}
	if _, hasAccepted := raw["accepted"]; !hasAccepted {
		t.Fatalf("untraced response is not a bare Result: %s", body)
	}
}

// TestSlowEndpoint: after traffic, /views/{name}/slow serves the
// slowest recent traces with stage spans, slowest first.
func TestSlowEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 0; i < 5; i++ {
		resp, body := postJSON(t, ts.URL+"/views/book/check", map[string]string{"update": bookdb.U12})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("check %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := postJSON(t, ts.URL+"/views/book/apply", map[string]string{"update": bookdb.U12})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply: HTTP %d: %s", resp.StatusCode, body)
	}
	var out struct {
		View  string             `json:"view"`
		Count int                `json:"count"`
		Slow  []obs.TraceSummary `json:"slow"`
	}
	getJSON(t, ts.URL+"/views/book/slow", &out)
	if out.View != "book" || out.Count == 0 || len(out.Slow) != out.Count {
		t.Fatalf("slow ring empty after traffic: %+v", out)
	}
	for i := 1; i < len(out.Slow); i++ {
		if out.Slow[i].TotalNs > out.Slow[i-1].TotalNs {
			t.Fatalf("slow traces not sorted slowest-first: %d after %d",
				out.Slow[i].TotalNs, out.Slow[i-1].TotalNs)
		}
	}
}

// TestMetricsHistogramFamilies is the acceptance parsing test:
// /metrics must expose >= 6 histogram families with correct cumulative
// _bucket/_sum/_count encoding, verified line by line.
func TestMetricsHistogramFamilies(t *testing.T) {
	_, ts := newTestServer(t)
	// Drive every instrumented path at least once.
	postJSON(t, ts.URL+"/views/book/check", map[string]string{"update": bookdb.U12})
	postJSON(t, ts.URL+"/views/book/apply", map[string]string{"update": bookdb.U12})
	postJSON(t, ts.URL+"/views/book/check-batch", map[string]any{"updates": []string{bookdb.U12}})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}

	type series struct {
		buckets []uint64 // cumulative counts in le order
		les     []string
		sum     *float64
		count   *uint64
	}
	families := map[string]bool{} // histogram family name -> seen TYPE line
	byKey := map[string]*series{} // family + labels (le stripped) -> series
	keyOf := func(name, labelPart string) string {
		var kept []string
		for _, kv := range strings.Split(labelPart, ",") {
			if !strings.HasPrefix(kv, "le=") {
				kept = append(kept, kv)
			}
		}
		sort.Strings(kept)
		return name + "|" + strings.Join(kept, ",")
	}
	for _, line := range strings.Split(strings.TrimSpace(string(text)), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) == 4 && parts[3] == "histogram" {
				families[parts[2]] = true
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable sample line %q", line)
		}
		base := name
		labelPart := ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
			base, labelPart = name[:i], name[i+1:len(name)-1]
		}
		switch {
		case strings.HasSuffix(base, "_bucket") && families[strings.TrimSuffix(base, "_bucket")]:
			fam := strings.TrimSuffix(base, "_bucket")
			le := ""
			for _, kv := range strings.Split(labelPart, ",") {
				if strings.HasPrefix(kv, "le=") {
					le = strings.Trim(kv[len("le="):], `"`)
				}
			}
			if le == "" {
				t.Fatalf("bucket without le: %q", line)
			}
			c, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", line, err)
			}
			s := byKey[keyOf(fam, labelPart)]
			if s == nil {
				s = &series{}
				byKey[keyOf(fam, labelPart)] = s
			}
			s.buckets = append(s.buckets, c)
			s.les = append(s.les, le)
		case strings.HasSuffix(base, "_sum") && families[strings.TrimSuffix(base, "_sum")]:
			f, err := strconv.ParseFloat(value, 64)
			if err != nil {
				t.Fatalf("sum value %q: %v", line, err)
			}
			s := byKey[keyOf(strings.TrimSuffix(base, "_sum"), labelPart)]
			if s == nil {
				t.Fatalf("_sum before any bucket: %q", line)
			}
			s.sum = &f
		case strings.HasSuffix(base, "_count") && families[strings.TrimSuffix(base, "_count")]:
			c, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Fatalf("count value %q: %v", line, err)
			}
			s := byKey[keyOf(strings.TrimSuffix(base, "_count"), labelPart)]
			if s == nil {
				t.Fatalf("_count before any bucket: %q", line)
			}
			s.count = &c
		}
	}

	if len(families) < 6 {
		t.Fatalf("only %d histogram families exposed, want >= 6: %v", len(families), families)
	}
	for _, want := range []string{
		"ufilterd_request_duration_seconds",
		"ufilterd_apply_latency_seconds",
		"ufilterd_plan_compile_seconds",
		"ufilterd_txn_retries_per_apply",
		"ufilterd_commit_wait_seconds",
		"ufilterd_group_commit_txns",
		"ufilterd_wal_fsync_seconds",
	} {
		if !families[want] {
			t.Errorf("missing histogram family %s", want)
		}
	}
	nonEmpty := 0
	for key, s := range byKey {
		last := ""
		var prev uint64
		for i, c := range s.buckets {
			if c < prev {
				t.Errorf("%s: cumulative bucket counts decrease at le=%s", key, s.les[i])
			}
			prev = c
			last = s.les[i]
		}
		if last != "+Inf" {
			t.Errorf("%s: last bucket le=%q, want +Inf", key, last)
		}
		if s.sum == nil || s.count == nil {
			t.Errorf("%s: missing _sum or _count", key)
			continue
		}
		if s.buckets[len(s.buckets)-1] != *s.count {
			t.Errorf("%s: +Inf bucket %d != _count %d", key, s.buckets[len(s.buckets)-1], *s.count)
		}
		if *s.count > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("every histogram series is empty after traffic")
	}
	// The driven endpoints must have recorded.
	for _, mustHave := range []string{
		fmt.Sprintf(`ufilterd_request_duration_seconds|endpoint="apply",view="book"`),
		fmt.Sprintf(`ufilterd_plan_compile_seconds|view="book"`),
		fmt.Sprintf(`ufilterd_group_commit_txns|view="book"`),
	} {
		s := byKey[mustHave]
		if s == nil || s.count == nil || *s.count == 0 {
			t.Errorf("series %s empty after traffic", mustHave)
		}
	}
}

// TestRetryAfterUsesP90: the Retry-After estimate under backpressure
// comes from the apply-latency histogram's p90, not a running mean.
func TestRetryAfterUsesP90(t *testing.T) {
	reg := NewRegistry()
	v, err := reg.Add(ViewConfig{Name: "book", Dataset: "book", QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Bimodal synthetic latencies: 85 fast commits and 15 slow
	// retry-tail applies. The mean (~0.9s) would round the estimate
	// down; the p90 (in the 4s bucket) must dominate.
	for i := 0; i < 85; i++ {
		v.applyHist.Record(int64(300_000_000)) // 0.3s
	}
	for i := 0; i < 15; i++ {
		v.applyHist.Record(int64(4_000_000_000)) // 4s
	}
	v.queue <- struct{}{}
	v.queue <- struct{}{} // limiter full, depth == lanes
	defer func() { <-v.queue; <-v.queue }()
	got := v.retryAfter()
	if got < 2e9 {
		t.Fatalf("retryAfter = %v, want >= 2s (p90 of the bimodal distribution)", got)
	}
}
