package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bookdb"
	"repro/internal/psd"
	"repro/internal/ufilter"
)

// newTestServer hosts a book view and a psd view (two datasets, two
// databases) behind httptest.
func newTestServer(t testing.TB) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	if _, err := reg.Add(ViewConfig{Name: "book", Dataset: "book"}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add(ViewConfig{Name: "proteins", Dataset: "psd", Proteins: 50}); err != nil {
		t.Fatal(err)
	}
	s := New(reg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t testing.TB, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// TestHealthzAndViews: liveness plus the view listing.
func TestHealthzAndViews(t *testing.T) {
	_, ts := newTestServer(t)
	var health struct {
		Status string `json:"status"`
		Views  int    `json:"views"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	if health.Status != "ok" || health.Views != 2 {
		t.Fatalf("healthz = %+v, want ok/2", health)
	}
	var list struct {
		Views []struct {
			Name       string `json:"name"`
			Dataset    string `json:"dataset"`
			QueueDepth int    `json:"queue_depth"`
		} `json:"views"`
	}
	getJSON(t, ts.URL+"/views", &list)
	if len(list.Views) != 2 || list.Views[0].Name != "book" || list.Views[1].Name != "proteins" {
		t.Fatalf("views = %+v", list.Views)
	}
	if list.Views[0].QueueDepth != DefaultApplyQueueDepth {
		t.Fatalf("queue depth = %d, want %d", list.Views[0].QueueDepth, DefaultApplyQueueDepth)
	}
}

// TestCheckEndpoint: the wire verdicts match the library's, using the
// shared JSON spelling.
func TestCheckEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, view, update string
		accepted           bool
		outcome            string
	}{
		{"u12 accepted", "book", bookdb.U12, true, "unconditionally translatable"},
		{"u2 untranslatable", "book", bookdb.U2, false, "untranslatable"},
		{"psd citations", "proteins", psd.DeleteCitations("P00001"), true, "unconditionally translatable"},
		{"psd organism", "proteins", psd.DeleteOrganismInProtein("P00001"), false, "untranslatable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/views/"+tc.view+"/check", map[string]string{"update": tc.update})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
			}
			var res ufilter.Result
			if err := json.Unmarshal(body, &res); err != nil {
				t.Fatalf("decode: %v\n%s", err, body)
			}
			if res.Accepted != tc.accepted || res.Outcome.String() != tc.outcome {
				t.Fatalf("got accepted=%v outcome=%q, want %v %q", res.Accepted, res.Outcome, tc.accepted, tc.outcome)
			}
		})
	}
}

// TestCheckErrors: malformed bodies are 400, unparseable updates 422,
// unknown views 404.
func TestCheckErrors(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/views/book/check", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: HTTP %d, want 400", resp.StatusCode)
	}
	resp, body := postJSON(t, ts.URL+"/views/book/check", map[string]string{"update": "this is not an update"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad update: HTTP %d (%s), want 422", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, ts.URL+"/views/nope/check", map[string]string{"update": bookdb.U12})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown view: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestCheckBatchEndpoint: batch results come back in input order with
// per-update errors as strings.
func TestCheckBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	updates := []string{bookdb.U12, "garbage", bookdb.U2}
	resp, body := postJSON(t, ts.URL+"/views/book/check-batch",
		map[string]any{"updates": updates, "workers": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Results []ufilter.BatchResult `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	if out.Results[0].Err != nil || !out.Results[0].Result.Accepted {
		t.Errorf("u12: %+v", out.Results[0])
	}
	if out.Results[1].Err == nil {
		t.Errorf("garbage should carry an error: %+v", out.Results[1])
	}
	if out.Results[2].Err != nil || out.Results[2].Result.Accepted {
		t.Errorf("u2 should be rejected: %+v", out.Results[2])
	}
}

// TestApplyEndpoint: a full-pipeline insert mutates the database and a
// second identical insert is rejected by Step 3 (duplicate key).
func TestApplyEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	ins := `
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Data on the Web"
UPDATE $book {
  INSERT <review><reviewid>90001</reviewid><comment> via http </comment></review>
}`
	resp, body := postJSON(t, ts.URL+"/views/book/apply", map[string]string{"update": ins})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	var res ufilter.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.RowsAffected == 0 {
		t.Fatalf("apply not accepted: %s", body)
	}
	resp, body = postJSON(t, ts.URL+"/views/book/apply", map[string]string{"update": ins})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.RejectedAt != ufilter.StepData {
		t.Fatalf("duplicate insert should be rejected at the data step: %s", body)
	}
}

// TestCreateViewEndpoint: POST /views registers a view usable
// immediately; duplicates and unknown datasets are rejected.
func TestCreateViewEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/views",
		ViewConfig{Name: "book2", Dataset: "book", Strategy: "outside", QueueDepth: 3})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/views/book2/check", map[string]string{"update": bookdb.U12})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check on created view: HTTP %d: %s", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, ts.URL+"/views", ViewConfig{Name: "book2", Dataset: "book"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("duplicate name: HTTP %d, want 422", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/views", ViewConfig{Name: "x", Dataset: "nope"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown dataset: HTTP %d, want 422", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/views", ViewConfig{Name: "a/b", Dataset: "book"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unroutable name: HTTP %d, want 422", resp.StatusCode)
	}
}

// TestCreateViewInheritsDefaultQueueDepth: runtime-registered views
// honor the registry's configured default apply queue bound.
func TestCreateViewInheritsDefaultQueueDepth(t *testing.T) {
	reg := NewRegistry()
	reg.DefaultQueueDepth = 2
	ts := httptest.NewServer(New(reg).Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/views", ViewConfig{Name: "book", Dataset: "book"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	v, _ := reg.Get("book")
	if v.QueueCapacity() != 2 {
		t.Fatalf("queue depth = %d, want the registry default 2", v.QueueCapacity())
	}
}

// TestStatsEndpoint: /stats reports the same counters the library
// exposes through Filter.CacheStats and the executor totals.
func TestStatsEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	for i := 0; i < 5; i++ {
		postJSON(t, ts.URL+"/views/book/check", map[string]string{"update": bookdb.U12})
	}
	postJSON(t, ts.URL+"/views/book/apply", map[string]string{"update": bookdb.U12})

	var st ViewStats
	if resp := getJSON(t, ts.URL+"/views/book/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: HTTP %d", resp.StatusCode)
	}
	v, _ := s.Registry.Get("book")
	want := v.Filter.CacheStats()
	if st.Filter.Cache != want {
		t.Errorf("stats cache = %+v, want %+v", st.Filter.Cache, want)
	}
	if st.Filter.Cache.Hits < 4 {
		t.Errorf("expected >=4 cache hits, got %+v", st.Filter.Cache)
	}
	if st.CacheHitRate != want.HitRate() {
		t.Errorf("hit rate = %v, want %v", st.CacheHitRate, want.HitRate())
	}
	if got := v.Filter.Exec.Stats(); st.Filter.Executor != got {
		t.Errorf("executor stats = %+v, want %+v", st.Filter.Executor, got)
	}
	if st.Filter.Database.StatementsExecuted != v.Filter.Exec.DB.StatementsExecutedTotal() {
		t.Errorf("db stats = %+v", st.Filter.Database)
	}
	if st.Checks != 5 || st.Applies.Total != 1 {
		t.Errorf("traffic counters = checks %d applies %+v", st.Checks, st.Applies)
	}
}

// TestMetricsEndpoint: the Prometheus text carries per-view samples.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	postJSON(t, ts.URL+"/views/book/check", map[string]string{"update": bookdb.U12})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`ufilterd_checks_total{view="book"} 1`,
		`ufilterd_checks_total{view="proteins"} 0`,
		`ufilterd_apply_queue_depth{view="book"} 16`,
		"# TYPE ufilterd_cache_hit_rate gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

// TestApplyBackpressure fills the admission queue with blocked applies
// and asserts: the overflow request is shed with 429 + Retry-After,
// checks still complete while the queue is saturated, and the queue
// drains cleanly.
func TestApplyBackpressure(t *testing.T) {
	reg := NewRegistry()
	v, err := reg.Add(ViewConfig{Name: "book", Dataset: "book", QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	v.applyFn = func(context.Context, string) (*ufilter.Result, error) {
		started <- struct{}{}
		<-block
		return &ufilter.Result{Accepted: true}, nil
	}
	ts := httptest.NewServer(New(reg).Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/views/book/apply", map[string]string{"update": bookdb.U12})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("blocked apply: HTTP %d: %s", resp.StatusCode, body)
			}
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("applies did not reach the pipeline")
		}
	}

	// Queue saturated: the next apply is shed immediately.
	resp, body := postJSON(t, ts.URL+"/views/book/apply", map[string]string{"update": bookdb.U12})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow apply: HTTP %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After")
	}

	// Checks are unaffected by apply saturation.
	resp, body = postJSON(t, ts.URL+"/views/book/check", map[string]string{"update": bookdb.U12})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check under backpressure: HTTP %d: %s", resp.StatusCode, body)
	}

	close(block)
	wg.Wait()
	st := v.Stats()
	if st.Queue.Shed != 1 || st.Applies.Total != 2 || st.Queue.InFlight != 0 {
		t.Errorf("final stats: %+v", st)
	}
}

// TestConcurrentHTTPTraffic is the -race regression for the subsystem:
// concurrent HTTP checks, applies and stats reads against two views at
// once.
func TestConcurrentHTTPTraffic(t *testing.T) {
	_, ts := newTestServer(t)
	var wg sync.WaitGroup

	// Checkers on both views.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				view, update := "book", bookdb.U12
				if (g+i)%2 == 0 {
					view, update = "proteins", psd.DeleteCitations(fmt.Sprintf("P%05d", i))
				}
				resp, body := postJSON(t, ts.URL+"/views/"+view+"/check", map[string]string{"update": update})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("check: HTTP %d: %s", resp.StatusCode, body)
					return
				}
			}
		}(g)
	}
	// Appliers on the book view; 429s are legitimate under saturation.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				ins := fmt.Sprintf(`
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Data on the Web"
UPDATE $book {
  INSERT <review><reviewid>7%d%02d</reviewid><comment> http race </comment></review>
}`, w, i)
				for _, u := range []string{ins, bookdb.U12} {
					resp, body := postJSON(t, ts.URL+"/views/book/apply", map[string]string{"update": u})
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
						t.Errorf("apply: HTTP %d: %s", resp.StatusCode, body)
						return
					}
				}
			}
		}(w)
	}
	// Stats and metrics readers run throughout.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				getJSON(t, ts.URL+"/views/book/stats", &ViewStats{})
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
}

// TestLoadConfig: the JSON config round-trips into a working registry.
func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/ufilterd.json"
	cfg := Config{
		ApplyQueueDepth: 4,
		Views: []ViewConfig{
			{Name: "book", Dataset: "book", Strategy: "outside"},
			{Name: "proteins", Dataset: "psd", Proteins: 25, QueueDepth: 2},
		},
	}
	data, _ := json.Marshal(cfg)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.DefaultQueueDepth = got.ApplyQueueDepth
	for _, vc := range got.Views {
		if _, err := reg.Add(vc); err != nil {
			t.Fatal(err)
		}
	}
	b, _ := reg.Get("book")
	if b.Strategy != ufilter.StrategyOutside || b.QueueCapacity() != 4 {
		t.Errorf("book: strategy %v depth %d", b.Strategy, b.QueueCapacity())
	}
	p, _ := reg.Get("proteins")
	if p.QueueCapacity() != 2 {
		t.Errorf("proteins depth = %d, want per-view override 2", p.QueueCapacity())
	}
}

// BenchmarkCheckHandler measures end-to-end HTTP check throughput on a
// hot decision cache (the production fast path the daemon exists for).
func BenchmarkCheckHandler(b *testing.B) {
	reg := NewRegistry()
	if _, err := reg.Add(ViewConfig{Name: "book", Dataset: "book"}); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(New(reg).Handler())
	defer ts.Close()
	body, _ := json.Marshal(map[string]string{"update": bookdb.U12})
	url := ts.URL + "/views/book/check"
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("HTTP %d", resp.StatusCode)
				return
			}
		}
	})
}
