// Package server is the ufilterd subsystem: a long-running HTTP/JSON
// gateway that hosts a registry of named U-Filter views (each a
// compiled ufilter.Filter over its own in-memory database) and exposes
// the paper's three-step update check over the wire.
//
// The serving model mirrors the library's concurrency contract.
// Schema-level checks (POST /views/{name}/check and /check-batch) read
// only immutable ASGs plus the internally synchronized decision cache,
// so they fan out freely across goroutines — one per request, exactly
// as net/http provides. A /check-batch request with "data": true
// additionally pins ONE MVCC snapshot of the view's database for the
// whole batch and runs Step 3's read-only probes against it: every
// verdict reflects the same point-in-time state, and checks never wait
// behind an in-flight apply (snapshot isolation in internal/relational
// makes the read path lock-free). Full-pipeline applies
// (POST /views/{name}/apply) run CONCURRENTLY, each in its own MVCC
// transaction: independent updates commit in parallel with their
// write-ahead-log flushes coalesced by the group-commit scheduler,
// and two updates contending for the same rows resolve by
// first-updater-wins with automatic retries — a request that exhausts
// its retries is answered 409 Conflict. The server fronts each view
// with a bounded concurrency limiter: a request either claims an
// execution slot or is shed immediately with 429 Too Many Requests
// and a Retry-After estimate, keeping the database's transaction
// population bounded under overload. The statistics handlers read row
// counts through a pinned snapshot, never from the live tables an
// apply is mutating.
//
// Endpoints:
//
//	GET  /healthz                    liveness probe
//	GET  /views                      list hosted views
//	POST /views                      register a view (ViewConfig JSON)
//	POST /views/{name}/check         schema-level Steps 1+2
//	POST /views/{name}/check-batch   worker-pool batch check
//	POST /views/{name}/apply         full pipeline + execution
//	POST /views/{name}/apply-batch   group-commit batch apply (one txn,
//	                                 one redo flush for the whole batch)
//	GET  /views/{name}/stats         ViewStats JSON
//	GET  /views/{name}/slow          slowest recent request traces
//	GET  /metrics                    Prometheus-style text, all views
//
// Observability: every check/apply request runs under an obs.Trace
// recording per-stage spans (admission, cache lookup, bind, context
// checks, translate, execute, commit publish, WAL fsync); the slowest
// land in the per-view ring behind /slow, and a request carrying
// "X-UFilter-Trace: 1" gets its own stage breakdown back in the JSON
// response. /metrics adds per-endpoint latency histogram families to
// the counters.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/relational"
	"repro/internal/ufilter"
)

// Server hosts the registry behind an http.Server with graceful
// shutdown.
type Server struct {
	Registry *Registry

	// Log receives the server's structured operational records (view
	// registrations, shed/conflicted/errored applies); slog.Default()
	// when nil.
	Log *slog.Logger

	httpSrv *http.Server
	ln      net.Listener
}

// New builds a server over a registry (an empty one when nil).
func New(reg *Registry) *Server {
	if reg == nil {
		reg = NewRegistry()
	}
	s := &Server{Registry: reg}
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the route table, usable directly under httptest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /views", s.handleListViews)
	mux.HandleFunc("POST /views", s.handleCreateView)
	mux.HandleFunc("POST /views/{name}/check", s.withView(s.handleCheck))
	mux.HandleFunc("POST /views/{name}/check-batch", s.withView(s.handleCheckBatch))
	mux.HandleFunc("POST /views/{name}/apply", s.withView(s.handleApply))
	mux.HandleFunc("POST /views/{name}/apply-batch", s.withView(s.handleApplyBatch))
	mux.HandleFunc("GET /views/{name}/stats", s.withView(s.handleStats))
	mux.HandleFunc("GET /views/{name}/slow", s.withView(s.handleSlow))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Listen binds the address (host:0 selects an ephemeral port) and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

// Serve blocks serving requests on the listener bound by Listen until
// Shutdown or a fatal error. http.ErrServerClosed is filtered as the
// normal shutdown signal.
func (s *Server) Serve() error {
	if s.ln == nil {
		return fmt.Errorf("server: Serve before Listen")
	}
	if err := s.httpSrv.Serve(s.ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Shutdown drains in-flight requests and stops the server.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.httpSrv.Shutdown(ctx)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// logger returns the configured structured logger or the default one.
func (s *Server) logger() *slog.Logger {
	if s.Log != nil {
		return s.Log
	}
	return slog.Default()
}

// traceHeader is the opt-in request header whose value "1" returns the
// request's stage breakdown in the JSON response.
const traceHeader = "X-UFilter-Trace"

// startTrace begins the request's span recorder for the batch
// endpoints, which are always traced — a batch is a macroscopic
// operation and the recorder's handful of spans is noise against it.
// The breakdown is only returned to clients that opted in.
func startTrace(r *http.Request, op string) (*obs.Trace, context.Context, bool) {
	tr := obs.StartTrace(op)
	return tr, obs.WithTrace(r.Context(), tr), r.Header.Get(traceHeader) == "1"
}

// Single check and apply requests sample their span traces instead of
// recording one for every request: a plan-cached check runs in a few
// hundred nanoseconds and an apply's spans still cost a dozen clock
// reads, so always-on tracing would tax the hot path for breakdowns
// nobody reads. 1-in-N sampling (the first request and every N-th
// after, per endpoint class) keeps the slow ring fed with recent
// outliers, and a header opt-in always traces. The latency histograms
// record EVERY request regardless of sampling — only span collection
// is sampled. Applies sample denser than checks because each one is
// ~1000x more work, making the relative cost negligible.
const (
	checkTraceSampleEvery = 64
	applyTraceSampleEvery = 8
)

// withView resolves the {name} path value to a registered view.
func (s *Server) withView(fn func(http.ResponseWriter, *http.Request, *View)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		v, ok := s.Registry.Get(name)
		if !ok {
			writeError(w, http.StatusNotFound, "no such view %q", name)
			return
		}
		fn(w, r, v)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "views": len(s.Registry.Names())})
}

// viewInfo is one row of GET /views.
type viewInfo struct {
	Name       string `json:"name"`
	Dataset    string `json:"dataset"`
	Strategy   string `json:"strategy"`
	QueueDepth int    `json:"queue_depth"`
}

func (s *Server) handleListViews(w http.ResponseWriter, _ *http.Request) {
	views := s.Registry.Views()
	out := make([]viewInfo, len(views))
	for i, v := range views {
		out[i] = viewInfo{Name: v.Name, Dataset: v.Dataset, Strategy: v.Strategy.String(), QueueDepth: v.QueueCapacity()}
	}
	writeJSON(w, http.StatusOK, map[string]any{"views": out})
}

func (s *Server) handleCreateView(w http.ResponseWriter, r *http.Request) {
	var vc ViewConfig
	if err := decodeBody(r, &vc); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	v, err := s.Registry.Add(vc)
	if err != nil {
		s.logger().Warn("view registration failed", "view", vc.Name, "err", err)
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.logger().Info("view registered", "view", v.Name, "dataset", v.Dataset,
		"strategy", v.Strategy.String(), "queue_depth", v.QueueCapacity())
	writeJSON(w, http.StatusCreated, viewInfo{Name: v.Name, Dataset: v.Dataset, Strategy: v.Strategy.String(), QueueDepth: v.QueueCapacity()})
}

// checkRequest is the body of /check and /apply.
type checkRequest struct {
	Update string `json:"update"`
}

// batchRequest is the body of /check-batch.
type batchRequest struct {
	Updates []string `json:"updates"`
	Workers int      `json:"workers,omitempty"`
	// Data extends the batch check with Step 3's read-only probes,
	// evaluated against ONE database snapshot pinned for the whole
	// request: every verdict reflects the same point-in-time state, and
	// the request never waits behind an in-flight apply.
	Data bool `json:"data,omitempty"`
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request, v *View) {
	var req checkRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	wantTrace := r.Header.Get(traceHeader) == "1"
	var tr *obs.Trace
	ctx := r.Context()
	if wantTrace || v.sampleTrace(&v.checkTraceSeq, checkTraceSampleEvery) {
		tr = obs.StartTrace("check")
		ctx = obs.WithTrace(ctx, tr)
	}
	res, err := v.Check(ctx, req.Update)
	tr.Finish()
	v.OfferSlow(tr.Summary()) // nil trace → zero summary → ignored
	if err != nil {
		s.logger().Warn("check failed", "view", v.Name, "err", err)
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if wantTrace {
		writeJSON(w, http.StatusOK, map[string]any{"result": res, "trace": tr.Summary()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCheckBatch(w http.ResponseWriter, r *http.Request, v *View) {
	var req batchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Updates) == 0 {
		writeError(w, http.StatusBadRequest, "updates must be non-empty")
		return
	}
	tr, ctx, wantTrace := startTrace(r, "check-batch")
	var results []ufilter.BatchResult
	if req.Data {
		results = v.CheckBatchData(ctx, req.Updates, req.Workers)
	} else {
		results = v.CheckBatch(ctx, req.Updates, req.Workers)
	}
	tr.Finish()
	v.OfferSlow(tr.Summary())
	body := map[string]any{"results": results}
	if wantTrace {
		body["trace"] = tr.Summary()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleApply(w http.ResponseWriter, r *http.Request, v *View) {
	var req checkRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	reqStart := time.Now()
	wantTrace := r.Header.Get(traceHeader) == "1"
	var tr *obs.Trace
	ctx := r.Context()
	if wantTrace || v.sampleTrace(&v.applyTraceSeq, applyTraceSampleEvery) {
		tr = obs.StartTrace("apply")
		ctx = obs.WithTrace(ctx, tr)
	}
	res, retry, ok, err := v.Apply(ctx, req.Update)
	tr.Finish()
	if !ok {
		secs := int(retry / time.Second)
		if secs < 1 {
			secs = 1
		}
		s.logger().Warn("apply shed", "view", v.Name, "retry_after_s", secs, "queue_depth", v.QueueCapacity())
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests,
			"apply queue for view %q is full (depth %d); retry after %ds", v.Name, v.QueueCapacity(), secs)
		return
	}
	v.OfferSlow(tr.Summary()) // nil trace → zero summary → ignored
	if err != nil {
		if errors.Is(err, relational.ErrWriteConflict) {
			// The apply exhausted its first-updater-wins retries against
			// concurrent writers; the client should re-submit.
			s.logger().Warn("apply conflicted", "view", v.Name, "err", err,
				"latency_ms", float64(time.Since(reqStart))/float64(time.Millisecond))
			writeError(w, http.StatusConflict,
				"write-write conflict on view %q: %v", v.Name, err)
			return
		}
		s.logger().Warn("apply failed", "view", v.Name, "err", err)
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if wantTrace {
		writeJSON(w, http.StatusOK, map[string]any{"result": res, "trace": tr.Summary()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleApplyBatch runs a batch of updates through the group-commit
// apply path: one admission slot, one transaction, one redo flush for
// every accepted update in the batch. Per-update verdicts come back in
// input order.
func (s *Server) handleApplyBatch(w http.ResponseWriter, r *http.Request, v *View) {
	var req batchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Updates) == 0 {
		writeError(w, http.StatusBadRequest, "updates must be non-empty")
		return
	}
	tr, ctx, wantTrace := startTrace(r, "apply-batch")
	results, retry, ok := v.ApplyBatch(ctx, req.Updates)
	tr.Finish()
	if !ok {
		secs := int(retry / time.Second)
		if secs < 1 {
			secs = 1
		}
		s.logger().Warn("apply-batch shed", "view", v.Name, "retry_after_s", secs, "batch", len(req.Updates))
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests,
			"apply queue for view %q is full (depth %d); retry after %ds", v.Name, v.QueueCapacity(), secs)
		return
	}
	v.OfferSlow(tr.Summary())
	accepted := 0
	for _, br := range results {
		if br.Err == nil && br.Result != nil && br.Result.Accepted {
			accepted++
		}
	}
	body := map[string]any{
		"results":  results,
		"accepted": accepted,
		"rejected": len(results) - accepted,
	}
	if wantTrace {
		body["trace"] = tr.Summary()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request, v *View) {
	writeJSON(w, http.StatusOK, v.Stats())
}

// handleSlow serves the view's slowest recent request traces, slowest
// first, with per-stage span breakdowns.
func (s *Server) handleSlow(w http.ResponseWriter, _ *http.Request, v *View) {
	traces := v.SlowTraces()
	writeJSON(w, http.StatusOK, map[string]any{"view": v.Name, "count": len(traces), "slow": traces})
}
