package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestShardedView registers a 4-shard book view, drives an apply
// through the HTTP pipeline, and checks the per-shard rollups surface
// on /stats and /metrics.
func TestShardedView(t *testing.T) {
	reg := NewRegistry()
	v, err := reg.Add(ViewConfig{Name: "book4", Dataset: "book", Shards: 4})
	if err != nil {
		t.Fatalf("add sharded view: %v", err)
	}
	ts := httptest.NewServer(New(reg).Handler())
	defer ts.Close()

	update := `
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Data on the Web"
UPDATE $book {
  INSERT <review><reviewid>990</reviewid><comment> sharded </comment></review>
}`
	body, _ := json.Marshal(map[string]string{"update": update})
	resp, err := http.Post(ts.URL+"/views/book4/apply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply status %d", resp.StatusCode)
	}

	st := v.Stats()
	if st.Shards != 4 {
		t.Fatalf("stats shards: got %d, want 4", st.Shards)
	}
	if len(st.ShardStats) != 4 {
		t.Fatalf("shard_stats entries: got %d, want 4", len(st.ShardStats))
	}
	rows := 0
	for _, ss := range st.ShardStats {
		rows += ss.Rows
	}
	if rows != st.RowsTotal {
		t.Fatalf("per-shard rows sum %d != rows_total %d", rows, st.RowsTotal)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(metrics)
	for _, want := range []string{
		`ufilterd_shards{view="book4"} 4`,
		`ufilterd_shard_rows_total{view="book4",shard="0"}`,
		`ufilterd_shard_rows_total{view="book4",shard="3"}`,
		`ufilterd_shard_wal_fsyncs_total{view="book4",shard="0"}`,
		`ufilterd_shard_txn_conflicts_total{view="book4",shard="0"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// An unsharded view reports shards=1 and no per-shard block.
	if _, err := reg.Add(ViewConfig{Name: "plain", Dataset: "book"}); err != nil {
		t.Fatalf("add plain view: %v", err)
	}
	pv, _ := reg.Get("plain")
	if st := pv.Stats(); st.Shards != 1 || len(st.ShardStats) != 0 {
		t.Fatalf("plain view: shards=%d shard_stats=%d, want 1 and 0", st.Shards, len(st.ShardStats))
	}
}

// TestColdStartRetryAfter exercises the cold-start fallback: a view
// whose apply-latency histogram is empty must still quote a
// queue-derived Retry-After, not a degenerate constant, and the
// estimate must scale with the configured queue depth.
func TestColdStartRetryAfter(t *testing.T) {
	reg := NewRegistry()
	// Large queue so depth × defaultApplyLatency clears the 1s floor.
	v, err := reg.Add(ViewConfig{Name: "cold", Dataset: "book", QueueDepth: 64})
	if err != nil {
		t.Fatalf("add: %v", err)
	}
	// Fill the limiter as a saturated cold burst would.
	for i := 0; i < 64; i++ {
		if !v.tryAcquire() {
			t.Fatalf("slot %d not acquired", i)
		}
	}
	defer func() {
		for i := 0; i < 64; i++ {
			v.release()
		}
	}()
	got := v.retryAfter()
	want := defaultApplyLatency * 64 // 3.2s
	if got < want-time.Second || got > want+time.Second {
		t.Fatalf("cold retry-after: got %v, want about %v", got, want)
	}
}
