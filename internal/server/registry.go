package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bookdb"
	"repro/internal/obs"
	"repro/internal/psd"
	"repro/internal/relational"
	"repro/internal/shard"
	"repro/internal/tpch"
	"repro/internal/ufilter"
)

// DefaultApplyQueueDepth bounds each view's apply concurrency limiter
// when the configuration does not choose one. Since the parallel write
// path, applies no longer queue behind one writer: every admitted
// request executes concurrently in its own MVCC transaction, so the
// depth is the number of applies allowed to be EXECUTING at once
// before the server starts shedding load with 429 — a concurrency
// limiter, not a wait queue.
const DefaultApplyQueueDepth = 16

// slowRingDepth is how many of the slowest recent traces each view
// retains for GET /views/{name}/slow.
const slowRingDepth = 32

// Config is the ufilterd configuration, loadable from a JSON file.
type Config struct {
	// Views seeds the registry at startup.
	Views []ViewConfig `json:"views"`
	// ApplyQueueDepth is the default per-view apply queue bound;
	// DefaultApplyQueueDepth when zero.
	ApplyQueueDepth int `json:"apply_queue_depth,omitempty"`
	// DataDir, when non-empty, makes every view durable: each gets a
	// write-ahead log under DataDir/<view-name>, recovered at startup.
	// Empty keeps the daemon fully in-memory (the default).
	DataDir string `json:"data_dir,omitempty"`
	// Shards is the default per-view shard count: views with Shards > 1
	// hash-partition their base tables across that many independent
	// storage shards (parallel commit latches and WAL fsyncs). Zero or
	// one keeps the single-database path.
	Shards int `json:"shards,omitempty"`
	// PageCacheBytes bounds each view's checkpoint-page buffer pool
	// (split across a view's shards); zero uses the engine default.
	// Only meaningful with DataDir set.
	PageCacheBytes int64 `json:"page_cache_bytes,omitempty"`
}

// ViewConfig describes one named view to host: a built-in dataset plus
// an optional custom view query over that dataset's schema.
type ViewConfig struct {
	// Name is the view's registry key, used in request paths.
	Name string `json:"name"`
	// Dataset selects the backing database: book, tpch or psd.
	Dataset string `json:"dataset"`
	// TPCHView selects the tpch view variant (vsuccess, vlinear, vbush,
	// vfail:<relation>); vsuccess when empty.
	TPCHView string `json:"tpch_view,omitempty"`
	// MB sizes the tpch dataset (nominal MB, default 1).
	MB int `json:"mb,omitempty"`
	// Proteins sizes the psd dataset (default 100).
	Proteins int `json:"proteins,omitempty"`
	// Query, when non-empty, replaces the dataset's built-in view query
	// (it must range over the dataset's schema).
	Query string `json:"query,omitempty"`
	// Strategy names the data-driven strategy: hybrid (default),
	// outside or internal.
	Strategy string `json:"strategy,omitempty"`
	// QueueDepth overrides the server-wide apply queue bound.
	QueueDepth int `json:"queue_depth,omitempty"`
	// Shards overrides the server-wide shard count for this view.
	Shards int `json:"shards,omitempty"`
}

// LoadConfig reads a JSON Config from a file.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("config %s: %w", path, err)
	}
	return &cfg, nil
}

// View is one hosted filter: a compiled ufilter.Filter over its own
// database, wrapped with an apply concurrency limiter and per-view
// traffic counters.
type View struct {
	Name     string
	Filter   *ufilter.Filter
	Dataset  string
	Strategy ufilter.Strategy

	// Recovery reports what WAL replay restored at startup; nil when the
	// registry runs in-memory (no DataDir) or the view is sharded
	// (ShardRecovery carries the per-shard reports instead).
	Recovery *relational.RecoveryInfo

	// ShardRecovery reports per-shard WAL replay for a durable sharded
	// view; nil otherwise.
	ShardRecovery *shard.Recovery

	// durable is true when the view's engine logs to disk (DataDir set),
	// sharded or not.
	durable bool

	// queue holds the admission slots for Apply: capacity is the bound
	// on applies executing concurrently (each in its own transaction);
	// a full limiter sheds load (429).
	queue chan struct{}

	// Per-endpoint end-to-end latency histograms (log-scaled buckets,
	// exported as Prometheus histogram families by /metrics). applyHist
	// also feeds the Retry-After p90 estimate under backpressure.
	checkHist      *obs.Histogram
	checkBatchHist *obs.Histogram
	applyHist      *obs.Histogram
	applyBatchHist *obs.Histogram

	// slow retains the slowest recent request traces, served at
	// GET /views/{name}/slow; the sequence counters drive the 1-in-N
	// span-trace sampling of single checks and applies (sampleTrace).
	slow          *obs.SlowRing
	checkTraceSeq atomic.Uint64
	applyTraceSeq atomic.Uint64

	checks          atomic.Int64
	checkErrors     atomic.Int64
	applies         atomic.Int64
	appliesAccepted atomic.Int64
	appliesRejected atomic.Int64
	appliesOverflow atomic.Int64
	applyBatches    atomic.Int64
	appliesConflict atomic.Int64 // applies answered 409 (retries exhausted)

	// Conflict-rate sampling for the Retry-After estimate: the engine's
	// cumulative conflict counter is sampled at shed time and the
	// per-second rate scales the backoff (conflictFactor).
	confMu   sync.Mutex
	confAt   time.Time
	confLast int64
	confRate float64

	// applyFn runs the full pipeline; defaults to Filter.ApplyContext
	// (the context carries the request's trace, when one is attached).
	// Tests substitute a blocking function to exercise backpressure
	// deterministically.
	applyFn func(context.Context, string) (*ufilter.Result, error)
	// applyBatchFn runs the group-commit batch pipeline; defaults to
	// Filter.ApplyBatch.
	applyBatchFn func([]string) []ufilter.BatchResult
}

// QueueCapacity returns the apply admission bound (the number of
// requests allowed to be running-or-waiting before load shedding).
func (v *View) QueueCapacity() int { return cap(v.queue) }

// QueueLen returns the number of admission slots currently held.
func (v *View) QueueLen() int { return len(v.queue) }

// tryAcquire claims an apply admission slot without blocking.
func (v *View) tryAcquire() bool {
	select {
	case v.queue <- struct{}{}:
		return true
	default:
		return false
	}
}

func (v *View) release() { <-v.queue }

// defaultApplyLatency seeds the Retry-After estimate before the
// apply-latency histogram has any samples: a freshly booted (or
// freshly registered) view that sheds on its very first burst has no
// observed p90 yet, so the estimate assumes each held slot costs this
// much. Deliberately pessimistic for a warm cache (real p90s are
// single-digit ms) — a cold shed means the pipeline is still compiling
// plans, which is exactly when clients should back off harder.
const defaultApplyLatency = 50 * time.Millisecond

// conflictRateSampleMin is the minimum spacing between conflict-rate
// samples; shed bursts between samples reuse the last rate.
const conflictRateSampleMin = 250 * time.Millisecond

// retryAfter estimates how long a shed request should wait before
// retrying from the limiter's live state: admitted applies run
// concurrently, so the expected drain time is the p90 apply latency
// scaled by how many slots are held per available lane (current depth
// × p90 ÷ capacity), rounded up to at least one second. The p90 comes
// from the apply-latency histogram rather than a running mean: under
// conflict retries apply latency is bimodal (fast no-conflict commits
// plus a slow backoff-and-retry tail), and the mean sits between the
// modes — below what a shed request will actually wait behind. A
// half-empty limiter still quotes a shorter retry than a full one.
//
// Two refinements on the raw formula: an empty histogram (cold start)
// falls back to queue-depth × defaultApplyLatency instead of a
// meaningless degenerate estimate, and the result is scaled by the
// recent write-conflict rate (conflictFactor) so backoff stretches
// when retries are churning the same contended rows.
func (v *View) retryAfter() time.Duration {
	depth := len(v.queue)
	if depth == 0 {
		depth = 1
	}
	lanes := cap(v.queue)
	if lanes == 0 {
		lanes = 1
	}
	var est time.Duration
	if s := v.applyHist.Snapshot(); s.Count == 0 {
		est = defaultApplyLatency * time.Duration(depth)
	} else {
		est = time.Duration(s.P90()) * time.Duration(depth) / time.Duration(lanes)
	}
	est = time.Duration(float64(est) * v.conflictFactor())
	if est < time.Second {
		return time.Second
	}
	return est.Round(time.Second)
}

// conflictFactor is the conflict-aware admission term: the engine's
// txn_conflicts_total counter is sampled (at most once per
// conflictRateSampleMin) and the per-second delta rate scales the
// Retry-After estimate — 1x when conflict-free, +1x per 10 conflicts/s,
// capped at 4x. Shed responses under conflict churn thus quote longer
// waits than sheds under clean overload, without a feedback loop: the
// factor reads one atomic counter, it never touches the apply path.
func (v *View) conflictFactor() float64 {
	cur := v.Filter.Exec.DB.Stats().Conflicts
	now := time.Now()
	v.confMu.Lock()
	defer v.confMu.Unlock()
	if v.confAt.IsZero() {
		v.confAt, v.confLast = now, cur
		return 1
	}
	if dt := now.Sub(v.confAt); dt >= conflictRateSampleMin {
		v.confRate = float64(cur-v.confLast) / dt.Seconds()
		v.confAt, v.confLast = now, cur
	}
	f := 1 + v.confRate/10
	if f > 4 {
		f = 4
	}
	return f
}

// OfferSlow submits a finished request trace to the view's slow ring.
func (v *View) OfferSlow(ts obs.TraceSummary) { v.slow.Offer(ts) }

// sampleTrace decides whether an untraced-by-request operation should
// record a span trace this time: true on the first call and every n-th
// after, so the slow ring sees fresh traces under sustained traffic
// while the fast path stays histogram-only.
func (v *View) sampleTrace(seq *atomic.Uint64, n uint64) bool { return seq.Add(1)%n == 1 }

// SlowTraces returns the slowest recent traces, slowest first.
func (v *View) SlowTraces() []obs.TraceSummary { return v.slow.Snapshot() }

// Check classifies one update through the schema-level steps and bumps
// the view's counters; a trace on the context records the stage spans.
func (v *View) Check(ctx context.Context, update string) (*ufilter.Result, error) {
	v.checks.Add(1)
	start := time.Now()
	res, err := v.Filter.CheckContext(ctx, update)
	v.checkHist.RecordDuration(time.Since(start))
	if err != nil {
		v.checkErrors.Add(1)
	}
	return res, err
}

// CheckBatch fans a batch across the filter's worker pool. The batch
// runs under one "execute" span — the filter-level fan-out does not
// thread per-item contexts, so the trace shows the batch as a unit.
func (v *View) CheckBatch(ctx context.Context, updates []string, workers int) []ufilter.BatchResult {
	v.checks.Add(int64(len(updates)))
	endRun := obs.FromContext(ctx).StartSpan("execute")
	start := time.Now()
	out := v.Filter.CheckBatch(updates, workers)
	endRun()
	v.checkBatchHist.RecordDuration(time.Since(start))
	for _, br := range out {
		if br.Err != nil {
			v.checkErrors.Add(1)
		}
	}
	return out
}

// CheckBatchData pins one database snapshot for the whole batch and
// runs the snapshot-isolated data check (Steps 1+2 plus read-only
// Step 3 probes) on every update: the batch observes a single
// point-in-time state and never waits behind an in-flight apply.
func (v *View) CheckBatchData(ctx context.Context, updates []string, workers int) []ufilter.BatchResult {
	v.checks.Add(int64(len(updates)))
	endRun := obs.FromContext(ctx).StartSpan("execute")
	start := time.Now()
	out := v.Filter.CheckBatchData(updates, workers)
	endRun()
	v.checkBatchHist.RecordDuration(time.Since(start))
	for _, br := range out {
		if br.Err != nil {
			v.checkErrors.Add(1)
		}
	}
	return out
}

// Apply admits one full-pipeline update if a concurrency slot is
// free; admitted applies execute in parallel, each in its own
// transaction. ok is false when the limiter is saturated; the caller
// should shed the request with the returned retry hint. An err
// wrapping relational.ErrWriteConflict means the apply exhausted its
// conflict retries (the handler answers 409).
func (v *View) Apply(ctx context.Context, update string) (res *ufilter.Result, retry time.Duration, ok bool, err error) {
	endAdmit := obs.FromContext(ctx).StartSpan("admission")
	admitted := v.tryAcquire()
	endAdmit()
	if !admitted {
		v.appliesOverflow.Add(1)
		return nil, v.retryAfter(), false, nil
	}
	defer v.release()
	start := time.Now()
	res, err = v.applyFn(ctx, update)
	v.applyHist.RecordDuration(time.Since(start))
	v.applies.Add(1)
	switch {
	case err != nil:
		if errors.Is(err, relational.ErrWriteConflict) {
			v.appliesConflict.Add(1)
		}
	case res.Accepted:
		v.appliesAccepted.Add(1)
	default:
		v.appliesRejected.Add(1)
	}
	return res, 0, true, err
}

// ApplyBatch admits a whole batch under ONE concurrency slot — the
// batch is one transaction-sized unit of work — and runs it through
// the filter's group-commit path (one shared transaction, one redo
// flush for all accepted updates; conflicted items retry in follow-up
// rounds). ok is false when the limiter is saturated. The per-update
// wall time feeds the same drain-rate estimate single applies use.
func (v *View) ApplyBatch(ctx context.Context, updates []string) (results []ufilter.BatchResult, retry time.Duration, ok bool) {
	endAdmit := obs.FromContext(ctx).StartSpan("admission")
	admitted := v.tryAcquire()
	endAdmit()
	if !admitted {
		v.appliesOverflow.Add(1)
		return nil, v.retryAfter(), false
	}
	defer v.release()
	endRun := obs.FromContext(ctx).StartSpan("execute")
	start := time.Now()
	results = v.applyBatchFn(updates)
	endRun()
	v.applyBatchHist.RecordDuration(time.Since(start))
	v.applies.Add(int64(len(updates)))
	v.applyBatches.Add(1)
	for _, br := range results {
		switch {
		case br.Err != nil:
		case br.Result != nil && br.Result.Accepted:
			v.appliesAccepted.Add(1)
		default:
			v.appliesRejected.Add(1)
		}
	}
	return results, 0, true
}

// ViewStats is the wire form of GET /views/{name}/stats.
type ViewStats struct {
	View        string     `json:"view"`
	Dataset     string     `json:"dataset"`
	Strategy    string     `json:"strategy"`
	Checks      int64      `json:"checks"`
	CheckErrors int64      `json:"check_errors"`
	Applies     ApplyStats `json:"applies"`
	Queue       QueueStats `json:"queue"`
	// QueueDepth is the number of apply requests currently
	// running-or-waiting — the live depth Retry-After estimates drain
	// from (the queue's capacity is Queue.Depth).
	QueueDepth   int           `json:"queue_depth"`
	Filter       ufilter.Stats `json:"filter"`
	CacheHitRate float64       `json:"cache_hit_rate"`
	// TxnConflictsTotal / TxnRetriesTotal / TxnsActive surface the
	// parallel write path at the top level: write-write conflicts the
	// engine detected, apply attempts re-run after a conflict, and
	// transactions currently open against the view's database.
	TxnConflictsTotal int64 `json:"txn_conflicts_total"`
	TxnRetriesTotal   int64 `json:"txn_retries_total"`
	TxnsActive        int64 `json:"txns_active"`
	// CheckLatency / ApplyLatency summarize the per-endpoint end-to-end
	// latency histograms (quantiles estimated from the log-scaled
	// buckets; the full distributions are on /metrics).
	CheckLatency LatencyStats `json:"check_latency"`
	ApplyLatency LatencyStats `json:"apply_latency"`
	// RowsTotal is the database size counted through a snapshot pinned
	// for this stats request, so the number is a coherent point-in-time
	// count even while an apply is mutating tables.
	RowsTotal int `json:"rows_total"`
	// Shards is the view's storage shard count (1 = unsharded).
	Shards int `json:"shards"`
	// ShardStats carries the per-shard statistics rollups for sharded
	// views (omitted when Shards is 1).
	ShardStats []relational.ShardStat `json:"shard_stats,omitempty"`
	// Versions describes the MVCC version store: chain depths, pinned
	// snapshots and reclaim progress.
	Versions relational.VersionStats `json:"versions"`
}

// ApplyStats breaks down the full-pipeline traffic.
type ApplyStats struct {
	Total    int64 `json:"total"`
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
	// Batches counts group-commit apply-batch calls (each covering
	// many updates under one transaction and one redo flush).
	Batches int64 `json:"batches"`
	// Conflicted counts applies answered 409 Conflict (write-write
	// conflict retries exhausted).
	Conflicted int64 `json:"conflicted"`
}

// QueueStats reports the admission queue's shape and shed count.
type QueueStats struct {
	Depth    int   `json:"depth"`
	InFlight int   `json:"in_flight"`
	Shed     int64 `json:"shed"`
}

// LatencyStats is the wire summary of one latency histogram.
type LatencyStats struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
}

func latencyStats(s obs.Snapshot) LatencyStats {
	return LatencyStats{
		Count: s.Count,
		P50Ms: s.P50() / 1e6,
		P90Ms: s.P90() / 1e6,
		P99Ms: s.P99() / 1e6,
	}
}

// Stats snapshots the view's counters, safe under concurrent traffic.
// Row counts are read through a pinned snapshot, never from the live
// tables an apply may be mutating.
func (v *View) Stats() ViewStats {
	fs := v.Filter.Stats()
	eng := v.Filter.Exec.DB
	snap := eng.OpenSnapshot()
	versions := snap.VersionStats() // one walk: shape + pinned row count
	snap.Close()
	var shardStats []relational.ShardStat
	if eng.ShardCount() > 1 {
		shardStats = eng.ShardStats()
	}
	return ViewStats{
		View:        v.Name,
		Dataset:     v.Dataset,
		Strategy:    v.Strategy.String(),
		Checks:      v.checks.Load(),
		CheckErrors: v.checkErrors.Load(),
		Applies: ApplyStats{
			Total:      v.applies.Load(),
			Accepted:   v.appliesAccepted.Load(),
			Rejected:   v.appliesRejected.Load(),
			Batches:    v.applyBatches.Load(),
			Conflicted: v.appliesConflict.Load(),
		},
		TxnConflictsTotal: fs.Database.Conflicts,
		TxnRetriesTotal:   fs.Write.Retries,
		TxnsActive:        fs.Database.TxnsActive,
		Queue: QueueStats{
			Depth:    cap(v.queue),
			InFlight: len(v.queue),
			Shed:     v.appliesOverflow.Load(),
		},
		QueueDepth:   len(v.queue),
		Filter:       fs,
		CacheHitRate: fs.Cache.HitRate(),
		CheckLatency: latencyStats(v.checkHist.Snapshot()),
		ApplyLatency: latencyStats(v.applyHist.Snapshot()),
		RowsTotal:    versions.VisibleRows,
		Shards:       eng.ShardCount(),
		ShardStats:   shardStats,
		Versions:     versions,
	}
}

// Registry is the concurrency-safe set of hosted views.
type Registry struct {
	// DefaultQueueDepth is the apply admission bound for views whose
	// config does not set one; DefaultApplyQueueDepth when zero. Set it
	// before serving traffic (it is read without synchronization).
	DefaultQueueDepth int

	// DataDir, when non-empty, gives every added view a durable
	// write-ahead log under DataDir/<view-name>: Add recovers whatever a
	// previous process left there (seeding the dataset only on first
	// boot) and subsequent applies survive kill -9. Set it before the
	// first Add (read without synchronization).
	DataDir string

	// DefaultShards is the shard count for views whose config does not
	// set one; <= 1 keeps the single-database path. Set it before the
	// first Add (read without synchronization).
	DefaultShards int

	// WALOptions tunes the per-view logs when DataDir is set; the zero
	// value uses production defaults.
	WALOptions relational.WALOptions

	mu    sync.RWMutex
	views map[string]*View
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{views: make(map[string]*View)}
}

// validViewName reports whether a name can round-trip through the
// /views/{name}/... route patterns (one path segment, no escaping).
func validViewName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

// Add compiles and registers a view from its configuration. The name
// must be a single path segment ([A-Za-z0-9._-]+) and unused.
func (r *Registry) Add(vc ViewConfig) (*View, error) {
	name := strings.TrimSpace(vc.Name)
	if !validViewName(name) {
		return nil, fmt.Errorf("view name %q must be non-empty and contain only letters, digits, '.', '_' or '-'", name)
	}
	// Cheap pre-check before the expensive dataset build; the
	// authoritative check re-runs under the write lock below.
	r.mu.RLock()
	_, exists := r.views[name]
	r.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("view %q already exists", name)
	}
	strategy, err := ufilter.ParseStrategy(vc.Strategy)
	if err != nil {
		return nil, err
	}
	db, builtinQuery, err := BuildDataset(vc)
	if err != nil {
		return nil, err
	}
	shards := vc.Shards
	if shards <= 0 {
		shards = r.DefaultShards
	}
	if shards <= 1 {
		shards = 1
	}
	var (
		eng           relational.Engine = db
		recovery      *relational.RecoveryInfo
		shardRecovery *shard.Recovery
	)
	switch {
	case shards > 1:
		// Sharded view: the base tables hash-partition across
		// independent storage shards; in durable mode each shard logs
		// under DataDir/<view-name>/shard-<i> plus a coordinator log for
		// cross-shard commits.
		opts := shard.Options{WAL: r.WALOptions}
		if r.DataDir != "" {
			opts.Dir = filepath.Join(r.DataDir, name)
		}
		sdb, srec, err := shard.New(db, shards, opts)
		if err != nil {
			return nil, fmt.Errorf("view %s: %w", name, err)
		}
		eng = sdb
		if r.DataDir != "" {
			shardRecovery = srec
		}
	case r.DataDir != "":
		// Durable mode: recovery replaces the freshly seeded dataset with
		// whatever previous runs committed (first boot checkpoints the
		// seed, so later boots replay on top of it, not instead of it).
		recovery, err = db.OpenWAL(filepath.Join(r.DataDir, name), r.WALOptions)
		if err != nil {
			return nil, fmt.Errorf("view %s: %w", name, err)
		}
	}
	query := vc.Query
	if strings.TrimSpace(query) == "" {
		query = builtinQuery
	}
	f, err := ufilter.New(query, eng)
	if err != nil {
		return nil, fmt.Errorf("view %s: %w", name, err)
	}
	f.Strategy = strategy
	depth := vc.QueueDepth
	if depth <= 0 {
		depth = r.DefaultQueueDepth
	}
	if depth <= 0 {
		depth = DefaultApplyQueueDepth
	}
	v := &View{
		Name:           name,
		Filter:         f,
		Dataset:        strings.ToLower(vc.Dataset),
		Strategy:       strategy,
		Recovery:       recovery,
		ShardRecovery:  shardRecovery,
		durable:        r.DataDir != "",
		queue:          make(chan struct{}, depth),
		checkHist:      obs.NewDurationHistogram(),
		checkBatchHist: obs.NewDurationHistogram(),
		applyHist:      obs.NewDurationHistogram(),
		applyBatchHist: obs.NewDurationHistogram(),
		slow:           obs.NewSlowRing(slowRingDepth),
	}
	v.applyFn = f.ApplyContext
	v.applyBatchFn = f.ApplyBatch

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.views[name]; exists {
		return nil, fmt.Errorf("view %q already exists", name)
	}
	r.views[name] = v
	return v, nil
}

// Get fetches a view by name.
func (r *Registry) Get(name string) (*View, bool) {
	r.mu.RLock()
	v, ok := r.views[name]
	r.mu.RUnlock()
	return v, ok
}

// Names lists the registered view names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.views))
	for n := range r.views {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// StartReclaimers runs a background MVCC version reclaimer on every
// currently registered view's database and returns a stop function
// (idempotent) that halts them all. The daemon calls it once at boot;
// commit-piggybacked reclaim still covers views added later.
func (r *Registry) StartReclaimers(interval time.Duration) (stop func()) {
	var stops []func()
	for _, v := range r.Views() {
		stops = append(stops, v.Filter.Exec.DB.StartReclaimer(interval))
	}
	return func() {
		for _, s := range stops {
			s()
		}
	}
}

// StartCheckpointers runs a background WAL checkpointer on every
// currently registered durable view's database and returns a stop
// function (idempotent). No-op goroutine-free for in-memory views.
func (r *Registry) StartCheckpointers(interval time.Duration) (stop func()) {
	var stops []func()
	for _, v := range r.Views() {
		if v.durable {
			stops = append(stops, v.Filter.Exec.DB.StartCheckpointer(interval))
		}
	}
	return func() {
		for _, s := range stops {
			s()
		}
	}
}

// CloseWALs seals every durable view's write-ahead log for shutdown
// (final fsync; later commits fail, reads keep serving). The first
// error is returned, but every log is closed regardless.
func (r *Registry) CloseWALs() error {
	var firstErr error
	for _, v := range r.Views() {
		if err := v.Filter.Exec.DB.CloseWAL(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Views lists the registered views in name order.
func (r *Registry) Views() []*View {
	r.mu.RLock()
	out := make([]*View, 0, len(r.views))
	for _, v := range r.views {
		out = append(out, v)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// BuildDataset instantiates the built-in dataset a view ranges over,
// returning the database and the dataset's default view query. It is
// the one implementation of dataset/variant dispatch, shared by the
// registry and the ufilter CLI.
func BuildDataset(vc ViewConfig) (*relational.Database, string, error) {
	switch strings.ToLower(vc.Dataset) {
	case "book", "":
		db, err := bookdb.NewDatabase(relational.DeleteCascade)
		return db, bookdb.ViewQuery, err
	case "psd":
		proteins := vc.Proteins
		if proteins <= 0 {
			proteins = 100
		}
		db, err := psd.NewDatabase(proteins)
		return db, psd.ViewQuery, err
	case "tpch":
		mb := vc.MB
		if mb <= 0 {
			mb = 1
		}
		db, err := tpch.NewDatabaseMB(mb)
		if err != nil {
			return nil, "", err
		}
		q := tpch.VsuccessQuery
		viewName := vc.TPCHView
		switch {
		case viewName == "" || strings.EqualFold(viewName, "vsuccess"):
		case strings.EqualFold(viewName, "vlinear"):
			q = tpch.VlinearQuery
		case strings.EqualFold(viewName, "vbush"):
			q = tpch.VbushQuery
		case strings.HasPrefix(strings.ToLower(viewName), "vfail:"):
			q = tpch.VfailQuery(strings.ToLower(viewName[len("vfail:"):]))
		default:
			return nil, "", fmt.Errorf("unknown tpch view %q", viewName)
		}
		return db, q, nil
	default:
		return nil, "", fmt.Errorf("unknown dataset %q (want book, tpch or psd)", vc.Dataset)
	}
}
