package experiments

import (
	"fmt"
	"os"
	"time"

	"repro/internal/bookdb"
	"repro/internal/relational"
	"repro/internal/ufilter"
)

// WALBench records the durability-cost measurement the repo's CI tracks
// (BENCH_wal.json): full-pipeline apply throughput with the in-memory
// redo buffer vs a real fsync-per-group write-ahead log, at 1 and 8
// writers on the conflict-free keyspace. The single-writer point shows
// the worst case (every commit pays a solo fsync); the 8-writer point
// shows group commit amortizing the fsync across concurrent
// transactions — TxnsPerFsync is the coalescing factor, and the
// durable/in-memory ratio should recover toward 1 as it grows. A final
// pass closes the log and times a cold recovery of everything written.
type WALBench struct {
	// OpsPerPoint is the number of applies measured per series point.
	OpsPerPoint int `json:"ops_per_point"`
	// MaxProcs records the parallelism available to the run.
	MaxProcs int        `json:"max_procs"`
	Points   []WALPoint `json:"points"`
	// RecoveryNs is the cold OpenWAL time over everything the 8-writer
	// durable run left behind (checkpoint + live segments).
	RecoveryNs int64 `json:"recovery_ns"`
	// RecoveryReplayedTxns/RecoveryCheckpointRows split what that
	// recovery restored between segment replay and the checkpoint image.
	RecoveryReplayedTxns   int64 `json:"recovery_replayed_txns"`
	RecoveryCheckpointRows int64 `json:"recovery_checkpoint_rows"`
}

// WALPoint is one writer-count measurement of the durability tax.
type WALPoint struct {
	Writers int `json:"writers"`

	MemNsOp      int64   `json:"mem_ns_op"`
	MemOpsPerSec float64 `json:"mem_ops_per_sec"`

	WALNsOp      int64   `json:"wal_ns_op"`
	WALOpsPerSec float64 `json:"wal_ops_per_sec"`

	// DurabilityOverhead is in-memory throughput over durable
	// throughput (>= 1; smaller is better).
	DurabilityOverhead float64 `json:"durability_overhead"`

	// Fsyncs/GroupedTxns report flush coalescing for the durable run:
	// TxnsPerFsync = GroupedTxns/Fsyncs > 1 means concurrent commits
	// actually shared fsyncs.
	Fsyncs       int64   `json:"fsyncs"`
	GroupCommits int64   `json:"group_commits"`
	GroupedTxns  int64   `json:"grouped_txns"`
	TxnsPerFsync float64 `json:"txns_per_fsync"`
	WALBytes     int64   `json:"wal_bytes"`
}

// newWALBenchFilter builds the book pipeline, optionally opening a
// durable WAL under dir before any traffic.
func newWALBenchFilter(dir string) (*ufilter.Filter, *relational.Database, error) {
	db, err := bookdb.NewDatabase(relational.DeleteCascade)
	if err != nil {
		return nil, nil, err
	}
	if dir != "" {
		if _, err := db.OpenWAL(dir, relational.WALOptions{}); err != nil {
			return nil, nil, err
		}
	}
	f, err := ufilter.New(bookdb.ViewQuery, db)
	if err != nil {
		return nil, nil, err
	}
	return f, db, nil
}

// RunWALBench measures the durable-WAL tax against the in-memory
// baseline and returns the table BENCH_wal.json records.
func RunWALBench(iters int, maxProcs int) (*WALBench, error) {
	if iters <= 0 {
		iters = 1000
	}
	out := &WALBench{OpsPerPoint: iters, MaxProcs: maxProcs}
	root, err := os.MkdirTemp("", "walbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	var lastDir string
	for _, writers := range []int{1, 8} {
		pt := WALPoint{Writers: writers}
		ops := iters - iters%writers // divide evenly

		// Baseline: the in-memory redo buffer (no durable log).
		f, _, err := newWALBenchFilter("")
		if err != nil {
			return nil, err
		}
		elapsed, accepted, _, err := runWriters(f, writers, ops,
			func(w, i int) string { return writeBenchInsert(w, i) })
		if err != nil {
			return nil, err
		}
		if accepted != int64(ops) {
			return nil, fmt.Errorf("in-memory series accepted %d/%d", accepted, ops)
		}
		pt.MemNsOp = elapsed.Nanoseconds() / int64(ops)
		pt.MemOpsPerSec = float64(ops) / elapsed.Seconds()

		// Durable: same workload, every commit group fsyncs before
		// acknowledging.
		dir := fmt.Sprintf("%s/w%d", root, writers)
		f, db, err := newWALBenchFilter(dir)
		if err != nil {
			return nil, err
		}
		before := db.Stats()
		elapsed, accepted, _, err = runWriters(f, writers, ops,
			func(w, i int) string { return writeBenchInsert(w, i) })
		if err != nil {
			return nil, err
		}
		if accepted != int64(ops) {
			return nil, fmt.Errorf("durable series accepted %d/%d", accepted, ops)
		}
		pt.WALNsOp = elapsed.Nanoseconds() / int64(ops)
		pt.WALOpsPerSec = float64(ops) / elapsed.Seconds()
		if pt.WALOpsPerSec > 0 {
			pt.DurabilityOverhead = pt.MemOpsPerSec / pt.WALOpsPerSec
		}
		st := db.Stats()
		ws := f.WriteStats()
		pt.Fsyncs = st.Fsyncs - before.Fsyncs
		pt.GroupCommits = ws.GroupCommits
		pt.GroupedTxns = ws.GroupedTxns
		if pt.Fsyncs > 0 {
			pt.TxnsPerFsync = float64(pt.GroupedTxns) / float64(pt.Fsyncs)
		}
		pt.WALBytes = st.WALBytes
		if err := db.CloseWAL(); err != nil {
			return nil, err
		}
		lastDir = dir
		out.Points = append(out.Points, pt)
	}

	// Cold recovery over the 8-writer run's directory.
	db, err := bookdb.NewDatabase(relational.DeleteCascade)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	info, err := db.OpenWAL(lastDir, relational.WALOptions{})
	if err != nil {
		return nil, err
	}
	out.RecoveryNs = time.Since(start).Nanoseconds()
	out.RecoveryReplayedTxns = int64(info.ReplayedTxns)
	out.RecoveryCheckpointRows = int64(info.CheckpointRows)
	return out, db.CloseWAL()
}
