package experiments

import (
	"fmt"
	"time"

	"repro/internal/bookdb"
	"repro/internal/relational"
	"repro/internal/ufilter"
)

// PlanBench records the compile-once/execute-many measurement the
// repo's CI tracks (BENCH_plan.json): the same bound-literal workload
// — structurally identical updates differing only in predicate
// literals — run through the uncached pipeline, the plan-cached
// Filter API, and the prepared UpdatePlan fast path. The speedup
// columns are the perf trajectory of the internal/plan layer.
type PlanBench struct {
	Iterations int `json:"iterations"`

	// Schema-level Check of one template with a fresh literal each
	// iteration.
	CheckUncachedNsOp int64   `json:"check_uncached_ns_op"`
	CheckCachedNsOp   int64   `json:"check_cached_ns_op"`
	CheckPerSec       float64 `json:"check_cached_per_sec"`
	CheckSpeedup      float64 `json:"check_speedup"`

	// Full Apply of one template (leaf replace) with the literal
	// cycling over existing rows.
	ApplyUncachedNsOp int64   `json:"apply_uncached_ns_op"`
	ApplyCachedNsOp   int64   `json:"apply_cached_ns_op"`
	ApplyPlanNsOp     int64   `json:"apply_plan_ns_op"`
	ApplyPlanPerSec   float64 `json:"apply_plan_per_sec"`
	// ApplySpeedup is prepared-plan Execute vs the uncached Apply;
	// ApplyCachedSpeedup is the plan-cache Filter.Apply vs the same.
	ApplySpeedup       float64 `json:"apply_speedup"`
	ApplyCachedSpeedup float64 `json:"apply_cached_speedup"`
}

// checkTemplate yields a U12-shaped delete whose title literal varies
// per iteration: every text is distinct, so caching wins only through
// the literal-stripped template tier.
func checkTemplate(i int) string {
	return fmt.Sprintf(`
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Title %d"
UPDATE $book { DELETE $book/review }`, i)
}

// applyBooks are the two books that satisfy the view's predicates, so
// every bound tuple probes successfully and the translated UPDATE
// runs.
var applyBooks = [2][2]string{
	{"98001", "TCP/IP Illustrated"},
	{"98003", "Data on the Web"},
}

// applyTemplate yields a leaf replace with two bound literals (key and
// title — the production shape: templates carry a couple of selective
// predicates) cycling over rows that exist in the view, so every apply
// runs the probe and the translated UPDATE.
func applyTemplate(i int) string {
	b := applyBooks[i%len(applyBooks)]
	return fmt.Sprintf(`
FOR $book IN document("BookView.xml")/book
WHERE $book/bookid/text() = %q AND $book/title/text() = %q
UPDATE $book { REPLACE $book/price WITH <price>42.50</price> }`, b[0], b[1])
}

// RunPlanBench measures the three tiers over the book dataset and
// returns the table BENCH_plan.json records.
func RunPlanBench(iters int) (*PlanBench, error) {
	if iters <= 0 {
		iters = 1000
	}
	out := &PlanBench{Iterations: iters}

	newFilter := func(disableCache bool) (*ufilter.Filter, error) {
		db, err := bookdb.NewDatabase(relational.DeleteCascade)
		if err != nil {
			return nil, err
		}
		f, err := ufilter.New(bookdb.ViewQuery, db)
		if err != nil {
			return nil, err
		}
		f.DisableCache = disableCache
		return f, nil
	}

	// Check, uncached: full parse/resolve/STAR per call.
	f, err := newFilter(true)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := f.Check(checkTemplate(i)); err != nil {
			return nil, err
		}
	}
	out.CheckUncachedNsOp = time.Since(start).Nanoseconds() / int64(iters)

	// Check, plan-cached: parse + template-tier verdict.
	if f, err = newFilter(false); err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := f.Check(checkTemplate(i)); err != nil {
			return nil, err
		}
	}
	out.CheckCachedNsOp = time.Since(start).Nanoseconds() / int64(iters)

	// Apply, uncached: full pipeline per call.
	if f, err = newFilter(true); err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		res, err := f.Apply(applyTemplate(i))
		if err != nil {
			return nil, err
		}
		if !res.Accepted {
			return nil, fmt.Errorf("plan bench apply rejected: %s", res.Reason)
		}
	}
	out.ApplyUncachedNsOp = time.Since(start).Nanoseconds() / int64(iters)

	// Apply, plan-cached Filter API: parse + cached verdict + cached
	// plan execution.
	if f, err = newFilter(false); err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		res, err := f.Apply(applyTemplate(i))
		if err != nil {
			return nil, err
		}
		if !res.Accepted {
			return nil, fmt.Errorf("plan bench cached apply rejected: %s", res.Reason)
		}
	}
	out.ApplyCachedNsOp = time.Since(start).Nanoseconds() / int64(iters)

	// Apply, prepared plan: Compile once, Execute many with bound args.
	if f, err = newFilter(false); err != nil {
		return nil, err
	}
	p, err := f.Prepare(applyTemplate(0))
	if err != nil {
		return nil, err
	}
	argTuples := [2][]relational.Value{
		{relational.String_(applyBooks[0][0]), relational.String_(applyBooks[0][1])},
		{relational.String_(applyBooks[1][0]), relational.String_(applyBooks[1][1])},
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		res, err := f.Execute(p, argTuples[i%len(argTuples)])
		if err != nil {
			return nil, err
		}
		if !res.Accepted {
			return nil, fmt.Errorf("plan bench execute rejected: %s", res.Reason)
		}
	}
	out.ApplyPlanNsOp = time.Since(start).Nanoseconds() / int64(iters)

	if out.CheckCachedNsOp > 0 {
		out.CheckSpeedup = float64(out.CheckUncachedNsOp) / float64(out.CheckCachedNsOp)
		out.CheckPerSec = 1e9 / float64(out.CheckCachedNsOp)
	}
	if out.ApplyPlanNsOp > 0 {
		out.ApplySpeedup = float64(out.ApplyUncachedNsOp) / float64(out.ApplyPlanNsOp)
		out.ApplyPlanPerSec = 1e9 / float64(out.ApplyPlanNsOp)
	}
	if out.ApplyCachedNsOp > 0 {
		out.ApplyCachedSpeedup = float64(out.ApplyUncachedNsOp) / float64(out.ApplyCachedNsOp)
	}
	return out, nil
}
