package experiments

import "testing"

func TestObsBenchShape(t *testing.T) {
	ob, err := RunObsBench(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(ob.Points) != 3 {
		t.Fatalf("points = %d, want 3 (check/apply/mixed)", len(ob.Points))
	}
	for i, want := range []string{"check", "apply", "mixed"} {
		p := ob.Points[i]
		if p.Workload != want {
			t.Fatalf("point %d workload = %q, want %q", i, p.Workload, want)
		}
		if p.BaseOpsPerSec <= 0 || p.ObsOpsPerSec <= 0 {
			t.Fatalf("%s point has zero throughput: %+v", p.Workload, p)
		}
	}
}
