package experiments

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/relational"
)

// PageBench records the paged-checkpoint-storage measurement the repo's
// CI tracks (BENCH_page.json), in three parts:
//
//   - Pauses: Checkpoint() wall time against a 1x and a 10x database
//     with the SAME dirty set. Checkpoints write only copy-on-write
//     pages for dirty rows, so the pause ratio must stay near 1 (CI
//     gates it at <= 2), not scale with the database.
//   - Recovery: cold restart split into the lazy OpenWAL (map the page
//     directory into value-less stubs, no page reads) and the first
//     full scan that faults every page in — the former is the restart
//     latency the daemon actually pays before serving.
//   - Pool: read throughput and hit rate with the buffer pool budgeted
//     at 100%, 50% and 10% of the paged dataset, showing the engine
//     keeps working (with bounded memory) when data exceeds RAM.
type PageBench struct {
	// OpsPerPoint is the number of point reads measured per pool
	// budget; Rows is the paged dataset size those reads run against.
	OpsPerPoint int `json:"ops_per_point"`
	Rows        int `json:"rows"`

	Pauses []CheckpointPausePoint `json:"checkpoint_pauses"`
	// PauseRatio is pause(10x rows)/pause(1x rows) at the fixed dirty
	// set — near 1 means the pause is O(dirty-pages), not O(database).
	PauseRatio float64 `json:"checkpoint_pause_ratio"`

	Recovery PageRecovery `json:"recovery"`

	Pool []PoolPoint `json:"pool"`
}

// PageRecovery is the cold-restart measurement over a paged base image.
type PageRecovery struct {
	Rows int `json:"rows"`
	// LazyOpenNs is OpenWAL alone: directory mapped, zero pages read.
	LazyOpenNs int64 `json:"lazy_open_ns"`
	// FirstScanNs is the first full scan after the lazy open, which
	// faults every page through the pool.
	FirstScanNs int64 `json:"first_scan_ns"`
	// ColdNs is LazyOpenNs + FirstScanNs: time to a fully materialized
	// working set, the pre-paging recovery cost for comparison.
	ColdNs int64 `json:"cold_ns"`
	// PagesTotal is the base image's size in pages.
	PagesTotal int64 `json:"pages_total"`
	// FaultedPages is how many pages the first scan loaded.
	FaultedPages int64 `json:"faulted_pages"`
}

// PoolPoint is one buffer-pool budget measurement.
type PoolPoint struct {
	// BudgetPct is the pool budget as a percent of the paged dataset.
	BudgetPct   int   `json:"budget_pct"`
	BudgetBytes int64 `json:"budget_bytes"`

	NsOp        int64   `json:"ns_op"`
	ReadsPerSec float64 `json:"reads_per_sec"`

	// HitRate is pool hits over total pool reads for the measured
	// point-read pass (the warmup pass is excluded).
	HitRate   float64 `json:"hit_rate"`
	Evictions int64   `json:"evictions"`
}

// pageBenchVal pads row payloads so the dataset spans a realistic
// number of 4KiB pages instead of collapsing into a handful.
var pageBenchVal = strings.Repeat("x", 96)

func pageBulkInsert(db *relational.Database, base int64, rows int) error {
	for i := 0; i < rows; i++ {
		if _, err := db.Insert("bench", map[string]relational.Value{
			"id":  relational.Int_(base + int64(i)),
			"val": relational.String_(pageBenchVal),
		}); err != nil {
			return err
		}
	}
	return nil
}

// RunPageBench measures checkpoint pause vs database size, lazy vs cold
// recovery, and read throughput vs pool budget, returning the table
// BENCH_page.json records.
func RunPageBench(iters int) (*PageBench, error) {
	if iters <= 0 {
		iters = 2000
	}
	const rows = 4_000
	out := &PageBench{OpsPerPoint: iters, Rows: rows}
	root, err := os.MkdirTemp("", "pagebench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	// Part 1: checkpoint pause at 1x and 10x database size with the
	// same fixed dirty set. Each run: bulk-load, checkpoint (absorbs
	// the load), dirty exactly dirtyRows rows, time the measured pass.
	const baseRows, dirtyRows = 2_000, 100
	for _, n := range []int{baseRows, 10 * baseRows} {
		dir := fmt.Sprintf("%s/ckpt-%d", root, n)
		db, err := openCommitBenchDB(dir, relational.WALOptions{})
		if err != nil {
			return nil, err
		}
		if err := pageBulkInsert(db, 0, n); err != nil {
			return nil, err
		}
		if err := db.Checkpoint(); err != nil {
			return nil, err
		}
		if err := pageBulkInsert(db, 50_000_000, dirtyRows); err != nil {
			return nil, err
		}
		start := time.Now()
		if err := db.Checkpoint(); err != nil {
			return nil, err
		}
		pause := time.Since(start).Nanoseconds()
		if err := db.CloseWAL(); err != nil {
			return nil, err
		}
		out.Pauses = append(out.Pauses, CheckpointPausePoint{
			Rows: n, DirtyRows: dirtyRows, PauseNs: pause,
		})
	}
	if p0 := out.Pauses[0].PauseNs; p0 > 0 {
		out.PauseRatio = float64(out.Pauses[1].PauseNs) / float64(p0)
	}

	// Part 2 setup: build the paged dataset every later part reopens.
	dataDir := root + "/data"
	db, err := openCommitBenchDB(dataDir, relational.WALOptions{})
	if err != nil {
		return nil, err
	}
	if err := pageBulkInsert(db, 0, rows); err != nil {
		return nil, err
	}
	if err := db.Checkpoint(); err != nil {
		return nil, err
	}
	datasetBytes := db.Stats().PagesTotal * 4096
	if err := db.CloseWAL(); err != nil {
		return nil, err
	}

	// Part 2: lazy recovery vs cold (fully materialized) restart.
	schema, err := commitBenchSchema()
	if err != nil {
		return nil, err
	}
	rdb := relational.NewDatabase(schema)
	start := time.Now()
	if _, err := rdb.OpenWAL(dataDir, relational.WALOptions{}); err != nil {
		return nil, err
	}
	lazyNs := time.Since(start).Nanoseconds()
	start = time.Now()
	n := 0
	if err := rdb.Scan("bench", func(*relational.Row) bool { n++; return true }); err != nil {
		return nil, err
	}
	scanNs := time.Since(start).Nanoseconds()
	if n != rows {
		return nil, fmt.Errorf("page bench: first scan saw %d rows, want %d", n, rows)
	}
	st := rdb.Stats()
	out.Recovery = PageRecovery{
		Rows:         rows,
		LazyOpenNs:   lazyNs,
		FirstScanNs:  scanNs,
		ColdNs:       lazyNs + scanNs,
		PagesTotal:   st.PagesTotal,
		FaultedPages: st.PagecacheMisses,
	}
	if err := rdb.CloseWAL(); err != nil {
		return nil, err
	}

	// Part 3: point-read throughput vs pool budget. Each budget reopens
	// the dataset (all rows demoted to stubs), warms with one full
	// pass, then measures iters point reads striding the id space.
	for _, pct := range []int{100, 50, 10} {
		budget := datasetBytes * int64(pct) / 100
		pdb := relational.NewDatabase(schema)
		if _, err := pdb.OpenWAL(dataDir, relational.WALOptions{PageCacheBytes: budget}); err != nil {
			return nil, err
		}
		ids := make([]relational.RowID, 0, rows)
		if err := pdb.Scan("bench", func(r *relational.Row) bool {
			ids = append(ids, r.ID)
			return true
		}); err != nil {
			return nil, err
		}
		pre := pdb.Stats()
		start := time.Now()
		for i := 0; i < iters; i++ {
			// A large prime stride touches the whole id space instead of
			// rewalking one resident page.
			if _, err := pdb.Get("bench", ids[(i*2477)%rows]); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		post := pdb.Stats()
		hits := post.PagecacheHits - pre.PagecacheHits
		misses := post.PagecacheMisses - pre.PagecacheMisses
		pt := PoolPoint{
			BudgetPct:   pct,
			BudgetBytes: budget,
			NsOp:        elapsed.Nanoseconds() / int64(iters),
			ReadsPerSec: float64(iters) / elapsed.Seconds(),
			Evictions:   post.PagecacheEvictions,
		}
		if total := hits + misses; total > 0 {
			pt.HitRate = float64(hits) / float64(total)
		}
		out.Pool = append(out.Pool, pt)
		if err := pdb.CloseWAL(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
