// Package experiments implements the harness that regenerates every
// table and figure of the paper's evaluation (Section 7). Each function
// produces the rows/series of one artifact; cmd/benchrunner prints them
// and bench_test.go wraps them in testing.B benchmarks. See DESIGN.md §5
// for the experiment index and EXPERIMENTS.md for paper-vs-measured.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/relational"
	"repro/internal/tpch"
	"repro/internal/ufilter"
	"repro/internal/w3cusecases"
)

// ---------------------------------------------------------------------
// E1 — Fig. 12: W3C use-case expressiveness table.

// Fig12Row mirrors one row of the paper's Fig. 12.
type Fig12Row = w3cusecases.Row

// Fig12 returns the coverage table.
func Fig12() []Fig12Row { return w3cusecases.CoverageTable() }

// ---------------------------------------------------------------------
// E2 — Fig. 13: translatable view update over Vsuccess, per relation,
// with and without STAR checking.

// Fig13Row is one bar pair of Fig. 13.
type Fig13Row struct {
	Relation    string
	Update      time.Duration // translate + execute only
	WithSTAR    time.Duration // STAR check + translate + execute
	RowsDeleted int
}

// Fig13 deletes one element per relation level of Vsuccess and measures
// the update with and without the STAR checking step. Each measurement
// runs on a fresh database so the cascade sizes are comparable; the
// minimum of `reps` runs is reported to suppress scheduler noise.
func Fig13(mb, reps int) ([]Fig13Row, error) {
	if reps < 1 {
		reps = 1
	}
	var out []Fig13Row
	for _, rel := range tpch.Relations {
		upd := tpch.DeleteElementUpdate(rel, 1)
		row := Fig13Row{Relation: rel}
		for rep := 0; rep < reps; rep++ {
			db, err := tpch.NewDatabaseMB(mb)
			if err != nil {
				return nil, err
			}
			f, err := ufilter.New(tpch.VsuccessQuery, db)
			if err != nil {
				return nil, err
			}
			f.SkipSchemaChecks = true
			start := time.Now()
			res, err := f.Apply(upd)
			if err != nil {
				return nil, fmt.Errorf("fig13 %s: %w", rel, err)
			}
			plain := time.Since(start)
			if !res.Accepted {
				return nil, fmt.Errorf("fig13 %s: rejected: %s", rel, res.Reason)
			}
			row.RowsDeleted = res.RowsAffected

			db2, err := tpch.NewDatabaseMB(mb)
			if err != nil {
				return nil, err
			}
			f2, err := ufilter.New(tpch.VsuccessQuery, db2)
			if err != nil {
				return nil, err
			}
			start = time.Now()
			res2, err := f2.Apply(upd)
			if err != nil {
				return nil, fmt.Errorf("fig13 %s (star): %w", rel, err)
			}
			withStar := time.Since(start)
			if !res2.Accepted {
				return nil, fmt.Errorf("fig13 %s (star): rejected: %s", rel, res2.Reason)
			}
			if row.Update == 0 || plain < row.Update {
				row.Update = plain
			}
			if row.WithSTAR == 0 || withStar < row.WithSTAR {
				row.WithSTAR = withStar
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// E3 — Fig. 14: untranslatable view update over Vfail, per relation:
// blind translate-execute-compare-rollback vs STAR's static rejection.

// Fig14Row is one bar pair of Fig. 14.
type Fig14Row struct {
	Relation    string
	Blind       time.Duration // execute + view diff + rollback
	STAR        time.Duration // static rejection
	RowsTouched int
}

// Fig14 measures the blind baseline against the STAR rejection for each
// relation's failure view. The blind path rolls back, so repetitions
// reuse one database; minima over `reps` runs are reported.
func Fig14(mb, reps int) ([]Fig14Row, error) {
	if reps < 1 {
		reps = 1
	}
	var out []Fig14Row
	for _, rel := range tpch.Relations {
		upd := tpch.DeleteElementUpdate(rel, 1)
		db, err := tpch.NewDatabaseMB(mb)
		if err != nil {
			return nil, err
		}
		f, err := ufilter.New(tpch.VfailQuery(rel), db)
		if err != nil {
			return nil, err
		}
		// This experiment measures the schema-level pipeline itself; the
		// decision cache would turn every rep after the first into a map
		// lookup and corrupt the reported STAR cost.
		f.DisableCache = true
		row := Fig14Row{Relation: rel}
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			blindRes, err := f.BlindApply(upd)
			if err != nil {
				return nil, fmt.Errorf("fig14 %s: %w", rel, err)
			}
			blind := time.Since(start)
			if !blindRes.SideEffect || !blindRes.RolledBack {
				return nil, fmt.Errorf("fig14 %s: blind run should detect a side effect and roll back", rel)
			}
			row.RowsTouched = blindRes.RowsTouched

			start = time.Now()
			checkRes, err := f.Check(upd)
			if err != nil {
				return nil, err
			}
			star := time.Since(start)
			if checkRes.Accepted {
				return nil, fmt.Errorf("fig14 %s: STAR should reject", rel)
			}
			if row.Blind == 0 || blind < row.Blind {
				row.Blind = blind
			}
			if row.STAR == 0 || star < row.STAR {
				row.STAR = star
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// E4 — §7.2 text: STAR marking cost for Vsuccess and Vfail.

// MarkingTimes reports the one-time compile cost of the STAR marking
// procedure per view.
type MarkingTimes struct {
	Vsuccess time.Duration
	Vfail    time.Duration
}

// STARMarking measures building + marking both ASGs.
func STARMarking(mb int) (MarkingTimes, error) {
	db, err := tpch.NewDatabaseMB(mb)
	if err != nil {
		return MarkingTimes{}, err
	}
	start := time.Now()
	if _, err := ufilter.New(tpch.VsuccessQuery, db); err != nil {
		return MarkingTimes{}, err
	}
	vs := time.Since(start)
	start = time.Now()
	if _, err := ufilter.New(tpch.VfailQuery("region"), db); err != nil {
		return MarkingTimes{}, err
	}
	vf := time.Since(start)
	return MarkingTimes{Vsuccess: vs, Vfail: vf}, nil
}

// ---------------------------------------------------------------------
// E5 — Fig. 15: internal vs external strategy for inserting a lineitem
// into Vlinear, over database sizes.

// Fig15Row is one x-position of Fig. 15.
type Fig15Row struct {
	MB       int
	Internal time.Duration
	External time.Duration
	Rows     int // database rows, for the report
}

// Fig15 measures repeated lineitem inserts under both strategies. The
// databases persist across iterations (inserts use fresh keys).
func Fig15(sizes []int, itersPerSize int) ([]Fig15Row, error) {
	var out []Fig15Row
	for _, mb := range sizes {
		db, err := tpch.NewDatabaseMB(mb)
		if err != nil {
			return nil, err
		}
		internal, err := ufilter.New(tpch.VlinearQuery, db)
		if err != nil {
			return nil, err
		}
		internal.Strategy = ufilter.StrategyInternal
		external, err := ufilter.New(tpch.VlinearQuery, db)
		if err != nil {
			return nil, err
		}
		external.Strategy = ufilter.StrategyHybrid

		row := Fig15Row{MB: mb, Rows: db.TotalRows()}
		orders := tpch.RowsForMB(mb).Orders
		key := func(i int) int64 { return int64(i%(orders-2) + 1) }
		// Warm both paths once so one-time costs do not skew the series.
		if _, err := internal.Apply(tpch.InsertLineitemUpdate(key(0), 500)); err != nil {
			return nil, err
		}
		if _, err := external.Apply(tpch.InsertLineitemUpdate(key(0), 501)); err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < itersPerSize; i++ {
			res, err := internal.Apply(tpch.InsertLineitemUpdate(key(i), int64(1000+i)))
			if err != nil {
				return nil, fmt.Errorf("fig15 internal mb=%d: %w", mb, err)
			}
			if !res.Accepted {
				return nil, fmt.Errorf("fig15 internal mb=%d: rejected: %s", mb, res.Reason)
			}
		}
		row.Internal = time.Since(start) / time.Duration(itersPerSize)
		start = time.Now()
		for i := 0; i < itersPerSize; i++ {
			res, err := external.Apply(tpch.InsertLineitemUpdate(key(i), int64(5000+i)))
			if err != nil {
				return nil, fmt.Errorf("fig15 external mb=%d: %w", mb, err)
			}
			if !res.Accepted {
				return nil, fmt.Errorf("fig15 external mb=%d: rejected: %s", mb, res.Reason)
			}
		}
		row.External = time.Since(start) / time.Duration(itersPerSize)
		out = append(out, row)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// E6 — Fig. 16: hybrid vs outside over Vbush (successful updates).

// Fig16Row is one x-position of Fig. 16.
type Fig16Row struct {
	MB      int
	Hybrid  time.Duration
	Outside time.Duration
}

// Fig16 measures a successful orderline insert+delete workload over the
// bushy view under both external strategies.
func Fig16(sizes []int, itersPerSize int) ([]Fig16Row, error) {
	var out []Fig16Row
	for _, mb := range sizes {
		row := Fig16Row{MB: mb}
		for _, strat := range []ufilter.Strategy{ufilter.StrategyHybrid, ufilter.StrategyOutside} {
			db, err := tpch.NewDatabaseMB(mb)
			if err != nil {
				return nil, err
			}
			f, err := ufilter.New(tpch.VbushQuery, db)
			if err != nil {
				return nil, err
			}
			f.Strategy = strat
			start := time.Now()
			for i := 0; i < itersPerSize; i++ {
				cust := int64(i + 1)
				res, err := f.Apply(tpch.InsertOrderlineUpdateBush(cust, int64(9000000+i), 1))
				if err != nil {
					return nil, fmt.Errorf("fig16 %s mb=%d: %w", strat, mb, err)
				}
				if !res.Accepted {
					return nil, fmt.Errorf("fig16 %s mb=%d: rejected: %s", strat, mb, res.Reason)
				}
				res, err = f.Apply(fmt.Sprintf(`
FOR $c IN document("view.xml")/customer
WHERE $c/c_custkey/text() = "%d"
UPDATE $c { DELETE $c/orderline }`, cust))
				if err != nil {
					return nil, fmt.Errorf("fig16 %s mb=%d delete: %w", strat, mb, err)
				}
				if !res.Accepted {
					return nil, fmt.Errorf("fig16 %s mb=%d delete: rejected: %s", strat, mb, res.Reason)
				}
			}
			elapsed := time.Since(start) / time.Duration(itersPerSize)
			if strat == ufilter.StrategyHybrid {
				row.Hybrid = elapsed
			} else {
				row.Outside = elapsed
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// E7 — Fig. 17: hybrid vs outside over Vlinear, failed cases.

// Fig17Row is one x-position of Fig. 17. The statement counts record
// the early-detection effect: the outside strategy suppresses the DML
// statements whose probes come back empty.
type Fig17Row struct {
	MB           int
	HybridFail1  time.Duration
	OutsideFail1 time.Duration
	HybridFail2  time.Duration
	OutsideFail2 time.Duration
	HybridStmts  int
	OutsideStmts int
}

// Fig17 measures the two failed-case scenarios: Fail1 — the customer
// has no orders at all, so no table is updated; Fail2 — orders exist
// but carry no lineitems, so the customer and order deletes succeed
// while the lineitem delete matches nothing.
func Fig17(sizes []int, itersPerSize int) ([]Fig17Row, error) {
	var out []Fig17Row
	for _, mb := range sizes {
		row := Fig17Row{MB: mb}
		for _, strat := range []ufilter.Strategy{ufilter.StrategyHybrid, ufilter.StrategyOutside} {
			f1, f2, stmts, err := fig17Run(mb, strat, itersPerSize)
			if err != nil {
				return nil, err
			}
			if strat == ufilter.StrategyHybrid {
				row.HybridFail1, row.HybridFail2, row.HybridStmts = f1, f2, stmts
			} else {
				row.OutsideFail1, row.OutsideFail2, row.OutsideStmts = f1, f2, stmts
			}
		}
		out = append(out, row)
	}
	return out, nil
}

func fig17Run(mb int, strat ufilter.Strategy, iters int) (fail1, fail2 time.Duration, stmts int, err error) {
	db, err := tpch.NewDatabaseMB(mb)
	if err != nil {
		return 0, 0, 0, err
	}
	rows := tpch.RowsForMB(mb)
	// Prepare Fail1 customers (no orders) and Fail2 customers (orders
	// without lineitems). Orders are assigned round-robin, so customer
	// k owns orders {k, k+customers, k+2*customers, ...}.
	fail1Cust := make([]int64, iters)
	fail2Cust := make([]int64, iters)
	for i := 0; i < iters; i++ {
		c1 := int64(i)
		c2 := int64(iters + i)
		fail1Cust[i], fail2Cust[i] = c1, c2
		for o := int(c1); o < rows.Orders; o += rows.Customers {
			ids, _ := db.LookupEqual("orders", []string{"o_orderkey"}, []relational.Value{relational.Int_(int64(o))})
			for _, id := range ids {
				if _, err := db.Delete("orders", id); err != nil {
					return 0, 0, 0, err
				}
			}
		}
		for o := int(c2); o < rows.Orders; o += rows.Customers {
			ids, _ := db.LookupEqual("lineitem", []string{"l_orderkey"}, []relational.Value{relational.Int_(int64(o))})
			for _, id := range ids {
				if _, err := db.Delete("lineitem", id); err != nil {
					return 0, 0, 0, err
				}
			}
		}
	}
	f, err := ufilter.New(tpch.VlinearQuery, db)
	if err != nil {
		return 0, 0, 0, err
	}
	f.Strategy = strat

	deleteSubtree := func(cust int64) (*ufilter.Result, error) {
		return f.Apply(fmt.Sprintf(`
FOR $c IN document("view.xml")/region/nation/customer
WHERE $c/c_custkey/text() = "%d"
UPDATE $c { DELETE $c/order/lineitem, DELETE $c/order }`, cust))
	}

	start := time.Now()
	for i := 0; i < iters; i++ {
		res, err := deleteSubtree(fail1Cust[i])
		if err != nil {
			return 0, 0, 0, fmt.Errorf("fig17 fail1 %s: %w", strat, err)
		}
		if !res.Accepted || res.RowsAffected != 0 {
			return 0, 0, 0, fmt.Errorf("fig17 fail1 %s: rows=%d reason=%s", strat, res.RowsAffected, res.Reason)
		}
		stmts += len(res.SQL)
	}
	fail1 = time.Since(start) / time.Duration(iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		res, err := deleteSubtree(fail2Cust[i])
		if err != nil {
			return 0, 0, 0, fmt.Errorf("fig17 fail2 %s: %w", strat, err)
		}
		if !res.Accepted {
			return 0, 0, 0, fmt.Errorf("fig17 fail2 %s: %s", strat, res.Reason)
		}
		stmts += len(res.SQL)
	}
	fail2 = time.Since(start) / time.Duration(iters)
	return fail1, fail2, stmts, nil
}
