package experiments

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bookdb"
	"repro/internal/relational"
	"repro/internal/ufilter"
)

// MVCCBench records the snapshot-isolation measurement the repo's CI
// tracks (BENCH_mvcc.json): check latency percentiles on an idle
// system versus the same checks racing a writer that loops group-commit
// ApplyBatch calls back to back — the mixed ~90/10 check/apply workload
// the ufilterd gateway serves. Under the MVCC read path a check never
// waits on an apply, so the busy percentiles should sit within a small
// constant of the idle ones instead of stalling behind the writer lock.
type MVCCBench struct {
	ChecksPerSide int `json:"checks_per_side"`
	Checkers      int `json:"checkers"`

	// Schema-level Check (Steps 1+2, plan-cache answered).
	CheckIdleP50Ns int64 `json:"check_idle_p50_ns"`
	CheckIdleP99Ns int64 `json:"check_idle_p99_ns"`
	CheckBusyP50Ns int64 `json:"check_busy_p50_ns"`
	CheckBusyP99Ns int64 `json:"check_busy_p99_ns"`
	// CheckP99Ratio = busy p99 / idle p99.
	CheckP99Ratio float64 `json:"check_p99_ratio"`

	// Snapshot-pinned data check (Steps 1+2 plus read-only Step 3
	// probes against a pinned snapshot).
	DataCheckIdleP50Ns int64   `json:"data_check_idle_p50_ns"`
	DataCheckIdleP99Ns int64   `json:"data_check_idle_p99_ns"`
	DataCheckBusyP50Ns int64   `json:"data_check_busy_p50_ns"`
	DataCheckBusyP99Ns int64   `json:"data_check_busy_p99_ns"`
	DataCheckP99Ratio  float64 `json:"data_check_p99_ratio"`

	// AppliesDuringBusy counts updates the writer committed while the
	// busy side was measured (the interference actually present).
	AppliesDuringBusy int64 `json:"applies_during_busy"`
	// SnapshotsOpened / VersionsReclaimed are the database's MVCC
	// counters after the run.
	SnapshotsOpened   int64 `json:"snapshots_opened"`
	VersionsReclaimed int64 `json:"versions_reclaimed"`
}

// mvccCheckTemplate cycles literals so the plan cache's template tier
// answers (the production traffic shape).
func mvccCheckTemplate(i int) string {
	return fmt.Sprintf(`
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Title %d"
UPDATE $book { DELETE $book/review }`, i%64)
}

// mvccDataCheckText probes a context that exists, so the data check
// runs its full probe every time.
const mvccDataCheckText = `
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Data on the Web"
UPDATE $book { DELETE $book/review }`

func mvccInsertText(i int) string {
	return fmt.Sprintf(`
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Data on the Web"
UPDATE $book { INSERT <review><reviewid>%d</reviewid><comment> bench </comment></review> }`, 500000+i)
}

func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// measureChecks runs iters checks across nCheckers goroutines and
// returns the sorted per-call latencies.
func measureChecks(f *ufilter.Filter, iters, nCheckers int, data bool) ([]int64, error) {
	lat := make([]int64, iters)
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for c := 0; c < nCheckers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= iters {
					return
				}
				start := time.Now()
				var err error
				var res *ufilter.Result
				if data {
					res, err = f.CheckData(mvccDataCheckText)
				} else {
					res, err = f.Check(mvccCheckTemplate(i))
				}
				lat[i] = time.Since(start).Nanoseconds()
				if err == nil && !res.Accepted {
					err = fmt.Errorf("mvcc bench check rejected: %s", res.Reason)
				}
				if err != nil {
					firstErr.Store(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat, nil
}

// RunMVCCBench measures check latency idle vs under a saturating
// writer and returns the table BENCH_mvcc.json records.
func RunMVCCBench(iters int) (*MVCCBench, error) {
	if iters <= 0 {
		iters = 2000
	}
	const checkers = 2
	out := &MVCCBench{ChecksPerSide: iters, Checkers: checkers}

	db, err := bookdb.NewDatabase(relational.DeleteCascade)
	if err != nil {
		return nil, err
	}
	f, err := ufilter.New(bookdb.ViewQuery, db)
	if err != nil {
		return nil, err
	}

	// Idle side: no writer running.
	idle, err := measureChecks(f, iters, checkers, false)
	if err != nil {
		return nil, err
	}
	idleData, err := measureChecks(f, iters, checkers, true)
	if err != nil {
		return nil, err
	}

	// Busy side: a writer loops group-commit batches (16 inserts + the
	// restoring delete) back to back while the same checks run.
	done := make(chan struct{})
	var applies atomic.Int64
	var applyErr atomic.Value
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; ; n++ {
			select {
			case <-done:
				return
			default:
			}
			batch := make([]string, 0, 17)
			for i := 0; i < 16; i++ {
				batch = append(batch, mvccInsertText(n*16+i))
			}
			batch = append(batch, mvccDataCheckText) // the restoring delete
			for _, br := range f.ApplyBatch(batch) {
				if br.Err != nil {
					applyErr.Store(br.Err)
					return
				}
				// A rejected apply is a bench failure too: a writer
				// looping no-op batches would measure the busy side
				// against an effectively idle system.
				if br.Result == nil {
					applyErr.Store(fmt.Errorf("mvcc bench apply returned no result"))
					return
				}
				if !br.Result.Accepted {
					applyErr.Store(fmt.Errorf("mvcc bench apply rejected: %s", br.Result.Reason))
					return
				}
			}
			applies.Add(int64(len(batch)))
		}
	}()
	busy, err := measureChecks(f, iters, checkers, false)
	if err == nil {
		var busyData []int64
		busyData, err = measureChecks(f, iters, checkers, true)
		if err == nil {
			out.DataCheckBusyP50Ns = percentile(busyData, 0.50)
			out.DataCheckBusyP99Ns = percentile(busyData, 0.99)
		}
	}
	close(done)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	if aerr, _ := applyErr.Load().(error); aerr != nil {
		return nil, aerr
	}

	out.CheckIdleP50Ns = percentile(idle, 0.50)
	out.CheckIdleP99Ns = percentile(idle, 0.99)
	out.CheckBusyP50Ns = percentile(busy, 0.50)
	out.CheckBusyP99Ns = percentile(busy, 0.99)
	out.DataCheckIdleP50Ns = percentile(idleData, 0.50)
	out.DataCheckIdleP99Ns = percentile(idleData, 0.99)
	if out.CheckIdleP99Ns > 0 {
		out.CheckP99Ratio = float64(out.CheckBusyP99Ns) / float64(out.CheckIdleP99Ns)
	}
	if out.DataCheckIdleP99Ns > 0 {
		out.DataCheckP99Ratio = float64(out.DataCheckBusyP99Ns) / float64(out.DataCheckIdleP99Ns)
	}
	out.AppliesDuringBusy = applies.Load()
	// Quiesced and unpinned: a final reclaim pass frees the history the
	// busy side accumulated (commits also piggyback reclaims, so part
	// may already be gone).
	db.Reclaim()
	st := db.Stats()
	out.SnapshotsOpened = st.SnapshotsOpened
	out.VersionsReclaimed = st.VersionsReclaimed
	return out, nil
}
