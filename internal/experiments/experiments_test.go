package experiments

import "testing"

func TestFig12(t *testing.T) {
	rows := Fig12()
	if len(rows) != 36 {
		t.Fatalf("rows = %d, want 36", len(rows))
	}
	included := 0
	for _, r := range rows {
		if r.Included {
			included++
		}
	}
	if included != 16 {
		t.Errorf("included = %d, want 16 (9 XMP + 2 TREE + 5 R)", included)
	}
}

func TestFig13Shape(t *testing.T) {
	rows, err := Fig13(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Cascade size must shrink down the chain: region deletes the most.
	if rows[0].RowsDeleted <= rows[4].RowsDeleted {
		t.Errorf("region cascade (%d) should exceed lineitem (%d)",
			rows[0].RowsDeleted, rows[4].RowsDeleted)
	}
	// Order 1 carries 3 lineitems, so the lineitem-level delete removes
	// exactly those; every level must shrink or hold along the chain.
	for i := 1; i < len(rows); i++ {
		if rows[i].RowsDeleted > rows[i-1].RowsDeleted {
			t.Errorf("cascade sizes not monotone: %s=%d > %s=%d",
				rows[i].Relation, rows[i].RowsDeleted, rows[i-1].Relation, rows[i-1].RowsDeleted)
		}
	}
	for _, r := range rows {
		if r.Update <= 0 || r.WithSTAR <= 0 {
			t.Errorf("%s: non-positive timings %v %v", r.Relation, r.Update, r.WithSTAR)
		}
	}
}

func TestFig14Shape(t *testing.T) {
	rows, err := Fig14(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// STAR's static rejection must be far cheaper than the blind
		// execute-diff-rollback baseline.
		if r.STAR*10 > r.Blind {
			t.Errorf("%s: STAR %v not clearly cheaper than blind %v", r.Relation, r.STAR, r.Blind)
		}
	}
	if rows[0].RowsTouched <= rows[4].RowsTouched {
		t.Errorf("blind region cascade (%d) should exceed lineitem (%d)",
			rows[0].RowsTouched, rows[4].RowsTouched)
	}
}

func TestSTARMarkingCheap(t *testing.T) {
	mt, err := STARMarking(1)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Vsuccess <= 0 || mt.Vfail <= 0 {
		t.Errorf("timings %v %v", mt.Vsuccess, mt.Vfail)
	}
}

func TestFig15Shape(t *testing.T) {
	rows, err := Fig15([]int{2}, 50)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// The internal strategy's wide probe + view-tuple insert must cost
	// more than the external single-table path.
	if r.Internal <= r.External {
		t.Errorf("internal %v should exceed external %v", r.Internal, r.External)
	}
}

func TestFig16Shape(t *testing.T) {
	rows, err := Fig16([]int{2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// Hybrid avoids the outside strategy's extra probes on success.
	if r.Hybrid > r.Outside*2 {
		t.Errorf("hybrid %v unexpectedly slower than outside %v", r.Hybrid, r.Outside)
	}
}

func TestFig17Shape(t *testing.T) {
	rows, err := Fig17([]int{2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.HybridFail1 <= 0 || r.OutsideFail1 <= 0 || r.HybridFail2 <= 0 || r.OutsideFail2 <= 0 {
		t.Fatalf("non-positive timings: %+v", r)
	}
}

func TestWriteBenchShape(t *testing.T) {
	wb, err := RunWriteBench(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(wb.Points) != 4 {
		t.Fatalf("points = %d, want 4 (1/2/4/8 writers)", len(wb.Points))
	}
	for _, p := range wb.Points {
		if p.ConflictFreeOpsPerSec <= 0 || p.HighConflictOpsPerSec <= 0 {
			t.Fatalf("writer point %d has zero throughput: %+v", p.Writers, p)
		}
		// Correctness invariant: every high-conflict apply either
		// committed or surfaced a conflict; nothing was lost.
		ops := int64(64 - 64%p.Writers)
		if p.Accepted+p.Conflict409 != ops {
			t.Fatalf("writers=%d: accepted %d + 409 %d != %d", p.Writers, p.Accepted, p.Conflict409, ops)
		}
	}
	if wb.ConflictFreeSpeedup8x <= 0 {
		t.Fatalf("speedup not recorded: %+v", wb)
	}
}

func TestPageBenchShape(t *testing.T) {
	pb, err := RunPageBench(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pb.Pauses) != 2 || pb.Pauses[0].PauseNs <= 0 || pb.Pauses[1].PauseNs <= 0 {
		t.Fatalf("pause points malformed: %+v", pb.Pauses)
	}
	if pb.PauseRatio <= 0 {
		t.Fatalf("pause ratio not recorded: %+v", pb)
	}
	if pb.Recovery.LazyOpenNs <= 0 || pb.Recovery.FirstScanNs <= 0 {
		t.Fatalf("recovery timings malformed: %+v", pb.Recovery)
	}
	if pb.Recovery.PagesTotal <= 0 || pb.Recovery.FaultedPages <= 0 {
		t.Fatalf("recovery faulted nothing — not lazy: %+v", pb.Recovery)
	}
	if len(pb.Pool) != 3 {
		t.Fatalf("pool points = %d, want 3 (100/50/10%%)", len(pb.Pool))
	}
	for _, p := range pb.Pool {
		if p.ReadsPerSec <= 0 || p.BudgetBytes <= 0 {
			t.Fatalf("pool point %d%% has no throughput: %+v", p.BudgetPct, p)
		}
	}
	// The 10% pool must be evicting — that's the beyond-RAM regime.
	if pb.Pool[2].Evictions == 0 {
		t.Fatalf("10%% budget evicted nothing: %+v", pb.Pool[2])
	}
}
