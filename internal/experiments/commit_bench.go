package experiments

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/relational"
)

// CommitBench records the stall-free-durability measurement the repo's
// CI tracks (BENCH_commit.json), in three parts:
//
//   - Points: durable-apply throughput at 1/8/32 writers with the commit
//     pipeline disabled (every group holds the commit latch across its
//     fsync — the pre-pipeline behavior) vs enabled (groups validate and
//     stamp while the previous group's fsync is in flight). Speedup at
//     8+ writers is the pipelining win.
//   - Pauses: Checkpoint() wall time against a 1x and a 10x database
//     with the SAME dirty set. Incremental checkpoints serialize only
//     dirty rows, so the pause ratio should sit near 1, not near 10.
//   - Recovery: cold OpenWAL time over a base image alone vs base plus
//     a delta chain, with the chain length recovery reported.
type CommitBench struct {
	// OpsPerPoint is the number of durable commits measured per series
	// point; MaxProcs records the parallelism available to the run.
	OpsPerPoint int           `json:"ops_per_point"`
	MaxProcs    int           `json:"max_procs"`
	Points      []CommitPoint `json:"points"`

	// SpeedupAt8Plus is the best pipelined/synchronous throughput ratio
	// across the points with >= 8 writers (the headline number CI gates).
	SpeedupAt8Plus float64 `json:"speedup_at_8_plus"`

	Pauses []CheckpointPausePoint `json:"checkpoint_pauses"`
	// PauseRatio is pause(10x rows)/pause(1x rows) at the fixed dirty
	// set — near 1 means the pause is O(dirty), not O(database).
	PauseRatio float64 `json:"checkpoint_pause_ratio"`

	Recovery []RecoveryChainPoint `json:"recovery"`
}

// CommitPoint is one writer-count measurement of the commit pipeline.
type CommitPoint struct {
	Writers int `json:"writers"`

	SyncNsOp      int64   `json:"sync_ns_op"`
	SyncOpsPerSec float64 `json:"sync_ops_per_sec"`

	PipeNsOp      int64   `json:"pipelined_ns_op"`
	PipeOpsPerSec float64 `json:"pipelined_ops_per_sec"`

	// Speedup is pipelined over synchronous throughput (> 1 means the
	// pipeline wins).
	Speedup float64 `json:"speedup"`

	SyncFsyncs int64 `json:"sync_fsyncs"`
	PipeFsyncs int64 `json:"pipelined_fsyncs"`
}

// CheckpointPausePoint is one checkpoint-pause measurement: a database
// of Rows rows with DirtyRows rows written since the last checkpoint.
type CheckpointPausePoint struct {
	Rows      int   `json:"rows"`
	DirtyRows int   `json:"dirty_rows"`
	PauseNs   int64 `json:"pause_ns"`
}

// RecoveryChainPoint is one cold-recovery measurement against a delta
// chain of the given length.
type RecoveryChainPoint struct {
	Rows       int   `json:"rows"`
	ChainLen   int   `json:"delta_chain_len"`
	RecoveryNs int64 `json:"recovery_ns"`
}

// commitBenchSchema is a minimal single-table schema: the benchmark
// measures the commit path, not constraint checking.
func commitBenchSchema() (*relational.Schema, error) {
	tbl, err := relational.NewTableDef("bench", []relational.Column{
		{Name: "id", Type: relational.TypeInt},
		{Name: "val", Type: relational.TypeString},
	}, []string{"id"}, nil)
	if err != nil {
		return nil, err
	}
	return relational.NewSchema(tbl)
}

func openCommitBenchDB(dir string, opts relational.WALOptions) (*relational.Database, error) {
	schema, err := commitBenchSchema()
	if err != nil {
		return nil, err
	}
	db := relational.NewDatabase(schema)
	if _, err := db.OpenWAL(dir, opts); err != nil {
		return nil, err
	}
	return db, nil
}

// commitWriters drives ops conflict-free autocommit inserts across n
// goroutines and returns the wall time.
func commitWriters(db *relational.Database, n, ops int) (time.Duration, error) {
	per := ops / n
	errs := make([]error, n)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w+1) * 10_000_000
			for i := 0; i < per; i++ {
				if _, err := db.Insert("bench", map[string]relational.Value{
					"id":  relational.Int_(base + int64(i)),
					"val": relational.String_("v"),
				}); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed, nil
}

// RunCommitBench measures pipelined vs synchronous group commit,
// checkpoint pause vs database size, and recovery vs delta-chain
// length, returning the table BENCH_commit.json records.
func RunCommitBench(iters int, maxProcs int) (*CommitBench, error) {
	if iters <= 0 {
		iters = 600
	}
	out := &CommitBench{OpsPerPoint: iters, MaxProcs: maxProcs}
	root, err := os.MkdirTemp("", "commitbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	// Part 1: throughput, synchronous vs pipelined, per writer count.
	for _, writers := range []int{1, 8, 32} {
		pt := CommitPoint{Writers: writers}
		ops := iters - iters%writers
		for _, pipelined := range []bool{false, true} {
			dir := fmt.Sprintf("%s/w%d-p%v", root, writers, pipelined)
			db, err := openCommitBenchDB(dir, relational.WALOptions{
				DisablePipeline: !pipelined,
			})
			if err != nil {
				return nil, err
			}
			elapsed, err := commitWriters(db, writers, ops)
			if err != nil {
				return nil, err
			}
			fsyncs := db.Stats().Fsyncs
			if err := db.CloseWAL(); err != nil {
				return nil, err
			}
			nsOp := elapsed.Nanoseconds() / int64(ops)
			opsPerSec := float64(ops) / elapsed.Seconds()
			if pipelined {
				pt.PipeNsOp, pt.PipeOpsPerSec, pt.PipeFsyncs = nsOp, opsPerSec, fsyncs
			} else {
				pt.SyncNsOp, pt.SyncOpsPerSec, pt.SyncFsyncs = nsOp, opsPerSec, fsyncs
			}
		}
		if pt.SyncOpsPerSec > 0 {
			pt.Speedup = pt.PipeOpsPerSec / pt.SyncOpsPerSec
		}
		if pt.Writers >= 8 && pt.Speedup > out.SpeedupAt8Plus {
			out.SpeedupAt8Plus = pt.Speedup
		}
		out.Points = append(out.Points, pt)
	}

	// Part 2: checkpoint pause at 1x and 10x database size with the same
	// fixed dirty set. Each run: bulk-load, checkpoint (absorbs the
	// load), dirty exactly dirtyRows rows, then time the measured pass.
	const baseRows, dirtyRows = 2_000, 100
	for _, rows := range []int{baseRows, 10 * baseRows} {
		dir := fmt.Sprintf("%s/ckpt-%d", root, rows)
		db, err := openCommitBenchDB(dir, relational.WALOptions{})
		if err != nil {
			return nil, err
		}
		if err := bulkInsert(db, 0, rows); err != nil {
			return nil, err
		}
		if err := db.Checkpoint(); err != nil {
			return nil, err
		}
		if err := bulkInsert(db, 50_000_000, dirtyRows); err != nil {
			return nil, err
		}
		start := time.Now()
		if err := db.Checkpoint(); err != nil {
			return nil, err
		}
		pause := time.Since(start).Nanoseconds()
		if err := db.CloseWAL(); err != nil {
			return nil, err
		}
		out.Pauses = append(out.Pauses, CheckpointPausePoint{
			Rows: rows, DirtyRows: dirtyRows, PauseNs: pause,
		})
	}
	if p0 := out.Pauses[0].PauseNs; p0 > 0 {
		out.PauseRatio = float64(out.Pauses[1].PauseNs) / float64(p0)
	}

	// Part 3: cold recovery over a lone base image vs base + delta
	// chain, same row count.
	const recRows, chainLen = 5_000, 8
	for _, deltas := range []int{0, chainLen} {
		dir := fmt.Sprintf("%s/rec-%d", root, deltas)
		// The chain run keeps its limit above chainLen so every measured
		// pass stays a delta; the baseline run disables incremental
		// checkpoints entirely, leaving a lone full base image.
		limit := chainLen + 1
		if deltas == 0 {
			limit = -1
		}
		db, err := openCommitBenchDB(dir, relational.WALOptions{
			CheckpointDeltaLimit: limit,
		})
		if err != nil {
			return nil, err
		}
		if deltas == 0 {
			if err := bulkInsert(db, 0, recRows); err != nil {
				return nil, err
			}
			if err := db.Checkpoint(); err != nil {
				return nil, err
			}
		} else {
			per := recRows / deltas
			for d := 0; d < deltas; d++ {
				if err := bulkInsert(db, int64(d)*int64(per), per); err != nil {
					return nil, err
				}
				if err := db.Checkpoint(); err != nil {
					return nil, err
				}
			}
		}
		if err := db.CloseWAL(); err != nil {
			return nil, err
		}
		schema, err := commitBenchSchema()
		if err != nil {
			return nil, err
		}
		db2 := relational.NewDatabase(schema)
		start := time.Now()
		info, err := db2.OpenWAL(dir, relational.WALOptions{})
		if err != nil {
			return nil, err
		}
		recNs := time.Since(start).Nanoseconds()
		if err := db2.CloseWAL(); err != nil {
			return nil, err
		}
		out.Recovery = append(out.Recovery, RecoveryChainPoint{
			Rows: recRows, ChainLen: info.CheckpointDeltas, RecoveryNs: recNs,
		})
	}
	return out, nil
}

// bulkInsert commits rows one autocommit insert at a time starting at
// the given id base.
func bulkInsert(db *relational.Database, base int64, rows int) error {
	for i := 0; i < rows; i++ {
		if _, err := db.Insert("bench", map[string]relational.Value{
			"id":  relational.Int_(base + int64(i)),
			"val": relational.String_("v"),
		}); err != nil {
			return err
		}
	}
	return nil
}
