package experiments

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/relational"
	"repro/internal/shard"
)

// ShardBench is the intra-view sharding benchmark: durable apply
// throughput as the view's base tables are hash-partitioned across
// 1/2/4/8 relational shards, each with its own WAL. Writers commit
// synchronously — every transaction is fsynced before the writer
// continues, the latency-bound regime where a single log is a hard
// serial bottleneck — so on a disjoint workload (each writer's keys
// route to its own shard) the per-shard flushes overlap in the kernel
// and throughput rises with the shard count even on one CPU. The
// cross-shard series prices the two-phase claim/publish path (extra
// decide-record fsync plus serialized prepare) that multi-shard
// transactions pay instead.
//
// Points are measured sequentially, shards=1 first from a cold store:
// serial fsync latency on a shared host drifts, and adjacency to
// parallel-flush traffic measurably flatters a serial stream, so the
// baseline is taken before any parallel point has run and the
// unsharded-parity point immediately after it under the same
// conditions.
type ShardBench struct {
	OpsPerPoint int     `json:"ops_per_point"`
	Writers     int     `json:"writers"`
	MaxProcs    int     `json:"max_procs"`
	Baseline    float64 `json:"unsharded_ops_per_sec"`

	Disjoint []ShardPoint      `json:"disjoint"`
	Cross    []ShardCrossPoint `json:"cross_shard"`

	// SpeedupAt8 is disjoint ops/s at shards=8 over shards=1; the
	// acceptance floor is 2x. ParityAt1 is shards=1 over the
	// unsharded baseline; anything near 1.0 means the shard layer
	// itself is free when it degenerates to a single database.
	SpeedupAt8 float64 `json:"speedup_at_8"`
	ParityAt1  float64 `json:"parity_at_1"`
}

// ShardPoint is one disjoint-workload measurement.
type ShardPoint struct {
	Shards    int     `json:"shards"`
	NsOp      int64   `json:"ns_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// Fsyncs per shard, index = shard ordinal; parallel progress shows
	// up as the counts being balanced rather than concentrated.
	Fsyncs []int64 `json:"fsyncs_per_shard"`
	// FsyncParallelism is total fsync-wait time across shards divided
	// by the point's wall-clock time: ~1.0 when the log is a serial
	// bottleneck, >1.0 when shards fsync concurrently.
	FsyncParallelism float64 `json:"fsync_parallelism"`
}

// ShardCrossPoint is one cross-shard (two-phase) measurement: every
// transaction writes two shards, so each commit pays two prepared WAL
// appends plus the decide-record fsync under the cross-commit lock.
type ShardCrossPoint struct {
	Shards       int     `json:"shards"`
	NsOp         int64   `json:"ns_op"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	CrossCommits int64   `json:"cross_commits"`
}

// benchKVSchema is a single root table with a string primary key and
// no secondary uniques or foreign keys, so routing is pure PK hashing
// and the hot path carries no cross-shard probes — the benchmark
// isolates the commit pipeline, not the constraint checker.
func benchKVSchema() *relational.Schema {
	kv, err := relational.NewTableDef("kv",
		[]relational.Column{
			{Name: "k", Type: relational.TypeString, NotNull: true},
			{Name: "v", Type: relational.TypeString},
		},
		[]string{"k"}, nil)
	if err != nil {
		panic(err)
	}
	s, err := relational.NewSchema(kv)
	if err != nil {
		panic(err)
	}
	return s
}

// pinnedKey deterministically generates a key whose FNV-64a hash (the
// router's hash over the coerced PK EncodeKey form, NUL-terminated)
// lands on the target shard of n, so the workload's shard placement is
// chosen up front rather than discovered during the timed loop.
func pinnedKey(n, target, seq int) string {
	for salt := 0; ; salt++ {
		k := fmt.Sprintf("k%08d-s%d", seq, salt)
		h := fnv.New64a()
		h.Write([]byte(relational.String_(k).EncodeKey()))
		h.Write([]byte{0})
		if int(h.Sum64()%uint64(n)) == target {
			return k
		}
	}
}

// shardBenchCounts is the disjoint sweep; cross-shard points skip 1.
var shardBenchCounts = [...]int{1, 2, 4, 8}

// RunShardBench measures durable apply throughput against sharded
// stores built in fresh temp directories. iters is the total operation
// count per point, rounded down to a multiple of the writer count;
// maxProcs is recorded so readers can judge how much of the speedup is
// I/O overlap versus CPU parallelism.
func RunShardBench(iters, maxProcs int) (*ShardBench, error) {
	// Four writers per shard at the widest point: a lone writer leaves
	// its shard's WAL idle while it prepares the next transaction, so
	// the per-shard fsync streams would run at a duty cycle well below
	// one and understate the overlap the partitioning buys.
	const writers = 32
	perW := iters / writers
	if perW < 1 {
		perW = 1
	}
	ops := perW * writers

	// Parallel synchronous I/O needs a scheduler slot per in-flight
	// fsync: a goroutine returning from the syscall must re-acquire a P
	// before it can issue its shard's next flush, so with fewer Ps than
	// shards the wakeups serialize behind the scheduler and the streams
	// run far below the device's concurrent-flush capacity — even on
	// one core, where the kernel happily time-slices the blocked
	// threads. Raise GOMAXPROCS to cover every stream for the duration
	// of the measurement (ufilterd does the same at -shards startup).
	maxShards := shardBenchCounts[len(shardBenchCounts)-1]
	prevProcs := runtime.GOMAXPROCS(0)
	if prevProcs < maxShards+1 {
		defer runtime.GOMAXPROCS(prevProcs)
		runtime.GOMAXPROCS(maxShards + 1)
	}
	maxProcs = runtime.GOMAXPROCS(0)

	root, err := os.MkdirTemp("", "shardbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	b := &ShardBench{OpsPerPoint: ops, Writers: writers, MaxProcs: maxProcs}
	seq := 0

	runDisjoint := func(n int) (*ShardPoint, error) {
		db, _, err := shard.New(relational.NewDatabase(benchKVSchema()), n, shard.Options{Dir: filepath.Join(root, fmt.Sprintf("d%d", n))})
		if err != nil {
			return nil, err
		}
		defer db.CloseWAL()
		keys := pinKeys(n, writers, perW, &seq, false)
		elapsed, err := runShardWriters(writers, perW, func(w, i int) error {
			txn := db.BeginTxn()
			if _, err := txn.Insert("kv", map[string]relational.Value{
				"k": relational.String_(keys[w][2*i]),
				"v": relational.String_("x"),
			}); err != nil {
				txn.Rollback()
				return err
			}
			return txn.Commit()
		})
		if err != nil {
			return nil, err
		}
		p := &ShardPoint{
			Shards:    n,
			NsOp:      elapsed.Nanoseconds() / int64(ops),
			OpsPerSec: float64(ops) / elapsed.Seconds(),
		}
		for _, ss := range db.ShardStats() {
			p.Fsyncs = append(p.Fsyncs, ss.Fsyncs)
		}
		if wait := db.FsyncHistogram().Sum; wait > 0 && elapsed > 0 {
			p.FsyncParallelism = float64(wait) / float64(elapsed.Nanoseconds())
		}
		return p, nil
	}

	// shards=1 first, from a cold store, before any parallel traffic.
	p1, err := runDisjoint(1)
	if err != nil {
		return nil, err
	}
	b.Disjoint = append(b.Disjoint, *p1)

	// Unsharded parity point immediately after, same serial regime.
	base := relational.NewDatabase(benchKVSchema())
	if _, err := base.OpenWAL(filepath.Join(root, "base"), relational.WALOptions{}); err != nil {
		return nil, err
	}
	baseSeq := seq
	seq += writers * perW
	elapsed, err := runShardWriters(writers, perW, func(w, i int) error {
		txn := base.Begin()
		if _, err := txn.Insert("kv", map[string]relational.Value{
			"k": relational.String_(fmt.Sprintf("b%08d", baseSeq+w*perW+i)),
			"v": relational.String_("x"),
		}); err != nil {
			txn.Rollback()
			return err
		}
		return txn.Commit()
	})
	if err != nil {
		return nil, err
	}
	b.Baseline = float64(ops) / elapsed.Seconds()
	if err := base.CloseWAL(); err != nil {
		return nil, err
	}

	for _, n := range shardBenchCounts[1:] {
		p, err := runDisjoint(n)
		if err != nil {
			return nil, err
		}
		b.Disjoint = append(b.Disjoint, *p)
	}

	// Cross-shard series: every transaction writes shards w%n and
	// (w+1)%n, forcing the two-phase path on every commit.
	for _, n := range shardBenchCounts[1:] {
		db, _, err := shard.New(relational.NewDatabase(benchKVSchema()), n, shard.Options{Dir: filepath.Join(root, fmt.Sprintf("x%d", n))})
		if err != nil {
			return nil, err
		}
		keys := pinKeys(n, writers, perW, &seq, true)
		elapsed, err := runShardWriters(writers, perW, func(w, i int) error {
			txn := db.BeginTxn()
			for _, k := range []string{keys[w][2*i], keys[w][2*i+1]} {
				if _, err := txn.Insert("kv", map[string]relational.Value{
					"k": relational.String_(k),
					"v": relational.String_("x"),
				}); err != nil {
					txn.Rollback()
					return err
				}
			}
			return txn.Commit()
		})
		if err != nil {
			db.CloseWAL()
			return nil, err
		}
		b.Cross = append(b.Cross, ShardCrossPoint{
			Shards:       n,
			NsOp:         elapsed.Nanoseconds() / int64(ops),
			OpsPerSec:    float64(ops) / elapsed.Seconds(),
			CrossCommits: db.CrossCommits(),
		})
		if err := db.CloseWAL(); err != nil {
			return nil, err
		}
	}

	b.SpeedupAt8 = b.Disjoint[len(b.Disjoint)-1].OpsPerSec / b.Disjoint[0].OpsPerSec
	b.ParityAt1 = b.Disjoint[0].OpsPerSec / b.Baseline
	return b, nil
}

// pinKeys precomputes one slice's keys: 2×perW per writer (the cross
// series consumes two per transaction), pinned to writer w's home
// shard w%n, or alternating home/(w+1)%n when paired.
func pinKeys(n, writers, perW int, seq *int, paired bool) [][]string {
	keys := make([][]string, writers)
	for w := range keys {
		keys[w] = make([]string, 2*perW)
		for i := range keys[w] {
			target := w % n
			if paired && i%2 == 1 {
				target = (w + 1) % n
			}
			keys[w][i] = pinnedKey(n, target, *seq)
			*seq++
		}
	}
	return keys
}

// runShardWriters runs writers goroutines of perW synchronous ops each
// and returns the wall-clock time for the whole batch; the first error
// wins and the remaining ops on that writer are abandoned.
func runShardWriters(writers, perW int, op func(w, i int) error) (time.Duration, error) {
	var wg sync.WaitGroup
	errs := make([]error, writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if err := op(w, i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return elapsed, err
		}
	}
	return elapsed, nil
}
