package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/bookdb"
	"repro/internal/obs"
	"repro/internal/relational"
	"repro/internal/ufilter"
)

// obsBenchChunk is the toggling granularity: ONE pipeline runs the
// whole workload, alternating instrumentation off/on every chunk of
// this many operations, and each side's ns/op is the MEDIAN of its
// chunks. The effect being measured — a few hundred nanoseconds of
// instrumentation on operations dominated by a ~70µs group-commit
// apply — is far smaller than the run-to-run noise of this process
// (GC cycles, frequency scaling, allocator layout: two IDENTICAL
// uninstrumented pipelines measured side by side disagree by ±20%),
// so the benchmark never compares two pipelines. Toggling
// DetachObs/AttachObs on one pipeline leaves database, caches, and
// heap shared; alternation decorrelates noise from the toggle parity;
// the median discards the chunks a GC pause landed in.
const obsBenchChunk = 128

// ObsBench records the observability tax the repo's CI tracks
// (BENCH_obs.json): pipeline throughput with the daemon's per-request
// instrumentation policy — latency histogram on every operation, full
// span trace + slow-ring offer on 1-in-8 applies and 1-in-64 checks
// (the sampling rates the server applies; batches and header opt-ins
// always trace) — against the same pipeline with observability detached
// (DetachObs, no trace in the context, no histograms). The mixed point
// models the daemon's steady-state 7:1 check:apply traffic and is the
// one the CI gate holds under ~5% overhead; check-only is the worst
// case (a cached check is ~a map lookup, so even the histogram's two
// clock reads are proportionally large there) and is reported for
// honesty, not gated.
type ObsBench struct {
	// OpsPerPoint is the number of operations measured per side.
	OpsPerPoint int        `json:"ops_per_point"`
	Points      []ObsPoint `json:"points"`
}

// ObsPoint is one workload's instrumented-vs-baseline measurement.
type ObsPoint struct {
	// Workload is "check", "apply", or "mixed" (7:1 check:apply).
	Workload string `json:"workload"`

	BaseNsOp      int64   `json:"base_ns_op"`
	BaseOpsPerSec float64 `json:"base_ops_per_sec"`

	ObsNsOp      int64   `json:"obs_ns_op"`
	ObsOpsPerSec float64 `json:"obs_ops_per_sec"`

	// OverheadPct is the relative slowdown of the instrumented side:
	// the median of per-pair obs/base chunk-time ratios, minus one.
	// Each pair's two chunks run back to back, so a pair's ratio is
	// immune to the machine changing speed across the run (a shared
	// host can halve mid-measurement); the side medians above are not,
	// which is why this is not simply obs_ns_op/base_ns_op. Negative
	// values are noise.
	OverheadPct float64 `json:"overhead_pct"`
}

// obsBenchOp runs operation i of a workload against f: a cached check
// for most iterations and, on the apply share, a fresh conflict-free
// review insert (unique per workload so the workloads never collide on
// a key).
func obsBenchOp(f *ufilter.Filter, ctx context.Context, tag string, i, applyEvery int) error {
	if applyEvery > 0 && i%applyEvery == applyEvery-1 {
		u := fmt.Sprintf(`
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Data on the Web"
UPDATE $book { INSERT <review><reviewid>%s-%d</reviewid><comment>obsbench</comment></review> }`, tag, i)
		res, err := f.ApplyContext(ctx, u)
		if err != nil {
			return err
		}
		if !res.Accepted {
			return fmt.Errorf("apply rejected: %s", res.Reason)
		}
		return nil
	}
	res, err := f.CheckContext(ctx, bookdb.U12)
	if err != nil {
		return err
	}
	if !res.Accepted {
		return fmt.Errorf("check rejected: %s", res.Reason)
	}
	return nil
}

// medianNsOp reduces per-chunk wall times to a per-operation median.
func medianNsOp(chunks []time.Duration) int64 {
	times := append([]time.Duration(nil), chunks...)
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2].Nanoseconds() / obsBenchChunk
}

// RunObsBench measures the instrumentation tax and returns the table
// BENCH_obs.json records.
func RunObsBench(iters int) (*ObsBench, error) {
	if iters <= 0 {
		iters = 10240
	}
	// Whole chunks only: the medians are over equal-sized chunks.
	iters -= iters % obsBenchChunk
	if iters < obsBenchChunk {
		iters = obsBenchChunk
	}
	out := &ObsBench{OpsPerPoint: iters}

	workloads := []struct {
		name       string
		applyEvery int // 0 = never apply, 1 = always, 8 = 7:1 check:apply
	}{
		{"check", 0},
		{"apply", 1},
		{"mixed", 8},
	}
	for _, wl := range workloads {
		db, err := bookdb.NewDatabase(relational.DeleteCascade)
		if err != nil {
			return nil, err
		}
		f, err := ufilter.New(bookdb.ViewQuery, db)
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		// Warm the plan cache outside the measured chunks so the
		// comparison is steady-state, not compile-dominated.
		if err := obsBenchOp(f, ctx, "warm", 0, 0); err != nil {
			return nil, err
		}
		hist := obs.NewDurationHistogram()
		ring := obs.NewSlowRing(32)
		// The sampling rates mirror the daemon's (server.checkTraceSampleEvery
		// and server.applyTraceSampleEvery).
		const (
			checkSampleEvery = 64
			applySampleEvery = 8
		)
		var baseChunks, obsChunks []time.Duration
		var pairRatios []float64
		next := 0
		for chunk := 0; next < 2*iters; chunk++ {
			// ABBA ordering: pair 0 runs base→obs, pair 1 obs→base, …
			// so neither side systematically runs later (warm-up and
			// database growth drift would otherwise bias the pair's
			// second seat).
			pair, seat := chunk/2, chunk%2
			instrumented := seat == 1
			if pair%2 == 1 {
				instrumented = !instrumented
			}
			if instrumented {
				f.AttachObs()
			} else {
				f.DetachObs()
			}
			start := time.Now()
			for j := 0; j < obsBenchChunk; j++ {
				i := next
				next++
				if !instrumented {
					if err := obsBenchOp(f, ctx, wl.name, i, wl.applyEvery); err != nil {
						return nil, err
					}
					continue
				}
				isApply := wl.applyEvery > 0 && i%wl.applyEvery == wl.applyEvery-1
				var traced bool
				if isApply {
					traced = (i/wl.applyEvery)%applySampleEvery == 0
				} else {
					traced = i%checkSampleEvery == 0
				}
				var tr *obs.Trace
				tctx := ctx
				if traced {
					tr = obs.StartTrace(wl.name)
					tctx = obs.WithTrace(ctx, tr)
				}
				opStart := time.Now()
				err := obsBenchOp(f, tctx, wl.name, i, wl.applyEvery)
				hist.RecordDuration(time.Since(opStart))
				if err != nil {
					return nil, err
				}
				if traced {
					tr.Finish()
					ring.Offer(tr.Summary())
				}
			}
			elapsed := time.Since(start)
			if instrumented {
				obsChunks = append(obsChunks, elapsed)
			} else {
				baseChunks = append(baseChunks, elapsed)
			}
			if len(obsChunks) == len(baseChunks) { // pair complete
				b := baseChunks[len(baseChunks)-1]
				o := obsChunks[len(obsChunks)-1]
				if b > 0 {
					pairRatios = append(pairRatios, float64(o)/float64(b))
				}
			}
		}
		f.AttachObs()

		pt := ObsPoint{Workload: wl.name}
		pt.BaseNsOp = medianNsOp(baseChunks)
		pt.BaseOpsPerSec = 1e9 / float64(pt.BaseNsOp)
		pt.ObsNsOp = medianNsOp(obsChunks)
		pt.ObsOpsPerSec = 1e9 / float64(pt.ObsNsOp)
		sort.Float64s(pairRatios)
		if len(pairRatios) > 0 {
			pt.OverheadPct = 100 * (pairRatios[len(pairRatios)/2] - 1)
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}
