package experiments

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bookdb"
	"repro/internal/relational"
	"repro/internal/ufilter"
)

// WriteBench records the parallel-write-path measurement the repo's CI
// tracks (BENCH_write.json): full-pipeline apply throughput at 1/2/4/8
// writer goroutines, on a conflict-free keyspace (every apply inserts
// a distinct review — the disjoint-rows case the paper's pipeline
// makes the common one) and on a deliberately pathological
// high-conflict keyspace (every apply rewrites the same row, so
// first-updater-wins conflicts and retries dominate). Under the MVCC
// write path the conflict-free series should scale with cores — the
// old per-view writer mutex pinned it to one — while the high-conflict
// series must stay correct: every apply either commits whole or
// reports ErrWriteConflict, never a torn state.
type WriteBench struct {
	// OpsPerPoint is the number of applies measured per series point.
	OpsPerPoint int          `json:"ops_per_point"`
	Points      []WritePoint `json:"points"`
	// ConflictFreeSpeedup8x is the conflict-free throughput at 8
	// writers over the single-writer figure — the headline number (>= 2
	// expected on multicore hardware; bounded by GOMAXPROCS).
	ConflictFreeSpeedup8x float64 `json:"conflict_free_speedup_8x"`
	// MaxProcs records the parallelism available to the run, so the
	// speedup can be judged against the hardware.
	MaxProcs int `json:"max_procs"`
}

// WritePoint is one writer-count measurement.
type WritePoint struct {
	Writers int `json:"writers"`

	ConflictFreeNsOp      int64   `json:"conflict_free_ns_op"`
	ConflictFreeOpsPerSec float64 `json:"conflict_free_ops_per_sec"`

	HighConflictNsOp      int64   `json:"high_conflict_ns_op"`
	HighConflictOpsPerSec float64 `json:"high_conflict_ops_per_sec"`
	// Accepted/Conflict409 split the high-conflict applies: committed
	// after retries vs retries exhausted (the gateway's 409 case).
	Accepted    int64 `json:"accepted"`
	Conflict409 int64 `json:"conflict_409"`
	// Conflicts/Retries are the engine's counters for the
	// high-conflict run.
	Conflicts int64 `json:"conflicts"`
	Retries   int64 `json:"retries"`
	// GroupCommits/GroupedTxns report flush coalescing for the
	// conflict-free run (GroupedTxns/GroupCommits > 1 means concurrent
	// commits actually shared flushes).
	GroupCommits int64 `json:"group_commits"`
	GroupedTxns  int64 `json:"grouped_txns"`
}

func writeBenchInsert(writer, i int) string {
	return fmt.Sprintf(`
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Data on the Web"
UPDATE $book { INSERT <review><reviewid>w%d-%d</reviewid><comment>bench</comment></review> }`, writer, i)
}

func writeBenchReplace(i int) string {
	return fmt.Sprintf(`
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Data on the Web"
UPDATE $book { REPLACE $book/price WITH <price>%d.25</price> }`, 10+i%39)
}

func newWriteBenchFilter() (*ufilter.Filter, error) {
	db, err := bookdb.NewDatabase(relational.DeleteCascade)
	if err != nil {
		return nil, err
	}
	return ufilter.New(bookdb.ViewQuery, db)
}

// runWriters splits ops applies across n goroutines, each generating
// its own update text through gen(writer, i), and returns the wall
// time plus how many applies were accepted and how many surfaced
// ErrWriteConflict (any other failure is returned as an error).
func runWriters(f *ufilter.Filter, n, ops int, gen func(writer, i int) string) (time.Duration, int64, int64, error) {
	var wg sync.WaitGroup
	var accepted, conflicted atomic.Int64
	var firstErr atomic.Value
	perWriter := ops / n
	start := time.Now()
	for w := 0; w < n; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				res, err := f.Apply(gen(w, i))
				switch {
				case err == nil && res.Accepted:
					accepted.Add(1)
				case err != nil && errors.Is(err, relational.ErrWriteConflict):
					conflicted.Add(1)
				case err != nil:
					firstErr.Store(err)
					return
				default:
					firstErr.Store(fmt.Errorf("apply rejected: %s", res.Reason))
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return 0, 0, 0, err
	}
	return elapsed, accepted.Load(), conflicted.Load(), nil
}

// RunWriteBench measures apply throughput across writer counts and
// returns the table BENCH_write.json records.
func RunWriteBench(iters int, maxProcs int) (*WriteBench, error) {
	if iters <= 0 {
		iters = 2000
	}
	out := &WriteBench{OpsPerPoint: iters, MaxProcs: maxProcs}
	var base float64
	for _, writers := range []int{1, 2, 4, 8} {
		pt := WritePoint{Writers: writers}
		ops := iters - iters%writers // divide evenly

		// Conflict-free: distinct review keys, same template (the plan
		// cache answers after the first apply).
		f, err := newWriteBenchFilter()
		if err != nil {
			return nil, err
		}
		if _, _, _, err := runWriters(f, 1, writers, func(w, i int) string {
			return fmt.Sprintf(`
FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Data on the Web"
UPDATE $book { INSERT <review><reviewid>warm-%d</reviewid><comment>bench</comment></review> }`, i)
		}); err != nil {
			return nil, err
		}
		elapsed, accepted, conflicted, err := runWriters(f, writers, ops,
			func(w, i int) string { return writeBenchInsert(w, i) })
		if err != nil {
			return nil, err
		}
		if conflicted != 0 {
			return nil, fmt.Errorf("conflict-free series hit %d conflicts", conflicted)
		}
		if accepted != int64(ops) {
			return nil, fmt.Errorf("conflict-free series accepted %d/%d", accepted, ops)
		}
		pt.ConflictFreeNsOp = elapsed.Nanoseconds() / int64(ops)
		pt.ConflictFreeOpsPerSec = float64(ops) / elapsed.Seconds()
		ws := f.WriteStats()
		pt.GroupCommits = ws.GroupCommits
		pt.GroupedTxns = ws.GroupedTxns

		// High-conflict: every apply rewrites the same row.
		f, err = newWriteBenchFilter()
		if err != nil {
			return nil, err
		}
		elapsed, accepted, conflicted, err = runWriters(f, writers, ops,
			func(w, i int) string { return writeBenchReplace(w*iters + i) })
		if err != nil {
			return nil, err
		}
		if accepted+conflicted != int64(ops) {
			return nil, fmt.Errorf("high-conflict series lost applies: %d accepted + %d conflicted != %d",
				accepted, conflicted, ops)
		}
		pt.HighConflictNsOp = elapsed.Nanoseconds() / int64(ops)
		pt.HighConflictOpsPerSec = float64(ops) / elapsed.Seconds()
		pt.Accepted = accepted
		pt.Conflict409 = conflicted
		st := f.Stats()
		pt.Conflicts = st.Database.Conflicts
		pt.Retries = st.Write.Retries

		if writers == 1 {
			base = pt.ConflictFreeOpsPerSec
		}
		if writers == 8 && base > 0 {
			out.ConflictFreeSpeedup8x = pt.ConflictFreeOpsPerSec / base
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}
