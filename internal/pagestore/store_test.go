package pagestore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Store, Recovered) {
	t.Helper()
	s, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, rec
}

func rowsOf(n int, base int64) []InstallRow {
	rows := make([]InstallRow, n)
	for i := range rows {
		rows[i] = InstallRow{
			ID:      base + int64(i),
			Payload: []byte(fmt.Sprintf("payload-%d", base+int64(i))),
			Meta:    []string{fmt.Sprintf("k%d", base+int64(i))},
		}
	}
	return rows
}

func TestStoreInstallReadRecover(t *testing.T) {
	dir := t.TempDir()
	s, rec := mustOpen(t, dir, Options{})
	if rec.Seq != 0 || len(rec.Pages) != 0 {
		t.Fatalf("fresh store not empty: %+v", rec)
	}
	pl, err := s.Install(5, []Install{{Table: "tbl", Rows: rowsOf(300, 0)}}, nil)
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	if len(pl) < 2 {
		t.Fatalf("300 rows should span multiple pages, got %d", len(pl))
	}
	seen := map[int64]bool{}
	for _, p := range pl {
		table, seq, rows, err := s.ReadPage(p.Slot)
		if err != nil {
			t.Fatalf("ReadPage(%d): %v", p.Slot, err)
		}
		if table != "tbl" || seq != 5 {
			t.Fatalf("page self-description wrong: %q/%d", table, seq)
		}
		if len(rows) != len(p.IDs) {
			t.Fatalf("page rows %d != placement ids %d", len(rows), len(p.IDs))
		}
		for i, r := range rows {
			if r.ID != p.IDs[i] {
				t.Fatalf("id order mismatch")
			}
			want := fmt.Sprintf("payload-%d", r.ID)
			if !bytes.Equal(r.Payload, []byte(want)) {
				t.Fatalf("payload mismatch for id %d", r.ID)
			}
			seen[r.ID] = true
		}
	}
	if len(seen) != 300 {
		t.Fatalf("placed %d unique rows, want 300", len(seen))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if rec2.Seq != 5 {
		t.Fatalf("recovered seq %d, want 5", rec2.Seq)
	}
	total := 0
	for _, pi := range rec2.Pages {
		if pi.Table != "tbl" {
			t.Fatalf("recovered table %q", pi.Table)
		}
		for _, r := range pi.Rows {
			if want := fmt.Sprintf("k%d", r.ID); len(r.Meta) != 1 || r.Meta[0] != want {
				t.Fatalf("meta lost for id %d: %v", r.ID, r.Meta)
			}
		}
		total += len(pi.Rows)
	}
	if total != 300 {
		t.Fatalf("recovered %d rows, want 300", total)
	}
}

func TestStoreFreeAndReuse(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	defer s.Close()
	pl, err := s.Install(1, []Install{{Table: "t", Rows: rowsOf(10, 0)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	oldSlot := pl[0].Slot
	// Supersede the page.
	if _, err := s.Install(2, []Install{{Table: "t", Rows: rowsOf(10, 0)}}, []uint32{oldSlot}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.PageRows(oldSlot); ok {
		t.Fatalf("freed slot %d still in directory", oldSlot)
	}
	st := s.Stats()
	if st.FreeSlots != 0 {
		t.Fatalf("slot reusable before Release: %+v", st)
	}
	s.Release([]uint32{oldSlot}, []uint32{1})
	if st := s.Stats(); st.FreeSlots != 1 {
		t.Fatalf("slot not reusable after Release: %+v", st)
	}
	// Next single-page install must reuse it.
	pl3, err := s.Install(3, []Install{{Table: "u", Rows: rowsOf(1, 100)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pl3[0].Slot != oldSlot {
		t.Fatalf("expected reuse of slot %d, got %d", oldSlot, pl3[0].Slot)
	}
}

func TestStoreOversizedRowExtent(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	big := make([]byte, 3*PageSize)
	for i := range big {
		big[i] = byte(i)
	}
	pl, err := s.Install(1, []Install{{Table: "t", Rows: []InstallRow{{ID: 9, Payload: big}}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 1 {
		t.Fatalf("want one extent placement, got %d", len(pl))
	}
	_, _, rows, err := s.ReadPage(pl[0].Slot)
	if err != nil {
		t.Fatalf("ReadPage extent: %v", err)
	}
	if len(rows) != 1 || !bytes.Equal(rows[0].Payload, big) {
		t.Fatalf("extent payload mismatch")
	}
	s.Close()
	s2, rec := mustOpen(t, dir, Options{})
	defer s2.Close()
	if len(rec.Pages) != 1 || rec.Pages[0].Slots < 3 {
		t.Fatalf("extent not recovered: %+v", rec.Pages)
	}
}

func TestStoreTornDirectoryTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if _, err := s.Install(1, []Install{{Table: "t", Rows: rowsOf(5, 0)}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Install(2, []Install{{Table: "t", Rows: rowsOf(5, 100)}}, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear the final directory record mid-frame.
	logPath := filepath.Join(dir, dirLogName(1))
	fi, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2, rec := mustOpen(t, dir, Options{})
	defer s2.Close()
	if rec.Seq != 1 {
		t.Fatalf("torn tail not discarded: seq %d, want 1", rec.Seq)
	}
	ids := map[int64]bool{}
	for _, pi := range rec.Pages {
		for _, r := range pi.Rows {
			ids[r.ID] = true
		}
	}
	if len(ids) != 5 || !ids[0] || ids[100] {
		t.Fatalf("recovered wrong row set: %v", ids)
	}
	// The torn record's heap slots must be free again.
	if st := s2.Stats(); st.FreeSlots == 0 {
		t.Fatalf("orphaned heap slots not reclaimed: %+v", st)
	}
}

func TestStoreBaseCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{DirLogLimit: 2})
	var last []Placement
	var freed []uint32
	for i := 1; i <= 8; i++ {
		var err error
		last, err = s.Install(uint64(i), []Install{{Table: "t", Rows: rowsOf(5, 0)}}, freed)
		if err != nil {
			t.Fatal(err)
		}
		freed = []uint32{last[0].Slot}
	}
	s.compactWG.Wait()
	if err := s.CompactionErr(); err != nil {
		t.Fatalf("compaction error: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, dirBaseName)); err != nil {
		t.Fatalf("base not written: %v", err)
	}
	st := s.Stats()
	if st.DirChainLen > 2 {
		t.Fatalf("chain not folded: %+v", st)
	}
	s.Close()

	s2, rec := mustOpen(t, dir, Options{DirLogLimit: 2})
	defer s2.Close()
	if rec.Seq != 8 {
		t.Fatalf("recovered seq %d, want 8", rec.Seq)
	}
	ids := map[int64]int{}
	for _, pi := range rec.Pages {
		for _, r := range pi.Rows {
			ids[r.ID]++
		}
	}
	for id, n := range ids {
		if n != 1 {
			t.Fatalf("row %d appears %d times after compaction replay", id, n)
		}
	}
	if len(ids) != 5 {
		t.Fatalf("recovered %d rows, want 5", len(ids))
	}
}

func TestStoreEmptyInstallAdvancesSeq(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if _, err := s.Install(7, nil, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, rec := mustOpen(t, dir, Options{})
	defer s2.Close()
	if rec.Seq != 7 {
		t.Fatalf("empty install did not advance seq: %d", rec.Seq)
	}
}

func TestStoreFailpointError(t *testing.T) {
	for _, fp := range []string{fpWrite, fpDirectory} {
		t.Run(fp, func(t *testing.T) {
			dir := t.TempDir()
			fired := 0
			s, _ := mustOpen(t, dir, Options{Failpoint: func(name string) error {
				if name == fp && fired == 0 {
					fired++
					return fmt.Errorf("boom at %s", name)
				}
				return nil
			}})
			if _, err := s.Install(1, []Install{{Table: "t", Rows: rowsOf(3, 0)}}, nil); err == nil {
				t.Fatalf("install should fail at %s", fp)
			}
			if fired == 0 {
				t.Fatalf("failpoint %s never fired", fp)
			}
			// The store must remain usable and the failed install invisible.
			if _, err := s.Install(2, []Install{{Table: "t", Rows: rowsOf(3, 0)}}, nil); err != nil {
				t.Fatalf("install after failed install: %v", err)
			}
			s.Close()
			s2, rec := mustOpen(t, dir, Options{})
			defer s2.Close()
			if rec.Seq != 2 {
				t.Fatalf("recovered seq %d, want 2", rec.Seq)
			}
		})
	}
}
