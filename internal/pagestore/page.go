// Package pagestore implements a copy-on-write slotted-page heap file
// with an append-only page directory and a byte-budgeted buffer pool.
//
// Pages are written once and never patched in place: a checkpoint packs
// row images into fresh pages, installs them with a single directory
// record, and logically frees the pages they supersede. Because the heap
// is write-once, compaction touches only the pages that contain dirty
// rows, and crash recovery is a directory scan — no page needs to be
// read until a row on it is first faulted.
//
// Durability contract (in order): page frames are written and fsynced to
// the heap BEFORE the directory record that references them is appended
// and fsynced. A torn directory tail therefore only ever orphans heap
// slots, which recovery reclassifies as free. Physically reusing a freed
// slot is the caller's responsibility to defer until no reader can still
// hold a reference to the old content (see Store.Release).
package pagestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	// PageSize is the fixed slot size of the heap file. A row set whose
	// encoded payload exceeds one slot occupies a multi-slot extent.
	PageSize = 4096

	// pageFrameHeader is [payloadLen uint32][crc32 uint32], little endian,
	// matching the WAL frame discipline.
	pageFrameHeader = 8

	// maxPagePayload bounds a single page/extent payload. Generous: a row
	// larger than this cannot be stored.
	maxPagePayload = 1 << 28
)

var (
	// ErrCorruptPage reports a CRC or structural failure decoding a page.
	ErrCorruptPage = errors.New("pagestore: corrupt page")
	// ErrCorruptDirectory reports a non-tail corruption in the directory.
	ErrCorruptDirectory = errors.New("pagestore: corrupt directory")
)

var pageCRC = crc32.MakeTable(crc32.Castagnoli)

// PageRow is one row image stored in a page: the row id plus its opaque
// encoded payload (the caller owns the value encoding).
type PageRow struct {
	ID      int64
	Payload []byte
}

// encodePage builds the frame (header + payload) for one page holding
// rows of a single table. seq is the checkpoint sequence that wrote it.
// The page self-describes (table name + row ids) so a stale read of a
// reused slot is detectable by the caller.
func encodePage(table string, seq uint64, rows []PageRow) []byte {
	n := pageFrameHeader + binary.MaxVarintLen64*3 + len(table)
	for _, r := range rows {
		n += 2*binary.MaxVarintLen64 + len(r.Payload)
	}
	buf := make([]byte, pageFrameHeader, n)
	buf = binary.AppendUvarint(buf, uint64(len(table)))
	buf = append(buf, table...)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	for _, r := range rows {
		buf = binary.AppendUvarint(buf, uint64(r.ID))
		buf = binary.AppendUvarint(buf, uint64(len(r.Payload)))
		buf = append(buf, r.Payload...)
	}
	payload := buf[pageFrameHeader:]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, pageCRC))
	return buf
}

// frameSlots reports how many heap slots a frame of len(frame) bytes
// occupies.
func frameSlots(frameLen int) uint32 {
	return uint32((frameLen + PageSize - 1) / PageSize)
}

// decodePage parses a page payload (the bytes after the frame header,
// CRC already verified). It never panics on arbitrary input.
func decodePage(payload []byte) (table string, seq uint64, rows []PageRow, err error) {
	rd := payload
	tl, n := binary.Uvarint(rd)
	if n <= 0 || tl > uint64(len(rd)-n) {
		return "", 0, nil, fmt.Errorf("%w: bad table length", ErrCorruptPage)
	}
	rd = rd[n:]
	table = string(rd[:tl])
	rd = rd[tl:]
	seq, n = binary.Uvarint(rd)
	if n <= 0 {
		return "", 0, nil, fmt.Errorf("%w: bad seq", ErrCorruptPage)
	}
	rd = rd[n:]
	nrows, n := binary.Uvarint(rd)
	if n <= 0 || nrows > uint64(len(rd)) {
		return "", 0, nil, fmt.Errorf("%w: bad row count", ErrCorruptPage)
	}
	rd = rd[n:]
	rows = make([]PageRow, 0, nrows)
	for i := uint64(0); i < nrows; i++ {
		id, n := binary.Uvarint(rd)
		if n <= 0 {
			return "", 0, nil, fmt.Errorf("%w: bad row id", ErrCorruptPage)
		}
		rd = rd[n:]
		pl, n := binary.Uvarint(rd)
		if n <= 0 || pl > uint64(len(rd)-n) {
			return "", 0, nil, fmt.Errorf("%w: bad row payload length", ErrCorruptPage)
		}
		rd = rd[n:]
		rows = append(rows, PageRow{ID: int64(id), Payload: rd[:pl:pl]})
		rd = rd[pl:]
	}
	return table, seq, rows, nil
}

// decodePageFrame verifies the frame header + CRC of buf (which must
// start at a slot boundary and contain the whole frame) and decodes it.
func decodePageFrame(buf []byte) (table string, seq uint64, rows []PageRow, err error) {
	if len(buf) < pageFrameHeader {
		return "", 0, nil, fmt.Errorf("%w: short frame", ErrCorruptPage)
	}
	plen := binary.LittleEndian.Uint32(buf[0:4])
	if plen > maxPagePayload || int(plen) > len(buf)-pageFrameHeader {
		return "", 0, nil, fmt.Errorf("%w: bad frame length %d", ErrCorruptPage, plen)
	}
	payload := buf[pageFrameHeader : pageFrameHeader+int(plen)]
	if crc32.Checksum(payload, pageCRC) != binary.LittleEndian.Uint32(buf[4:8]) {
		return "", 0, nil, fmt.Errorf("%w: crc mismatch", ErrCorruptPage)
	}
	return decodePage(payload)
}
