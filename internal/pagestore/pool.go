package pagestore

import (
	"sync"
	"sync/atomic"
)

// Pool is a byte-budgeted buffer pool of decoded pages keyed by heap
// slot, with CLOCK (second-chance) eviction and pin/unpin refcounts.
// The cached value is opaque to the pool; the loader supplies it along
// with its resident byte size. Values handed out by Get remain valid
// after eviction (the pool never mutates or recycles them), so callers
// may hold them without keeping the pin.
type Pool struct {
	budget int64

	mu     sync.Mutex
	frames map[uint32]*poolFrame
	ring   []uint32 // CLOCK ring of resident slots
	hand   int
	size   int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type poolFrame struct {
	val    any
	size   int64
	pins   int
	ref    bool // CLOCK reference bit
	loaded bool
	gone   bool // invalidated while loading
	err    error
	ready  chan struct{}
}

// NewPool builds a pool with the given byte budget. A budget <= 0 means
// a single-frame pool (every miss evicts the previous page): the
// smallest configuration that still serves faults.
func NewPool(budget int64) *Pool {
	return &Pool{budget: budget, frames: make(map[uint32]*poolFrame)}
}

// PoolStats is a point-in-time snapshot of pool counters.
type PoolStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Resident  int64 // bytes currently cached
	Frames    int   // pages currently cached
}

// Stats returns the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	resident, frames := p.size, len(p.frames)
	p.mu.Unlock()
	return PoolStats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Evictions: p.evictions.Load(),
		Resident:  resident,
		Frames:    frames,
	}
}

// Get returns the cached value for slot, loading it via load on a miss.
// Concurrent misses on the same slot are coalesced: one caller loads,
// the rest wait. The returned release func unpins the frame; it must be
// called exactly once (the value itself stays usable afterwards).
func (p *Pool) Get(slot uint32, load func() (any, int64, error)) (any, func(), error) {
	for {
		p.mu.Lock()
		f := p.frames[slot]
		if f == nil {
			f = &poolFrame{pins: 1, ready: make(chan struct{})}
			p.frames[slot] = f
			p.mu.Unlock()

			val, size, err := load()

			p.mu.Lock()
			if err != nil {
				f.err = err
				if p.frames[slot] == f {
					delete(p.frames, slot)
				}
				close(f.ready)
				p.mu.Unlock()
				return nil, nil, err
			}
			f.val, f.size, f.loaded = val, size, true
			p.misses.Add(1)
			if f.gone {
				// Invalidated mid-load: hand the value to this caller but
				// do not cache it.
				close(f.ready)
				p.mu.Unlock()
				return val, func() {}, nil
			}
			p.size += size
			p.ring = append(p.ring, slot)
			f.ref = true
			close(f.ready)
			p.evictLocked()
			p.mu.Unlock()
			return val, p.releaseFunc(slot, f), nil
		}
		if !f.loaded && f.err == nil {
			ready := f.ready
			p.mu.Unlock()
			<-ready
			continue // reinspect: the load may have failed or been invalidated
		}
		if f.err != nil || f.gone {
			p.mu.Unlock()
			continue
		}
		f.pins++
		f.ref = true
		p.hits.Add(1)
		p.mu.Unlock()
		return f.val, p.releaseFunc(slot, f), nil
	}
}

func (p *Pool) releaseFunc(slot uint32, f *poolFrame) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			f.pins--
			p.evictLocked()
			p.mu.Unlock()
		})
	}
}

// Invalidate drops the given slots from the pool (used when a checkpoint
// frees the pages they cache). Pinned frames are dropped from the map —
// current holders keep their values — and their size is released when
// unpinned via the frame's gone flag.
func (p *Pool) Invalidate(slots []uint32) {
	if len(slots) == 0 {
		return
	}
	p.mu.Lock()
	for _, s := range slots {
		f := p.frames[s]
		if f == nil {
			continue
		}
		delete(p.frames, s)
		if f.loaded && !f.gone {
			p.size -= f.size
		}
		f.gone = true
	}
	p.compactRingLocked()
	p.mu.Unlock()
}

// evictLocked advances the CLOCK hand until the pool is within budget,
// skipping pinned frames. Requires p.mu held.
func (p *Pool) evictLocked() {
	if p.size <= p.budget || len(p.ring) == 0 {
		return
	}
	// Bound the sweep: with every frame pinned or referenced we make at
	// most two full revolutions before giving up (over budget but safe).
	for spins := 0; p.size > p.budget && spins < 2*len(p.ring); spins++ {
		if len(p.ring) == 0 {
			return
		}
		if p.hand >= len(p.ring) {
			p.hand = 0
		}
		slot := p.ring[p.hand]
		f := p.frames[slot]
		if f == nil || f.gone || !f.loaded {
			// Stale ring entry (invalidated): drop it in place.
			p.ring[p.hand] = p.ring[len(p.ring)-1]
			p.ring = p.ring[:len(p.ring)-1]
			continue
		}
		if f.pins > 0 {
			p.hand++
			continue
		}
		if f.ref {
			f.ref = false
			p.hand++
			continue
		}
		delete(p.frames, slot)
		p.size -= f.size
		p.evictions.Add(1)
		p.ring[p.hand] = p.ring[len(p.ring)-1]
		p.ring = p.ring[:len(p.ring)-1]
	}
}

// compactRingLocked removes ring entries whose frames are gone.
func (p *Pool) compactRingLocked() {
	out := p.ring[:0]
	for _, s := range p.ring {
		if f := p.frames[s]; f != nil && f.loaded && !f.gone {
			out = append(out, s)
		}
	}
	p.ring = out
	if p.hand > len(p.ring) {
		p.hand = 0
	}
}
