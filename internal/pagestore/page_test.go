package pagestore

import (
	"bytes"
	"fmt"
	"testing"
)

func TestPageRoundTrip(t *testing.T) {
	rows := []PageRow{
		{ID: 1, Payload: []byte("hello")},
		{ID: 7, Payload: nil},
		{ID: 1 << 40, Payload: bytes.Repeat([]byte{0xab}, 900)},
	}
	frame := encodePage("users", 42, rows)
	table, seq, got, err := decodePageFrame(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if table != "users" || seq != 42 {
		t.Fatalf("got table=%q seq=%d", table, seq)
	}
	if len(got) != len(rows) {
		t.Fatalf("got %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		if got[i].ID != rows[i].ID || !bytes.Equal(got[i].Payload, rows[i].Payload) {
			t.Fatalf("row %d mismatch: %v vs %v", i, got[i], rows[i])
		}
	}
}

func TestPageDecodeRejectsCorruption(t *testing.T) {
	frame := encodePage("t", 1, []PageRow{{ID: 5, Payload: []byte("x")}})
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, _, _, err := decodePageFrame(bad); err == nil {
			// Flipping a payload bit must fail CRC; flipping the stored
			// CRC or length must fail framing. Every single-bit flip is
			// detectable.
			t.Fatalf("corruption at byte %d not detected", i)
		}
	}
}

func TestFrameSlots(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want uint32
	}{{1, 1}, {PageSize, 1}, {PageSize + 1, 2}, {3 * PageSize, 3}} {
		if got := frameSlots(tc.n); got != tc.want {
			t.Fatalf("frameSlots(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func FuzzPageDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodePage("t", 3, []PageRow{{ID: 1, Payload: []byte("abc")}}))
	f.Add(encodePage("", 0, nil))
	big := make([]PageRow, 50)
	for i := range big {
		big[i] = PageRow{ID: int64(i), Payload: []byte(fmt.Sprintf("row-%d", i))}
	}
	f.Add(encodePage("many", 9, big))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes must never panic.
		table, seq, rows, err := decodePageFrame(data)
		if err != nil {
			return
		}
		// A successfully decoded frame must re-encode to an equivalent
		// decodable frame (round-trip stability).
		frame2 := encodePage(table, seq, rows)
		t2, s2, rows2, err := decodePageFrame(frame2)
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if t2 != table || s2 != seq || len(rows2) != len(rows) {
			t.Fatalf("round-trip mismatch: %q/%d/%d vs %q/%d/%d", t2, s2, len(rows2), table, seq, len(rows))
		}
		for i := range rows {
			if rows2[i].ID != rows[i].ID || !bytes.Equal(rows2[i].Payload, rows[i].Payload) {
				t.Fatalf("row %d mismatch after round-trip", i)
			}
		}
	})
}
