package pagestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

const (
	heapFileName = "heap.pg"
	dirBaseName  = "pagedir.base"
	dirTmpName   = "pagedir.tmp"
	dirLogPrefix = "pagedir-"
	dirLogSuffix = ".log"

	dirRecInstall = 'I'
	dirRecBase    = 'B'

	// maxDirRecord bounds one directory frame.
	maxDirRecord = 1 << 30

	defaultDirLogLimit = 8
)

// Failpoint names fired through Options.Failpoint.
const (
	fpWrite     = "pagestore.write"     // before each heap page write
	fpDirectory = "pagestore.directory" // before each directory append
	fpCompact   = "compact.page"        // in the async base-compaction goroutine
	fpRename    = "checkpoint.rename"   // before renaming the compacted base
	fpTrigger   = "checkpoint.compact"  // when base compaction is triggered
)

// Options configures a Store.
type Options struct {
	// DirLogLimit is the number of directory install records tolerated
	// beyond the base before an asynchronous base compaction folds them.
	// 0 means the default (8); negative means compact after every record.
	DirLogLimit int
	// Failpoint, if set, is consulted before each write-path step with a
	// failpoint name; a non-nil error aborts the step. Used to wire the
	// store into the crash-injection harness.
	Failpoint func(name string) error
}

// RowRef identifies one row recorded in the page directory: its id plus
// opaque per-row metadata strings persisted alongside (the caller uses
// them to rebuild secondary indexes at recovery without reading pages).
type RowRef struct {
	ID   int64
	Meta []string
}

// PageInfo describes one live page of the recovered (or current) table.
type PageInfo struct {
	Slot  uint32
	Slots uint32
	Seq   uint64
	Table string
	Rows  []RowRef
}

// Recovered reports the state mapped from the directory at Open.
type Recovered struct {
	// Seq is the latest checkpoint sequence durably installed.
	Seq uint64
	// Records is the number of directory install records applied (base
	// counts as one).
	Records int
	// Pages is the live page table, ascending by slot.
	Pages []PageInfo
}

// InstallRow is one row image to place during Install.
type InstallRow struct {
	ID      int64
	Payload []byte
	Meta    []string
}

// Install is the set of row images of one table to pack into fresh pages.
type Install struct {
	Table string
	Rows  []InstallRow
}

// Placement reports where Install put rows: one entry per page written.
type Placement struct {
	Table string
	Slot  uint32
	IDs   []int64
}

type pageEntry struct {
	slots uint32
	seq   uint64
	table string
	rows  []RowRef
}

// Store is the paged checkpoint storage: a write-once heap of 4KiB page
// slots plus an append-only directory that maps the live page set.
// Install (checkpoint) and Release are serialized by the caller;
// ReadPage is safe concurrently with everything.
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	heap      *os.File
	heapSlots uint32
	free      []uint32
	pages     map[uint32]*pageEntry
	logF      *os.File
	logIndex  uint64
	recID     uint64
	recsSince int // install records since the durable base
	baseBusy  bool
	closed    bool

	compactWG   sync.WaitGroup
	pagesEver   atomic.Uint64 // cumulative pages written by Install
	compactErrV atomic.Value  // last async compaction error (error)
}

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	PagesTotal   uint64 // live pages in the directory
	SlotsTotal   uint64 // heap slots ever allocated (heap size / PageSize)
	FreeSlots    uint64 // slots available for reuse
	PagesWritten uint64 // cumulative pages written by checkpoints
	DirChainLen  uint64 // install records since the last durable base
}

func (s *Store) fp(name string) error {
	if s.opts.Failpoint == nil {
		return nil
	}
	return s.opts.Failpoint(name)
}

func dirLogName(index uint64) string {
	return fmt.Sprintf("%s%010d%s", dirLogPrefix, index, dirLogSuffix)
}

func parseDirLogIndex(name string) (uint64, bool) {
	if !strings.HasPrefix(name, dirLogPrefix) || !strings.HasSuffix(name, dirLogSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, dirLogPrefix), dirLogSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Open maps the page directory under dir (creating an empty store on
// first use) and returns the live page table. No heap page is read:
// recovery cost is proportional to the directory, not the data.
func Open(dir string, opts Options) (*Store, Recovered, error) {
	if opts.DirLogLimit == 0 {
		opts.DirLogLimit = defaultDirLogLimit
	}
	s := &Store{dir: dir, opts: opts, pages: make(map[uint32]*pageEntry)}

	heap, err := os.OpenFile(filepath.Join(dir, heapFileName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Recovered{}, err
	}
	s.heap = heap
	hs, err := heap.Stat()
	if err != nil {
		heap.Close()
		return nil, Recovered{}, err
	}
	// Round up: a torn tail page occupies its slots; they are free
	// (unreferenced) and will be rewritten whole.
	s.heapSlots = uint32((hs.Size() + PageSize - 1) / PageSize)

	rec, err := s.recover()
	if err != nil {
		heap.Close()
		return nil, Recovered{}, err
	}
	return s, rec, nil
}

// recover reads the base + log segments, builds the page table and free
// list, and opens the active log segment.
func (s *Store) recover() (Recovered, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return Recovered{}, err
	}
	var logs []uint64
	haveBase := false
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch {
		case e.Name() == dirBaseName:
			haveBase = true
		case e.Name() == dirTmpName:
			// Torn base compaction: discard.
			os.Remove(filepath.Join(s.dir, dirTmpName))
		default:
			if idx, ok := parseDirLogIndex(e.Name()); ok {
				logs = append(logs, idx)
			}
		}
	}
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })

	var rec Recovered
	watermark := uint64(0)
	if haveBase {
		w, err := s.applyDirFile(filepath.Join(s.dir, dirBaseName), 0, &rec, true)
		if err != nil {
			return Recovered{}, err
		}
		watermark = w
		rec.Records++
	}
	for i, idx := range logs {
		tail := i == len(logs)-1
		if _, err := s.applyDirFile(filepath.Join(s.dir, dirLogName(idx)), watermark, &rec, tail); err != nil {
			return Recovered{}, err
		}
	}

	// Free list: every slot below the allocation high-water mark that no
	// live page references.
	used := make(map[uint32]bool, len(s.pages))
	maxSlot := uint32(0)
	for slot, pe := range s.pages {
		for i := uint32(0); i < pe.slots; i++ {
			used[slot+i] = true
		}
		if slot+pe.slots > maxSlot {
			maxSlot = slot + pe.slots
		}
	}
	if maxSlot > s.heapSlots {
		// Directory references beyond the heap: corrupt.
		return Recovered{}, fmt.Errorf("%w: directory references slot %d beyond heap end %d",
			ErrCorruptDirectory, maxSlot, s.heapSlots)
	}
	for i := uint32(0); i < s.heapSlots; i++ {
		if !used[i] {
			s.free = append(s.free, i)
		}
	}

	// Open the active log segment (a fresh one past the highest seen).
	next := uint64(1)
	if len(logs) > 0 {
		next = logs[len(logs)-1] + 1
	}
	if err := s.openLogSegment(next); err != nil {
		return Recovered{}, err
	}

	rec.Pages = s.pageInfosLocked()
	return rec, nil
}

func (s *Store) openLogSegment(index uint64) error {
	f, err := os.OpenFile(filepath.Join(s.dir, dirLogName(index)), os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	if s.logF != nil {
		s.logF.Close()
	}
	s.logF = f
	s.logIndex = index
	return nil
}

// applyDirFile scans one directory file (base or log segment), applying
// records with recID > watermark. For the base it returns the folded
// watermark. tolerateTail permits a torn final record, which is
// truncated away.
func (s *Store) applyDirFile(path string, watermark uint64, rec *Recovered, tolerateTail bool) (uint64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	var off int64
	hdr := make([]byte, pageFrameHeader)
	baseWatermark := uint64(0)
	for {
		_, err := io.ReadFull(f, hdr)
		if err == io.EOF {
			return baseWatermark, nil
		}
		if err == io.ErrUnexpectedEOF {
			if tolerateTail {
				return baseWatermark, truncateAt(f, off)
			}
			return 0, fmt.Errorf("%w: short header in %s", ErrCorruptDirectory, filepath.Base(path))
		}
		if err != nil {
			return 0, err
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		if plen == 0 || plen > maxDirRecord {
			if tolerateTail {
				return baseWatermark, truncateAt(f, off)
			}
			return 0, fmt.Errorf("%w: bad record length %d in %s", ErrCorruptDirectory, plen, filepath.Base(path))
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(f, payload); err != nil {
			if (err == io.ErrUnexpectedEOF || err == io.EOF) && tolerateTail {
				return baseWatermark, truncateAt(f, off)
			}
			return 0, err
		}
		if crc32.Checksum(payload, pageCRC) != binary.LittleEndian.Uint32(hdr[4:8]) {
			if tolerateTail {
				return baseWatermark, truncateAt(f, off)
			}
			return 0, fmt.Errorf("%w: crc mismatch in %s", ErrCorruptDirectory, filepath.Base(path))
		}
		// A CRC-valid record that fails to decode is corruption, not a
		// torn tail: never tolerated.
		w, err := s.applyDirRecord(payload, watermark, rec)
		if err != nil {
			return 0, err
		}
		if w > baseWatermark {
			baseWatermark = w
		}
		off += int64(pageFrameHeader) + int64(plen)
	}
}

func truncateAt(f *os.File, off int64) error {
	if err := f.Truncate(off); err != nil {
		return err
	}
	return f.Sync()
}

// applyDirRecord decodes and applies one record payload. For base
// records it returns the folded watermark.
func (s *Store) applyDirRecord(payload []byte, watermark uint64, rec *Recovered) (uint64, error) {
	if len(payload) == 0 {
		return 0, ErrCorruptDirectory
	}
	kind := payload[0]
	rd := payload[1:]
	switch kind {
	case dirRecBase:
		w, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, ErrCorruptDirectory
		}
		rd = rd[n:]
		seq, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, ErrCorruptDirectory
		}
		rd = rd[n:]
		if err := s.applyPages(rd, nil); err != nil {
			return 0, err
		}
		if seq > rec.Seq {
			rec.Seq = seq
		}
		if w > s.recID {
			s.recID = w
		}
		return w, nil
	case dirRecInstall:
		id, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, ErrCorruptDirectory
		}
		rd = rd[n:]
		seq, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, ErrCorruptDirectory
		}
		rd = rd[n:]
		if id <= watermark {
			return 0, nil // folded into the base already
		}
		var freed []uint32
		if err := s.applyPages(rd, &freed); err != nil {
			return 0, err
		}
		for _, slot := range freed {
			delete(s.pages, slot)
		}
		if seq > rec.Seq {
			rec.Seq = seq
		}
		if id > s.recID {
			s.recID = id
		}
		rec.Records++
		s.recsSince++
		return 0, nil
	default:
		return 0, fmt.Errorf("%w: unknown record kind %q", ErrCorruptDirectory, kind)
	}
}

// applyPages decodes the shared page-list encoding: npages, then per
// page slot/nslots/seq/table/rows. If freedOut is non-nil it also
// decodes the trailing freed-slot list.
func (s *Store) applyPages(rd []byte, freedOut *[]uint32) error {
	npages, n := binary.Uvarint(rd)
	if n <= 0 || npages > uint64(len(rd)) {
		return ErrCorruptDirectory
	}
	rd = rd[n:]
	for i := uint64(0); i < npages; i++ {
		var pe pageEntry
		slot, n := binary.Uvarint(rd)
		if n <= 0 {
			return ErrCorruptDirectory
		}
		rd = rd[n:]
		nslots, n := binary.Uvarint(rd)
		if n <= 0 || nslots == 0 {
			return ErrCorruptDirectory
		}
		rd = rd[n:]
		pe.slots = uint32(nslots)
		seq, n := binary.Uvarint(rd)
		if n <= 0 {
			return ErrCorruptDirectory
		}
		rd = rd[n:]
		pe.seq = seq
		tl, n := binary.Uvarint(rd)
		if n <= 0 || tl > uint64(len(rd)-n) {
			return ErrCorruptDirectory
		}
		rd = rd[n:]
		pe.table = string(rd[:tl])
		rd = rd[tl:]
		nrows, n := binary.Uvarint(rd)
		if n <= 0 || nrows > uint64(len(rd)) {
			return ErrCorruptDirectory
		}
		rd = rd[n:]
		pe.rows = make([]RowRef, 0, nrows)
		for j := uint64(0); j < nrows; j++ {
			id, n := binary.Uvarint(rd)
			if n <= 0 {
				return ErrCorruptDirectory
			}
			rd = rd[n:]
			nmeta, n := binary.Uvarint(rd)
			if n <= 0 || nmeta > uint64(len(rd)) {
				return ErrCorruptDirectory
			}
			rd = rd[n:]
			meta := make([]string, 0, nmeta)
			for k := uint64(0); k < nmeta; k++ {
				ml, n := binary.Uvarint(rd)
				if n <= 0 || ml > uint64(len(rd)-n) {
					return ErrCorruptDirectory
				}
				rd = rd[n:]
				meta = append(meta, string(rd[:ml]))
				rd = rd[ml:]
			}
			pe.rows = append(pe.rows, RowRef{ID: int64(id), Meta: meta})
		}
		s.pages[uint32(slot)] = &pe
	}
	if freedOut != nil {
		nf, n := binary.Uvarint(rd)
		if n <= 0 || nf > uint64(len(rd)) {
			return ErrCorruptDirectory
		}
		rd = rd[n:]
		for i := uint64(0); i < nf; i++ {
			slot, n := binary.Uvarint(rd)
			if n <= 0 {
				return ErrCorruptDirectory
			}
			rd = rd[n:]
			*freedOut = append(*freedOut, uint32(slot))
		}
	}
	return nil
}

func (s *Store) pageInfosLocked() []PageInfo {
	infos := make([]PageInfo, 0, len(s.pages))
	for slot, pe := range s.pages {
		infos = append(infos, PageInfo{Slot: slot, Slots: pe.slots, Seq: pe.seq, Table: pe.table, Rows: pe.rows})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Slot < infos[j].Slot })
	return infos
}

// PageRows returns the directory row refs of a live page.
func (s *Store) PageRows(slot uint32) ([]RowRef, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pe, ok := s.pages[slot]
	if !ok {
		return nil, false
	}
	return pe.rows, true
}

// Stats returns store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		PagesTotal:   uint64(len(s.pages)),
		SlotsTotal:   uint64(s.heapSlots),
		FreeSlots:    uint64(len(s.free)),
		PagesWritten: s.pagesEver.Load(),
		DirChainLen:  uint64(s.recsSince),
	}
}

// CompactionErr returns the last asynchronous base-compaction error, if
// any (diagnostic only: a failed compaction leaves the previous base and
// log segments intact).
func (s *Store) CompactionErr() error {
	if e, ok := s.compactErrV.Load().(error); ok {
		return e
	}
	return nil
}

// Close waits for any in-flight base compaction and closes the files.
func (s *Store) Close() error {
	s.compactWG.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if s.logF != nil {
		if err := s.logF.Close(); err != nil {
			first = err
		}
	}
	if err := s.heap.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Install writes the given row sets to fresh copy-on-write pages, then
// durably appends one directory record installing them and logically
// freeing the superseded slots. On return the heap and directory are
// fsynced. Freed slots are NOT immediately reusable — the caller calls
// Release once no reader can hold a reference to their old content.
//
// Durability order: heap writes + heap fsync happen strictly before the
// directory append + fsync, so a crash between the two only orphans
// fresh slots (recovered as free).
func (s *Store) Install(seq uint64, installs []Install, freed []uint32) ([]Placement, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, os.ErrClosed
	}

	// Pack rows into pages and allocate slots.
	type pendingPage struct {
		slot  uint32
		frame []byte
		entry *pageEntry
		ids   []int64
	}
	var pending []pendingPage
	var placements []Placement
	// Track allocations so a failed install leaks nothing logically: the
	// directory never references them, and the slots return to the free
	// list (single pages) or stay orphaned until next recovery (extents).
	allocSingle := func() uint32 {
		if n := len(s.free); n > 0 {
			slot := s.free[n-1]
			s.free = s.free[:n-1]
			return slot
		}
		slot := s.heapSlots
		s.heapSlots++
		return slot
	}
	undoAlloc := func() {
		for _, pp := range pending {
			if frameSlots(len(pp.frame)) == 1 {
				s.free = append(s.free, pp.slot)
			}
		}
	}

	const capacity = PageSize - pageFrameHeader
	for _, ins := range installs {
		var cur []PageRow
		curBytes := 0
		overhead := 3*binary.MaxVarintLen64 + len(ins.Table)
		var curRefs []RowRef
		flush := func() {
			if len(cur) == 0 {
				return
			}
			frame := encodePage(ins.Table, seq, cur)
			nslots := frameSlots(len(frame))
			var slot uint32
			if nslots == 1 {
				slot = allocSingle()
			} else {
				// Extents are always appended at the heap end.
				slot = s.heapSlots
				s.heapSlots += nslots
			}
			ids := make([]int64, len(cur))
			for i, r := range cur {
				ids[i] = r.ID
			}
			pending = append(pending, pendingPage{
				slot:  slot,
				frame: frame,
				entry: &pageEntry{slots: nslots, seq: seq, table: ins.Table, rows: curRefs},
				ids:   ids,
			})
			placements = append(placements, Placement{Table: ins.Table, Slot: slot, IDs: ids})
			cur, curBytes, curRefs = nil, 0, nil
		}
		for _, r := range ins.Rows {
			rowBytes := 2*binary.MaxVarintLen64 + len(r.Payload)
			if curBytes > 0 && overhead+curBytes+rowBytes > capacity {
				flush()
			}
			cur = append(cur, PageRow{ID: r.ID, Payload: r.Payload})
			curRefs = append(curRefs, RowRef{ID: r.ID, Meta: r.Meta})
			curBytes += rowBytes
			if overhead+curBytes > capacity {
				// Oversized single row: its own extent.
				flush()
			}
		}
		flush()
	}

	// Pad every frame to its slot boundary so the heap stays slot-aligned
	// and reads never cross into a short tail.
	for i := range pending {
		want := int(frameSlots(len(pending[i].frame))) * PageSize
		if len(pending[i].frame) < want {
			padded := make([]byte, want)
			copy(padded, pending[i].frame)
			pending[i].frame = padded
		}
	}

	// Phase 1: heap writes, then one heap fsync.
	for _, pp := range pending {
		if err := s.fp(fpWrite); err != nil {
			undoAlloc()
			return nil, err
		}
		if _, err := s.heap.WriteAt(pp.frame, int64(pp.slot)*PageSize); err != nil {
			undoAlloc()
			return nil, err
		}
	}
	if len(pending) > 0 {
		if err := s.heap.Sync(); err != nil {
			undoAlloc()
			return nil, err
		}
	}

	// Phase 2: one durable directory record.
	infos := make([]PageInfo, 0, len(pending))
	for _, pp := range pending {
		infos = append(infos, PageInfo{
			Slot: pp.slot, Slots: pp.entry.slots, Seq: pp.entry.seq,
			Table: pp.entry.table, Rows: pp.entry.rows,
		})
	}
	s.recID++
	recPayload := encodeInstallRecord(s.recID, seq, infos, freed)
	if err := s.fp(fpDirectory); err != nil {
		undoAlloc()
		s.recID--
		return nil, err
	}
	if err := s.appendDirRecord(recPayload); err != nil {
		undoAlloc()
		s.recID--
		return nil, err
	}

	// Phase 3: apply in memory.
	for _, pp := range pending {
		s.pages[pp.slot] = pp.entry
	}
	for _, slot := range freed {
		delete(s.pages, slot)
	}
	s.pagesEver.Add(uint64(len(pending)))
	s.recsSince++
	s.maybeCompactLocked()
	return placements, nil
}

// Release returns logically-freed slots to the reuse free list. Call
// only once no reader can still reference the slots' old content (e.g.
// after the MVCC visibility horizon passes the freeing checkpoint).
// Freed extents are split into single reusable slots.
func (s *Store) Release(slots []uint32, slotCounts []uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, slot := range slots {
		n := uint32(1)
		if i < len(slotCounts) && slotCounts[i] > 0 {
			n = slotCounts[i]
		}
		for j := uint32(0); j < n; j++ {
			s.free = append(s.free, slot+j)
		}
	}
}

// PageSlots returns the extent length of a live page.
func (s *Store) PageSlots(slot uint32) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if pe, ok := s.pages[slot]; ok {
		return pe.slots
	}
	return 1
}

// appendDirRecord frames and durably appends one record to the active
// log segment.
func (s *Store) appendDirRecord(payload []byte) error {
	frame := make([]byte, pageFrameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, pageCRC))
	copy(frame[pageFrameHeader:], payload)
	if _, err := s.logF.Write(frame); err != nil {
		return err
	}
	return s.logF.Sync()
}

func encodeInstallRecord(recID, seq uint64, pages []PageInfo, freed []uint32) []byte {
	buf := []byte{dirRecInstall}
	buf = binary.AppendUvarint(buf, recID)
	buf = binary.AppendUvarint(buf, seq)
	buf = appendPageList(buf, pages)
	buf = binary.AppendUvarint(buf, uint64(len(freed)))
	for _, slot := range freed {
		buf = binary.AppendUvarint(buf, uint64(slot))
	}
	return buf
}

func appendPageList(buf []byte, pages []PageInfo) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(pages)))
	for _, pi := range pages {
		buf = binary.AppendUvarint(buf, uint64(pi.Slot))
		buf = binary.AppendUvarint(buf, uint64(pi.Slots))
		buf = binary.AppendUvarint(buf, pi.Seq)
		buf = binary.AppendUvarint(buf, uint64(len(pi.Table)))
		buf = append(buf, pi.Table...)
		buf = binary.AppendUvarint(buf, uint64(len(pi.Rows)))
		for _, r := range pi.Rows {
			buf = binary.AppendUvarint(buf, uint64(r.ID))
			buf = binary.AppendUvarint(buf, uint64(len(r.Meta)))
			for _, m := range r.Meta {
				buf = binary.AppendUvarint(buf, uint64(len(m)))
				buf = append(buf, m...)
			}
		}
	}
	return buf
}

// maybeCompactLocked kicks an asynchronous base compaction when the
// install-record chain exceeds the limit. The checkpoint pause never
// pays for it: the page-table snapshot is taken under the lock (cheap —
// row slices are immutable and shared) and all I/O happens in a
// background goroutine. Requires s.mu held.
func (s *Store) maybeCompactLocked() {
	if s.baseBusy || s.recsSince == 0 || s.recsSince <= s.opts.DirLogLimit {
		return
	}
	if err := s.fp(fpTrigger); err != nil {
		return
	}
	snap := s.pageInfosLocked()
	watermark := s.recID
	seq := uint64(0)
	for _, pi := range snap {
		if pi.Seq > seq {
			seq = pi.Seq
		}
	}
	oldIndex := s.logIndex
	if err := s.openLogSegment(s.logIndex + 1); err != nil {
		s.compactErrV.Store(err)
		return
	}
	s.baseBusy = true
	s.recsSince = 0
	s.compactWG.Add(1)
	go s.compactBase(snap, watermark, seq, oldIndex)
}

// compactBase writes the full page table as a fresh base (tmp + fsync +
// rename + dir fsync), then deletes the folded log segments. A crash at
// any point leaves either the old base + all segments, or the new base
// (+ possibly stale segments whose records the watermark skips).
func (s *Store) compactBase(snap []PageInfo, watermark, seq uint64, maxSegIndex uint64) {
	defer s.compactWG.Done()
	fail := func(err error) {
		s.compactErrV.Store(err)
		s.mu.Lock()
		s.baseBusy = false
		s.mu.Unlock()
	}
	if err := s.fp(fpCompact); err != nil {
		fail(err)
		return
	}
	buf := []byte{dirRecBase}
	buf = binary.AppendUvarint(buf, watermark)
	buf = binary.AppendUvarint(buf, seq)
	buf = appendPageList(buf, snap)

	tmpPath := filepath.Join(s.dir, dirTmpName)
	f, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		fail(err)
		return
	}
	frame := make([]byte, pageFrameHeader+len(buf))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(buf)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(buf, pageCRC))
	copy(frame[pageFrameHeader:], buf)
	if _, err := f.Write(frame); err != nil {
		f.Close()
		fail(err)
		return
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fail(err)
		return
	}
	if err := f.Close(); err != nil {
		fail(err)
		return
	}
	if err := s.fp(fpRename); err != nil {
		fail(err)
		return
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, dirBaseName)); err != nil {
		fail(err)
		return
	}
	if err := syncDir(s.dir); err != nil {
		fail(err)
		return
	}
	if entries, err := os.ReadDir(s.dir); err == nil {
		for _, e := range entries {
			if idx, ok := parseDirLogIndex(e.Name()); ok && idx <= maxSegIndex {
				os.Remove(filepath.Join(s.dir, e.Name()))
			}
		}
	}
	syncDir(s.dir)
	s.mu.Lock()
	s.baseBusy = false
	// Installs that arrived while this compaction ran may already have
	// pushed the chain past the limit again; fold them too. The WG Add
	// happens before this goroutine's Done, so Close's Wait stays sound.
	if !s.closed {
		s.maybeCompactLocked()
	}
	s.mu.Unlock()
}

// ReadPage reads and decodes the page at slot from the heap. Safe for
// concurrent use; the caller validates table/row membership against its
// authoritative mapping.
func (s *Store) ReadPage(slot uint32) (table string, seq uint64, rows []PageRow, err error) {
	buf := make([]byte, PageSize)
	if _, err := s.heap.ReadAt(buf, int64(slot)*PageSize); err != nil {
		return "", 0, nil, err
	}
	plen := binary.LittleEndian.Uint32(buf[0:4])
	if plen > maxPagePayload {
		return "", 0, nil, fmt.Errorf("%w: bad frame length %d at slot %d", ErrCorruptPage, plen, slot)
	}
	total := int(plen) + pageFrameHeader
	if total > PageSize {
		big := make([]byte, total)
		copy(big, buf)
		if _, err := s.heap.ReadAt(big[PageSize:], int64(slot)*PageSize+PageSize); err != nil {
			return "", 0, nil, err
		}
		buf = big
	}
	return decodePageFrame(buf)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
