package pagestore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolHitMissEvict(t *testing.T) {
	p := NewPool(250) // room for two 100-byte frames
	loads := 0
	load := func(slot uint32) func() (any, int64, error) {
		return func() (any, int64, error) {
			loads++
			return fmt.Sprintf("page-%d", slot), 100, nil
		}
	}
	v, rel, err := p.Get(1, load(1))
	if err != nil || v.(string) != "page-1" {
		t.Fatalf("get: %v %v", v, err)
	}
	rel()
	if _, rel, _ := p.Get(1, load(1)); true {
		rel()
	}
	if loads != 1 {
		t.Fatalf("second Get should hit, loads=%d", loads)
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Fill past budget: slot 1's ref bit gives it a second chance, so two
	// more distinct pages force an eviction.
	for slot := uint32(2); slot <= 4; slot++ {
		_, rel, err := p.Get(slot, load(slot))
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	if st := p.Stats(); st.Evictions == 0 || st.Resident > 250 {
		t.Fatalf("no eviction under pressure: %+v", st)
	}
}

func TestPoolPinBlocksEviction(t *testing.T) {
	p := NewPool(100)
	v1, rel1, err := p.Get(1, func() (any, int64, error) { return "one", 80, nil })
	if err != nil {
		t.Fatal(err)
	}
	// Load a second frame while the first is pinned: pool goes over
	// budget but must not evict the pinned frame.
	_, rel2, err := p.Get(2, func() (any, int64, error) { return "two", 80, nil })
	if err != nil {
		t.Fatal(err)
	}
	rel2()
	got, rel, err := p.Get(1, func() (any, int64, error) {
		t.Fatal("pinned frame reloaded")
		return nil, 0, nil
	})
	if err != nil || got.(string) != "one" {
		t.Fatalf("pinned frame lost: %v %v", got, err)
	}
	rel()
	rel1()
	_ = v1
}

func TestPoolInvalidate(t *testing.T) {
	p := NewPool(1 << 20)
	loads := 0
	load := func() (any, int64, error) { loads++; return "x", 10, nil }
	_, rel, _ := p.Get(5, load)
	rel()
	p.Invalidate([]uint32{5})
	_, rel, _ = p.Get(5, load)
	rel()
	if loads != 2 {
		t.Fatalf("invalidate did not drop frame: loads=%d", loads)
	}
	if st := p.Stats(); st.Resident != 10 || st.Frames != 1 {
		t.Fatalf("size accounting broken after invalidate: %+v", st)
	}
}

func TestPoolSingleflight(t *testing.T) {
	p := NewPool(1 << 20)
	var loads atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, rel, err := p.Get(9, func() (any, int64, error) {
				loads.Add(1)
				return "val", 8, nil
			})
			if err != nil || v.(string) != "val" {
				t.Errorf("get: %v %v", v, err)
			}
			rel()
		}()
	}
	close(start)
	wg.Wait()
	if loads.Load() != 1 {
		t.Fatalf("concurrent misses not coalesced: %d loads", loads.Load())
	}
}

func TestPoolLoadErrorNotCached(t *testing.T) {
	p := NewPool(1 << 20)
	calls := 0
	_, _, err := p.Get(3, func() (any, int64, error) { calls++; return nil, 0, fmt.Errorf("io error") })
	if err == nil {
		t.Fatal("expected error")
	}
	v, rel, err := p.Get(3, func() (any, int64, error) { calls++; return "ok", 4, nil })
	if err != nil || v.(string) != "ok" {
		t.Fatalf("retry after error: %v %v", v, err)
	}
	rel()
	if calls != 2 {
		t.Fatalf("error cached: calls=%d", calls)
	}
}

// TestPoolEvictionStress runs concurrent readers against a tiny frame
// budget so loads, hits, evictions, and invalidations race. Run with
// -race this exercises the eviction-vs-concurrent-reader interleavings.
func TestPoolEvictionStress(t *testing.T) {
	const slots = 64
	const iters = 3000
	p := NewPool(5 * 100) // ~5 frames resident out of 64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			x := seed*2654435761 + 1
			for i := 0; i < iters; i++ {
				x = x*1664525 + 1013904223
				slot := x % slots
				v, rel, err := p.Get(slot, func() (any, int64, error) {
					return fmt.Sprintf("content-%d", slot), 100, nil
				})
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if v.(string) != fmt.Sprintf("content-%d", slot) {
					t.Errorf("slot %d returned %v", slot, v)
					return
				}
				// Hold the pin briefly on some iterations.
				if i%7 == 0 {
					_ = p.Stats()
				}
				rel()
			}
		}(uint32(w))
	}
	// Concurrent invalidations, as a checkpoint would issue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		x := uint32(99)
		for i := 0; i < 2*iters; i++ {
			x = x*1664525 + 1013904223
			p.Invalidate([]uint32{x % slots})
		}
	}()
	wg.Wait()
	st := p.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatalf("stress did nothing: %+v", st)
	}
	if st.Resident > 5*100+4096 {
		t.Fatalf("resident far over budget at rest: %+v", st)
	}
}
