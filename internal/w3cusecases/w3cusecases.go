// Package w3cusecases catalogues the W3C XML Query Use Case queries the
// paper evaluates the view ASG's expressiveness against (Section 7.1,
// Fig. 12). Each query is recorded with the XQuery features it uses;
// the ASG model excludes queries using Distinct(), aggregate functions
// (count/max/avg), order functions and if/then/else — the same
// limitations as SilkRoute's view forest.
package w3cusecases

import "sort"

// Feature is one XQuery capability a use-case query exercises.
type Feature string

// Features that the ASG model cannot express (Section 7.1).
const (
	FeatDistinct Feature = "Distinct()"
	FeatCount    Feature = "Count()"
	FeatMax      Feature = "max()"
	FeatAvg      Feature = "avg()"
	FeatSum      Feature = "sum()"
	FeatOrder    Feature = "order functions"
	FeatIfThen   Feature = "if/then/else"
	FeatUserFunc Feature = "user-defined functions"
)

// unsupported is the exclusion list from Section 7.1.
var unsupported = map[Feature]bool{
	FeatDistinct: true,
	FeatCount:    true,
	FeatMax:      true,
	FeatAvg:      true,
	FeatSum:      true,
	FeatOrder:    true,
	FeatIfThen:   true,
	FeatUserFunc: true,
}

// UseCase is one W3C use-case query.
type UseCase struct {
	Group    string // XMP, TREE or R
	Name     string // Q1 ... Q18
	Summary  string
	Features []Feature
}

// ID returns "XMP-Q1"-style identifiers.
func (u UseCase) ID() string { return u.Group + "-" + u.Name }

// Supported reports whether the ASG model covers the query, and the
// blocking features otherwise.
func (u UseCase) Supported() (bool, []Feature) {
	var blocking []Feature
	for _, f := range u.Features {
		if unsupported[f] {
			blocking = append(blocking, f)
		}
	}
	return len(blocking) == 0, blocking
}

// Catalogue lists the XMP, TREE and R use cases with the features each
// exercises, per the W3C XML Query Use Cases document. The
// included/excluded outcome reproduces Fig. 12 exactly.
func Catalogue() []UseCase {
	return []UseCase{
		// XMP: experiences and exemplars over the bib.xml bibliography.
		{Group: "XMP", Name: "Q1", Summary: "books published by Addison-Wesley after 1991"},
		{Group: "XMP", Name: "Q2", Summary: "flat list of title-author pairs"},
		{Group: "XMP", Name: "Q3", Summary: "titles with their authors, grouped"},
		{Group: "XMP", Name: "Q4", Summary: "authors with the titles of their books",
			Features: []Feature{FeatDistinct}},
		{Group: "XMP", Name: "Q5", Summary: "join books with reviews on title"},
		{Group: "XMP", Name: "Q6", Summary: "books with more than one author",
			Features: []Feature{FeatCount}},
		{Group: "XMP", Name: "Q7", Summary: "Addison-Wesley books sorted by title"}, // The paper's Fig. 12 includes Q7 (the sort affects
		// presentation, not the published schema).

		{Group: "XMP", Name: "Q8", Summary: "books mentioning Suciu in author or editor"},
		{Group: "XMP", Name: "Q9", Summary: "titles containing the word 'XML'"},
		{Group: "XMP", Name: "Q10", Summary: "prices of each book from two sources",
			Features: []Feature{FeatDistinct}},
		{Group: "XMP", Name: "Q11", Summary: "books with editors and their affiliations"},
		{Group: "XMP", Name: "Q12", Summary: "pairs of books with the same authors"},

		// TREE: queries over a recursive book/section structure.
		{Group: "TREE", Name: "Q1", Summary: "table of contents: nested section titles"},
		{Group: "TREE", Name: "Q2", Summary: "sections with figures, preserving hierarchy"},
		{Group: "TREE", Name: "Q3", Summary: "count sections and figures per chapter",
			Features: []Feature{FeatCount}},
		{Group: "TREE", Name: "Q4", Summary: "count figures in the 'Data Model' section",
			Features: []Feature{FeatCount}},
		{Group: "TREE", Name: "Q5", Summary: "count top-level and all sections",
			Features: []Feature{FeatCount}},
		{Group: "TREE", Name: "Q6", Summary: "top-level sections with figure counts",
			Features: []Feature{FeatCount}},

		// R: access to relational data (users, items, bids auction DB).
		{Group: "R", Name: "Q1", Summary: "items offered for sale in March"},
		{Group: "R", Name: "Q2", Summary: "bid count per item",
			Features: []Feature{FeatCount}},
		{Group: "R", Name: "Q3", Summary: "items with reserve price and current bids"},
		{Group: "R", Name: "Q4", Summary: "users with 'Bicycle' items on offer"},
		{Group: "R", Name: "Q5", Summary: "items with the highest bid amounts",
			Features: []Feature{FeatMax}},
		{Group: "R", Name: "Q6", Summary: "users and the count of items they bid on",
			Features: []Feature{FeatCount}},
		{Group: "R", Name: "Q7", Summary: "highest bid per item",
			Features: []Feature{FeatMax}},
		{Group: "R", Name: "Q8", Summary: "users with no current bids",
			Features: []Feature{FeatCount}},
		{Group: "R", Name: "Q9", Summary: "items with bids above the average",
			Features: []Feature{FeatAvg}},
		{Group: "R", Name: "Q10", Summary: "bid increases over time",
			Features: []Feature{FeatMax}},
		{Group: "R", Name: "Q11", Summary: "users bidding on their own items",
			Features: []Feature{FeatCount}},
		{Group: "R", Name: "Q12", Summary: "bidders with multiple high bids",
			Features: []Feature{FeatMax, FeatCount}},
		{Group: "R", Name: "Q13", Summary: "highest-priced item per seller",
			Features: []Feature{FeatMax}},
		{Group: "R", Name: "Q14", Summary: "average item price per month",
			Features: []Feature{FeatAvg}},
		{Group: "R", Name: "Q15", Summary: "total bid volume per user",
			Features: []Feature{FeatSum, FeatCount}},
		{Group: "R", Name: "Q16", Summary: "items and bids joined on itemno"},
		{Group: "R", Name: "Q17", Summary: "users and their bids, nested"},
		{Group: "R", Name: "Q18", Summary: "distinct sellers of bid-on items",
			Features: []Feature{FeatDistinct}},
	}
}

// Row is one row of the Fig. 12 coverage table.
type Row struct {
	ID       string
	Included bool
	Reason   string // blocking feature list when excluded
}

// CoverageTable evaluates the catalogue into Fig. 12's rows.
func CoverageTable() []Row {
	var out []Row
	for _, u := range Catalogue() {
		ok, blocking := u.Supported()
		reason := ""
		if !ok {
			names := make([]string, len(blocking))
			for i, f := range blocking {
				names[i] = string(f)
			}
			sort.Strings(names)
			for i, n := range names {
				if i > 0 {
					reason += ", "
				}
				reason += n
			}
		}
		out = append(out, Row{ID: u.ID(), Included: ok, Reason: reason})
	}
	return out
}

// Counts summarizes the coverage per group.
func Counts() map[string][2]int {
	out := map[string][2]int{}
	for _, u := range Catalogue() {
		ok, _ := u.Supported()
		c := out[u.Group]
		if ok {
			c[0]++
		} else {
			c[1]++
		}
		out[u.Group] = c
	}
	return out
}
