package w3cusecases

import "testing"

// TestFig12Exact asserts the included/excluded outcome of every query
// matches the paper's Fig. 12 table.
func TestFig12Exact(t *testing.T) {
	want := map[string]bool{
		"XMP-Q1": true, "XMP-Q2": true, "XMP-Q3": true, "XMP-Q5": true,
		"XMP-Q7": true, "XMP-Q8": true, "XMP-Q9": true, "XMP-Q11": true, "XMP-Q12": true,
		"XMP-Q4": false, "XMP-Q10": false, "XMP-Q6": false,
		"TREE-Q1": true, "TREE-Q2": true,
		"TREE-Q3": false, "TREE-Q4": false, "TREE-Q5": false, "TREE-Q6": false,
		"R-Q1": true, "R-Q3": true, "R-Q4": true, "R-Q16": true, "R-Q17": true,
		"R-Q2": false, "R-Q5": false, "R-Q6": false, "R-Q7": false, "R-Q8": false,
		"R-Q9": false, "R-Q10": false, "R-Q11": false, "R-Q12": false, "R-Q13": false,
		"R-Q14": false, "R-Q15": false, "R-Q18": false,
	}
	rows := CoverageTable()
	if len(rows) != len(want) {
		t.Fatalf("catalogue has %d rows, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		expected, ok := want[r.ID]
		if !ok {
			t.Errorf("unexpected query %s", r.ID)
			continue
		}
		if r.Included != expected {
			t.Errorf("%s: included=%v, want %v (reason %q)", r.ID, r.Included, expected, r.Reason)
		}
		if !r.Included && r.Reason == "" {
			t.Errorf("%s: excluded without a reason", r.ID)
		}
		if r.Included && r.Reason != "" {
			t.Errorf("%s: included with reason %q", r.ID, r.Reason)
		}
	}
}

// TestFig12ExclusionReasons spot-checks the reasons the paper prints.
func TestFig12ExclusionReasons(t *testing.T) {
	byID := map[string]Row{}
	for _, r := range CoverageTable() {
		byID[r.ID] = r
	}
	cases := map[string]string{
		"XMP-Q4":  "Distinct()",
		"XMP-Q6":  "Count()",
		"TREE-Q3": "Count()",
		"R-Q18":   "Distinct()",
	}
	for id, reason := range cases {
		if got := byID[id].Reason; got != reason {
			t.Errorf("%s: reason = %q, want %q", id, got, reason)
		}
	}
	// R-Q5 excluded by an aggregate.
	if got := byID["R-Q5"].Reason; got != "max()" {
		t.Errorf("R-Q5 reason = %q", got)
	}
}

func TestCounts(t *testing.T) {
	c := Counts()
	if c["XMP"] != [2]int{9, 3} {
		t.Errorf("XMP = %v, want 9 included / 3 excluded", c["XMP"])
	}
	if c["TREE"] != [2]int{2, 4} {
		t.Errorf("TREE = %v, want 2/4", c["TREE"])
	}
	if c["R"] != [2]int{5, 13} {
		t.Errorf("R = %v, want 5/13", c["R"])
	}
}
