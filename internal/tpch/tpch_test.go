package tpch

import (
	"strings"
	"testing"

	"repro/internal/relational"
	"repro/internal/xqparse"
)

func TestSchemaTopology(t *testing.T) {
	s, err := Schema()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Tables()); got != 5 {
		t.Fatalf("tables = %d", got)
	}
	// FK chain region <- nation <- customer <- orders <- lineitem.
	ext := s.Extend("region")
	for _, r := range Relations {
		if !ext[r] {
			t.Errorf("extend(region) missing %s", r)
		}
	}
	if got := len(s.Extend("lineitem")); got != 1 {
		t.Errorf("extend(lineitem) = %d relations", got)
	}
}

func TestGenerateCardinalities(t *testing.T) {
	db, err := NewDatabaseMB(1)
	if err != nil {
		t.Fatal(err)
	}
	rows := RowsForMB(1)
	checks := map[string]int{
		"region": rows.Regions, "nation": rows.Nations,
		"customer": rows.Customers, "orders": rows.Orders,
	}
	for table, want := range checks {
		if got := db.RowCount(table); got != want {
			t.Errorf("%s = %d rows, want %d", table, got, want)
		}
	}
	if got := db.RowCount("lineitem"); got < rows.Orders {
		t.Errorf("lineitem = %d rows, want >= %d", got, rows.Orders)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := NewDatabaseMB(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDatabaseMB(1)
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := a.LookupEqual("customer", []string{"c_custkey"}, []relational.Value{relational.Int_(3)})
	va, _ := a.ValuesByName("customer", ids[0])
	ids, _ = b.LookupEqual("customer", []string{"c_custkey"}, []relational.Value{relational.Int_(3)})
	vb, _ := b.ValuesByName("customer", ids[0])
	if va["c_acctbal"] != vb["c_acctbal"] || va["c_comment"] != vb["c_comment"] {
		t.Error("generator is not deterministic")
	}
}

func TestCascadeChain(t *testing.T) {
	db, err := NewDatabaseMB(1)
	if err != nil {
		t.Fatal(err)
	}
	before := db.TotalRows()
	ids, _ := db.LookupEqual("region", []string{"r_regionkey"}, []relational.Value{relational.Int_(0)})
	n, err := db.Delete("region", ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if n < before/10 {
		t.Errorf("cascade from region deleted only %d of %d rows", n, before)
	}
}

func TestViewQueriesParse(t *testing.T) {
	for name, q := range map[string]string{
		"Vsuccess":       VsuccessQuery,
		"Vbush":          VbushQuery,
		"Vfail-region":   VfailQuery("region"),
		"Vfail-nation":   VfailQuery("nation"),
		"Vfail-customer": VfailQuery("customer"),
		"Vfail-orders":   VfailQuery("orders"),
		"Vfail-lineitem": VfailQuery("lineitem"),
	} {
		v, err := xqparse.ParseViewQuery(q)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !strings.HasPrefix(v.RootTag, "V") {
			t.Errorf("%s root = %s", name, v.RootTag)
		}
	}
}

func TestUpdateBuildersParse(t *testing.T) {
	for name, u := range map[string]string{
		"delete-region":   DeleteElementUpdate("region", 0),
		"delete-lineitem": DeleteElementUpdate("lineitem", 5),
		"insert-lineitem": InsertLineitemUpdate(10, 99),
		"insert-bush":     InsertOrderlineUpdateBush(1, 999999, 1),
		"delete-lines":    DeleteLineitemsOfOrder(10),
	} {
		if _, err := xqparse.ParseUpdate(u); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestElementPath(t *testing.T) {
	if got := ElementPath("orders"); len(got) != 4 || got[3] != "order" {
		t.Errorf("path(orders) = %v", got)
	}
	if got := ElementPath("region"); len(got) != 1 {
		t.Errorf("path(region) = %v", got)
	}
	if ElementPath("nosuch") != nil {
		t.Error("bogus relation should have nil path")
	}
}
