// Package tpch provides the TPC-H-like substrate the paper's evaluation
// runs on (Section 7.2): the five-relation REGION / NATION / CUSTOMER /
// ORDERS / LINEITEM schema with its key and foreign-key topology, a
// deterministic synthetic data generator parameterized by a "database
// size" knob, and the four experiment views — Vsuccess, Vfail, Vlinear
// and Vbush.
//
// Substitution note (DESIGN.md §6): the official dbgen tool and its data
// distributions are not required by any experiment; only the FK chain,
// the relative cardinalities and the indexed keys matter, all of which
// the generator reproduces. The paper's "DBsize (Mb)" axis maps to a
// row-count scale (see Rows).
package tpch

import (
	"fmt"
	"math/rand"

	"repro/internal/relational"
)

// Relations lists the five relations in FK order (referenced first).
var Relations = []string{"region", "nation", "customer", "orders", "lineitem"}

// Schema builds the five-relation TPC-H subset with CASCADE deletes
// (the paper's pre-selected update policy).
func Schema() (*relational.Schema, error) {
	region, err := relational.NewTableDef("region", []relational.Column{
		{Name: "r_regionkey", Type: relational.TypeInt},
		{Name: "r_name", Type: relational.TypeString, NotNull: true},
		{Name: "r_comment", Type: relational.TypeString},
	}, []string{"r_regionkey"}, nil)
	if err != nil {
		return nil, err
	}
	nation, err := relational.NewTableDef("nation", []relational.Column{
		{Name: "n_nationkey", Type: relational.TypeInt},
		{Name: "n_name", Type: relational.TypeString, NotNull: true},
		{Name: "n_regionkey", Type: relational.TypeInt, NotNull: true},
		{Name: "n_comment", Type: relational.TypeString},
	}, []string{"n_nationkey"}, []relational.ForeignKey{{
		Name: "nation_region_fk", Columns: []string{"n_regionkey"},
		RefTable: "region", RefColumns: []string{"r_regionkey"}, OnDelete: relational.DeleteCascade,
	}})
	if err != nil {
		return nil, err
	}
	customer, err := relational.NewTableDef("customer", []relational.Column{
		{Name: "c_custkey", Type: relational.TypeInt},
		{Name: "c_name", Type: relational.TypeString, NotNull: true},
		{Name: "c_nationkey", Type: relational.TypeInt, NotNull: true},
		{Name: "c_acctbal", Type: relational.TypeFloat},
		{Name: "c_comment", Type: relational.TypeString},
	}, []string{"c_custkey"}, []relational.ForeignKey{{
		Name: "customer_nation_fk", Columns: []string{"c_nationkey"},
		RefTable: "nation", RefColumns: []string{"n_nationkey"}, OnDelete: relational.DeleteCascade,
	}})
	if err != nil {
		return nil, err
	}
	orders, err := relational.NewTableDef("orders", []relational.Column{
		{Name: "o_orderkey", Type: relational.TypeInt},
		{Name: "o_custkey", Type: relational.TypeInt, NotNull: true},
		{Name: "o_totalprice", Type: relational.TypeFloat,
			Checks: []relational.CheckPredicate{{Op: relational.OpGT, Operand: relational.Float_(0)}}},
		{Name: "o_orderdate", Type: relational.TypeInt},
		{Name: "o_comment", Type: relational.TypeString},
	}, []string{"o_orderkey"}, []relational.ForeignKey{{
		Name: "orders_customer_fk", Columns: []string{"o_custkey"},
		RefTable: "customer", RefColumns: []string{"c_custkey"}, OnDelete: relational.DeleteCascade,
	}})
	if err != nil {
		return nil, err
	}
	lineitem, err := relational.NewTableDef("lineitem", []relational.Column{
		{Name: "l_orderkey", Type: relational.TypeInt},
		{Name: "l_linenumber", Type: relational.TypeInt},
		{Name: "l_partkey", Type: relational.TypeInt},
		{Name: "l_quantity", Type: relational.TypeFloat,
			Checks: []relational.CheckPredicate{{Op: relational.OpGT, Operand: relational.Float_(0)}}},
		{Name: "l_extendedprice", Type: relational.TypeFloat},
		{Name: "l_comment", Type: relational.TypeString},
	}, []string{"l_orderkey", "l_linenumber"}, []relational.ForeignKey{{
		Name: "lineitem_orders_fk", Columns: []string{"l_orderkey"},
		RefTable: "orders", RefColumns: []string{"o_orderkey"}, OnDelete: relational.DeleteCascade,
	}})
	if err != nil {
		return nil, err
	}
	return relational.NewSchema(region, nation, customer, orders, lineitem)
}

// Rows maps the paper's "DBsize (Mb)" axis to per-relation row counts,
// keeping TPC-H's relative cardinalities (fixed regions/nations, orders
// ≈ 5× customers, lineitems ≈ 3× orders).
type Rows struct {
	Regions   int
	Nations   int
	Customers int
	Orders    int
	Lineitems int
}

// RowsForMB sizes the dataset for a nominal database size in MB.
func RowsForMB(mb int) Rows {
	if mb < 1 {
		mb = 1
	}
	customers := 12 * mb
	orders := 5 * customers
	return Rows{
		Regions:   5,
		Nations:   25,
		Customers: customers,
		Orders:    orders,
		Lineitems: 3 * orders,
	}
}

// Generate fills a database deterministically (seeded by the nominal
// size) with the given row counts. Every FK is valid by construction.
func Generate(db *relational.Database, rows Rows) error {
	rng := rand.New(rand.NewSource(int64(rows.Customers)*31 + 7))
	regionNames := []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	for i := 0; i < rows.Regions; i++ {
		name := fmt.Sprintf("REGION-%d", i)
		if i < len(regionNames) {
			name = regionNames[i]
		}
		if _, err := db.Insert("region", map[string]relational.Value{
			"r_regionkey": relational.Int_(int64(i)),
			"r_name":      relational.String_(name),
			"r_comment":   relational.String_(comment(rng)),
		}); err != nil {
			return fmt.Errorf("tpch: region %d: %w", i, err)
		}
	}
	for i := 0; i < rows.Nations; i++ {
		if _, err := db.Insert("nation", map[string]relational.Value{
			"n_nationkey": relational.Int_(int64(i)),
			"n_name":      relational.String_(fmt.Sprintf("NATION-%02d", i)),
			"n_regionkey": relational.Int_(int64(i % rows.Regions)),
			"n_comment":   relational.String_(comment(rng)),
		}); err != nil {
			return fmt.Errorf("tpch: nation %d: %w", i, err)
		}
	}
	for i := 0; i < rows.Customers; i++ {
		if _, err := db.Insert("customer", map[string]relational.Value{
			"c_custkey":   relational.Int_(int64(i)),
			"c_name":      relational.String_(fmt.Sprintf("Customer#%09d", i)),
			"c_nationkey": relational.Int_(int64(i % rows.Nations)),
			"c_acctbal":   relational.Float_(float64(rng.Intn(1000000)) / 100),
			"c_comment":   relational.String_(comment(rng)),
		}); err != nil {
			return fmt.Errorf("tpch: customer %d: %w", i, err)
		}
	}
	for i := 0; i < rows.Orders; i++ {
		if _, err := db.Insert("orders", map[string]relational.Value{
			"o_orderkey":   relational.Int_(int64(i)),
			"o_custkey":    relational.Int_(int64(i % rows.Customers)),
			"o_totalprice": relational.Float_(float64(1+rng.Intn(5000000)) / 100),
			"o_orderdate":  relational.Int_(int64(19920101 + rng.Intn(60000))),
			"o_comment":    relational.String_(comment(rng)),
		}); err != nil {
			return fmt.Errorf("tpch: order %d: %w", i, err)
		}
	}
	perOrder := rows.Lineitems / rows.Orders
	if perOrder < 1 {
		perOrder = 1
	}
	for o := 0; o < rows.Orders; o++ {
		for l := 0; l < perOrder; l++ {
			if _, err := db.Insert("lineitem", map[string]relational.Value{
				"l_orderkey":      relational.Int_(int64(o)),
				"l_linenumber":    relational.Int_(int64(l + 1)),
				"l_partkey":       relational.Int_(int64(rng.Intn(200000))),
				"l_quantity":      relational.Float_(float64(1 + rng.Intn(50))),
				"l_extendedprice": relational.Float_(float64(1+rng.Intn(10000000)) / 100),
				"l_comment":       relational.String_(comment(rng)),
			}); err != nil {
				return fmt.Errorf("tpch: lineitem %d/%d: %w", o, l, err)
			}
		}
	}
	return nil
}

// NewDatabaseMB builds and populates a database sized for the nominal
// MB value.
func NewDatabaseMB(mb int) (*relational.Database, error) {
	schema, err := Schema()
	if err != nil {
		return nil, err
	}
	db := relational.NewDatabase(schema)
	if err := Generate(db, RowsForMB(mb)); err != nil {
		return nil, err
	}
	return db, nil
}

var commentWords = []string{
	"carefully", "final", "deposits", "sleep", "quickly", "bold",
	"requests", "haggle", "furiously", "ironic", "accounts", "pending",
}

func comment(rng *rand.Rand) string {
	a := commentWords[rng.Intn(len(commentWords))]
	b := commentWords[rng.Intn(len(commentWords))]
	return a + " " + b
}

// VsuccessQuery is the Section 7.2 view where the five relations are
// nested following the key and foreign key constraints: updates over
// any internal node are unconditionally translatable.
const VsuccessQuery = `
<Vsuccess>
FOR $r IN document("default.xml")/region/row
RETURN {
  <region>
    $r/r_regionkey, $r/r_name,
    FOR $n IN document("default.xml")/nation/row
    WHERE $n/n_regionkey = $r/r_regionkey
    RETURN {
      <nation>
        $n/n_nationkey, $n/n_name,
        FOR $c IN document("default.xml")/customer/row
        WHERE $c/c_nationkey = $n/n_nationkey
        RETURN {
          <customer>
            $c/c_custkey, $c/c_name, $c/c_acctbal,
            FOR $o IN document("default.xml")/orders/row
            WHERE $o/o_custkey = $c/c_custkey
            RETURN {
              <order>
                $o/o_orderkey, $o/o_totalprice,
                FOR $l IN document("default.xml")/lineitem/row
                WHERE $l/l_orderkey = $o/o_orderkey
                RETURN {
                  <lineitem>
                    $l/l_orderkey, $l/l_linenumber, $l/l_quantity
                  </lineitem>
                }
              </order>
            }
          </customer>
        }
      </nation>
    }
  </region>
}
</Vsuccess>`

// VfailQuery builds the Section 7.2 failure view: the linear nesting of
// Vsuccess plus the given relation republished under the root, which
// makes deleting that relation's element untranslatable (its extend set
// intersects the republished node's context).
func VfailQuery(relation string) string {
	republish := map[string]string{
		"region":   `<regioninfo> $rr/r_regionkey, $rr/r_name </regioninfo>`,
		"nation":   `<nationinfo> $rr/n_nationkey, $rr/n_name </nationinfo>`,
		"customer": `<customerinfo> $rr/c_custkey, $rr/c_name </customerinfo>`,
		"orders":   `<orderinfo> $rr/o_orderkey, $rr/o_totalprice </orderinfo>`,
		"lineitem": `<lineiteminfo> $rr/l_orderkey, $rr/l_linenumber </lineiteminfo>`,
	}
	body := republish[relation]
	if body == "" {
		body = republish["region"]
	}
	inner := VsuccessQuery
	inner = inner[len("\n<Vsuccess>") : len(inner)-len("</Vsuccess>")]
	return "<Vfail>" + inner + `,
FOR $rr IN document("default.xml")/` + relation + `/row
RETURN { ` + body + ` }
</Vfail>`
}

// VlinearQuery is the linear-join view of the Fig. 15/17 experiments:
// the same FK-chain nesting as Vsuccess (the paper's "five relations
// joined linearly").
const VlinearQuery = VsuccessQuery

// VbushQuery joins the relations "evenly" (Fig. 16): region, nation and
// customer joined in one block, orders and lineitem in a nested block —
// a bushy rather than linear join shape.
const VbushQuery = `
<Vbush>
FOR $r IN document("default.xml")/region/row,
    $n IN document("default.xml")/nation/row,
    $c IN document("default.xml")/customer/row
WHERE ($n/n_regionkey = $r/r_regionkey) AND ($c/c_nationkey = $n/n_nationkey)
RETURN {
  <customer>
    $c/c_custkey, $c/c_name, $r/r_name, $n/n_name,
    FOR $o IN document("default.xml")/orders/row,
        $l IN document("default.xml")/lineitem/row
    WHERE ($o/o_custkey = $c/c_custkey) AND ($l/l_orderkey = $o/o_orderkey)
    RETURN {
      <orderline>
        $o/o_orderkey, $o/o_totalprice, $l/l_linenumber, $l/l_quantity
      </orderline>
    }
  </customer>
}
</Vbush>`

// ElementName maps a relation to its element tag in Vsuccess/Vlinear.
func ElementName(relation string) string {
	switch relation {
	case "region":
		return "region"
	case "nation":
		return "nation"
	case "customer":
		return "customer"
	case "orders":
		return "order"
	case "lineitem":
		return "lineitem"
	}
	return relation
}

// ElementPath returns the path from the view root down to the
// relation's element in Vsuccess/Vlinear.
func ElementPath(relation string) []string {
	full := []string{"region", "nation", "customer", "order", "lineitem"}
	idx := map[string]int{"region": 0, "nation": 1, "customer": 2, "orders": 3, "lineitem": 4}
	i, ok := idx[relation]
	if !ok {
		return nil
	}
	return full[:i+1]
}

// DeleteElementUpdate builds the update that deletes one element of the
// given relation from Vsuccess/Vfail/Vlinear, selecting the instance by
// its key value.
func DeleteElementUpdate(relation string, key int64) string {
	path := ElementPath(relation)
	keyCol := map[string]string{
		"region": "r_regionkey", "nation": "n_nationkey", "customer": "c_custkey",
		"orders": "o_orderkey", "lineitem": "l_orderkey",
	}[relation]
	pathExpr := ""
	for _, p := range path {
		pathExpr += "/" + p
	}
	return fmt.Sprintf(`
FOR $t IN document("view.xml")%s
WHERE $t/%s/text() = "%d"
UPDATE $t { DELETE $t }`, pathExpr, keyCol, key)
}

// InsertLineitemUpdate builds the Fig. 15 update: insert a new lineitem
// into the order with the given key.
func InsertLineitemUpdate(orderKey int64, lineNumber int64) string {
	return fmt.Sprintf(`
FOR $o IN document("view.xml")/region/nation/customer/order
WHERE $o/o_orderkey/text() = "%d"
UPDATE $o {
  INSERT
    <lineitem>
      <l_orderkey>%d</l_orderkey>
      <l_linenumber>%d</l_linenumber>
      <l_quantity>7</l_quantity>
    </lineitem>
}`, orderKey, orderKey, lineNumber)
}

// InsertOrderlineUpdateBush is the Vbush counterpart: insert an
// orderline under a customer.
func InsertOrderlineUpdateBush(custKey, orderKey, lineNumber int64) string {
	return fmt.Sprintf(`
FOR $c IN document("view.xml")/customer
WHERE $c/c_custkey/text() = "%d"
UPDATE $c {
  INSERT
    <orderline>
      <o_orderkey>%d</o_orderkey>
      <o_totalprice>100.00</o_totalprice>
      <l_linenumber>%d</l_linenumber>
      <l_quantity>3</l_quantity>
    </orderline>
}`, custKey, orderKey, lineNumber)
}

// DeleteLineitemsOfOrder builds the Fig. 17 failed-case update: delete
// the lineitems of a given order in Vlinear.
func DeleteLineitemsOfOrder(orderKey int64) string {
	return fmt.Sprintf(`
FOR $o IN document("view.xml")/region/nation/customer/order
WHERE $o/o_orderkey/text() = "%d"
UPDATE $o { DELETE $o/lineitem }`, orderKey)
}
