package sqlexec

import (
	"testing"

	"repro/internal/relational"
)

// TestNoIndexEquivalence: forcing scan evaluation must not change query
// results, only the access path (the outside strategy's probe mode).
func TestNoIndexEquivalence(t *testing.T) {
	e := newExec(t)
	base := &SelectStmt{
		Project: []ColRef{{Table: "book", Column: "bookid"}},
		From:    []string{"publisher", "book"},
		Where: []Predicate{
			JoinOn("book", "pubid", "publisher", "pubid"),
			Cmp("book", "price", relational.OpLT, relational.Float_(50)),
		},
	}
	indexed, err := e.ExecSelect(base)
	if err != nil {
		t.Fatal(err)
	}
	scanOnly := *base
	scanOnly.NoIndex = true
	scanned, err := e.ExecSelect(&scanOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(indexed.Rows) != len(scanned.Rows) {
		t.Fatalf("indexed=%d rows, scan=%d rows", len(indexed.Rows), len(scanned.Rows))
	}
	got := map[string]bool{}
	for _, r := range scanned.Rows {
		got[r[0].Str] = true
	}
	for _, r := range indexed.Rows {
		if !got[r[0].Str] {
			t.Errorf("row %v missing under NoIndex", r)
		}
	}
}

// TestSemiJoinEquivalence: the IN-temp semi-join path and the scan path
// must agree.
func TestSemiJoinEquivalence(t *testing.T) {
	e := newExec(t)
	temp, err := e.ExecSelect(&SelectStmt{
		Project: []ColRef{{Table: "book", Column: "bookid"}},
		From:    []string{"book"},
		Where:   []Predicate{Cmp("book", "price", relational.OpLT, relational.Float_(40))},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Materialize("tab_cheap", temp)
	query := func(noIndex bool) *SelectStmt {
		return &SelectStmt{
			Project: []ColRef{{Table: "review", Column: "reviewid"}},
			From:    []string{"review"},
			Where: []Predicate{{
				Left: ColOperand("review", "bookid"), InTemp: "tab_cheap", InTempColumn: "book.bookid",
			}},
			NoIndex: noIndex,
		}
	}
	fast, err := e.ExecSelect(query(false))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := e.ExecSelect(query(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Rows) != 2 || len(slow.Rows) != 2 {
		t.Fatalf("semi-join=%d scan=%d rows, want 2", len(fast.Rows), len(slow.Rows))
	}
	// The semi-join path should have used the review.bookid FK index.
	before := e.IndexProbes
	if _, err := e.ExecSelect(query(false)); err != nil {
		t.Fatal(err)
	}
	if e.IndexProbes == before {
		t.Error("semi-join path did not probe the index")
	}
}

// TestRowIDAccessPath: rowid equality is a direct fetch, not a scan.
func TestRowIDAccessPath(t *testing.T) {
	e := newExec(t)
	ids, _ := e.DB.LookupEqual("book", []string{"bookid"}, []relational.Value{relational.String_("98002")})
	before := e.RowsScanned
	rs, err := e.ExecSelect(&SelectStmt{
		Project: []ColRef{{Table: "book", Column: "title"}},
		From:    []string{"book"},
		Where:   []Predicate{Eq("book", "rowid", relational.Int_(int64(ids[0])))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Str != "Programming in Unix" {
		t.Fatalf("rows = %v", rs.Rows)
	}
	if e.RowsScanned != before {
		t.Errorf("rowid access scanned %d rows", e.RowsScanned-before)
	}
	// Missing rowid: empty result, no error.
	rs, err = e.ExecSelect(&SelectStmt{
		From:  []string{"book"},
		Where: []Predicate{Eq("book", "rowid", relational.Int_(999999))},
	})
	if err != nil || !rs.Empty() {
		t.Fatalf("missing rowid: rows=%d err=%v", len(rs.Rows), err)
	}
}

// TestJoinOrderDeterminism: repeated evaluation returns identical row
// order (the probe materialization depends on it).
func TestJoinOrderDeterminism(t *testing.T) {
	e := newExec(t)
	sel := &SelectStmt{
		From: []string{"publisher", "book", "review"},
		Where: []Predicate{
			JoinOn("book", "pubid", "publisher", "pubid"),
			JoinOn("review", "bookid", "book", "bookid"),
		},
	}
	first, err := e.ExecSelect(sel)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := e.ExecSelect(sel)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Rows) != len(first.Rows) {
			t.Fatal("row count changed")
		}
		for j := range again.Rows {
			for k := range again.Rows[j] {
				if !again.Rows[j][k].Equal(first.Rows[j][k]) && !(again.Rows[j][k].IsNull() && first.Rows[j][k].IsNull()) {
					t.Fatalf("row %d col %d differs", j, k)
				}
			}
		}
	}
}

// TestTempTableInFrom: materialized results are scannable relations.
func TestTempTableInFrom(t *testing.T) {
	e := newExec(t)
	rs, err := e.ExecSelect(&SelectStmt{From: []string{"book"}})
	if err != nil {
		t.Fatal(err)
	}
	e.Materialize("tab_all", rs)
	out, err := e.ExecSelect(&SelectStmt{
		Project: []ColRef{{Table: "tab_all", Column: "title"}},
		From:    []string{"tab_all"},
		Where:   []Predicate{Cmp("tab_all", "year", relational.OpGT, relational.Int_(1990))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(out.Rows))
	}
	e.DropTemp("tab_all")
	if _, err := e.ExecSelect(&SelectStmt{From: []string{"tab_all"}}); err == nil {
		t.Error("dropped temp still resolvable")
	}
}

// TestJoinTempWithBase: a temp can join against a base table.
func TestJoinTempWithBase(t *testing.T) {
	e := newExec(t)
	rs, err := e.ExecSelect(&SelectStmt{
		Project: []ColRef{{Table: "book", Column: "bookid"}},
		From:    []string{"book"},
		Where:   []Predicate{Eq("book", "bookid", relational.String_("98001"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Materialize("tab_one", rs)
	out, err := e.ExecSelect(&SelectStmt{
		Project: []ColRef{{Table: "review", Column: "comment"}},
		From:    []string{"tab_one", "review"},
		Where:   []Predicate{JoinOn("review", "bookid", "tab_one", "bookid")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(out.Rows))
	}
}
