package sqlexec

import (
	"fmt"
	"strings"

	"repro/internal/relational"
)

// JoinStep is one LEFT JOIN in a relational view definition: Table is
// joined to ParentTable ON ParentTable.ParentColumn = Table.Column.
type JoinStep struct {
	Table        string
	ParentTable  string
	ParentColumn string
	Column       string
}

// JoinViewDef defines an updatable left-join relational view — the
// mapping relational view of Section 6.2.1 (Fig. 11), e.g.
//
//	CREATE VIEW RelationalBookView AS
//	  SELECT ... FROM publisher LEFT JOIN book ON ... LEFT JOIN review ON ...
//
// The internal update-point strategy maps the XML view update into an
// update over this view, which the engine decomposes into base-table
// operations.
type JoinViewDef struct {
	Name  string
	Root  string
	Steps []JoinStep
}

// Tables returns the base tables in join order, root first.
func (v *JoinViewDef) Tables() []string {
	out := []string{v.Root}
	for _, s := range v.Steps {
		out = append(out, s.Table)
	}
	return out
}

// SQL renders the view definition.
func (v *JoinViewDef) SQL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE VIEW %s AS SELECT * FROM %s", v.Name, v.Root)
	for _, s := range v.Steps {
		fmt.Fprintf(&b, " LEFT JOIN %s ON %s.%s = %s.%s",
			s.Table, s.ParentTable, s.ParentColumn, s.Table, s.Column)
	}
	return b.String()
}

// Evaluate materializes the view's rows. Unmatched left-join slots are
// NULL-padded, matching Fig. 11's RelationalBookView content.
func (e *Executor) EvaluateJoinView(v *JoinViewDef) (*ResultSet, error) {
	schema := e.DB.Schema()
	rootDef, ok := schema.Table(v.Root)
	if !ok {
		return nil, fmt.Errorf("%w: %s", relational.ErrNoSuchTable, v.Root)
	}
	type level struct {
		def  *relational.TableDef
		step *JoinStep
	}
	levels := []level{{def: rootDef}}
	var columns []ColRef
	for _, c := range rootDef.ColumnNames() {
		columns = append(columns, ColRef{Table: rootDef.Name, Column: c})
	}
	for i := range v.Steps {
		s := &v.Steps[i]
		def, ok := schema.Table(s.Table)
		if !ok {
			return nil, fmt.Errorf("%w: %s", relational.ErrNoSuchTable, s.Table)
		}
		levels = append(levels, level{def: def, step: s})
		for _, c := range def.ColumnNames() {
			columns = append(columns, ColRef{Table: def.Name, Column: c})
		}
	}
	out := &ResultSet{Columns: columns}

	width := make([]int, len(levels))
	for i, lv := range levels {
		width[i] = len(lv.def.Columns)
	}

	var expand func(depth int, acc [][]relational.Value)
	expand = func(depth int, acc [][]relational.Value) {
		if depth == len(levels) {
			var row []relational.Value
			for _, part := range acc {
				row = append(row, part...)
			}
			out.Rows = append(out.Rows, row)
			return
		}
		lv := levels[depth]
		step := lv.step
		parentIdx := -1
		for i := 0; i < depth; i++ {
			if strings.EqualFold(levels[i].def.Name, step.ParentTable) {
				parentIdx = i
				break
			}
		}
		if parentIdx < 0 || acc[parentIdx] == nil {
			acc = append(acc, nullRow(width[depth]))
			expand(depth+1, acc)
			return
		}
		pcol, _ := levels[parentIdx].def.ColumnIndex(step.ParentColumn)
		pval := acc[parentIdx][pcol]
		if pval.IsNull() {
			acc = append(acc, nullRow(width[depth]))
			expand(depth+1, acc)
			return
		}
		ids, err := e.DB.LookupEqual(lv.def.Name, []string{step.Column}, []relational.Value{pval})
		if err != nil || len(ids) == 0 {
			acc = append(acc, nullRow(width[depth]))
			expand(depth+1, acc)
			return
		}
		for _, id := range ids {
			r, err := e.DB.Get(lv.def.Name, id)
			if err != nil {
				continue
			}
			expand(depth+1, append(acc, r.Values))
		}
	}

	e.DB.Scan(v.Root, func(r *relational.Row) bool {
		e.addRowsScanned(1)
		vals := make([]relational.Value, len(r.Values))
		copy(vals, r.Values)
		expand(1, [][]relational.Value{vals})
		return true
	})
	return out, nil
}

// InsertIntoJoinView inserts a complete view tuple through transaction
// t (nil autocommits), decomposing it per base table in join order:
// for each table whose key part is present, the engine probes for an
// existing row; when found, the tuple's values for that table must
// agree with the stored row (else the insert is rejected,
// Oracle-style); when missing, a new base row is inserted. The return
// value counts base rows actually inserted.
//
// This is deliberately the expensive path the paper measures in Fig. 15:
// the caller must supply values for every attribute of every relation in
// the view, which forces the wide upstream probe query.
func (e *Executor) InsertIntoJoinView(t relational.WriteTxn, v *JoinViewDef, values map[string]relational.Value) (int, error) {
	rd := e.writeReader(t)
	schema := e.DB.Schema()
	inserted := 0
	for _, tname := range v.Tables() {
		def, ok := schema.Table(tname)
		if !ok {
			return inserted, fmt.Errorf("%w: %s", relational.ErrNoSuchTable, tname)
		}
		part := make(map[string]relational.Value)
		any := false
		for _, c := range def.ColumnNames() {
			if val, ok := values[strings.ToLower(tname)+"."+strings.ToLower(c)]; ok && !val.IsNull() {
				part[c] = val
				any = true
			}
		}
		if !any {
			continue
		}
		// Probe by primary key for an existing row.
		var pkVals []relational.Value
		pkComplete := len(def.PrimaryKey) > 0
		for _, pk := range def.PrimaryKey {
			val, ok := part[pk]
			if !ok {
				pkComplete = false
				break
			}
			pkVals = append(pkVals, val)
		}
		if pkComplete {
			ids, err := rd.LookupEqual(tname, def.PrimaryKey, pkVals)
			if err != nil {
				return inserted, err
			}
			if len(ids) > 0 {
				existing, err := rd.ValuesByName(tname, ids[0])
				if err != nil {
					return inserted, err
				}
				for c, val := range part {
					if stored, ok := existing[c]; ok && !stored.Equal(val) && !(stored.IsNull() && val.IsNull()) {
						return inserted, fmt.Errorf("sqlexec: view insert conflicts with existing %s row on column %s (stored %s, given %s)",
							tname, c, stored, val)
					}
				}
				continue // consistent duplicate: nothing to insert at this level
			}
		}
		if _, err := e.writeDML(t).Insert(tname, part); err != nil {
			return inserted, err
		}
		inserted++
	}
	return inserted, nil
}

// DeleteFromJoinView deletes, through transaction t (nil autocommits),
// the base rows of the deepest table whose key columns are bound in
// the predicate map, the standard decomposition for deletes through a
// left-join view. It returns rows deleted.
func (e *Executor) DeleteFromJoinView(t relational.WriteTxn, v *JoinViewDef, keyValues map[string]relational.Value) (int, error) {
	rd := e.writeReader(t)
	tables := v.Tables()
	for i := len(tables) - 1; i >= 0; i-- {
		def, ok := e.DB.Schema().Table(tables[i])
		if !ok {
			continue
		}
		var cols []string
		var vals []relational.Value
		complete := len(def.PrimaryKey) > 0
		for _, pk := range def.PrimaryKey {
			val, ok := keyValues[strings.ToLower(tables[i])+"."+strings.ToLower(pk)]
			if !ok {
				complete = false
				break
			}
			cols = append(cols, pk)
			vals = append(vals, val)
		}
		if !complete {
			continue
		}
		ids, err := rd.LookupEqual(tables[i], cols, vals)
		if err != nil {
			return 0, err
		}
		w := e.writeDML(t)
		total := 0
		for _, id := range ids {
			n, err := w.Delete(tables[i], id)
			total += n
			if err != nil {
				return total, err
			}
		}
		return total, nil
	}
	return 0, fmt.Errorf("sqlexec: no complete key bound for delete through view %s", v.Name)
}

func nullRow(n int) []relational.Value {
	row := make([]relational.Value, n)
	for i := range row {
		row[i] = relational.Null()
	}
	return row
}
