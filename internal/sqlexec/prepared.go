package sqlexec

import (
	"fmt"
	"strings"

	"repro/internal/relational"
)

// Prepared statements: the compile-once/execute-many API used by the
// plan layer. A statement template carries ParamOperand placeholders in
// its WHERE clause; Prepare validates the placeholders once, and each
// Bind produces an executable statement by substituting a bound
// argument tuple — the template itself is never mutated, so one
// prepared statement may be bound concurrently by many executions.

// Stmt is a prepared statement: an immutable statement template plus
// the executor it was prepared against. SELECT templates carry their
// compiled form — sources resolved, predicates normalized, join order
// planned — so every execution skips straight to the join.
type Stmt struct {
	e       *Executor
	tmpl    Statement
	nparams int
	sel     *compiledSelect // non-nil for SELECT templates
}

// Prepare validates a statement template's parameter placeholders and
// returns a reusable prepared statement. Parameters may appear only as
// WHERE-clause operands; nparams is one more than the highest slot
// referenced (unreferenced lower slots are allowed — a probe template
// binds the full literal tuple of its update even when pruning dropped
// some predicates). SELECT templates are name-resolved and join-planned
// here, once.
func (e *Executor) Prepare(s Statement) (*Stmt, error) {
	where, err := whereOf(s)
	if err != nil {
		return nil, err
	}
	n := 0
	for _, p := range where {
		for _, o := range [2]Operand{p.Left, p.Right} {
			if !o.IsParam {
				continue
			}
			if o.Param < 0 {
				return nil, fmt.Errorf("sqlexec: negative parameter slot %d in %s", o.Param, p)
			}
			if o.Param+1 > n {
				n = o.Param + 1
			}
		}
	}
	st := &Stmt{e: e, tmpl: s, nparams: n}
	if sel, ok := s.(*SelectStmt); ok {
		cs, err := e.compileSelect(sel)
		if err != nil {
			return nil, err
		}
		st.sel = cs
	}
	return st, nil
}

// whereOf returns the WHERE clause of any preparable statement.
func whereOf(s Statement) ([]Predicate, error) {
	switch st := s.(type) {
	case *SelectStmt:
		return st.Where, nil
	case *DeleteStmt:
		return st.Where, nil
	case *UpdateStmt:
		return st.Where, nil
	case *InsertStmt:
		return nil, nil
	default:
		return nil, fmt.Errorf("sqlexec: cannot prepare %T", s)
	}
}

// NumParams reports how many bind arguments the statement expects.
func (s *Stmt) NumParams() int { return s.nparams }

// String renders the template with ?N placeholders.
func (s *Stmt) String() string { return s.tmpl.String() }

// SQL renders the template with the argument tuple substituted inline
// — the text of the statement a Bind would produce, without
// materializing the bound copy.
func (s *Stmt) SQL(args ...relational.Value) string {
	if sel, ok := s.tmpl.(*SelectStmt); ok {
		var b strings.Builder
		sel.writeTo(&b, args)
		return b.String()
	}
	bound, err := s.Bind(args...)
	if err != nil {
		return s.tmpl.String()
	}
	return bound.String()
}

// Bind substitutes the argument tuple into a copy of the template and
// returns the executable statement. The template is not modified, so
// Bind is safe for concurrent use.
func (s *Stmt) Bind(args ...relational.Value) (Statement, error) {
	if len(args) < s.nparams {
		return nil, fmt.Errorf("sqlexec: statement needs %d bind arguments, got %d", s.nparams, len(args))
	}
	bindOp := func(o Operand) Operand {
		if o.IsParam {
			return LitOperand(args[o.Param])
		}
		return o
	}
	bindWhere := func(where []Predicate) []Predicate {
		if len(where) == 0 {
			return where
		}
		out := make([]Predicate, len(where))
		for i, p := range where {
			p.Left = bindOp(p.Left)
			p.Right = bindOp(p.Right)
			out[i] = p
		}
		return out
	}
	switch st := s.tmpl.(type) {
	case *SelectStmt:
		cp := *st
		cp.Where = bindWhere(st.Where)
		return &cp, nil
	case *DeleteStmt:
		cp := *st
		cp.Where = bindWhere(st.Where)
		return &cp, nil
	case *UpdateStmt:
		cp := *st
		cp.Where = bindWhere(st.Where)
		return &cp, nil
	default:
		return s.tmpl, nil
	}
}

// ExecSelect binds the arguments and evaluates the statement against
// the live database. The statement must be a SELECT template; it runs
// off its compiled form — no per-call name resolution or join planning.
func (s *Stmt) ExecSelect(args ...relational.Value) (*ResultSet, error) {
	return s.ExecSelectOn(s.e.DB, args...)
}

// ExecSelectOn is ExecSelect with row access routed through rd — the
// live database or a pinned snapshot. One prepared statement may be
// bound and executed concurrently against many readers; nothing in the
// template or its compiled form is mutated.
func (s *Stmt) ExecSelectOn(rd Reader, args ...relational.Value) (*ResultSet, error) {
	if s.sel == nil {
		return nil, fmt.Errorf("sqlexec: ExecSelect on a %T statement", s.tmpl)
	}
	if len(args) < s.nparams {
		return nil, fmt.Errorf("sqlexec: statement needs %d bind arguments, got %d", s.nparams, len(args))
	}
	return s.e.runSelect(s.sel, rd, args)
}

// Exec binds the arguments and executes a DML template through
// transaction t (nil autocommits), returning the number of rows
// affected.
func (s *Stmt) Exec(t relational.WriteTxn, args ...relational.Value) (int, error) {
	bound, err := s.Bind(args...)
	if err != nil {
		return 0, err
	}
	switch st := bound.(type) {
	case *InsertStmt:
		if _, err := s.e.ExecInsert(t, st); err != nil {
			return 0, err
		}
		return 1, nil
	case *DeleteStmt:
		return s.e.ExecDelete(t, st)
	case *UpdateStmt:
		return s.e.ExecUpdate(t, st)
	default:
		return 0, fmt.Errorf("sqlexec: Exec on a %T statement (use ExecSelect)", s.tmpl)
	}
}
