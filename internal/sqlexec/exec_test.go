package sqlexec

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/relational"
)

func bookSchema(t testing.TB) *relational.Schema {
	t.Helper()
	publisher, err := relational.NewTableDef("publisher", []relational.Column{
		{Name: "pubid", Type: relational.TypeString},
		{Name: "pubname", Type: relational.TypeString, NotNull: true, Unique: true},
	}, []string{"pubid"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	book, err := relational.NewTableDef("book", []relational.Column{
		{Name: "bookid", Type: relational.TypeString},
		{Name: "title", Type: relational.TypeString, NotNull: true},
		{Name: "pubid", Type: relational.TypeString},
		{Name: "price", Type: relational.TypeFloat,
			Checks: []relational.CheckPredicate{{Op: relational.OpGT, Operand: relational.Float_(0)}}},
		{Name: "year", Type: relational.TypeInt},
	}, []string{"bookid"}, []relational.ForeignKey{{
		Name: "book_pub_fk", Columns: []string{"pubid"},
		RefTable: "publisher", RefColumns: []string{"pubid"}, OnDelete: relational.DeleteCascade,
	}})
	if err != nil {
		t.Fatal(err)
	}
	review, err := relational.NewTableDef("review", []relational.Column{
		{Name: "bookid", Type: relational.TypeString},
		{Name: "reviewid", Type: relational.TypeString},
		{Name: "comment", Type: relational.TypeString},
		{Name: "reviewer", Type: relational.TypeString},
	}, []string{"bookid", "reviewid"}, []relational.ForeignKey{{
		Name: "review_book_fk", Columns: []string{"bookid"},
		RefTable: "book", RefColumns: []string{"bookid"}, OnDelete: relational.DeleteCascade,
	}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := relational.NewSchema(publisher, book, review)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newExec(t testing.TB) *Executor {
	db := relational.NewDatabase(bookSchema(t))
	for _, p := range [][2]string{{"A01", "McGraw-Hill Inc."}, {"B01", "Prentice-Hall Inc."}, {"A02", "Simon & Schuster Inc."}} {
		if _, err := db.Insert("publisher", map[string]relational.Value{
			"pubid": relational.String_(p[0]), "pubname": relational.String_(p[1]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	books := []struct {
		id, title, pub string
		price          float64
		year           int64
	}{
		{"98001", "TCP/IP Illustrated", "A01", 37.00, 1997},
		{"98002", "Programming in Unix", "A02", 45.00, 1985},
		{"98003", "Data on the Web", "A01", 48.00, 2004},
	}
	for _, b := range books {
		if _, err := db.Insert("book", map[string]relational.Value{
			"bookid": relational.String_(b.id), "title": relational.String_(b.title),
			"pubid": relational.String_(b.pub), "price": relational.Float_(b.price), "year": relational.Int_(b.year),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range [][4]string{
		{"98001", "001", "A good book on network.", "William"},
		{"98001", "002", "Useful for advanced user.", "John"},
	} {
		if _, err := db.Insert("review", map[string]relational.Value{
			"bookid": relational.String_(r[0]), "reviewid": relational.String_(r[1]),
			"comment": relational.String_(r[2]), "reviewer": relational.String_(r[3]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return NewExecutor(db)
}

func TestSelectSingleTable(t *testing.T) {
	e := newExec(t)
	rs, err := e.ExecSelect(&SelectStmt{
		Project: []ColRef{{Table: "book", Column: "title"}},
		From:    []string{"book"},
		Where:   []Predicate{Eq("book", "bookid", relational.String_("98001"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Str != "TCP/IP Illustrated" {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestSelectRangePredicate(t *testing.T) {
	e := newExec(t)
	rs, err := e.ExecSelect(&SelectStmt{
		Project: []ColRef{{Table: "book", Column: "bookid"}},
		From:    []string{"book"},
		Where: []Predicate{
			Cmp("book", "price", relational.OpLT, relational.Float_(50)),
			Cmp("book", "year", relational.OpGT, relational.Int_(1990)),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's view predicate: price<50 AND year>1990 keeps 98001, 98003.
	if len(rs.Rows) != 2 {
		t.Fatalf("got %d rows, want 2: %v", len(rs.Rows), rs.Rows)
	}
}

func TestProbeQueryPQ1(t *testing.T) {
	// The paper's PQ1: book not in the view returns empty.
	e := newExec(t)
	rs, err := e.ExecSelect(&SelectStmt{
		Project: []ColRef{{Table: "book", Column: "bookid"}},
		From:    []string{"publisher", "book"},
		Where: []Predicate{
			Eq("book", "title", relational.String_("Programming in Unix")),
			Cmp("book", "price", relational.OpLT, relational.Float_(50)),
			Cmp("book", "year", relational.OpGT, relational.Int_(1990)),
			JoinOn("book", "pubid", "publisher", "pubid"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Empty() {
		t.Fatalf("PQ1 should be empty (book fails year predicate), got %v", rs.Rows)
	}
}

func TestProbeQueryPQ2(t *testing.T) {
	// The paper's PQ2: "Data on the Web" qualifies; bookid feeds U1.
	e := newExec(t)
	rs, err := e.ExecSelect(&SelectStmt{
		Project: []ColRef{{Table: "book", Column: "bookid"}},
		From:    []string{"publisher", "book"},
		Where: []Predicate{
			Eq("book", "title", relational.String_("Data on the Web")),
			Cmp("book", "price", relational.OpLT, relational.Float_(50)),
			Cmp("book", "year", relational.OpGT, relational.Int_(1990)),
			JoinOn("book", "pubid", "publisher", "pubid"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Str != "98003" {
		t.Fatalf("PQ2 rows = %v, want [[98003]]", rs.Rows)
	}
}

func TestThreeWayJoin(t *testing.T) {
	e := newExec(t)
	rs, err := e.ExecSelect(&SelectStmt{
		Project: []ColRef{
			{Table: "book", Column: "bookid"},
			{Table: "review", Column: "reviewid"},
			{Table: "publisher", Column: "pubname"},
		},
		From: []string{"publisher", "book", "review"},
		Where: []Predicate{
			JoinOn("book", "pubid", "publisher", "pubid"),
			JoinOn("review", "bookid", "book", "bookid"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("got %d rows, want 2 (two reviews of 98001)", len(rs.Rows))
	}
	for _, row := range rs.Rows {
		if row[0].Str != "98001" || row[2].Str != "McGraw-Hill Inc." {
			t.Errorf("unexpected row %v", row)
		}
	}
}

func TestSelectStarExpansion(t *testing.T) {
	e := newExec(t)
	rs, err := e.ExecSelect(&SelectStmt{From: []string{"publisher"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Columns) != 2 || len(rs.Rows) != 3 {
		t.Fatalf("star expansion: %d cols %d rows", len(rs.Columns), len(rs.Rows))
	}
}

func TestSelectRowID(t *testing.T) {
	e := newExec(t)
	rs, err := e.ExecSelect(&SelectStmt{
		Project: []ColRef{{Table: "book", Column: "rowid"}},
		From:    []string{"book"},
		Where:   []Predicate{Eq("book", "bookid", relational.String_("98002"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Kind != relational.KindInt {
		t.Fatalf("rowid rows = %v", rs.Rows)
	}
}

func TestUnqualifiedColumnResolution(t *testing.T) {
	e := newExec(t)
	rs, err := e.ExecSelect(&SelectStmt{
		Project: []ColRef{{Column: "title"}},
		From:    []string{"book"},
		Where:   []Predicate{Eq("", "bookid", relational.String_("98001"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	// Ambiguity: pubid exists in both book and publisher.
	_, err = e.ExecSelect(&SelectStmt{
		Project: []ColRef{{Column: "pubid"}},
		From:    []string{"book", "publisher"},
	})
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("want ambiguity error, got %v", err)
	}
}

func TestMaterializeAndInTemp(t *testing.T) {
	e := newExec(t)
	rs, err := e.ExecSelect(&SelectStmt{
		Project: []ColRef{{Table: "book", Column: "bookid"}},
		From:    []string{"book"},
		Where:   []Predicate{Eq("book", "title", relational.String_("TCP/IP Illustrated"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Materialize("TAB_book", rs)

	// The paper's U3: DELETE FROM review WHERE bookid IN (SELECT bookid FROM TAB_book).
	n, err := e.ExecDelete(nil, &DeleteStmt{
		Table: "review",
		Where: []Predicate{{
			Left: ColOperand("review", "bookid"), InTemp: "TAB_book", InTempColumn: "bookid",
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("deleted %d, want 2", n)
	}
	if got := e.DB.RowCount("review"); got != 0 {
		t.Fatalf("review count = %d", got)
	}
}

func TestDeleteZeroTuplesWarning(t *testing.T) {
	e := newExec(t)
	n, err := e.ExecDelete(nil, &DeleteStmt{
		Table: "review",
		Where: []Predicate{Eq("review", "bookid", relational.String_("98002"))},
	})
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v, want the 'zero tuples deleted' warning (0, nil)", n, err)
	}
}

func TestInsertConstraintErrorSurfaces(t *testing.T) {
	e := newExec(t)
	// The paper's U2: duplicate key insert rejected by the engine.
	_, err := e.ExecInsert(nil, &InsertStmt{Table: "book", Values: map[string]relational.Value{
		"bookid": relational.String_("98001"), "title": relational.String_("Operating Systems"),
		"pubid": relational.String_("A01"), "price": relational.Float_(20), "year": relational.Int_(1994),
	}})
	if !errors.Is(err, relational.ErrPrimaryKey) {
		t.Fatalf("err = %v, want ErrPrimaryKey", err)
	}
	if !relational.IsConstraintViolation(err) {
		t.Error("constraint violation not recognized")
	}
}

func TestExecUpdate(t *testing.T) {
	e := newExec(t)
	n, err := e.ExecUpdate(nil, &UpdateStmt{
		Table: "book",
		Set:   map[string]relational.Value{"price": relational.Float_(39.99)},
		Where: []Predicate{Eq("book", "bookid", relational.String_("98001"))},
	})
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestStatementStrings(t *testing.T) {
	sel := &SelectStmt{
		Project: []ColRef{{Table: "book", Column: "bookid"}},
		From:    []string{"publisher", "book"},
		Where: []Predicate{
			Eq("book", "title", relational.String_("Data on the Web")),
			JoinOn("book", "pubid", "publisher", "pubid"),
		},
	}
	want := "SELECT book.bookid FROM publisher, book WHERE book.title = 'Data on the Web' AND book.pubid = publisher.pubid"
	if got := sel.String(); got != want {
		t.Errorf("select string:\n got %s\nwant %s", got, want)
	}
	ins := &InsertStmt{Table: "review", Values: map[string]relational.Value{
		"bookid": relational.String_("98003"), "reviewid": relational.String_("001"),
	}}
	if got := ins.String(); got != "INSERT INTO review (bookid, reviewid) VALUES ('98003', '001')" {
		t.Errorf("insert string: %s", got)
	}
	del := &DeleteStmt{Table: "review", Where: []Predicate{{
		Left: ColOperand("review", "bookid"), InTemp: "TAB_book", InTempColumn: "bookid",
	}}}
	if got := del.String(); got != "DELETE FROM review WHERE review.bookid IN (SELECT bookid FROM TAB_book)" {
		t.Errorf("delete string: %s", got)
	}
	upd := &UpdateStmt{Table: "book", Set: map[string]relational.Value{"price": relational.Float_(1.5)},
		Where: []Predicate{Eq("book", "bookid", relational.String_("98001"))}}
	if got := upd.String(); got != "UPDATE book SET price = 1.5 WHERE book.bookid = '98001'" {
		t.Errorf("update string: %s", got)
	}
}

func TestJoinViewEvaluate(t *testing.T) {
	e := newExec(t)
	view := &JoinViewDef{
		Name: "RelationalBookView",
		Root: "publisher",
		Steps: []JoinStep{
			{Table: "book", ParentTable: "publisher", ParentColumn: "pubid", Column: "pubid"},
			{Table: "review", ParentTable: "book", ParentColumn: "bookid", Column: "bookid"},
		},
	}
	rs, err := e.EvaluateJoinView(view)
	if err != nil {
		t.Fatal(err)
	}
	// publisher A01 -> 98001 (2 reviews) + 98003 (null review) = 3 rows;
	// A02 -> 98002 (null review) = 1 row; B01 -> null book = 1 row.
	if len(rs.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rs.Rows))
	}
	nullReviewRows := 0
	for _, row := range rs.Rows {
		ci, _ := rs.ColumnIndex(ColRef{Table: "review", Column: "reviewid"})
		if row[ci].IsNull() {
			nullReviewRows++
		}
	}
	if nullReviewRows != 3 {
		t.Errorf("null-padded review rows = %d, want 3", nullReviewRows)
	}
}

func TestJoinViewInsertDecomposition(t *testing.T) {
	e := newExec(t)
	view := &JoinViewDef{
		Name: "RelationalBookView",
		Root: "publisher",
		Steps: []JoinStep{
			{Table: "book", ParentTable: "publisher", ParentColumn: "pubid", Column: "pubid"},
			{Table: "review", ParentTable: "book", ParentColumn: "bookid", Column: "bookid"},
		},
	}
	// The paper's UV: full tuple for an insert of review 001 on 98003.
	n, err := e.InsertIntoJoinView(nil, view, map[string]relational.Value{
		"publisher.pubid":   relational.String_("A01"),
		"publisher.pubname": relational.String_("McGraw-Hill Inc."),
		"book.bookid":       relational.String_("98003"),
		"book.title":        relational.String_("Data on the Web"),
		"book.pubid":        relational.String_("A01"),
		"book.price":        relational.Float_(48.00),
		"review.bookid":     relational.String_("98003"),
		"review.reviewid":   relational.String_("001"),
		"review.comment":    relational.String_("easy read and useful"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("inserted %d base rows, want 1 (only the review is new)", n)
	}
	ids, _ := e.DB.LookupEqual("review", []string{"bookid"}, []relational.Value{relational.String_("98003")})
	if len(ids) != 1 {
		t.Fatalf("review not inserted")
	}
}

func TestJoinViewInsertInconsistentRejected(t *testing.T) {
	e := newExec(t)
	view := &JoinViewDef{
		Name: "V", Root: "publisher",
		Steps: []JoinStep{{Table: "book", ParentTable: "publisher", ParentColumn: "pubid", Column: "pubid"}},
	}
	_, err := e.InsertIntoJoinView(nil, view, map[string]relational.Value{
		"publisher.pubid":   relational.String_("A01"),
		"publisher.pubname": relational.String_("Wrong Name"),
		"book.bookid":       relational.String_("98009"),
		"book.title":        relational.String_("New"),
		"book.pubid":        relational.String_("A01"),
		"book.price":        relational.Float_(5),
	})
	if err == nil {
		t.Fatal("inconsistent view insert should be rejected")
	}
}

func TestJoinViewDelete(t *testing.T) {
	e := newExec(t)
	view := &JoinViewDef{
		Name: "V", Root: "publisher",
		Steps: []JoinStep{
			{Table: "book", ParentTable: "publisher", ParentColumn: "pubid", Column: "pubid"},
			{Table: "review", ParentTable: "book", ParentColumn: "bookid", Column: "bookid"},
		},
	}
	n, err := e.DeleteFromJoinView(nil, view, map[string]relational.Value{
		"review.bookid":   relational.String_("98001"),
		"review.reviewid": relational.String_("001"),
	})
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestJoinViewSQLRendering(t *testing.T) {
	view := &JoinViewDef{
		Name: "RelationalBookView", Root: "publisher",
		Steps: []JoinStep{
			{Table: "book", ParentTable: "publisher", ParentColumn: "pubid", Column: "pubid"},
		},
	}
	want := "CREATE VIEW RelationalBookView AS SELECT * FROM publisher LEFT JOIN book ON publisher.pubid = book.pubid"
	if got := view.SQL(); got != want {
		t.Errorf("SQL() = %s", got)
	}
}

func TestIndexProbesCounted(t *testing.T) {
	e := newExec(t)
	before := e.IndexProbes
	_, err := e.ExecSelect(&SelectStmt{
		From:  []string{"book"},
		Where: []Predicate{Eq("book", "bookid", relational.String_("98001"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.IndexProbes <= before {
		t.Error("indexed equality select should use the index")
	}
}

func TestDuplicateFromRejected(t *testing.T) {
	e := newExec(t)
	_, err := e.ExecSelect(&SelectStmt{From: []string{"book", "book"}})
	if err == nil {
		t.Fatal("duplicate FROM should be rejected")
	}
}
