package sqlexec

import (
	"strings"
	"testing"

	"repro/internal/relational"
)

// preparedTestExec builds a tiny one-table database for the prepared
// statement tests.
func preparedTestExec(t *testing.T) *Executor {
	t.Helper()
	item, err := relational.NewTableDef("item", []relational.Column{
		{Name: "id", Type: relational.TypeInt, NotNull: true},
		{Name: "name", Type: relational.TypeString},
	}, []string{"id"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := relational.NewSchema(item)
	if err != nil {
		t.Fatal(err)
	}
	db := relational.NewDatabase(schema)
	for i, n := range []string{"ant", "bee", "cat"} {
		if _, err := db.Insert("item", map[string]relational.Value{
			"id": relational.Int_(int64(i + 1)), "name": relational.String_(n),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return NewExecutor(db)
}

// TestPrepareBindExecSelect: a parameterized SELECT template renders
// with ?N placeholders, rejects short argument tuples, and evaluates
// identically to its literal-bound equivalent.
func TestPrepareBindExecSelect(t *testing.T) {
	e := preparedTestExec(t)
	tmpl := &SelectStmt{
		Project: []ColRef{{Table: "item", Column: "name"}},
		From:    []string{"item"},
		Where: []Predicate{{
			Left:  ColOperand("item", "id"),
			Op:    relational.OpEQ,
			Right: ParamOperand(0),
		}},
	}
	stmt, err := e.Prepare(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 1 {
		t.Errorf("NumParams = %d, want 1", stmt.NumParams())
	}
	if !strings.Contains(stmt.String(), "item.id = ?1") {
		t.Errorf("template renders as %q", stmt.String())
	}
	if _, err := stmt.Bind(); err == nil {
		t.Error("Bind with no arguments should fail")
	}
	rs, err := stmt.ExecSelect(relational.Int_(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Str != "bee" {
		t.Errorf("rows = %+v", rs.Rows)
	}
	// The bound text substitutes the literal.
	if sql := stmt.SQL(relational.Int_(2)); !strings.Contains(sql, "item.id = 2") {
		t.Errorf("bound SQL = %q", sql)
	}
	// Repeated executions with different arguments reuse the compiled
	// form and do not interfere.
	for id, want := range map[int64]string{1: "ant", 3: "cat"} {
		rs, err := stmt.ExecSelect(relational.Int_(id))
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Rows) != 1 || rs.Rows[0][0].Str != want {
			t.Errorf("id %d: rows = %+v", id, rs.Rows)
		}
	}
}

// TestUnboundParamRejected: executing a statement that still carries
// parameter placeholders is an error, not a silent NULL comparison.
func TestUnboundParamRejected(t *testing.T) {
	e := preparedTestExec(t)
	sel := &SelectStmt{
		From:  []string{"item"},
		Where: []Predicate{{Left: ColOperand("item", "id"), Op: relational.OpEQ, Right: ParamOperand(0)}},
	}
	if _, err := e.ExecSelect(sel); err == nil {
		t.Error("ExecSelect with an unbound parameter should fail")
	}
	stmt, err := e.Prepare(sel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.ExecSelect(); err == nil {
		t.Error("prepared ExecSelect without arguments should fail")
	}
}

// TestPreparedDML: DELETE and UPDATE templates bind and execute.
func TestPreparedDML(t *testing.T) {
	e := preparedTestExec(t)
	upd, err := e.Prepare(&UpdateStmt{
		Table: "item",
		Set:   map[string]relational.Value{"name": relational.String_("dog")},
		Where: []Predicate{{Left: ColOperand("item", "id"), Op: relational.OpEQ, Right: ParamOperand(0)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := upd.Exec(nil, relational.Int_(3))
	if err != nil || n != 1 {
		t.Fatalf("update exec: n=%d err=%v", n, err)
	}
	del, err := e.Prepare(&DeleteStmt{
		Table: "item",
		Where: []Predicate{{Left: ColOperand("item", "id"), Op: relational.OpEQ, Right: ParamOperand(0)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err = del.Exec(nil, relational.Int_(1))
	if err != nil || n != 1 {
		t.Fatalf("delete exec: n=%d err=%v", n, err)
	}
	if got := e.DB.RowCount("item"); got != 2 {
		t.Errorf("rows = %d, want 2", got)
	}
}
